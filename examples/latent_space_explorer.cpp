// Latent space exploration (paper §IV-B, Table I and Fig. 9): make the
// auto-learned features visible. For a trained TCAE,
//  - sweep individual latent nodes and print how the decoded topology
//    transforms (line ends move, shapes appear/vanish),
//  - print the per-node feature sensitivities (Algorithm 1),
//  - show that Gaussian perturbation of a single pattern's latent vector
//    yields many new legal topologies while the same noise applied in
//    pattern space yields none.

#include <iostream>

#include "core/sensitivity.hpp"
#include "datagen/generator.hpp"
#include "io/ascii_art.hpp"
#include "models/topology_codec.hpp"
#include "squish/canonical.hpp"

int main() {
  dp::Rng rng(3);
  const dp::DesignRules rules = dp::euv7nmM2();
  const dp::drc::TopologyChecker checker(
      dp::drc::TopologyRuleConfig::fromRules(rules));

  const auto clips = dp::datagen::generateLibrary(
      dp::datagen::directprintSpec(1), rules, 300, rng);
  const auto topologies = dp::datagen::extractTopologies(clips);

  dp::models::TcaeConfig cfg;
  cfg.trainSteps = 2500;
  cfg.initialLr = 2e-3;
  dp::models::Tcae tcae(cfg, rng);
  std::cout << "Training TCAE (" << tcae.parameterCount()
            << " parameters)...\n\n";
  tcae.train(topologies, rng);

  // --- Table I: per-node sweeps on one pattern ---
  const auto& seed = topologies.front();
  const dp::nn::Tensor latent =
      tcae.encode(dp::models::encodeTopology(seed));
  std::cout << "Seed topology:\n"
            << dp::io::renderTopology(dp::squish::canonicalize(seed))
            << "\n";
  for (int node : {0, 5, 11}) {
    std::vector<dp::squish::Topology> sweep;
    for (double lambda : {-2.0, -1.0, 0.0, 1.0, 2.0}) {
      dp::nn::Tensor l = latent;
      l.at(0, node) += static_cast<float>(lambda);
      sweep.push_back(dp::squish::canonicalize(
          dp::models::decodeGeneratedTopology(tcae.decode(l), 0)));
    }
    std::cout << "Latent node " << node
              << " swept over {-2,-1,0,+1,+2}:\n"
              << dp::io::renderTopologyRow(sweep) << "\n";
  }

  // --- Algorithm 1: feature sensitivities ---
  dp::core::SensitivityConfig scfg;
  scfg.maxTopologies = 32;
  const auto sens =
      dp::core::estimateSensitivity(tcae, topologies, checker, scfg);
  std::cout << "Feature sensitivities (fraction of invalid decodes per "
               "node):\n";
  for (std::size_t i = 0; i < sens.size(); ++i) {
    std::cout << "  node " << i << ": " << sens[i]
              << (sens[i] > 0.5 ? "  <- sensitive, keep noise small" : "")
              << "\n";
  }
  std::cout << "\n";

  // --- Fig. 9: latent-space vs pattern-space noise ---
  const int kSamples = 1000;
  int legalLatent = 0, legalPattern = 0;
  const dp::nn::Tensor seedImage = dp::models::encodeTopology(seed);
  for (int i = 0; i < kSamples; ++i) {
    dp::nn::Tensor l = latent;
    for (int c = 0; c < l.size(1); ++c)
      l.at(0, c) += static_cast<float>(rng.gaussian(0.0, 1.0));
    if (checker.isLegal(dp::models::decodeGeneratedTopology(tcae.decode(l), 0)))
      ++legalLatent;

    dp::nn::Tensor img = seedImage;
    for (std::size_t k = 0; k < img.numel(); ++k)
      img[k] += static_cast<float>(rng.gaussian(0.0, 1.0));
    if (checker.isLegal(dp::models::decodeGeneratedTopology(img, 0)))
      ++legalPattern;
  }
  std::cout << "Gaussian noise on ONE pattern, " << kSamples
            << " samples:\n";
  std::cout << "  latent-space noise  -> " << legalLatent
            << " legal topologies\n";
  std::cout << "  pattern-space noise -> " << legalPattern
            << " legal topologies\n";
  std::cout << "(The paper reports ~400/1000 legal for latent noise and "
               "none for pattern-space noise.)\n";
  return 0;
}
