// Pattern library expansion for DFM research — the paper's motivating
// scenario (§I): a hotspot-detection or OPC team needs a larger and more
// diverse pattern library than the existing designs provide.
//
// This example compares three ways of expanding a library:
//   (a) the Monte-Carlo industry-tool surrogate,
//   (b) TCAE-Random with sensitivity-aware noise,
//   (c) G-TCAE (GAN-guided perturbations),
// and prints count/diversity plus the (cx, cy) complexity heatmaps so
// the distribution differences (paper Fig. 10) are visible.

#include <iostream>

#include "core/flows.hpp"
#include "core/gtcae.hpp"
#include "core/sensitivity.hpp"
#include "datagen/generator.hpp"
#include "io/heatmap.hpp"
#include "io/table.hpp"
#include "squish/extract.hpp"
#include "squish/pad.hpp"

int main() {
  dp::Rng rng(7);
  const dp::DesignRules rules = dp::euv7nmM2();
  const dp::drc::TopologyChecker checker(
      dp::drc::TopologyRuleConfig::fromRules(rules));

  // Existing designs.
  const auto clips = dp::datagen::generateLibrary(
      dp::datagen::directprintSpec(1), rules, 400, rng);
  const auto topologies = dp::datagen::extractTopologies(clips);
  const auto existing = dp::core::libraryResult(topologies, checker);
  std::cout << "Existing designs: " << existing.unique.size()
            << " unique patterns, H = " << existing.unique.diversity()
            << "\n\n";

  // (a) Industry-tool surrogate at a similar generation budget.
  const long kBudget = 20000;
  dp::core::GenerationResult industry;
  {
    const auto spec = dp::datagen::industryToolSpec();
    for (long i = 0; i < kBudget; ++i) {
      const auto clip = dp::datagen::generateClip(spec, rules, rng);
      ++industry.generated;
      if (clip.empty()) continue;
      ++industry.legal;
      industry.unique.add(dp::squish::unpad(dp::squish::extract(clip).topo));
    }
  }

  // Train the TCAE once; (b) and (c) share it.
  dp::models::TcaeConfig tcfg;
  tcfg.trainSteps = 2500;
  tcfg.initialLr = 2e-3;
  dp::models::Tcae tcae(tcfg, rng);
  tcae.train(topologies, rng);

  // (b) TCAE-Random.
  dp::core::SensitivityConfig scfg;
  scfg.maxTopologies = 32;
  const auto sens =
      dp::core::estimateSensitivity(tcae, topologies, checker, scfg);
  const dp::core::SensitivityAwarePerturber perturber(sens, 1.0);
  dp::core::FlowConfig fcfg;
  fcfg.count = kBudget;
  fcfg.collectGoodVectors = true;
  const auto random = dp::core::tcaeRandom(tcae, topologies, perturber,
                                           checker, fcfg, rng);

  // (c) G-TCAE.
  dp::core::GtcaeConfig gcfg;
  gcfg.flow.count = kBudget;
  gcfg.gan.trainSteps = 800;
  const auto gtcae = dp::core::gtcaeMassive(
      tcae, topologies, dp::core::vectorsToTensor(random.goodVectors),
      checker, gcfg, rng);

  dp::io::Table table({"Method", "Attempts", "Unique DRC-clean",
                       "Diversity H"});
  auto row = [&](const std::string& name,
                 const dp::core::GenerationResult& r) {
    table.addRow({name, std::to_string(r.generated),
                  std::to_string(r.unique.size()),
                  dp::io::Table::num(r.unique.diversity())});
  };
  row("Existing designs", existing);
  row("Industry tool (MC)", industry);
  row("TCAE-Random", random);
  row("G-TCAE", gtcae);
  std::cout << table.toString() << "\n";

  std::cout << "Existing-design complexity distribution:\n"
            << dp::io::renderHeatmap(existing.unique.histogram()) << "\n";
  std::cout << "Industry-tool complexity distribution:\n"
            << dp::io::renderHeatmap(industry.unique.histogram()) << "\n";
  std::cout << "TCAE-Random complexity distribution:\n"
            << dp::io::renderHeatmap(random.unique.histogram()) << "\n";
  return 0;
}
