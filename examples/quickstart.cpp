// Quickstart: the complete DeePattern flow on a small synthetic library.
//
// 1. Build an "existing design" clip library (synthetic 7nm EUV M2
//    surrogate).
// 2. Run the full Fig. 8 pipeline: squish extraction -> TCAE identity
//    training -> sensitivity-aware latent perturbation -> legal pattern
//    assessment (Eq. 10) -> DRC-clean layout clips.
// 3. Print library statistics and a few generated patterns; write the
//    generated clips to quickstart_clips.txt.
//
// Runs in well under a minute on one CPU core.

#include <cstdio>
#include <iostream>

#include "core/pipeline.hpp"
#include "datagen/generator.hpp"
#include "io/ascii_art.hpp"
#include "io/layout_text.hpp"

int main() {
  dp::Rng rng(1);
  const dp::DesignRules rules = dp::euv7nmM2();

  std::cout << "== DeePattern quickstart ==\n";
  std::cout << "Design rules: pitch " << rules.pitch << "nm, T2T "
            << rules.minT2T << "nm, min length " << rules.minLength
            << "nm, clip " << rules.clipWidth << "x" << rules.clipHeight
            << "nm\n\n";

  // 1. Existing library.
  const auto clips = dp::datagen::generateLibrary(
      dp::datagen::directprintSpec(1), rules, 200, rng);
  std::cout << "Existing library: " << clips.size() << " clips\n";
  std::cout << "One existing clip:\n"
            << dp::io::renderClip(clips.front(), 8.0) << "\n";

  // 2. Full pipeline (small training budget for a quick demo).
  dp::core::PipelineConfig cfg;
  cfg.tcae.trainSteps = 1500;
  cfg.tcae.initialLr = 2e-3;
  cfg.flow.count = 5000;
  cfg.maxClips = 200;
  const dp::core::PipelineResult result =
      dp::core::runPipeline(clips, rules, cfg, rng);

  // 3. Report.
  std::cout << "Generated topologies : " << result.generation.generated
            << "\n";
  std::cout << "Legal topologies     : " << result.generation.legal << "\n";
  std::cout << "Unique DRC-clean     : " << result.generation.unique.size()
            << "\n";
  std::cout << "Pattern diversity H  : "
            << result.generation.unique.diversity() << "\n";
  std::cout << "Materialized clips   : " << result.materialized.drcClean
            << " (of " << result.materialized.attempted
            << " attempted)\n\n";

  const auto patterns = result.generation.unique.patterns();
  if (patterns.size() >= 3) {
    std::cout << "Three generated topologies:\n"
              << dp::io::renderTopologyRow(
                     {patterns[0], patterns[1], patterns[2]})
              << "\n";
  }
  if (!result.materialized.clips.empty()) {
    std::cout << "One generated DRC-clean clip:\n"
              << dp::io::renderClip(result.materialized.clips.front(), 8.0)
              << "\n";
    dp::io::writeClipsFile("quickstart_clips.txt",
                           result.materialized.clips);
    std::cout << "Wrote " << result.materialized.clips.size()
              << " clips to quickstart_clips.txt\n";
  }
  return 0;
}
