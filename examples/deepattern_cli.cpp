// deepattern_cli — command-line front end to the whole library.
//
//   deepattern_cli generate --spec directprint1 --count 500 --out lib.gds
//   deepattern_cli expand   --in lib.gds --count 20000 --steps 3000
//                           --out generated.gds
//   deepattern_cli train    --in lib.gds --steps 3000 --resume ckpt/
//                           --out tcae.bin
//   deepattern_cli check    --in generated.gds
//   deepattern_cli stats    --in generated.gds
//   deepattern_cli render   --in lib.gds --index 0
//
// Clip files are read/written as GDSII when the path ends in .gds, and
// as the line-oriented text format otherwise.
//
// `train` and `expand --resume DIR` run the TCAE on the crash-safe
// training harness: checkpoints are sealed into DIR every
// --checkpoint-every steps, SIGTERM seals one and exits cleanly, and
// re-running the same command resumes from the last seal (the final
// model is byte-identical to an uninterrupted run's).

#include <iostream>
#include <map>
#include <string>

#include "common/thread_pool.hpp"
#include "core/pipeline.hpp"
#include "datagen/generator.hpp"
#include "drc/geometry_rules.hpp"
#include "io/ascii_art.hpp"
#include "io/gdsii.hpp"
#include "io/heatmap.hpp"
#include "io/layout_text.hpp"
#include "io/table.hpp"
#include "squish/extract.hpp"
#include "squish/pad.hpp"

namespace {

using ArgMap = std::map<std::string, std::string>;

ArgMap parseArgs(int argc, char** argv, int first) {
  ArgMap args;
  for (int i = first; i < argc; ++i) {
    std::string a = argv[i];
    if (a.rfind("--", 0) != 0) continue;
    a = a.substr(2);
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0)
      args[a] = argv[++i];
    else
      // Explicit std::string: the const char* assignment path trips a
      // gcc 12 -Wrestrict false positive (GCC PR105329) under -O3.
      args[a] = std::string("1");
  }
  return args;
}

std::string get(const ArgMap& args, const std::string& key,
                const std::string& def) {
  const auto it = args.find(key);
  return it == args.end() ? def : it->second;
}

bool isGds(const std::string& path) {
  return path.size() >= 4 && path.substr(path.size() - 4) == ".gds";
}

std::vector<dp::Clip> readClips(const std::string& path) {
  return isGds(path) ? dp::io::readGdsiiFile(path)
                     : dp::io::readClipsFile(path);
}

void writeClips(const std::string& path,
                const std::vector<dp::Clip>& clips) {
  if (isGds(path))
    dp::io::writeGdsiiFile(path, clips);
  else
    dp::io::writeClipsFile(path, clips);
  std::cout << "wrote " << clips.size() << " clips to " << path << "\n";
}

int usage() {
  std::cout <<
      "usage: deepattern_cli <command> [--flags]\n"
      "  generate --spec directprint1..5|industry --count N [--seed S]\n"
      "           --out FILE(.gds|.txt)\n"
      "  expand   --in FILE --count N [--steps T] [--seed S] --out FILE\n"
      "           [--resume DIR] [--checkpoint-every K]\n"
      "  train    --in FILE [--steps T] [--seed S] [--out MODEL.bin]\n"
      "           [--resume DIR] [--checkpoint-every K]\n"
      "           [--max-rollbacks R] [--grad-clip C]\n"
      "  check    --in FILE\n"
      "  stats    --in FILE\n"
      "  render   --in FILE [--index I]\n"
      "common flags:\n"
      "  --threads N   worker threads (default: DP_THREADS env or all\n"
      "                cores; 1 = fully serial, same results)\n"
      "  --resume DIR  checkpoint directory: training seals a resumable\n"
      "                checkpoint there every K steps and on SIGTERM\n";
  return 2;
}

int cmdGenerate(const ArgMap& args) {
  const std::string specName = get(args, "spec", "directprint1");
  const int count = std::stoi(get(args, "count", "500"));
  dp::Rng rng(std::stoull(get(args, "seed", "1")));
  const dp::DesignRules rules = dp::euv7nmM2();
  dp::datagen::LibrarySpec spec;
  if (specName == "industry") {
    spec = dp::datagen::industryToolSpec();
  } else if (specName.rfind("directprint", 0) == 0) {
    spec = dp::datagen::directprintSpec(specName.back() - '0');
  } else {
    std::cerr << "unknown spec: " << specName << "\n";
    return 2;
  }
  writeClips(get(args, "out", "library.txt"),
             dp::datagen::generateLibrary(spec, rules, count, rng));
  return 0;
}

// Shared --resume/--checkpoint-every/--max-rollbacks/--grad-clip
// handling for the training commands.
dp::train::TrainOptions trainOptionsFrom(const ArgMap& args) {
  dp::train::TrainOptions opts;
  opts.checkpointDir = get(args, "resume", "");
  opts.checkpointEvery = std::stol(get(args, "checkpoint-every", "250"));
  opts.maxRollbacks = std::stoi(get(args, "max-rollbacks", "4"));
  opts.gradClipNorm = std::stod(get(args, "grad-clip", "0"));
  if (!opts.checkpointDir.empty()) dp::train::installStopHandler();
  return opts;
}

int cmdExpand(const ArgMap& args) {
  const auto clips = readClips(get(args, "in", "library.txt"));
  dp::Rng rng(std::stoull(get(args, "seed", "1")));
  dp::core::PipelineConfig cfg;
  cfg.flow.count = std::stol(get(args, "count", "20000"));
  cfg.tcae.trainSteps = std::stol(get(args, "steps", "3000"));
  cfg.tcae.initialLr = 2e-3;
  cfg.maxClips = std::stol(get(args, "max-clips", "2000"));
  cfg.train = trainOptionsFrom(args);
  const auto result =
      dp::core::runPipeline(clips, dp::euv7nmM2(), cfg, rng);
  std::cout << "generated " << result.generation.generated
            << " topologies, " << result.generation.unique.size()
            << " unique DRC-clean, H = "
            << result.generation.unique.diversity() << "\n";
  std::cout << "materialized " << result.materialized.drcClean
            << " DRC-clean clips\n";
  writeClips(get(args, "out", "generated.txt"),
             result.materialized.clips);
  return 0;
}

int cmdTrain(const ArgMap& args) {
  const auto clips = readClips(get(args, "in", "library.txt"));
  const auto topologies = dp::datagen::extractTopologies(clips);
  if (topologies.empty()) {
    std::cerr << "error: no non-empty clips to train on\n";
    return 2;
  }
  dp::Rng rng(std::stoull(get(args, "seed", "1")));
  dp::models::TcaeConfig cfg;
  cfg.trainSteps = std::stol(get(args, "steps", "3000"));
  cfg.initialLr = 2e-3;
  const dp::train::TrainOptions opts = trainOptionsFrom(args);
  dp::models::Tcae tcae(cfg, rng);
  const auto stats = tcae.train(topologies, rng, opts);
  if (stats.resumed)
    std::cout << "resumed from step " << stats.resumedFrom << "\n";
  std::cout << "trained " << stats.steps << "/" << cfg.trainSteps
            << " steps, final loss " << stats.finalLoss << " ("
            << stats.checkpointsSaved << " checkpoints, "
            << stats.rollbacks << " rollbacks, " << stats.nanEvents
            << " NaN events)\n";
  if (stats.sealedByStop) {
    std::cout << "stop requested: checkpoint sealed at step "
              << stats.steps << "; re-run to resume\n";
    return 0;
  }
  tcae.save(get(args, "out", "tcae.bin"));
  std::cout << "wrote model to " << get(args, "out", "tcae.bin") << "\n";
  return 0;
}

int cmdCheck(const ArgMap& args) {
  const auto clips = readClips(get(args, "in", "library.txt"));
  const dp::drc::GeometryChecker checker(dp::euv7nmM2());
  std::map<std::string, long> histogram;
  long clean = 0;
  for (const auto& clip : clips) {
    const auto report = checker.check(clip);
    if (report.clean()) {
      ++clean;
      continue;
    }
    for (const auto v : report.violations) ++histogram[toString(v)];
  }
  std::cout << clean << "/" << clips.size() << " clips DRC-clean\n";
  for (const auto& [name, count] : histogram)
    std::cout << "  " << name << ": " << count << " clips\n";
  return clean == static_cast<long>(clips.size()) ? 0 : 1;
}

int cmdStats(const ArgMap& args) {
  const auto clips = readClips(get(args, "in", "library.txt"));
  dp::core::PatternLibrary lib;
  double density = 0.0;
  long nonEmpty = 0;
  for (const auto& clip : clips) {
    if (clip.empty()) continue;
    ++nonEmpty;
    density += clip.density();
    lib.add(dp::squish::unpad(dp::squish::extract(clip).topo));
  }
  dp::io::Table t({"metric", "value"});
  t.addRow({"clips", std::to_string(clips.size())});
  t.addRow({"non-empty clips", std::to_string(nonEmpty)});
  t.addRow({"unique topologies", std::to_string(lib.size())});
  t.addRow({"diversity H", dp::io::Table::num(lib.diversity())});
  t.addRow({"mean cx", dp::io::Table::num(lib.meanCx(), 2)});
  t.addRow({"mean cy", dp::io::Table::num(lib.meanCy(), 2)});
  t.addRow({"mean density",
            dp::io::Table::num(nonEmpty ? density / nonEmpty : 0.0)});
  std::cout << t.toString() << "\nComplexity distribution:\n"
            << dp::io::renderHeatmap(lib.histogram());
  return 0;
}

int cmdRender(const ArgMap& args) {
  const auto clips = readClips(get(args, "in", "library.txt"));
  const std::size_t index =
      static_cast<std::size_t>(std::stoul(get(args, "index", "0")));
  if (index >= clips.size()) {
    std::cerr << "index out of range (library has " << clips.size()
              << " clips)\n";
    return 2;
  }
  std::cout << dp::io::renderClip(clips[index], 8.0) << "\n";
  const auto p = dp::squish::extract(clips[index]);
  std::cout << "squish topology (" << p.topo.rows() << "x"
            << p.topo.cols() << "):\n"
            << p.topo.toString();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  const ArgMap args = parseArgs(argc, argv, 2);
  if (args.count("threads")) {
    try {
      dp::ThreadPool::setGlobalThreads(std::stoi(args.at("threads")));
    } catch (const std::exception&) {
      std::cerr << "error: --threads expects an integer, got '"
                << args.at("threads") << "'\n";
      return 2;
    }
  }
  try {
    if (cmd == "generate") return cmdGenerate(args);
    if (cmd == "expand") return cmdExpand(args);
    if (cmd == "train") return cmdTrain(args);
    if (cmd == "check") return cmdCheck(args);
    if (cmd == "stats") return cmdStats(args);
    if (cmd == "render") return cmdRender(args);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return usage();
}
