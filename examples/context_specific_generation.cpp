// Context-specific pattern generation (paper §III-C2, Fig. 11): request
// patterns of a chosen complexity class. Useful when a DFM experiment
// needs, e.g., only dense high-complexity clips to stress an OPC recipe.
//
// The recognition unit is discarded at generation time: a per-class GAN
// generates pure latent vectors that the TCAE generation unit decodes.

#include <iostream>

#include "core/gtcae.hpp"
#include "core/pattern_library.hpp"
#include "datagen/generator.hpp"
#include "io/ascii_art.hpp"
#include "io/table.hpp"

int main() {
  dp::Rng rng(11);
  const dp::DesignRules rules = dp::euv7nmM2();
  const dp::drc::TopologyChecker checker(
      dp::drc::TopologyRuleConfig::fromRules(rules));

  const auto clips = dp::datagen::generateLibrary(
      dp::datagen::directprintSpec(1), rules, 400, rng);
  const auto topologies = dp::datagen::extractTopologies(clips);

  dp::models::TcaeConfig tcfg;
  tcfg.trainSteps = 2500;
  tcfg.initialLr = 2e-3;
  dp::models::Tcae tcae(tcfg, rng);
  std::cout << "Training TCAE on " << topologies.size()
            << " topologies...\n";
  tcae.train(topologies, rng);

  // Split the training library into three complexity classes at the
  // terciles of its cx distribution, as in Fig. 11.
  const auto bands = dp::core::contextBandsByQuantiles(topologies);

  dp::core::GtcaeConfig cfg;
  cfg.flow.count = 5000;
  cfg.gan.trainSteps = 600;
  std::cout << "Training one GAN per complexity band and generating...\n\n";
  const auto groups = dp::core::gtcaeContextSpecific(tcae, topologies,
                                                     checker, bands, cfg,
                                                     rng);

  dp::io::Table table({"Band", "cx range", "Train latents",
                       "Unique patterns", "avg cx", "avg cy"});
  for (const auto& g : groups) {
    table.addRow({g.band.name,
                  std::to_string(g.band.minCx) + ".." +
                      std::to_string(g.band.maxCx),
                  std::to_string(g.trainingCount),
                  std::to_string(g.result.unique.size()),
                  dp::io::Table::num(g.avgCx, 1),
                  dp::io::Table::num(g.avgCy, 1)});
  }
  std::cout << table.toString() << "\n";

  for (const auto& g : groups) {
    const auto patterns = g.result.unique.patterns();
    if (patterns.size() < 2) continue;
    std::cout << "Samples from " << g.band.name << ":\n"
              << dp::io::renderTopologyRow({patterns[0], patterns[1]})
              << "\n";
  }
  std::cout << "Expected shape: avg cx increases from the low to the\n"
               "high band while avg cy stays pinned near the training\n"
               "library's dominant track count (paper Fig. 11).\n";
  return 0;
}
