// deepattern_serve — the batched pattern-generation service.
//
//   deepattern_serve build --spec directprint1 --clips 200 --steps 1500
//                          --name directprint1 --out bundles/directprint1
//                          [--guide gan|vae] [--seed S]
//   deepattern_serve serve --bundles bundles [--host 127.0.0.1]
//                          [--port 8080] [--queue 64] [--batch 128]
//                          [--threads N] [--send-timeout S]
//                          [--workers N] [--worker-threads N]
//
// `build` trains a complete model bundle (TCAE + sensitivity + source
// latents + optional guide) from a synthetic benchmark library and
// writes the bundle directory. `serve` loads every bundle under
// --bundles and exposes POST /generate, GET /healthz, GET /bundles and
// GET /metrics. A partially corrupt bundle root starts the server in
// the `degraded` health state with the readable bundles, rather than
// refusing to start; it refuses only when nothing loads. Setting
// DP_FAULTS=<site>:<seed>:<rate>[,...] arms deterministic fault
// injection (src/common/fault.hpp) — armed sites are echoed at
// startup. See the README quickstart for a sample curl session.
//
// With --workers N the serve command switches from one in-process
// server to the shared-nothing scale-out front end: N forked serve
// workers (each its own process, bundles and epoll loop) behind the
// in-repo load balancer, which consistent-hash routes by bundle name,
// aggregates /metrics with a worker="id" label, rolls /admin/reload
// across the fleet, and respawns crashed workers under the same id.
// The LB listens on 127.0.0.1:--port.

#include <csignal>
#include <cstdlib>
#include <ctime>
#include <iostream>
#include <map>
#include <memory>
#include <string>

#include <vector>

#include "common/fault.hpp"
#include "common/thread_pool.hpp"
#include "datagen/generator.hpp"
#include "serve/lb.hpp"
#include "serve/server.hpp"

namespace {

using ArgMap = std::map<std::string, std::string>;

ArgMap parseArgs(int argc, char** argv, int first) {
  ArgMap args;
  for (int i = first; i < argc; ++i) {
    std::string a = argv[i];
    if (a.rfind("--", 0) != 0) continue;
    a = a.substr(2);
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0)
      args[a] = argv[++i];
    else
      // Explicit std::string: the const char* assignment path trips a
      // gcc 12 -Wrestrict false positive (GCC PR105329) under -O3.
      args[a] = std::string("1");
  }
  return args;
}

std::string get(const ArgMap& args, const std::string& key,
                const std::string& def) {
  const auto it = args.find(key);
  return it == args.end() ? def : it->second;
}

int usage() {
  std::cout <<
      "usage: deepattern_serve <command> [--flags]\n"
      "  build --spec directprint1..5 --out DIR [--name NAME]\n"
      "        [--clips N] [--steps T] [--guide gan|vae] [--seed S]\n"
      "  serve --bundles DIR [--host H] [--port P] [--queue N]\n"
      "        [--active N] [--batch N] [--threads N]\n"
      "        [--send-timeout S] [--recv-timeout S]\n"
      "        [--workers N] [--worker-threads N]\n";
  return 2;
}

volatile std::sig_atomic_t gStop = 0;
void onSignal(int) { gStop = 1; }

int runBuild(const ArgMap& args) {
  const std::string out = get(args, "out", "");
  if (out.empty()) return usage();
  const std::string specName = get(args, "spec", "directprint1");
  int specIndex = 1;
  if (specName.rfind("directprint", 0) == 0)
    specIndex = std::atoi(specName.c_str() + 11);
  if (specIndex < 1 || specIndex > 5) {
    std::cerr << "unknown spec " << specName << "\n";
    return 2;
  }

  dp::serve::BundleSpec spec;
  spec.name = get(args, "name", specName);
  spec.version = get(args, "version", "1");
  spec.tcae.trainSteps = std::atol(get(args, "steps", "1500").c_str());
  const std::string guide = get(args, "guide", "");
  if (guide == "gan" || guide == "vae") {
    dp::core::GuideConfig gc;
    gc.kind = guide == "gan" ? dp::core::GuideConfig::Kind::kGan
                             : dp::core::GuideConfig::Kind::kVae;
    spec.guide = gc;
  } else if (!guide.empty()) {
    std::cerr << "unknown guide " << guide << "\n";
    return 2;
  }

  dp::Rng rng(std::strtoull(get(args, "seed", "7").c_str(), nullptr, 10));
  const int clips = std::atoi(get(args, "clips", "200").c_str());
  std::cout << "generating " << clips << " training clips (" << specName
            << ")...\n";
  const auto library = dp::datagen::generateLibrary(
      dp::datagen::directprintSpec(specIndex), spec.rules, clips, rng);
  const auto topologies = dp::datagen::extractTopologies(library);

  dp::serve::BundleBuildConfig build;
  build.guideCollect.count =
      std::atol(get(args, "collect", "4000").c_str());
  std::cout << "training bundle '" << spec.name << "' ("
            << spec.tcae.trainSteps << " TCAE steps"
            << (spec.guide ? ", guided" : "") << ")...\n";
  const auto bundle =
      dp::serve::buildBundle(spec, build, topologies, rng);
  bundle->save(out);
  std::cout << "wrote bundle to " << out << "\n";
  return 0;
}

/// Scale-out serve: N forked shared-nothing workers behind the LB.
/// `deployment` was constructed in main() before any thread existed
/// (the inert supervisor must fork from a single-threaded process).
int runScaleOut(dp::serve::Deployment& deployment, const ArgMap& args) {
  const std::string bundles = get(args, "bundles", "");
  if (bundles.empty()) return usage();
  if (!deployment.available()) {
    std::cerr << "supervisor fork failed at startup\n";
    return 1;
  }
  dp::serve::Deployment::Options options;
  options.bundleRoot = bundles;
  options.workers = std::atoi(get(args, "workers", "4").c_str());
  options.lbPort = std::atoi(get(args, "port", "8080").c_str());
  if (const std::string t = get(args, "threads", ""); !t.empty())
    options.handlerThreads = std::atoi(t.c_str());
  options.workerThreads =
      std::atoi(get(args, "worker-threads", "0").c_str());
  deployment.launch(options);

  std::signal(SIGINT, onSignal);
  std::signal(SIGTERM, onSignal);
  for (const auto& w : deployment.queryWorkers())
    std::cout << "worker " << w.id << " pid " << w.pid << " port "
              << w.port << "\n";
  std::cout << "load balancer on 127.0.0.1:" << deployment.lbPort()
            << " — POST /generate, GET /healthz /bundles /metrics, "
               "POST /admin/reload\n";
  while (!gStop) {
    timespec ts{0, 100 * 1000 * 1000};
    nanosleep(&ts, nullptr);
  }
  std::cout << "draining fleet...\n";
  deployment.stop();
  return 0;
}

int runServe(const ArgMap& args) {
  dp::serve::PatternServer::Config config;
  config.http.host = get(args, "host", "127.0.0.1");
  config.http.port = std::atoi(get(args, "port", "8080").c_str());
  config.batcher.queueCapacity =
      std::atoi(get(args, "queue", "64").c_str());
  config.batcher.maxActive = std::atoi(get(args, "active", "8").c_str());
  config.batcher.decodeBatch =
      std::atoi(get(args, "batch", "128").c_str());
  if (const std::string t = get(args, "send-timeout", ""); !t.empty())
    config.http.sendTimeoutSec = std::atoi(t.c_str());
  if (const std::string t = get(args, "recv-timeout", ""); !t.empty())
    config.http.recvTimeoutSec = std::atoi(t.c_str());

  dp::serve::PatternServer server(config);
  const std::string bundles = get(args, "bundles", "");
  if (bundles.empty()) return usage();
  std::vector<std::string> loadErrors;
  const int loaded = server.loadBundles(bundles, &loadErrors);
  for (const auto& err : loadErrors)
    std::cerr << "bundle skipped: " << err << "\n";
  if (loaded == 0) {
    std::cerr << "no loadable bundles under " << bundles << "\n";
    return 1;
  }
  for (const auto& bundle : server.registry().list())
    std::cout << "loaded bundle '" << bundle->name() << "' v"
              << bundle->version() << " (pool "
              << bundle->sourceLatents().size(0)
              << (bundle->guide() ? ", guided" : "") << ")\n";

  std::signal(SIGINT, onSignal);
  std::signal(SIGTERM, onSignal);
  server.start();
  std::cout << "serving on " << config.http.host << ":" << server.port()
            << " — POST /generate, GET /healthz /bundles /metrics\n";
  std::cout << "health: "
            << dp::serve::PatternServer::healthName(server.health())
            << "\n";
  if (dp::faults::anyArmed()) {
    const char* spec = std::getenv("DP_FAULTS");
    std::cout << "fault injection armed: " << (spec ? spec : "(programmatic)")
              << "\n";
  }
  while (!gStop) {
    timespec ts{0, 100 * 1000 * 1000};
    nanosleep(&ts, nullptr);
  }
  std::cout << "draining...\n";
  server.stop();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  const ArgMap args = parseArgs(argc, argv, 2);
  // The scale-out supervisor forks an inert child that later builds
  // the whole worker fleet; fork and threads don't mix, so it must be
  // created here, before the thread pool (or anything else) spawns a
  // thread in this process.
  std::unique_ptr<dp::serve::Deployment> deployment;
  const int workers = std::atoi(get(args, "workers", "0").c_str());
  if (command == "serve" && workers > 0)
    deployment = std::make_unique<dp::serve::Deployment>();
  if (const std::string threads = get(args, "threads", "");
      !threads.empty())
    dp::ThreadPool::setGlobalThreads(std::atoi(threads.c_str()));
  try {
    if (command == "build") return runBuild(args);
    if (command == "serve")
      return deployment ? runScaleOut(*deployment, args)
                        : runServe(args);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return usage();
}
