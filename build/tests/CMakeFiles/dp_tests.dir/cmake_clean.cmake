file(REMOVE_RECURSE
  "CMakeFiles/dp_tests.dir/core_test.cpp.o"
  "CMakeFiles/dp_tests.dir/core_test.cpp.o.d"
  "CMakeFiles/dp_tests.dir/datagen_test.cpp.o"
  "CMakeFiles/dp_tests.dir/datagen_test.cpp.o.d"
  "CMakeFiles/dp_tests.dir/drc_test.cpp.o"
  "CMakeFiles/dp_tests.dir/drc_test.cpp.o.d"
  "CMakeFiles/dp_tests.dir/geometry_test.cpp.o"
  "CMakeFiles/dp_tests.dir/geometry_test.cpp.o.d"
  "CMakeFiles/dp_tests.dir/integration_test.cpp.o"
  "CMakeFiles/dp_tests.dir/integration_test.cpp.o.d"
  "CMakeFiles/dp_tests.dir/io_test.cpp.o"
  "CMakeFiles/dp_tests.dir/io_test.cpp.o.d"
  "CMakeFiles/dp_tests.dir/lp_test.cpp.o"
  "CMakeFiles/dp_tests.dir/lp_test.cpp.o.d"
  "CMakeFiles/dp_tests.dir/models_test.cpp.o"
  "CMakeFiles/dp_tests.dir/models_test.cpp.o.d"
  "CMakeFiles/dp_tests.dir/nn_test.cpp.o"
  "CMakeFiles/dp_tests.dir/nn_test.cpp.o.d"
  "CMakeFiles/dp_tests.dir/property_test.cpp.o"
  "CMakeFiles/dp_tests.dir/property_test.cpp.o.d"
  "CMakeFiles/dp_tests.dir/squish_test.cpp.o"
  "CMakeFiles/dp_tests.dir/squish_test.cpp.o.d"
  "CMakeFiles/dp_tests.dir/tensor_test.cpp.o"
  "CMakeFiles/dp_tests.dir/tensor_test.cpp.o.d"
  "dp_tests"
  "dp_tests.pdb"
  "dp_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dp_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
