file(REMOVE_RECURSE
  "CMakeFiles/fig9_perturbation.dir/fig9_perturbation.cpp.o"
  "CMakeFiles/fig9_perturbation.dir/fig9_perturbation.cpp.o.d"
  "fig9_perturbation"
  "fig9_perturbation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_perturbation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
