# Empty compiler generated dependencies file for fig9_perturbation.
# This may be replaced when dependencies are built.
