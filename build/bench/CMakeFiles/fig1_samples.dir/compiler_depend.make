# Empty compiler generated dependencies file for fig1_samples.
# This may be replaced when dependencies are built.
