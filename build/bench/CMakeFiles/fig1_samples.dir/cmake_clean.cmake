file(REMOVE_RECURSE
  "CMakeFiles/fig1_samples.dir/fig1_samples.cpp.o"
  "CMakeFiles/fig1_samples.dir/fig1_samples.cpp.o.d"
  "fig1_samples"
  "fig1_samples.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_samples.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
