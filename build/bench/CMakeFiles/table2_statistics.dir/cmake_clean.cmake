file(REMOVE_RECURSE
  "CMakeFiles/table2_statistics.dir/table2_statistics.cpp.o"
  "CMakeFiles/table2_statistics.dir/table2_statistics.cpp.o.d"
  "table2_statistics"
  "table2_statistics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_statistics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
