# Empty compiler generated dependencies file for table2_statistics.
# This may be replaced when dependencies are built.
