file(REMOVE_RECURSE
  "CMakeFiles/table3_gtcae.dir/table3_gtcae.cpp.o"
  "CMakeFiles/table3_gtcae.dir/table3_gtcae.cpp.o.d"
  "table3_gtcae"
  "table3_gtcae.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_gtcae.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
