# Empty dependencies file for table3_gtcae.
# This may be replaced when dependencies are built.
