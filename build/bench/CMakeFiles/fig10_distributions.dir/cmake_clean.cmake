file(REMOVE_RECURSE
  "CMakeFiles/fig10_distributions.dir/fig10_distributions.cpp.o"
  "CMakeFiles/fig10_distributions.dir/fig10_distributions.cpp.o.d"
  "fig10_distributions"
  "fig10_distributions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_distributions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
