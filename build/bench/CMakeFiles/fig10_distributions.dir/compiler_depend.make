# Empty compiler generated dependencies file for fig10_distributions.
# This may be replaced when dependencies are built.
