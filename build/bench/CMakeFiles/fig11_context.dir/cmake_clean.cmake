file(REMOVE_RECURSE
  "CMakeFiles/fig11_context.dir/fig11_context.cpp.o"
  "CMakeFiles/fig11_context.dir/fig11_context.cpp.o.d"
  "fig11_context"
  "fig11_context.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_context.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
