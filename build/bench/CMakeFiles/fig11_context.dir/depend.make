# Empty dependencies file for fig11_context.
# This may be replaced when dependencies are built.
