file(REMOVE_RECURSE
  "CMakeFiles/storage_model.dir/storage_model.cpp.o"
  "CMakeFiles/storage_model.dir/storage_model.cpp.o.d"
  "storage_model"
  "storage_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storage_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
