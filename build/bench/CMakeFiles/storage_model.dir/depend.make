# Empty dependencies file for storage_model.
# This may be replaced when dependencies are built.
