# Empty dependencies file for pattern_library_expansion.
# This may be replaced when dependencies are built.
