file(REMOVE_RECURSE
  "CMakeFiles/pattern_library_expansion.dir/pattern_library_expansion.cpp.o"
  "CMakeFiles/pattern_library_expansion.dir/pattern_library_expansion.cpp.o.d"
  "pattern_library_expansion"
  "pattern_library_expansion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pattern_library_expansion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
