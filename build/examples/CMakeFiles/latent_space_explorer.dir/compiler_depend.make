# Empty compiler generated dependencies file for latent_space_explorer.
# This may be replaced when dependencies are built.
