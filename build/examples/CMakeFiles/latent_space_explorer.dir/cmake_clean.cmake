file(REMOVE_RECURSE
  "CMakeFiles/latent_space_explorer.dir/latent_space_explorer.cpp.o"
  "CMakeFiles/latent_space_explorer.dir/latent_space_explorer.cpp.o.d"
  "latent_space_explorer"
  "latent_space_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/latent_space_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
