file(REMOVE_RECURSE
  "CMakeFiles/context_specific_generation.dir/context_specific_generation.cpp.o"
  "CMakeFiles/context_specific_generation.dir/context_specific_generation.cpp.o.d"
  "context_specific_generation"
  "context_specific_generation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/context_specific_generation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
