# Empty compiler generated dependencies file for context_specific_generation.
# This may be replaced when dependencies are built.
