# Empty dependencies file for deepattern_cli.
# This may be replaced when dependencies are built.
