
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/deepattern_cli.cpp" "examples/CMakeFiles/deepattern_cli.dir/deepattern_cli.cpp.o" "gcc" "examples/CMakeFiles/deepattern_cli.dir/deepattern_cli.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/dp_models.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/dp_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/dp_io.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/dp_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/drc/CMakeFiles/dp_drc.dir/DependInfo.cmake"
  "/root/repo/build/src/squish/CMakeFiles/dp_squish.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/dp_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/dp_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/dp_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
