file(REMOVE_RECURSE
  "CMakeFiles/deepattern_cli.dir/deepattern_cli.cpp.o"
  "CMakeFiles/deepattern_cli.dir/deepattern_cli.cpp.o.d"
  "deepattern_cli"
  "deepattern_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deepattern_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
