file(REMOVE_RECURSE
  "CMakeFiles/dp_tensor.dir/gemm.cpp.o"
  "CMakeFiles/dp_tensor.dir/gemm.cpp.o.d"
  "CMakeFiles/dp_tensor.dir/im2col.cpp.o"
  "CMakeFiles/dp_tensor.dir/im2col.cpp.o.d"
  "CMakeFiles/dp_tensor.dir/tensor.cpp.o"
  "CMakeFiles/dp_tensor.dir/tensor.cpp.o.d"
  "libdp_tensor.a"
  "libdp_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dp_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
