# Empty compiler generated dependencies file for dp_tensor.
# This may be replaced when dependencies are built.
