file(REMOVE_RECURSE
  "libdp_tensor.a"
)
