
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/models/batch.cpp" "src/models/CMakeFiles/dp_models.dir/batch.cpp.o" "gcc" "src/models/CMakeFiles/dp_models.dir/batch.cpp.o.d"
  "/root/repo/src/models/gan.cpp" "src/models/CMakeFiles/dp_models.dir/gan.cpp.o" "gcc" "src/models/CMakeFiles/dp_models.dir/gan.cpp.o.d"
  "/root/repo/src/models/tcae.cpp" "src/models/CMakeFiles/dp_models.dir/tcae.cpp.o" "gcc" "src/models/CMakeFiles/dp_models.dir/tcae.cpp.o.d"
  "/root/repo/src/models/topology_codec.cpp" "src/models/CMakeFiles/dp_models.dir/topology_codec.cpp.o" "gcc" "src/models/CMakeFiles/dp_models.dir/topology_codec.cpp.o.d"
  "/root/repo/src/models/vae.cpp" "src/models/CMakeFiles/dp_models.dir/vae.cpp.o" "gcc" "src/models/CMakeFiles/dp_models.dir/vae.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/dp_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/squish/CMakeFiles/dp_squish.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/dp_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/dp_geometry.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
