file(REMOVE_RECURSE
  "libdp_models.a"
)
