file(REMOVE_RECURSE
  "CMakeFiles/dp_models.dir/batch.cpp.o"
  "CMakeFiles/dp_models.dir/batch.cpp.o.d"
  "CMakeFiles/dp_models.dir/gan.cpp.o"
  "CMakeFiles/dp_models.dir/gan.cpp.o.d"
  "CMakeFiles/dp_models.dir/tcae.cpp.o"
  "CMakeFiles/dp_models.dir/tcae.cpp.o.d"
  "CMakeFiles/dp_models.dir/topology_codec.cpp.o"
  "CMakeFiles/dp_models.dir/topology_codec.cpp.o.d"
  "CMakeFiles/dp_models.dir/vae.cpp.o"
  "CMakeFiles/dp_models.dir/vae.cpp.o.d"
  "libdp_models.a"
  "libdp_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dp_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
