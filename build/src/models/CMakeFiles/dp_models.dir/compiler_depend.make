# Empty compiler generated dependencies file for dp_models.
# This may be replaced when dependencies are built.
