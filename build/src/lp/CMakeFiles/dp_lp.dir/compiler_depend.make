# Empty compiler generated dependencies file for dp_lp.
# This may be replaced when dependencies are built.
