file(REMOVE_RECURSE
  "CMakeFiles/dp_lp.dir/diff_constraints.cpp.o"
  "CMakeFiles/dp_lp.dir/diff_constraints.cpp.o.d"
  "CMakeFiles/dp_lp.dir/geometry_solver.cpp.o"
  "CMakeFiles/dp_lp.dir/geometry_solver.cpp.o.d"
  "CMakeFiles/dp_lp.dir/simplex.cpp.o"
  "CMakeFiles/dp_lp.dir/simplex.cpp.o.d"
  "libdp_lp.a"
  "libdp_lp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dp_lp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
