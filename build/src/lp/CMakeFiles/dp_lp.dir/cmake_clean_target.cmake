file(REMOVE_RECURSE
  "libdp_lp.a"
)
