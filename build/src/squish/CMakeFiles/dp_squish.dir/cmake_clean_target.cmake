file(REMOVE_RECURSE
  "libdp_squish.a"
)
