# Empty compiler generated dependencies file for dp_squish.
# This may be replaced when dependencies are built.
