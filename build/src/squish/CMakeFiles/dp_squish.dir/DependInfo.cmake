
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/squish/canonical.cpp" "src/squish/CMakeFiles/dp_squish.dir/canonical.cpp.o" "gcc" "src/squish/CMakeFiles/dp_squish.dir/canonical.cpp.o.d"
  "/root/repo/src/squish/complexity.cpp" "src/squish/CMakeFiles/dp_squish.dir/complexity.cpp.o" "gcc" "src/squish/CMakeFiles/dp_squish.dir/complexity.cpp.o.d"
  "/root/repo/src/squish/extract.cpp" "src/squish/CMakeFiles/dp_squish.dir/extract.cpp.o" "gcc" "src/squish/CMakeFiles/dp_squish.dir/extract.cpp.o.d"
  "/root/repo/src/squish/hash.cpp" "src/squish/CMakeFiles/dp_squish.dir/hash.cpp.o" "gcc" "src/squish/CMakeFiles/dp_squish.dir/hash.cpp.o.d"
  "/root/repo/src/squish/pad.cpp" "src/squish/CMakeFiles/dp_squish.dir/pad.cpp.o" "gcc" "src/squish/CMakeFiles/dp_squish.dir/pad.cpp.o.d"
  "/root/repo/src/squish/reconstruct.cpp" "src/squish/CMakeFiles/dp_squish.dir/reconstruct.cpp.o" "gcc" "src/squish/CMakeFiles/dp_squish.dir/reconstruct.cpp.o.d"
  "/root/repo/src/squish/squish_pattern.cpp" "src/squish/CMakeFiles/dp_squish.dir/squish_pattern.cpp.o" "gcc" "src/squish/CMakeFiles/dp_squish.dir/squish_pattern.cpp.o.d"
  "/root/repo/src/squish/topology.cpp" "src/squish/CMakeFiles/dp_squish.dir/topology.cpp.o" "gcc" "src/squish/CMakeFiles/dp_squish.dir/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geometry/CMakeFiles/dp_geometry.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
