file(REMOVE_RECURSE
  "CMakeFiles/dp_squish.dir/canonical.cpp.o"
  "CMakeFiles/dp_squish.dir/canonical.cpp.o.d"
  "CMakeFiles/dp_squish.dir/complexity.cpp.o"
  "CMakeFiles/dp_squish.dir/complexity.cpp.o.d"
  "CMakeFiles/dp_squish.dir/extract.cpp.o"
  "CMakeFiles/dp_squish.dir/extract.cpp.o.d"
  "CMakeFiles/dp_squish.dir/hash.cpp.o"
  "CMakeFiles/dp_squish.dir/hash.cpp.o.d"
  "CMakeFiles/dp_squish.dir/pad.cpp.o"
  "CMakeFiles/dp_squish.dir/pad.cpp.o.d"
  "CMakeFiles/dp_squish.dir/reconstruct.cpp.o"
  "CMakeFiles/dp_squish.dir/reconstruct.cpp.o.d"
  "CMakeFiles/dp_squish.dir/squish_pattern.cpp.o"
  "CMakeFiles/dp_squish.dir/squish_pattern.cpp.o.d"
  "CMakeFiles/dp_squish.dir/topology.cpp.o"
  "CMakeFiles/dp_squish.dir/topology.cpp.o.d"
  "libdp_squish.a"
  "libdp_squish.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dp_squish.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
