file(REMOVE_RECURSE
  "CMakeFiles/dp_core.dir/flows.cpp.o"
  "CMakeFiles/dp_core.dir/flows.cpp.o.d"
  "CMakeFiles/dp_core.dir/generation_result.cpp.o"
  "CMakeFiles/dp_core.dir/generation_result.cpp.o.d"
  "CMakeFiles/dp_core.dir/gtcae.cpp.o"
  "CMakeFiles/dp_core.dir/gtcae.cpp.o.d"
  "CMakeFiles/dp_core.dir/pattern_library.cpp.o"
  "CMakeFiles/dp_core.dir/pattern_library.cpp.o.d"
  "CMakeFiles/dp_core.dir/perturb.cpp.o"
  "CMakeFiles/dp_core.dir/perturb.cpp.o.d"
  "CMakeFiles/dp_core.dir/pipeline.cpp.o"
  "CMakeFiles/dp_core.dir/pipeline.cpp.o.d"
  "CMakeFiles/dp_core.dir/sensitivity.cpp.o"
  "CMakeFiles/dp_core.dir/sensitivity.cpp.o.d"
  "libdp_core.a"
  "libdp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
