file(REMOVE_RECURSE
  "CMakeFiles/dp_drc.dir/geometry_rules.cpp.o"
  "CMakeFiles/dp_drc.dir/geometry_rules.cpp.o.d"
  "CMakeFiles/dp_drc.dir/topology_rules.cpp.o"
  "CMakeFiles/dp_drc.dir/topology_rules.cpp.o.d"
  "CMakeFiles/dp_drc.dir/violation.cpp.o"
  "CMakeFiles/dp_drc.dir/violation.cpp.o.d"
  "libdp_drc.a"
  "libdp_drc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dp_drc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
