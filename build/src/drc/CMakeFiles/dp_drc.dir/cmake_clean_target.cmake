file(REMOVE_RECURSE
  "libdp_drc.a"
)
