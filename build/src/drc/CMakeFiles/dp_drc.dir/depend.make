# Empty dependencies file for dp_drc.
# This may be replaced when dependencies are built.
