
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/drc/geometry_rules.cpp" "src/drc/CMakeFiles/dp_drc.dir/geometry_rules.cpp.o" "gcc" "src/drc/CMakeFiles/dp_drc.dir/geometry_rules.cpp.o.d"
  "/root/repo/src/drc/topology_rules.cpp" "src/drc/CMakeFiles/dp_drc.dir/topology_rules.cpp.o" "gcc" "src/drc/CMakeFiles/dp_drc.dir/topology_rules.cpp.o.d"
  "/root/repo/src/drc/violation.cpp" "src/drc/CMakeFiles/dp_drc.dir/violation.cpp.o" "gcc" "src/drc/CMakeFiles/dp_drc.dir/violation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geometry/CMakeFiles/dp_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/squish/CMakeFiles/dp_squish.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
