
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/io/ascii_art.cpp" "src/io/CMakeFiles/dp_io.dir/ascii_art.cpp.o" "gcc" "src/io/CMakeFiles/dp_io.dir/ascii_art.cpp.o.d"
  "/root/repo/src/io/csv.cpp" "src/io/CMakeFiles/dp_io.dir/csv.cpp.o" "gcc" "src/io/CMakeFiles/dp_io.dir/csv.cpp.o.d"
  "/root/repo/src/io/gdsii.cpp" "src/io/CMakeFiles/dp_io.dir/gdsii.cpp.o" "gcc" "src/io/CMakeFiles/dp_io.dir/gdsii.cpp.o.d"
  "/root/repo/src/io/heatmap.cpp" "src/io/CMakeFiles/dp_io.dir/heatmap.cpp.o" "gcc" "src/io/CMakeFiles/dp_io.dir/heatmap.cpp.o.d"
  "/root/repo/src/io/layout_text.cpp" "src/io/CMakeFiles/dp_io.dir/layout_text.cpp.o" "gcc" "src/io/CMakeFiles/dp_io.dir/layout_text.cpp.o.d"
  "/root/repo/src/io/table.cpp" "src/io/CMakeFiles/dp_io.dir/table.cpp.o" "gcc" "src/io/CMakeFiles/dp_io.dir/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geometry/CMakeFiles/dp_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/squish/CMakeFiles/dp_squish.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
