file(REMOVE_RECURSE
  "CMakeFiles/dp_io.dir/ascii_art.cpp.o"
  "CMakeFiles/dp_io.dir/ascii_art.cpp.o.d"
  "CMakeFiles/dp_io.dir/csv.cpp.o"
  "CMakeFiles/dp_io.dir/csv.cpp.o.d"
  "CMakeFiles/dp_io.dir/gdsii.cpp.o"
  "CMakeFiles/dp_io.dir/gdsii.cpp.o.d"
  "CMakeFiles/dp_io.dir/heatmap.cpp.o"
  "CMakeFiles/dp_io.dir/heatmap.cpp.o.d"
  "CMakeFiles/dp_io.dir/layout_text.cpp.o"
  "CMakeFiles/dp_io.dir/layout_text.cpp.o.d"
  "CMakeFiles/dp_io.dir/table.cpp.o"
  "CMakeFiles/dp_io.dir/table.cpp.o.d"
  "libdp_io.a"
  "libdp_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dp_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
