file(REMOVE_RECURSE
  "libdp_io.a"
)
