# Empty dependencies file for dp_io.
# This may be replaced when dependencies are built.
