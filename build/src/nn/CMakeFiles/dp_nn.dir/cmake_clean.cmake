file(REMOVE_RECURSE
  "CMakeFiles/dp_nn.dir/activations.cpp.o"
  "CMakeFiles/dp_nn.dir/activations.cpp.o.d"
  "CMakeFiles/dp_nn.dir/batchnorm.cpp.o"
  "CMakeFiles/dp_nn.dir/batchnorm.cpp.o.d"
  "CMakeFiles/dp_nn.dir/conv2d.cpp.o"
  "CMakeFiles/dp_nn.dir/conv2d.cpp.o.d"
  "CMakeFiles/dp_nn.dir/conv_transpose2d.cpp.o"
  "CMakeFiles/dp_nn.dir/conv_transpose2d.cpp.o.d"
  "CMakeFiles/dp_nn.dir/init.cpp.o"
  "CMakeFiles/dp_nn.dir/init.cpp.o.d"
  "CMakeFiles/dp_nn.dir/linear.cpp.o"
  "CMakeFiles/dp_nn.dir/linear.cpp.o.d"
  "CMakeFiles/dp_nn.dir/loss.cpp.o"
  "CMakeFiles/dp_nn.dir/loss.cpp.o.d"
  "CMakeFiles/dp_nn.dir/optimizer.cpp.o"
  "CMakeFiles/dp_nn.dir/optimizer.cpp.o.d"
  "CMakeFiles/dp_nn.dir/sequential.cpp.o"
  "CMakeFiles/dp_nn.dir/sequential.cpp.o.d"
  "CMakeFiles/dp_nn.dir/serialize.cpp.o"
  "CMakeFiles/dp_nn.dir/serialize.cpp.o.d"
  "libdp_nn.a"
  "libdp_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dp_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
