# Empty dependencies file for dp_nn.
# This may be replaced when dependencies are built.
