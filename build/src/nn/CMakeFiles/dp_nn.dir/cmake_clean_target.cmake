file(REMOVE_RECURSE
  "libdp_nn.a"
)
