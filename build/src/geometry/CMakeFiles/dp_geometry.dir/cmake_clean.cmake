file(REMOVE_RECURSE
  "CMakeFiles/dp_geometry.dir/clip.cpp.o"
  "CMakeFiles/dp_geometry.dir/clip.cpp.o.d"
  "CMakeFiles/dp_geometry.dir/rect.cpp.o"
  "CMakeFiles/dp_geometry.dir/rect.cpp.o.d"
  "CMakeFiles/dp_geometry.dir/track_grid.cpp.o"
  "CMakeFiles/dp_geometry.dir/track_grid.cpp.o.d"
  "libdp_geometry.a"
  "libdp_geometry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dp_geometry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
