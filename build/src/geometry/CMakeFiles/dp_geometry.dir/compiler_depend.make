# Empty compiler generated dependencies file for dp_geometry.
# This may be replaced when dependencies are built.
