file(REMOVE_RECURSE
  "libdp_geometry.a"
)
