
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geometry/clip.cpp" "src/geometry/CMakeFiles/dp_geometry.dir/clip.cpp.o" "gcc" "src/geometry/CMakeFiles/dp_geometry.dir/clip.cpp.o.d"
  "/root/repo/src/geometry/rect.cpp" "src/geometry/CMakeFiles/dp_geometry.dir/rect.cpp.o" "gcc" "src/geometry/CMakeFiles/dp_geometry.dir/rect.cpp.o.d"
  "/root/repo/src/geometry/track_grid.cpp" "src/geometry/CMakeFiles/dp_geometry.dir/track_grid.cpp.o" "gcc" "src/geometry/CMakeFiles/dp_geometry.dir/track_grid.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
