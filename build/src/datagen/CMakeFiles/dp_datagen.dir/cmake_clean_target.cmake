file(REMOVE_RECURSE
  "libdp_datagen.a"
)
