# Empty dependencies file for dp_datagen.
# This may be replaced when dependencies are built.
