file(REMOVE_RECURSE
  "CMakeFiles/dp_datagen.dir/generator.cpp.o"
  "CMakeFiles/dp_datagen.dir/generator.cpp.o.d"
  "CMakeFiles/dp_datagen.dir/library_spec.cpp.o"
  "CMakeFiles/dp_datagen.dir/library_spec.cpp.o.d"
  "libdp_datagen.a"
  "libdp_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dp_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
