#include "train/checkpoint.hpp"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/atomic_file.hpp"
#include "common/fault.hpp"
#include "io/json.hpp"
#include "nn/serialize.hpp"

namespace dp::train {

namespace fs = std::filesystem;
using dp::io::Json;

namespace {

std::string readFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::string stateFileName(long step) {
  // Built piecewise: gcc 12's -Wrestrict misfires on chained
  // "state." + std::to_string(...) + ".bin" temporaries.
  std::string name = "state.";
  name += std::to_string(step);
  name += ".bin";
  return name;
}

Json traceJson(const std::vector<double>& values) {
  Json arr = Json::array();
  for (const double v : values) arr.push(Json(v));
  return arr;
}

std::vector<double> traceFromJson(const Json& arr) {
  std::vector<double> out;
  out.reserve(arr.size());
  for (std::size_t i = 0; i < arr.size(); ++i)
    out.push_back(arr.at(i).asDouble());
  return out;
}

}  // namespace

std::uint64_t hashInit() { return 0xcbf29ce484222325ull; }

std::uint64_t hashMix(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffu;
    h *= 0x100000001b3ull;
  }
  return h;
}

std::uint64_t hashMixDouble(std::uint64_t h, double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof bits == sizeof v);
  __builtin_memcpy(&bits, &v, sizeof bits);
  return hashMix(h, bits);
}

void saveCheckpoint(const std::string& dir, const TrainCheckpoint& record,
                    const std::vector<const nn::Tensor*>& tensors) {
  static FaultSite saveFault("train.checkpoint.save");
  saveFault.orThrow();
  fs::create_directories(dir);

  // Data first, commit second: the state file carries the step as its
  // generation suffix, so it never overwrites the file the current
  // manifest points at (a re-save of the same step after a crash
  // rewrites identical bytes through an atomic rename).
  const std::string stateFile = stateFileName(record.step);
  nn::saveTensors(tensors, dir + "/" + stateFile);

  Json files = Json::object();
  {
    Json f = Json::object();
    f.set("path", stateFile);
    f.set("crc32",
          static_cast<double>(crc32File(dir + "/" + stateFile)));
    f.set("bytes",
          static_cast<double>(fs::file_size(dir + "/" + stateFile)));
    files.set("state", std::move(f));
  }

  // Every field below is a pure function of the training history (no
  // timestamps, no save counters), so an interrupted-and-resumed run
  // commits a manifest byte-identical to the uninterrupted run's.
  Json m = Json::object();
  m.set("format", "dp-train-1");
  m.set("step", static_cast<double>(record.step));
  m.set("totalSteps", static_cast<double>(record.totalSteps));
  m.set("epoch", static_cast<double>(record.epoch));
  m.set("rollbacks", record.rollbacks);
  m.set("lrScale", record.lrScale);
  m.set("nanEvents", static_cast<double>(record.nanEvents));
  m.set("lossTrace", traceJson(record.lossTrace));
  m.set("recentLosses", traceJson(record.recentLosses));
  m.set("rngState", record.rngState);
  // Decimal string: a 64-bit hash does not survive a double round-trip.
  m.set("configHash", std::to_string(record.configHash));
  m.set("files", std::move(files));

  AtomicFileWriter out(dir + "/manifest.json");
  out.append(m.dump());
  out.append("\n");
  (void)out.commit();

  sweepStaleCheckpoints(dir, record.step);
}

std::optional<TrainCheckpoint> loadCheckpoint(
    const std::string& dir, std::uint64_t expectConfigHash,
    const std::vector<nn::Tensor*>& tensors) {
  static FaultSite loadFault("train.checkpoint.load");
  const std::string manifestPath = dir + "/manifest.json";
  if (!fs::exists(manifestPath)) {
    // Fresh run — but a crashed save may have left temp files or an
    // uncommitted state file behind; start from a clean directory.
    if (fs::is_directory(dir)) sweepStaleCheckpoints(dir, -1);
    return std::nullopt;
  }
  loadFault.orThrow();

  const Json m = Json::parse(readFile(manifestPath));
  if (!m.get("format").isString() ||
      m.at("format").asString() != "dp-train-1")
    throw std::runtime_error("loadCheckpoint: " + dir +
                             ": unsupported manifest format");

  TrainCheckpoint rec;
  rec.step = m.at("step").asLong();
  rec.totalSteps = m.at("totalSteps").asLong();
  rec.epoch = m.at("epoch").asLong();
  rec.rollbacks = static_cast<int>(m.at("rollbacks").asLong());
  rec.lrScale = m.at("lrScale").asDouble();
  rec.nanEvents = m.at("nanEvents").asLong();
  rec.lossTrace = traceFromJson(m.at("lossTrace"));
  rec.recentLosses = traceFromJson(m.at("recentLosses"));
  rec.rngState = m.at("rngState").asString();
  rec.configHash = m.at("configHash").asUint64();
  if (rec.configHash != expectConfigHash)
    throw std::runtime_error(
        "loadCheckpoint: " + dir +
        ": checkpoint was written by a run with different parameters "
        "(config hash mismatch) — refusing to resume");

  // Verify byte size and CRC-32 before anything is deserialized, like
  // serve bundles: a torn or bit-rotted state file must never load.
  const Json& f = m.at("files").at("state");
  const std::string statePath = dir + "/" + f.at("path").asString();
  const std::uint64_t bytes = f.at("bytes").asUint64();
  const auto want = static_cast<std::uint32_t>(f.at("crc32").asUint64());
  std::error_code ec;
  const std::uint64_t actual = fs::file_size(statePath, ec);
  if (ec || actual != bytes)
    throw std::runtime_error(
        "loadCheckpoint: " + statePath + ": size mismatch (manifest says " +
        std::to_string(bytes) + " bytes, file has " +
        (ec ? "none" : std::to_string(actual)) + ")");
  if (crc32File(statePath) != want)
    throw std::runtime_error("loadCheckpoint: " + statePath +
                             ": checksum mismatch (corrupt checkpoint)");
  nn::loadTensors(tensors, statePath);

  // A SIGKILL between a commit and its sweep leaves stale files the
  // unwind-based cleanup never saw; converge here so the directory's
  // final content does not depend on where the crash landed.
  sweepStaleCheckpoints(dir, rec.step);
  return rec;
}

void sweepStaleCheckpoints(const std::string& dir, long keepStep) {
  const std::string keep = keepStep < 0 ? "" : stateFileName(keepStep);
  std::error_code ec;
  std::vector<fs::path> stale;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.find(".tmp.") != std::string::npos) {
      stale.push_back(entry.path());  // crashed atomic write
      continue;
    }
    if (name.rfind("state.", 0) == 0 && name != keep)
      stale.push_back(entry.path());
  }
  for (const auto& path : stale) fs::remove(path, ec);
}

}  // namespace dp::train
