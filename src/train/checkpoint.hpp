#pragma once

/// \file checkpoint.hpp
/// The TrainCheckpoint record: everything a resumable training run
/// needs to continue bit-exactly from a step boundary — model
/// parameters and running stats, optimizer state, the RNG stream
/// position, the step/epoch cursor, the loss trace, and the guard's
/// rollback state (DESIGN.md §16).
///
/// On-disk layout (one directory per run):
///   manifest.json    the atomic commit record: format tag, cursor,
///                    guard state, RNG state, loss traces, and a
///                    "files" map (path + byte size + CRC-32) for the
///                    state file, published last via AtomicFileWriter
///   state.<s>.bin    all checkpoint tensors at step s (nn::saveTensors)
///
/// The scheme mirrors dp-bundles (serve/bundle.cpp) with the step
/// cursor as the generation number: a save at step s writes
/// state.<s>.bin first and commits the manifest second, so a crash at
/// any instant leaves the previous checkpoint loadable; stale
/// generations are swept only after commit. Because the file name is
/// the step — not a monotonic save counter — an interrupted-and-
/// resumed run converges on a directory byte-identical to an
/// uninterrupted run's, no matter how many extra checkpoints (SIGTERM
/// seals, crash windows) happened along the way.
///
/// Fault sites (common/fault.hpp): train.checkpoint.save,
/// train.checkpoint.load.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "nn/layer.hpp"

namespace dp::train {

/// Serializable cursor + guard state of a training run. The tensor
/// payload (params, model state, optimizer state) travels separately
/// as the state file; this record is the manifest's content.
struct TrainCheckpoint {
  long step = 0;        ///< completed steps (the resume cursor)
  long totalSteps = 0;  ///< target step count of the run
  long epoch = 0;       ///< derived: step*samplesPerStep/datasetSize
  int rollbacks = 0;    ///< divergence rollbacks taken so far
  double lrScale = 1.0; ///< product of LR backoff factors
  long nanEvents = 0;   ///< non-finite loss/grad detections so far
  /// Loss at every traceEvery-th step, keyed implicitly by index
  /// (entry i = step i*traceEvery). Re-recorded entries after a
  /// rollback overwrite their slot, so the trace stays well-defined.
  std::vector<double> lossTrace;
  /// The guard's trailing loss window (most recent last) — carried so
  /// a resumed run's spike detector sees exactly the history the
  /// uninterrupted run would.
  std::vector<double> recentLosses;
  std::string rngState;        ///< Rng::state() of the training stream
  std::uint64_t configHash = 0;  ///< run identity; mismatch = reject
};

/// FNV-1a accumulation helpers for TrainCheckpoint::configHash. Models
/// fold their hyper-parameters and dataset size into a hash so a
/// checkpoint directory cannot silently resume a different run.
[[nodiscard]] std::uint64_t hashInit();
[[nodiscard]] std::uint64_t hashMix(std::uint64_t h, std::uint64_t v);
[[nodiscard]] std::uint64_t hashMixDouble(std::uint64_t h, double v);

/// Publishes a checkpoint: state.<step>.bin (tensor payload) then
/// manifest.json (atomic commit), then sweeps stale generations and
/// orphaned temp files. Crash-safe at every instant.
void saveCheckpoint(const std::string& dir, const TrainCheckpoint& record,
                    const std::vector<const nn::Tensor*>& tensors);

/// Loads the checkpoint committed in `dir` into `tensors` (shapes must
/// match exactly; see nn::loadTensors) and returns its record.
/// Returns nullopt when the directory has no manifest (fresh run).
/// Throws on a corrupt manifest, a state-file size/CRC mismatch, or a
/// configHash differing from `expectConfigHash` — a checkpoint must
/// never silently resume under different parameters.
[[nodiscard]] std::optional<TrainCheckpoint> loadCheckpoint(
    const std::string& dir, std::uint64_t expectConfigHash,
    const std::vector<nn::Tensor*>& tensors);

/// Removes state files from steps other than `keepStep` plus orphaned
/// atomic-writer temp files (a SIGKILL skips unwind cleanup).
/// Best-effort: stale files cost disk, never correctness.
void sweepStaleCheckpoints(const std::string& dir, long keepStep);

}  // namespace dp::train
