#include "train/harness.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <csignal>
#include <limits>

#include "common/fault.hpp"
#include "train/checkpoint.hpp"

namespace dp::train {

namespace {

// Set from the SIGTERM handler, so it must be lock-free; relaxed
// ordering suffices because the flag carries no other data.
std::atomic<bool> g_stopRequested{false};
static_assert(std::atomic<bool>::is_always_lock_free);

extern "C" void stopSignalHandler(int) {
  g_stopRequested.store(true, std::memory_order_relaxed);
}

}  // namespace

void installStopHandler() {
  struct sigaction sa = {};
  sa.sa_handler = stopSignalHandler;
  sigemptyset(&sa.sa_mask);
  sigaction(SIGTERM, &sa, nullptr);
}

void requestStop() { g_stopRequested.store(true, std::memory_order_relaxed); }

void clearStopRequest() {
  g_stopRequested.store(false, std::memory_order_relaxed);
}

bool stopRequested() {
  return g_stopRequested.load(std::memory_order_relaxed);
}

Harness::Harness(std::vector<nn::Param*> params,
                 std::vector<nn::Tensor*> modelState,
                 std::vector<nn::Optimizer*> optimizers, HarnessSpec spec,
                 TrainOptions options)
    : params_(std::move(params)), modelState_(std::move(modelState)),
      opts_(std::move(optimizers)), spec_(std::move(spec)),
      options_(std::move(options)) {
  if (!spec_.lrAt)
    throw std::invalid_argument("Harness: spec.lrAt is required");
  if (spec_.totalSteps < 0)
    throw std::invalid_argument("Harness: negative totalSteps");
  if (options_.checkpointEvery < 1)
    throw std::invalid_argument("Harness: checkpointEvery must be >= 1");
  if (options_.traceEvery < 1)
    throw std::invalid_argument("Harness: traceEvery must be >= 1");
  for (nn::Param* p : params_)
    if (!p) throw std::invalid_argument("Harness: null parameter");
  for (nn::Tensor* t : modelState_)
    if (!t) throw std::invalid_argument("Harness: null state tensor");
  for (nn::Optimizer* o : opts_)
    if (!o) throw std::invalid_argument("Harness: null optimizer");
}

std::vector<nn::Tensor*> Harness::checkpointTensors() {
  std::vector<nn::Tensor*> out;
  out.reserve(params_.size() + modelState_.size());
  for (nn::Param* p : params_) out.push_back(&p->value);
  for (nn::Tensor* t : modelState_) out.push_back(t);
  for (nn::Optimizer* o : opts_)
    for (nn::Tensor* t : o->state()) out.push_back(t);
  return out;
}

void Harness::takeSnapshot(const Rng& rng) {
  snapshot_.step = cursor_;
  snapshot_.tensors.clear();
  for (nn::Tensor* t : checkpointTensors()) snapshot_.tensors.push_back(*t);
  snapshot_.rngState = rng.state();
  snapshot_.lossTrace = lossTrace_;
  snapshot_.recentLosses = recentLosses_;
}

void Harness::restoreSnapshot(Rng& rng) {
  const std::vector<nn::Tensor*> live = checkpointTensors();
  for (std::size_t i = 0; i < live.size(); ++i)
    *live[i] = snapshot_.tensors[i];
  syncOptimizers();
  rng.setState(snapshot_.rngState);
  cursor_ = snapshot_.step;
  lossTrace_ = snapshot_.lossTrace;
  recentLosses_ = snapshot_.recentLosses;
}

void Harness::syncOptimizers() {
  for (nn::Optimizer* o : opts_) o->loadState();
}

void Harness::setLearningRate() {
  const double lr = spec_.lrAt(cursor_) * lrScale_;
  for (nn::Optimizer* o : opts_) o->setLearningRate(lr);
}

void Harness::guardedStep(nn::Optimizer& opt) {
  static FaultSite nanFault("train.guard.nan");
  if (nanFault.shouldFail())
    throw DivergenceError(
        DivergenceError::Kind::kInjected, cursor_,
        "injected non-finite gradient (train.guard.nan)",
        std::numeric_limits<double>::quiet_NaN());
  if (options_.sentinels) {
    for (const nn::Param* p : opt.params())
      for (std::size_t i = 0; i < p->grad.numel(); ++i)
        if (!std::isfinite(p->grad[i]))
          throw DivergenceError(DivergenceError::Kind::kNonFinite, cursor_,
                                "non-finite gradient",
                                static_cast<double>(p->grad[i]));
  }
  if (options_.gradClipNorm > 0.0) {
    // Serial accumulation: the clip factor must not depend on thread
    // count. Weight decay is applied at update time, after the clip,
    // matching the usual clip-then-decay convention.
    double sumSq = 0.0;
    for (const nn::Param* p : opt.params())
      for (std::size_t i = 0; i < p->grad.numel(); ++i) {
        const double g = p->grad[i];
        sumSq += g * g;
      }
    const double norm = std::sqrt(sumSq);
    if (norm > options_.gradClipNorm) {
      const auto scale =
          static_cast<float>(options_.gradClipNorm / norm);
      for (nn::Param* p : opt.params())
        for (std::size_t i = 0; i < p->grad.numel(); ++i)
          p->grad[i] *= scale;
    }
  }
  opt.step();
}

void Harness::guardLoss(double loss) {
  if (options_.sentinels && !std::isfinite(loss))
    throw DivergenceError(DivergenceError::Kind::kNonFinite, cursor_,
                          "non-finite loss", loss);
  if (options_.spikeFactor > 0.0 && recentLosses_.size() >= 5) {
    std::vector<double> window = recentLosses_;
    const std::size_t mid = window.size() / 2;
    std::nth_element(window.begin(), window.begin() + mid, window.end());
    const double median = window[mid];
    if (std::isfinite(median) && median > 0.0 &&
        loss > options_.spikeFactor * median)
      throw DivergenceError(
          DivergenceError::Kind::kSpike, cursor_,
          "loss spike (" + std::to_string(loss) + " vs trailing median " +
              std::to_string(median) + ")",
          loss);
  }
}

void Harness::recordLoss(double loss) {
  recentLosses_.push_back(loss);
  const auto window =
      static_cast<std::size_t>(std::max<long>(1, options_.spikeWindow));
  if (recentLosses_.size() > window)
    recentLosses_.erase(recentLosses_.begin());
  if (cursor_ % options_.traceEvery == 0) {
    const auto idx = static_cast<std::size_t>(cursor_ / options_.traceEvery);
    // A replay after a rollback re-records its slot.
    if (idx < lossTrace_.size())
      lossTrace_[idx] = loss;
    else
      lossTrace_.push_back(loss);
  }
}

void Harness::handleDivergence(const DivergenceError& e, Rng& rng) {
  if (e.kind() != DivergenceError::Kind::kSpike) ++nanEvents_;
  if (rollbacks_ >= options_.maxRollbacks)
    throw std::runtime_error(
        "training diverged at step " + std::to_string(e.step()) + " (" +
        e.what() + "): rollback budget exhausted after " +
        std::to_string(rollbacks_) + " rollbacks (lrScale=" +
        std::to_string(lrScale_) +
        ") — the run cannot make progress; inspect the data and "
        "hyper-parameters");
  ++rollbacks_;
  lrScale_ *= options_.lrBackoff;
  restoreSnapshot(rng);
}

void Harness::sealCheckpoint(const Rng& rng) {
  TrainCheckpoint rec;
  rec.step = cursor_;
  rec.totalSteps = spec_.totalSteps;
  rec.epoch = (spec_.samplesPerStep > 0 && spec_.datasetSize > 0)
                  ? cursor_ * spec_.samplesPerStep / spec_.datasetSize
                  : 0;
  rec.rollbacks = rollbacks_;
  rec.lrScale = lrScale_;
  rec.nanEvents = nanEvents_;
  rec.lossTrace = lossTrace_;
  rec.recentLosses = recentLosses_;
  rec.rngState = rng.state();
  rec.configHash = spec_.configHash;
  std::vector<const nn::Tensor*> tensors;
  for (nn::Tensor* t : checkpointTensors()) tensors.push_back(t);
  saveCheckpoint(options_.checkpointDir, rec, tensors);
}

HarnessStats Harness::run(Rng& rng, const StepFn& stepFn) {
  static FaultSite stepFault("train.checkpoint.step");
  HarnessStats stats;
  cursor_ = 0;
  rollbacks_ = 0;
  lrScale_ = 1.0;
  nanEvents_ = 0;
  lossTrace_.clear();
  recentLosses_.clear();

  const bool disk = !options_.checkpointDir.empty();
  if (disk) {
    const std::optional<TrainCheckpoint> rec = loadCheckpoint(
        options_.checkpointDir, spec_.configHash, checkpointTensors());
    if (rec) {
      if (rec->step > spec_.totalSteps)
        throw std::runtime_error(
            "Harness: checkpoint in " + options_.checkpointDir +
            " is at step " + std::to_string(rec->step) +
            ", past the requested " + std::to_string(spec_.totalSteps) +
            " steps — refusing to resume backwards");
      syncOptimizers();
      rng.setState(rec->rngState);
      cursor_ = rec->step;
      rollbacks_ = rec->rollbacks;
      lrScale_ = rec->lrScale;
      nanEvents_ = rec->nanEvents;
      lossTrace_ = rec->lossTrace;
      recentLosses_ = rec->recentLosses;
      stats.resumed = true;
      stats.resumedFrom = cursor_;
    }
  }

  // Rollback anchor at the cursor: divergence guards work (and can be
  // tested) even with disk checkpointing off.
  takeSnapshot(rng);

  while (cursor_ < spec_.totalSteps) {
    const long boundary =
        std::min(spec_.totalSteps, (cursor_ / options_.checkpointEvery + 1) *
                                       options_.checkpointEvery);
    bool stopped = false;
    while (cursor_ < boundary) {
      if (stopRequested()) {
        stopped = true;
        break;
      }
      stepFault.orThrow();
      setLearningRate();
      try {
        const double loss = stepFn(cursor_, rng);
        guardLoss(loss);
        recordLoss(loss);
        ++cursor_;
      } catch (const DivergenceError& e) {
        handleDivergence(e, rng);
      }
    }
    takeSnapshot(rng);
    if (disk) {
      sealCheckpoint(rng);
      ++stats.checkpointsSaved;
    }
    if (stopped) {
      stats.sealedByStop = true;
      break;
    }
  }

  if (disk) sweepStaleCheckpoints(options_.checkpointDir, cursor_);
  stats.steps = cursor_;
  stats.finalLoss = recentLosses_.empty() ? 0.0 : recentLosses_.back();
  stats.lossTrace = lossTrace_;
  stats.rollbacks = rollbacks_;
  stats.nanEvents = nanEvents_;
  return stats;
}

}  // namespace dp::train
