#pragma once

/// \file harness.hpp
/// The checkpointed, resumable, divergence-guarded training loop that
/// every model's train() runs on (DESIGN.md §16). The harness owns the
/// step loop, the learning-rate schedule, checkpoint publication and
/// resume, and a guard layer; the model supplies a step function that
/// does one forward/backward pass and routes its optimizer updates
/// through guardedStep().
///
/// Determinism contract: a run is a pure function of (model init, rng
/// seed, spec, options) at any DP_THREADS. Checkpoints land on a fixed
/// step grid (every checkpointEvery steps plus the final step), every
/// manifest field is a pure function of the training history, and the
/// state file is named by its step — so a run killed at any instant
/// and resumed converges on a checkpoint directory byte-identical to
/// an uninterrupted run's (the PR 6 crash-equivalence property, ported
/// to training).
///
/// Guard layer: per-step NaN/Inf sentinels over the loss and over
/// every gradient about to be applied, optional global-norm gradient
/// clipping, and optional loss-spike detection against the trailing
/// median. A detection rolls the run back to the last checkpoint
/// (an in-memory snapshot, so rollback works without a checkpoint
/// directory), scales the learning rate down by lrBackoff, and
/// replays; after maxRollbacks detections the run hard-fails with a
/// diagnostic. SIGTERM (installStopHandler) requests a graceful stop:
/// the loop seals a checkpoint at the current step and returns, and a
/// later run resumes from the seal.
///
/// Fault sites (common/fault.hpp): train.checkpoint.step fires at
/// every step boundary (the chaos suites' crash window), and
/// train.guard.nan injects a synthetic non-finite gradient into
/// guardedStep to exercise the rollback path deterministically.

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "nn/optimizer.hpp"

namespace dp::train {

/// Robustness knobs of a harnessed run. The defaults leave disk
/// checkpointing off (empty checkpointDir) and the sentinels on.
struct TrainOptions {
  std::string checkpointDir;  ///< empty: in-memory rollback only
  long checkpointEvery = 250; ///< checkpoint grid pitch in steps
  long traceEvery = 100;      ///< loss-trace recording pitch
  bool sentinels = true;      ///< NaN/Inf checks on loss + gradients
  double gradClipNorm = 0.0;  ///< global-L2 clip per update; 0 = off
  double spikeFactor = 0.0;   ///< loss > factor * trailing median; 0 = off
  long spikeWindow = 25;      ///< trailing-median window length
  int maxRollbacks = 4;       ///< divergence budget before hard fail
  double lrBackoff = 0.5;     ///< LR scale applied per rollback
};

/// What the model tells the harness about the run.
struct HarnessSpec {
  long totalSteps = 0;
  /// Base learning rate at a step (the schedule); the harness applies
  /// its rollback backoff on top. Required.
  std::function<double(long)> lrAt;
  /// Identity of (hyper-parameters, dataset) — exclude the step count
  /// so a finished run can be extended. See checkpoint.hpp hash
  /// helpers. A resume against a different hash is rejected.
  std::uint64_t configHash = 0;
  long samplesPerStep = 0;  ///< batch size, for the epoch cursor
  long datasetSize = 0;     ///< samples per epoch; 0 = no epoch cursor
};

/// A guard detection (non-finite loss/gradient, injected fault, or
/// loss spike). Thrown by guardedStep()/the loss guard, caught by the
/// run loop for rollback; escapes run() only via the hard-fail
/// diagnostic once the rollback budget is exhausted.
class DivergenceError : public std::runtime_error {
 public:
  enum class Kind { kNonFinite, kInjected, kSpike };

  DivergenceError(Kind kind, long step, const std::string& what,
                  double value)
      : std::runtime_error("divergence at step " + std::to_string(step) +
                           ": " + what),
        kind_(kind), step_(step), value_(value) {}

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] long step() const { return step_; }
  [[nodiscard]] double value() const { return value_; }

 private:
  Kind kind_;
  long step_;
  double value_;
};

/// Outcome of a harnessed run.
struct HarnessStats {
  long steps = 0;          ///< cursor at return (== totalSteps unless sealed)
  double finalLoss = 0.0;
  std::vector<double> lossTrace;  ///< loss at every traceEvery-th step
  bool resumed = false;
  long resumedFrom = 0;
  int rollbacks = 0;
  long nanEvents = 0;      ///< non-finite/injected detections
  long checkpointsSaved = 0;
  bool sealedByStop = false;  ///< a stop request sealed the run early
};

/// One training step: forward/backward at `step` drawing randomness
/// from `rng`, optimizer updates via Harness::guardedStep, returns the
/// step's loss.
using StepFn = std::function<double(long step, Rng& rng)>;

class Harness {
 public:
  /// `params` + `modelState` + each optimizer's state() form the
  /// checkpoint tensor payload, in that order. All pointers must
  /// outlive the harness; optimizers must update exactly the given
  /// params.
  Harness(std::vector<nn::Param*> params,
          std::vector<nn::Tensor*> modelState,
          std::vector<nn::Optimizer*> optimizers, HarnessSpec spec,
          TrainOptions options);

  /// Called by the step function in place of opt.step(): fires the
  /// train.guard.nan injection site, scans the gradients about to be
  /// applied for NaN/Inf, applies the global-norm clip, then steps.
  /// Throws DivergenceError on a detection (the run loop rolls back).
  void guardedStep(nn::Optimizer& opt);

  /// Runs (or resumes) the loop to totalSteps. `rng` is the training
  /// stream whose position is checkpointed; the caller must not draw
  /// from it between construction and run().
  HarnessStats run(Rng& rng, const StepFn& stepFn);

  [[nodiscard]] const TrainOptions& options() const { return options_; }

 private:
  struct Snapshot {
    long step = 0;
    std::vector<nn::Tensor> tensors;
    std::string rngState;
    std::vector<double> lossTrace;
    std::vector<double> recentLosses;
  };

  [[nodiscard]] std::vector<nn::Tensor*> checkpointTensors();
  void takeSnapshot(const Rng& rng);
  void restoreSnapshot(Rng& rng);
  void syncOptimizers();
  void setLearningRate();
  void guardLoss(double loss);
  void recordLoss(double loss);
  void handleDivergence(const DivergenceError& e, Rng& rng);
  void sealCheckpoint(const Rng& rng);

  std::vector<nn::Param*> params_;
  std::vector<nn::Tensor*> modelState_;
  std::vector<nn::Optimizer*> opts_;
  HarnessSpec spec_;
  TrainOptions options_;

  long cursor_ = 0;
  int rollbacks_ = 0;
  double lrScale_ = 1.0;
  long nanEvents_ = 0;
  std::vector<double> lossTrace_;
  std::vector<double> recentLosses_;
  Snapshot snapshot_;
};

/// Installs an idempotent SIGTERM handler that requests a graceful
/// stop (the running harness seals a checkpoint and returns with
/// sealedByStop set). The flag is process-wide.
void installStopHandler();
/// Requests a graceful stop programmatically (what the handler does).
void requestStop();
/// Clears the stop flag (call before starting/resuming a run).
void clearStopRequest();
[[nodiscard]] bool stopRequested();

}  // namespace dp::train
