#pragma once

/// \file pattern_store.hpp
/// The on-disk half of the massive-generation pipeline (DESIGN.md §12):
/// an append-only, memory-mapped pattern library made of immutable
/// bit-packed segments plus one JSON manifest that is the atomic commit
/// record for the whole store.
///
/// Layout of a store directory:
///
///   manifest.json   — dp-pipeline-1 checkpoint: generation cursor,
///                     legality counts, per-shard unique counts and the
///                     committed segment list with per-file CRC32+bytes
///                     (published via AtomicFileWriter; the rename is
///                     the single commit point)
///   seg-000000.bin  — packed (hash, pattern) records, append order =
///   seg-000001.bin    first-insertion order of new unique patterns
///   ...
///
/// Segments are written whole via AtomicFileWriter, so a crash leaves
/// either no file or a complete one; a complete-but-uncommitted segment
/// is simply rewritten (bit-identically — the pipeline is
/// deterministic) when the resumed run reaches the same boundary.
/// Readers mmap segments and verify size + CRC32 against the manifest
/// before yielding a single record.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "pipeline/packed.hpp"

namespace dp::pipeline {

/// One committed segment as recorded in the manifest.
struct SegmentInfo {
  std::string path;            ///< file name relative to the store dir
  std::uint64_t patterns = 0;  ///< records in the segment
  std::uint64_t bytes = 0;     ///< exact file size
  std::uint32_t crc32 = 0;     ///< CRC-32 of the file contents

  friend bool operator==(const SegmentInfo&, const SegmentInfo&) = default;
};

/// Accumulates packed records for the segment under construction.
class SegmentBuilder {
 public:
  void add(std::uint64_t hash, const PackedPattern& p);

  [[nodiscard]] std::uint64_t patterns() const { return patterns_; }
  [[nodiscard]] const std::string& bytes() const { return bytes_; }
  [[nodiscard]] bool empty() const { return patterns_ == 0; }
  void clear();

 private:
  std::string bytes_;
  std::uint64_t patterns_ = 0;
};

/// Canonical file name of segment `index` (seg-000042.bin).
[[nodiscard]] std::string segmentFileName(long index);

/// Durably writes `builder` as segment `index` of `dir` through
/// AtomicFileWriter and returns its manifest record. Throws
/// std::runtime_error on I/O failure (fault sites io.atomic.*); the
/// store is unchanged until the rename lands.
[[nodiscard]] SegmentInfo writeSegment(const std::string& dir, long index,
                                       const SegmentBuilder& builder);

/// Read-only memory-mapped view of one committed segment. Verifies the
/// manifest-recorded byte size and CRC-32 at open, so a bit flip or
/// truncation anywhere in the file is rejected before any record is
/// parsed.
class SegmentReader {
 public:
  SegmentReader(const std::string& dir, const SegmentInfo& info);
  ~SegmentReader();

  SegmentReader(const SegmentReader&) = delete;
  SegmentReader& operator=(const SegmentReader&) = delete;

  /// Yields every record in append (= first-insertion) order.
  void forEach(const std::function<void(std::uint64_t hash,
                                        const PackedPattern& packed)>& fn)
      const;

  [[nodiscard]] std::uint64_t patterns() const { return patterns_; }

 private:
  void* map_ = nullptr;
  std::size_t bytes_ = 0;
  std::uint64_t patterns_ = 0;
};

/// The manifest — one atomic commit record covering generation
/// progress AND the segment list, so every crash window resolves to
/// the last committed (cursor, segments) pair with nothing torn.
struct StoreManifest {
  // Run identity: a resume refuses to continue a store produced under
  // different generation parameters (the latent stream would diverge).
  std::uint64_t seed = 0;
  long count = 0;
  int batchSize = 0;
  long checkpointEvery = 0;
  long patternsPerSegment = 0;

  // Committed progress.
  long cursor = 0;  ///< latent samples consumed
  long legal = 0;   ///< legal among consumed (with repetitions)
  std::uint64_t unique = 0;
  std::vector<std::uint64_t> shardSizes;  ///< per-shard unique counts
  std::vector<SegmentInfo> segments;

  friend bool operator==(const StoreManifest&,
                         const StoreManifest&) = default;
};

/// Atomically publishes `m` as dir/manifest.json. Fault sites:
/// pipeline.checkpoint.commit plus the io.atomic.* writer sites.
void commitManifest(const std::string& dir, const StoreManifest& m);

/// Loads dir/manifest.json, or nullopt when no manifest exists (fresh
/// store). Throws on a malformed manifest or wrong format tag. Fault
/// site: pipeline.checkpoint.resume.
[[nodiscard]] std::optional<StoreManifest> loadManifest(
    const std::string& dir);

}  // namespace dp::pipeline
