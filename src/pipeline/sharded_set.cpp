#include "pipeline/sharded_set.hpp"

#include <algorithm>
#include <cmath>

#include "squish/canonical.hpp"
#include "squish/hash.hpp"

namespace dp::pipeline {

bool ShardedPatternSet::insert(const squish::Topology& t) {
  const squish::Topology canon = squish::canonicalize(t);
  return insertPacked(squish::hashTopology(canon), pack(canon));
}

bool ShardedPatternSet::insertPacked(std::uint64_t hash,
                                     const PackedPattern& packed) {
  Shard& shard = shards_[static_cast<std::size_t>(shardOf(hash))];
  LockGuard lock(shard.mutex);
  auto& bucket = shard.buckets[hash];
  for (const auto& existing : bucket)
    if (existing == packed) return false;
  bucket.push_back(packed);
  ++shard.count;
  ++shard.histogram[{packed.cx(), packed.cy()}];
  return true;
}

bool ShardedPatternSet::containsPacked(std::uint64_t hash,
                                       const PackedPattern& packed) const {
  const Shard& shard = shards_[static_cast<std::size_t>(shardOf(hash))];
  LockGuard lock(shard.mutex);
  const auto it = shard.buckets.find(hash);
  if (it == shard.buckets.end()) return false;
  return std::find(it->second.begin(), it->second.end(), packed) !=
         it->second.end();
}

std::uint64_t ShardedPatternSet::size() const {
  std::uint64_t total = 0;
  for (const Shard& shard : shards_) {
    LockGuard lock(shard.mutex);
    total += shard.count;
  }
  return total;
}

std::vector<std::uint64_t> ShardedPatternSet::shardSizes() const {
  std::vector<std::uint64_t> sizes;
  sizes.reserve(kShards);
  for (const Shard& shard : shards_) {
    LockGuard lock(shard.mutex);
    sizes.push_back(shard.count);
  }
  return sizes;
}

void ShardedPatternSet::forEach(
    const std::function<void(std::uint64_t, const PackedPattern&)>& fn)
    const {
  for (const Shard& shard : shards_) {
    LockGuard lock(shard.mutex);
    for (const auto& [hash, bucket] : shard.buckets)
      for (const PackedPattern& p : bucket) fn(hash, p);
  }
}

std::map<std::pair<int, int>, std::uint64_t>
ShardedPatternSet::complexityHistogram() const {
  std::map<std::pair<int, int>, std::uint64_t> merged;
  for (const Shard& shard : shards_) {
    LockGuard lock(shard.mutex);
    for (const auto& [key, count] : shard.histogram) merged[key] += count;
  }
  return merged;
}

double ShardedPatternSet::diversity() const {
  return shannonFromCounts(complexityHistogram());
}

double shannonFromCounts(
    const std::map<std::pair<int, int>, std::uint64_t>& counts) {
  std::uint64_t total = 0;
  for (const auto& [key, count] : counts) total += count;
  if (total == 0) return 0.0;
  const double n = static_cast<double>(total);
  double h = 0.0;
  for (const auto& [key, count] : counts) {
    const double p = static_cast<double>(count) / n;
    h -= p * std::log2(p);
  }
  return h;
}

}  // namespace dp::pipeline
