#pragma once

/// \file sharded_set.hpp
/// Sharded concurrent canonical-pattern dedup set (DESIGN.md §12). The
/// in-memory core::PatternLibrary keys one std::map with every pattern
/// — exact and ordered, but a single structure that serializes all
/// inserts and stores a byte per cell. At the 1M-pattern scale of the
/// massive pipeline the set shards by canonical-hash prefix (top bits
/// pick the shard, so ascending-shard enumeration IS ascending-hash
/// enumeration), guards each shard with its own dp::Mutex, and stores
/// patterns bit-packed (pipeline::PackedPattern, 64 cells per word).
///
/// Determinism: the set's *contents* are insert-order independent (a
/// pattern is present or not), and enumeration order is ascending
/// canonical hash with ties in bucket insertion order — identical to
/// PatternLibrary's contract. The massive pipeline additionally folds
/// inserts in ascending sample order, so even collision-bucket order
/// is thread-count invariant.

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <utility>
#include <vector>

#include "common/sync.hpp"
#include "pipeline/packed.hpp"
#include "squish/topology.hpp"

namespace dp::pipeline {

class ShardedPatternSet {
 public:
  /// Shard count. 64 keeps per-shard maps small at 1M patterns while
  /// the top-6-bit prefix split stays uniform for any decent hash.
  static constexpr int kShards = 64;

  /// Canonicalizes `t`, hashes it and inserts the packed form. Returns
  /// true when the pattern was not present. Thread-safe.
  bool insert(const squish::Topology& t);

  /// Inserts an already canonical+packed pattern under its canonical
  /// hash. Returns true when new. Thread-safe.
  bool insertPacked(std::uint64_t hash, const PackedPattern& packed);

  /// True when (hash, packed) is present. Thread-safe.
  [[nodiscard]] bool containsPacked(std::uint64_t hash,
                                    const PackedPattern& packed) const;

  /// Unique pattern count across all shards.
  [[nodiscard]] std::uint64_t size() const;

  /// Per-shard unique counts in ascending shard order (checkpoint
  /// records persist these so a resume can cross-check its rebuild).
  [[nodiscard]] std::vector<std::uint64_t> shardSizes() const;

  /// Deterministic merged enumeration: ascending canonical hash across
  /// shards (the hash prefix IS the shard index), collision buckets in
  /// insertion order. Not safe concurrently with inserts.
  void forEach(const std::function<void(std::uint64_t hash,
                                        const PackedPattern& packed)>& fn)
      const;

  /// Joint (cx, cy) complexity histogram over unique patterns, merged
  /// in ascending shard then ascending (cx, cy) order.
  [[nodiscard]] std::map<std::pair<int, int>, std::uint64_t>
  complexityHistogram() const;

  /// Pattern diversity H (paper Definition 2) over unique patterns —
  /// bit-identical to core::PatternLibrary::diversity() on the same
  /// pattern set (same ascending-(cx, cy) accumulation order).
  [[nodiscard]] double diversity() const;

 private:
  struct Shard {
    mutable Mutex mutex;
    std::map<std::uint64_t, std::vector<PackedPattern>> buckets
        DP_GUARDED_BY(mutex);
    std::map<std::pair<int, int>, std::uint64_t> histogram
        DP_GUARDED_BY(mutex);
    std::uint64_t count DP_GUARDED_BY(mutex) = 0;
  };

  static int shardOf(std::uint64_t hash) {
    return static_cast<int>(hash >> 58);  // top 6 bits, kShards = 64
  }

  std::array<Shard, kShards> shards_;
};

/// Shannon entropy (bits) of a count histogram — the Definition 2
/// diversity computed without materializing one entry per pattern.
/// Iterates `counts` in its (ordered) iteration order, matching
/// core::shannonDiversity's accumulation order on the same data.
[[nodiscard]] double shannonFromCounts(
    const std::map<std::pair<int, int>, std::uint64_t>& counts);

}  // namespace dp::pipeline
