#include "pipeline/massive.hpp"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <limits>
#include <optional>
#include <stdexcept>
#include <vector>

#include "common/fault.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "core/fused_generate.hpp"
#include "drc/packed_rules.hpp"
#include "models/batch.hpp"
#include "models/topology_codec.hpp"
#include "pipeline/sharded_set.hpp"
#include "squish/canonical.hpp"
#include "squish/hash.hpp"
#include "squish/packed_topo.hpp"

namespace dp::pipeline {

namespace fs = std::filesystem;

namespace {

using Clock = std::chrono::steady_clock;

/// Accumulates per-stage items/seconds for the result and mirrors the
/// deltas onto the serving metrics surface at every checkpoint flush.
struct StageTally {
  std::map<std::string, StageStats> total;
  std::map<std::string, StageStats> pending;

  void add(const std::string& stage, std::uint64_t items,
           Clock::time_point since) {
    const double seconds =
        std::chrono::duration<double>(Clock::now() - since).count();
    StageStats& t = total[stage];
    t.items += items;
    t.seconds += seconds;
    StageStats& p = pending[stage];
    p.items += items;
    p.seconds += seconds;
  }

  void flush(serve::Metrics* metrics) {
    if (metrics)
      for (const auto& [stage, stats] : pending)
        metrics->recordStage(stage, stats.items, stats.seconds);
    pending.clear();
  }
};

void checkConfig(const nn::Tensor& sourceLatents,
                 const MassiveConfig& config) {
  if (config.dir.empty())
    throw std::invalid_argument("runMassive: empty store dir");
  if (config.count <= 0)
    throw std::invalid_argument("runMassive: count must be > 0");
  if (config.batchSize <= 0)
    throw std::invalid_argument("runMassive: batchSize must be > 0");
  if (config.checkpointEvery <= 0)
    throw std::invalid_argument("runMassive: checkpointEvery must be > 0");
  if (config.patternsPerSegment <= 0)
    throw std::invalid_argument(
        "runMassive: patternsPerSegment must be > 0");
  if (sourceLatents.dim() != 2 || sourceLatents.size(0) == 0)
    throw std::invalid_argument(
        "runMassive: need (pool, latentDim) source latents");
}

/// Removes AtomicFileWriter temp files a killed writer stranded (a
/// SIGKILL skips the writer's unwind cleanup), so a resumed store
/// converges to the byte-identical directory an uninterrupted run
/// produces.
void sweepStaleTempFiles(const std::string& dir) {
  std::vector<fs::path> stale;
  for (const auto& entry : fs::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.find(".tmp.") != std::string::npos)
      stale.push_back(entry.path());
  }
  for (const fs::path& path : stale) fs::remove(path);
}

}  // namespace

MassiveResult runMassive(const models::Tcae& tcae,
                         const nn::Tensor& sourceLatents,
                         const core::SensitivityAwarePerturber& perturber,
                         const drc::TopologyChecker& checker,
                         const MassiveConfig& config,
                         serve::Metrics* metrics) {
  static FaultSite planFault("pipeline.checkpoint.plan");
  static FaultSite decodeFault("pipeline.checkpoint.decode");
  static FaultSite assessFault("pipeline.checkpoint.assess");
  static FaultSite dedupFault("pipeline.checkpoint.dedup");
  static FaultSite sealFault("pipeline.checkpoint.seal");

  checkConfig(sourceLatents, config);
  fs::create_directories(config.dir);
  sweepStaleTempFiles(config.dir);

  MassiveResult result;
  StageTally tally;
  ShardedPatternSet set;
  StoreManifest manifest;

  if (const auto loaded = loadManifest(config.dir)) {
    const StoreManifest& m = *loaded;
    if (m.seed != config.seed || m.batchSize != config.batchSize ||
        m.checkpointEvery != config.checkpointEvery ||
        m.patternsPerSegment != config.patternsPerSegment)
      throw std::invalid_argument(
          "runMassive: store at " + config.dir +
          " was produced under different generation parameters");
    if (config.count < m.cursor)
      throw std::invalid_argument(
          "runMassive: count " + std::to_string(config.count) +
          " is behind the committed cursor " + std::to_string(m.cursor));
    // Rebuild the dedup set from the committed segments. Ascending
    // segment order replays first-insertion order, so collision-bucket
    // order (and therefore all downstream enumeration) matches the
    // original run exactly.
    const auto t0 = Clock::now();
    for (const SegmentInfo& seg : m.segments) {
      SegmentReader reader(config.dir, seg);
      reader.forEach([&set](std::uint64_t hash, const PackedPattern& p) {
        set.insertPacked(hash, p);
      });
    }
    if (set.size() != m.unique || set.shardSizes() != m.shardSizes)
      throw std::runtime_error(
          "runMassive: dedup-set rebuild disagrees with the manifest "
          "(corrupt store at " +
          config.dir + ")");
    tally.add("resume", m.unique, t0);
    manifest = m;
    result.resumed = true;
    result.resumedFrom = m.cursor;
  }
  manifest.seed = config.seed;
  manifest.count = config.count;
  manifest.batchSize = config.batchSize;
  manifest.checkpointEvery = config.checkpointEvery;
  manifest.patternsPerSegment = config.patternsPerSegment;

  // Decode + assess route through the fused bit-packed path (DESIGN.md
  // §14) whenever the model's decoder stack supports it; other stacks
  // fall back to the unfused float reference. Both routes emit the same
  // hashes and packed bytes for the same binarized samples, so stores
  // started under one route resume cleanly under the other.
  std::optional<core::FusedDecodeRoute> fused;
  try {
    fused.emplace(tcae);
  } catch (const std::invalid_argument&) {
  }

  const std::uint64_t streamBase = splitmix64(config.seed);
  const int pool = sourceLatents.size(0);
  long cursor = manifest.cursor;
  long legal = manifest.legal;
  long nextSegment = static_cast<long>(manifest.segments.size());
  SegmentBuilder builder;

  const auto seal = [&] {
    const auto t0 = Clock::now();
    const std::uint64_t sealed = builder.patterns();
    manifest.segments.push_back(
        writeSegment(config.dir, nextSegment, builder));
    ++nextSegment;
    builder.clear();
    tally.add("seal", sealed, t0);
  };

  while (cursor < config.count) {
    // Checkpoint boundaries sit on a fixed grid (multiples of
    // checkpointEvery), and batches never straddle a boundary — so a
    // killed run and an uninterrupted run cut identical batches and
    // seal identical segments.
    const long boundary = std::min(
        config.count,
        (cursor / config.checkpointEvery + 1) * config.checkpointEvery);
    while (cursor < boundary) {
      const int b = static_cast<int>(
          std::min<long>(config.batchSize, boundary - cursor));

      // Plan: the batch draws from its own Rng stream keyed by the
      // cursor, so any batch regenerates without replaying history.
      planFault.orThrow();
      auto t0 = Clock::now();
      Rng rng(taskSeed(streamBase, static_cast<std::uint64_t>(cursor)));
      const auto idx = models::sampleIndices(pool, b, rng);
      nn::Tensor latents = models::gatherRows(sourceLatents, idx);
      latents += perturber.sampleBatch(b, rng);
      tally.add("plan", static_cast<std::uint64_t>(b), t0);

      std::vector<char> ok(static_cast<std::size_t>(b), 0);
      std::vector<std::uint64_t> hashes(static_cast<std::size_t>(b), 0);
      std::vector<PackedPattern> packs(static_cast<std::size_t>(b));
      if (fused) {
        // Fused route: latents go straight to bit-packed binarized
        // topologies, and the whole assessment runs on the packed
        // words — no float tensor or Topology round-trip.
        decodeFault.orThrow();
        t0 = Clock::now();
        std::vector<std::uint32_t> masks;
        fused->decodeMasks(latents, masks);
        tally.add("decode", static_cast<std::uint64_t>(b), t0);

        assessFault.orThrow();
        t0 = Clock::now();
        const int edge = fused->topologySize();
        dp::parallelFor(b, 8, [&](long i0, long i1) {
          std::uint32_t rows[squish::kMaxMaskCols];
          for (long i = i0; i < i1; ++i) {
            const auto k = static_cast<std::size_t>(i);
            const std::uint32_t* sample = masks.data() + i * edge;
            for (int r = 0; r < edge; ++r) rows[r] = sample[r];
            int nRows = edge;
            int nCols = edge;
            squish::unpadMasks(rows, nRows, nCols);
            squish::canonicalizeMasks(rows, nRows, nCols);
            if (!drc::isLegalCanonicalMasks(checker.config(), rows, nRows,
                                            nCols))
              continue;
            ok[k] = 1;
            hashes[k] = squish::hashMasks(rows, nRows, nCols);
            packs[k] = packMasks(rows, nRows, nCols);
          }
        });
        tally.add("assess", static_cast<std::uint64_t>(b), t0);
      } else {
        decodeFault.orThrow();
        t0 = Clock::now();
        const nn::Tensor activations = tcae.decode(latents);
        tally.add("decode", static_cast<std::uint64_t>(b), t0);

        // Assess: threshold/unpad, legality, canonicalize, hash and
        // pack sample-parallel into index-ordered slots (§6 contract).
        assessFault.orThrow();
        t0 = Clock::now();
        dp::parallelFor(b, 8, [&](long i0, long i1) {
          for (long i = i0; i < i1; ++i) {
            const auto k = static_cast<std::size_t>(i);
            const squish::Topology t = models::decodeGeneratedTopology(
                activations, static_cast<int>(i));
            if (!checker.isLegal(t)) continue;
            ok[k] = 1;
            const squish::Topology canon = squish::canonicalize(t);
            hashes[k] = squish::hashTopology(canon);
            packs[k] = pack(canon);
          }
        });
        tally.add("assess", static_cast<std::uint64_t>(b), t0);
      }

      // Dedup + store fold: replay the slots serially in ascending
      // sample order, so insertion order (and with it every segment
      // byte) is thread-count invariant.
      dedupFault.orThrow();
      t0 = Clock::now();
      for (int i = 0; i < b; ++i) {
        const auto k = static_cast<std::size_t>(i);
        if (!ok[k]) continue;
        ++legal;
        if (!set.insertPacked(hashes[k], packs[k])) continue;
        builder.add(hashes[k], packs[k]);
        if (builder.patterns() >=
            static_cast<std::uint64_t>(config.patternsPerSegment)) {
          sealFault.orThrow();
          seal();
        }
      }
      tally.add("dedup", static_cast<std::uint64_t>(b), t0);
      cursor += b;
    }

    // Checkpoint: seal the partial segment so the manifest covers every
    // unique pattern, then atomically publish progress. The seal
    // boundary is crossed at every checkpoint even when no new uniques
    // arrived, so its fault-site call sequence is a function of the
    // checkpoint grid alone — not of what the data happened to yield.
    sealFault.orThrow();
    if (!builder.empty()) seal();
    const auto t0 = Clock::now();
    manifest.cursor = cursor;
    manifest.legal = legal;
    manifest.unique = set.size();
    manifest.shardSizes = set.shardSizes();
    commitManifest(config.dir, manifest);
    tally.add("commit", 1, t0);
    tally.flush(metrics);
  }
  tally.flush(metrics);

  result.generated = cursor;
  result.legal = legal;
  result.unique = set.size();
  result.diversity = set.diversity();
  result.stages = tally.total;
  return result;
}

core::PatternLibrary loadLibrary(const std::string& dir,
                                 long maxPatterns) {
  const auto manifest = loadManifest(dir);
  if (!manifest)
    throw std::runtime_error("loadLibrary: no manifest in " + dir);
  core::PatternLibrary library;
  const long cap = maxPatterns <= 0 ? std::numeric_limits<long>::max()
                                    : maxPatterns;
  for (const SegmentInfo& seg : manifest->segments) {
    if (static_cast<long>(library.size()) >= cap) break;
    SegmentReader reader(dir, seg);
    reader.forEach([&](std::uint64_t, const PackedPattern& p) {
      if (static_cast<long>(library.size()) >= cap) return;
      library.add(unpack(p));
    });
  }
  return library;
}

}  // namespace dp::pipeline
