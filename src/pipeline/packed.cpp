#include "pipeline/packed.hpp"

#include <stdexcept>

namespace dp::pipeline {

namespace {

void appendU64(std::string& buffer, std::uint64_t v) {
  for (int b = 0; b < 8; ++b)
    buffer.push_back(static_cast<char>((v >> (8 * b)) & 0xffU));
}

std::uint64_t readU64(const char* p) {
  std::uint64_t v = 0;
  for (int b = 0; b < 8; ++b)
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(p[b]))
         << (8 * b);
  return v;
}

std::size_t wordCount(int cells) {
  return (static_cast<std::size_t>(cells) + 63) / 64;
}

}  // namespace

PackedPattern pack(const squish::Topology& t) {
  if (t.empty())
    throw std::invalid_argument("pipeline::pack: empty topology");
  if (t.rows() > 255 || t.cols() > 255)
    throw std::invalid_argument(
        "pipeline::pack: topology exceeds 255 cells per axis");
  PackedPattern p;
  p.rows = static_cast<std::uint8_t>(t.rows());
  p.cols = static_cast<std::uint8_t>(t.cols());
  p.words.assign(wordCount(static_cast<int>(t.cellCount())), 0);
  const auto& cells = t.cells();
  for (std::size_t i = 0; i < cells.size(); ++i)
    if (cells[i]) p.words[i / 64] |= std::uint64_t{1} << (i % 64);
  return p;
}

PackedPattern packMasks(const std::uint32_t* masks, int rows, int cols) {
  if (rows <= 0 || cols <= 0)
    throw std::invalid_argument("pipeline::packMasks: empty topology");
  if (rows > 255 || cols > 255)
    throw std::invalid_argument(
        "pipeline::packMasks: topology exceeds 255 cells per axis");
  PackedPattern p;
  p.rows = static_cast<std::uint8_t>(rows);
  p.cols = static_cast<std::uint8_t>(cols);
  p.words.assign(wordCount(rows * cols), 0);
  for (int r = 0; r < rows; ++r)
    for (int c = 0; c < cols; ++c)
      if ((masks[r] >> c) & 1U) {
        const std::size_t i =
            static_cast<std::size_t>(r) * cols + static_cast<std::size_t>(c);
        p.words[i / 64] |= std::uint64_t{1} << (i % 64);
      }
  return p;
}

squish::Topology unpack(const PackedPattern& p) {
  if (p.rows == 0 || p.cols == 0)
    throw std::invalid_argument("pipeline::unpack: zero-sized pattern");
  const int cells = p.cellCount();
  if (p.words.size() != wordCount(cells))
    throw std::invalid_argument("pipeline::unpack: word count mismatch");
  std::vector<std::uint8_t> out(static_cast<std::size_t>(cells), 0);
  for (std::size_t i = 0; i < out.size(); ++i)
    out[i] = (p.words[i / 64] >> (i % 64)) & 1U ? 1 : 0;
  return {p.rows, p.cols, out};
}

std::size_t recordBytes(const PackedPattern& p) {
  return 8 + 2 + 8 * p.words.size();
}

void appendRecord(std::string& buffer, std::uint64_t hash,
                  const PackedPattern& p) {
  appendU64(buffer, hash);
  buffer.push_back(static_cast<char>(p.rows));
  buffer.push_back(static_cast<char>(p.cols));
  for (const std::uint64_t w : p.words) appendU64(buffer, w);
}

void RecordCursor::next(std::uint64_t& hash, PackedPattern& p) {
  if (end_ - cur_ < 10)
    throw std::runtime_error("pipeline: truncated pattern record header");
  hash = readU64(cur_);
  p.rows = static_cast<std::uint8_t>(cur_[8]);
  p.cols = static_cast<std::uint8_t>(cur_[9]);
  cur_ += 10;
  if (p.rows == 0 || p.cols == 0)
    throw std::runtime_error("pipeline: zero-sized pattern record");
  const std::size_t words = wordCount(p.cellCount());
  if (static_cast<std::size_t>(end_ - cur_) < 8 * words)
    throw std::runtime_error("pipeline: truncated pattern record body");
  p.words.resize(words);
  for (std::size_t w = 0; w < words; ++w) p.words[w] = readU64(cur_ + 8 * w);
  cur_ += 8 * words;
}

}  // namespace dp::pipeline
