#pragma once

/// \file massive.hpp
/// The paper-scale massive-generation pipeline (DESIGN.md §12): a
/// streaming plan → decode → assess → dedup → store loop that reaches
/// the paper's Table II scale (1M+ patterns) with bounded memory and
/// kill-anywhere resume.
///
/// Streaming: latents are planned per batch from an independent seeded
/// stream keyed by the batch's cursor position — Rng(taskSeed(
/// splitmix64(seed), cursor)) — so no 1M-row plan tensor ever exists
/// and any batch can be regenerated without replaying history. That is
/// what makes the checkpoint cursor sufficient for exact resume.
///
/// Determinism: decode and assessment run parallel into index-ordered
/// slots and the dedup/store fold replays them in ascending sample
/// order (the §6 contract), so the final store is bit-identical at any
/// DP_THREADS, and a run killed at any point resumes — from the last
/// committed manifest — to the byte-identical store an uninterrupted
/// run produces.
///
/// Fault sites (chaos suite kills the run at every stage boundary):
/// pipeline.checkpoint.plan / .decode / .assess / .dedup / .seal /
/// .commit / .resume, plus the io.atomic.* sites inside the writers.

#include <cstdint>
#include <map>
#include <string>

#include "core/pattern_library.hpp"
#include "core/perturb.hpp"
#include "drc/topology_rules.hpp"
#include "models/tcae.hpp"
#include "pipeline/pattern_store.hpp"
#include "serve/metrics.hpp"
#include "tensor/tensor.hpp"

namespace dp::pipeline {

struct MassiveConfig {
  std::string dir;          ///< store directory (created if missing)
  long count = 1'000'000;   ///< latent samples to consume
  int batchSize = 256;      ///< decode batch size
  long checkpointEvery = 65'536;  ///< samples between manifest commits
  long patternsPerSegment = 65'536;  ///< max records per segment file
  std::uint64_t seed = 2019;
};

/// Wall-clock + item counters for one pipeline stage.
struct StageStats {
  std::uint64_t items = 0;
  double seconds = 0.0;
};

struct MassiveResult {
  long generated = 0;  ///< samples consumed (== config.count on success)
  long legal = 0;      ///< legal decodes (with repetitions)
  std::uint64_t unique = 0;
  double diversity = 0.0;
  bool resumed = false;   ///< a committed manifest was picked up
  long resumedFrom = 0;   ///< cursor at resume (0 for a fresh run)
  /// Per-stage totals keyed by stage name: plan, decode, assess,
  /// dedup, seal (segment writes), commit (manifest publishes), and —
  /// on resumed runs — resume (the dedup-set rebuild scan).
  std::map<std::string, StageStats> stages;

  [[nodiscard]] double legalFraction() const {
    return generated > 0 ? static_cast<double>(legal) / generated : 0.0;
  }
};

/// Runs (or resumes) the massive pipeline against a trained TCAE.
/// `sourceLatents` is the encoded source pool whose rows are perturbed
/// (core::encodeSourceLatents); `checker` assesses topology legality.
/// When `metrics` is non-null, per-stage items/seconds and the store
/// totals are folded into the serving metrics surface
/// (dp_pipeline_stage_* series) at every checkpoint.
///
/// Resume contract: if `config.dir` holds a dp-pipeline-1 manifest, the
/// run continues from its cursor after rebuilding the dedup set from
/// the committed segments (CRC-verified, ascending segment order =
/// original insertion order). A manifest written under different
/// (seed, batchSize, checkpointEvery, patternsPerSegment) parameters —
/// or a shrunk count — is rejected with std::invalid_argument.
[[nodiscard]] MassiveResult runMassive(
    const models::Tcae& tcae, const nn::Tensor& sourceLatents,
    const core::SensitivityAwarePerturber& perturber,
    const drc::TopologyChecker& checker, const MassiveConfig& config,
    serve::Metrics* metrics = nullptr);

/// Loads the first `maxPatterns` (<= 0 for all) stored patterns of a
/// completed (or partial) store into a PatternLibrary — the bridge to
/// the existing Eq. 10 materialization (core::materialize) and the
/// Fig. 10 histogram tooling, which operate on in-memory libraries.
[[nodiscard]] core::PatternLibrary loadLibrary(const std::string& dir,
                                               long maxPatterns = -1);

}  // namespace dp::pipeline
