#pragma once

/// \file packed.hpp
/// Bit-packed canonical-topology records — the storage unit of the
/// massive-generation pattern library (DESIGN.md §12). A canonical
/// topology is at most 24x24 cells, so one byte per cell (the in-memory
/// squish::Topology layout) wastes 8x at the million-pattern scale this
/// pipeline targets. PackedPattern stores 64 cells per machine word;
/// the on-disk record prepends the canonical hash so a resume pass can
/// rebuild the dedup set without re-hashing every pattern.
///
/// Record wire format (little-endian, CRC-protected at segment level):
///
///   [u64 canonical hash][u8 rows][u8 cols][ceil(rows*cols/64) x u64]
///
/// Bit i of word w is cell index w*64 + i of the row-major (bottom row
/// first) cell vector — the same enumeration order Topology::cells()
/// uses, so pack/unpack is a pure reshape.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "squish/topology.hpp"

namespace dp::pipeline {

/// A topology packed 64 cells per word. Equality is exact (dims and
/// every cell), so hash collisions in the dedup set are resolved on the
/// packed form without unpacking.
struct PackedPattern {
  std::uint8_t rows = 0;
  std::uint8_t cols = 0;
  std::vector<std::uint64_t> words;  ///< LSB-first, 64 cells per word

  [[nodiscard]] int cellCount() const {
    return static_cast<int>(rows) * static_cast<int>(cols);
  }
  /// (cx, cy) of the canonical topology this packs: cx = cols,
  /// cy = rows (paper Definition 1 on the canonical matrix).
  [[nodiscard]] int cx() const { return cols; }
  [[nodiscard]] int cy() const { return rows; }

  friend bool operator==(const PackedPattern&,
                         const PackedPattern&) = default;
};

/// Packs a topology (any 0/1 matrix with 1..255 rows and columns; the
/// pipeline only ever packs canonical forms, but packing is defined for
/// every topology so property tests can round-trip arbitrary inputs).
/// Throws std::invalid_argument on empty or oversized matrices.
[[nodiscard]] PackedPattern pack(const squish::Topology& t);

/// Exact inverse of pack().
[[nodiscard]] squish::Topology unpack(const PackedPattern& p);

/// pack() for a row-mask matrix (bit c of masks[r] = cell (r, c), the
/// squish/packed_topo.hpp convention): produces the byte-identical
/// PackedPattern that pack(masksToTopology(...)) would, without
/// materializing the Topology. Same argument checks as pack().
[[nodiscard]] PackedPattern packMasks(const std::uint32_t* masks, int rows,
                                      int cols);

/// Serialized size of one (hash, pattern) record in bytes.
[[nodiscard]] std::size_t recordBytes(const PackedPattern& p);

/// Appends the little-endian record for (hash, p) to `buffer`.
void appendRecord(std::string& buffer, std::uint64_t hash,
                  const PackedPattern& p);

/// Forward cursor over a byte range of serialized records. The range
/// must outlive the cursor (segments hand out their mmap'd bytes).
class RecordCursor {
 public:
  RecordCursor(const char* data, std::size_t bytes)
      : cur_(data), end_(data + bytes) {}

  [[nodiscard]] bool done() const { return cur_ == end_; }

  /// Reads the next record. Throws std::runtime_error on a truncated
  /// or malformed record (zero dims) — segment CRCs make this
  /// unreachable for committed data, but the reader still refuses to
  /// fabricate patterns from garbage.
  void next(std::uint64_t& hash, PackedPattern& p);

 private:
  const char* cur_;
  const char* end_;
};

}  // namespace dp::pipeline
