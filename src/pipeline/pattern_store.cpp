#include "pipeline/pattern_store.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/atomic_file.hpp"
#include "common/fault.hpp"
#include "io/json.hpp"

namespace dp::pipeline {

namespace fs = std::filesystem;
using dp::io::Json;

void SegmentBuilder::add(std::uint64_t hash, const PackedPattern& p) {
  appendRecord(bytes_, hash, p);
  ++patterns_;
}

void SegmentBuilder::clear() {
  bytes_.clear();
  patterns_ = 0;
}

std::string segmentFileName(long index) {
  char name[32];
  std::snprintf(name, sizeof name, "seg-%06ld.bin", index);
  return name;
}

SegmentInfo writeSegment(const std::string& dir, long index,
                         const SegmentBuilder& builder) {
  if (builder.empty())
    throw std::invalid_argument("writeSegment: empty segment");
  SegmentInfo info;
  info.path = segmentFileName(index);
  info.patterns = builder.patterns();
  info.bytes = builder.bytes().size();
  AtomicFileWriter out(dir + "/" + info.path);
  out.append(builder.bytes());
  info.crc32 = out.commit();
  return info;
}

SegmentReader::SegmentReader(const std::string& dir,
                             const SegmentInfo& info)
    : patterns_(info.patterns) {
  const std::string path = dir + "/" + info.path;
  static FaultSite openFault("pipeline.segment.open");
  if (openFault.shouldFail())
    throw std::runtime_error("SegmentReader: injected open fault: " +
                             path);
  const int fd = ::open(path.c_str(), O_RDONLY);  // NOLINT(*-vararg)
  if (fd < 0)
    throw std::runtime_error("SegmentReader: cannot open " + path + ": " +
                             std::strerror(errno));  // NOLINT(concurrency-mt-unsafe)
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    throw std::runtime_error("SegmentReader: cannot stat " + path);
  }
  if (static_cast<std::uint64_t>(st.st_size) != info.bytes) {
    ::close(fd);
    throw std::runtime_error(
        "SegmentReader: " + path + ": size mismatch (manifest says " +
        std::to_string(info.bytes) + " bytes, file has " +
        std::to_string(st.st_size) + ")");
  }
  void* map =
      ::mmap(nullptr, info.bytes, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps the file alive
  if (map == MAP_FAILED)
    throw std::runtime_error("SegmentReader: mmap failed for " + path);
  map_ = map;
  bytes_ = info.bytes;
  if (crc32Update(0, map_, bytes_) != info.crc32) {
    ::munmap(map_, bytes_);
    map_ = nullptr;
    throw std::runtime_error("SegmentReader: " + path +
                             ": checksum mismatch (corrupt segment)");
  }
}

SegmentReader::~SegmentReader() {
  if (map_ != nullptr) ::munmap(map_, bytes_);
}

void SegmentReader::forEach(
    const std::function<void(std::uint64_t, const PackedPattern&)>& fn)
    const {
  RecordCursor cursor(static_cast<const char*>(map_), bytes_);
  std::uint64_t hash = 0;
  PackedPattern packed;
  std::uint64_t seen = 0;
  while (!cursor.done()) {
    cursor.next(hash, packed);
    fn(hash, packed);
    ++seen;
  }
  if (seen != patterns_)
    throw std::runtime_error(
        "SegmentReader: record count mismatch (manifest says " +
        std::to_string(patterns_) + ", segment holds " +
        std::to_string(seen) + ")");
}

namespace {

Json segmentJson(const SegmentInfo& s) {
  Json j = Json::object();
  j.set("path", s.path);
  j.set("patterns", static_cast<double>(s.patterns));
  j.set("bytes", static_cast<double>(s.bytes));
  j.set("crc32", static_cast<double>(s.crc32));
  return j;
}

SegmentInfo segmentFromJson(const Json& j) {
  SegmentInfo s;
  s.path = j.at("path").asString();
  s.patterns = j.at("patterns").asUint64();
  s.bytes = j.at("bytes").asUint64();
  s.crc32 = static_cast<std::uint32_t>(j.at("crc32").asUint64());
  return s;
}

std::string readFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

}  // namespace

void commitManifest(const std::string& dir, const StoreManifest& m) {
  static FaultSite commitFault("pipeline.checkpoint.commit");
  commitFault.orThrow();

  Json j = Json::object();
  j.set("format", "dp-pipeline-1");
  j.set("seed", std::to_string(m.seed));  // exact beyond 2^53
  j.set("count", m.count);
  j.set("batchSize", m.batchSize);
  j.set("checkpointEvery", m.checkpointEvery);
  j.set("patternsPerSegment", m.patternsPerSegment);
  j.set("cursor", m.cursor);
  j.set("legal", m.legal);
  j.set("unique", static_cast<double>(m.unique));
  Json shards = Json::array();
  for (const std::uint64_t s : m.shardSizes)
    shards.push(Json(static_cast<double>(s)));
  j.set("shardSizes", std::move(shards));
  Json segments = Json::array();
  for (const SegmentInfo& s : m.segments) segments.push(segmentJson(s));
  j.set("segments", std::move(segments));

  AtomicFileWriter out(dir + "/manifest.json");
  out.append(j.dump());
  out.append("\n");
  (void)out.commit();
}

std::optional<StoreManifest> loadManifest(const std::string& dir) {
  static FaultSite resumeFault("pipeline.checkpoint.resume");
  const std::string path = dir + "/manifest.json";
  if (!fs::exists(path)) return std::nullopt;
  resumeFault.orThrow();
  const Json j = Json::parse(readFile(path));
  if (!j.has("format") || j.at("format").asString() != "dp-pipeline-1")
    throw std::runtime_error("loadManifest: " + path +
                             ": not a dp-pipeline-1 manifest");
  StoreManifest m;
  m.seed = j.at("seed").asUint64();
  m.count = j.at("count").asLong();
  m.batchSize = static_cast<int>(j.at("batchSize").asLong());
  m.checkpointEvery = j.at("checkpointEvery").asLong();
  m.patternsPerSegment = j.at("patternsPerSegment").asLong();
  m.cursor = j.at("cursor").asLong();
  m.legal = j.at("legal").asLong();
  m.unique = j.at("unique").asUint64();
  const Json& shards = j.at("shardSizes");
  m.shardSizes.reserve(shards.size());
  for (std::size_t i = 0; i < shards.size(); ++i)
    m.shardSizes.push_back(shards.at(i).asUint64());
  const Json& segments = j.at("segments");
  m.segments.reserve(segments.size());
  for (std::size_t i = 0; i < segments.size(); ++i)
    m.segments.push_back(segmentFromJson(segments.at(i)));
  return m;
}

}  // namespace dp::pipeline
