#include "nn/init.hpp"

#include <cmath>

namespace dp::nn {

void xavierUniform(Tensor& w, int fanIn, int fanOut, Rng& rng) {
  const double a = std::sqrt(6.0 / (fanIn + fanOut));
  for (std::size_t i = 0; i < w.numel(); ++i)
    w[i] = static_cast<float>(rng.uniform(-a, a));
}

void heNormal(Tensor& w, int fanIn, Rng& rng) {
  const double s = std::sqrt(2.0 / fanIn);
  for (std::size_t i = 0; i < w.numel(); ++i)
    w[i] = static_cast<float>(rng.gaussian(0.0, s));
}

}  // namespace dp::nn
