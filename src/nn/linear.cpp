#include "nn/linear.hpp"

#include <stdexcept>

#include "nn/init.hpp"
#include "tensor/gemm.hpp"

namespace dp::nn {

Linear::Linear(int inFeatures, int outFeatures, Rng& rng,
               double weightDecay)
    : in_(inFeatures), out_(outFeatures),
      weight_(Tensor::zeros({outFeatures, inFeatures}), weightDecay),
      bias_(Tensor::zeros({outFeatures})) {
  if (inFeatures <= 0 || outFeatures <= 0)
    throw std::invalid_argument("Linear: features must be positive");
  xavierUniform(weight_.value, in_, out_, rng);
}

Tensor Linear::forward(const Tensor& x, bool /*training*/) {
  if (x.dim() != 2 || x.size(1) != in_)
    throw std::invalid_argument("Linear::forward: expected (N," +
                                std::to_string(in_) + "), got " +
                                x.shapeString());
  input_ = x;
  const int n = x.size(0);
  Tensor y({n, out_});
  // y = x (N,in) * W^T (in,out) via the packed kernel layer.
  gemm(false, true, n, out_, in_, 1.0f, x.data(), in_,
       weight_.value.data(), in_, 0.0f, y.data(), out_);
  const float* b = bias_.value.data();
  for (int i = 0; i < n; ++i) {
    float* row = y.data() + static_cast<std::size_t>(i) * out_;
    for (int j = 0; j < out_; ++j) row[j] += b[j];
  }
  return y;
}

Tensor Linear::infer(const Tensor& x) const {
  if (x.dim() != 2 || x.size(1) != in_)
    throw std::invalid_argument("Linear::infer: expected (N," +
                                std::to_string(in_) + "), got " +
                                x.shapeString());
  const int n = x.size(0);
  Tensor y({n, out_});
  gemm(false, true, n, out_, in_, 1.0f, x.data(), in_,
       weight_.value.data(), in_, 0.0f, y.data(), out_);
  const float* b = bias_.value.data();
  for (int i = 0; i < n; ++i) {
    float* row = y.data() + static_cast<std::size_t>(i) * out_;
    for (int j = 0; j < out_; ++j) row[j] += b[j];
  }
  return y;
}

Tensor Linear::backward(const Tensor& gradOut) {
  const int n = input_.size(0);
  if (gradOut.dim() != 2 || gradOut.size(0) != n || gradOut.size(1) != out_)
    throw std::invalid_argument("Linear::backward: bad gradient shape");
  // dW += dy^T (out,N) * x (N,in)
  gemm(true, false, out_, in_, n, 1.0f, gradOut.data(), out_,
       input_.data(), in_, 1.0f, weight_.grad.data(), in_);
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < out_; ++j) bias_.grad[j] += gradOut.at(i, j);
  // dx = dy (N,out) * W (out,in)
  Tensor dx({n, in_});
  gemm(false, false, n, in_, out_, 1.0f, gradOut.data(), out_,
       weight_.value.data(), in_, 0.0f, dx.data(), in_);
  return dx;
}

}  // namespace dp::nn
