#include "nn/activations.hpp"

#include <cmath>

namespace dp::nn {

Tensor ReLU::forward(const Tensor& x, bool /*training*/) {
  input_ = x;
  Tensor y = x;
  for (std::size_t i = 0; i < y.numel(); ++i)
    if (y[i] < 0.0f) y[i] = 0.0f;
  return y;
}

Tensor ReLU::infer(const Tensor& x) const {
  Tensor y = x;
  for (std::size_t i = 0; i < y.numel(); ++i)
    if (y[i] < 0.0f) y[i] = 0.0f;
  return y;
}

Tensor ReLU::backward(const Tensor& gradOut) {
  requireSameShape(gradOut, input_, "ReLU::backward");
  Tensor dx = gradOut;
  for (std::size_t i = 0; i < dx.numel(); ++i)
    if (input_[i] <= 0.0f) dx[i] = 0.0f;
  return dx;
}

Tensor LeakyReLU::forward(const Tensor& x, bool /*training*/) {
  input_ = x;
  Tensor y = x;
  for (std::size_t i = 0; i < y.numel(); ++i)
    if (y[i] < 0.0f) y[i] *= slope_;
  return y;
}

Tensor LeakyReLU::infer(const Tensor& x) const {
  Tensor y = x;
  for (std::size_t i = 0; i < y.numel(); ++i)
    if (y[i] < 0.0f) y[i] *= slope_;
  return y;
}

Tensor LeakyReLU::backward(const Tensor& gradOut) {
  requireSameShape(gradOut, input_, "LeakyReLU::backward");
  Tensor dx = gradOut;
  for (std::size_t i = 0; i < dx.numel(); ++i)
    if (input_[i] <= 0.0f) dx[i] *= slope_;
  return dx;
}

Tensor Sigmoid::forward(const Tensor& x, bool /*training*/) {
  Tensor y = x;
  for (std::size_t i = 0; i < y.numel(); ++i)
    y[i] = 1.0f / (1.0f + std::exp(-y[i]));
  output_ = y;
  return y;
}

Tensor Sigmoid::infer(const Tensor& x) const {
  Tensor y = x;
  for (std::size_t i = 0; i < y.numel(); ++i)
    y[i] = 1.0f / (1.0f + std::exp(-y[i]));
  return y;
}

Tensor Sigmoid::backward(const Tensor& gradOut) {
  requireSameShape(gradOut, output_, "Sigmoid::backward");
  Tensor dx = gradOut;
  for (std::size_t i = 0; i < dx.numel(); ++i)
    dx[i] *= output_[i] * (1.0f - output_[i]);
  return dx;
}

Tensor Tanh::forward(const Tensor& x, bool /*training*/) {
  Tensor y = x;
  for (std::size_t i = 0; i < y.numel(); ++i) y[i] = std::tanh(y[i]);
  output_ = y;
  return y;
}

Tensor Tanh::infer(const Tensor& x) const {
  Tensor y = x;
  for (std::size_t i = 0; i < y.numel(); ++i) y[i] = std::tanh(y[i]);
  return y;
}

Tensor Tanh::backward(const Tensor& gradOut) {
  requireSameShape(gradOut, output_, "Tanh::backward");
  Tensor dx = gradOut;
  for (std::size_t i = 0; i < dx.numel(); ++i)
    dx[i] *= 1.0f - output_[i] * output_[i];
  return dx;
}

}  // namespace dp::nn
