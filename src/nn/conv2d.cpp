#include "nn/conv2d.hpp"

#include <stdexcept>

#include "nn/init.hpp"
#include "tensor/gemm.hpp"

namespace dp::nn {

Conv2d::Conv2d(int inChannels, int outChannels, int kernel, int stride,
               int pad, Rng& rng, double weightDecay)
    : inC_(inChannels), outC_(outChannels), kernel_(kernel),
      stride_(stride), pad_(pad),
      weight_(Tensor::zeros({outChannels, inChannels * kernel * kernel}),
              weightDecay),
      bias_(Tensor::zeros({outChannels})) {
  if (inChannels <= 0 || outChannels <= 0 || kernel <= 0 || stride <= 0 ||
      pad < 0)
    throw std::invalid_argument("Conv2d: bad configuration");
  xavierUniform(weight_.value, inChannels * kernel * kernel,
                outChannels * kernel * kernel, rng);
}

Tensor Conv2d::forward(const Tensor& x, bool /*training*/) {
  if (x.dim() != 4 || x.size(1) != inC_)
    throw std::invalid_argument("Conv2d::forward: bad input " +
                                x.shapeString());
  const int n = x.size(0);
  geom_ = ConvGeom{inC_, x.size(2), x.size(3), kernel_, stride_, pad_};
  const int oh = geom_.outHeight();
  const int ow = geom_.outWidth();
  if (oh <= 0 || ow <= 0)
    throw std::invalid_argument("Conv2d::forward: input too small");
  input_ = x;
  const int cr = geom_.colRows();
  const int cc = geom_.colCols();
  cols_ = Tensor({n, cr * cc});

  Tensor y({n, outC_, oh, ow});
  const std::size_t planeIn =
      static_cast<std::size_t>(inC_) * geom_.height * geom_.width;
  const std::size_t planeOut = static_cast<std::size_t>(outC_) * oh * ow;
  for (int s = 0; s < n; ++s) {
    float* cols = cols_.data() + static_cast<std::size_t>(s) * cr * cc;
    im2col(geom_, x.data() + s * planeIn, cols);
    // y_s (outC, cc) = W (outC, cr) * cols (cr, cc)
    gemm(false, false, outC_, cc, cr, 1.0f, weight_.value.data(), cr, cols,
         cc, 0.0f, y.data() + s * planeOut, cc);
  }
  for (int s = 0; s < n; ++s)
    for (int c = 0; c < outC_; ++c) {
      float* plane = y.data() + s * planeOut + static_cast<std::size_t>(c) * oh * ow;
      const float b = bias_.value[c];
      for (int i = 0; i < oh * ow; ++i) plane[i] += b;
    }
  return y;
}

Tensor Conv2d::backward(const Tensor& gradOut) {
  const int n = input_.size(0);
  const int oh = geom_.outHeight();
  const int ow = geom_.outWidth();
  if (gradOut.dim() != 4 || gradOut.size(0) != n ||
      gradOut.size(1) != outC_ || gradOut.size(2) != oh ||
      gradOut.size(3) != ow)
    throw std::invalid_argument("Conv2d::backward: bad gradient shape");

  const int cr = geom_.colRows();
  const int cc = geom_.colCols();
  Tensor dx(input_.shape());
  std::vector<float> dcols(static_cast<std::size_t>(cr) * cc);
  const std::size_t planeIn =
      static_cast<std::size_t>(inC_) * geom_.height * geom_.width;
  const std::size_t planeOut = static_cast<std::size_t>(outC_) * oh * ow;

  for (int s = 0; s < n; ++s) {
    const float* dy = gradOut.data() + s * planeOut;
    const float* cols = cols_.data() + static_cast<std::size_t>(s) * cr * cc;
    // dW (outC, cr) += dy (outC, cc) * cols^T (cc, cr)
    gemm(false, true, outC_, cr, cc, 1.0f, dy, cc, cols, cc, 1.0f,
         weight_.grad.data(), cr);
    // dcols (cr, cc) = W^T (cr, outC) * dy (outC, cc)
    gemm(true, false, cr, cc, outC_, 1.0f, weight_.value.data(), cr, dy, cc,
         0.0f, dcols.data(), cc);
    col2im(geom_, dcols.data(), dx.data() + s * planeIn);
    for (int c = 0; c < outC_; ++c) {
      const float* plane = dy + static_cast<std::size_t>(c) * oh * ow;
      float acc = 0.0f;
      for (int i = 0; i < oh * ow; ++i) acc += plane[i];
      bias_.grad[c] += acc;
    }
  }
  return dx;
}

}  // namespace dp::nn
