#include "nn/conv2d.hpp"

#include <stdexcept>
#include <vector>

#include "common/thread_pool.hpp"
#include "nn/init.hpp"
#include "tensor/conv_direct.hpp"
#include "tensor/gemm.hpp"

namespace dp::nn {

namespace {

/// Convolves one sample: im2col into `cols`, GEMM with the weights and
/// bias add into `y` (the sample's (outC, oh*ow) output plane).
void convSample(const ConvGeom& geom, int outC, const float* weights,
                const float* bias, const float* image, float* cols,
                float* y) {
  const int cr = geom.colRows();
  const int cc = geom.colCols();
  im2col(geom, image, cols);
  // y_s (outC, cc) = W (outC, cr) * cols (cr, cc)
  gemm(false, false, outC, cc, cr, 1.0f, weights, cr, cols, cc, 0.0f, y,
       cc);
  for (int c = 0; c < outC; ++c) {
    float* plane = y + static_cast<std::size_t>(c) * cc;
    const float b = bias[c];
    for (int i = 0; i < cc; ++i) plane[i] += b;
  }
}

}  // namespace

Conv2d::Conv2d(int inChannels, int outChannels, int kernel, int stride,
               int pad, Rng& rng, double weightDecay)
    : inC_(inChannels), outC_(outChannels), kernel_(kernel),
      stride_(stride), pad_(pad),
      weight_(Tensor::zeros({outChannels, inChannels * kernel * kernel}),
              weightDecay),
      bias_(Tensor::zeros({outChannels})) {
  if (inChannels <= 0 || outChannels <= 0 || kernel <= 0 || stride <= 0 ||
      pad < 0)
    throw std::invalid_argument("Conv2d: bad configuration");
  xavierUniform(weight_.value, inChannels * kernel * kernel,
                outChannels * kernel * kernel, rng);
}

Tensor Conv2d::forward(const Tensor& x, bool /*training*/) {
  if (x.dim() != 4 || x.size(1) != inC_)
    throw std::invalid_argument("Conv2d::forward: bad input " +
                                x.shapeString());
  const int n = x.size(0);
  geom_ = ConvGeom{inC_, x.size(2), x.size(3), kernel_, stride_, pad_};
  const int oh = geom_.outHeight();
  const int ow = geom_.outWidth();
  if (oh <= 0 || ow <= 0)
    throw std::invalid_argument("Conv2d::forward: input too small");
  input_ = x;
  const int cr = geom_.colRows();
  const int cc = geom_.colCols();
  cols_ = Tensor({n, cr * cc});

  Tensor y({n, outC_, oh, ow});
  const std::size_t planeIn =
      static_cast<std::size_t>(inC_) * geom_.height * geom_.width;
  const std::size_t planeOut = static_cast<std::size_t>(outC_) * oh * ow;
  // Every sample owns its slice of cols_ and y: race-free by layout.
  dp::parallelFor(n, 1, [&](long s0, long s1) {
    for (long s = s0; s < s1; ++s) {
      convSample(geom_, outC_, weight_.value.data(), bias_.value.data(),
                 x.data() + static_cast<std::size_t>(s) * planeIn,
                 cols_.data() + static_cast<std::size_t>(s) * cr * cc,
                 y.data() + static_cast<std::size_t>(s) * planeOut);
    }
  });
  return y;
}

Tensor Conv2d::infer(const Tensor& x) const {
  if (x.dim() != 4 || x.size(1) != inC_)
    throw std::invalid_argument("Conv2d::infer: bad input " +
                                x.shapeString());
  const int n = x.size(0);
  const ConvGeom geom{inC_, x.size(2), x.size(3), kernel_, stride_, pad_};
  const int oh = geom.outHeight();
  const int ow = geom.outWidth();
  if (oh <= 0 || ow <= 0)
    throw std::invalid_argument("Conv2d::infer: input too small");
  const int cr = geom.colRows();
  const int cc = geom.colCols();
  Tensor y({n, outC_, oh, ow});
  const std::size_t planeIn =
      static_cast<std::size_t>(inC_) * geom.height * geom.width;
  const std::size_t planeOut = static_cast<std::size_t>(outC_) * oh * ow;
  // Single-channel inputs (the TCAE squish-topology shape) skip im2col
  // on the inference path: no cols scratch is needed here because
  // infer() never backpropagates. forward() keeps the im2col route —
  // backward() consumes the stored column matrix for dW.
  if (convDirectApplicable(geom)) {
    dp::parallelFor(n, 1, [&](long s0, long s1) {
      for (long s = s0; s < s1; ++s) {
        convDirect(geom, outC_, weight_.value.data(), bias_.value.data(),
                   x.data() + static_cast<std::size_t>(s) * planeIn,
                   y.data() + static_cast<std::size_t>(s) * planeOut);
      }
    });
    return y;
  }
  dp::parallelFor(n, 1, [&](long s0, long s1) {
    std::vector<float> cols(static_cast<std::size_t>(cr) * cc);
    for (long s = s0; s < s1; ++s) {
      convSample(geom, outC_, weight_.value.data(), bias_.value.data(),
                 x.data() + static_cast<std::size_t>(s) * planeIn,
                 cols.data(),
                 y.data() + static_cast<std::size_t>(s) * planeOut);
    }
  });
  return y;
}

Tensor Conv2d::backward(const Tensor& gradOut) {
  const int n = input_.size(0);
  const int oh = geom_.outHeight();
  const int ow = geom_.outWidth();
  if (gradOut.dim() != 4 || gradOut.size(0) != n ||
      gradOut.size(1) != outC_ || gradOut.size(2) != oh ||
      gradOut.size(3) != ow)
    throw std::invalid_argument("Conv2d::backward: bad gradient shape");

  const int cr = geom_.colRows();
  const int cc = geom_.colCols();
  Tensor dx(input_.shape());
  const std::size_t planeIn =
      static_cast<std::size_t>(inC_) * geom_.height * geom_.width;
  const std::size_t planeOut = static_cast<std::size_t>(outC_) * oh * ow;

  // Per-sample gradient buffers, reduced below in ascending sample
  // order — the same accumulation sequence as a serial loop, so weight
  // gradients are bit-identical at any thread count.
  const std::size_t wN = weight_.grad.numel();
  std::vector<float> dw(static_cast<std::size_t>(n) * wN, 0.0f);
  std::vector<float> db(static_cast<std::size_t>(n) * outC_, 0.0f);

  dp::parallelFor(n, 1, [&](long s0, long s1) {
    std::vector<float> dcols(static_cast<std::size_t>(cr) * cc);
    for (long s = s0; s < s1; ++s) {
      const float* dy = gradOut.data() + static_cast<std::size_t>(s) * planeOut;
      const float* cols =
          cols_.data() + static_cast<std::size_t>(s) * cr * cc;
      // dW_s (outC, cr) = dy (outC, cc) * cols^T (cc, cr)
      gemm(false, true, outC_, cr, cc, 1.0f, dy, cc, cols, cc, 0.0f,
           dw.data() + static_cast<std::size_t>(s) * wN, cr);
      // dcols (cr, cc) = W^T (cr, outC) * dy (outC, cc)
      gemm(true, false, cr, cc, outC_, 1.0f, weight_.value.data(), cr, dy,
           cc, 0.0f, dcols.data(), cc);
      col2im(geom_, dcols.data(),
             dx.data() + static_cast<std::size_t>(s) * planeIn);
      for (int c = 0; c < outC_; ++c) {
        const float* plane = dy + static_cast<std::size_t>(c) * oh * ow;
        float acc = 0.0f;
        for (int i = 0; i < oh * ow; ++i) acc += plane[i];
        db[static_cast<std::size_t>(s) * outC_ + c] = acc;
      }
    }
  });

  for (int s = 0; s < n; ++s) {
    const float* dws = dw.data() + static_cast<std::size_t>(s) * wN;
    for (std::size_t e = 0; e < wN; ++e) weight_.grad[e] += dws[e];
    for (int c = 0; c < outC_; ++c)
      bias_.grad[c] += db[static_cast<std::size_t>(s) * outC_ + c];
  }
  return dx;
}

}  // namespace dp::nn
