#pragma once

/// \file batchnorm.hpp
/// Batch normalization over (N, D) feature batches (the paper's GAN
/// generator applies batch normalization between dense layers, §III-C2).
/// Keeps running statistics for inference mode.

#include "nn/layer.hpp"

namespace dp::nn {

class BatchNorm1d final : public Layer {
 public:
  explicit BatchNorm1d(int features, double momentum = 0.9,
                       double eps = 1e-5);

  Tensor forward(const Tensor& x, bool training) override;
  Tensor infer(const Tensor& x) const override;
  Tensor backward(const Tensor& gradOut) override;
  std::vector<Param*> params() override { return {&gamma_, &beta_}; }
  std::vector<Tensor*> state() override {
    return {&runningMean_, &runningVar_};
  }
  [[nodiscard]] std::string name() const override { return "batchnorm1d"; }

  [[nodiscard]] const Tensor& runningMean() const { return runningMean_; }
  [[nodiscard]] const Tensor& runningVar() const { return runningVar_; }

 private:
  int features_;
  double momentum_;
  double eps_;
  Param gamma_;
  Param beta_;
  Tensor runningMean_;
  Tensor runningVar_;
  // Backward caches.
  Tensor xhat_;
  Tensor invStd_;  // (D)
};

}  // namespace dp::nn
