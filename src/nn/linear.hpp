#pragma once

/// \file linear.hpp
/// Fully connected (dense) layer: y = x W^T + b over (N, in) batches.

#include "common/rng.hpp"
#include "nn/layer.hpp"

namespace dp::nn {

class Linear final : public Layer {
 public:
  /// Xavier-initialized dense layer with the given L2 coefficient.
  Linear(int inFeatures, int outFeatures, Rng& rng, double weightDecay = 0.0);

  Tensor forward(const Tensor& x, bool training) override;
  Tensor infer(const Tensor& x) const override;
  Tensor backward(const Tensor& gradOut) override;
  std::vector<Param*> params() override { return {&weight_, &bias_}; }
  [[nodiscard]] std::string name() const override { return "linear"; }

  [[nodiscard]] int inFeatures() const { return in_; }
  [[nodiscard]] int outFeatures() const { return out_; }
  [[nodiscard]] Param& weight() { return weight_; }
  [[nodiscard]] Param& bias() { return bias_; }
  [[nodiscard]] const Param& weight() const { return weight_; }
  [[nodiscard]] const Param& bias() const { return bias_; }

 private:
  int in_;
  int out_;
  Param weight_;  // (out, in)
  Param bias_;    // (out)
  Tensor input_;  // cached for backward
};

}  // namespace dp::nn
