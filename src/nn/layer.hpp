#pragma once

/// \file layer.hpp
/// Layer abstraction of the neural-network substrate. Layers are
/// stateful value objects: forward() caches whatever backward() needs,
/// so a layer instance serves exactly one in-flight forward/backward
/// pair (standard mini-batch training).

#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"

namespace dp::nn {

/// One trainable parameter: value, gradient accumulator and the L2
/// regularization coefficient applied by optimizers (the paper uses
/// different coefficients for conv and dense layers, §IV-A).
struct Param {
  Tensor value;
  Tensor grad;
  double weightDecay = 0.0;

  explicit Param(Tensor v, double wd = 0.0)
      : value(std::move(v)), grad(Tensor::zeros(value.shape())),
        weightDecay(wd) {}
};

/// Abstract differentiable layer.
class Layer {
 public:
  virtual ~Layer() = default;

  /// Computes the layer output. `training` toggles train-time behaviour
  /// (batch-norm statistics). Caches activations for backward().
  virtual Tensor forward(const Tensor& x, bool training) = 0;

  /// Inference-only counterpart of forward(x, /*training=*/false): same
  /// output, but touches no cached state, so a shared layer (or model)
  /// can run infer() from many threads at once. The parallel generation
  /// and sensitivity flows rely on this.
  [[nodiscard]] virtual Tensor infer(const Tensor& x) const = 0;

  /// Given dL/d(output), accumulates parameter gradients and returns
  /// dL/d(input). Must be called after a matching forward().
  virtual Tensor backward(const Tensor& gradOut) = 0;

  /// Trainable parameters (empty for activations and reshapes).
  virtual std::vector<Param*> params() { return {}; }

  /// Persistent non-trainable state that checkpoints must carry to
  /// reproduce inference (batch-norm running statistics). Empty for
  /// stateless layers; backward caches do NOT belong here.
  virtual std::vector<Tensor*> state() { return {}; }

  /// Short human-readable layer name for diagnostics.
  [[nodiscard]] virtual std::string name() const = 0;
};

using LayerPtr = std::unique_ptr<Layer>;

}  // namespace dp::nn
