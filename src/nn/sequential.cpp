#include "nn/sequential.hpp"

#include <stdexcept>

namespace dp::nn {

Sequential& Sequential::add(LayerPtr layer) {
  if (!layer) throw std::invalid_argument("Sequential::add: null layer");
  layers_.push_back(std::move(layer));
  return *this;
}

Tensor Sequential::forward(const Tensor& x, bool training) {
  Tensor h = x;
  for (auto& l : layers_) h = l->forward(h, training);
  return h;
}

Tensor Sequential::infer(const Tensor& x) const {
  Tensor h = x;
  for (const auto& l : layers_) h = l->infer(h);
  return h;
}

Tensor Sequential::backward(const Tensor& gradOut) {
  Tensor g = gradOut;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it)
    g = (*it)->backward(g);
  return g;
}

std::vector<Param*> Sequential::params() {
  std::vector<Param*> out;
  for (auto& l : layers_)
    for (Param* p : l->params()) out.push_back(p);
  return out;
}

std::vector<Tensor*> Sequential::state() {
  std::vector<Tensor*> out;
  for (auto& l : layers_)
    for (Tensor* t : l->state()) out.push_back(t);
  return out;
}

std::size_t Sequential::parameterCount() {
  std::size_t n = 0;
  for (Param* p : params()) n += p->value.numel();
  return n;
}

}  // namespace dp::nn
