#pragma once

/// \file conv_transpose2d.hpp
/// 2-D transposed convolution ("deconvolution", Dumoulin & Visin 2016 —
/// the paper's generation unit building block). Implemented as the exact
/// adjoint of Conv2d: forward is a conv backward-data pass (GEMM +
/// col2im) and backward-data is a conv forward pass (im2col + GEMM).
/// Output spatial size: (in-1)*stride - 2*pad + kernel.

#include "common/rng.hpp"
#include "nn/layer.hpp"
#include "tensor/im2col.hpp"

namespace dp::nn {

class ConvTranspose2d final : public Layer {
 public:
  ConvTranspose2d(int inChannels, int outChannels, int kernel, int stride,
                  int pad, Rng& rng, double weightDecay = 0.0);

  Tensor forward(const Tensor& x, bool training) override;
  Tensor infer(const Tensor& x) const override;
  Tensor backward(const Tensor& gradOut) override;
  std::vector<Param*> params() override { return {&weight_, &bias_}; }
  [[nodiscard]] std::string name() const override {
    return "conv_transpose2d";
  }

  [[nodiscard]] int outSize(int inSize) const {
    return (inSize - 1) * stride_ - 2 * pad_ + kernel_;
  }

  [[nodiscard]] int inChannels() const { return inC_; }
  [[nodiscard]] int outChannels() const { return outC_; }
  [[nodiscard]] int kernel() const { return kernel_; }
  [[nodiscard]] int stride() const { return stride_; }
  [[nodiscard]] int pad() const { return pad_; }
  [[nodiscard]] const Param& weight() const { return weight_; }
  [[nodiscard]] const Param& bias() const { return bias_; }

 private:
  int inC_, outC_, kernel_, stride_, pad_;
  Param weight_;  // (inC, outC*K*K) — the adjoint conv's weight layout
  Param bias_;    // (outC)
  Tensor input_;  // cached (N,inC,H,W)
  ConvGeom geom_; // geometry of the adjoint conv: (outC, OH, OW) -> (H, W)
};

}  // namespace dp::nn
