#pragma once

/// \file init.hpp
/// Weight initialization. The paper initializes all neuron weights with
/// the Xavier (Glorot) initializer (§IV-A); He initialization is
/// provided for completeness/ablation.

#include "common/rng.hpp"
#include "tensor/tensor.hpp"

namespace dp::nn {

/// Xavier/Glorot uniform: U(-a, a) with a = sqrt(6 / (fanIn + fanOut)).
void xavierUniform(Tensor& w, int fanIn, int fanOut, Rng& rng);

/// He normal: N(0, sqrt(2 / fanIn)).
void heNormal(Tensor& w, int fanIn, Rng& rng);

}  // namespace dp::nn
