#include "nn/batchnorm.hpp"

#include <cmath>
#include <stdexcept>

namespace dp::nn {

BatchNorm1d::BatchNorm1d(int features, double momentum, double eps)
    : features_(features), momentum_(momentum), eps_(eps),
      gamma_(Tensor::full({features}, 1.0f)),
      beta_(Tensor::zeros({features})),
      runningMean_(Tensor::zeros({features})),
      runningVar_(Tensor::full({features}, 1.0f)) {
  if (features <= 0)
    throw std::invalid_argument("BatchNorm1d: features must be positive");
}

Tensor BatchNorm1d::forward(const Tensor& x, bool training) {
  if (x.dim() != 2 || x.size(1) != features_)
    throw std::invalid_argument("BatchNorm1d::forward: bad input " +
                                x.shapeString());
  const int n = x.size(0);
  Tensor mean({features_});
  Tensor var({features_});
  if (training && n > 1) {
    for (int j = 0; j < features_; ++j) {
      double m = 0.0;
      for (int i = 0; i < n; ++i) m += x.at(i, j);
      m /= n;
      double v = 0.0;
      for (int i = 0; i < n; ++i) {
        const double d = x.at(i, j) - m;
        v += d * d;
      }
      v /= n;
      mean[j] = static_cast<float>(m);
      var[j] = static_cast<float>(v);
      runningMean_[j] = static_cast<float>(momentum_ * runningMean_[j] +
                                           (1.0 - momentum_) * m);
      runningVar_[j] = static_cast<float>(momentum_ * runningVar_[j] +
                                          (1.0 - momentum_) * v);
    }
  } else {
    mean = runningMean_;
    var = runningVar_;
  }

  invStd_ = Tensor({features_});
  for (int j = 0; j < features_; ++j)
    invStd_[j] = static_cast<float>(1.0 / std::sqrt(var[j] + eps_));

  xhat_ = Tensor({n, features_});
  Tensor y({n, features_});
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < features_; ++j) {
      const float xh = (x.at(i, j) - mean[j]) * invStd_[j];
      xhat_.at(i, j) = xh;
      y.at(i, j) = gamma_.value[j] * xh + beta_.value[j];
    }
  return y;
}

Tensor BatchNorm1d::infer(const Tensor& x) const {
  if (x.dim() != 2 || x.size(1) != features_)
    throw std::invalid_argument("BatchNorm1d::infer: bad input " +
                                x.shapeString());
  const int n = x.size(0);
  Tensor y({n, features_});
  for (int j = 0; j < features_; ++j) {
    const float is =
        static_cast<float>(1.0 / std::sqrt(runningVar_[j] + eps_));
    for (int i = 0; i < n; ++i)
      y.at(i, j) = gamma_.value[j] * ((x.at(i, j) - runningMean_[j]) * is) +
                   beta_.value[j];
  }
  return y;
}

Tensor BatchNorm1d::backward(const Tensor& gradOut) {
  const int n = xhat_.size(0);
  if (gradOut.dim() != 2 || gradOut.size(0) != n ||
      gradOut.size(1) != features_)
    throw std::invalid_argument("BatchNorm1d::backward: bad shape");
  Tensor dx({n, features_});
  for (int j = 0; j < features_; ++j) {
    double sumDy = 0.0, sumDyXhat = 0.0;
    for (int i = 0; i < n; ++i) {
      sumDy += gradOut.at(i, j);
      sumDyXhat += gradOut.at(i, j) * xhat_.at(i, j);
    }
    gamma_.grad[j] += static_cast<float>(sumDyXhat);
    beta_.grad[j] += static_cast<float>(sumDy);
    const double g = gamma_.value[j];
    const double is = invStd_[j];
    for (int i = 0; i < n; ++i) {
      const double dy = gradOut.at(i, j);
      dx.at(i, j) = static_cast<float>(
          g * is * (dy - sumDy / n - xhat_.at(i, j) * sumDyXhat / n));
    }
  }
  return dx;
}

}  // namespace dp::nn
