#pragma once

/// \file activations.hpp
/// Elementwise activation layers: ReLU, LeakyReLU (the paper's GAN
/// generator uses Leaky-ReLU, §III-C2), Sigmoid and Tanh.

#include "nn/layer.hpp"

namespace dp::nn {

class ReLU final : public Layer {
 public:
  Tensor forward(const Tensor& x, bool training) override;
  Tensor infer(const Tensor& x) const override;
  Tensor backward(const Tensor& gradOut) override;
  [[nodiscard]] std::string name() const override { return "relu"; }

 private:
  Tensor input_;
};

class LeakyReLU final : public Layer {
 public:
  explicit LeakyReLU(float slope = 0.2f) : slope_(slope) {}
  Tensor forward(const Tensor& x, bool training) override;
  Tensor infer(const Tensor& x) const override;
  Tensor backward(const Tensor& gradOut) override;
  [[nodiscard]] std::string name() const override { return "leaky_relu"; }
  [[nodiscard]] float slope() const { return slope_; }

 private:
  float slope_;
  Tensor input_;
};

class Sigmoid final : public Layer {
 public:
  Tensor forward(const Tensor& x, bool training) override;
  Tensor infer(const Tensor& x) const override;
  Tensor backward(const Tensor& gradOut) override;
  [[nodiscard]] std::string name() const override { return "sigmoid"; }

 private:
  Tensor output_;
};

class Tanh final : public Layer {
 public:
  Tensor forward(const Tensor& x, bool training) override;
  Tensor infer(const Tensor& x) const override;
  Tensor backward(const Tensor& gradOut) override;
  [[nodiscard]] std::string name() const override { return "tanh"; }

 private:
  Tensor output_;
};

}  // namespace dp::nn
