#pragma once

/// \file schedule.hpp
/// Learning-rate schedules. The paper decays the initial rate 0.001 by a
/// factor of 0.7 every 2000 iterations for the TCAE and by 0.05 every
/// 10000 iterations for the GAN (§IV-A).

#include <cmath>

namespace dp::nn {

/// Staircase exponential decay: lr(step) = lr0 * factor^(step / every).
class StepDecaySchedule {
 public:
  StepDecaySchedule(double initialLr, double factor, long everySteps)
      : lr0_(initialLr), factor_(factor), every_(everySteps) {}

  [[nodiscard]] double lrAt(long step) const {
    const long k = every_ > 0 ? step / every_ : 0;
    return lr0_ * std::pow(factor_, static_cast<double>(k));
  }

 private:
  double lr0_;
  double factor_;
  long every_;
};

}  // namespace dp::nn
