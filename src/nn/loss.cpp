#include "nn/loss.hpp"

#include <cmath>

namespace dp::nn {

double mseLoss(const Tensor& pred, const Tensor& target, Tensor& gradOut) {
  requireSameShape(pred, target, "mseLoss");
  gradOut = Tensor(pred.shape());
  const double n = static_cast<double>(pred.numel());
  double loss = 0.0;
  for (std::size_t i = 0; i < pred.numel(); ++i) {
    const double d = pred[i] - target[i];
    loss += d * d;
    gradOut[i] = static_cast<float>(2.0 * d / n);
  }
  return loss / n;
}

double bceWithLogitsLoss(const Tensor& logits, const Tensor& targets,
                         Tensor& gradOut) {
  requireSameShape(logits, targets, "bceWithLogitsLoss");
  gradOut = Tensor(logits.shape());
  const double n = static_cast<double>(logits.numel());
  double loss = 0.0;
  for (std::size_t i = 0; i < logits.numel(); ++i) {
    const double z = logits[i];
    const double y = targets[i];
    loss += std::max(z, 0.0) - z * y + std::log1p(std::exp(-std::abs(z)));
    const double sig = 1.0 / (1.0 + std::exp(-z));
    gradOut[i] = static_cast<float>((sig - y) / n);
  }
  return loss / n;
}

double gaussianKlLoss(const Tensor& mu, const Tensor& logVar,
                      Tensor& gradMu, Tensor& gradLogVar) {
  requireSameShape(mu, logVar, "gaussianKlLoss");
  gradMu = Tensor(mu.shape());
  gradLogVar = Tensor(mu.shape());
  const double batch = static_cast<double>(mu.size(0));
  double loss = 0.0;
  for (std::size_t i = 0; i < mu.numel(); ++i) {
    const double m = mu[i];
    const double lv = logVar[i];
    const double ev = std::exp(lv);
    loss += -0.5 * (1.0 + lv - m * m - ev);
    gradMu[i] = static_cast<float>(m / batch);
    gradLogVar[i] = static_cast<float>(-0.5 * (1.0 - ev) / batch);
  }
  return loss / batch;
}

}  // namespace dp::nn
