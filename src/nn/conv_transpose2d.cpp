#include "nn/conv_transpose2d.hpp"

#include <stdexcept>
#include <vector>

#include "nn/init.hpp"
#include "tensor/gemm.hpp"

namespace dp::nn {

ConvTranspose2d::ConvTranspose2d(int inChannels, int outChannels,
                                 int kernel, int stride, int pad, Rng& rng,
                                 double weightDecay)
    : inC_(inChannels), outC_(outChannels), kernel_(kernel),
      stride_(stride), pad_(pad),
      weight_(Tensor::zeros({inChannels, outChannels * kernel * kernel}),
              weightDecay),
      bias_(Tensor::zeros({outChannels})) {
  if (inChannels <= 0 || outChannels <= 0 || kernel <= 0 || stride <= 0 ||
      pad < 0)
    throw std::invalid_argument("ConvTranspose2d: bad configuration");
  xavierUniform(weight_.value, inChannels * kernel * kernel,
                outChannels * kernel * kernel, rng);
}

Tensor ConvTranspose2d::forward(const Tensor& x, bool /*training*/) {
  if (x.dim() != 4 || x.size(1) != inC_)
    throw std::invalid_argument("ConvTranspose2d::forward: bad input " +
                                x.shapeString());
  const int n = x.size(0);
  const int h = x.size(2);
  const int w = x.size(3);
  const int oh = outSize(h);
  const int ow = outSize(w);
  if (oh <= 0 || ow <= 0)
    throw std::invalid_argument("ConvTranspose2d::forward: input too small");
  input_ = x;
  // Adjoint conv maps the (outC, oh, ow) image down to (h, w).
  geom_ = ConvGeom{outC_, oh, ow, kernel_, stride_, pad_};
  const int cr = geom_.colRows();   // outC*K*K
  const int cc = geom_.colCols();   // h*w

  Tensor y({n, outC_, oh, ow});
  std::vector<float> cols(static_cast<std::size_t>(cr) * cc);
  const std::size_t planeIn = static_cast<std::size_t>(inC_) * h * w;
  const std::size_t planeOut = static_cast<std::size_t>(outC_) * oh * ow;
  for (int s = 0; s < n; ++s) {
    // cols (cr, cc) = W^T (cr, inC) * x_s (inC, cc)
    gemm(true, false, cr, cc, inC_, 1.0f, weight_.value.data(), cr,
         x.data() + s * planeIn, cc, 0.0f, cols.data(), cc);
    col2im(geom_, cols.data(), y.data() + s * planeOut);
  }
  for (int s = 0; s < n; ++s)
    for (int c = 0; c < outC_; ++c) {
      float* plane =
          y.data() + s * planeOut + static_cast<std::size_t>(c) * oh * ow;
      const float b = bias_.value[c];
      for (int i = 0; i < oh * ow; ++i) plane[i] += b;
    }
  return y;
}

Tensor ConvTranspose2d::backward(const Tensor& gradOut) {
  const int n = input_.size(0);
  const int h = input_.size(2);
  const int w = input_.size(3);
  const int oh = geom_.height;
  const int ow = geom_.width;
  if (gradOut.dim() != 4 || gradOut.size(0) != n ||
      gradOut.size(1) != outC_ || gradOut.size(2) != oh ||
      gradOut.size(3) != ow)
    throw std::invalid_argument("ConvTranspose2d::backward: bad shape");

  const int cr = geom_.colRows();
  const int cc = geom_.colCols();  // == h*w
  Tensor dx(input_.shape());
  std::vector<float> cols(static_cast<std::size_t>(cr) * cc);
  const std::size_t planeIn = static_cast<std::size_t>(inC_) * h * w;
  const std::size_t planeOut = static_cast<std::size_t>(outC_) * oh * ow;

  for (int s = 0; s < n; ++s) {
    const float* dy = gradOut.data() + s * planeOut;
    im2col(geom_, dy, cols.data());
    // dx_s (inC, cc) = W (inC, cr) * cols (cr, cc)
    gemm(false, false, inC_, cc, cr, 1.0f, weight_.value.data(), cr,
         cols.data(), cc, 0.0f, dx.data() + s * planeIn, cc);
    // dW (inC, cr) += x_s (inC, cc) * cols^T (cc, cr)
    gemm(false, true, inC_, cr, cc, 1.0f, input_.data() + s * planeIn, cc,
         cols.data(), cc, 1.0f, weight_.grad.data(), cr);
    for (int c = 0; c < outC_; ++c) {
      const float* plane = dy + static_cast<std::size_t>(c) * oh * ow;
      float acc = 0.0f;
      for (int i = 0; i < oh * ow; ++i) acc += plane[i];
      bias_.grad[c] += acc;
    }
  }
  return dx;
}

}  // namespace dp::nn
