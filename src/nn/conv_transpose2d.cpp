#include "nn/conv_transpose2d.hpp"

#include <stdexcept>
#include <vector>

#include "common/thread_pool.hpp"
#include "nn/init.hpp"
#include "tensor/gemm.hpp"

namespace dp::nn {

namespace {

/// Deconvolves one sample: GEMM (packed kernel layer, transA path —
/// transposition is absorbed by the A-panel packing) with the weights
/// into `cols`, col2im and bias add into `y` (the sample's (outC,
/// oh*ow) output plane).
void deconvSample(const ConvGeom& geom, int inC, const float* weights,
                  const float* bias, const float* x, float* cols,
                  float* y) {
  const int cr = geom.colRows();  // outC*K*K
  const int cc = geom.colCols();  // h*w
  // cols (cr, cc) = W^T (cr, inC) * x_s (inC, cc)
  gemm(true, false, cr, cc, inC, 1.0f, weights, cr, x, cc, 0.0f, cols, cc);
  col2im(geom, cols, y);
  const int planeOut = geom.height * geom.width;
  for (int c = 0; c < geom.channels; ++c) {
    float* plane = y + static_cast<std::size_t>(c) * planeOut;
    const float b = bias[c];
    for (int i = 0; i < planeOut; ++i) plane[i] += b;
  }
}

}  // namespace

ConvTranspose2d::ConvTranspose2d(int inChannels, int outChannels,
                                 int kernel, int stride, int pad, Rng& rng,
                                 double weightDecay)
    : inC_(inChannels), outC_(outChannels), kernel_(kernel),
      stride_(stride), pad_(pad),
      weight_(Tensor::zeros({inChannels, outChannels * kernel * kernel}),
              weightDecay),
      bias_(Tensor::zeros({outChannels})) {
  if (inChannels <= 0 || outChannels <= 0 || kernel <= 0 || stride <= 0 ||
      pad < 0)
    throw std::invalid_argument("ConvTranspose2d: bad configuration");
  xavierUniform(weight_.value, inChannels * kernel * kernel,
                outChannels * kernel * kernel, rng);
}

Tensor ConvTranspose2d::forward(const Tensor& x, bool /*training*/) {
  if (x.dim() != 4 || x.size(1) != inC_)
    throw std::invalid_argument("ConvTranspose2d::forward: bad input " +
                                x.shapeString());
  const int n = x.size(0);
  const int h = x.size(2);
  const int w = x.size(3);
  const int oh = outSize(h);
  const int ow = outSize(w);
  if (oh <= 0 || ow <= 0)
    throw std::invalid_argument("ConvTranspose2d::forward: input too small");
  input_ = x;
  // Adjoint conv maps the (outC, oh, ow) image down to (h, w).
  geom_ = ConvGeom{outC_, oh, ow, kernel_, stride_, pad_};
  const int cr = geom_.colRows();   // outC*K*K
  const int cc = geom_.colCols();   // h*w

  Tensor y({n, outC_, oh, ow});
  const std::size_t planeIn = static_cast<std::size_t>(inC_) * h * w;
  const std::size_t planeOut = static_cast<std::size_t>(outC_) * oh * ow;
  dp::parallelFor(n, 1, [&](long s0, long s1) {
    std::vector<float> cols(static_cast<std::size_t>(cr) * cc);
    for (long s = s0; s < s1; ++s) {
      deconvSample(geom_, inC_, weight_.value.data(), bias_.value.data(),
                   x.data() + static_cast<std::size_t>(s) * planeIn,
                   cols.data(),
                   y.data() + static_cast<std::size_t>(s) * planeOut);
    }
  });
  return y;
}

Tensor ConvTranspose2d::infer(const Tensor& x) const {
  if (x.dim() != 4 || x.size(1) != inC_)
    throw std::invalid_argument("ConvTranspose2d::infer: bad input " +
                                x.shapeString());
  const int n = x.size(0);
  const int h = x.size(2);
  const int w = x.size(3);
  const int oh = outSize(h);
  const int ow = outSize(w);
  if (oh <= 0 || ow <= 0)
    throw std::invalid_argument("ConvTranspose2d::infer: input too small");
  const ConvGeom geom{outC_, oh, ow, kernel_, stride_, pad_};
  const int cr = geom.colRows();
  const int cc = geom.colCols();
  Tensor y({n, outC_, oh, ow});
  const std::size_t planeIn = static_cast<std::size_t>(inC_) * h * w;
  const std::size_t planeOut = static_cast<std::size_t>(outC_) * oh * ow;
  dp::parallelFor(n, 1, [&](long s0, long s1) {
    std::vector<float> cols(static_cast<std::size_t>(cr) * cc);
    for (long s = s0; s < s1; ++s) {
      deconvSample(geom, inC_, weight_.value.data(), bias_.value.data(),
                   x.data() + static_cast<std::size_t>(s) * planeIn,
                   cols.data(),
                   y.data() + static_cast<std::size_t>(s) * planeOut);
    }
  });
  return y;
}

Tensor ConvTranspose2d::backward(const Tensor& gradOut) {
  const int n = input_.size(0);
  const int h = input_.size(2);
  const int w = input_.size(3);
  const int oh = geom_.height;
  const int ow = geom_.width;
  if (gradOut.dim() != 4 || gradOut.size(0) != n ||
      gradOut.size(1) != outC_ || gradOut.size(2) != oh ||
      gradOut.size(3) != ow)
    throw std::invalid_argument("ConvTranspose2d::backward: bad shape");

  const int cr = geom_.colRows();
  const int cc = geom_.colCols();  // == h*w
  Tensor dx(input_.shape());
  const std::size_t planeIn = static_cast<std::size_t>(inC_) * h * w;
  const std::size_t planeOut = static_cast<std::size_t>(outC_) * oh * ow;

  // Per-sample gradient buffers reduced in ascending sample order (see
  // Conv2d::backward).
  const std::size_t wN = weight_.grad.numel();
  std::vector<float> dw(static_cast<std::size_t>(n) * wN, 0.0f);
  std::vector<float> db(static_cast<std::size_t>(n) * outC_, 0.0f);

  dp::parallelFor(n, 1, [&](long s0, long s1) {
    std::vector<float> cols(static_cast<std::size_t>(cr) * cc);
    for (long s = s0; s < s1; ++s) {
      const float* dy =
          gradOut.data() + static_cast<std::size_t>(s) * planeOut;
      im2col(geom_, dy, cols.data());
      // dx_s (inC, cc) = W (inC, cr) * cols (cr, cc)
      gemm(false, false, inC_, cc, cr, 1.0f, weight_.value.data(), cr,
           cols.data(), cc, 0.0f,
           dx.data() + static_cast<std::size_t>(s) * planeIn, cc);
      // dW_s (inC, cr) = x_s (inC, cc) * cols^T (cc, cr)
      gemm(false, true, inC_, cr, cc, 1.0f,
           input_.data() + static_cast<std::size_t>(s) * planeIn, cc,
           cols.data(), cc, 0.0f,
           dw.data() + static_cast<std::size_t>(s) * wN, cr);
      for (int c = 0; c < outC_; ++c) {
        const float* plane = dy + static_cast<std::size_t>(c) * oh * ow;
        float acc = 0.0f;
        for (int i = 0; i < oh * ow; ++i) acc += plane[i];
        db[static_cast<std::size_t>(s) * outC_ + c] = acc;
      }
    }
  });

  for (int s = 0; s < n; ++s) {
    const float* dws = dw.data() + static_cast<std::size_t>(s) * wN;
    for (std::size_t e = 0; e < wN; ++e) weight_.grad[e] += dws[e];
    for (int c = 0; c < outC_; ++c)
      bias_.grad[c] += db[static_cast<std::size_t>(s) * outC_ + c];
  }
  return dx;
}

}  // namespace dp::nn
