#pragma once

/// \file serialize.hpp
/// Binary (de)serialization of parameter sets and single tensors, so
/// trained models can be cached between runs and packaged into serving
/// bundles. All save paths publish through dp::AtomicFileWriter
/// (write-temp + fsync + atomic rename), so a crash mid-save always
/// leaves the previous checkpoint file intact.

#include <string>
#include <vector>

#include "nn/layer.hpp"

namespace dp::nn {

/// Writes a tensor list (shapes + float data) to `path`. The parameter
/// checkpoint format: model checkpoints are the model's params()
/// values followed by its state() buffers (batch-norm running
/// statistics), in traversal order.
void saveTensors(const std::vector<const Tensor*>& tensors,
                 const std::string& path);

/// Loads a tensor list saved by saveTensors. The destination list must
/// have identical shapes in identical order. Every failure mode throws
/// std::runtime_error with a message naming the offending tensor:
/// count/rank/shape/element-count mismatch against the model,
/// truncation inside a tensor's shape or data, and trailing bytes
/// after the last tensor (an oversized file never silently misloads).
/// Nothing is committed to `tensors` unless the whole file validates.
void loadTensors(const std::vector<Tensor*>& tensors,
                 const std::string& path);

/// saveTensors over parameter values only (no layer state). Retained
/// for state-free models; models with batch normalization should save
/// params() + state() via saveTensors.
void saveParams(const std::vector<Param*>& params, const std::string& path);

/// loadTensors into parameter values only.
void loadParams(const std::vector<Param*>& params, const std::string& path);

/// Writes one tensor (shape + float data) to `path`.
void saveTensor(const Tensor& t, const std::string& path);

/// Loads a tensor saved by saveTensor, with the same
/// truncation/trailing-byte validation as loadParams.
[[nodiscard]] Tensor loadTensor(const std::string& path);

}  // namespace dp::nn
