#pragma once

/// \file serialize.hpp
/// Binary (de)serialization of parameter sets, so trained models can be
/// cached between runs of the experiment harnesses.

#include <string>
#include <vector>

#include "nn/layer.hpp"

namespace dp::nn {

/// Writes all parameter values (shapes + float data) to `path`.
/// Throws std::runtime_error on I/O failure.
void saveParams(const std::vector<Param*>& params, const std::string& path);

/// Loads parameter values saved by saveParams. The parameter list must
/// have identical shapes in identical order; throws std::runtime_error
/// otherwise or on I/O failure.
void loadParams(const std::vector<Param*>& params, const std::string& path);

}  // namespace dp::nn
