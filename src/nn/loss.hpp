#pragma once

/// \file loss.hpp
/// Loss functions. Each returns the scalar loss and writes dL/dpred into
/// an output tensor, ready to feed a backward() chain.
///   - MSE:  the TCAE identity-mapping objective ||T - T'||^2 (Eq. 4).
///   - BCE-with-logits: the GAN generator/discriminator objective,
///     computed in a numerically stable form.
///   - Gaussian KL: the VAE regularizer KL(N(mu, sigma^2) || N(0, 1)).

#include "tensor/tensor.hpp"

namespace dp::nn {

/// Mean squared error over all elements. Gradient: 2*(pred-target)/numel.
[[nodiscard]] double mseLoss(const Tensor& pred, const Tensor& target,
                             Tensor& gradOut);

/// Binary cross entropy on logits z against targets y in {0,1} (soft
/// targets allowed). loss = mean(max(z,0) - z*y + log(1+exp(-|z|))),
/// gradient (sigmoid(z) - y)/numel.
[[nodiscard]] double bceWithLogitsLoss(const Tensor& logits,
                                       const Tensor& targets,
                                       Tensor& gradOut);

/// KL(N(mu, exp(logVar)) || N(0,1)) summed over features, averaged over
/// the batch: -0.5 * mean_n sum_d (1 + logVar - mu^2 - exp(logVar)).
/// Gradients w.r.t. mu and logVar are written to the two out tensors.
[[nodiscard]] double gaussianKlLoss(const Tensor& mu, const Tensor& logVar,
                                    Tensor& gradMu, Tensor& gradLogVar);

}  // namespace dp::nn
