#pragma once

/// \file optimizer.hpp
/// First-order optimizers over Param sets. L2 regularization is applied
/// per parameter via Param::weightDecay (the paper uses 0.001 for conv
/// and 0.01 for dense layers, §IV-A). The learning rate is a mutable
/// field so schedules (schedule.hpp) can drive it from the outside.

#include <vector>

#include "nn/layer.hpp"

namespace dp::nn {

/// Base optimizer: owns nothing, references a fixed parameter list.
class Optimizer {
 public:
  Optimizer(std::vector<Param*> params, double lr);
  virtual ~Optimizer() = default;

  /// Applies one update from the accumulated gradients.
  virtual void step() = 0;

  /// Clears all gradient accumulators.
  void zeroGrad();

  [[nodiscard]] double learningRate() const { return lr_; }
  void setLearningRate(double lr) { lr_ = lr; }

 protected:
  /// Effective gradient of parameter scalar i including weight decay.
  [[nodiscard]] static double effectiveGrad(const Param& p, std::size_t i) {
    return p.grad[i] + p.weightDecay * p.value[i];
  }

  std::vector<Param*> params_;
  double lr_;
};

/// SGD with classical momentum.
class Sgd final : public Optimizer {
 public:
  Sgd(std::vector<Param*> params, double lr, double momentum = 0.0);
  void step() override;

 private:
  double momentum_;
  std::vector<Tensor> velocity_;
};

/// Adam (Kingma & Ba). Default betas as in the reference implementation.
class Adam final : public Optimizer {
 public:
  Adam(std::vector<Param*> params, double lr, double beta1 = 0.9,
       double beta2 = 0.999, double eps = 1e-8);
  void step() override;

 private:
  double beta1_, beta2_, eps_;
  long t_ = 0;
  std::vector<Tensor> m_, v_;
};

}  // namespace dp::nn
