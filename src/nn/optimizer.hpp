#pragma once

/// \file optimizer.hpp
/// First-order optimizers over Param sets. L2 regularization is applied
/// per parameter via Param::weightDecay (the paper uses 0.001 for conv
/// and 0.01 for dense layers, §IV-A). The learning rate is a mutable
/// field so schedules (schedule.hpp) can drive it from the outside.

#include <vector>

#include "nn/layer.hpp"

namespace dp::nn {

/// Base optimizer: owns nothing, references a fixed parameter list.
class Optimizer {
 public:
  Optimizer(std::vector<Param*> params, double lr);
  virtual ~Optimizer() = default;

  /// Applies one update from the accumulated gradients.
  virtual void step() = 0;

  /// Clears all gradient accumulators.
  void zeroGrad();

  [[nodiscard]] double learningRate() const { return lr_; }
  void setLearningRate(double lr) { lr_ = lr; }

  /// The parameter list this optimizer updates (read-only view; used
  /// by the training harness for gradient sentinels and clipping).
  [[nodiscard]] const std::vector<Param*>& params() const {
    return params_;
  }

  /// Persistent optimizer state in a stable order — the Layer::state()
  /// tensor-list contract extended to optimizers, so a training
  /// checkpoint can capture and restore the update rule mid-run
  /// (momentum velocities, Adam moments, and scalar counters encoded
  /// as tensors). Stateless optimizers return an empty list.
  [[nodiscard]] virtual std::vector<Tensor*> state() { return {}; }

  /// Re-derives scalar state from the state() tensors after they have
  /// been overwritten by a checkpoint load (e.g. Adam's step count,
  /// which drives bias correction). No-op for optimizers whose state
  /// is tensors only.
  virtual void loadState() {}

 protected:
  /// Effective gradient of parameter scalar i including weight decay.
  [[nodiscard]] static double effectiveGrad(const Param& p, std::size_t i) {
    return p.grad[i] + p.weightDecay * p.value[i];
  }

  std::vector<Param*> params_;
  double lr_;
};

/// SGD with classical momentum. state() exposes one velocity tensor
/// per parameter.
class Sgd final : public Optimizer {
 public:
  Sgd(std::vector<Param*> params, double lr, double momentum = 0.0);
  void step() override;
  [[nodiscard]] std::vector<Tensor*> state() override;

 private:
  double momentum_;
  std::vector<Tensor> velocity_;
};

/// Adam (Kingma & Ba). Default betas as in the reference
/// implementation. state() exposes the step counter (a 1-element
/// tensor, exact up to 2^24 steps — far beyond any training run here)
/// followed by the first- and second-moment tensors; loadState()
/// re-derives the integer step count that drives bias correction.
class Adam final : public Optimizer {
 public:
  Adam(std::vector<Param*> params, double lr, double beta1 = 0.9,
       double beta2 = 0.999, double eps = 1e-8);
  void step() override;
  [[nodiscard]] std::vector<Tensor*> state() override;
  void loadState() override;

  [[nodiscard]] long stepCount() const { return t_; }

 private:
  double beta1_, beta2_, eps_;
  long t_ = 0;
  Tensor stepState_;  ///< t_ mirrored as a tensor for the state() list
  std::vector<Tensor> m_, v_;
};

}  // namespace dp::nn
