#include "nn/optimizer.hpp"

#include <cmath>
#include <stdexcept>

namespace dp::nn {

Optimizer::Optimizer(std::vector<Param*> params, double lr)
    : params_(std::move(params)), lr_(lr) {
  for (Param* p : params_)
    if (!p) throw std::invalid_argument("Optimizer: null parameter");
}

void Optimizer::zeroGrad() {
  for (Param* p : params_) p->grad.zero();
}

Sgd::Sgd(std::vector<Param*> params, double lr, double momentum)
    : Optimizer(std::move(params), lr), momentum_(momentum) {
  velocity_.reserve(params_.size());
  for (Param* p : params_) velocity_.push_back(Tensor::zeros(p->value.shape()));
}

std::vector<Tensor*> Sgd::state() {
  std::vector<Tensor*> out;
  out.reserve(velocity_.size());
  for (Tensor& v : velocity_) out.push_back(&v);
  return out;
}

void Sgd::step() {
  for (std::size_t k = 0; k < params_.size(); ++k) {
    Param& p = *params_[k];
    Tensor& vel = velocity_[k];
    for (std::size_t i = 0; i < p.value.numel(); ++i) {
      const double g = effectiveGrad(p, i);
      const double v = momentum_ * vel[i] - lr_ * g;
      vel[i] = static_cast<float>(v);
      p.value[i] += static_cast<float>(v);
    }
  }
}

Adam::Adam(std::vector<Param*> params, double lr, double beta1,
           double beta2, double eps)
    : Optimizer(std::move(params), lr), beta1_(beta1), beta2_(beta2),
      eps_(eps), stepState_(Tensor::zeros({1})) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (Param* p : params_) {
    m_.push_back(Tensor::zeros(p->value.shape()));
    v_.push_back(Tensor::zeros(p->value.shape()));
  }
}

std::vector<Tensor*> Adam::state() {
  std::vector<Tensor*> out;
  out.reserve(1 + m_.size() + v_.size());
  out.push_back(&stepState_);
  for (Tensor& m : m_) out.push_back(&m);
  for (Tensor& v : v_) out.push_back(&v);
  return out;
}

void Adam::loadState() {
  t_ = std::lround(static_cast<double>(stepState_[0]));
  if (t_ < 0)
    throw std::runtime_error("Adam::loadState: negative step count");
}

void Adam::step() {
  ++t_;
  stepState_[0] = static_cast<float>(t_);
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (std::size_t k = 0; k < params_.size(); ++k) {
    Param& p = *params_[k];
    Tensor& m = m_[k];
    Tensor& v = v_[k];
    for (std::size_t i = 0; i < p.value.numel(); ++i) {
      const double g = effectiveGrad(p, i);
      const double mi = beta1_ * m[i] + (1.0 - beta1_) * g;
      const double vi = beta2_ * v[i] + (1.0 - beta2_) * g * g;
      m[i] = static_cast<float>(mi);
      v[i] = static_cast<float>(vi);
      const double mhat = mi / bc1;
      const double vhat = vi / bc2;
      p.value[i] -= static_cast<float>(lr_ * mhat /
                                       (std::sqrt(vhat) + eps_));
    }
  }
}

}  // namespace dp::nn
