#pragma once

/// \file sequential.hpp
/// Sequential container: a layer pipeline with chained forward/backward
/// and aggregated parameters. Both units of the TCAE and the GAN
/// generator/discriminator are Sequential stacks.

#include <memory>
#include <utility>
#include <vector>

#include "nn/layer.hpp"

namespace dp::nn {

class Sequential final : public Layer {
 public:
  Sequential() = default;

  /// Appends a layer (takes ownership). Returns *this for chaining.
  Sequential& add(LayerPtr layer);

  /// Constructs a layer in place.
  template <typename L, typename... Args>
  Sequential& emplace(Args&&... args) {
    return add(std::make_unique<L>(std::forward<Args>(args)...));
  }

  [[nodiscard]] std::size_t layerCount() const { return layers_.size(); }
  [[nodiscard]] Layer& layer(std::size_t i) { return *layers_[i]; }
  [[nodiscard]] const Layer& layer(std::size_t i) const { return *layers_[i]; }

  Tensor forward(const Tensor& x, bool training) override;
  Tensor infer(const Tensor& x) const override;
  Tensor backward(const Tensor& gradOut) override;
  std::vector<Param*> params() override;
  std::vector<Tensor*> state() override;
  [[nodiscard]] std::string name() const override { return "sequential"; }

  /// Total number of trainable scalars.
  [[nodiscard]] std::size_t parameterCount();

 private:
  std::vector<LayerPtr> layers_;
};

}  // namespace dp::nn
