#include "nn/serialize.hpp"

#include <cstdint>
#include <fstream>
#include <stdexcept>

#include "common/atomic_file.hpp"
#include "common/fault.hpp"

namespace dp::nn {

namespace {

constexpr std::uint32_t kMagic = 0x44505031;       // "DPP1"
constexpr std::uint32_t kTensorMagic = 0x44505431;  // "DPT1"
constexpr std::uint32_t kMaxDims = 4;

[[noreturn]] void fail(const std::string& what, const std::string& path) {
  throw std::runtime_error("nn::load: " + what + ": " + path);
}

std::string shapeString(const std::vector<int>& shape) {
  std::string s = "(";
  for (std::size_t i = 0; i < shape.size(); ++i) {
    if (i > 0) s += ",";
    s += std::to_string(shape[i]);
  }
  return s + ")";
}

/// Reads one tensor header (rank + dims) and validates it against the
/// expected shape; `label` names the parameter in error messages.
std::vector<int> readShape(std::ifstream& in, const std::string& label,
                           const std::string& path) {
  std::uint32_t dims = 0;
  in.read(reinterpret_cast<char*>(&dims), sizeof dims);
  if (!in) fail(label + ": truncated before shape", path);
  if (dims == 0 || dims > kMaxDims)
    fail(label + ": invalid rank " + std::to_string(dims), path);
  std::vector<int> shape(dims);
  for (std::uint32_t d = 0; d < dims; ++d) {
    std::int32_t s = 0;
    in.read(reinterpret_cast<char*>(&s), sizeof s);
    if (!in) fail(label + ": truncated inside shape", path);
    if (s <= 0)
      fail(label + ": invalid dimension " + std::to_string(s), path);
    shape[d] = s;
  }
  return shape;
}

void readData(std::ifstream& in, float* dst, std::size_t numel,
              const std::string& label, const std::string& path) {
  const auto bytes = static_cast<std::streamsize>(numel * sizeof(float));
  in.read(reinterpret_cast<char*>(dst), bytes);
  if (!in || in.gcount() != bytes)
    fail(label + ": truncated (expected " + std::to_string(numel) +
             " floats, file ended after " +
             std::to_string(in.gcount() / sizeof(float)) + ")",
         path);
}

void requireEof(std::ifstream& in, const std::string& path) {
  in.peek();
  if (!in.eof())
    fail("file larger than expected (trailing bytes after last tensor)",
         path);
}

/// Appends `value` to the staged checkpoint payload byte-for-byte.
template <typename T>
void appendPod(AtomicFileWriter& out, const T& value) {
  out.append(&value, sizeof value);
}

}  // namespace

void saveTensors(const std::vector<const Tensor*>& tensors,
                 const std::string& path) {
  // Staged through the atomic writer: a crash mid-save leaves the
  // previous checkpoint intact (DESIGN.md §11).
  AtomicFileWriter out(path);
  appendPod(out, kMagic);
  appendPod(out, static_cast<std::uint32_t>(tensors.size()));
  for (const Tensor* t : tensors) {
    appendPod(out, static_cast<std::uint32_t>(t->dim()));
    for (int d = 0; d < t->dim(); ++d)
      appendPod(out, static_cast<std::int32_t>(t->size(d)));
    out.append(t->data(), t->numel() * sizeof(float));
  }
  (void)out.commit();
}

void loadTensors(const std::vector<Tensor*>& tensors,
                 const std::string& path) {
  static FaultSite openFault("nn.load.open");
  if (openFault.shouldFail()) fail("injected open fault", path);
  std::ifstream in(path, std::ios::binary);
  if (!in) fail("cannot open", path);
  std::uint32_t magic = 0, count = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof magic);
  in.read(reinterpret_cast<char*>(&count), sizeof count);
  if (!in || magic != kMagic) fail("bad file header", path);
  if (count != tensors.size())
    fail("tensor count mismatch (file has " + std::to_string(count) +
             ", model has " + std::to_string(tensors.size()) + ")",
         path);

  // Every tensor is loaded into a staging buffer and validated
  // element-for-element against the model's shape before anything is
  // committed, so a mismatch mid-file never leaves the model half
  // loaded with earlier tensors overwritten.
  std::vector<Tensor> staged;
  staged.reserve(tensors.size());
  for (std::size_t i = 0; i < tensors.size(); ++i) {
    const Tensor* dst = tensors[i];
    const std::string label =
        "parameter " + std::to_string(i) + "/" + std::to_string(count);
    const std::vector<int> shape = readShape(in, label, path);
    if (shape != dst->shape())
      fail(label + ": shape mismatch (file has " + shapeString(shape) +
               ", model expects " + shapeString(dst->shape()) + ")",
           path);
    std::size_t numel = 1;
    for (const int s : shape) numel *= static_cast<std::size_t>(s);
    if (numel != dst->numel())
      fail(label + ": element count mismatch (file has " +
               std::to_string(numel) + ", model expects " +
               std::to_string(dst->numel()) + ")",
           path);
    Tensor t(shape);
    readData(in, t.data(), numel, label, path);
    staged.push_back(std::move(t));
  }
  requireEof(in, path);
  for (std::size_t i = 0; i < tensors.size(); ++i)
    *tensors[i] = std::move(staged[i]);
}

void saveParams(const std::vector<Param*>& params,
                const std::string& path) {
  std::vector<const Tensor*> tensors;
  tensors.reserve(params.size());
  for (const Param* p : params) tensors.push_back(&p->value);
  saveTensors(tensors, path);
}

void loadParams(const std::vector<Param*>& params,
                const std::string& path) {
  std::vector<Tensor*> tensors;
  tensors.reserve(params.size());
  for (Param* p : params) tensors.push_back(&p->value);
  loadTensors(tensors, path);
}

void saveTensor(const Tensor& t, const std::string& path) {
  AtomicFileWriter out(path);
  appendPod(out, kTensorMagic);
  appendPod(out, static_cast<std::uint32_t>(t.dim()));
  for (int d = 0; d < t.dim(); ++d)
    appendPod(out, static_cast<std::int32_t>(t.size(d)));
  out.append(t.data(), t.numel() * sizeof(float));
  (void)out.commit();
}

Tensor loadTensor(const std::string& path) {
  static FaultSite openFault("nn.load.open");
  if (openFault.shouldFail()) fail("injected open fault", path);
  std::ifstream in(path, std::ios::binary);
  if (!in) fail("cannot open", path);
  std::uint32_t magic = 0, dims = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof magic);
  if (!in || magic != kTensorMagic) fail("bad tensor header", path);
  in.read(reinterpret_cast<char*>(&dims), sizeof dims);
  if (!in || dims == 0 || dims > kMaxDims)
    fail("tensor: invalid rank " + std::to_string(dims), path);
  std::vector<int> shape(dims);
  std::size_t numel = 1;
  for (std::uint32_t d = 0; d < dims; ++d) {
    std::int32_t s = 0;
    in.read(reinterpret_cast<char*>(&s), sizeof s);
    if (!in) fail("tensor: truncated inside shape", path);
    if (s <= 0) fail("tensor: invalid dimension " + std::to_string(s), path);
    shape[d] = s;
    numel *= static_cast<std::size_t>(s);
  }
  Tensor t(shape);
  readData(in, t.data(), numel, "tensor", path);
  requireEof(in, path);
  return t;
}

}  // namespace dp::nn
