#include "nn/serialize.hpp"

#include <cstdint>
#include <fstream>
#include <stdexcept>

namespace dp::nn {

namespace {
constexpr std::uint32_t kMagic = 0x44505031;  // "DPP1"
}

void saveParams(const std::vector<Param*>& params,
                const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("saveParams: cannot open " + path);
  const std::uint32_t magic = kMagic;
  const std::uint32_t count = static_cast<std::uint32_t>(params.size());
  out.write(reinterpret_cast<const char*>(&magic), sizeof magic);
  out.write(reinterpret_cast<const char*>(&count), sizeof count);
  for (const Param* p : params) {
    const std::uint32_t dims = static_cast<std::uint32_t>(p->value.dim());
    out.write(reinterpret_cast<const char*>(&dims), sizeof dims);
    for (int d = 0; d < p->value.dim(); ++d) {
      const std::int32_t s = p->value.size(d);
      out.write(reinterpret_cast<const char*>(&s), sizeof s);
    }
    out.write(reinterpret_cast<const char*>(p->value.data()),
              static_cast<std::streamsize>(p->value.numel() * sizeof(float)));
  }
  if (!out) throw std::runtime_error("saveParams: write failed: " + path);
}

void loadParams(const std::vector<Param*>& params,
                const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("loadParams: cannot open " + path);
  std::uint32_t magic = 0, count = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof magic);
  in.read(reinterpret_cast<char*>(&count), sizeof count);
  if (!in || magic != kMagic)
    throw std::runtime_error("loadParams: bad file header: " + path);
  if (count != params.size())
    throw std::runtime_error("loadParams: parameter count mismatch");
  for (Param* p : params) {
    std::uint32_t dims = 0;
    in.read(reinterpret_cast<char*>(&dims), sizeof dims);
    if (!in || dims != static_cast<std::uint32_t>(p->value.dim()))
      throw std::runtime_error("loadParams: rank mismatch");
    for (int d = 0; d < p->value.dim(); ++d) {
      std::int32_t s = 0;
      in.read(reinterpret_cast<char*>(&s), sizeof s);
      if (!in || s != p->value.size(d))
        throw std::runtime_error("loadParams: shape mismatch");
    }
    in.read(reinterpret_cast<char*>(p->value.data()),
            static_cast<std::streamsize>(p->value.numel() * sizeof(float)));
    if (!in) throw std::runtime_error("loadParams: truncated file");
  }
}

}  // namespace dp::nn
