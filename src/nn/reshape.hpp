#pragma once

/// \file reshape.hpp
/// Shape-adapter layers: Flatten (N,C,H,W) -> (N, C*H*W) and Reshape
/// (N, D) -> (N, c, h, w). Pure data movement; gradients pass through.

#include <stdexcept>

#include "nn/layer.hpp"

namespace dp::nn {

class Flatten final : public Layer {
 public:
  Tensor forward(const Tensor& x, bool training) override {
    (void)training;
    if (x.dim() < 2) throw std::invalid_argument("Flatten: need >= 2-D");
    inShape_ = x.shape();
    int features = 1;
    for (int d = 1; d < x.dim(); ++d) features *= x.size(d);
    return x.reshaped({x.size(0), features});
  }
  Tensor infer(const Tensor& x) const override {
    if (x.dim() < 2) throw std::invalid_argument("Flatten: need >= 2-D");
    int features = 1;
    for (int d = 1; d < x.dim(); ++d) features *= x.size(d);
    return x.reshaped({x.size(0), features});
  }
  Tensor backward(const Tensor& gradOut) override {
    return gradOut.reshaped(inShape_);
  }
  [[nodiscard]] std::string name() const override { return "flatten"; }

 private:
  std::vector<int> inShape_;
};

/// Reshapes (N, c*h*w) feature batches into (N, c, h, w) images.
class Reshape final : public Layer {
 public:
  Reshape(int c, int h, int w) : c_(c), h_(h), w_(w) {}
  Tensor forward(const Tensor& x, bool training) override {
    (void)training;
    inShape_ = x.shape();
    return x.reshaped({x.size(0), c_, h_, w_});
  }
  Tensor infer(const Tensor& x) const override {
    return x.reshaped({x.size(0), c_, h_, w_});
  }
  Tensor backward(const Tensor& gradOut) override {
    return gradOut.reshaped(inShape_);
  }
  [[nodiscard]] std::string name() const override { return "reshape"; }

 private:
  int c_, h_, w_;
  std::vector<int> inShape_;
};

}  // namespace dp::nn
