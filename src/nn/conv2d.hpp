#pragma once

/// \file conv2d.hpp
/// 2-D convolution layer over (N,C,H,W) batches, implemented as
/// im2col + GEMM. Square kernels; configurable stride and zero padding.
/// Forward/backward parallelize over the batch dimension; the gradient
/// reduction runs in ascending sample order, so training results are
/// bit-identical at every DP_THREADS setting.

#include "common/rng.hpp"
#include "nn/layer.hpp"
#include "tensor/im2col.hpp"

namespace dp::nn {

class Conv2d final : public Layer {
 public:
  Conv2d(int inChannels, int outChannels, int kernel, int stride, int pad,
         Rng& rng, double weightDecay = 0.0);

  Tensor forward(const Tensor& x, bool training) override;
  Tensor infer(const Tensor& x) const override;
  Tensor backward(const Tensor& gradOut) override;
  std::vector<Param*> params() override { return {&weight_, &bias_}; }
  [[nodiscard]] std::string name() const override { return "conv2d"; }

  [[nodiscard]] int inChannels() const { return inC_; }
  [[nodiscard]] int outChannels() const { return outC_; }
  [[nodiscard]] int kernel() const { return kernel_; }
  [[nodiscard]] int stride() const { return stride_; }
  [[nodiscard]] int pad() const { return pad_; }

  /// Output spatial size for a given input spatial size.
  [[nodiscard]] int outSize(int inSize) const {
    return (inSize + 2 * pad_ - kernel_) / stride_ + 1;
  }

 private:
  int inC_, outC_, kernel_, stride_, pad_;
  Param weight_;  // (outC, inC*K*K)
  Param bias_;    // (outC)
  Tensor input_;  // cached (N,C,H,W)
  Tensor cols_;   // cached im2col buffers (N, colRows*colCols)
  ConvGeom geom_;
};

}  // namespace dp::nn
