#pragma once

/// \file csv.hpp
/// Tiny CSV writer for exporting experiment series (diversity sweeps,
/// loss curves) for external plotting.

#include <string>
#include <vector>

namespace dp::io {

class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> header);

  void addRow(std::vector<std::string> row);

  /// Serializes header + rows; fields containing commas/quotes are
  /// quoted per RFC 4180.
  [[nodiscard]] std::string toString() const;

  /// Writes to a file; throws std::runtime_error on failure.
  void writeFile(const std::string& path) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace dp::io
