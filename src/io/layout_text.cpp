#include "io/layout_text.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/atomic_file.hpp"

namespace dp::io {

void writeClips(std::ostream& out, const std::vector<dp::Clip>& clips) {
  out << "# deepattern layout text format v1\n";
  for (const dp::Clip& c : clips) {
    const dp::Rect& w = c.window();
    out << "clip " << w.x0 << " " << w.y0 << " " << w.x1 << " " << w.y1
        << "\n";
    for (const dp::Rect& r : c.shapes())
      out << "rect " << r.x0 << " " << r.y0 << " " << r.x1 << " " << r.y1
          << "\n";
  }
}

void writeClipsFile(const std::string& path,
                    const std::vector<dp::Clip>& clips) {
  // Stage in memory, publish atomically (DESIGN.md §11): artifact
  // writes must never leave a torn file on crash.
  std::ostringstream staged;
  writeClips(staged, clips);
  if (!staged) throw std::runtime_error("writeClipsFile: write failed");
  AtomicFileWriter out(path);
  out.append(staged.str());
  (void)out.commit();
}

std::vector<dp::Clip> readClips(std::istream& in) {
  std::vector<dp::Clip> clips;
  std::string line;
  int lineNo = 0;
  while (std::getline(in, line)) {
    ++lineNo;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string kind;
    double x0, y0, x1, y1;
    if (!(ls >> kind >> x0 >> y0 >> x1 >> y1))
      throw std::runtime_error("readClips: malformed line " +
                               std::to_string(lineNo));
    if (kind == "clip") {
      clips.emplace_back(dp::Rect{x0, y0, x1, y1});
    } else if (kind == "rect") {
      if (clips.empty())
        throw std::runtime_error("readClips: rect before clip at line " +
                                 std::to_string(lineNo));
      clips.back().addShape(dp::Rect{x0, y0, x1, y1});
    } else {
      throw std::runtime_error("readClips: unknown record '" + kind +
                               "' at line " + std::to_string(lineNo));
    }
  }
  return clips;
}

std::vector<dp::Clip> readClipsFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("readClipsFile: cannot open " + path);
  return readClips(in);
}

}  // namespace dp::io
