#include "io/gdsii.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <stdexcept>

#include "common/atomic_file.hpp"

namespace dp::io {

namespace {

// GDSII record types (subset).
enum : std::uint8_t {
  kHeader = 0x00,
  kBgnLib = 0x01,
  kLibName = 0x02,
  kUnits = 0x03,
  kEndLib = 0x04,
  kBgnStr = 0x05,
  kStrName = 0x06,
  kEndStr = 0x07,
  kBoundary = 0x08,
  kLayer = 0x0D,
  kDataType = 0x0E,
  kXy = 0x10,
  kEndEl = 0x11,
};

// GDSII data types.
enum : std::uint8_t {
  kNoData = 0x00,
  kInt16 = 0x02,
  kInt32 = 0x03,
  kReal8 = 0x05,
  kAscii = 0x06,
};

void putU16(std::string& buf, std::uint16_t v) {
  buf.push_back(static_cast<char>(v >> 8));
  buf.push_back(static_cast<char>(v & 0xFF));
}

void putI32(std::string& buf, std::int32_t v) {
  const auto u = static_cast<std::uint32_t>(v);
  buf.push_back(static_cast<char>(u >> 24));
  buf.push_back(static_cast<char>((u >> 16) & 0xFF));
  buf.push_back(static_cast<char>((u >> 8) & 0xFF));
  buf.push_back(static_cast<char>(u & 0xFF));
}

/// GDSII 8-byte excess-64 real.
void putReal8(std::string& buf, double v) {
  std::uint64_t bits = 0;
  if (v != 0.0) {
    const bool neg = v < 0.0;
    double mag = std::abs(v);
    int exp = 0;  // base-16 exponent
    while (mag >= 1.0) {
      mag /= 16.0;
      ++exp;
    }
    while (mag < 1.0 / 16.0) {
      mag *= 16.0;
      --exp;
    }
    const auto mant =
        static_cast<std::uint64_t>(std::llround(mag * 72057594037927936.0));
    bits = (static_cast<std::uint64_t>(neg ? 1 : 0) << 63) |
           (static_cast<std::uint64_t>(exp + 64) << 56) | mant;
  }
  for (int i = 7; i >= 0; --i)
    buf.push_back(static_cast<char>((bits >> (8 * i)) & 0xFF));
}

void record(std::ostream& out, std::uint8_t type, std::uint8_t dataType,
            const std::string& payload) {
  std::string buf;
  putU16(buf, static_cast<std::uint16_t>(4 + payload.size()));
  buf.push_back(static_cast<char>(type));
  buf.push_back(static_cast<char>(dataType));
  buf += payload;
  out.write(buf.data(), static_cast<std::streamsize>(buf.size()));
}

void recordI16(std::ostream& out, std::uint8_t type,
               std::initializer_list<std::int16_t> values) {
  std::string p;
  for (std::int16_t v : values) putU16(p, static_cast<std::uint16_t>(v));
  record(out, type, kInt16, p);
}

void recordAscii(std::ostream& out, std::uint8_t type, std::string s) {
  if (s.size() % 2) s.push_back('\0');  // records are word-aligned
  record(out, type, kAscii, s);
}

void writeBoundary(std::ostream& out, const dp::Rect& r,
                   std::int16_t layer, std::int16_t dataType,
                   double dbuPerNm) {
  record(out, kBoundary, kNoData, "");
  recordI16(out, kLayer, {layer});
  recordI16(out, kDataType, {dataType});
  std::string xy;
  auto dbu = [&](double nm) {
    return static_cast<std::int32_t>(std::llround(nm * dbuPerNm));
  };
  // Closed rectangle: 5 points, first repeated last.
  const std::int32_t x0 = dbu(r.x0), y0 = dbu(r.y0);
  const std::int32_t x1 = dbu(r.x1), y1 = dbu(r.y1);
  for (auto [x, y] : {std::pair{x0, y0}, {x1, y0}, {x1, y1}, {x0, y1},
                      {x0, y0}}) {
    putI32(xy, x);
    putI32(xy, y);
  }
  record(out, kXy, kInt32, xy);
  record(out, kEndEl, kNoData, "");
}

/// Raw record as read from the stream.
struct RawRecord {
  std::uint8_t type = 0;
  std::uint8_t dataType = 0;
  std::string payload;
};

bool readRecord(std::istream& in, RawRecord& rec) {
  unsigned char head[4];
  if (!in.read(reinterpret_cast<char*>(head), 4)) return false;
  const std::size_t len = (static_cast<std::size_t>(head[0]) << 8) | head[1];
  if (len < 4) throw std::runtime_error("gdsii: record length < 4");
  rec.type = head[2];
  rec.dataType = head[3];
  rec.payload.resize(len - 4);
  if (len > 4 &&
      !in.read(rec.payload.data(), static_cast<std::streamsize>(len - 4)))
    throw std::runtime_error("gdsii: truncated record");
  return true;
}

std::int16_t payloadI16(const RawRecord& r) {
  if (r.payload.size() < 2) throw std::runtime_error("gdsii: short INT16");
  return static_cast<std::int16_t>(
      (static_cast<std::uint8_t>(r.payload[0]) << 8) |
      static_cast<std::uint8_t>(r.payload[1]));
}

std::int32_t payloadI32At(const RawRecord& r, std::size_t idx) {
  const std::size_t o = idx * 4;
  if (r.payload.size() < o + 4) throw std::runtime_error("gdsii: short XY");
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v = (v << 8) | static_cast<std::uint8_t>(r.payload[o + i]);
  return static_cast<std::int32_t>(v);
}

}  // namespace

void writeGdsii(std::ostream& out, const std::vector<dp::Clip>& clips,
                const GdsiiOptions& options) {
  recordI16(out, kHeader, {600});  // stream version 6
  // BGNLIB: creation + modification timestamps (12 int16) — zeroed for
  // reproducible output.
  recordI16(out, kBgnLib, {0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0});
  recordAscii(out, kLibName, options.libName);
  {
    std::string units;
    // user units per dbu, metres per dbu (1 nm dbu).
    putReal8(units, 1.0 / options.dbuPerNm * 1e-3);  // um per dbu
    putReal8(units, 1.0 / options.dbuPerNm * 1e-9);  // m per dbu
    record(out, kUnits, kReal8, units);
  }
  for (std::size_t i = 0; i < clips.size(); ++i) {
    recordI16(out, kBgnStr, {0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0});
    recordAscii(out, kStrName, "CLIP_" + std::to_string(i));
    writeBoundary(out, clips[i].window(), options.windowLayer,
                  options.dataType, options.dbuPerNm);
    for (const dp::Rect& r : clips[i].shapes())
      writeBoundary(out, r, options.layer, options.dataType,
                    options.dbuPerNm);
    record(out, kEndStr, kNoData, "");
  }
  record(out, kEndLib, kNoData, "");
}

void writeGdsiiFile(const std::string& path,
                    const std::vector<dp::Clip>& clips,
                    const GdsiiOptions& options) {
  // Stage in memory, publish atomically: a crash mid-write must not
  // leave a torn GDSII file where a library used to be.
  std::ostringstream staged;
  writeGdsii(staged, clips, options);
  if (!staged) throw std::runtime_error("writeGdsiiFile: write failed");
  AtomicFileWriter out(path);
  out.append(staged.str());
  (void)out.commit();
}

std::vector<dp::Clip> readGdsii(std::istream& in,
                                const GdsiiOptions& options) {
  std::vector<dp::Clip> clips;
  // A plain flag + value instead of std::optional<Rect>: gcc's
  // -Wmaybe-uninitialized cannot prove the optional payload initialized
  // across the has-value throw above the dereference and fails -Werror.
  bool haveWindow = false;
  dp::Rect window{};
  std::vector<dp::Rect> shapes;
  bool inStruct = false, inBoundary = false;
  std::int16_t layer = -1;
  std::optional<dp::Rect> box;

  RawRecord rec;
  while (readRecord(in, rec)) {
    switch (rec.type) {
      case kBgnStr:
        inStruct = true;
        haveWindow = false;
        shapes.clear();
        break;
      case kEndStr: {
        if (!haveWindow)
          throw std::runtime_error("gdsii: structure without window layer");
        dp::Clip clip(window);
        for (const dp::Rect& r : shapes) clip.addShape(r);
        clips.push_back(std::move(clip));
        inStruct = false;
        break;
      }
      case kBoundary:
        inBoundary = true;
        layer = -1;
        box.reset();
        break;
      case kLayer:
        if (inBoundary) layer = payloadI16(rec);
        break;
      case kXy: {
        if (!inBoundary) break;
        const std::size_t points = rec.payload.size() / 8;
        if (points == 0) break;
        double minX = 0, minY = 0, maxX = 0, maxY = 0;
        for (std::size_t p = 0; p < points; ++p) {
          const double x = payloadI32At(rec, 2 * p) / options.dbuPerNm;
          const double y = payloadI32At(rec, 2 * p + 1) / options.dbuPerNm;
          if (p == 0) {
            minX = maxX = x;
            minY = maxY = y;
          } else {
            minX = std::min(minX, x);
            maxX = std::max(maxX, x);
            minY = std::min(minY, y);
            maxY = std::max(maxY, y);
          }
        }
        box = dp::Rect{minX, minY, maxX, maxY};
        break;
      }
      case kEndEl:
        if (inBoundary && box && inStruct) {
          if (layer == options.windowLayer) {
            window = *box;
            haveWindow = true;
          } else if (layer == options.layer) {
            shapes.push_back(*box);
          }
          // other layers: ignored
        }
        inBoundary = false;
        break;
      case kEndLib:
        return clips;
      default:
        break;  // HEADER/BGNLIB/LIBNAME/UNITS/STRNAME/DATATYPE: skipped
    }
  }
  throw std::runtime_error("gdsii: missing ENDLIB");
}

std::vector<dp::Clip> readGdsiiFile(const std::string& path,
                                    const GdsiiOptions& options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("readGdsiiFile: cannot open " + path);
  return readGdsii(in, options);
}

}  // namespace dp::io
