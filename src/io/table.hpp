#pragma once

/// \file table.hpp
/// Fixed-width console table formatter used by the benchmark harnesses
/// to print paper-style result tables.

#include <string>
#include <vector>

namespace dp::io {

/// Builds a text table with a header row, column separators and an
/// underline, column widths auto-fitted to content.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends one row; must match the header's column count.
  void addRow(std::vector<std::string> row);

  /// Convenience: formats a double with the given precision.
  [[nodiscard]] static std::string num(double v, int precision = 3);

  [[nodiscard]] std::string toString() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace dp::io
