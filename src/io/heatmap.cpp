#include "io/heatmap.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace dp::io {

std::string renderHeatmap(const std::vector<std::vector<double>>& counts,
                          const std::string& xLabel,
                          const std::string& yLabel) {
  static const std::string ramp = " 123456789#";
  double maxLog = 0.0;
  std::size_t cols = 0;
  for (const auto& row : counts) {
    cols = std::max(cols, row.size());
    for (double v : row)
      if (v > 0.0) maxLog = std::max(maxLog, std::log10(1.0 + v));
  }
  std::ostringstream os;
  os << yLabel << " ^\n";
  for (std::size_t y = counts.size(); y-- > 0;) {
    os << (y < 10 ? " " : "") << y << " |";
    for (std::size_t x = 0; x < cols; ++x) {
      const double v = x < counts[y].size() ? counts[y][x] : 0.0;
      if (v <= 0.0) {
        os << " .";
      } else {
        const double l = std::log10(1.0 + v);
        const int idx = maxLog > 0.0
                            ? 1 + static_cast<int>(std::round(
                                      (ramp.size() - 2) * l / maxLog))
                            : 1;
        os << " "
           << ramp[static_cast<std::size_t>(
                  std::clamp<int>(idx, 1, static_cast<int>(ramp.size()) - 1))];
      }
    }
    os << "\n";
  }
  os << "    +";
  for (std::size_t x = 0; x < cols; ++x) os << "--";
  os << "> " << xLabel << "\n    ";
  for (std::size_t x = 0; x < cols; ++x)
    os << " " << (x % 10);
  os << "\n";
  return os.str();
}

}  // namespace dp::io
