#include "io/ascii_art.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace dp::io {

std::string renderTopology(const dp::squish::Topology& t) {
  return t.toString();
}

std::string renderTopologyRow(
    const std::vector<dp::squish::Topology>& topos, int gap) {
  if (topos.empty()) return "";
  int maxRows = 0;
  for (const auto& t : topos) maxRows = std::max(maxRows, t.rows());
  std::ostringstream os;
  const std::string spacer(static_cast<std::size_t>(gap), ' ');
  for (int r = maxRows - 1; r >= 0; --r) {
    for (std::size_t k = 0; k < topos.size(); ++k) {
      const auto& t = topos[k];
      if (k) os << spacer;
      for (int c = 0; c < t.cols(); ++c)
        os << (r < t.rows() ? (t.at(r, c) ? '#' : '.') : ' ');
    }
    os << '\n';
  }
  return os.str();
}

std::string renderClip(const dp::Clip& clip, double nmPerChar) {
  const dp::Rect& w = clip.window();
  const int cols = std::max(
      1, static_cast<int>(std::round(w.width() / nmPerChar)));
  const int rows = std::max(
      1, static_cast<int>(std::round(w.height() / nmPerChar)));
  std::vector<std::string> grid(static_cast<std::size_t>(rows),
                                std::string(static_cast<std::size_t>(cols), '.'));
  for (const dp::Rect& s : clip.shapes()) {
    const int c0 = std::clamp(
        static_cast<int>(std::floor((s.x0 - w.x0) / nmPerChar)), 0, cols);
    const int c1 = std::clamp(
        static_cast<int>(std::ceil((s.x1 - w.x0) / nmPerChar)), 0, cols);
    const int r0 = std::clamp(
        static_cast<int>(std::floor((s.y0 - w.y0) / nmPerChar)), 0, rows);
    const int r1 = std::clamp(
        static_cast<int>(std::ceil((s.y1 - w.y0) / nmPerChar)), 0, rows);
    for (int r = r0; r < r1; ++r)
      for (int c = c0; c < c1; ++c)
        grid[static_cast<std::size_t>(r)][static_cast<std::size_t>(c)] = '#';
  }
  std::ostringstream os;
  for (int r = rows - 1; r >= 0; --r) os << grid[static_cast<std::size_t>(r)] << '\n';
  return os.str();
}

}  // namespace dp::io
