#pragma once

/// \file heatmap.hpp
/// Console heatmap for the complexity-distribution figures (paper
/// Fig. 10): cells are log-scaled pattern counts over (cx, cy).

#include <string>
#include <vector>

namespace dp::io {

/// Renders `counts[y][x]` as a character heatmap. Rows print top-down
/// from the largest y index; zero cells print '.', non-zero cells print
/// a density ramp character by log-scale magnitude.
/// `xLabel`/`yLabel` annotate the axes.
[[nodiscard]] std::string renderHeatmap(
    const std::vector<std::vector<double>>& counts,
    const std::string& xLabel = "cx", const std::string& yLabel = "cy");

}  // namespace dp::io
