#pragma once

/// \file layout_text.hpp
/// A minimal line-oriented text format for layout clips — the project's
/// interchange format (GDSII/OASIS writers are out of scope; the paper
/// itself notes those formats are not what the ML flow consumes).
///
/// Format:
///   clip <x0> <y0> <x1> <y1>
///   rect <x0> <y0> <x1> <y1>     (zero or more, belonging to the
///                                 preceding clip)
/// Blank lines and lines starting with '#' are ignored.

#include <iosfwd>
#include <string>
#include <vector>

#include "geometry/clip.hpp"

namespace dp::io {

/// Writes clips in the text format.
void writeClips(std::ostream& out, const std::vector<dp::Clip>& clips);

/// Writes clips to a file. Throws std::runtime_error on I/O failure.
void writeClipsFile(const std::string& path,
                    const std::vector<dp::Clip>& clips);

/// Parses clips from the text format. Throws std::runtime_error on
/// malformed input.
[[nodiscard]] std::vector<dp::Clip> readClips(std::istream& in);

/// Reads clips from a file. Throws std::runtime_error on I/O failure.
[[nodiscard]] std::vector<dp::Clip> readClipsFile(const std::string& path);

}  // namespace dp::io
