#include "io/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace dp::io {

namespace {

[[noreturn]] void typeError(const char* want, Json::Type got) {
  const char* names[] = {"null", "bool", "number", "string", "array",
                         "object"};
  throw std::runtime_error(std::string("Json: expected ") + want +
                           ", value is " +
                           names[static_cast<int>(got)]);
}

const Json& nullJson() {
  static const Json j;
  return j;
}

/// Recursive-descent parser over a byte range.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Json parseDocument() {
    Json v = parseValue(0);
    skipWs();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;

  [[noreturn]] void fail(const std::string& msg) const {
    throw std::runtime_error("Json::parse: " + msg + " at byte " +
                             std::to_string(pos_));
  }

  void skipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consumeLiteral(const char* lit) {
    std::size_t n = 0;
    while (lit[n] != '\0') ++n;
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  Json parseValue(int depth) {
    if (depth > kMaxDepth) fail("nesting too deep");
    skipWs();
    const char c = peek();
    switch (c) {
      case '{':
        return parseObject(depth);
      case '[':
        return parseArray(depth);
      case '"':
        return Json(parseString());
      case 't':
        if (consumeLiteral("true")) return Json(true);
        fail("invalid literal");
      case 'f':
        if (consumeLiteral("false")) return Json(false);
        fail("invalid literal");
      case 'n':
        if (consumeLiteral("null")) return Json();
        fail("invalid literal");
      default:
        return parseNumber();
    }
  }

  Json parseObject(int depth) {
    expect('{');
    Json obj = Json::object();
    skipWs();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    for (;;) {
      skipWs();
      if (peek() != '"') fail("expected object key string");
      std::string key = parseString();
      skipWs();
      expect(':');
      obj.set(key, parseValue(depth + 1));
      skipWs();
      const char c = peek();
      ++pos_;
      if (c == '}') return obj;
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  Json parseArray(int depth) {
    expect('[');
    Json arr = Json::array();
    skipWs();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    for (;;) {
      arr.push(parseValue(depth + 1));
      skipWs();
      const char c = peek();
      ++pos_;
      if (c == ']') return arr;
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  std::string parseString() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20)
        fail("unescaped control character in string");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          appendCodepoint(out, parseHex4());
          break;
        }
        default:
          fail("invalid escape sequence");
      }
    }
  }

  unsigned parseHex4() {
    unsigned v = 0;
    for (int i = 0; i < 4; ++i) {
      if (pos_ >= text_.size()) fail("unterminated \\u escape");
      const char c = text_[pos_++];
      v <<= 4;
      if (c >= '0' && c <= '9') v |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') v |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') v |= static_cast<unsigned>(c - 'A' + 10);
      else fail("invalid hex digit in \\u escape");
    }
    return v;
  }

  static void appendCodepoint(std::string& out, unsigned cp) {
    // Basic-plane UTF-8 encoding; surrogate pairs are passed through
    // individually (the serving payloads are ASCII in practice).
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  Json parseNumber() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    if (pos_ == start || (pos_ == start + 1 && text_[start] == '-'))
      fail("invalid number");
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) fail("invalid number");
    return Json(v);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

void appendEscaped(std::string& out, const std::string& s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(c));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void appendNumber(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";  // JSON has no Inf/NaN
    return;
  }
  // Integers (the common case: counts, seeds, ports) print exactly.
  if (v == std::floor(v) && std::abs(v) < 9.007199254740992e15) {
    out += std::to_string(static_cast<long long>(v));
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

}  // namespace

Json Json::parse(const std::string& text) {
  return Parser(text).parseDocument();
}

bool Json::asBool() const {
  if (type_ != Type::kBool) typeError("bool", type_);
  return bool_;
}

double Json::asDouble() const {
  if (type_ != Type::kNumber) typeError("number", type_);
  return number_;
}

long Json::asLong() const {
  if (type_ != Type::kNumber) typeError("number", type_);
  return static_cast<long>(number_);
}

std::uint64_t Json::asUint64() const {
  if (type_ == Type::kString) {
    try {
      return std::stoull(string_);
    } catch (const std::exception&) {
      throw std::runtime_error("Json: string is not a valid uint64: " +
                               string_);
    }
  }
  if (type_ != Type::kNumber) typeError("number or numeric string", type_);
  if (number_ < 0)
    throw std::runtime_error("Json: negative value for uint64 field");
  return static_cast<std::uint64_t>(number_);
}

const std::string& Json::asString() const {
  if (type_ != Type::kString) typeError("string", type_);
  return string_;
}

std::size_t Json::size() const {
  if (type_ == Type::kArray) return array_.size();
  if (type_ == Type::kObject) return object_.size();
  typeError("array or object", type_);
}

const Json& Json::at(std::size_t i) const {
  if (type_ != Type::kArray) typeError("array", type_);
  if (i >= array_.size())
    throw std::runtime_error("Json: array index out of range");
  return array_[i];
}

Json& Json::push(Json v) {
  if (type_ != Type::kArray) typeError("array", type_);
  array_.push_back(std::move(v));
  return *this;
}

bool Json::has(const std::string& key) const {
  if (type_ != Type::kObject) return false;
  for (const auto& [k, v] : object_)
    if (k == key) return true;
  return false;
}

const Json& Json::at(const std::string& key) const {
  if (type_ != Type::kObject) typeError("object", type_);
  for (const auto& [k, v] : object_)
    if (k == key) return v;
  throw std::runtime_error("Json: missing required field \"" + key + "\"");
}

const Json& Json::get(const std::string& key) const {
  if (type_ != Type::kObject) return nullJson();
  for (const auto& [k, v] : object_)
    if (k == key) return v;
  return nullJson();
}

Json& Json::set(const std::string& key, Json v) {
  if (type_ != Type::kObject) typeError("object", type_);
  for (auto& [k, existing] : object_)
    if (k == key) {
      existing = std::move(v);
      return *this;
    }
  object_.emplace_back(key, std::move(v));
  return *this;
}

const std::vector<std::pair<std::string, Json>>& Json::members() const {
  if (type_ != Type::kObject) typeError("object", type_);
  return object_;
}

std::string Json::dump() const {
  std::string out;
  switch (type_) {
    case Type::kNull:
      out = "null";
      break;
    case Type::kBool:
      out = bool_ ? "true" : "false";
      break;
    case Type::kNumber:
      appendNumber(out, number_);
      break;
    case Type::kString:
      appendEscaped(out, string_);
      break;
    case Type::kArray: {
      out.push_back('[');
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) out.push_back(',');
        out += array_[i].dump();
      }
      out.push_back(']');
      break;
    }
    case Type::kObject: {
      out.push_back('{');
      bool first = true;
      for (const auto& [k, v] : object_) {
        if (!first) out.push_back(',');
        first = false;
        appendEscaped(out, k);
        out.push_back(':');
        out += v.dump();
      }
      out.push_back('}');
      break;
    }
  }
  return out;
}

}  // namespace dp::io
