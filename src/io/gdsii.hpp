#pragma once

/// \file gdsii.hpp
/// Minimal GDSII stream-format writer/reader for pattern libraries.
/// Generated clips become one structure each (CLIP_0, CLIP_1, ...) with
/// BOUNDARY elements on a configurable layer. This is the interchange
/// path to real EDA tooling; the text format (layout_text.hpp) remains
/// the human-readable option.
///
/// Supported records: HEADER, BGNLIB, LIBNAME, UNITS, BGNSTR, STRNAME,
/// ENDSTR, BOUNDARY, LAYER, DATATYPE, XY, ENDEL, ENDLIB — the subset
/// every GDSII consumer understands. Coordinates are written in
/// database units of 1 nm.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "geometry/clip.hpp"

namespace dp::io {

struct GdsiiOptions {
  std::string libName = "DEEPATTERN";
  std::int16_t layer = 2;        ///< metal layer of the wire shapes
  std::int16_t windowLayer = 0;  ///< boundary layer carrying the window
  std::int16_t dataType = 0;
  double dbuPerNm = 1.0;         ///< database units per nanometre
};

/// Writes one structure per clip (CLIP_<i>). The clip window is emitted
/// as a BOUNDARY on `windowLayer` (the usual pr-boundary convention);
/// wire shapes are BOUNDARY elements on `layer`.
void writeGdsii(std::ostream& out, const std::vector<dp::Clip>& clips,
                const GdsiiOptions& options = {});

/// Writes to a file. Throws std::runtime_error on I/O failure.
void writeGdsiiFile(const std::string& path,
                    const std::vector<dp::Clip>& clips,
                    const GdsiiOptions& options = {});

/// Reads back the structures written by writeGdsii: the window comes
/// from the `windowLayer` boundary, shapes from `layer`. Throws
/// std::runtime_error on malformed input or records outside the
/// supported subset.
[[nodiscard]] std::vector<dp::Clip> readGdsii(
    std::istream& in, const GdsiiOptions& options = {});

/// Reads from a file. Throws std::runtime_error on I/O failure.
[[nodiscard]] std::vector<dp::Clip> readGdsiiFile(
    const std::string& path, const GdsiiOptions& options = {});

}  // namespace dp::io
