#pragma once

/// \file json.hpp
/// Minimal dependency-free JSON value type with a strict parser and a
/// compact writer. Backs the serving front end (request/response
/// bodies, bundle manifests) and the machine-readable benchmark
/// reports. Objects preserve insertion order so emitted documents are
/// deterministic.

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace dp::io {

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() = default;  // null
  Json(bool b) : type_(Type::kBool), bool_(b) {}
  Json(double d) : type_(Type::kNumber), number_(d) {}
  Json(int i) : type_(Type::kNumber), number_(i) {}
  Json(long l) : type_(Type::kNumber), number_(static_cast<double>(l)) {}
  Json(const char* s) : type_(Type::kString), string_(s) {}
  Json(std::string s) : type_(Type::kString), string_(std::move(s)) {}

  [[nodiscard]] static Json array() {
    Json j;
    j.type_ = Type::kArray;
    return j;
  }
  [[nodiscard]] static Json object() {
    Json j;
    j.type_ = Type::kObject;
    return j;
  }

  /// Strict parse of a complete JSON document (rejects trailing
  /// garbage). Throws std::runtime_error with a byte offset on error.
  [[nodiscard]] static Json parse(const std::string& text);

  [[nodiscard]] Type type() const { return type_; }
  [[nodiscard]] bool isNull() const { return type_ == Type::kNull; }
  [[nodiscard]] bool isBool() const { return type_ == Type::kBool; }
  [[nodiscard]] bool isNumber() const { return type_ == Type::kNumber; }
  [[nodiscard]] bool isString() const { return type_ == Type::kString; }
  [[nodiscard]] bool isArray() const { return type_ == Type::kArray; }
  [[nodiscard]] bool isObject() const { return type_ == Type::kObject; }

  /// Typed accessors; throw std::runtime_error on type mismatch.
  [[nodiscard]] bool asBool() const;
  [[nodiscard]] double asDouble() const;
  [[nodiscard]] long asLong() const;
  /// Accepts either a JSON number or a decimal string — 64-bit seeds
  /// exceed the double-exact integer range, so clients may send them
  /// as strings.
  [[nodiscard]] std::uint64_t asUint64() const;
  [[nodiscard]] const std::string& asString() const;

  // Array interface.
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] const Json& at(std::size_t i) const;
  Json& push(Json v);

  // Object interface.
  [[nodiscard]] bool has(const std::string& key) const;
  /// Throws std::runtime_error when the key is absent.
  [[nodiscard]] const Json& at(const std::string& key) const;
  /// Null-object fallback lookup: returns a shared null when absent.
  [[nodiscard]] const Json& get(const std::string& key) const;
  Json& set(const std::string& key, Json v);
  [[nodiscard]] const std::vector<std::pair<std::string, Json>>& members()
      const;

  /// Compact single-line serialization (RFC 8259 escapes).
  [[nodiscard]] std::string dump() const;

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Json> array_;
  std::vector<std::pair<std::string, Json>> object_;
};

}  // namespace dp::io
