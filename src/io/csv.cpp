#include "io/csv.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/atomic_file.hpp"

namespace dp::io {

namespace {

std::string escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += "\"";
  return out;
}

}  // namespace

CsvWriter::CsvWriter(std::vector<std::string> header)
    : header_(std::move(header)) {
  if (header_.empty()) throw std::invalid_argument("CsvWriter: empty header");
}

void CsvWriter::addRow(std::vector<std::string> row) {
  if (row.size() != header_.size())
    throw std::invalid_argument("CsvWriter::addRow: column mismatch");
  rows_.push_back(std::move(row));
}

std::string CsvWriter::toString() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) os << ",";
      os << escape(row[i]);
    }
    os << "\n";
  };
  emit(header_);
  for (const auto& r : rows_) emit(r);
  return os.str();
}

void CsvWriter::writeFile(const std::string& path) const {
  AtomicFileWriter out(path);
  out.append(toString());
  (void)out.commit();
}

}  // namespace dp::io
