#include "io/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace dp::io {

Table::Table(std::vector<std::string> header)
    : header_(std::move(header)) {
  if (header_.empty()) throw std::invalid_argument("Table: empty header");
}

void Table::addRow(std::vector<std::string> row) {
  if (row.size() != header_.size())
    throw std::invalid_argument("Table::addRow: column count mismatch");
  rows_.push_back(std::move(row));
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::toString() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c)
    width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  std::ostringstream os;
  auto emitRow = [&](const std::vector<std::string>& row) {
    os << "|";
    for (std::size_t c = 0; c < row.size(); ++c)
      os << " " << std::left << std::setw(static_cast<int>(width[c]))
         << row[c] << " |";
    os << "\n";
  };
  emitRow(header_);
  os << "|";
  for (std::size_t c = 0; c < header_.size(); ++c)
    os << std::string(width[c] + 2, '-') << "|";
  os << "\n";
  for (const auto& row : rows_) emitRow(row);
  return os.str();
}

}  // namespace dp::io
