#pragma once

/// \file ascii_art.hpp
/// Terminal rendering of topologies and clips, used by the experiment
/// harnesses that reproduce the paper's visual figures (Fig. 1, Fig. 6,
/// Fig. 9, Fig. 11, Table I).

#include <string>
#include <vector>

#include "geometry/clip.hpp"
#include "squish/topology.hpp"

namespace dp::io {

/// One topology as a block of '#'/'.' rows (top row first).
[[nodiscard]] std::string renderTopology(const dp::squish::Topology& t);

/// Several topologies side by side (each padded to its own width), with
/// `gap` spaces between them — handy for the paper's grid-of-samples
/// figures.
[[nodiscard]] std::string renderTopologyRow(
    const std::vector<dp::squish::Topology>& topos, int gap = 3);

/// A clip rasterized at `nmPerChar` into '#'/'.' characters.
[[nodiscard]] std::string renderClip(const dp::Clip& clip,
                                     double nmPerChar = 8.0);

}  // namespace dp::io
