#pragma once

/// \file bundle.hpp
/// Model bundles: the named, versioned checkpoint unit of the serving
/// subsystem. A bundle packages everything a generate request needs —
/// a trained TCAE, the encoded source-latent pool, the sensitivity
/// vector / perturber, an optional trained guide model (G-TCAE GAN or
/// V-TCAE VAE), and the design-rule preset with its derived checkers
/// and the Eq. (10) solver.
///
/// On-disk layout (one directory per bundle):
///   manifest.json   name, version, rules, architecture, sensitivity,
///                   guide kind + normalization moments, generation,
///                   and a "files" map (path + byte size + CRC-32 per
///                   data file, verified on load)
///   tcae.<g>.bin    TCAE parameters (nn::saveTensors)
///   latents.<g>.bin encoded source-latent pool (nn::saveTensor)
///   guide.<g>.bin   guide parameters + state (only when guided)
///
/// Data files carry the manifest's generation number <g>; save never
/// overwrites the previous generation's files, and the manifest is
/// published last via an atomic rename, so a crash at any point in
/// save leaves the previous bundle loadable (DESIGN.md §11). Legacy
/// manifests without a "files" map load from the unsuffixed names
/// without checksum verification.
///
/// A loaded Bundle is immutable and served through const inference
/// paths only, so one instance is shared across all request threads.

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/sync.hpp"
#include "core/flows.hpp"
#include "core/fused_generate.hpp"
#include "core/guide.hpp"
#include "core/perturb.hpp"
#include "core/sensitivity.hpp"
#include "drc/geometry_rules.hpp"
#include "drc/topology_rules.hpp"
#include "geometry/design_rules.hpp"
#include "lp/geometry_solver.hpp"
#include "models/tcae.hpp"
#include "serve/metrics.hpp"
#include "squish/topology.hpp"
#include "tensor/tensor.hpp"
#include "train/harness.hpp"

namespace dp::serve {

/// Identity + architecture of a bundle (everything the manifest needs
/// to rebuild the in-memory object before loading weights).
struct BundleSpec {
  std::string name = "default";
  std::string version = "1";
  dp::DesignRules rules;
  models::TcaeConfig tcae;
  double perturbScale = 1.0;
  int sourcePoolSize = 1000;
  std::optional<core::GuideConfig> guide;  ///< nullopt = unguided
};

class Bundle {
 public:
  /// Builds the architecture from `spec` (weights are random until
  /// train or load fills them; `initRng` only seeds the construction).
  Bundle(BundleSpec spec, Rng& initRng);

  [[nodiscard]] const BundleSpec& spec() const { return spec_; }
  [[nodiscard]] const std::string& name() const { return spec_.name; }
  [[nodiscard]] const std::string& version() const {
    return spec_.version;
  }

  [[nodiscard]] models::Tcae& tcae() { return tcae_; }
  [[nodiscard]] const models::Tcae& tcae() const { return tcae_; }
  [[nodiscard]] core::GuideModel* guide() {
    return guide_ ? &*guide_ : nullptr;
  }
  [[nodiscard]] const core::GuideModel* guide() const {
    return guide_ ? &*guide_ : nullptr;
  }

  /// Installs the sensitivity vector and derives the perturber.
  void setSensitivity(std::vector<double> sensitivity);
  [[nodiscard]] const std::vector<double>& sensitivity() const {
    return sensitivity_;
  }
  /// Throws std::logic_error before setSensitivity().
  [[nodiscard]] const core::SensitivityAwarePerturber& perturber() const;

  void setSourceLatents(nn::Tensor latents);
  [[nodiscard]] const nn::Tensor& sourceLatents() const {
    return sourceLatents_;
  }

  /// Re-prepacks the fused decode route from the TCAE's current
  /// weights (DESIGN.md §14). Called after train/load finalizes the
  /// weights; leaves the route unset (float fallback) when the decoder
  /// stack is not the fusable shape.
  void refreshFusedRoute();
  /// Prepacked fused decode route, or nullptr when the batcher must
  /// use the unfused float path.
  [[nodiscard]] const core::FusedDecodeRoute* fusedRoute() const {
    return fused_ ? &*fused_ : nullptr;
  }

  [[nodiscard]] const drc::TopologyChecker& checker() const {
    return checker_;
  }
  [[nodiscard]] const lp::GeometrySolver& solver() const {
    return solver_;
  }
  [[nodiscard]] const drc::GeometryChecker& geomChecker() const {
    return geomChecker_;
  }

  /// Writes the bundle directory (creates it if needed).
  void save(const std::string& dir) const;

 private:
  BundleSpec spec_;
  models::Tcae tcae_;
  std::optional<core::GuideModel> guide_;
  std::optional<core::FusedDecodeRoute> fused_;
  std::vector<double> sensitivity_;
  std::optional<core::SensitivityAwarePerturber> perturber_;
  nn::Tensor sourceLatents_;
  drc::TopologyChecker checker_;
  lp::GeometrySolver solver_;
  drc::GeometryChecker geomChecker_;
};

/// Training inputs of buildBundle beyond the spec itself.
struct BundleBuildConfig {
  core::SensitivityConfig sensitivity;
  /// Good-vector collection run used to train the guide (only when
  /// spec.guide is set); collectGoodVectors is forced on.
  core::FlowConfig guideCollect;
  /// Robustness options for the TCAE training phase: checkpointing
  /// (tcaeTrain.checkpointDir makes the build crash-resumable),
  /// divergence guards, LR backoff. Defaults: sentinels on, no disk
  /// checkpoints.
  train::TrainOptions tcaeTrain;
};

/// Trains a complete bundle from an existing topology library: TCAE
/// identity training, Algorithm-1 sensitivity, source-latent encoding,
/// and (when spec.guide is set) a guide trained on the perturbation
/// vectors that decoded legally. Deterministic given `rng`. When
/// `metrics` is non-null, the TCAE harness counters are folded into
/// its dp_train_* exposition.
[[nodiscard]] std::shared_ptr<const Bundle> buildBundle(
    const BundleSpec& spec, const BundleBuildConfig& config,
    const std::vector<squish::Topology>& topologies, Rng& rng,
    Metrics* metrics = nullptr);

/// Loads a bundle directory written by Bundle::save.
[[nodiscard]] std::shared_ptr<const Bundle> loadBundle(
    const std::string& dir);

/// Thread-safe name -> bundle map shared by the batcher and the HTTP
/// front end.
class BundleRegistry {
 public:
  void add(std::shared_ptr<const Bundle> bundle) DP_EXCLUDES(mutex_);
  [[nodiscard]] std::shared_ptr<const Bundle> find(
      const std::string& name) const DP_EXCLUDES(mutex_);
  [[nodiscard]] std::vector<std::shared_ptr<const Bundle>> list() const
      DP_EXCLUDES(mutex_);

  /// Loads every immediate subdirectory of `root` that contains a
  /// manifest.json, in sorted path order. Returns the number of
  /// bundles loaded. A directory that fails to load (corrupt data,
  /// checksum mismatch, injected fault) is skipped rather than fatal;
  /// when `errors` is non-null one "<dir>: <reason>" line is appended
  /// per failure.
  int loadDirectory(const std::string& root,
                    std::vector<std::string>* errors = nullptr);

 private:
  mutable Mutex mutex_;
  std::vector<std::shared_ptr<const Bundle>> bundles_
      DP_GUARDED_BY(mutex_);
};

}  // namespace dp::serve
