#pragma once

/// \file eventloop.hpp
/// Nonblocking epoll HTTP/1.1 front end (DESIGN.md §13). One event
/// loop thread owns every connection: edge-triggered accept/read/write
/// state machines, a per-connection incremental parser with keep-alive
/// and pipelining, write-buffer backpressure (EPOLLOUT armed only
/// while bytes are pending) and idle/slow-loris timeouts. Handlers are
/// synchronous (`HttpHandler`, same signature the blocking PR 2 server
/// used) and run on a small offload pool so a handler blocked on the
/// Batcher never stalls the loop; finished responses come back over an
/// eventfd. Concurrency is therefore bounded by connections held, not
/// threads spawned: the loop holds tens of thousands of cheap
/// keep-alive sockets with `handlerThreads` workers behind them.
///
/// Per-connection state machine:
///
///   accept4 -> kReading --parse ok--> dispatch to handler pool
///                 ^                        | completion (eventfd)
///                 |  keep-alive            v
///                 +------------------- kWriting --close/error--> close
///
/// At most one request per connection is ever dispatched; later
/// pipelined requests stay buffered until the response for the current
/// one is queued, which keeps responses in request order for free.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/sync.hpp"
#include "serve/http.hpp"
#include "serve/metrics.hpp"

namespace dp::serve {

/// Incremental HTTP/1.1 request parser: feed bytes as they arrive,
/// take complete requests out one at a time. Byte-split agnostic — any
/// segmentation of the same byte stream yields the same request
/// sequence (the torture suite replays the corpus byte-at-a-time and
/// at random split points to pin this down).
class IncrementalParser {
 public:
  struct Limits {
    std::size_t maxHeaderBytes = 64 * 1024;
    std::size_t maxBodyBytes = 1 << 20;
  };

  enum class Status {
    kNeedMore,  ///< no complete request buffered yet
    kReady,     ///< one request extracted into `out`
    kError,     ///< protocol violation; see errorStatus()
  };

  explicit IncrementalParser(Limits limits) : limits_(limits) {}

  void append(const char* data, std::size_t n) {
    buffer_.append(data, n);
  }

  /// Extracts the next complete request from the buffer. After kError
  /// the parser is poisoned: every later call reports the same error
  /// (the connection must close after the error response).
  [[nodiscard]] Status next(HttpRequest& out);

  /// HTTP status for the violation after kError: 400 malformed head or
  /// Content-Length, 413 declared body over maxBodyBytes, 431 head
  /// over maxHeaderBytes.
  [[nodiscard]] int errorStatus() const { return errorStatus_; }
  /// Human-readable violation description for the error body.
  [[nodiscard]] const std::string& errorMessage() const {
    return errorMessage_;
  }

  /// True when no undelivered bytes are buffered — EOF now is a clean
  /// close; buffered bytes make it a mid-request hangup.
  [[nodiscard]] bool idle() const { return buffer_.empty(); }

 private:
  Limits limits_;
  std::string buffer_;
  std::size_t scan_ = 0;  ///< resume offset for the blank-line search
  std::size_t headEnd_ = std::string::npos;  ///< cached blank-line pos
  int errorStatus_ = 0;
  std::string errorMessage_;
};

class EventLoopServer {
 public:
  struct Config {
    std::string host = "127.0.0.1";
    int port = 0;  ///< 0 = ephemeral, see port() after start()
    std::size_t maxBodyBytes = 1 << 20;
    std::size_t maxHeaderBytes = 64 * 1024;
    /// Slow-loris budget: seconds a partial request (or a fresh
    /// connection that has not completed its first request) may sit
    /// before the connection is dropped without a response.
    int recvTimeoutSec = 30;
    /// Write-stall budget: seconds the peer may make zero progress on
    /// a pending response before the connection is dropped.
    int sendTimeoutSec = 30;
    /// Keep-alive idle budget: seconds a connection that has served at
    /// least one request may sit idle between requests.
    int idleTimeoutSec = 75;
    int handlerThreads = 4;
    std::size_t maxConnections = 50000;  ///< accept cap; excess closed
    /// stop() drain bound: in-flight handlers and pending writes get
    /// this long to finish before remaining connections are cut.
    int drainTimeoutMs = 5000;
    Metrics* metrics = nullptr;  ///< connection gauges; may be null
  };

  EventLoopServer(Config config, HttpHandler handler);
  ~EventLoopServer();

  EventLoopServer(const EventLoopServer&) = delete;
  EventLoopServer& operator=(const EventLoopServer&) = delete;

  void start();
  /// Stops accepting, drains in-flight handlers and pending writes
  /// (bounded by drainTimeoutMs), closes every connection and joins
  /// all threads. Idempotent.
  void stop();

  [[nodiscard]] int port() const { return port_; }
  [[nodiscard]] bool running() const {
    return running_.load(std::memory_order_acquire);
  }

 private:
  /// Read-side state of a connection. Write interest is tracked by
  /// `wantWrite` (EPOLLOUT armed), not a separate state.
  enum class ConnState {
    kReading,    ///< parsing request bytes
    kClosing,    ///< error/close-after response queued; flush and close
  };

  struct Conn {
    int fd = -1;
    IncrementalParser parser;
    ConnState state = ConnState::kReading;
    std::string outbuf;          ///< response bytes not yet written
    std::size_t outOff = 0;      ///< written prefix of outbuf
    bool wantWrite = false;      ///< EPOLLOUT currently armed
    bool dispatched = false;     ///< one request is in the handler pool
    bool peerHalfClosed = false; ///< read side saw EOF
    std::uint64_t requestsStarted = 0;
    std::chrono::steady_clock::time_point lastActivity;
    std::chrono::steady_clock::time_point lastWriteProgress;
    /// When the currently buffered partial request started arriving:
    /// the slow-loris clock, which lastActivity (reset on every byte)
    /// deliberately is not.
    std::chrono::steady_clock::time_point requestStart;

    explicit Conn(IncrementalParser::Limits limits) : parser(limits) {}
  };

  struct Completion {
    std::uint64_t connId = 0;
    std::string wire;        ///< full serialized response bytes
    bool closeAfter = false; ///< Connection: close requested
  };

  void loopThreadMain();
  void handlerThreadMain();

  void acceptReady();
  void readReady(std::uint64_t id, Conn& conn);
  /// Parses the next buffered request if none is dispatched yet and
  /// queues parser-error responses.
  void pumpParser(std::uint64_t id, Conn& conn);
  /// send()s outbuf until EAGAIN or drained; arms/disarms EPOLLOUT and
  /// closes kClosing connections once flushed.
  void flushWrite(std::uint64_t id, Conn& conn);
  void applyCompletions() DP_EXCLUDES(mutex_);
  void sweepTimeouts();
  void closeConn(std::uint64_t id, Conn& conn);
  void updateInterest(std::uint64_t id, Conn& conn);
  void wakeLoop();

  Config config_;
  HttpHandler handler_;

  int listenFd_ = -1;
  int epollFd_ = -1;
  int wakeFd_ = -1;
  int port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopRequested_{false};

  // Owned by the loop thread exclusively (no lock): connection table
  // keyed by a monotonically increasing id. epoll events carry the id,
  // not the fd, so a stale event after close/fd-reuse cannot reach the
  // wrong connection. Closed entries get fd = -1 and are erased in
  // `dead_` batches at the end of each loop iteration, so references
  // held by the frame that closed them never dangle.
  std::map<std::uint64_t, Conn> conns_;
  std::vector<std::uint64_t> dead_;
  std::uint64_t nextConnId_ = 2;  // 0 = listen socket, 1 = wake eventfd

  Mutex stopMutex_;  ///< serializes start()/stop()
  mutable Mutex mutex_;
  CondVar taskCv_;
  std::deque<std::pair<std::uint64_t, HttpRequest>> tasks_
      DP_GUARDED_BY(mutex_);
  std::deque<Completion> completions_ DP_GUARDED_BY(mutex_);
  std::size_t activeHandlers_ DP_GUARDED_BY(mutex_) = 0;
  bool handlersStopping_ DP_GUARDED_BY(mutex_) = false;

  std::thread loopThread_;
  std::vector<std::thread> handlerThreads_;
};

}  // namespace dp::serve
