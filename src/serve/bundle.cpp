#include "serve/bundle.hpp"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "core/generation_result.hpp"
#include "io/json.hpp"
#include "nn/serialize.hpp"

namespace dp::serve {

namespace fs = std::filesystem;
using dp::io::Json;

namespace {

Json momentsJson(const std::vector<double>& values) {
  Json arr = Json::array();
  for (const double v : values) arr.push(Json(v));
  return arr;
}

std::vector<double> momentsFromJson(const Json& arr) {
  std::vector<double> out;
  out.reserve(arr.size());
  for (std::size_t i = 0; i < arr.size(); ++i)
    out.push_back(arr.at(i).asDouble());
  return out;
}

Json manifestJson(const Bundle& bundle) {
  const BundleSpec& spec = bundle.spec();
  Json m = Json::object();
  m.set("format", "dp-bundle-1");
  m.set("name", spec.name);
  m.set("version", spec.version);

  Json rules = Json::object();
  rules.set("pitch", spec.rules.pitch);
  rules.set("minT2T", spec.rules.minT2T);
  rules.set("minLength", spec.rules.minLength);
  rules.set("minSpaceX", spec.rules.minSpaceX);
  rules.set("clipWidth", spec.rules.clipWidth);
  rules.set("clipHeight", spec.rules.clipHeight);
  rules.set("maxCx", spec.rules.maxCx);
  rules.set("maxCy", spec.rules.maxCy);
  m.set("rules", std::move(rules));

  Json tcae = Json::object();
  tcae.set("inputSize", spec.tcae.inputSize);
  tcae.set("latentDim", spec.tcae.latentDim);
  tcae.set("conv1Channels", spec.tcae.conv1Channels);
  tcae.set("conv2Channels", spec.tcae.conv2Channels);
  tcae.set("hidden", spec.tcae.hidden);
  m.set("tcae", std::move(tcae));

  m.set("perturbScale", spec.perturbScale);
  m.set("sourcePoolSize", spec.sourcePoolSize);
  m.set("sensitivity", momentsJson(bundle.sensitivity()));

  if (const core::GuideModel* guide = bundle.guide()) {
    Json g = Json::object();
    g.set("kind", guide->config().kind == core::GuideConfig::Kind::kGan
                      ? "gan"
                      : "vae");
    g.set("zDim", guide->config().zDim);
    g.set("hidden", guide->config().hidden);
    g.set("vaeLatentDim", guide->config().vaeLatentDim);
    g.set("dataMean", momentsJson(guide->dataMoments().mean));
    g.set("dataStd", momentsJson(guide->dataMoments().std));
    g.set("guideMean", momentsJson(guide->guideMoments().mean));
    g.set("guideStd", momentsJson(guide->guideMoments().std));
    m.set("guide", std::move(g));
  } else {
    m.set("guide", Json());
  }
  return m;
}

BundleSpec specFromManifest(const Json& m) {
  if (m.get("format").isString() &&
      m.at("format").asString() != "dp-bundle-1")
    throw std::runtime_error("loadBundle: unsupported format " +
                             m.at("format").asString());
  BundleSpec spec;
  spec.name = m.at("name").asString();
  spec.version = m.at("version").asString();

  const Json& rules = m.at("rules");
  spec.rules.pitch = rules.at("pitch").asDouble();
  spec.rules.minT2T = rules.at("minT2T").asDouble();
  spec.rules.minLength = rules.at("minLength").asDouble();
  spec.rules.minSpaceX = rules.at("minSpaceX").asDouble();
  spec.rules.clipWidth = rules.at("clipWidth").asDouble();
  spec.rules.clipHeight = rules.at("clipHeight").asDouble();
  spec.rules.maxCx = static_cast<int>(rules.at("maxCx").asLong());
  spec.rules.maxCy = static_cast<int>(rules.at("maxCy").asLong());

  const Json& tcae = m.at("tcae");
  spec.tcae.inputSize = static_cast<int>(tcae.at("inputSize").asLong());
  spec.tcae.latentDim = static_cast<int>(tcae.at("latentDim").asLong());
  spec.tcae.conv1Channels =
      static_cast<int>(tcae.at("conv1Channels").asLong());
  spec.tcae.conv2Channels =
      static_cast<int>(tcae.at("conv2Channels").asLong());
  spec.tcae.hidden = static_cast<int>(tcae.at("hidden").asLong());

  spec.perturbScale = m.at("perturbScale").asDouble();
  spec.sourcePoolSize =
      static_cast<int>(m.at("sourcePoolSize").asLong());

  const Json& guide = m.at("guide");
  if (!guide.isNull()) {
    core::GuideConfig gc;
    gc.kind = guide.at("kind").asString() == "gan"
                  ? core::GuideConfig::Kind::kGan
                  : core::GuideConfig::Kind::kVae;
    gc.dataDim = spec.tcae.latentDim;
    gc.zDim = static_cast<int>(guide.at("zDim").asLong());
    gc.hidden = static_cast<int>(guide.at("hidden").asLong());
    gc.vaeLatentDim =
        static_cast<int>(guide.at("vaeLatentDim").asLong());
    spec.guide = gc;
  }
  return spec;
}

std::string readFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

}  // namespace

Bundle::Bundle(BundleSpec spec, Rng& initRng)
    : spec_(std::move(spec)),
      tcae_(spec_.tcae, initRng),
      checker_(drc::TopologyRuleConfig::fromRules(spec_.rules)),
      solver_(spec_.rules),
      geomChecker_(spec_.rules) {
  if (spec_.guide) {
    core::GuideConfig gc = *spec_.guide;
    gc.dataDim = spec_.tcae.latentDim;  // guides act on TCAE latents
    spec_.guide = gc;
    guide_.emplace(gc, initRng);
  }
}

void Bundle::setSensitivity(std::vector<double> sensitivity) {
  if (static_cast<int>(sensitivity.size()) != spec_.tcae.latentDim)
    throw std::invalid_argument(
        "Bundle::setSensitivity: expected one entry per latent node");
  sensitivity_ = std::move(sensitivity);
  perturber_.emplace(sensitivity_, spec_.perturbScale);
}

const core::SensitivityAwarePerturber& Bundle::perturber() const {
  if (!perturber_)
    throw std::logic_error("Bundle: sensitivity not set");
  return *perturber_;
}

void Bundle::setSourceLatents(nn::Tensor latents) {
  if (latents.dim() != 2 || latents.size(1) != spec_.tcae.latentDim)
    throw std::invalid_argument(
        "Bundle::setSourceLatents: expected (pool, latentDim)");
  sourceLatents_ = std::move(latents);
}

void Bundle::save(const std::string& dir) const {
  fs::create_directories(dir);
  {
    std::ofstream out(dir + "/manifest.json", std::ios::binary);
    if (!out)
      throw std::runtime_error("Bundle::save: cannot write manifest in " +
                               dir);
    out << manifestJson(*this).dump() << "\n";
  }
  // save/load are non-const on the models (they hand out Param
  // pointers); serialization itself only reads.
  auto& self = const_cast<Bundle&>(*this);
  self.tcae_.save(dir + "/tcae.bin");
  nn::saveTensor(sourceLatents_, dir + "/latents.bin");
  if (guide_) self.guide_->save(dir + "/guide.bin");
}

std::shared_ptr<const Bundle> buildBundle(
    const BundleSpec& spec, const BundleBuildConfig& config,
    const std::vector<squish::Topology>& topologies, Rng& rng) {
  if (topologies.empty())
    throw std::invalid_argument("buildBundle: empty topology library");
  auto bundle = std::make_shared<Bundle>(spec, rng);
  bundle->tcae().train(topologies, rng);
  bundle->setSensitivity(core::estimateSensitivity(
      bundle->tcae(), topologies, bundle->checker(), config.sensitivity));
  bundle->setSourceLatents(core::encodeSourceLatents(
      bundle->tcae(), topologies, spec.sourcePoolSize));
  if (core::GuideModel* guide = bundle->guide()) {
    core::FlowConfig collect = config.guideCollect;
    collect.collectGoodVectors = true;
    const core::GenerationResult seedRun = core::tcaeRandom(
        bundle->tcae(), topologies, bundle->perturber(), bundle->checker(),
        collect, rng);
    if (seedRun.goodVectors.empty())
      throw std::runtime_error(
          "buildBundle: collection run produced no legal vectors to train "
          "the guide");
    guide->train(core::vectorsToTensor(seedRun.goodVectors), rng);
  }
  return bundle;
}

std::shared_ptr<const Bundle> loadBundle(const std::string& dir) {
  const Json manifest = Json::parse(readFile(dir + "/manifest.json"));
  BundleSpec spec = specFromManifest(manifest);
  Rng initRng(0);  // architecture init only; load overwrites weights
  auto bundle = std::make_shared<Bundle>(std::move(spec), initRng);

  std::vector<double> sensitivity =
      momentsFromJson(manifest.at("sensitivity"));
  bundle->setSensitivity(std::move(sensitivity));
  bundle->tcae().load(dir + "/tcae.bin");
  bundle->setSourceLatents(nn::loadTensor(dir + "/latents.bin"));
  if (core::GuideModel* guide = bundle->guide()) {
    guide->load(dir + "/guide.bin");
    const Json& g = manifest.at("guide");
    core::Moments data;
    data.mean = momentsFromJson(g.at("dataMean"));
    data.std = momentsFromJson(g.at("dataStd"));
    core::Moments guideMoments;
    guideMoments.mean = momentsFromJson(g.at("guideMean"));
    guideMoments.std = momentsFromJson(g.at("guideStd"));
    guide->setMoments(std::move(data), std::move(guideMoments));
  }
  return bundle;
}

void BundleRegistry::add(std::shared_ptr<const Bundle> bundle) {
  if (!bundle) throw std::invalid_argument("BundleRegistry: null bundle");
  LockGuard lock(mutex_);
  for (auto& existing : bundles_)
    if (existing->name() == bundle->name()) {
      existing = std::move(bundle);  // replace: latest version wins
      return;
    }
  bundles_.push_back(std::move(bundle));
}

std::shared_ptr<const Bundle> BundleRegistry::find(
    const std::string& name) const {
  LockGuard lock(mutex_);
  for (const auto& bundle : bundles_)
    if (bundle->name() == name) return bundle;
  return nullptr;
}

std::vector<std::shared_ptr<const Bundle>> BundleRegistry::list() const {
  LockGuard lock(mutex_);
  return bundles_;
}

int BundleRegistry::loadDirectory(const std::string& root) {
  int loaded = 0;
  for (const auto& entry : fs::directory_iterator(root)) {
    if (!entry.is_directory()) continue;
    if (!fs::exists(entry.path() / "manifest.json")) continue;
    add(loadBundle(entry.path().string()));
    ++loaded;
  }
  return loaded;
}

}  // namespace dp::serve
