#include "serve/bundle.hpp"

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <system_error>

#include "common/atomic_file.hpp"
#include "common/fault.hpp"
#include "core/generation_result.hpp"
#include "io/json.hpp"
#include "nn/serialize.hpp"

namespace dp::serve {

namespace fs = std::filesystem;
using dp::io::Json;

namespace {

Json momentsJson(const std::vector<double>& values) {
  Json arr = Json::array();
  for (const double v : values) arr.push(Json(v));
  return arr;
}

std::vector<double> momentsFromJson(const Json& arr) {
  std::vector<double> out;
  out.reserve(arr.size());
  for (std::size_t i = 0; i < arr.size(); ++i)
    out.push_back(arr.at(i).asDouble());
  return out;
}

Json manifestJson(const Bundle& bundle) {
  const BundleSpec& spec = bundle.spec();
  Json m = Json::object();
  m.set("format", "dp-bundle-1");
  m.set("name", spec.name);
  m.set("version", spec.version);

  Json rules = Json::object();
  rules.set("pitch", spec.rules.pitch);
  rules.set("minT2T", spec.rules.minT2T);
  rules.set("minLength", spec.rules.minLength);
  rules.set("minSpaceX", spec.rules.minSpaceX);
  rules.set("clipWidth", spec.rules.clipWidth);
  rules.set("clipHeight", spec.rules.clipHeight);
  rules.set("maxCx", spec.rules.maxCx);
  rules.set("maxCy", spec.rules.maxCy);
  m.set("rules", std::move(rules));

  Json tcae = Json::object();
  tcae.set("inputSize", spec.tcae.inputSize);
  tcae.set("latentDim", spec.tcae.latentDim);
  tcae.set("conv1Channels", spec.tcae.conv1Channels);
  tcae.set("conv2Channels", spec.tcae.conv2Channels);
  tcae.set("hidden", spec.tcae.hidden);
  m.set("tcae", std::move(tcae));

  m.set("perturbScale", spec.perturbScale);
  m.set("sourcePoolSize", spec.sourcePoolSize);
  m.set("sensitivity", momentsJson(bundle.sensitivity()));

  if (const core::GuideModel* guide = bundle.guide()) {
    Json g = Json::object();
    g.set("kind", guide->config().kind == core::GuideConfig::Kind::kGan
                      ? "gan"
                      : "vae");
    g.set("zDim", guide->config().zDim);
    g.set("hidden", guide->config().hidden);
    g.set("vaeLatentDim", guide->config().vaeLatentDim);
    g.set("dataMean", momentsJson(guide->dataMoments().mean));
    g.set("dataStd", momentsJson(guide->dataMoments().std));
    g.set("guideMean", momentsJson(guide->guideMoments().mean));
    g.set("guideStd", momentsJson(guide->guideMoments().std));
    m.set("guide", std::move(g));
  } else {
    m.set("guide", Json());
  }
  return m;
}

BundleSpec specFromManifest(const Json& m) {
  if (m.get("format").isString() &&
      m.at("format").asString() != "dp-bundle-1")
    throw std::runtime_error("loadBundle: unsupported format " +
                             m.at("format").asString());
  BundleSpec spec;
  spec.name = m.at("name").asString();
  spec.version = m.at("version").asString();

  const Json& rules = m.at("rules");
  spec.rules.pitch = rules.at("pitch").asDouble();
  spec.rules.minT2T = rules.at("minT2T").asDouble();
  spec.rules.minLength = rules.at("minLength").asDouble();
  spec.rules.minSpaceX = rules.at("minSpaceX").asDouble();
  spec.rules.clipWidth = rules.at("clipWidth").asDouble();
  spec.rules.clipHeight = rules.at("clipHeight").asDouble();
  spec.rules.maxCx = static_cast<int>(rules.at("maxCx").asLong());
  spec.rules.maxCy = static_cast<int>(rules.at("maxCy").asLong());

  const Json& tcae = m.at("tcae");
  spec.tcae.inputSize = static_cast<int>(tcae.at("inputSize").asLong());
  spec.tcae.latentDim = static_cast<int>(tcae.at("latentDim").asLong());
  spec.tcae.conv1Channels =
      static_cast<int>(tcae.at("conv1Channels").asLong());
  spec.tcae.conv2Channels =
      static_cast<int>(tcae.at("conv2Channels").asLong());
  spec.tcae.hidden = static_cast<int>(tcae.at("hidden").asLong());

  spec.perturbScale = m.at("perturbScale").asDouble();
  spec.sourcePoolSize =
      static_cast<int>(m.at("sourcePoolSize").asLong());

  const Json& guide = m.at("guide");
  if (!guide.isNull()) {
    core::GuideConfig gc;
    gc.kind = guide.at("kind").asString() == "gan"
                  ? core::GuideConfig::Kind::kGan
                  : core::GuideConfig::Kind::kVae;
    gc.dataDim = spec.tcae.latentDim;
    gc.zDim = static_cast<int>(guide.at("zDim").asLong());
    gc.hidden = static_cast<int>(guide.at("hidden").asLong());
    gc.vaeLatentDim =
        static_cast<int>(guide.at("vaeLatentDim").asLong());
    spec.guide = gc;
  }
  return spec;
}

std::string readFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// Removes data files from generations other than `keep`, plus legacy
/// unsuffixed files and orphaned atomic-writer temp files. Best-effort:
/// stale files cost disk, never correctness.
void cleanupStaleGenerations(const fs::path& dir, std::uint64_t keep) {
  // Built piecewise: gcc 12's -Wrestrict misfires on
  // "." + std::to_string(...) + ".bin" temporaries.
  std::string keepSuffix = ".";
  keepSuffix += std::to_string(keep);
  keepSuffix += ".bin";
  std::error_code ec;
  std::vector<fs::path> stale;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.find(".tmp.") != std::string::npos) {
      stale.push_back(entry.path());  // crashed atomic write
      continue;
    }
    const bool data = name.rfind("tcae.", 0) == 0 ||
                      name.rfind("latents.", 0) == 0 ||
                      name.rfind("guide.", 0) == 0;
    if (!data || name.size() < 4 ||
        name.compare(name.size() - 4, 4, ".bin") != 0)
      continue;
    if (name.size() >= keepSuffix.size() &&
        name.compare(name.size() - keepSuffix.size(), keepSuffix.size(),
                     keepSuffix) == 0)
      continue;
    stale.push_back(entry.path());
  }
  for (const auto& path : stale) fs::remove(path, ec);
}

}  // namespace

Bundle::Bundle(BundleSpec spec, Rng& initRng)
    : spec_(std::move(spec)),
      tcae_(spec_.tcae, initRng),
      checker_(drc::TopologyRuleConfig::fromRules(spec_.rules)),
      solver_(spec_.rules),
      geomChecker_(spec_.rules) {
  if (spec_.guide) {
    core::GuideConfig gc = *spec_.guide;
    gc.dataDim = spec_.tcae.latentDim;  // guides act on TCAE latents
    spec_.guide = gc;
    guide_.emplace(gc, initRng);
  }
}

void Bundle::refreshFusedRoute() {
  try {
    fused_.emplace(tcae_);
  } catch (const std::invalid_argument&) {
    fused_.reset();  // unfusable stack: batcher uses the float path
  }
}

void Bundle::setSensitivity(std::vector<double> sensitivity) {
  if (static_cast<int>(sensitivity.size()) != spec_.tcae.latentDim)
    throw std::invalid_argument(
        "Bundle::setSensitivity: expected one entry per latent node");
  sensitivity_ = std::move(sensitivity);
  perturber_.emplace(sensitivity_, spec_.perturbScale);
}

const core::SensitivityAwarePerturber& Bundle::perturber() const {
  if (!perturber_)
    throw std::logic_error("Bundle: sensitivity not set");
  return *perturber_;
}

void Bundle::setSourceLatents(nn::Tensor latents) {
  if (latents.dim() != 2 || latents.size(1) != spec_.tcae.latentDim)
    throw std::invalid_argument(
        "Bundle::setSourceLatents: expected (pool, latentDim)");
  sourceLatents_ = std::move(latents);
}

void Bundle::save(const std::string& dir) const {
  fs::create_directories(dir);
  const std::string manifestPath = dir + "/manifest.json";

  // Crash-safe publication: data files carry a generation suffix so a
  // new save never overwrites the files the current manifest points
  // at, and the manifest's atomic rename is the single commit point.
  // A crash anywhere before that rename leaves the previous bundle
  // fully loadable; stale generations are swept only after commit.
  std::uint64_t gen = 1;
  if (fs::exists(manifestPath)) {
    try {
      const Json old = Json::parse(readFile(manifestPath));
      if (old.has("generation"))
        gen = old.at("generation").asUint64() + 1;
    } catch (const std::exception&) {
      // Unreadable previous manifest: start a fresh generation line.
    }
  }
  std::string suffix = ".";
  suffix += std::to_string(gen);
  suffix += ".bin";

  // save/load are non-const on the models (they hand out Param
  // pointers); serialization itself only reads.
  auto& self = const_cast<Bundle&>(*this);
  Json files = Json::object();
  const auto record = [&](const std::string& key,
                          const std::string& file) {
    Json f = Json::object();
    f.set("path", file);
    f.set("crc32", static_cast<double>(crc32File(dir + "/" + file)));
    f.set("bytes",
          static_cast<double>(fs::file_size(dir + "/" + file)));
    files.set(key, std::move(f));
  };
  self.tcae_.save(dir + "/tcae" + suffix);
  record("tcae", "tcae" + suffix);
  nn::saveTensor(sourceLatents_, dir + "/latents" + suffix);
  record("latents", "latents" + suffix);
  if (guide_) {
    self.guide_->save(dir + "/guide" + suffix);
    record("guide", "guide" + suffix);
  }

  Json m = manifestJson(*this);
  m.set("generation", static_cast<double>(gen));
  m.set("files", std::move(files));
  AtomicFileWriter out(manifestPath);
  out.append(m.dump());
  out.append("\n");
  (void)out.commit();

  cleanupStaleGenerations(dir, gen);
}

std::shared_ptr<const Bundle> buildBundle(
    const BundleSpec& spec, const BundleBuildConfig& config,
    const std::vector<squish::Topology>& topologies, Rng& rng,
    Metrics* metrics) {
  if (topologies.empty())
    throw std::invalid_argument("buildBundle: empty topology library");
  auto bundle = std::make_shared<Bundle>(spec, rng);
  const models::TrainStats trainStats =
      bundle->tcae().train(topologies, rng, config.tcaeTrain);
  if (metrics) {
    TrainCounters counters;
    counters.steps = static_cast<std::uint64_t>(trainStats.steps);
    counters.rollbacks = static_cast<std::uint64_t>(trainStats.rollbacks);
    counters.nanEvents = static_cast<std::uint64_t>(trainStats.nanEvents);
    counters.checkpointsSaved =
        static_cast<std::uint64_t>(trainStats.checkpointsSaved);
    counters.resumes = trainStats.resumed ? 1 : 0;
    metrics->recordTrain(counters);
  }
  bundle->setSensitivity(core::estimateSensitivity(
      bundle->tcae(), topologies, bundle->checker(), config.sensitivity));
  bundle->setSourceLatents(core::encodeSourceLatents(
      bundle->tcae(), topologies, spec.sourcePoolSize));
  if (core::GuideModel* guide = bundle->guide()) {
    core::FlowConfig collect = config.guideCollect;
    collect.collectGoodVectors = true;
    const core::GenerationResult seedRun = core::tcaeRandom(
        bundle->tcae(), topologies, bundle->perturber(), bundle->checker(),
        collect, rng);
    if (seedRun.goodVectors.empty())
      throw std::runtime_error(
          "buildBundle: collection run produced no legal vectors to train "
          "the guide");
    guide->train(core::vectorsToTensor(seedRun.goodVectors), rng);
  }
  bundle->refreshFusedRoute();
  return bundle;
}

std::shared_ptr<const Bundle> loadBundle(const std::string& dir) {
  static FaultSite loadFault("serve.bundle.load");
  loadFault.orThrow();
  const Json manifest = Json::parse(readFile(dir + "/manifest.json"));
  BundleSpec spec = specFromManifest(manifest);
  Rng initRng(0);  // architecture init only; load overwrites weights
  auto bundle = std::make_shared<Bundle>(std::move(spec), initRng);

  // Resolves a data file through the manifest's "files" map, verifying
  // byte size and CRC-32 before anything is deserialized. Manifests
  // written before the generation scheme have no "files" map and fall
  // back to fixed names without checksums.
  const auto dataPath = [&](const std::string& key,
                            const std::string& legacy) {
    if (!manifest.has("files")) return dir + "/" + legacy;
    const Json& f = manifest.at("files").at(key);
    const std::string path = dir + "/" + f.at("path").asString();
    const std::uint64_t bytes = f.at("bytes").asUint64();
    const auto want = static_cast<std::uint32_t>(f.at("crc32").asUint64());
    std::error_code ec;
    const std::uint64_t actual = fs::file_size(path, ec);
    if (ec || actual != bytes)
      throw std::runtime_error(
          "loadBundle: " + path + ": size mismatch (manifest says " +
          std::to_string(bytes) + " bytes, file has " +
          (ec ? "none" : std::to_string(actual)) + ")");
    if (crc32File(path) != want)
      throw std::runtime_error("loadBundle: " + path +
                               ": checksum mismatch (corrupt bundle)");
    return path;
  };

  std::vector<double> sensitivity =
      momentsFromJson(manifest.at("sensitivity"));
  bundle->setSensitivity(std::move(sensitivity));
  bundle->tcae().load(dataPath("tcae", "tcae.bin"));
  bundle->setSourceLatents(
      nn::loadTensor(dataPath("latents", "latents.bin")));
  if (core::GuideModel* guide = bundle->guide()) {
    guide->load(dataPath("guide", "guide.bin"));
    const Json& g = manifest.at("guide");
    core::Moments data;
    data.mean = momentsFromJson(g.at("dataMean"));
    data.std = momentsFromJson(g.at("dataStd"));
    core::Moments guideMoments;
    guideMoments.mean = momentsFromJson(g.at("guideMean"));
    guideMoments.std = momentsFromJson(g.at("guideStd"));
    guide->setMoments(std::move(data), std::move(guideMoments));
  }
  bundle->refreshFusedRoute();
  return bundle;
}

void BundleRegistry::add(std::shared_ptr<const Bundle> bundle) {
  if (!bundle) throw std::invalid_argument("BundleRegistry: null bundle");
  LockGuard lock(mutex_);
  for (auto& existing : bundles_)
    if (existing->name() == bundle->name()) {
      existing = std::move(bundle);  // replace: latest version wins
      return;
    }
  bundles_.push_back(std::move(bundle));
}

std::shared_ptr<const Bundle> BundleRegistry::find(
    const std::string& name) const {
  LockGuard lock(mutex_);
  for (const auto& bundle : bundles_)
    if (bundle->name() == name) return bundle;
  return nullptr;
}

std::vector<std::shared_ptr<const Bundle>> BundleRegistry::list() const {
  LockGuard lock(mutex_);
  return bundles_;
}

int BundleRegistry::loadDirectory(const std::string& root,
                                  std::vector<std::string>* errors) {
  std::vector<fs::path> dirs;
  for (const auto& entry : fs::directory_iterator(root)) {
    if (!entry.is_directory()) continue;
    if (!fs::exists(entry.path() / "manifest.json")) continue;
    dirs.push_back(entry.path());
  }
  std::sort(dirs.begin(), dirs.end());  // deterministic load order

  int loaded = 0;
  for (const auto& dir : dirs) {
    try {
      add(loadBundle(dir.string()));
      ++loaded;
    } catch (const std::exception& e) {
      // A corrupt bundle directory is skipped, not fatal: an already
      // registered last-good bundle of the same name keeps serving.
      if (errors) errors->push_back(dir.string() + ": " + e.what());
    }
  }
  return loaded;
}

}  // namespace dp::serve
