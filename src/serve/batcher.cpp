#include "serve/batcher.hpp"

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <utility>
#include <vector>

#include "common/fault.hpp"
#include "core/pipeline.hpp"
#include "squish/complexity.hpp"
#include "squish/hash.hpp"

namespace dp::serve {

namespace {

/// Rows [begin, begin+n) of a (N, ...) tensor as a fresh tensor.
nn::Tensor sliceLead(const nn::Tensor& t, long begin, int n) {
  std::vector<int> shape = t.shape();
  shape[0] = n;
  nn::Tensor out(shape);
  const std::size_t stride = t.numel() / static_cast<std::size_t>(t.size(0));
  const std::size_t from = static_cast<std::size_t>(begin) * stride;
  for (std::size_t i = 0; i < out.numel(); ++i) out[i] = t[from + i];
  return out;
}

/// Admission error strings, kept out of the hot submit fast path so
/// the rejection branches (the only string-building ones) stay off it.
// dp-analyze: cold
std::string validateRequest(const GenerateRequest& request,
                            const Batcher::Config& config) {
  if (request.count < 1 || request.count > config.maxCount)
    return "count must be in [1, " + std::to_string(config.maxCount) +
           "]";
  if (request.batchSize < 1 || request.batchSize > 4096)
    return "batchSize must be in [1, 4096]";
  if (request.flow != "random" && request.flow != "combine" &&
      request.flow != "guided")
    return "flow must be random, combine or guided";
  if (request.flow == "combine" &&
      (request.arity < 2 || request.arity > 16))
    return "arity must be in [2, 16]";
  if ((request.maxCx != 0 && request.maxCx < request.minCx) ||
      (request.maxCy != 0 && request.maxCy < request.minCy))
    return "empty complexity window";
  if (request.deadlineMs < 0)
    return "deadlineMs must be >= 0 (0 = unbounded)";
  return {};
}

}  // namespace

Batcher::Batcher(BundleRegistry& registry, Metrics& metrics, Config config)
    : registry_(registry), metrics_(metrics), config_(config) {
  if (config_.queueCapacity < 1 || config_.maxActive < 1 ||
      config_.decodeBatch < 1)
    throw std::invalid_argument("Batcher: config values must be >= 1");
  started_ = true;
  worker_ = std::thread([this] { workerLoop(); });
}

Batcher::~Batcher() { stop(); }

bool Batcher::running() const {
  LockGuard lock(mutex_);
  return started_ && !stopping_;
}

// dp-analyze: hot
SubmitResult Batcher::submit(const GenerateRequest& request) {
  SubmitResult out;
  const auto invalid = [&out](std::string message) {
    out.status = SubmitResult::Status::kInvalid;
    out.error = std::move(message);
    return std::move(out);
  };
  std::string err = validateRequest(request, config_);
  if (!err.empty()) return invalid(std::move(err));

  // Chaos hook: an armed admission fault sheds the request exactly as
  // a full queue would, so backpressure handling is testable on demand.
  static FaultSite admitFault("serve.batcher.admit");
  if (admitFault.shouldFail()) {
    metrics_.countShed("fault");
    out.status = SubmitResult::Status::kQueueFull;
    out.error = "injected admission fault";
    return out;
  }

  const std::shared_ptr<const Bundle> bundle =
      registry_.find(request.bundle);
  if (!bundle) return invalid("unknown bundle: " + request.bundle);
  if (request.flow == "guided" && !bundle->guide())
    return invalid("bundle " + request.bundle + " has no guide model");

  // Draw the full latent plan on this thread: fixes the seeded RNG
  // stream before any cross-request coalescing can interleave work.
  auto job = std::make_unique<Job>();
  job->request = request;
  job->bundle = bundle;
  job->rng = Rng(request.seed);
  try {
    if (request.flow == "random") {
      job->latents =
          core::planRandomLatents(bundle->sourceLatents(),
                                  bundle->perturber(), request.count,
                                  request.batchSize, job->rng)
              .latents;
    } else if (request.flow == "combine") {
      job->latents = core::planCombineLatents(bundle->sourceLatents(),
                                              request.count,
                                              request.batchSize,
                                              request.arity, job->rng)
                         .latents;
    } else {
      job->latents = core::planGuidedLatents(
          *bundle->guide(), &bundle->sourceLatents(), request.count,
          request.batchSize, job->rng);
    }
  } catch (const std::exception& e) {
    return invalid(std::string("cannot plan request: ") + e.what());
  }
  job->enqueued = std::chrono::steady_clock::now();
  if (request.deadlineMs > 0) {
    job->hasDeadline = true;
    job->deadline =
        job->enqueued + std::chrono::milliseconds(request.deadlineMs);
  }
  out.future = job->promise.get_future();

  {
    LockGuard lock(mutex_);
    if (stopping_ || !started_) {
      out.status = SubmitResult::Status::kShuttingDown;
      out.error = "server is shutting down";
      return out;
    }
    if (static_cast<int>(pending_.size()) >= config_.queueCapacity) {
      metrics_.countShed("queue_full");
      out.status = SubmitResult::Status::kQueueFull;
      out.error = "request queue is full";
      return out;
    }
    // One deque node per accepted request (not per pattern), bounded
    // by queueCapacity above.  // dp-analyze: allow(DPA103)
    pending_.push_back(std::move(job));
    metrics_.setQueueDepth(static_cast<long>(pending_.size()));
  }
  cv_.notifyOne();
  out.status = SubmitResult::Status::kAccepted;
  return out;
}

void Batcher::workerLoop() {
  for (;;) {
    {
      UniqueLock lock(mutex_);
      while (!stopping_ && pending_.empty() && active_.empty())
        cv_.wait(lock);
      if (pending_.empty() && active_.empty() && stopping_) return;
      while (!pending_.empty() &&
             static_cast<int>(active_.size()) < config_.maxActive) {
        active_.push_back(std::move(pending_.front()));
        pending_.pop_front();
      }
      metrics_.setQueueDepth(static_cast<long>(pending_.size()));
    }
    if (!active_.empty()) runBatch();
  }
}

void Batcher::shedExpired() {
  const auto now = std::chrono::steady_clock::now();
  for (auto it = active_.begin(); it != active_.end();) {
    Job& job = **it;
    if (job.hasDeadline && now >= job.deadline) {
      metrics_.countShed("deadline");
      job.promise.set_exception(
          std::make_exception_ptr(DeadlineExceeded()));
      it = active_.erase(it);
    } else {
      ++it;
    }
  }
}

void Batcher::runBatch() {
  // Shed before spending decode capacity: jobs whose budget expired
  // while queued or mid-coalescing fail fast instead of occupying
  // batch rows that cannot be delivered in time.
  shedExpired();
  if (active_.empty()) return;

  // Coalesce rows from every active job that shares the head job's
  // bundle, in arrival order, up to decodeBatch rows.
  const Bundle* headBundle = active_.front()->bundle.get();
  struct Take {
    Job* job;
    long begin;
    int rows;
  };
  std::vector<Take> takes;
  int total = 0;
  for (const auto& job : active_) {
    if (job->bundle.get() != headBundle) continue;
    const long left = job->request.count - job->offset;
    if (left <= 0) continue;
    const int n = static_cast<int>(std::min<long>(
        left, config_.decodeBatch - total));
    if (n <= 0) break;
    takes.push_back({job.get(), job->offset, n});
    total += n;
    if (total >= config_.decodeBatch) break;
  }

  try {
    static FaultSite decodeFault("serve.batcher.decode");
    decodeFault.orThrow();
    nn::Tensor batch({total, headBundle->spec().tcae.latentDim});
    {
      long row = 0;
      const int d = batch.size(1);
      for (const Take& take : takes) {
        for (int i = 0; i < take.rows; ++i)
          for (int j = 0; j < d; ++j)
            batch.at(static_cast<int>(row) + i, j) =
                take.job->latents.at(static_cast<int>(take.begin) + i, j);
        row += take.rows;
      }
    }
    // Fused route (DESIGN.md §14) when the bundle's decoder stack
    // supports it: the coalesced batch decodes straight to bit-packed
    // topologies and the per-job accounting runs on the packed words.
    // Either way the jobs see identical results for the same binarized
    // samples.
    if (const core::FusedDecodeRoute* fused = headBundle->fusedRoute()) {
      std::vector<std::uint32_t> masks;
      fused->decodeMasks(batch, masks);
      metrics_.batchOccupancy().observe(static_cast<double>(takes.size()));
      const int edge = fused->topologySize();
      long row = 0;
      for (const Take& take : takes) {
        core::accountMaskBatch(masks.data() + row * edge, take.rows, edge,
                               headBundle->checker(), take.job->result);
        take.job->offset += take.rows;
        ++take.job->decodeBatches;
        row += take.rows;
      }
    } else {
      const nn::Tensor activations = headBundle->tcae().decode(batch);
      metrics_.batchOccupancy().observe(static_cast<double>(takes.size()));
      long row = 0;
      for (const Take& take : takes) {
        const nn::Tensor slice = sliceLead(activations, row, take.rows);
        core::accountActivationBatch(slice, headBundle->checker(),
                                     take.job->result);
        take.job->offset += take.rows;
        ++take.job->decodeBatches;
        row += take.rows;
      }
    }
  } catch (...) {
    // A decode failure poisons every contributing job; fail them all
    // and keep serving the rest.
    for (const Take& take : takes) {
      take.job->offset = take.job->request.count;  // mark done
      take.job->promise.set_exception(std::current_exception());
    }
    active_.erase(
        std::remove_if(active_.begin(), active_.end(),
                       [](const std::unique_ptr<Job>& job) {
                         return job->offset >= job->request.count;
                       }),
        active_.end());
    return;
  }

  for (auto it = active_.begin(); it != active_.end();) {
    if ((*it)->offset >= (*it)->request.count) {
      finalize(**it);
      it = active_.erase(it);
    } else {
      ++it;
    }
  }
}

void Batcher::finalize(Job& job) {
  GenerateResponse res;
  res.bundle = job.bundle->name();
  res.version = job.bundle->version();
  res.flow = job.request.flow;
  res.seed = job.request.seed;
  res.generated = job.result.generated;
  res.legal = job.result.legal;
  res.uniqueTotal = static_cast<long>(job.result.unique.size());
  res.decodeBatches = job.decodeBatches;

  // Complexity-window filter on the unique set (0 = unbounded).
  const GenerateRequest& req = job.request;
  const auto inWindow = [&req](const squish::Complexity& c) {
    if (req.minCx != 0 && c.cx < req.minCx) return false;
    if (req.maxCx != 0 && c.cx > req.maxCx) return false;
    if (req.minCy != 0 && c.cy < req.minCy) return false;
    if (req.maxCy != 0 && c.cy > req.maxCy) return false;
    return true;
  };
  core::PatternLibrary window;
  std::vector<squish::Complexity> windowCplx;
  for (const squish::Topology& p : job.result.unique.patterns()) {
    const squish::Complexity c = squish::complexityOfCanonical(p);
    if (!inWindow(c)) continue;
    window.add(p);
    windowCplx.push_back(c);
    res.patternHashes.push_back(squish::hashTopology(p));
  }
  std::sort(res.patternHashes.begin(), res.patternHashes.end());
  res.uniqueInWindow = static_cast<long>(window.size());
  res.diversity = core::shannonDiversity(windowCplx);
  double sumCx = 0.0;
  double sumCy = 0.0;
  for (const squish::Complexity& c : windowCplx) {
    sumCx += c.cx;
    sumCy += c.cy;
  }
  if (!windowCplx.empty()) {
    res.meanCx = sumCx / static_cast<double>(windowCplx.size());
    res.meanCy = sumCy / static_cast<double>(windowCplx.size());
  }

  BundleStats delta;
  delta.requests = 1;
  delta.generated = static_cast<std::uint64_t>(res.generated);
  delta.legal = static_cast<std::uint64_t>(res.legal);
  delta.unique = static_cast<std::uint64_t>(res.uniqueTotal);

  try {
    if (req.materialize && !window.empty()) {
      const core::MaterializeResult mat =
          core::materialize(window, job.bundle->solver(),
                            job.bundle->geomChecker(), job.rng,
                            req.maxClips);
      res.attempted = mat.attempted;
      res.solved = mat.solved;
      res.drcClean = mat.drcClean;
      delta.solved = static_cast<std::uint64_t>(mat.solved);
      delta.drcClean = static_cast<std::uint64_t>(mat.drcClean);
    }
  } catch (...) {
    metrics_.recordBundle(res.bundle, delta);
    job.promise.set_exception(std::current_exception());
    return;
  }

  const auto elapsed = std::chrono::steady_clock::now() - job.enqueued;
  res.latencyMs =
      std::chrono::duration<double, std::milli>(elapsed).count();
  metrics_.latencyMs().observe(res.latencyMs);
  metrics_.recordBundle(res.bundle, delta);
  job.promise.set_value(std::move(res));
}

void Batcher::stop() {
  {
    LockGuard lock(mutex_);
    if (!started_) return;
    stopping_ = true;
  }
  cv_.notifyAll();
  if (worker_.joinable()) worker_.join();
  LockGuard lock(mutex_);
  started_ = false;
}

}  // namespace dp::serve
