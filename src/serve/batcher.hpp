#pragma once

/// \file batcher.hpp
/// The micro-batching request pipeline. Requests enter a bounded MPMC
/// queue (submit fails fast when full — the HTTP layer maps that to
/// 429 + Retry-After); a single batcher worker coalesces the latent
/// rows of pending same-bundle requests into shared decode batches and
/// runs decode + legality accounting on the global thread pool via the
/// core flow helpers.
///
/// Load shedding: a request may carry a deadlineMs budget. Jobs whose
/// budget expires while queued or between decode batches fail with
/// DeadlineExceeded instead of occupying decode capacity; every shed
/// is counted in Metrics (dp_shed_total). The serve.batcher.admit and
/// serve.batcher.decode fault sites inject admission rejections and
/// decode failures for chaos testing (common/fault.hpp).
///
/// Determinism contract: each request's latent plan is drawn on the
/// submit thread with a private Rng(seed), consuming the stream exactly
/// as the in-process flows do (core::planRandomLatents /
/// planCombineLatents / planGuidedLatents). Decode is row-independent
/// and accounting replays each request's rows in ascending order, so
/// the response is bit-identical to the in-process flow no matter how
/// requests are coalesced — and at any DP_THREADS.

#include <chrono>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/sync.hpp"
#include "serve/bundle.hpp"
#include "serve/metrics.hpp"

namespace dp::serve {

struct GenerateRequest {
  std::string bundle = "default";
  std::string flow = "random";  ///< random | combine | guided
  long count = 128;             ///< topologies to attempt
  int batchSize = 128;          ///< plan batch size (RNG parity knob)
  int arity = 2;                ///< combine flow: latents per sample
  std::uint64_t seed = 1;
  bool materialize = false;     ///< also solve Eq. (10) for unique set
  long maxClips = -1;           ///< materialization cap (-1 = all)
  long deadlineMs = 0;          ///< latency budget; 0 = unbounded
  // Complexity window filter on the unique set; 0 = unbounded.
  int minCx = 0;
  int maxCx = 0;
  int minCy = 0;
  int maxCy = 0;
};

struct GenerateResponse {
  std::string bundle;
  std::string version;
  std::string flow;
  std::uint64_t seed = 0;
  long generated = 0;
  long legal = 0;
  long uniqueTotal = 0;     ///< unique legal patterns, pre-window
  long uniqueInWindow = 0;  ///< after the complexity window filter
  double diversity = 0.0;   ///< Shannon H of the in-window set
  double meanCx = 0.0;
  double meanCy = 0.0;
  std::vector<std::uint64_t> patternHashes;  ///< sorted canonical hashes
  // Materialization (zeros unless requested).
  long attempted = 0;
  long solved = 0;
  long drcClean = 0;
  double latencyMs = 0.0;
  int decodeBatches = 0;  ///< coalesced batches this request rode in
};

struct SubmitResult {
  enum class Status { kAccepted, kQueueFull, kShuttingDown, kInvalid };
  Status status = Status::kInvalid;
  std::string error;                      ///< set unless accepted
  std::future<GenerateResponse> future;   ///< valid when accepted
};

/// Delivered through an accepted request's future when its deadlineMs
/// budget expired before the batcher finished it (the HTTP layer maps
/// this to 503 + Retry-After).
class DeadlineExceeded : public std::runtime_error {
 public:
  DeadlineExceeded() : std::runtime_error("deadline exceeded") {}
};

class Batcher {
 public:
  struct Config {
    int queueCapacity = 64;  ///< pending requests before backpressure
    int maxActive = 8;       ///< requests coalesced concurrently
    int decodeBatch = 128;   ///< rows per coalesced decode
    long maxCount = 200000;  ///< per-request attempt cap
  };

  Batcher(BundleRegistry& registry, Metrics& metrics, Config config);
  ~Batcher();

  Batcher(const Batcher&) = delete;
  Batcher& operator=(const Batcher&) = delete;

  /// Validates, plans the request's latents (on the calling thread),
  /// and enqueues it. Never blocks on a full queue.
  [[nodiscard]] SubmitResult submit(const GenerateRequest& request)
      DP_EXCLUDES(mutex_);

  /// Drains accepted requests, then joins the worker. Idempotent.
  void stop() DP_EXCLUDES(mutex_);

  [[nodiscard]] bool running() const DP_EXCLUDES(mutex_);
  [[nodiscard]] const Config& config() const { return config_; }

 private:
  struct Job {
    GenerateRequest request;
    std::shared_ptr<const Bundle> bundle;
    nn::Tensor latents;  ///< full latent plan (count, latentDim)
    Rng rng;             ///< post-plan stream (materialization draws)
    long offset = 0;     ///< rows decoded so far
    int decodeBatches = 0;
    core::GenerationResult result;
    std::promise<GenerateResponse> promise;
    std::chrono::steady_clock::time_point enqueued;
    /// Absolute budget expiry; meaningful only when hasDeadline.
    std::chrono::steady_clock::time_point deadline;
    bool hasDeadline = false;
  };

  void workerLoop() DP_EXCLUDES(mutex_);
  void runBatch();
  /// Fails every active job whose deadline has passed with
  /// DeadlineExceeded and drops it from the coalescing set.
  void shedExpired();
  void finalize(Job& job);

  BundleRegistry& registry_;
  Metrics& metrics_;
  Config config_;

  mutable Mutex mutex_;
  CondVar cv_;  ///< wakes the worker on submit/stop
  std::deque<std::unique_ptr<Job>> pending_ DP_GUARDED_BY(mutex_);
  bool stopping_ DP_GUARDED_BY(mutex_) = false;
  bool started_ DP_GUARDED_BY(mutex_) = false;

  // Worker-private (no lock needed): jobs being coalesced.
  std::deque<std::unique_ptr<Job>> active_;
  std::thread worker_;
};

}  // namespace dp::serve
