#include "serve/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "common/fault.hpp"

namespace dp::serve {

namespace {

/// Prometheus label-safe float formatting ("+Inf" for infinity).
std::string num(double v) {
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

}  // namespace

Histogram::Histogram(std::vector<double> upperBounds)
    : bounds_(std::move(upperBounds)), buckets_(bounds_.size() + 1) {
  if (!std::is_sorted(bounds_.begin(), bounds_.end()))
    throw std::invalid_argument("Histogram: bounds must be sorted");
}

void Histogram::observe(double value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const auto idx = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

std::vector<std::uint64_t> Histogram::counts() const {
  std::vector<std::uint64_t> out(buckets_.size());
  for (std::size_t i = 0; i < buckets_.size(); ++i)
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  return out;
}

double Histogram::sum() const {
  return sum_.load(std::memory_order_relaxed);
}

double Histogram::mean() const {
  const std::uint64_t n = count();
  return n > 0 ? sum() / static_cast<double>(n) : 0.0;
}

double Histogram::quantile(double q) const {
  const auto cts = counts();
  std::uint64_t total = 0;
  for (const auto c : cts) total += c;
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(total);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < cts.size(); ++i) {
    cumulative += cts[i];
    if (static_cast<double>(cumulative) < rank) continue;
    if (i == cts.size() - 1)  // +Inf bucket: report its lower edge
      return bounds_.empty() ? 0.0 : bounds_.back();
    const double hi = bounds_[i];
    const double lo = i == 0 ? 0.0 : bounds_[i - 1];
    const auto inBucket = static_cast<double>(cts[i]);
    const double below = static_cast<double>(cumulative) - inBucket;
    if (inBucket <= 0.0) return hi;
    return lo + (hi - lo) * ((rank - below) / inBucket);
  }
  return bounds_.empty() ? 0.0 : bounds_.back();
}

Metrics::Metrics()
    : batchOccupancy_({1, 2, 3, 4, 6, 8, 12, 16, 24, 32}),
      latencyMs_({1,    2,    5,     10,    25,    50,   100,  250,
                  500,  1000, 2500,  5000,  10000, 30000}) {}

void Metrics::countRequest(const std::string& route, int status) {
  LockGuard lock(mutex_);
  ++requests_[{route, status}];
}

void Metrics::recordBundle(const std::string& bundle,
                           const BundleStats& delta) {
  LockGuard lock(mutex_);
  BundleStats& s = bundles_[bundle];
  s.requests += delta.requests;
  s.generated += delta.generated;
  s.legal += delta.legal;
  s.unique += delta.unique;
  s.solved += delta.solved;
  s.drcClean += delta.drcClean;
}

void Metrics::recordStage(const std::string& stage, std::uint64_t items,
                          double seconds) {
  LockGuard lock(mutex_);
  StageCounter& s = stages_[stage];
  s.items += items;
  s.seconds += seconds;
}

std::map<std::string, StageCounter> Metrics::stageTotals() const {
  LockGuard lock(mutex_);
  return stages_;
}

void Metrics::recordTrain(const TrainCounters& delta) {
  LockGuard lock(mutex_);
  train_.steps += delta.steps;
  train_.rollbacks += delta.rollbacks;
  train_.nanEvents += delta.nanEvents;
  train_.checkpointsSaved += delta.checkpointsSaved;
  train_.resumes += delta.resumes;
}

TrainCounters Metrics::trainTotals() const {
  LockGuard lock(mutex_);
  return train_;
}

void Metrics::countShed(const std::string& reason) {
  LockGuard lock(mutex_);
  ++shed_[reason];
}

std::uint64_t Metrics::shedTotal() const {
  LockGuard lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& [reason, count] : shed_) total += count;
  return total;
}

std::uint64_t Metrics::requestsTotal() const {
  LockGuard lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& [key, count] : requests_) total += count;
  return total;
}

std::uint64_t Metrics::errorsTotal() const {
  LockGuard lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& [key, count] : requests_)
    if (key.second >= 400) total += count;
  return total;
}

std::string Metrics::renderPrometheus() const {
  std::string out;
  out.reserve(4096);
  const auto line = [&out](const std::string& s) {
    out += s;
    out += '\n';
  };

  // Snapshot the guarded maps, then render without the lock: keeps the
  // critical section tiny and keeps every guarded access inside this
  // annotated function body (the render lambdas below capture only the
  // local copies, which the thread-safety analysis cannot check).
  std::map<std::pair<std::string, int>, std::uint64_t> requests;
  std::map<std::string, BundleStats> bundles;
  std::map<std::string, std::uint64_t> shed;
  std::map<std::string, StageCounter> stages;
  TrainCounters train;
  {
    LockGuard lock(mutex_);
    requests = requests_;
    bundles = bundles_;
    shed = shed_;
    stages = stages_;
    train = train_;
  }

  line("# HELP dp_requests_total HTTP requests by route and status.");
  line("# TYPE dp_requests_total counter");
  for (const auto& [key, count] : requests)
    line("dp_requests_total{route=\"" + key.first + "\",status=\"" +
         std::to_string(key.second) + "\"} " + std::to_string(count));

  line("# HELP dp_bundle_requests_total Generate requests per bundle.");
  line("# TYPE dp_bundle_requests_total counter");
  const auto bundleCounter = [&](const std::string& name,
                                 std::uint64_t BundleStats::*field) {
    for (const auto& [bundle, stats] : bundles)
      line(name + "{bundle=\"" + bundle + "\"} " +
           std::to_string(stats.*field));
  };
  bundleCounter("dp_bundle_requests_total", &BundleStats::requests);
  line("# HELP dp_bundle_generated_total Topologies decoded per bundle.");
  line("# TYPE dp_bundle_generated_total counter");
  bundleCounter("dp_bundle_generated_total", &BundleStats::generated);
  line("# HELP dp_bundle_legal_total Legal topologies per bundle.");
  line("# TYPE dp_bundle_legal_total counter");
  bundleCounter("dp_bundle_legal_total", &BundleStats::legal);
  line("# HELP dp_bundle_unique_total Unique legal patterns per bundle.");
  line("# TYPE dp_bundle_unique_total counter");
  bundleCounter("dp_bundle_unique_total", &BundleStats::unique);
  line("# HELP dp_bundle_solved_total Materialized Eq.10 solves.");
  line("# TYPE dp_bundle_solved_total counter");
  bundleCounter("dp_bundle_solved_total", &BundleStats::solved);
  line("# HELP dp_bundle_drc_clean_total DRC-clean materialized clips.");
  line("# TYPE dp_bundle_drc_clean_total counter");
  bundleCounter("dp_bundle_drc_clean_total", &BundleStats::drcClean);
  line("# HELP dp_bundle_drc_clean_fraction DRC-clean / solved clips.");
  line("# TYPE dp_bundle_drc_clean_fraction gauge");
  for (const auto& [bundle, stats] : bundles) {
    const double frac =
        stats.solved > 0 ? static_cast<double>(stats.drcClean) /
                               static_cast<double>(stats.solved)
                         : 0.0;
    line("dp_bundle_drc_clean_fraction{bundle=\"" + bundle + "\"} " +
         num(frac));
  }

  if (!stages.empty()) {
    line("# HELP dp_pipeline_stage_items_total Items per pipeline stage.");
    line("# TYPE dp_pipeline_stage_items_total counter");
    for (const auto& [stage, counter] : stages)
      line("dp_pipeline_stage_items_total{stage=\"" + stage + "\"} " +
           std::to_string(counter.items));
    line(
        "# HELP dp_pipeline_stage_seconds_total Wall-clock seconds per "
        "pipeline stage.");
    line("# TYPE dp_pipeline_stage_seconds_total counter");
    for (const auto& [stage, counter] : stages)
      line("dp_pipeline_stage_seconds_total{stage=\"" + stage + "\"} " +
           num(counter.seconds));
  }

  if (train.steps > 0 || train.nanEvents > 0 || train.resumes > 0) {
    line("# HELP dp_train_steps_total Harnessed training steps run.");
    line("# TYPE dp_train_steps_total counter");
    line("dp_train_steps_total " + std::to_string(train.steps));
    line("# HELP dp_train_rollbacks_total Divergence rollbacks taken.");
    line("# TYPE dp_train_rollbacks_total counter");
    line("dp_train_rollbacks_total " + std::to_string(train.rollbacks));
    line(
        "# HELP dp_train_nan_events_total Non-finite loss/gradient "
        "detections.");
    line("# TYPE dp_train_nan_events_total counter");
    line("dp_train_nan_events_total " + std::to_string(train.nanEvents));
    line("# HELP dp_train_checkpoints_saved_total Checkpoints sealed.");
    line("# TYPE dp_train_checkpoints_saved_total counter");
    line("dp_train_checkpoints_saved_total " +
         std::to_string(train.checkpointsSaved));
    line("# HELP dp_train_resumes_total Runs resumed from a checkpoint.");
    line("# TYPE dp_train_resumes_total counter");
    line("dp_train_resumes_total " + std::to_string(train.resumes));
  }

  line("# HELP dp_shed_total Requests shed by reason.");
  line("# TYPE dp_shed_total counter");
  for (const auto& [reason, count] : shed)
    line("dp_shed_total{reason=\"" + reason + "\"} " +
         std::to_string(count));

  // Fault-injection observability: per-site call/fire counters, so a
  // chaos run's /metrics shows exactly which injected failures drove
  // the shed and error counters above.
  const auto faultCounters = dp::faults::counters();
  if (!faultCounters.empty()) {
    line("# HELP dp_fault_calls_total Guarded calls per fault site.");
    line("# TYPE dp_fault_calls_total counter");
    for (const auto& [site, counters] : faultCounters)
      line("dp_fault_calls_total{site=\"" + site + "\"} " +
           std::to_string(counters.calls));
    line("# HELP dp_fault_fires_total Injected failures per fault site.");
    line("# TYPE dp_fault_fires_total counter");
    for (const auto& [site, counters] : faultCounters)
      line("dp_fault_fires_total{site=\"" + site + "\"} " +
           std::to_string(counters.fires));
  }

  line("# HELP dp_queue_depth Pending generate requests.");
  line("# TYPE dp_queue_depth gauge");
  line("dp_queue_depth " + std::to_string(queueDepth()));

  line("# HELP dp_connections_open Open HTTP connections.");
  line("# TYPE dp_connections_open gauge");
  line("dp_connections_open " + std::to_string(connectionsOpen()));
  line("# HELP dp_connections_total Accepted HTTP connections.");
  line("# TYPE dp_connections_total counter");
  line("dp_connections_total " + std::to_string(connectionsTotal()));
  line(
      "# HELP dp_keepalive_reuses_total Requests served on an "
      "already-used keep-alive connection.");
  line("# TYPE dp_keepalive_reuses_total counter");
  line("dp_keepalive_reuses_total " + std::to_string(keepaliveReuses()));
  if (workerId() >= 0) {
    line("# HELP dp_worker_id Shared-nothing serve worker id.");
    line("# TYPE dp_worker_id gauge");
    line("dp_worker_id " + std::to_string(workerId()));
  }

  const auto histogram = [&](const std::string& name, const Histogram& h,
                             const std::string& help) {
    line("# HELP " + name + " " + help);
    line("# TYPE " + name + " histogram");
    const auto cts = h.counts();
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < h.bounds().size(); ++i) {
      cumulative += cts[i];
      line(name + "_bucket{le=\"" + num(h.bounds()[i]) + "\"} " +
           std::to_string(cumulative));
    }
    cumulative += cts.back();
    line(name + "_bucket{le=\"+Inf\"} " + std::to_string(cumulative));
    line(name + "_sum " + num(h.sum()));
    line(name + "_count " + std::to_string(h.count()));
  };
  histogram("dp_batch_occupancy", batchOccupancy_,
            "Requests served per coalesced decode batch.");
  histogram("dp_request_latency_ms", latencyMs_,
            "Generate request latency, milliseconds.");

  line("# HELP dp_request_latency_ms_p50 Median generate latency (ms).");
  line("# TYPE dp_request_latency_ms_p50 gauge");
  line("dp_request_latency_ms_p50 " + num(latencyMs_.quantile(0.5)));
  line("# HELP dp_request_latency_ms_p99 p99 generate latency (ms).");
  line("# TYPE dp_request_latency_ms_p99 gauge");
  line("dp_request_latency_ms_p99 " + num(latencyMs_.quantile(0.99)));
  return out;
}

}  // namespace dp::serve
