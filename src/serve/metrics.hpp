#pragma once

/// \file metrics.hpp
/// Serving metrics with Prometheus text exposition (§ "Metrics" of
/// DESIGN.md §8): request/error counters per route and status, a
/// batch-occupancy histogram (how many requests each coalesced decode
/// served), queue depth, request latency quantiles, and per-bundle
/// generation quality counters (DRC-clean fraction). All hot-path
/// updates are lock-free atomics or a short mutex on a small map.

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/sync.hpp"

namespace dp::serve {

/// Fixed-bucket histogram (cumulative-bucket semantics like Prometheus:
/// bucket i counts observations <= bounds[i], plus a +Inf bucket).
class Histogram {
 public:
  explicit Histogram(std::vector<double> upperBounds);

  void observe(double value);

  [[nodiscard]] const std::vector<double>& bounds() const {
    return bounds_;
  }
  /// Per-bucket (non-cumulative) counts, including the +Inf bucket as
  /// the last entry.
  [[nodiscard]] std::vector<std::uint64_t> counts() const;
  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const;
  [[nodiscard]] double mean() const;

  /// Quantile estimate by linear interpolation inside the bucket that
  /// crosses rank q*count (the Prometheus histogram_quantile rule).
  /// Returns 0 when empty.
  [[nodiscard]] double quantile(double q) const;

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> buckets_;  // size bounds+1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Per-stage throughput totals of the massive pipeline (DESIGN.md
/// §12): items processed and wall-clock seconds spent per stage.
struct StageCounter {
  std::uint64_t items = 0;
  double seconds = 0.0;
};

/// Training-harness robustness counters (DESIGN.md §16), accumulated
/// across every harnessed run this process drove (bundle builds).
struct TrainCounters {
  std::uint64_t steps = 0;           ///< optimizer steps completed
  std::uint64_t rollbacks = 0;       ///< divergence rollbacks taken
  std::uint64_t nanEvents = 0;       ///< non-finite loss/grad detections
  std::uint64_t checkpointsSaved = 0;
  std::uint64_t resumes = 0;         ///< runs continued from a checkpoint
};

/// Per-bundle generation quality counters.
struct BundleStats {
  std::uint64_t requests = 0;
  std::uint64_t generated = 0;
  std::uint64_t legal = 0;
  std::uint64_t unique = 0;
  std::uint64_t solved = 0;
  std::uint64_t drcClean = 0;
};

class Metrics {
 public:
  Metrics();

  void countRequest(const std::string& route, int status)
      DP_EXCLUDES(mutex_);
  void recordBundle(const std::string& bundle, const BundleStats& delta)
      DP_EXCLUDES(mutex_);

  /// Folds a massive-pipeline stage delta (items processed, seconds
  /// spent) into the dp_pipeline_stage_* exposition. Stages appear in
  /// the output once they have recorded at least one delta.
  void recordStage(const std::string& stage, std::uint64_t items,
                   double seconds) DP_EXCLUDES(mutex_);
  [[nodiscard]] std::map<std::string, StageCounter> stageTotals() const
      DP_EXCLUDES(mutex_);

  /// Folds one harnessed training run's counters into the dp_train_*
  /// exposition (steps, rollbacks, NaN events, checkpoints, resumes).
  void recordTrain(const TrainCounters& delta) DP_EXCLUDES(mutex_);
  [[nodiscard]] TrainCounters trainTotals() const DP_EXCLUDES(mutex_);

  /// Counts one load-shed request. `reason` labels the shed class
  /// (queue_full, deadline, fault) in the dp_shed_total exposition.
  void countShed(const std::string& reason) DP_EXCLUDES(mutex_);
  [[nodiscard]] std::uint64_t shedTotal() const DP_EXCLUDES(mutex_);

  void setQueueDepth(long depth) {
    queueDepth_.store(depth, std::memory_order_relaxed);
  }
  [[nodiscard]] long queueDepth() const {
    return queueDepth_.load(std::memory_order_relaxed);
  }

  // Connection accounting for the event-loop front end (DESIGN.md
  // §13): dp_connections_open tracks live sockets, dp_connections_total
  // counts every accept, and dp_keepalive_reuses_total counts requests
  // served on an already-used connection (request 2..n of a keep-alive
  // session) — the direct measure of how much TCP setup the keep-alive
  // path is saving.
  void connectionOpened() {
    connectionsOpen_.fetch_add(1, std::memory_order_relaxed);
    connectionsTotal_.fetch_add(1, std::memory_order_relaxed);
  }
  void connectionClosed() {
    connectionsOpen_.fetch_sub(1, std::memory_order_relaxed);
  }
  void keepaliveReuse() {
    keepaliveReuses_.fetch_add(1, std::memory_order_relaxed);
  }
  [[nodiscard]] long connectionsOpen() const {
    return connectionsOpen_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t connectionsTotal() const {
    return connectionsTotal_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t keepaliveReuses() const {
    return keepaliveReuses_.load(std::memory_order_relaxed);
  }

  /// Stamps this process's worker id into the exposition (dp_worker_id
  /// gauge); the load balancer additionally injects a worker="<id>"
  /// label into every aggregated sample line. -1 (default) = not a
  /// pool worker, gauge omitted.
  void setWorkerId(int id) {
    workerId_.store(id, std::memory_order_relaxed);
  }
  [[nodiscard]] int workerId() const {
    return workerId_.load(std::memory_order_relaxed);
  }

  Histogram& batchOccupancy() { return batchOccupancy_; }
  Histogram& latencyMs() { return latencyMs_; }
  [[nodiscard]] const Histogram& batchOccupancy() const {
    return batchOccupancy_;
  }
  [[nodiscard]] const Histogram& latencyMs() const { return latencyMs_; }

  [[nodiscard]] std::uint64_t requestsTotal() const DP_EXCLUDES(mutex_);
  [[nodiscard]] std::uint64_t errorsTotal() const DP_EXCLUDES(mutex_);

  /// Prometheus text exposition format (version 0.0.4).
  [[nodiscard]] std::string renderPrometheus() const
      DP_EXCLUDES(mutex_);

 private:
  mutable Mutex mutex_;
  std::map<std::pair<std::string, int>, std::uint64_t> requests_
      DP_GUARDED_BY(mutex_);
  std::map<std::string, BundleStats> bundles_ DP_GUARDED_BY(mutex_);
  std::map<std::string, std::uint64_t> shed_ DP_GUARDED_BY(mutex_);
  std::map<std::string, StageCounter> stages_ DP_GUARDED_BY(mutex_);
  TrainCounters train_ DP_GUARDED_BY(mutex_);
  std::atomic<long> queueDepth_{0};
  std::atomic<long> connectionsOpen_{0};
  std::atomic<std::uint64_t> connectionsTotal_{0};
  std::atomic<std::uint64_t> keepaliveReuses_{0};
  std::atomic<int> workerId_{-1};
  Histogram batchOccupancy_;
  Histogram latencyMs_;
};

}  // namespace dp::serve
