#include "serve/lb.hpp"

#include <arpa/inet.h>
#include <dirent.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <stdexcept>
#include <thread>

#include "common/fault.hpp"
#include "common/thread_pool.hpp"
#include "io/json.hpp"
#include "serve/server.hpp"

namespace dp::serve {

using dp::io::Json;

namespace {

std::string toLower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return s;
}

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t')) ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t')) --e;
  return s.substr(b, e - b);
}

bool pipeWriteAll(int fd, const std::string& data) {
  static FaultSite pipeWriteFault("lb.pipe.write");
  if (pipeWriteFault.shouldFail()) return false;
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        ::write(fd, data.data() + sent, data.size() - sent);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return false;
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

/// Reads one '\n'-terminated line from a pipe, buffering leftovers in
/// `buffer`. False on EOF, error or timeout.
bool readLinePipe(int fd, std::string& buffer, std::string& out,
                  int timeoutMs) {
  static FaultSite pipeReadFault("lb.pipe.read");
  if (pipeReadFault.shouldFail()) return false;
  for (;;) {
    const std::size_t nl = buffer.find('\n');
    if (nl != std::string::npos) {
      out = buffer.substr(0, nl);
      buffer.erase(0, nl + 1);
      return true;
    }
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = POLLIN;
    const int pr = ::poll(&pfd, 1, timeoutMs);
    if (pr < 0 && errno == EINTR) continue;
    if (pr <= 0) return false;  // timeout or error
    char chunk[512];
    const ssize_t n = ::read(fd, chunk, sizeof chunk);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return false;  // EOF
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
}

/// Closes every descriptor above stderr that is not in `keep` — run in
/// a freshly forked child so inherited listen sockets, epoll fds and
/// sibling life pipes do not survive into it.
void closeFdsExcept(const std::vector<int>& keep) {
  std::vector<int> doomed;
  DIR* dir = ::opendir("/proc/self/fd");
  if (dir == nullptr) return;
  while (dirent* entry = ::readdir(dir)) {
    if (entry->d_name[0] < '0' || entry->d_name[0] > '9') continue;
    const int fd = std::atoi(entry->d_name);
    if (fd <= 2 || fd == ::dirfd(dir)) continue;
    if (std::find(keep.begin(), keep.end(), fd) == keep.end())
      doomed.push_back(fd);
  }
  ::closedir(dir);
  for (const int fd : doomed) ::close(fd);
}

/// Lifts the soft fd limit to the hard one: a 4-worker deployment plus
/// thousands of front-end connections blows through the common 1024
/// default soft limit long before the hard limit.
void raiseFdLimit() {
  rlimit rl{};
  if (::getrlimit(RLIMIT_NOFILE, &rl) != 0) return;
  rl.rlim_cur = rl.rlim_max;
  ::setrlimit(RLIMIT_NOFILE, &rl);
}

/// Parses an HTTP response head ("HTTP/1.1 200 OK" + headers).
bool parseResponseHead(const std::string& raw, int& status,
                       std::map<std::string, std::string>& headers,
                       std::size_t& bodyStart) {
  const std::size_t headEnd = raw.find("\r\n\r\n");
  if (headEnd == std::string::npos) return false;
  bodyStart = headEnd + 4;
  const std::size_t lineEnd = raw.find("\r\n");
  const std::string statusLine = raw.substr(0, lineEnd);
  if (statusLine.rfind("HTTP/1.", 0) != 0) return false;
  const std::size_t sp1 = statusLine.find(' ');
  if (sp1 == std::string::npos || sp1 + 4 > statusLine.size())
    return false;
  try {
    status = std::stoi(statusLine.substr(sp1 + 1, 3));
  } catch (const std::exception&) {
    return false;
  }
  std::size_t pos = lineEnd + 2;
  while (pos < headEnd) {
    std::size_t next = raw.find("\r\n", pos);
    if (next == std::string::npos || next > headEnd) next = headEnd;
    const std::string line = raw.substr(pos, next - pos);
    const std::size_t colon = line.find(':');
    if (colon == std::string::npos) return false;
    headers[toLower(trim(line.substr(0, colon)))] =
        trim(line.substr(colon + 1));
    pos = next + 2;
  }
  return true;
}

}  // namespace

// ---------------------------------------------------------------------------
// HashRing
// ---------------------------------------------------------------------------

std::uint64_t HashRing::hashKey(const std::string& key) {
  std::uint64_t h = 0x4cf5ad432745937fULL;
  for (const char c : key)
    h = splitmix64(h ^ static_cast<unsigned char>(c));
  return splitmix64(h ^ key.size());
}

void HashRing::rebuild(const std::vector<int>& workerIds, int vnodes) {
  ring_.clear();
  std::vector<int> distinct = workerIds;
  std::sort(distinct.begin(), distinct.end());
  distinct.erase(std::unique(distinct.begin(), distinct.end()),
                 distinct.end());
  workers_ = distinct.size();
  for (const int id : distinct) {
    std::uint64_t point =
        splitmix64(static_cast<std::uint64_t>(id) + 0x9e3779b9ULL);
    for (int v = 0; v < vnodes; ++v) {
      point = splitmix64(point);
      // Last writer wins on the (astronomically unlikely) collision;
      // both candidates are valid owners, so routing stays total.
      ring_[point] = id;
    }
  }
}

std::vector<int> HashRing::route(const std::string& key) const {
  std::vector<int> order;
  if (ring_.empty()) return order;
  order.reserve(workers_);
  const std::uint64_t h = hashKey(key);
  auto it = ring_.lower_bound(h);
  for (std::size_t steps = 0;
       steps < ring_.size() && order.size() < workers_; ++steps) {
    if (it == ring_.end()) it = ring_.begin();
    if (std::find(order.begin(), order.end(), it->second) == order.end())
      order.push_back(it->second);
    ++it;
  }
  return order;
}

// ---------------------------------------------------------------------------
// injectLabel
// ---------------------------------------------------------------------------

std::string injectLabel(const std::string& line, const std::string& key,
                        const std::string& value) {
  if (line.empty() || line[0] == '#') return line;
  const std::string label = key + "=\"" + value + "\"";
  const std::size_t space = line.find(' ');
  if (space == std::string::npos) return line;  // not a sample line
  const std::size_t brace = line.find('{');
  if (brace == std::string::npos || brace > space) {
    // name value  ->  name{key="value"} value
    return line.substr(0, space) + "{" + label + "}" +
           line.substr(space);
  }
  // name{a="b"} value  ->  name{key="value",a="b"} value
  const bool emptyLabels = brace + 1 < line.size() &&
                           line[brace + 1] == '}';
  return line.substr(0, brace + 1) + label + (emptyLabels ? "" : ",") +
         line.substr(brace + 1);
}

// ---------------------------------------------------------------------------
// BackendPool
// ---------------------------------------------------------------------------

int BackendPool::acquire(int workerId, int port, bool* fromPool) {
  if (fromPool) *fromPool = false;
  {
    LockGuard lock(mutex_);
    const auto it = idle_.find({workerId, port});
    if (it != idle_.end() && !it->second.empty()) {
      const int fd = it->second.back();
      it->second.pop_back();
      if (fromPool) *fromPool = true;
      return fd;
    }
  }
  static FaultSite connectFault("lb.pool.connect");
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  if (connectFault.shouldFail()) {
    ::close(fd);
    return -1;
  }
  timeval tv{};
  tv.tv_sec = timeoutSec_;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) <
      0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

void BackendPool::release(int workerId, int port, int fd, bool reusable) {
  if (fd < 0) return;
  if (!reusable) {
    ::close(fd);
    return;
  }
  LockGuard lock(mutex_);
  idle_[{workerId, port}].push_back(fd);
}

void BackendPool::clear() {
  LockGuard lock(mutex_);
  for (auto& [key, fds] : idle_)
    for (const int fd : fds) ::close(fd);
  idle_.clear();
}

// ---------------------------------------------------------------------------
// LoadBalancer
// ---------------------------------------------------------------------------

namespace {

EventLoopServer::Config lbFrontConfig(EventLoopServer::Config config,
                                      Metrics* metrics) {
  config.metrics = metrics;
  return config;
}

}  // namespace

LoadBalancer::LoadBalancer(Config config)
    : config_(std::move(config)),
      http_(lbFrontConfig(config_.http, &metrics_),
            [this](const HttpRequest& req) { return handle(req); }),
      pool_(config_.backendTimeoutSec) {}

LoadBalancer::~LoadBalancer() { stop(); }

void LoadBalancer::start() { http_.start(); }

void LoadBalancer::stop() {
  http_.stop();
  pool_.clear();
}

void LoadBalancer::setWorkers(const std::vector<Backend>& workers) {
  LockGuard lock(workersMutex_);
  workers_ = workers;
  std::vector<int> ids;
  ids.reserve(workers.size());
  for (const Backend& b : workers) ids.push_back(b.id);
  ring_.rebuild(ids, config_.vnodes);
}

std::size_t LoadBalancer::workerCount() const {
  LockGuard lock(workersMutex_);
  return workers_.size();
}

std::vector<LoadBalancer::Backend> LoadBalancer::candidates(
    const std::string& key) const {
  LockGuard lock(workersMutex_);
  std::vector<Backend> out;
  for (const int id : ring_.route(key))
    for (const Backend& b : workers_)
      if (b.id == id) {
        out.push_back(b);
        break;
      }
  return out;
}

LoadBalancer::Exchange LoadBalancer::exchange(
    const Backend& backend, const HttpRequest& request) {
  Exchange out;
  HttpRequest fwd;
  fwd.method = request.method;
  fwd.target = request.target;
  fwd.query = request.query;
  fwd.body = request.body;
  fwd.headers = request.headers;
  // serializeRequest writes its own framing headers.
  fwd.headers.erase("content-length");
  fwd.headers.erase("connection");
  fwd.headers["host"] = "127.0.0.1";
  const std::string wire = serializeRequest(fwd, true);

  // A failed exchange over a POOLED fd is retried on this same backend
  // with a fresh connection first (the keep-alive socket may simply
  // have gone stale); a fresh-connection failure means the worker is
  // actually unreachable and the caller moves down the ring.
  for (int attempt = 0; attempt < 4; ++attempt) {
    bool fromPool = false;
    const int fd = pool_.acquire(backend.id, backend.port, &fromPool);
    if (fd < 0) return out;
    if (!sendAll(fd, wire)) {
      ::close(fd);
      if (fromPool) continue;
      return out;
    }
    std::string buffer;
    char chunk[16384];
    int status = 0;
    std::map<std::string, std::string> headers;
    std::size_t bodyStart = 0;
    bool headDone = false;
    bool broken = false;
    while (!headDone) {
      if (buffer.size() > config_.http.maxHeaderBytes +
                              config_.http.maxBodyBytes) {
        broken = true;
        break;
      }
      if (buffer.find("\r\n\r\n") != std::string::npos) {
        if (!parseResponseHead(buffer, status, headers, bodyStart))
          broken = true;
        headDone = true;
        break;
      }
      const ssize_t n = recvSome(fd, chunk, sizeof chunk);
      if (n <= 0) {
        broken = true;
        break;
      }
      buffer.append(chunk, static_cast<std::size_t>(n));
    }
    std::size_t contentLength = 0;
    if (!broken) {
      if (const auto it = headers.find("content-length");
          it != headers.end()) {
        try {
          contentLength = std::stoull(it->second);
        } catch (const std::exception&) {
          broken = true;
        }
      }
      while (!broken && buffer.size() < bodyStart + contentLength) {
        const ssize_t n = recvSome(fd, chunk, sizeof chunk);
        if (n <= 0) {
          broken = true;
          break;
        }
        buffer.append(chunk, static_cast<std::size_t>(n));
      }
    }
    if (broken) {
      ::close(fd);
      if (fromPool) continue;  // stale keep-alive socket: retry fresh
      return out;
    }
    out.complete = true;
    out.response.status = status;
    if (const auto it = headers.find("content-type");
        it != headers.end())
      out.response.contentType = it->second;
    out.response.body = buffer.substr(bodyStart, contentLength);
    const auto conn = headers.find("connection");
    out.reusable =
        conn == headers.end() || toLower(conn->second) != "close";
    pool_.release(backend.id, backend.port, fd, out.reusable);
    return out;
  }
  return out;
}

HttpResponse LoadBalancer::forward(const std::string& routeKey,
                                   const HttpRequest& request) {
  for (int pass = 0; pass < config_.retryPasses; ++pass) {
    if (pass > 0)  // exponential backoff: the supervisor reaps and
                   // respawns dead workers on a ~100ms maintenance
                   // tick, so later passes must outwait a fleet-wide
                   // crash, not just a single lost worker.
      std::this_thread::sleep_for(
          std::chrono::milliseconds(50L << (pass - 1)));
    // Re-snapshot each pass: a respawned worker has a new port.
    const std::vector<Backend> order = candidates(routeKey);
    for (const Backend& backend : order) {
      Exchange ex = exchange(backend, request);
      if (ex.complete) return std::move(ex.response);
      retries_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  HttpResponse res;
  res.status = 502;
  res.body = "{\"error\":\"no backend available\"}";
  return res;
}

HttpResponse LoadBalancer::handle(const HttpRequest& request) {
  HttpResponse res;
  const auto methodIs = [&](const char* m) {
    return request.method == m;
  };
  if (request.target == "/healthz") {
    res = methodIs("GET") ? handleHealth() : HttpResponse{};
    if (!methodIs("GET")) res.status = 405;
  } else if (request.target == "/metrics") {
    res = methodIs("GET") ? handleMetrics() : HttpResponse{};
    if (!methodIs("GET")) res.status = 405;
  } else if (request.target == "/bundles") {
    if (methodIs("GET")) {
      res = forward("", request);
    } else {
      res.status = 405;
    }
  } else if (request.target == "/generate") {
    if (methodIs("POST")) {
      res = handleGenerate(request);
    } else {
      res.status = 405;
    }
  } else if (request.target == "/admin/reload") {
    if (methodIs("POST")) {
      res = handleReload();
    } else {
      res.status = 405;
    }
  } else {
    res.status = 404;
    res.body = "{\"error\":\"no such route\"}";
  }
  if (res.status == 405 && res.body.empty())
    res.body = "{\"error\":\"method not allowed\"}";
  metrics_.countRequest(request.target, res.status);
  return res;
}

HttpResponse LoadBalancer::handleGenerate(const HttpRequest& request) {
  // Route by bundle name: a bundle's source latents and decode cache
  // stay hot on its home worker. A malformed body still forwards (the
  // worker owns the 400), routed by the empty key.
  std::string key;
  try {
    const Json j = Json::parse(request.body);
    if (j.isObject() && j.has("bundle"))
      key = j.at("bundle").asString();
  } catch (const std::exception&) {
  }
  return forward(key, request);
}

HttpResponse LoadBalancer::handleHealth() {
  HttpRequest probe;
  probe.method = "GET";
  probe.target = "/healthz";
  std::vector<Backend> backends;
  {
    LockGuard lock(workersMutex_);
    backends = workers_;
  }
  Json arr = Json::array();
  int alive = 0;
  for (const Backend& b : backends) {
    Exchange ex = exchange(b, probe);
    Json w = Json::object();
    w.set("id", b.id);
    std::string state = "dead";
    if (ex.complete) {
      state = "unknown";
      try {
        const Json j = Json::parse(ex.response.body);
        if (j.isObject() && j.has("status"))
          state = j.at("status").asString();
      } catch (const std::exception&) {
      }
      if (ex.response.status == 200) ++alive;
    }
    w.set("status", state);
    arr.push(std::move(w));
  }
  Json j = Json::object();
  j.set("status", alive > 0 ? "ready" : "unavailable");
  j.set("workersAlive", alive);
  j.set("workers", std::move(arr));
  HttpResponse res;
  res.body = j.dump();
  if (alive == 0) res.status = 503;
  return res;
}

HttpResponse LoadBalancer::handleMetrics() {
  HttpRequest probe;
  probe.method = "GET";
  probe.target = "/metrics";
  std::vector<Backend> backends;
  {
    LockGuard lock(workersMutex_);
    backends = workers_;
  }
  std::string workerSamples;
  int alive = 0;
  for (const Backend& b : backends) {
    Exchange ex = exchange(b, probe);
    if (!ex.complete || ex.response.status != 200) continue;
    ++alive;
    // Keep every worker sample, labeled; drop the per-worker HELP and
    // TYPE comments (the LB's own exposition already carries them for
    // the shared families).
    const std::string& body = ex.response.body;
    std::size_t pos = 0;
    while (pos < body.size()) {
      std::size_t nl = body.find('\n', pos);
      if (nl == std::string::npos) nl = body.size();
      const std::string line = body.substr(pos, nl - pos);
      pos = nl + 1;
      if (line.empty() || line[0] == '#') continue;
      workerSamples +=
          injectLabel(line, "worker", std::to_string(b.id)) + "\n";
    }
  }
  std::string out = metrics_.renderPrometheus();
  out += "# HELP dp_lb_workers_alive Workers answering the LB scrape.\n";
  out += "# TYPE dp_lb_workers_alive gauge\n";
  out += "dp_lb_workers_alive " + std::to_string(alive) + "\n";
  out += "# HELP dp_lb_retries_total Failed backend legs retried.\n";
  out += "# TYPE dp_lb_retries_total counter\n";
  out += "dp_lb_retries_total " +
         std::to_string(retries_.load(std::memory_order_relaxed)) +
         "\n";
  out += workerSamples;
  HttpResponse res;
  res.contentType = "text/plain; version=0.0.4";
  res.body = out;
  return res;
}

HttpResponse LoadBalancer::handleReload() {
  // Rolling reload: one worker at a time, strictly sequentially. Every
  // other worker keeps serving while one re-scans the bundle root, so
  // the fleet as a whole never stops answering (and a bad bundle
  // generation degrades workers one by one instead of all at once).
  HttpRequest probe;
  probe.method = "POST";
  probe.target = "/admin/reload";
  std::vector<Backend> backends;
  {
    LockGuard lock(workersMutex_);
    backends = workers_;
  }
  Json arr = Json::array();
  int reloaded = 0;
  for (const Backend& b : backends) {
    Exchange ex = exchange(b, probe);
    Json w = Json::object();
    w.set("id", b.id);
    w.set("status",
          ex.complete ? static_cast<long>(ex.response.status) : 0L);
    if (ex.complete && ex.response.status == 200) ++reloaded;
    arr.push(std::move(w));
  }
  Json j = Json::object();
  j.set("reloaded", reloaded);
  j.set("workers", std::move(arr));
  HttpResponse res;
  res.body = j.dump();
  if (reloaded == 0) res.status = 502;
  return res;
}

// ---------------------------------------------------------------------------
// WorkerPool
// ---------------------------------------------------------------------------

namespace {

/// Body of a forked serve worker: builds a PatternServer on an
/// ephemeral port, reports "port N" over the status pipe, serves until
/// the life pipe closes, then drains and exits without running static
/// destructors (the process shares its image with the supervisor).
[[noreturn]] void runWorkerChild(const WorkerPool::Options& options,
                                 int id, int statusFd, int lifeFd) {
  closeFdsExcept({statusFd, lifeFd});
  ::signal(SIGPIPE, SIG_IGN);
  try {
    if (options.workerThreads > 0)
      ThreadPool::setGlobalThreads(options.workerThreads);
    // Arm worker-scoped faults here, NOT via DP_FAULTS: the spec must
    // fire in the workers without also arming the LB front end.
    if (!options.faultSpec.empty())
      faults::armFromSpec(options.faultSpec);
    PatternServer::Config config;
    config.http.host = "127.0.0.1";
    config.http.port = 0;
    config.http.handlerThreads = options.handlerThreads;
    PatternServer server(config);
    if (!options.bundleRoot.empty())
      server.loadBundles(options.bundleRoot);
    server.metrics().setWorkerId(id);
    server.start();
    if (!pipeWriteAll(statusFd,
                  "port " + std::to_string(server.port()) + "\n"))
      std::_Exit(1);
    ::close(statusFd);
    // Chaos hook: a fired life fault behaves exactly like a closed
    // life pipe — the worker proceeds straight to orderly shutdown.
    static FaultSite lifeFault("lb.worker.life");
    char byte = 0;
    while (!lifeFault.shouldFail()) {
      const ssize_t n = ::read(lifeFd, &byte, 1);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) break;  // supervisor closed the life pipe: drain
    }
    server.stop();
  } catch (const std::exception&) {
    std::_Exit(1);
  }
  std::_Exit(0);
}

}  // namespace

bool WorkerPool::spawn(int id) {
  int statusPipe[2] = {-1, -1};
  int lifePipe[2] = {-1, -1};
  if (::pipe(statusPipe) != 0) return false;
  if (::pipe(lifePipe) != 0) {
    ::close(statusPipe[0]);
    ::close(statusPipe[1]);
    return false;
  }
  const pid_t pid = ::fork();
  if (pid < 0) {
    for (const int fd : {statusPipe[0], statusPipe[1], lifePipe[0],
                         lifePipe[1]})
      ::close(fd);
    return false;
  }
  if (pid == 0) {
    runWorkerChild(options_, id, statusPipe[1], lifePipe[0]);
  }
  ::close(statusPipe[1]);
  ::close(lifePipe[0]);

  std::string buffer;
  std::string line;
  int port = 0;
  if (readLinePipe(statusPipe[0], buffer, line, 60000) &&
      line.rfind("port ", 0) == 0) {
    try {
      port = std::stoi(line.substr(5));
    } catch (const std::exception&) {
      port = 0;
    }
  }
  ::close(statusPipe[0]);
  if (port <= 0) {
    ::kill(pid, SIGKILL);
    ::waitpid(pid, nullptr, 0);
    ::close(lifePipe[1]);
    return false;
  }

  const auto it = workers_.find(id);
  if (it != workers_.end() && it->second.lifeFd >= 0)
    ::close(it->second.lifeFd);
  Worker w;
  w.id = id;
  w.pid = pid;
  w.port = port;
  w.lifeFd = lifePipe[1];
  w.alive = true;
  workers_[id] = w;
  return true;
}

std::vector<int> WorkerPool::reap() {
  std::vector<int> dead;
  for (auto& [id, w] : workers_) {
    if (!w.alive) continue;
    const pid_t r =
        ::waitpid(static_cast<pid_t>(w.pid), nullptr, WNOHANG);
    if (r != static_cast<pid_t>(w.pid)) continue;
    w.alive = false;
    if (w.lifeFd >= 0) {
      ::close(w.lifeFd);
      w.lifeFd = -1;
    }
    dead.push_back(id);
  }
  return dead;
}

bool WorkerPool::kill(int id, int signal) {
  const auto it = workers_.find(id);
  if (it == workers_.end() || !it->second.alive) return false;
  return ::kill(static_cast<pid_t>(it->second.pid), signal) == 0;
}

void WorkerPool::stop() {
  // Ask every worker to drain (life-pipe EOF), give the cohort a
  // bounded grace window, then SIGKILL stragglers.
  for (auto& [id, w] : workers_) {
    if (w.lifeFd >= 0) {
      ::close(w.lifeFd);
      w.lifeFd = -1;
    }
  }
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(10);
  for (auto& [id, w] : workers_) {
    if (!w.alive) continue;
    for (;;) {
      const pid_t r =
          ::waitpid(static_cast<pid_t>(w.pid), nullptr, WNOHANG);
      if (r == static_cast<pid_t>(w.pid)) {
        w.alive = false;
        break;
      }
      if (std::chrono::steady_clock::now() > deadline) {
        ::kill(static_cast<pid_t>(w.pid), SIGKILL);
        ::waitpid(static_cast<pid_t>(w.pid), nullptr, 0);
        w.alive = false;
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  workers_.clear();
}

std::vector<WorkerPool::Worker> WorkerPool::workers() const {
  std::vector<Worker> out;
  out.reserve(workers_.size());
  for (const auto& [id, w] : workers_) out.push_back(w);
  return out;
}

std::vector<LoadBalancer::Backend> WorkerPool::backends() const {
  std::vector<LoadBalancer::Backend> out;
  for (const auto& [id, w] : workers_)
    if (w.alive) out.push_back({w.id, w.port});
  return out;
}

// ---------------------------------------------------------------------------
// Deployment
// ---------------------------------------------------------------------------

Deployment::Deployment() {
  int cmdPipe[2] = {-1, -1};
  int statusPipe[2] = {-1, -1};
  if (::pipe(cmdPipe) != 0) return;
  if (::pipe(statusPipe) != 0) {
    ::close(cmdPipe[0]);
    ::close(cmdPipe[1]);
    return;
  }
  const pid_t pid = ::fork();
  if (pid < 0) {
    for (const int fd :
         {cmdPipe[0], cmdPipe[1], statusPipe[0], statusPipe[1]})
      ::close(fd);
    return;
  }
  if (pid == 0) {
    ::close(cmdPipe[1]);
    ::close(statusPipe[0]);
    supervisorMain(cmdPipe[0], statusPipe[1]);
  }
  ::close(cmdPipe[0]);
  ::close(statusPipe[1]);
  supervisorPid_ = pid;
  cmdFd_ = cmdPipe[1];
  statusFd_ = statusPipe[0];
}

Deployment::~Deployment() {
  try {
    stop();
  } catch (const std::exception&) {
  }
}

void Deployment::sendCommand(const std::string& line) {
  if (cmdFd_ < 0)
    throw std::runtime_error("Deployment: supervisor gone");
  if (!pipeWriteAll(cmdFd_, line + "\n"))
    throw std::runtime_error("Deployment: supervisor pipe broken");
}

std::string Deployment::readStatusLine() {
  std::string line;
  if (!readLinePipe(statusFd_, statusBuffer_, line, 120000))
    throw std::runtime_error(
        "Deployment: supervisor stopped responding");
  return line;
}

void Deployment::launch(const Options& options) {
  if (!available())
    throw std::runtime_error("Deployment: supervisor fork failed");
  if (launched_)
    throw std::runtime_error("Deployment: already launched");
  if (options.workers < 1)
    throw std::invalid_argument("Deployment: workers must be >= 1");
  sendCommand("set root " + options.bundleRoot);
  sendCommand("set workers " + std::to_string(options.workers));
  sendCommand("set lbport " + std::to_string(options.lbPort));
  sendCommand("set hthreads " + std::to_string(options.handlerThreads));
  sendCommand("set wthreads " + std::to_string(options.workerThreads));
  if (!options.workerFaults.empty())
    sendCommand("set wfaults " + options.workerFaults);
  sendCommand("launch");
  for (;;) {
    const std::string line = readStatusLine();
    if (line == "ready") break;
    if (line.rfind("error ", 0) == 0)
      throw std::runtime_error("Deployment: " + line.substr(6));
    if (line.rfind("lb ", 0) == 0) lbPort_ = std::stoi(line.substr(3));
  }
  launched_ = true;
}

std::vector<Deployment::WorkerInfo> Deployment::queryWorkers() {
  sendCommand("workers");
  std::vector<WorkerInfo> out;
  for (;;) {
    const std::string line = readStatusLine();
    if (line == "end") break;
    if (line.rfind("worker ", 0) != 0) continue;
    WorkerInfo info;
    if (std::sscanf(line.c_str(), "worker %d %ld %d", &info.id,
                    &info.pid, &info.port) == 3)
      out.push_back(info);
  }
  return out;
}

void Deployment::killWorker(int id) {
  sendCommand("kill " + std::to_string(id));
  const std::string line = readStatusLine();
  if (line != "ok")
    throw std::runtime_error("Deployment: kill failed: " + line);
}

void Deployment::stop() {
  if (supervisorPid_ <= 0) return;
  if (cmdFd_ >= 0) {
    const std::string bye = "stop\n";
    (void)pipeWriteAll(cmdFd_, bye);
    ::close(cmdFd_);
    cmdFd_ = -1;
  }
  if (statusFd_ >= 0) {
    ::close(statusFd_);
    statusFd_ = -1;
  }
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(30);
  for (;;) {
    const pid_t r = ::waitpid(static_cast<pid_t>(supervisorPid_),
                              nullptr, WNOHANG);
    if (r == static_cast<pid_t>(supervisorPid_) || r < 0) break;
    if (std::chrono::steady_clock::now() > deadline) {
      ::kill(static_cast<pid_t>(supervisorPid_), SIGKILL);
      ::waitpid(static_cast<pid_t>(supervisorPid_), nullptr, 0);
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  supervisorPid_ = -1;
  launched_ = false;
}

void Deployment::supervisorMain(int cmdFd, int statusFd) {
  // The supervisor owns the deployment subtree. It forks all
  // first-generation workers BEFORE the LoadBalancer spins up any
  // thread, and it must never touch the global ThreadPool itself —
  // that is the fork-safety invariant of the whole design.
  closeFdsExcept({cmdFd, statusFd});
  ::signal(SIGPIPE, SIG_IGN);
  raiseFdLimit();

  WorkerPool::Options workerOptions;
  int workerCount = 4;
  int lbPort = 0;
  int handlerThreads = 4;
  std::unique_ptr<WorkerPool> pool;
  std::unique_ptr<LoadBalancer> lb;
  std::vector<int> pendingRespawn;
  std::string buffer;
  bool shutdown = false;

  const auto reply = [statusFd](const std::string& line) {
    (void)pipeWriteAll(statusFd, line + "\n");
  };

  // Chaos hook: a fired command fault is indistinguishable from the
  // parent vanishing — the supervisor tears everything down.
  static FaultSite cmdFault("lb.cmd.read");
  while (!shutdown) {
    if (cmdFault.shouldFail()) break;
    pollfd pfd{};
    pfd.fd = cmdFd;
    pfd.events = POLLIN;
    const int pr = ::poll(&pfd, 1, 100);
    if (pr < 0 && errno != EINTR) break;
    if (pr > 0) {
      char chunk[512];
      const ssize_t n = ::read(cmdFd, chunk, sizeof chunk);
      if (n == 0) break;  // parent gone: tear down
      if (n < 0 && errno != EINTR) break;
      if (n > 0) buffer.append(chunk, static_cast<std::size_t>(n));
      for (;;) {
        const std::size_t nl = buffer.find('\n');
        if (nl == std::string::npos) break;
        const std::string line = buffer.substr(0, nl);
        buffer.erase(0, nl + 1);
        if (line == "stop") {
          shutdown = true;
          break;
        }
        if (line.rfind("set ", 0) == 0) {
          const std::string rest = line.substr(4);
          const std::size_t sp = rest.find(' ');
          if (sp == std::string::npos) continue;
          const std::string key = rest.substr(0, sp);
          const std::string value = rest.substr(sp + 1);
          try {
            if (key == "root") workerOptions.bundleRoot = value;
            else if (key == "workers") workerCount = std::stoi(value);
            else if (key == "lbport") lbPort = std::stoi(value);
            else if (key == "hthreads")
              handlerThreads = std::stoi(value);
            else if (key == "wthreads")
              workerOptions.workerThreads = std::stoi(value);
            else if (key == "wfaults") workerOptions.faultSpec = value;
          } catch (const std::exception&) {
          }
        } else if (line == "launch") {
          try {
            workerOptions.handlerThreads = handlerThreads;
            pool = std::make_unique<WorkerPool>(workerOptions);
            for (int id = 0; id < workerCount; ++id)
              if (!pool->spawn(id))
                throw std::runtime_error(
                    "worker " + std::to_string(id) + " failed to start");
            LoadBalancer::Config lbConfig;
            lbConfig.http.host = "127.0.0.1";
            lbConfig.http.port = lbPort;
            lbConfig.http.handlerThreads = handlerThreads;
            lb = std::make_unique<LoadBalancer>(lbConfig);
            lb->setWorkers(pool->backends());
            lb->start();
            for (const WorkerPool::Worker& w : pool->workers())
              reply("worker " + std::to_string(w.id) + " " +
                    std::to_string(w.pid) + " " +
                    std::to_string(w.port));
            reply("lb " + std::to_string(lb->port()));
            reply("ready");
          } catch (const std::exception& e) {
            lb.reset();
            pool.reset();
            reply(std::string("error ") + e.what());
          }
        } else if (line == "workers") {
          if (pool)
            for (const WorkerPool::Worker& w : pool->workers())
              if (w.alive)
                reply("worker " + std::to_string(w.id) + " " +
                      std::to_string(w.pid) + " " +
                      std::to_string(w.port));
          reply("end");
        } else if (line.rfind("kill ", 0) == 0) {
          bool ok = false;
          try {
            if (pool) ok = pool->kill(std::stoi(line.substr(5)),
                                      SIGKILL);
          } catch (const std::exception&) {
          }
          reply(ok ? "ok" : "error no such worker");
        }
      }
    }
    // Maintenance tick: reap dead workers, respawn them under the same
    // id (new pid, new port) and rebuild the ring.
    if (pool && lb) {
      const std::vector<int> dead = pool->reap();
      pendingRespawn.insert(pendingRespawn.end(), dead.begin(),
                            dead.end());
      if (!dead.empty()) lb->setWorkers(pool->backends());
      if (!pendingRespawn.empty()) {
        std::vector<int> still;
        for (const int id : pendingRespawn)
          if (!pool->spawn(id)) still.push_back(id);
        pendingRespawn = still;
        lb->setWorkers(pool->backends());
      }
    }
  }
  if (lb) lb->stop();
  lb.reset();
  if (pool) pool->stop();
  pool.reset();
  std::_Exit(0);
}

}  // namespace dp::serve
