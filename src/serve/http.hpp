#pragma once

/// \file http.hpp
/// Minimal dependency-free HTTP/1.1 server over POSIX sockets: enough
/// protocol to run the pattern-generation service (request line,
/// headers, Content-Length bodies, keep-alive) and nothing more.
/// One thread per connection — the generate handler blocks on the
/// batcher future, so connection concurrency is the natural model.
///
/// Robustness contract: a malformed request is always answered (400 on
/// a bad head or Content-Length, 413 on an oversized body, 431 on an
/// oversized header block) or the connection closed — never a hang or
/// a thrown exception; socket reads and writes retry EINTR and carry
/// recv/send timeouts; the serve.accept, serve.recv, and serve.send
/// fault sites (common/fault.hpp) inject socket failures for chaos
/// testing.

#include <atomic>
#include <functional>
#include <map>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/sync.hpp"

namespace dp::serve {

struct HttpRequest {
  std::string method;   ///< "GET", "POST", ...
  std::string target;   ///< path, query string stripped
  std::string query;    ///< raw query string ("" when absent)
  std::map<std::string, std::string> headers;  ///< lower-cased names
  std::string body;
};

struct HttpResponse {
  int status = 200;
  std::string contentType = "application/json";
  std::string body;
  std::vector<std::pair<std::string, std::string>> extraHeaders;
};

using HttpHandler = std::function<HttpResponse(const HttpRequest&)>;

class HttpServer {
 public:
  struct Config {
    std::string host = "127.0.0.1";
    int port = 0;  ///< 0 = ephemeral; port() reports the bound port
    std::size_t maxBodyBytes = 1 << 20;
    std::size_t maxHeaderBytes = 64 * 1024;  ///< head overflow -> 431
    int recvTimeoutSec = 30;
    /// Send-side budget mirroring recvTimeoutSec: a peer that stops
    /// reading cannot pin a connection thread forever.
    int sendTimeoutSec = 30;
  };

  HttpServer(Config config, HttpHandler handler);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds, listens, and starts the accept loop. Throws
  /// std::runtime_error on bind/listen failure.
  void start();

  /// The bound port (valid after start()).
  [[nodiscard]] int port() const { return port_; }

  /// True between start() and stop().
  [[nodiscard]] bool running() const {
    return running_.load(std::memory_order_acquire);
  }

  /// Stops accepting, shuts down open connections, joins all threads.
  /// Idempotent.
  void stop();

 private:
  void acceptLoop() DP_EXCLUDES(connMutex_);
  void serveConnection(int fd);
  void trackConnection(int fd) DP_EXCLUDES(connMutex_);
  void untrackConnection(int fd) DP_EXCLUDES(connMutex_);

  Config config_;
  HttpHandler handler_;
  // Written by start()/stop(), read by the accept thread each
  // iteration: must be atomic (stop() publishes -1 before shutdown()
  // unblocks the accept call, so the loop never touches a closed fd).
  std::atomic<int> listenFd_{-1};
  int port_ = 0;
  std::atomic<bool> running_{false};
  std::thread acceptThread_;
  Mutex connMutex_;
  std::vector<int> connFds_ DP_GUARDED_BY(connMutex_);
  std::vector<std::thread> connThreads_ DP_GUARDED_BY(connMutex_);
};

/// Parses one HTTP/1.1 request from `raw` (which must contain the full
/// head; `bodyStart` receives the offset past the blank line). Returns
/// false on malformed input. Exposed for tests.
[[nodiscard]] bool parseHttpHead(const std::string& raw, HttpRequest& out,
                                 std::size_t& bodyStart);

}  // namespace dp::serve
