#pragma once

/// \file http.hpp
/// Shared HTTP/1.1 vocabulary of the serving subsystem: the request/
/// response structs, the head parser, response serialization and the
/// blocking socket helpers used by in-process clients (the load
/// balancer's backend legs, tests, benchmarks).
///
/// The server side lives in eventloop.hpp: the PR 2 thread-per-
/// connection HttpServer was replaced by the nonblocking epoll
/// EventLoopServer (DESIGN.md §13), which holds thousands of cheap
/// keep-alive connections instead of one thread each. The helpers here
/// deliberately stay blocking — they run on bounded client-side thread
/// pools, never on the event loop.

#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace dp::serve {

struct HttpRequest {
  std::string method;   ///< "GET", "POST", ...
  std::string target;   ///< path, query string stripped
  std::string query;    ///< raw query string ("" when absent)
  std::map<std::string, std::string> headers;  ///< lower-cased names
  std::string body;
};

struct HttpResponse {
  int status = 200;
  std::string contentType = "application/json";
  std::string body;
  std::vector<std::pair<std::string, std::string>> extraHeaders;
};

using HttpHandler = std::function<HttpResponse(const HttpRequest&)>;

/// Reason phrase for the status codes the service emits.
[[nodiscard]] const char* statusText(int status);

/// Parses one HTTP/1.1 request from `raw` (which must contain the full
/// head; `bodyStart` receives the offset past the blank line). Returns
/// false on malformed input. Exposed for tests.
[[nodiscard]] bool parseHttpHead(const std::string& raw, HttpRequest& out,
                                 std::size_t& bodyStart);

/// Serializes a response to its full wire form (status line, headers,
/// Content-Length, Connection: keep-alive|close, body).
[[nodiscard]] std::string serializeResponse(const HttpResponse& response,
                                            bool keepAlive);

/// Serializes a request to its wire form (Content-Length always
/// present; Connection header from `keepAlive`).
[[nodiscard]] std::string serializeRequest(const HttpRequest& request,
                                           bool keepAlive);

/// Blocking send of the whole buffer with EINTR retry and the
/// serve.send fault site. False on error or injected fault.
[[nodiscard]] bool sendAll(int fd, const std::string& data);

/// Blocking recv with EINTR retry and the serve.recv fault site (an
/// injected failure reads as a peer hangup).
[[nodiscard]] ssize_t recvSome(int fd, char* chunk, std::size_t size);

}  // namespace dp::serve
