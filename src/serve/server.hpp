#pragma once

/// \file server.hpp
/// The pattern-generation service: bundle registry + micro-batching
/// pipeline + HTTP front end. Routes:
///   POST /generate  JSON generate request -> generation summary
///   GET  /healthz   liveness
///   GET  /bundles   loaded bundle inventory
///   GET  /metrics   Prometheus text exposition
/// handle() is exposed directly so tests and in-process clients can
/// exercise the full request path without sockets.

#include <string>

#include "serve/batcher.hpp"
#include "serve/bundle.hpp"
#include "serve/http.hpp"
#include "serve/metrics.hpp"

namespace dp::serve {

/// Parses a POST /generate JSON body. Throws std::runtime_error on
/// malformed JSON or wrong field types; unknown fields are ignored.
[[nodiscard]] GenerateRequest parseGenerateRequest(const std::string& body);

/// Serializes a generate response to its JSON body (hashes and the
/// seed as decimal strings: they exceed double-exact integer range).
[[nodiscard]] std::string generateResponseJson(const GenerateResponse& res);

class PatternServer {
 public:
  struct Config {
    HttpServer::Config http;
    Batcher::Config batcher;
  };

  explicit PatternServer(Config config = {});
  ~PatternServer();

  [[nodiscard]] BundleRegistry& registry() { return registry_; }
  [[nodiscard]] Metrics& metrics() { return metrics_; }
  [[nodiscard]] Batcher& batcher() { return batcher_; }

  /// Starts the HTTP listener (the batcher runs from construction).
  void start();
  [[nodiscard]] int port() const { return http_.port(); }

  /// Drains the batcher, then stops the HTTP server. Idempotent.
  void stop();

  /// Full request routing path, socket-free (used by the HTTP layer
  /// and by in-process clients/tests alike).
  [[nodiscard]] HttpResponse handle(const HttpRequest& request);

 private:
  [[nodiscard]] HttpResponse handleGenerate(const HttpRequest& request);
  [[nodiscard]] HttpResponse handleBundles() const;

  Config config_;
  BundleRegistry registry_;
  Metrics metrics_;
  Batcher batcher_;
  HttpServer http_;
};

}  // namespace dp::serve
