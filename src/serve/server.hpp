#pragma once

/// \file server.hpp
/// The pattern-generation service: bundle registry + micro-batching
/// pipeline + epoll event-loop HTTP front end (eventloop.hpp). Routes:
///   POST /generate      JSON generate request -> generation summary
///   GET  /healthz       health state (200 ready/degraded, 503 otherwise)
///   GET  /bundles       loaded bundle inventory
///   GET  /metrics       Prometheus text exposition
///   POST /admin/reload  re-scan the bundle root (zero-downtime bundle
///                       hot reload: the registry replaces same-name
///                       bundles in place, requests never pause)
/// handle() is exposed directly so tests and in-process clients can
/// exercise the full request path without sockets.
///
/// Health state machine (DESIGN.md §11): starting -> ready on start()
/// (or explicitly), ready <-> degraded as bundle loads partially fail,
/// any -> draining on stop(). /healthz answers 200 for ready and
/// degraded (degraded still serves what it has) and 503 with the state
/// name for starting and draining, so load balancers stop routing
/// before the listener goes away.

#include <atomic>
#include <string>
#include <vector>

#include "serve/batcher.hpp"
#include "serve/bundle.hpp"
#include "serve/eventloop.hpp"
#include "serve/metrics.hpp"

namespace dp::serve {

/// Parses a POST /generate JSON body. Throws std::runtime_error on
/// malformed JSON or wrong field types; unknown fields are ignored.
[[nodiscard]] GenerateRequest parseGenerateRequest(const std::string& body);

/// Serializes a generate response to its JSON body (hashes and the
/// seed as decimal strings: they exceed double-exact integer range).
[[nodiscard]] std::string generateResponseJson(const GenerateResponse& res);

class PatternServer {
 public:
  struct Config {
    EventLoopServer::Config http;
    Batcher::Config batcher;
  };

  enum class Health { kStarting, kReady, kDegraded, kDraining };

  explicit PatternServer(Config config = {});
  ~PatternServer();

  [[nodiscard]] BundleRegistry& registry() { return registry_; }
  [[nodiscard]] Metrics& metrics() { return metrics_; }
  [[nodiscard]] Batcher& batcher() { return batcher_; }

  [[nodiscard]] Health health() const {
    return health_.load(std::memory_order_relaxed);
  }
  void setHealth(Health health) {
    health_.store(health, std::memory_order_relaxed);
  }
  /// The /healthz state name ("starting", "ready", ...).
  [[nodiscard]] static const char* healthName(Health health);

  /// registry().loadDirectory + health transition: any successful load
  /// from a partially corrupt root degrades (rather than fails) the
  /// server; a fully clean load restores ready. Has no effect on
  /// draining. Failure reasons are appended to `errors` when non-null.
  /// The root is remembered for POST /admin/reload.
  int loadBundles(const std::string& root,
                  std::vector<std::string>* errors = nullptr);

  /// Starts the HTTP listener (the batcher runs from construction) and
  /// moves starting -> ready.
  void start();
  [[nodiscard]] int port() const { return http_.port(); }

  /// Marks the server draining, drains the batcher, then stops the
  /// HTTP server. Idempotent.
  void stop();

  /// Full request routing path, socket-free (used by the HTTP layer
  /// and by in-process clients/tests alike).
  [[nodiscard]] HttpResponse handle(const HttpRequest& request);

 private:
  [[nodiscard]] HttpResponse handleGenerate(const HttpRequest& request);
  [[nodiscard]] HttpResponse handleBundles() const;
  [[nodiscard]] HttpResponse handleReload();

  Config config_;
  BundleRegistry registry_;
  Metrics metrics_;
  Batcher batcher_;
  EventLoopServer http_;
  mutable Mutex rootMutex_;
  /// Last loadBundles root, for /admin/reload (written by loadBundles,
  /// read by handler threads serving the reload route).
  std::string bundleRoot_ DP_GUARDED_BY(rootMutex_);
  std::atomic<Health> health_{Health::kStarting};
};

}  // namespace dp::serve
