#include "serve/http.hpp"

#include <sys/socket.h>

#include <algorithm>
#include <cctype>
#include <cerrno>

#include "common/fault.hpp"

namespace dp::serve {

namespace {

std::string toLower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return s;
}

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t')) ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t')) --e;
  return s.substr(b, e - b);
}

}  // namespace

const char* statusText(int status) {
  switch (status) {
    case 200: return "OK";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 413: return "Payload Too Large";
    case 429: return "Too Many Requests";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 502: return "Bad Gateway";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

bool parseHttpHead(const std::string& raw, HttpRequest& out,
                   std::size_t& bodyStart) {
  const std::size_t headEnd = raw.find("\r\n\r\n");
  if (headEnd == std::string::npos) return false;
  bodyStart = headEnd + 4;

  const std::size_t lineEnd = raw.find("\r\n");
  const std::string requestLine = raw.substr(0, lineEnd);
  const std::size_t sp1 = requestLine.find(' ');
  const std::size_t sp2 =
      sp1 == std::string::npos ? std::string::npos
                               : requestLine.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) return false;
  out.method = requestLine.substr(0, sp1);
  std::string target = requestLine.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::string version = requestLine.substr(sp2 + 1);
  if (version.rfind("HTTP/1.", 0) != 0) return false;
  const std::size_t qpos = target.find('?');
  if (qpos != std::string::npos) {
    out.query = target.substr(qpos + 1);
    target.resize(qpos);
  }
  if (target.empty() || target[0] != '/') return false;
  out.target = target;

  std::size_t pos = lineEnd + 2;
  while (pos < headEnd) {
    std::size_t next = raw.find("\r\n", pos);
    if (next == std::string::npos || next > headEnd) next = headEnd;
    const std::string line = raw.substr(pos, next - pos);
    const std::size_t colon = line.find(':');
    if (colon == std::string::npos) return false;
    out.headers[toLower(trim(line.substr(0, colon)))] =
        trim(line.substr(colon + 1));
    pos = next + 2;
  }
  return true;
}

std::string serializeResponse(const HttpResponse& response,
                              bool keepAlive) {
  std::string out = "HTTP/1.1 " + std::to_string(response.status) + " " +
                    statusText(response.status) + "\r\n";
  out += "Content-Type: " + response.contentType + "\r\n";
  out += "Content-Length: " + std::to_string(response.body.size()) +
         "\r\n";
  for (const auto& [name, value] : response.extraHeaders)
    out += name + ": " + value + "\r\n";
  out += keepAlive ? "Connection: keep-alive\r\n"
                   : "Connection: close\r\n";
  out += "\r\n";
  out += response.body;
  return out;
}

std::string serializeRequest(const HttpRequest& request, bool keepAlive) {
  std::string target = request.target;
  if (!request.query.empty()) target += "?" + request.query;
  std::string out = request.method + " " + target + " HTTP/1.1\r\n";
  for (const auto& [name, value] : request.headers)
    out += name + ": " + value + "\r\n";
  out += "Content-Length: " + std::to_string(request.body.size()) +
         "\r\n";
  out += keepAlive ? "Connection: keep-alive\r\n"
                   : "Connection: close\r\n";
  out += "\r\n";
  out += request.body;
  return out;
}

bool sendAll(int fd, const std::string& data) {
  static FaultSite sendFault("serve.send");
  if (sendFault.shouldFail()) return false;
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return false;
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

ssize_t recvSome(int fd, char* chunk, std::size_t size) {
  static FaultSite recvFault("serve.recv");
  if (recvFault.shouldFail()) return 0;
  for (;;) {
    const ssize_t n = ::recv(fd, chunk, size, 0);
    if (n < 0 && errno == EINTR) continue;
    return n;
  }
}

}  // namespace dp::serve
