#include "serve/http.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "common/fault.hpp"

namespace dp::serve {

namespace {

std::string toLower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return s;
}

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t')) ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t')) --e;
  return s.substr(b, e - b);
}

const char* statusText(int status) {
  switch (status) {
    case 200: return "OK";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 413: return "Payload Too Large";
    case 429: return "Too Many Requests";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

bool sendAll(int fd, const std::string& data) {
  static FaultSite sendFault("serve.send");
  if (sendFault.shouldFail()) return false;
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return false;
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

/// recv() with EINTR retry and the serve.recv fault site (an injected
/// failure reads as a peer hangup).
ssize_t recvSome(int fd, char* chunk, std::size_t size) {
  static FaultSite recvFault("serve.recv");
  if (recvFault.shouldFail()) return 0;
  for (;;) {
    const ssize_t n = ::recv(fd, chunk, size, 0);
    if (n < 0 && errno == EINTR) continue;
    return n;
  }
}

/// Sends a minimal error response that always closes the connection;
/// used for protocol violations detected before a request can be
/// routed. Best-effort: the peer may already be gone.
void writeError(int fd, int status, const std::string& message) {
  const std::string body = "{\"error\":\"" + message + "\"}";
  std::string head = "HTTP/1.1 " + std::to_string(status) + " " +
                     statusText(status) + "\r\n";
  head += "Content-Type: application/json\r\n";
  head += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  head += "Connection: close\r\n\r\n";
  (void)sendAll(fd, head + body);
}

}  // namespace

bool parseHttpHead(const std::string& raw, HttpRequest& out,
                   std::size_t& bodyStart) {
  const std::size_t headEnd = raw.find("\r\n\r\n");
  if (headEnd == std::string::npos) return false;
  bodyStart = headEnd + 4;

  const std::size_t lineEnd = raw.find("\r\n");
  const std::string requestLine = raw.substr(0, lineEnd);
  const std::size_t sp1 = requestLine.find(' ');
  const std::size_t sp2 =
      sp1 == std::string::npos ? std::string::npos
                               : requestLine.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) return false;
  out.method = requestLine.substr(0, sp1);
  std::string target = requestLine.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::string version = requestLine.substr(sp2 + 1);
  if (version.rfind("HTTP/1.", 0) != 0) return false;
  const std::size_t qpos = target.find('?');
  if (qpos != std::string::npos) {
    out.query = target.substr(qpos + 1);
    target.resize(qpos);
  }
  if (target.empty() || target[0] != '/') return false;
  out.target = target;

  std::size_t pos = lineEnd + 2;
  while (pos < headEnd) {
    std::size_t next = raw.find("\r\n", pos);
    if (next == std::string::npos || next > headEnd) next = headEnd;
    const std::string line = raw.substr(pos, next - pos);
    const std::size_t colon = line.find(':');
    if (colon == std::string::npos) return false;
    out.headers[toLower(trim(line.substr(0, colon)))] =
        trim(line.substr(colon + 1));
    pos = next + 2;
  }
  return true;
}

HttpServer::HttpServer(Config config, HttpHandler handler)
    : config_(std::move(config)), handler_(std::move(handler)) {}

HttpServer::~HttpServer() { stop(); }

void HttpServer::start() {
  if (running_.load()) return;
  // Set the socket up through a local fd; listenFd_ is published only
  // once the socket is fully listening, so the accept thread (and a
  // concurrent stop()) never observe a half-configured descriptor.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw std::runtime_error("HttpServer: socket() failed");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(config_.port));
  if (::inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw std::runtime_error("HttpServer: bad host " + config_.host);
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    const int err = errno;
    ::close(fd);
    // Errno formatting on a cold error path; no concurrent strerror callers.
    // NOLINTNEXTLINE(concurrency-mt-unsafe)
    const char* msg = std::strerror(err);
    throw std::runtime_error(std::string("HttpServer: bind failed: ") + msg);
  }
  if (::listen(fd, 64) < 0) {
    ::close(fd);
    throw std::runtime_error("HttpServer: listen failed");
  }
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len);
  port_ = ntohs(bound.sin_port);

  listenFd_.store(fd, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  acceptThread_ = std::thread([this] { acceptLoop(); });
}

void HttpServer::acceptLoop() {
  while (running_.load(std::memory_order_acquire)) {
    const int lfd = listenFd_.load(std::memory_order_acquire);
    if (lfd < 0) break;
    const int fd = ::accept(lfd, nullptr, nullptr);
    if (fd < 0) {
      if (!running_.load(std::memory_order_acquire)) break;
      continue;
    }
    // Chaos hook: an injected accept failure drops the connection on
    // the floor, as a listen-queue overflow or fd exhaustion would.
    static FaultSite acceptFault("serve.accept");
    if (acceptFault.shouldFail()) {
      ::close(fd);
      continue;
    }
    timeval tv{};
    tv.tv_sec = config_.recvTimeoutSec;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
    timeval stv{};
    stv.tv_sec = config_.sendTimeoutSec;
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &stv, sizeof stv);
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    trackConnection(fd);
    LockGuard lock(connMutex_);
    connThreads_.emplace_back([this, fd] { serveConnection(fd); });
  }
}

void HttpServer::trackConnection(int fd) {
  LockGuard lock(connMutex_);
  connFds_.push_back(fd);
}

void HttpServer::untrackConnection(int fd) {
  LockGuard lock(connMutex_);
  connFds_.erase(std::remove(connFds_.begin(), connFds_.end(), fd),
                 connFds_.end());
}

void HttpServer::serveConnection(int fd) {
  std::string buffer;
  char chunk[4096];
  bool keepAlive = true;
  while (keepAlive && running_.load(std::memory_order_acquire)) {
    // Buffer a complete head (through the blank line) BEFORE parsing,
    // so incomplete and malformed heads are distinguishable: an
    // incomplete head keeps reading, a malformed one is answered 400
    // immediately instead of looping on recv until the timeout.
    bool peerGone = false;
    while (buffer.find("\r\n\r\n") == std::string::npos) {
      if (buffer.size() > config_.maxHeaderBytes) {
        writeError(fd, 431, "header block too large");
        peerGone = true;
        break;
      }
      const ssize_t n = recvSome(fd, chunk, sizeof chunk);
      if (n <= 0) {
        peerGone = true;  // hangup, timeout, or injected fault
        break;
      }
      buffer.append(chunk, static_cast<std::size_t>(n));
    }
    if (peerGone) break;

    HttpRequest req;
    std::size_t bodyStart = 0;
    if (!parseHttpHead(buffer, req, bodyStart)) {
      writeError(fd, 400, "malformed request head");
      break;
    }

    std::size_t contentLength = 0;
    if (const auto it = req.headers.find("content-length");
        it != req.headers.end()) {
      // Digits only, checked before stoull: stoull accepts a leading
      // minus and wraps it to a huge unsigned value.
      const std::string& value = it->second;
      const bool digits =
          !value.empty() &&
          std::all_of(value.begin(), value.end(), [](unsigned char c) {
            return std::isdigit(c) != 0;
          });
      try {
        std::size_t used = 0;
        if (!digits) throw std::invalid_argument("not a number");
        contentLength = std::stoull(value, &used);
        if (used != value.size())
          throw std::invalid_argument("trailing characters");
      } catch (const std::exception&) {
        writeError(fd, 400, "bad Content-Length");
        break;
      }
    }
    HttpResponse res;
    if (contentLength > config_.maxBodyBytes) {
      res.status = 413;
      res.body = "{\"error\":\"body too large\"}";
      buffer.clear();
      keepAlive = false;
    } else {
      while (buffer.size() < bodyStart + contentLength) {
        const ssize_t n = recvSome(fd, chunk, sizeof chunk);
        if (n <= 0) {
          keepAlive = false;
          break;
        }
        buffer.append(chunk, static_cast<std::size_t>(n));
      }
      if (!keepAlive && buffer.size() < bodyStart + contentLength) break;
      req.body = buffer.substr(bodyStart, contentLength);
      buffer.erase(0, bodyStart + contentLength);

      if (const auto it = req.headers.find("connection");
          it != req.headers.end() && toLower(it->second) == "close")
        keepAlive = false;
      try {
        res = handler_(req);
      } catch (const std::exception& e) {
        res.status = 500;
        res.body = std::string("{\"error\":\"") + e.what() + "\"}";
      }
    }

    std::string head = "HTTP/1.1 " + std::to_string(res.status) + " " +
                       statusText(res.status) + "\r\n";
    head += "Content-Type: " + res.contentType + "\r\n";
    head += "Content-Length: " + std::to_string(res.body.size()) + "\r\n";
    for (const auto& [name, value] : res.extraHeaders)
      head += name + ": " + value + "\r\n";
    head += keepAlive ? "Connection: keep-alive\r\n"
                      : "Connection: close\r\n";
    head += "\r\n";
    if (!sendAll(fd, head) || !sendAll(fd, res.body)) break;
  }
  untrackConnection(fd);
  ::close(fd);
}

void HttpServer::stop() {
  if (!running_.exchange(false)) {
    if (acceptThread_.joinable()) acceptThread_.join();
    return;
  }
  // Retire the listen socket in three ordered steps: publish -1 (the
  // accept loop stops touching it), shutdown() (unblocks an accept()
  // already parked on it), and close() only after the accept thread
  // has joined — closing earlier could race a concurrent accept() with
  // kernel fd reuse.
  const int fd = listenFd_.exchange(-1, std::memory_order_acq_rel);
  if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
  if (acceptThread_.joinable()) acceptThread_.join();
  if (fd >= 0) ::close(fd);
  {
    LockGuard lock(connMutex_);
    for (const int fd : connFds_) ::shutdown(fd, SHUT_RDWR);
  }
  std::vector<std::thread> threads;
  {
    LockGuard lock(connMutex_);
    threads.swap(connThreads_);
  }
  for (std::thread& t : threads)
    if (t.joinable()) t.join();
}

}  // namespace dp::serve
