#include "serve/eventloop.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "common/fault.hpp"

namespace dp::serve {

namespace {

// epoll user-data ids of the two non-connection descriptors.
constexpr std::uint64_t kListenId = 0;
constexpr std::uint64_t kWakeId = 1;

std::string toLower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return s;
}

}  // namespace

// ---------------------------------------------------------------------------
// IncrementalParser
// ---------------------------------------------------------------------------

IncrementalParser::Status IncrementalParser::next(HttpRequest& out) {
  if (errorStatus_ != 0) return Status::kError;
  const auto fail = [this](int status, std::string message) {
    errorStatus_ = status;
    errorMessage_ = std::move(message);
    return Status::kError;
  };

  if (headEnd_ == std::string::npos) {
    // Resume the blank-line search where the last call left off (back
    // up 3 bytes: the terminator may straddle the old buffer end).
    const std::size_t from = scan_ > 3 ? scan_ - 3 : 0;
    headEnd_ = buffer_.find("\r\n\r\n", from);
    if (headEnd_ == std::string::npos) {
      if (buffer_.size() > limits_.maxHeaderBytes)
        return fail(431, "header block too large");
      scan_ = buffer_.size();
      return Status::kNeedMore;
    }
  }
  if (headEnd_ > limits_.maxHeaderBytes)
    return fail(431, "header block too large");

  HttpRequest req;
  std::size_t bodyStart = 0;
  if (!parseHttpHead(buffer_, req, bodyStart))
    return fail(400, "malformed request head");

  std::size_t contentLength = 0;
  if (const auto it = req.headers.find("content-length");
      it != req.headers.end()) {
    // Digits only, checked before stoull: stoull accepts a leading
    // minus and wraps it to a huge unsigned value.
    const std::string& value = it->second;
    bool ok = !value.empty() &&
              std::all_of(value.begin(), value.end(), [](unsigned char c) {
                return std::isdigit(c) != 0;
              });
    if (ok) {
      try {
        std::size_t used = 0;
        contentLength = std::stoull(value, &used);
        ok = used == value.size();
      } catch (const std::exception&) {
        ok = false;
      }
    }
    if (!ok) return fail(400, "bad Content-Length");
  }
  if (contentLength > limits_.maxBodyBytes)
    return fail(413, "body too large");
  if (buffer_.size() < bodyStart + contentLength)
    return Status::kNeedMore;

  out = std::move(req);
  out.body = buffer_.substr(bodyStart, contentLength);
  buffer_.erase(0, bodyStart + contentLength);
  headEnd_ = std::string::npos;
  scan_ = 0;
  return Status::kReady;
}

// ---------------------------------------------------------------------------
// EventLoopServer
// ---------------------------------------------------------------------------

EventLoopServer::EventLoopServer(Config config, HttpHandler handler)
    : config_(std::move(config)), handler_(std::move(handler)) {
  if (config_.handlerThreads < 1)
    throw std::invalid_argument(
        "EventLoopServer: handlerThreads must be >= 1");
}

EventLoopServer::~EventLoopServer() { stop(); }

void EventLoopServer::start() {
  LockGuard stopLock(stopMutex_);
  if (running_.load(std::memory_order_acquire)) return;

  const int fd =
      ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0)
    throw std::runtime_error("EventLoopServer: socket() failed");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(config_.port));
  if (::inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw std::runtime_error("EventLoopServer: bad host " + config_.host);
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    const int err = errno;
    ::close(fd);
    // Errno formatting on a cold error path; no concurrent strerror callers.
    // NOLINTNEXTLINE(concurrency-mt-unsafe)
    const char* msg = std::strerror(err);
    throw std::runtime_error(
        std::string("EventLoopServer: bind failed: ") + msg);
  }
  if (::listen(fd, 1024) < 0) {
    ::close(fd);
    throw std::runtime_error("EventLoopServer: listen failed");
  }
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len);
  port_ = ntohs(bound.sin_port);

  epollFd_ = ::epoll_create1(EPOLL_CLOEXEC);
  wakeFd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (epollFd_ < 0 || wakeFd_ < 0) {
    ::close(fd);
    if (epollFd_ >= 0) ::close(epollFd_);
    if (wakeFd_ >= 0) ::close(wakeFd_);
    epollFd_ = wakeFd_ = -1;
    throw std::runtime_error("EventLoopServer: epoll/eventfd failed");
  }
  listenFd_ = fd;

  epoll_event lev{};
  lev.events = EPOLLIN | EPOLLET;
  lev.data.u64 = kListenId;
  ::epoll_ctl(epollFd_, EPOLL_CTL_ADD, listenFd_, &lev);
  epoll_event wev{};
  wev.events = EPOLLIN | EPOLLET;
  wev.data.u64 = kWakeId;
  ::epoll_ctl(epollFd_, EPOLL_CTL_ADD, wakeFd_, &wev);

  stopRequested_.store(false, std::memory_order_release);
  {
    LockGuard lock(mutex_);
    handlersStopping_ = false;
  }
  handlerThreads_.reserve(static_cast<std::size_t>(config_.handlerThreads));
  for (int i = 0; i < config_.handlerThreads; ++i)
    handlerThreads_.emplace_back([this] { handlerThreadMain(); });
  loopThread_ = std::thread([this] { loopThreadMain(); });
  running_.store(true, std::memory_order_release);
}

void EventLoopServer::stop() {
  LockGuard stopLock(stopMutex_);
  if (!running_.load(std::memory_order_acquire)) return;
  stopRequested_.store(true, std::memory_order_release);
  wakeLoop();
  if (loopThread_.joinable()) loopThread_.join();
  {
    LockGuard lock(mutex_);
    handlersStopping_ = true;
    // The loop either drained these into responses or timed out; any
    // leftovers would answer into closed connections. Drop them so the
    // handler threads exit promptly.
    tasks_.clear();
  }
  taskCv_.notifyAll();
  for (std::thread& t : handlerThreads_)
    if (t.joinable()) t.join();
  handlerThreads_.clear();
  if (listenFd_ >= 0) ::close(listenFd_);
  if (wakeFd_ >= 0) ::close(wakeFd_);
  if (epollFd_ >= 0) ::close(epollFd_);
  listenFd_ = wakeFd_ = epollFd_ = -1;
  running_.store(false, std::memory_order_release);
}

void EventLoopServer::wakeLoop() {
  // Chaos hook: a swallowed wakeup must not wedge the loop — the
  // bounded epoll_wait timeout picks the work up on the next round.
  static FaultSite wakeFault("serve.wake.write");
  const int fd = wakeFd_;
  if (fd < 0 || wakeFault.shouldFail()) return;
  const std::uint64_t one = 1;
  const ssize_t n = ::write(fd, &one, sizeof one);
  (void)n;  // a full eventfd counter still wakes the loop
}

void EventLoopServer::loopThreadMain() {
  // Chaos hook: an injected wait failure skips the wait round entirely
  // — the kernel keeps the undelivered edges pending, so the loop
  // self-heals on the next round, as it would after a signal storm.
  static FaultSite epollFault("serve.epoll.wait");
  std::vector<epoll_event> events(256);
  bool draining = false;
  std::chrono::steady_clock::time_point drainStart{};
  for (;;) {
    if (epollFault.shouldFail()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    } else {
      const int n = ::epoll_wait(epollFd_, events.data(),
                                 static_cast<int>(events.size()), 250);
      if (n < 0) {
        if (errno == EINTR) continue;
        break;  // epoll fd invalid: only possible when torn down
      }
      for (int i = 0; i < n; ++i) {
        const std::uint64_t id = events[i].data.u64;
        const std::uint32_t flags = events[i].events;
        if (id == kListenId) {
          if (!draining) acceptReady();
          continue;
        }
        if (id == kWakeId) {
          std::uint64_t buf = 0;
          while (::read(wakeFd_, &buf, sizeof buf) > 0) {
          }
          continue;
        }
        const auto it = conns_.find(id);
        if (it == conns_.end()) continue;
        Conn& conn = it->second;
        if ((flags & (EPOLLHUP | EPOLLERR)) != 0) {
          closeConn(id, conn);
          continue;
        }
        if ((flags & (EPOLLIN | EPOLLRDHUP)) != 0) readReady(id, conn);
        if (conn.fd >= 0 && (flags & EPOLLOUT) != 0)
          flushWrite(id, conn);
      }
    }
    applyCompletions();
    sweepTimeouts();

    const auto now = std::chrono::steady_clock::now();
    if (!draining && stopRequested_.load(std::memory_order_acquire)) {
      draining = true;
      drainStart = now;
      ::epoll_ctl(epollFd_, EPOLL_CTL_DEL, listenFd_, nullptr);
    }
    if (draining) {
      bool busy;
      {
        LockGuard lock(mutex_);
        busy = !tasks_.empty() || activeHandlers_ > 0 ||
               !completions_.empty();
      }
      if (!busy) {
        for (const auto& [id, conn] : conns_)
          if (conn.fd >= 0 && (conn.dispatched ||
                               conn.outOff < conn.outbuf.size()))
            busy = true;
      }
      if (!busy || now - drainStart > std::chrono::milliseconds(
                                          config_.drainTimeoutMs))
        break;
    }
    for (const std::uint64_t id : dead_) conns_.erase(id);
    dead_.clear();
  }
  for (auto& [id, conn] : conns_) {
    if (conn.fd < 0) continue;
    ::close(conn.fd);
    conn.fd = -1;
    if (config_.metrics) config_.metrics->connectionClosed();
  }
  conns_.clear();
  dead_.clear();
}

void EventLoopServer::acceptReady() {
  // Chaos hook: an injected accept failure drops the connection on
  // the floor, as a listen-queue overflow or fd exhaustion would.
  static FaultSite acceptFault("serve.accept");
  for (;;) {
    // dp-lint: nonblocking (SOCK_NONBLOCK requested at accept)
    const int fd = ::accept4(listenFd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      break;  // EAGAIN (queue drained) or transient resource error
    }
    if (acceptFault.shouldFail() ||
        conns_.size() >= config_.maxConnections) {
      ::close(fd);
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);

    const std::uint64_t id = nextConnId_++;
    const auto [it, inserted] = conns_.emplace(
        id, Conn(IncrementalParser::Limits{config_.maxHeaderBytes,
                                           config_.maxBodyBytes}));
    Conn& conn = it->second;
    conn.fd = fd;
    const auto now = std::chrono::steady_clock::now();
    conn.lastActivity = conn.lastWriteProgress = conn.requestStart = now;
    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLRDHUP | EPOLLET;
    ev.data.u64 = id;
    ::epoll_ctl(epollFd_, EPOLL_CTL_ADD, fd, &ev);
    if (config_.metrics) config_.metrics->connectionOpened();
    // Bytes may already be queued behind the accept; EPOLL_CTL_ADD on
    // a readable fd does post an initial edge, but reading now saves a
    // wait round on the common connect-then-send-immediately client.
    readReady(id, conn);
  }
}

void EventLoopServer::readReady(std::uint64_t id, Conn& conn) {
  if (conn.fd < 0) return;
  static FaultSite recvFault("serve.recv");
  char chunk[16384];
  for (;;) {
    if (recvFault.shouldFail()) {
      closeConn(id, conn);  // injected failure reads as a peer hangup
      return;
    }
    // dp-lint: nonblocking (fd accepted with SOCK_NONBLOCK)
    const ssize_t n = ::recv(conn.fd, chunk, sizeof chunk, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0) {
      closeConn(id, conn);
      return;
    }
    if (n == 0) {
      conn.peerHalfClosed = true;
      break;
    }
    const auto now = std::chrono::steady_clock::now();
    if (conn.parser.idle()) conn.requestStart = now;  // new request began
    conn.parser.append(chunk, static_cast<std::size_t>(n));
    conn.lastActivity = now;
  }
  pumpParser(id, conn);
  if (conn.fd < 0) return;
  if (conn.peerHalfClosed && !conn.dispatched &&
      conn.outOff >= conn.outbuf.size())
    closeConn(id, conn);  // clean FIN, or a hangup mid-request
}

void EventLoopServer::pumpParser(std::uint64_t id, Conn& conn) {
  if (conn.fd < 0 || conn.state != ConnState::kReading ||
      conn.dispatched)
    return;
  if (stopRequested_.load(std::memory_order_acquire))
    return;  // draining: finish in-flight work, start nothing new
  HttpRequest req;
  const IncrementalParser::Status status = conn.parser.next(req);
  if (status == IncrementalParser::Status::kNeedMore) return;
  if (status == IncrementalParser::Status::kError) {
    HttpResponse res;
    res.status = conn.parser.errorStatus();
    res.body = "{\"error\":\"" + conn.parser.errorMessage() + "\"}";
    conn.outbuf += serializeResponse(res, false);
    conn.state = ConnState::kClosing;
    flushWrite(id, conn);
    return;
  }
  if (conn.requestsStarted > 0 && config_.metrics)
    config_.metrics->keepaliveReuse();
  ++conn.requestsStarted;
  conn.dispatched = true;
  conn.lastActivity = std::chrono::steady_clock::now();
  {
    LockGuard lock(mutex_);
    tasks_.emplace_back(id, std::move(req));
  }
  taskCv_.notifyOne();
}

// dp-analyze: hot
void EventLoopServer::flushWrite(std::uint64_t id, Conn& conn) {
  if (conn.fd < 0) return;
  static FaultSite sendFault("serve.send");
  while (conn.outOff < conn.outbuf.size()) {
    if (sendFault.shouldFail()) {
      closeConn(id, conn);  // injected failure acts as a broken pipe
      return;
    }
    // dp-lint: nonblocking (fd accepted with SOCK_NONBLOCK)
    const ssize_t n = ::send(conn.fd, conn.outbuf.data() + conn.outOff,
                             conn.outbuf.size() - conn.outOff,
                             MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
      break;  // kernel buffer full: backpressure, arm EPOLLOUT
    if (n <= 0) {
      closeConn(id, conn);
      return;
    }
    conn.outOff += static_cast<std::size_t>(n);
    conn.lastWriteProgress = std::chrono::steady_clock::now();
  }
  if (conn.outOff >= conn.outbuf.size()) {
    conn.outbuf.clear();
    conn.outOff = 0;
    if (conn.state == ConnState::kClosing ||
        (conn.peerHalfClosed && !conn.dispatched &&
         conn.parser.idle())) {
      closeConn(id, conn);
      return;
    }
  }
  updateInterest(id, conn);
}

// dp-analyze: hot
void EventLoopServer::updateInterest(std::uint64_t id, Conn& conn) {
  if (conn.fd < 0) return;
  const bool wantWrite = conn.outOff < conn.outbuf.size();
  if (wantWrite == conn.wantWrite) return;
  conn.wantWrite = wantWrite;
  epoll_event ev{};
  ev.events = EPOLLIN | EPOLLRDHUP | EPOLLET |
              (wantWrite ? EPOLLOUT : 0u);
  ev.data.u64 = id;
  ::epoll_ctl(epollFd_, EPOLL_CTL_MOD, conn.fd, &ev);
}

void EventLoopServer::applyCompletions() {
  std::deque<Completion> done;
  {
    LockGuard lock(mutex_);
    done.swap(completions_);
  }
  for (Completion& c : done) {
    const auto it = conns_.find(c.connId);
    if (it == conns_.end() || it->second.fd < 0) continue;
    Conn& conn = it->second;
    conn.dispatched = false;
    conn.outbuf += c.wire;
    if (c.closeAfter) conn.state = ConnState::kClosing;
    conn.lastActivity = std::chrono::steady_clock::now();
    flushWrite(c.connId, conn);
    if (conn.fd >= 0) pumpParser(c.connId, conn);  // next pipelined req
  }
}

// dp-analyze: hot
void EventLoopServer::sweepTimeouts() {
  const auto now = std::chrono::steady_clock::now();
  for (auto& [id, conn] : conns_) {
    if (conn.fd < 0) continue;
    if (conn.outOff < conn.outbuf.size()) {
      // Write stalled: the peer stopped draining its receive window.
      if (now - conn.lastWriteProgress >
          std::chrono::seconds(config_.sendTimeoutSec))
        closeConn(id, conn);
      continue;
    }
    if (conn.dispatched) continue;  // handler latency: batcher's budget
    if (!conn.parser.idle()) {
      // Slow loris: a partial request only gets recvTimeoutSec total,
      // no matter how steadily it trickles bytes.
      if (now - conn.requestStart >
          std::chrono::seconds(config_.recvTimeoutSec))
        closeConn(id, conn);
      continue;
    }
    const int limit = conn.requestsStarted == 0 ? config_.recvTimeoutSec
                                                : config_.idleTimeoutSec;
    if (now - conn.lastActivity > std::chrono::seconds(limit))
      closeConn(id, conn);
  }
}

// Once-per-connection teardown, not per-event work.
// dp-analyze: cold
void EventLoopServer::closeConn(std::uint64_t id, Conn& conn) {
  if (conn.fd < 0) return;
  ::epoll_ctl(epollFd_, EPOLL_CTL_DEL, conn.fd, nullptr);
  ::close(conn.fd);
  conn.fd = -1;
  dead_.push_back(id);
  if (config_.metrics) config_.metrics->connectionClosed();
}

void EventLoopServer::handlerThreadMain() {
  for (;;) {
    std::pair<std::uint64_t, HttpRequest> task;
    {
      UniqueLock lock(mutex_);
      while (tasks_.empty() && !handlersStopping_) taskCv_.wait(lock);
      if (tasks_.empty()) return;  // stopping and nothing left
      task = std::move(tasks_.front());
      tasks_.pop_front();
      ++activeHandlers_;
    }
    HttpResponse res;
    try {
      res = handler_(task.second);
    } catch (const std::exception& e) {
      res = HttpResponse{};
      res.status = 500;
      res.body = std::string("{\"error\":\"") + e.what() + "\"}";
    }
    bool closeAfter = false;
    if (const auto it = task.second.headers.find("connection");
        it != task.second.headers.end())
      closeAfter = toLower(it->second) == "close";
    Completion completion;
    completion.connId = task.first;
    completion.closeAfter = closeAfter;
    completion.wire = serializeResponse(res, !closeAfter);
    {
      LockGuard lock(mutex_);
      completions_.push_back(std::move(completion));
      --activeHandlers_;
    }
    wakeLoop();
  }
}

}  // namespace dp::serve
