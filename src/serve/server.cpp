#include "serve/server.hpp"

#include <cstdlib>
#include <stdexcept>
#include <utility>

#include "common/fault.hpp"
#include "io/json.hpp"

namespace dp::serve {

using dp::io::Json;

namespace {

EventLoopServer::Config withMetrics(EventLoopServer::Config config,
                                    Metrics* metrics) {
  config.metrics = metrics;
  return config;
}

}  // namespace

GenerateRequest parseGenerateRequest(const std::string& body) {
  GenerateRequest req;
  if (body.empty()) return req;
  const Json j = Json::parse(body);
  if (!j.isObject())
    throw std::runtime_error("generate request must be a JSON object");
  if (j.has("bundle")) req.bundle = j.at("bundle").asString();
  if (j.has("flow")) req.flow = j.at("flow").asString();
  if (j.has("count")) req.count = j.at("count").asLong();
  if (j.has("batchSize"))
    req.batchSize = static_cast<int>(j.at("batchSize").asLong());
  if (j.has("arity")) req.arity = static_cast<int>(j.at("arity").asLong());
  if (j.has("seed")) req.seed = j.at("seed").asUint64();
  if (j.has("materialize")) req.materialize = j.at("materialize").asBool();
  if (j.has("maxClips")) req.maxClips = j.at("maxClips").asLong();
  if (j.has("deadline_ms")) req.deadlineMs = j.at("deadline_ms").asLong();
  if (j.has("deadlineMs")) req.deadlineMs = j.at("deadlineMs").asLong();
  if (j.has("minCx")) req.minCx = static_cast<int>(j.at("minCx").asLong());
  if (j.has("maxCx")) req.maxCx = static_cast<int>(j.at("maxCx").asLong());
  if (j.has("minCy")) req.minCy = static_cast<int>(j.at("minCy").asLong());
  if (j.has("maxCy")) req.maxCy = static_cast<int>(j.at("maxCy").asLong());
  return req;
}

std::string generateResponseJson(const GenerateResponse& res) {
  Json j = Json::object();
  j.set("bundle", res.bundle);
  j.set("version", res.version);
  j.set("flow", res.flow);
  j.set("seed", std::to_string(res.seed));
  j.set("generated", res.generated);
  j.set("legal", res.legal);
  j.set("unique", res.uniqueTotal);
  j.set("uniqueInWindow", res.uniqueInWindow);
  j.set("diversity", res.diversity);
  j.set("meanCx", res.meanCx);
  j.set("meanCy", res.meanCy);
  Json hashes = Json::array();
  for (const std::uint64_t h : res.patternHashes)
    hashes.push(std::to_string(h));
  j.set("patternHashes", std::move(hashes));
  if (res.attempted > 0 || res.solved > 0) {
    Json mat = Json::object();
    mat.set("attempted", res.attempted);
    mat.set("solved", res.solved);
    mat.set("drcClean", res.drcClean);
    j.set("materialize", std::move(mat));
  }
  j.set("latencyMs", res.latencyMs);
  j.set("decodeBatches", res.decodeBatches);
  return j.dump();
}

PatternServer::PatternServer(Config config)
    : config_(std::move(config)),
      batcher_(registry_, metrics_, config_.batcher),
      http_(withMetrics(config_.http, &metrics_),
            [this](const HttpRequest& req) { return handle(req); }) {}

PatternServer::~PatternServer() { stop(); }

const char* PatternServer::healthName(Health health) {
  switch (health) {
    case Health::kStarting:
      return "starting";
    case Health::kReady:
      return "ready";
    case Health::kDegraded:
      return "degraded";
    case Health::kDraining:
      return "draining";
  }
  return "unknown";
}

int PatternServer::loadBundles(const std::string& root,
                               std::vector<std::string>* errors) {
  {
    LockGuard lock(rootMutex_);
    bundleRoot_ = root;
  }
  std::vector<std::string> local;
  const int loaded = registry_.loadDirectory(root, &local);
  const Health current = health();
  if (current != Health::kDraining) {
    if (!local.empty())
      setHealth(Health::kDegraded);
    else if (current == Health::kDegraded && loaded > 0)
      setHealth(Health::kReady);
  }
  if (errors)
    errors->insert(errors->end(), local.begin(), local.end());
  return loaded;
}

void PatternServer::start() {
  http_.start();
  if (health() == Health::kStarting) setHealth(Health::kReady);
}

void PatternServer::stop() {
  setHealth(Health::kDraining);
  batcher_.stop();
  http_.stop();
}

HttpResponse PatternServer::handle(const HttpRequest& request) {
  HttpResponse res;
  if (request.target == "/healthz") {
    if (request.method != "GET") {
      res.status = 405;
      res.body = "{\"error\":\"method not allowed\"}";
    } else {
      // A stopped batcher means drain regardless of the stored state.
      const Health state =
          batcher_.running() ? health() : Health::kDraining;
      Json j = Json::object();
      j.set("status", healthName(state));
      j.set("bundles", static_cast<long>(registry_.list().size()));
      j.set("shed", static_cast<long>(metrics_.shedTotal()));
      res.body = j.dump();
      if (state == Health::kStarting || state == Health::kDraining)
        res.status = 503;
    }
  } else if (request.target == "/bundles") {
    if (request.method != "GET") {
      res.status = 405;
      res.body = "{\"error\":\"method not allowed\"}";
    } else {
      res = handleBundles();
    }
  } else if (request.target == "/metrics") {
    if (request.method != "GET") {
      res.status = 405;
      res.body = "{\"error\":\"method not allowed\"}";
    } else {
      res.contentType = "text/plain; version=0.0.4";
      res.body = metrics_.renderPrometheus();
    }
  } else if (request.target == "/generate") {
    if (request.method != "POST") {
      res.status = 405;
      res.body = "{\"error\":\"method not allowed\"}";
    } else {
      res = handleGenerate(request);
    }
  } else if (request.target == "/admin/reload") {
    if (request.method != "POST") {
      res.status = 405;
      res.body = "{\"error\":\"method not allowed\"}";
    } else {
      res = handleReload();
    }
  } else {
    res.status = 404;
    res.body = "{\"error\":\"no such route\"}";
  }
  metrics_.countRequest(request.target, res.status);
  return res;
}

HttpResponse PatternServer::handleBundles() const {
  Json j = Json::object();
  Json arr = Json::array();
  for (const auto& bundle : registry_.list()) {
    Json b = Json::object();
    b.set("name", bundle->name());
    b.set("version", bundle->version());
    b.set("latentDim", bundle->spec().tcae.latentDim);
    b.set("inputSize", bundle->spec().tcae.inputSize);
    b.set("sourcePool", bundle->sourceLatents().size(0));
    if (const core::GuideModel* guide = bundle->guide())
      b.set("guide",
            guide->config().kind == core::GuideConfig::Kind::kGan
                ? "gan"
                : "vae");
    else
      b.set("guide", Json());
    b.set("maxCx", bundle->spec().rules.maxCx);
    b.set("maxCy", bundle->spec().rules.maxCy);
    arr.push(std::move(b));
  }
  j.set("bundles", std::move(arr));
  HttpResponse res;
  res.body = j.dump();
  return res;
}

HttpResponse PatternServer::handleReload() {
  std::string root;
  {
    LockGuard lock(rootMutex_);
    root = bundleRoot_;
  }
  HttpResponse res;
  if (root.empty()) {
    res.status = 400;
    res.body = "{\"error\":\"no bundle root to reload\"}";
    return res;
  }
  // Hot reload: loadDirectory re-reads every bundle generation under
  // the root and BundleRegistry::add replaces same-name bundles in
  // place (latest version wins), so in-flight requests keep their
  // shared_ptr to the old bundle and new requests see the new one —
  // zero downtime by construction.
  std::vector<std::string> errors;
  const int loaded = loadBundles(root, &errors);
  Json j = Json::object();
  j.set("loaded", loaded);
  j.set("status", healthName(health()));
  Json errs = Json::array();
  for (const std::string& e : errors) errs.push(e);
  j.set("errors", std::move(errs));
  res.body = j.dump();
  if (loaded == 0 && !errors.empty()) res.status = 500;
  return res;
}

HttpResponse PatternServer::handleGenerate(const HttpRequest& request) {
  // Chaos hook: models a worker process dying mid-request (OOM kill,
  // segfault) — the process exits without flushing anything, so the
  // client sees a truncated connection and the LB must retry the
  // in-flight request on another worker.
  static FaultSite crashFault("serve.worker.crash");
  if (crashFault.shouldFail()) std::_Exit(137);

  HttpResponse res;
  GenerateRequest req;
  try {
    req = parseGenerateRequest(request.body);
  } catch (const std::exception& e) {
    res.status = 400;
    Json err = Json::object();
    err.set("error", e.what());
    res.body = err.dump();
    return res;
  }
  SubmitResult submitted = batcher_.submit(req);
  switch (submitted.status) {
    case SubmitResult::Status::kAccepted:
      break;
    case SubmitResult::Status::kQueueFull:
      res.status = 429;
      res.extraHeaders.emplace_back("Retry-After", "1");
      res.body = "{\"error\":\"" + submitted.error + "\"}";
      return res;
    case SubmitResult::Status::kShuttingDown:
      res.status = 503;
      res.body = "{\"error\":\"" + submitted.error + "\"}";
      return res;
    case SubmitResult::Status::kInvalid:
      res.status = 400;
      res.body = "{\"error\":\"" + submitted.error + "\"}";
      return res;
  }
  try {
    const GenerateResponse generated = submitted.future.get();
    res.body = generateResponseJson(generated);
  } catch (const DeadlineExceeded& e) {
    // Shed, not failed: the client's latency budget ran out while the
    // request waited for decode capacity. Retryable.
    res.status = 503;
    res.extraHeaders.emplace_back("Retry-After", "1");
    Json err = Json::object();
    err.set("error", e.what());
    res.body = err.dump();
  } catch (const std::exception& e) {
    res.status = 500;
    Json err = Json::object();
    err.set("error", e.what());
    res.body = err.dump();
  }
  return res;
}

}  // namespace dp::serve
