#pragma once

/// \file lb.hpp
/// Shared-nothing multi-process scale-out (DESIGN.md §13): N forked
/// serve workers — each a full PatternServer with its own registry,
/// batcher and thread pool, sharing no memory with its siblings —
/// behind a tiny in-repo load balancer.
///
///   client ──► LoadBalancer (EventLoopServer front)
///                 │ consistent-hash route by bundle name
///                 ├──► worker 0 (PatternServer, own process)
///                 ├──► worker 1
///                 └──► ...
///
/// Routing is a consistent-hash ring over worker ids (HashRing):
/// every bundle name maps to a preference order of workers, so a
/// bundle's decode cache and source latents stay hot on one worker,
/// and removing a worker remaps only the keys it owned. A request that
/// dies mid-flight (worker SIGKILL, connect refused) is retried down
/// the preference order — safe because seeded generation is
/// deterministic: any worker produces the bit-identical response.
///
/// Process management (WorkerPool / Deployment) is fork-based with no
/// exec: a worker child builds its PatternServer from the same binary
/// image. The one invariant that makes this sound is that the FORKING
/// process is thread-free at first fork — Deployment therefore forks
/// an inert supervisor child at CONSTRUCTION time (before the caller
/// can have created the global ThreadPool or any server threads), and
/// the supervisor forks all first-generation workers before it builds
/// the (threaded) LoadBalancer. Respawns after a worker death fork
/// from the then-threaded supervisor, which glibc's fork handlers make
/// safe for the malloc-only work the child does before _exit/serve.

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/sync.hpp"
#include "serve/eventloop.hpp"
#include "serve/http.hpp"
#include "serve/metrics.hpp"

namespace dp::serve {

/// Consistent-hash ring over worker ids. rebuild() places `vnodes`
/// points per worker; route() returns every distinct worker in ring
/// order starting at the key's hash — index 0 is the home worker, the
/// rest the failover preference order.
class HashRing {
 public:
  void rebuild(const std::vector<int>& workerIds, int vnodes = 64);

  [[nodiscard]] std::vector<int> route(const std::string& key) const;

  [[nodiscard]] std::size_t workerCount() const { return workers_; }
  [[nodiscard]] bool empty() const { return ring_.empty(); }

  /// splitmix64-chained string hash (exposed for tests).
  [[nodiscard]] static std::uint64_t hashKey(const std::string& key);

 private:
  std::map<std::uint64_t, int> ring_;  ///< hash point -> worker id
  std::size_t workers_ = 0;
};

/// Inserts a `key="value"` label into one Prometheus sample line
/// ('name value' or 'name{labels} value'). Comment lines and lines
/// that do not look like samples come back unchanged. Exposed for
/// tests; the LB uses it to tag every aggregated worker sample with
/// worker="<id>".
[[nodiscard]] std::string injectLabel(const std::string& line,
                                      const std::string& key,
                                      const std::string& value);

/// Small keep-alive connection pool to backend workers, keyed by
/// (worker id, port) so connections to a dead worker's port are never
/// handed out for its respawned successor.
class BackendPool {
 public:
  explicit BackendPool(int timeoutSec = 30) : timeoutSec_(timeoutSec) {}
  ~BackendPool() { clear(); }

  BackendPool(const BackendPool&) = delete;
  BackendPool& operator=(const BackendPool&) = delete;

  /// Pops an idle connection or opens a new one; -1 on connect error.
  /// `fromPool` (when non-null) reports whether the fd was reused — a
  /// failed exchange on a pooled fd may just be a stale keep-alive
  /// connection, while one on a fresh fd means the worker is gone.
  [[nodiscard]] int acquire(int workerId, int port,
                            bool* fromPool = nullptr)
      DP_EXCLUDES(mutex_);
  /// Returns a connection to the pool (reusable) or closes it.
  void release(int workerId, int port, int fd, bool reusable)
      DP_EXCLUDES(mutex_);
  void clear() DP_EXCLUDES(mutex_);

 private:
  int timeoutSec_;
  mutable Mutex mutex_;
  std::map<std::pair<int, int>, std::vector<int>> idle_
      DP_GUARDED_BY(mutex_);
};

/// The load balancer: an EventLoopServer front end whose handler
/// proxies to the workers. Routes:
///   POST /generate      consistent-hash by bundle name + retry down
///                       the preference order until one complete
///                       response arrives
///   GET  /healthz       aggregate (200 while >= 1 worker serves)
///   GET  /bundles       forwarded to the home worker of ""
///   GET  /metrics       own exposition + every worker's samples with
///                       a worker="<id>" label injected, plus
///                       dp_lb_workers_alive / dp_lb_retries_total
///   POST /admin/reload  rolling: forwarded to one worker at a time
class LoadBalancer {
 public:
  struct Backend {
    int id = -1;
    int port = 0;
  };

  struct Config {
    EventLoopServer::Config http;  ///< front-end loop configuration
    int backendTimeoutSec = 30;    ///< per-leg recv/send budget
    int retryPasses = 5;           ///< sweeps over the preference
                                   ///< order; backoff doubles per pass
    int vnodes = 64;
  };

  explicit LoadBalancer(Config config);
  ~LoadBalancer();

  LoadBalancer(const LoadBalancer&) = delete;
  LoadBalancer& operator=(const LoadBalancer&) = delete;

  void start();
  void stop();
  [[nodiscard]] int port() const { return http_.port(); }

  /// Replaces the backend set and rebuilds the ring (called on launch
  /// and whenever the supervisor reaps/respawns a worker).
  void setWorkers(const std::vector<Backend>& workers)
      DP_EXCLUDES(workersMutex_);
  [[nodiscard]] std::size_t workerCount() const
      DP_EXCLUDES(workersMutex_);

  [[nodiscard]] Metrics& metrics() { return metrics_; }

  /// Full proxy routing path, socket-free on the front side (the
  /// backend legs still dial the workers). Exposed for tests.
  [[nodiscard]] HttpResponse handle(const HttpRequest& request);

 private:
  struct Exchange {
    bool complete = false;  ///< a full response was received
    bool reusable = false;  ///< backend connection survived
    HttpResponse response;
  };

  /// Preference-ordered (id, port) candidates for `key` right now.
  [[nodiscard]] std::vector<Backend> candidates(const std::string& key)
      const DP_EXCLUDES(workersMutex_);
  /// One request/response over a pooled backend connection.
  [[nodiscard]] Exchange exchange(const Backend& backend,
                                  const HttpRequest& request);
  /// exchange() with retry down the preference order; 502 when every
  /// candidate fails in every pass.
  [[nodiscard]] HttpResponse forward(const std::string& routeKey,
                                     const HttpRequest& request);

  [[nodiscard]] HttpResponse handleGenerate(const HttpRequest& request);
  [[nodiscard]] HttpResponse handleHealth();
  [[nodiscard]] HttpResponse handleMetrics();
  [[nodiscard]] HttpResponse handleReload();

  Config config_;
  Metrics metrics_;
  EventLoopServer http_;
  BackendPool pool_;
  mutable Mutex workersMutex_;
  std::vector<Backend> workers_ DP_GUARDED_BY(workersMutex_);
  HashRing ring_ DP_GUARDED_BY(workersMutex_);
  std::atomic<std::uint64_t> retries_{0};
};

/// Fork-per-worker process pool. Lives inside the Deployment
/// supervisor process; each worker runs a PatternServer on an
/// ephemeral port, reports the port over a status pipe, stamps its
/// worker id into /metrics, and serves until its life pipe closes.
class WorkerPool {
 public:
  struct Options {
    std::string bundleRoot;
    int handlerThreads = 4;
    int workerThreads = 0;      ///< 0 = inherit DP_THREADS/default
    std::string faultSpec;      ///< DP_FAULTS-style spec armed in the
                                ///< worker only (never the LB process)
  };

  struct Worker {
    int id = -1;
    long pid = -1;
    int port = 0;
    int lifeFd = -1;  ///< write end; closing it asks the worker to drain
    bool alive = false;
  };

  explicit WorkerPool(Options options) : options_(std::move(options)) {}
  ~WorkerPool() { stop(); }

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Forks worker `id`; returns false when the child failed to come up
  /// (fork error, bundle load crash, port handshake timeout).
  bool spawn(int id);
  /// waitpid(WNOHANG) sweep; returns the ids that died since the last
  /// call and marks them not alive.
  std::vector<int> reap();
  /// Signals one worker (SIGKILL in chaos tests).
  bool kill(int id, int signal);
  /// Graceful stop: close every life pipe, wait, SIGKILL stragglers.
  void stop();

  [[nodiscard]] std::vector<Worker> workers() const;
  [[nodiscard]] std::vector<LoadBalancer::Backend> backends() const;

 private:
  Options options_;
  std::map<int, Worker> workers_;
};

/// Parent-side handle on a forked deployment subtree:
///
///   test/bench process
///     └── supervisor (forked inert at Deployment construction)
///           ├── LoadBalancer (threads live only here)
///           └── worker 0..N-1 (forked before the LB threads exist)
///
/// Construct EARLY — before the global ThreadPool or any server exists
/// in the parent — then launch() whenever. The supervisor owns the
/// WorkerPool and LoadBalancer, respawns dead workers (rebuilding the
/// ring), and tears everything down on stop() or parent exit (command
/// pipe EOF). The parent keeps only pipe fds: its own fd table stays
/// free for client sockets, which is what lets a 10k-connection bench
/// client and a full deployment share one default fd limit.
class Deployment {
 public:
  struct Options {
    std::string bundleRoot;
    int workers = 4;
    int lbPort = 0;             ///< 0 = ephemeral
    int handlerThreads = 4;     ///< per-process front-end offload pool
    int workerThreads = 0;      ///< worker DP_THREADS override
    std::string workerFaults;   ///< armed inside workers only
  };

  struct WorkerInfo {
    int id = -1;
    long pid = -1;
    int port = 0;
  };

  Deployment();
  ~Deployment();

  Deployment(const Deployment&) = delete;
  Deployment& operator=(const Deployment&) = delete;

  /// False when the supervisor fork failed at construction.
  [[nodiscard]] bool available() const { return supervisorPid_ > 0; }

  /// Builds the worker pool + LB in the supervisor. Throws on failure.
  void launch(const Options& options);
  /// Tears down the subtree. Idempotent; also run by the destructor.
  void stop();

  [[nodiscard]] int lbPort() const { return lbPort_; }
  /// Current worker table as the supervisor sees it (respawns give a
  /// worker a new pid/port under the same id).
  [[nodiscard]] std::vector<WorkerInfo> queryWorkers();
  /// Asks the supervisor to SIGKILL a worker (chaos testing).
  void killWorker(int id);

 private:
  [[noreturn]] static void supervisorMain(int cmdFd, int statusFd);
  std::string readStatusLine();
  void sendCommand(const std::string& line);

  long supervisorPid_ = -1;
  int cmdFd_ = -1;     ///< parent -> supervisor commands
  int statusFd_ = -1;  ///< supervisor -> parent replies
  std::string statusBuffer_;
  int lbPort_ = 0;
  bool launched_ = false;
};

}  // namespace dp::serve
