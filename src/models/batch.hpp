#pragma once

/// \file batch.hpp
/// Mini-batch utilities: row gathering and random index sampling over a
/// dataset tensor whose first dimension is the sample dimension.

#include <vector>

#include "common/rng.hpp"
#include "tensor/tensor.hpp"

namespace dp::models {

/// Gathers the given sample indices from `data` (first dim = samples)
/// into a new tensor with first dimension indices.size().
[[nodiscard]] nn::Tensor gatherRows(const nn::Tensor& data,
                                    const std::vector<int>& indices);

/// Samples `count` indices uniformly with replacement from [0, n).
[[nodiscard]] std::vector<int> sampleIndices(int n, int count, Rng& rng);

}  // namespace dp::models
