#pragma once

/// \file topology_codec.hpp
/// Conversions between squish topologies and network tensors. Training
/// inputs are zero-padded to the paper's 24x24 network size; network
/// outputs in [0,1] are binarized at 0.5 to recover topologies.

#include <vector>

#include "squish/pad.hpp"
#include "squish/topology.hpp"
#include "tensor/tensor.hpp"

namespace dp::models {

/// Encodes topologies as an (N, 1, S, S) tensor, zero-padding each to
/// S = kNetworkTopologySize. Throws when a topology exceeds S.
[[nodiscard]] nn::Tensor encodeTopologies(
    const std::vector<squish::Topology>& topos,
    int size = squish::kNetworkTopologySize);

/// Encodes one topology as a (1, 1, S, S) tensor.
[[nodiscard]] nn::Tensor encodeTopology(
    const squish::Topology& topo, int size = squish::kNetworkTopologySize);

/// Decodes sample `n` of an (N, 1, S, S) activation tensor into a raw
/// S x S topology by thresholding at `threshold`.
[[nodiscard]] squish::Topology decodeTopology(const nn::Tensor& t, int n,
                                              float threshold = 0.5f);

/// Decodes every sample of an (N, 1, S, S) activation tensor.
[[nodiscard]] std::vector<squish::Topology> decodeTopologies(
    const nn::Tensor& t, float threshold = 0.5f);

/// Decodes one generated sample: threshold, then strip the zero padding
/// (trailing all-zero rows/columns). The network input convention pads
/// every topology with zeros to S x S, so trailing zeros in an output
/// are padding, not pattern margin — legality, complexity and
/// uniqueness of generated patterns are all defined on this unpadded
/// form.
[[nodiscard]] squish::Topology decodeGeneratedTopology(
    const nn::Tensor& t, int n, float threshold = 0.5f);

/// decodeGeneratedTopology for every sample.
[[nodiscard]] std::vector<squish::Topology> decodeGeneratedTopologies(
    const nn::Tensor& t, float threshold = 0.5f);

}  // namespace dp::models
