#pragma once

/// \file tcae.hpp
/// The Transforming Convolutional Auto-Encoder (paper §III-B, Fig. 4):
///  - recognition unit: stacked conv layers + dense layers mapping a
///    24x24 squish topology to a latent vector l (Eq. 2),
///  - generation unit: dense layers + deconv layers mapping (possibly
///    perturbed) latent vectors back to topology space (Eq. 3).
/// Trained as an identity map with the MSE objective of Eq. (4); all
/// transformations happen at inference time by manipulating l.

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "nn/optimizer.hpp"
#include "nn/sequential.hpp"
#include "squish/topology.hpp"
#include "tensor/tensor.hpp"
#include "train/harness.hpp"

namespace dp::models {

/// Architecture and training hyper-parameters. Defaults follow the paper
/// where it is specific (latent length 32, lr 0.001 decayed by 0.7 every
/// 2000 steps, batch 64, Xavier init); channel/hidden widths are sized
/// for CPU training. The paper's L2 coefficients (0.001 conv / 0.01
/// dense) are available via the weight-decay fields but default to 0:
/// with Adam's per-step normalization and this small architecture those
/// values over-regularize and collapse the decoder onto the library
/// mean (verified experimentally; see EXPERIMENTS.md).
struct TcaeConfig {
  int inputSize = 24;
  int latentDim = 32;
  int conv1Channels = 8;
  int conv2Channels = 16;
  int hidden = 96;
  double convWeightDecay = 0.0;
  double denseWeightDecay = 0.0;
  double initialLr = 1e-3;
  double lrDecayFactor = 0.7;
  long lrDecayEvery = 2000;
  long trainSteps = 1500;
  int batchSize = 64;
};

/// Loss trace and robustness counters of one training run.
struct TrainStats {
  long steps = 0;
  double finalLoss = 0.0;
  std::vector<double> lossEvery100;
  bool resumed = false;      ///< continued from a checkpoint directory
  long resumedFrom = 0;      ///< step the resume started at
  int rollbacks = 0;         ///< divergence rollbacks taken
  long nanEvents = 0;        ///< non-finite loss/grad detections
  long checkpointsSaved = 0;
  bool sealedByStop = false; ///< a stop request sealed the run early
};

class Tcae {
 public:
  Tcae(TcaeConfig config, Rng& rng);

  [[nodiscard]] const TcaeConfig& config() const { return config_; }

  /// The generation unit's layer stack, for read-only inspection (the
  /// fused decode route prepacks its weights at bundle-build time).
  [[nodiscard]] const nn::Sequential& decoder() const { return decoder_; }

  /// Recognition unit f: (N,1,S,S) -> (N, latentDim) (Eq. 2).
  /// Stateless inference — safe to call concurrently on a shared model.
  [[nodiscard]] nn::Tensor encode(const nn::Tensor& topologies) const;

  /// Generation unit g: (N, latentDim) -> (N,1,S,S) in [0,1] (Eq. 3).
  /// Stateless inference — safe to call concurrently on a shared model.
  [[nodiscard]] nn::Tensor decode(const nn::Tensor& latents) const;

  /// g(f(x)) — the identity map the model is trained for.
  [[nodiscard]] nn::Tensor reconstruct(const nn::Tensor& topologies) const;

  /// Trains the identity mapping (Eq. 4) on the given topology set with
  /// mini-batch Adam and the paper's staircase lr decay. Deterministic
  /// given `rng`. Runs on the train::Harness; `options` control
  /// checkpointing, resume, and the divergence guards (the default
  /// options keep the sentinels on and disk checkpointing off, and the
  /// loop matches the pre-harness behavior bit for bit).
  TrainStats train(const std::vector<squish::Topology>& data, Rng& rng,
                   const train::TrainOptions& options);
  TrainStats train(const std::vector<squish::Topology>& data, Rng& rng);

  /// One optimization step on an encoded batch; returns the MSE loss.
  /// With `guard` set, the update goes through Harness::guardedStep
  /// (gradient sentinels + clipping).
  double trainStep(const nn::Tensor& batch, nn::Optimizer& opt,
                   train::Harness* guard = nullptr);

  /// Identity of (architecture, hyper-parameters, dataset size) for
  /// checkpoint resume validation. Excludes trainSteps so a finished
  /// run can be extended.
  [[nodiscard]] std::uint64_t configHash(std::size_t datasetSize) const;

  [[nodiscard]] std::vector<nn::Param*> params();
  [[nodiscard]] std::size_t parameterCount();

  void save(const std::string& path);
  void load(const std::string& path);

 private:
  TcaeConfig config_;
  nn::Sequential encoder_;
  nn::Sequential decoder_;
};

}  // namespace dp::models
