#include "models/batch.hpp"

#include <cstring>
#include <stdexcept>

namespace dp::models {

nn::Tensor gatherRows(const nn::Tensor& data,
                      const std::vector<int>& indices) {
  if (data.dim() < 1) throw std::invalid_argument("gatherRows: 0-d data");
  const int n = data.size(0);
  std::size_t rowSize = 1;
  std::vector<int> outShape = data.shape();
  outShape[0] = static_cast<int>(indices.size());
  for (int d = 1; d < data.dim(); ++d)
    rowSize *= static_cast<std::size_t>(data.size(d));
  nn::Tensor out(outShape);
  for (std::size_t i = 0; i < indices.size(); ++i) {
    const int idx = indices[i];
    if (idx < 0 || idx >= n)
      throw std::out_of_range("gatherRows: index out of range");
    std::memcpy(out.data() + i * rowSize,
                data.data() + static_cast<std::size_t>(idx) * rowSize,
                rowSize * sizeof(float));
  }
  return out;
}

std::vector<int> sampleIndices(int n, int count, Rng& rng) {
  if (n <= 0) throw std::invalid_argument("sampleIndices: empty dataset");
  std::vector<int> idx(static_cast<std::size_t>(count));
  for (int& i : idx) i = rng.uniformInt(0, n - 1);
  return idx;
}

}  // namespace dp::models
