#pragma once

/// \file gan.hpp
/// Generative adversarial network (Goodfellow et al. 2014) over an
/// arbitrary generator/discriminator pair. Two concrete builds:
///  - makeMlpGan: the paper's G-TCAE component (§III-C2) — a shallow
///    three-layer perceptron generator with 64 hidden nodes, Leaky-ReLU
///    and batch normalization, producing 32-long latent vectors, and a
///    two-hidden-layer discriminator.
///  - makeDcgan: the DCGAN baseline of Table II that generates 24x24
///    topologies directly (and, per the paper, mostly fails to).

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "nn/sequential.hpp"
#include "tensor/tensor.hpp"
#include "train/harness.hpp"

namespace dp::models {

/// GAN training hyper-parameters (paper §IV-A: lr 0.001 decayed by 0.05
/// every 10000 iterations, discriminator L2 0.01, generator unregularized).
struct GanConfig {
  double lr = 1e-3;
  double lrDecayFactor = 0.05;
  long lrDecayEvery = 10000;
  long trainSteps = 1500;
  int batchSize = 64;
};

/// Per-step loss trace and robustness counters.
struct GanStats {
  long steps = 0;
  double finalDiscLoss = 0.0;  ///< from the last step executed locally
  double finalGenLoss = 0.0;
  bool resumed = false;
  long resumedFrom = 0;
  int rollbacks = 0;
  long nanEvents = 0;
  long checkpointsSaved = 0;
  bool sealedByStop = false;
};

class Gan {
 public:
  /// Takes ownership of the two networks. `zShape` is the shape of one
  /// noise sample (excluding the batch dimension).
  Gan(nn::Sequential generator, nn::Sequential discriminator,
      std::vector<int> zShape);

  /// Draws n samples: z ~ N(0,1), returns G(z) (first dim n).
  [[nodiscard]] nn::Tensor sample(int n, Rng& rng);

  /// sample() through the stateless infer() path — safe to call
  /// concurrently on a shared, already-trained model.
  [[nodiscard]] nn::Tensor sampleInfer(int n, Rng& rng) const;

  /// Alternating D/G updates on `data` (first dim = samples), exactly
  /// the procedure of Goodfellow et al. as the paper prescribes. Runs
  /// on the train::Harness; one harness step is one D update plus one
  /// G update, guarded by the summed loss. Default options: sentinels
  /// on, disk checkpointing off, bit-identical to the pre-harness loop.
  GanStats train(const nn::Tensor& data, const GanConfig& config, Rng& rng,
                 const train::TrainOptions& options);
  GanStats train(const nn::Tensor& data, const GanConfig& config, Rng& rng);

  /// Checkpoint-resume identity of (architecture, hyper-parameters,
  /// dataset size); excludes trainSteps so runs can be extended.
  [[nodiscard]] std::uint64_t configHash(const GanConfig& config,
                                         long datasetSize);

  [[nodiscard]] nn::Sequential& generator() { return gen_; }
  [[nodiscard]] nn::Sequential& discriminator() { return disc_; }
  [[nodiscard]] const std::vector<int>& zShape() const { return zShape_; }

  /// Generator + discriminator parameters, in a stable order.
  [[nodiscard]] std::vector<nn::Param*> params();

  /// Checkpointing (parity with Tcae::save/load): both networks'
  /// parameters plus batch-norm running statistics, via
  /// nn::saveTensors/loadTensors. The loading Gan must be built with
  /// the same architecture.
  void save(const std::string& path);
  void load(const std::string& path);

 private:
  nn::Sequential gen_;
  nn::Sequential disc_;
  std::vector<int> zShape_;
};

/// The paper's latent-vector GAN: z in R^zDim -> vectors in R^dataDim.
[[nodiscard]] Gan makeMlpGan(int dataDim, Rng& rng, int zDim = 16,
                             int hidden = 64);

/// DCGAN baseline over (1, size, size) topologies; the generator ends
/// in a sigmoid, so threshold its output at 0.5 to obtain topologies.
[[nodiscard]] Gan makeDcgan(Rng& rng, int size = 24, int zDim = 32);

}  // namespace dp::models
