#include "models/vae.hpp"

#include <cmath>
#include <stdexcept>

#include "models/batch.hpp"
#include "nn/activations.hpp"
#include "nn/conv2d.hpp"
#include "nn/conv_transpose2d.hpp"
#include "nn/loss.hpp"
#include "nn/reshape.hpp"
#include "nn/schedule.hpp"
#include "nn/serialize.hpp"
#include "train/checkpoint.hpp"

namespace dp::models {

using nn::Tensor;

Vae::Vae(VaeConfig config, Rng& rng)
    : config_(config),
      muHead_(config.hidden, config.latentDim, rng, config.weightDecay),
      logVarHead_(config.hidden, config.latentDim, rng, config.weightDecay) {
  if (config_.backbone == VaeConfig::Backbone::kTopology) {
    const int s = config_.inputSize;
    if (s % 4 != 0)
      throw std::invalid_argument("Vae: inputSize must be divisible by 4");
    const int s4 = s / 4;
    const int flat = config_.conv2Channels * s4 * s4;
    encBase_.emplace<nn::Conv2d>(1, config_.conv1Channels, 3, 2, 1, rng,
                                 config_.weightDecay);
    encBase_.emplace<nn::ReLU>();
    encBase_.emplace<nn::Conv2d>(config_.conv1Channels,
                                 config_.conv2Channels, 3, 2, 1, rng,
                                 config_.weightDecay);
    encBase_.emplace<nn::ReLU>();
    encBase_.emplace<nn::Flatten>();
    encBase_.emplace<nn::Linear>(flat, config_.hidden, rng,
                                 config_.weightDecay);
    encBase_.emplace<nn::ReLU>();

    decoder_.emplace<nn::Linear>(config_.latentDim, config_.hidden, rng,
                                 config_.weightDecay);
    decoder_.emplace<nn::ReLU>();
    decoder_.emplace<nn::Linear>(config_.hidden, flat, rng,
                                 config_.weightDecay);
    decoder_.emplace<nn::ReLU>();
    decoder_.emplace<nn::Reshape>(config_.conv2Channels, s4, s4);
    decoder_.emplace<nn::ConvTranspose2d>(config_.conv2Channels,
                                          config_.conv1Channels, 4, 2, 1,
                                          rng, config_.weightDecay);
    decoder_.emplace<nn::ReLU>();
    decoder_.emplace<nn::ConvTranspose2d>(config_.conv1Channels, 1, 4, 2, 1,
                                          rng, config_.weightDecay);
    decoder_.emplace<nn::Sigmoid>();
  } else {
    encBase_.emplace<nn::Linear>(config_.inputDim, config_.hidden, rng,
                                 config_.weightDecay);
    encBase_.emplace<nn::ReLU>();

    decoder_.emplace<nn::Linear>(config_.latentDim, config_.hidden, rng,
                                 config_.weightDecay);
    decoder_.emplace<nn::ReLU>();
    decoder_.emplace<nn::Linear>(config_.hidden, config_.inputDim, rng,
                                 config_.weightDecay);
  }
}

VaeForward Vae::encode(const Tensor& x) {
  const Tensor h = encBase_.forward(x, /*training=*/false);
  VaeForward out;
  out.mu = muHead_.forward(h, /*training=*/false);
  out.logVar = logVarHead_.forward(h, /*training=*/false);
  return out;
}

Tensor Vae::decode(const Tensor& z) {
  return decoder_.forward(z, /*training=*/false);
}

Tensor Vae::decodeInfer(const Tensor& z) const { return decoder_.infer(z); }

Tensor Vae::sample(int n, Rng& rng) {
  const Tensor z = Tensor::randn({n, config_.latentDim}, rng);
  return decode(z);
}

Tensor Vae::sampleInfer(int n, Rng& rng) const {
  const Tensor z = Tensor::randn({n, config_.latentDim}, rng);
  return decodeInfer(z);
}

double Vae::trainStep(const Tensor& batch, nn::Optimizer& opt, Rng& rng,
                      train::Harness* guard) {
  opt.zeroGrad();
  const Tensor h = encBase_.forward(batch, /*training=*/true);
  const Tensor mu = muHead_.forward(h, /*training=*/true);
  const Tensor logVar = logVarHead_.forward(h, /*training=*/true);

  // Reparameterization: z = mu + eps * exp(0.5 * logVar).
  const Tensor eps = Tensor::randn(mu.shape(), rng);
  Tensor z = mu;
  for (std::size_t i = 0; i < z.numel(); ++i)
    z[i] += eps[i] * std::exp(0.5f * logVar[i]);

  const Tensor recon = decoder_.forward(z, /*training=*/true);
  Tensor gradRecon;
  const double reconLoss = nn::mseLoss(recon, batch, gradRecon);
  Tensor gradMuKl, gradLogVarKl;
  const double klLoss =
      nn::gaussianKlLoss(mu, logVar, gradMuKl, gradLogVarKl);

  const Tensor dz = decoder_.backward(gradRecon);
  // dmu = dz + klWeight * dKL/dmu;
  // dlogVar = dz * eps * 0.5*exp(0.5*logVar) + klWeight * dKL/dlogVar.
  Tensor gradMu = dz;
  Tensor gradLogVar(dz.shape());
  for (std::size_t i = 0; i < dz.numel(); ++i) {
    gradMu[i] += static_cast<float>(config_.klWeight) * gradMuKl[i];
    gradLogVar[i] =
        dz[i] * eps[i] * 0.5f * std::exp(0.5f * logVar[i]) +
        static_cast<float>(config_.klWeight) * gradLogVarKl[i];
  }
  const Tensor dhMu = muHead_.backward(gradMu);
  const Tensor dhLogVar = logVarHead_.backward(gradLogVar);
  Tensor dh = dhMu;
  dh += dhLogVar;
  encBase_.backward(dh);
  if (guard)
    guard->guardedStep(opt);
  else
    opt.step();
  return reconLoss + config_.klWeight * klLoss;
}

std::uint64_t Vae::configHash(long datasetSize) const {
  std::uint64_t h = train::hashInit();
  h = train::hashMix(h, 0x766165u);  // model tag "vae"
  h = train::hashMix(h, static_cast<std::uint64_t>(config_.backbone));
  h = train::hashMix(h, static_cast<std::uint64_t>(config_.inputSize));
  h = train::hashMix(h, static_cast<std::uint64_t>(config_.inputDim));
  h = train::hashMix(h, static_cast<std::uint64_t>(config_.latentDim));
  h = train::hashMix(h, static_cast<std::uint64_t>(config_.hidden));
  h = train::hashMix(h, static_cast<std::uint64_t>(config_.conv1Channels));
  h = train::hashMix(h, static_cast<std::uint64_t>(config_.conv2Channels));
  h = train::hashMixDouble(h, config_.klWeight);
  h = train::hashMixDouble(h, config_.weightDecay);
  h = train::hashMixDouble(h, config_.initialLr);
  h = train::hashMixDouble(h, config_.lrDecayFactor);
  h = train::hashMix(h, static_cast<std::uint64_t>(config_.lrDecayEvery));
  h = train::hashMix(h, static_cast<std::uint64_t>(config_.batchSize));
  h = train::hashMix(h, static_cast<std::uint64_t>(datasetSize));
  return h;
}

double Vae::train(const Tensor& data, Rng& rng) {
  return train(data, rng, train::TrainOptions{});
}

double Vae::train(const Tensor& data, Rng& rng,
                  const train::TrainOptions& options) {
  if (data.dim() < 1 || data.size(0) == 0)
    throw std::invalid_argument("Vae::train: empty dataset");
  nn::Adam opt(params(), config_.initialLr);
  const nn::StepDecaySchedule sched(config_.initialLr,
                                    config_.lrDecayFactor,
                                    config_.lrDecayEvery);

  std::vector<nn::Tensor*> modelState = encBase_.state();
  for (nn::Tensor* t : decoder_.state()) modelState.push_back(t);

  train::HarnessSpec spec;
  spec.totalSteps = config_.trainSteps;
  spec.lrAt = [&sched](long step) { return sched.lrAt(step); };
  spec.configHash = configHash(data.size(0));
  spec.samplesPerStep = config_.batchSize;
  spec.datasetSize = data.size(0);
  train::Harness harness(params(), std::move(modelState), {&opt},
                         std::move(spec), options);
  const train::HarnessStats hs =
      harness.run(rng, [&](long /*step*/, Rng& r) {
        const auto idx = sampleIndices(data.size(0), config_.batchSize, r);
        return trainStep(gatherRows(data, idx), opt, r, &harness);
      });
  return hs.finalLoss;
}

std::vector<nn::Param*> Vae::params() {
  std::vector<nn::Param*> all = encBase_.params();
  for (nn::Param* p : muHead_.params()) all.push_back(p);
  for (nn::Param* p : logVarHead_.params()) all.push_back(p);
  for (nn::Param* p : decoder_.params()) all.push_back(p);
  return all;
}

void Vae::save(const std::string& path) {
  std::vector<const nn::Tensor*> tensors;
  for (nn::Param* p : params()) tensors.push_back(&p->value);
  for (nn::Tensor* t : encBase_.state()) tensors.push_back(t);
  for (nn::Tensor* t : decoder_.state()) tensors.push_back(t);
  nn::saveTensors(tensors, path);
}

void Vae::load(const std::string& path) {
  std::vector<nn::Tensor*> tensors;
  for (nn::Param* p : params()) tensors.push_back(&p->value);
  for (nn::Tensor* t : encBase_.state()) tensors.push_back(t);
  for (nn::Tensor* t : decoder_.state()) tensors.push_back(t);
  nn::loadTensors(tensors, path);
}

}  // namespace dp::models
