#include "models/topology_codec.hpp"

#include <stdexcept>

namespace dp::models {

nn::Tensor encodeTopologies(const std::vector<squish::Topology>& topos,
                            int size) {
  if (topos.empty())
    throw std::invalid_argument("encodeTopologies: empty input");
  nn::Tensor out({static_cast<int>(topos.size()), 1, size, size});
  for (std::size_t n = 0; n < topos.size(); ++n) {
    const squish::Topology padded = squish::padTo(topos[n], size, size);
    for (int r = 0; r < size; ++r)
      for (int c = 0; c < size; ++c)
        out.at(static_cast<int>(n), 0, r, c) =
            padded.at(r, c) ? 1.0f : 0.0f;
  }
  return out;
}

nn::Tensor encodeTopology(const squish::Topology& topo, int size) {
  return encodeTopologies({topo}, size);
}

squish::Topology decodeTopology(const nn::Tensor& t, int n,
                                float threshold) {
  if (t.dim() != 4 || t.size(1) != 1)
    throw std::invalid_argument("decodeTopology: expected (N,1,S,S)");
  const int rows = t.size(2);
  const int cols = t.size(3);
  squish::Topology topo(rows, cols);
  for (int r = 0; r < rows; ++r)
    for (int c = 0; c < cols; ++c)
      topo.set(r, c, t.at(n, 0, r, c) >= threshold ? 1 : 0);
  return topo;
}

std::vector<squish::Topology> decodeTopologies(const nn::Tensor& t,
                                               float threshold) {
  std::vector<squish::Topology> out;
  out.reserve(static_cast<std::size_t>(t.size(0)));
  for (int n = 0; n < t.size(0); ++n)
    out.push_back(decodeTopology(t, n, threshold));
  return out;
}

squish::Topology decodeGeneratedTopology(const nn::Tensor& t, int n,
                                         float threshold) {
  return squish::unpad(decodeTopology(t, n, threshold));
}

std::vector<squish::Topology> decodeGeneratedTopologies(
    const nn::Tensor& t, float threshold) {
  std::vector<squish::Topology> out;
  out.reserve(static_cast<std::size_t>(t.size(0)));
  for (int n = 0; n < t.size(0); ++n)
    out.push_back(decodeGeneratedTopology(t, n, threshold));
  return out;
}

}  // namespace dp::models
