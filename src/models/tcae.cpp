#include "models/tcae.hpp"

#include <stdexcept>

#include "models/batch.hpp"
#include "models/topology_codec.hpp"
#include "nn/activations.hpp"
#include "nn/conv2d.hpp"
#include "nn/conv_transpose2d.hpp"
#include "nn/linear.hpp"
#include "nn/loss.hpp"
#include "nn/reshape.hpp"
#include "nn/schedule.hpp"
#include "nn/serialize.hpp"
#include "train/checkpoint.hpp"

namespace dp::models {

using nn::Tensor;

Tcae::Tcae(TcaeConfig config, Rng& rng) : config_(config) {
  const int s = config_.inputSize;
  if (s % 4 != 0)
    throw std::invalid_argument("Tcae: inputSize must be divisible by 4");
  const int s4 = s / 4;  // spatial size after two stride-2 convs
  const int flat = config_.conv2Channels * s4 * s4;

  encoder_.emplace<nn::Conv2d>(1, config_.conv1Channels, 3, 2, 1, rng,
                               config_.convWeightDecay);
  encoder_.emplace<nn::ReLU>();
  encoder_.emplace<nn::Conv2d>(config_.conv1Channels, config_.conv2Channels,
                               3, 2, 1, rng, config_.convWeightDecay);
  encoder_.emplace<nn::ReLU>();
  encoder_.emplace<nn::Flatten>();
  encoder_.emplace<nn::Linear>(flat, config_.hidden, rng,
                               config_.denseWeightDecay);
  encoder_.emplace<nn::ReLU>();
  encoder_.emplace<nn::Linear>(config_.hidden, config_.latentDim, rng,
                               config_.denseWeightDecay);

  decoder_.emplace<nn::Linear>(config_.latentDim, config_.hidden, rng,
                               config_.denseWeightDecay);
  decoder_.emplace<nn::ReLU>();
  decoder_.emplace<nn::Linear>(config_.hidden, flat, rng,
                               config_.denseWeightDecay);
  decoder_.emplace<nn::ReLU>();
  decoder_.emplace<nn::Reshape>(config_.conv2Channels, s4, s4);
  decoder_.emplace<nn::ConvTranspose2d>(config_.conv2Channels,
                                        config_.conv1Channels, 4, 2, 1, rng,
                                        config_.convWeightDecay);
  decoder_.emplace<nn::ReLU>();
  decoder_.emplace<nn::ConvTranspose2d>(config_.conv1Channels, 1, 4, 2, 1,
                                        rng, config_.convWeightDecay);
  decoder_.emplace<nn::Sigmoid>();
}

Tensor Tcae::encode(const Tensor& topologies) const {
  return encoder_.infer(topologies);
}

Tensor Tcae::decode(const Tensor& latents) const {
  return decoder_.infer(latents);
}

Tensor Tcae::reconstruct(const Tensor& topologies) const {
  return decode(encode(topologies));
}

double Tcae::trainStep(const Tensor& batch, nn::Optimizer& opt,
                       train::Harness* guard) {
  opt.zeroGrad();
  const Tensor latent = encoder_.forward(batch, /*training=*/true);
  const Tensor recon = decoder_.forward(latent, /*training=*/true);
  Tensor grad;
  const double loss = nn::mseLoss(recon, batch, grad);
  const Tensor gradLatent = decoder_.backward(grad);
  encoder_.backward(gradLatent);
  if (guard)
    guard->guardedStep(opt);
  else
    opt.step();
  return loss;
}

std::uint64_t Tcae::configHash(std::size_t datasetSize) const {
  std::uint64_t h = train::hashInit();
  h = train::hashMix(h, 0x74636165u);  // model tag "tcae"
  h = train::hashMix(h, static_cast<std::uint64_t>(config_.inputSize));
  h = train::hashMix(h, static_cast<std::uint64_t>(config_.latentDim));
  h = train::hashMix(h, static_cast<std::uint64_t>(config_.conv1Channels));
  h = train::hashMix(h, static_cast<std::uint64_t>(config_.conv2Channels));
  h = train::hashMix(h, static_cast<std::uint64_t>(config_.hidden));
  h = train::hashMixDouble(h, config_.convWeightDecay);
  h = train::hashMixDouble(h, config_.denseWeightDecay);
  h = train::hashMixDouble(h, config_.initialLr);
  h = train::hashMixDouble(h, config_.lrDecayFactor);
  h = train::hashMix(h, static_cast<std::uint64_t>(config_.lrDecayEvery));
  h = train::hashMix(h, static_cast<std::uint64_t>(config_.batchSize));
  h = train::hashMix(h, static_cast<std::uint64_t>(datasetSize));
  return h;
}

TrainStats Tcae::train(const std::vector<squish::Topology>& data, Rng& rng) {
  return train(data, rng, train::TrainOptions{});
}

TrainStats Tcae::train(const std::vector<squish::Topology>& data, Rng& rng,
                       const train::TrainOptions& options) {
  if (data.empty()) throw std::invalid_argument("Tcae::train: no data");
  const Tensor dataset = encodeTopologies(data, config_.inputSize);
  nn::Adam opt(params(), config_.initialLr);
  const nn::StepDecaySchedule sched(config_.initialLr,
                                    config_.lrDecayFactor,
                                    config_.lrDecayEvery);
  train::HarnessSpec spec;
  spec.totalSteps = config_.trainSteps;
  spec.lrAt = [&sched](long step) { return sched.lrAt(step); };
  spec.configHash = configHash(data.size());
  spec.samplesPerStep = config_.batchSize;
  spec.datasetSize = static_cast<long>(data.size());
  train::Harness harness(params(), {}, {&opt}, std::move(spec), options);
  const train::HarnessStats hs =
      harness.run(rng, [&](long /*step*/, Rng& r) {
        const auto idx = sampleIndices(static_cast<int>(data.size()),
                                       config_.batchSize, r);
        return trainStep(gatherRows(dataset, idx), opt, &harness);
      });
  TrainStats stats;
  stats.steps = hs.steps;
  stats.finalLoss = hs.finalLoss;
  stats.lossEvery100 = hs.lossTrace;
  stats.resumed = hs.resumed;
  stats.resumedFrom = hs.resumedFrom;
  stats.rollbacks = hs.rollbacks;
  stats.nanEvents = hs.nanEvents;
  stats.checkpointsSaved = hs.checkpointsSaved;
  stats.sealedByStop = hs.sealedByStop;
  return stats;
}

std::vector<nn::Param*> Tcae::params() {
  std::vector<nn::Param*> all = encoder_.params();
  for (nn::Param* p : decoder_.params()) all.push_back(p);
  return all;
}

std::size_t Tcae::parameterCount() {
  std::size_t n = 0;
  for (nn::Param* p : params()) n += p->value.numel();
  return n;
}

void Tcae::save(const std::string& path) { nn::saveParams(params(), path); }

void Tcae::load(const std::string& path) { nn::loadParams(params(), path); }

}  // namespace dp::models
