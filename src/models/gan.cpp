#include "models/gan.hpp"

#include <stdexcept>

#include "models/batch.hpp"
#include "nn/activations.hpp"
#include "nn/batchnorm.hpp"
#include "nn/conv2d.hpp"
#include "nn/conv_transpose2d.hpp"
#include "nn/linear.hpp"
#include "nn/loss.hpp"
#include "nn/optimizer.hpp"
#include "nn/reshape.hpp"
#include "nn/schedule.hpp"
#include "nn/serialize.hpp"
#include "train/checkpoint.hpp"

namespace dp::models {

using nn::Tensor;

Gan::Gan(nn::Sequential generator, nn::Sequential discriminator,
         std::vector<int> zShape)
    : gen_(std::move(generator)), disc_(std::move(discriminator)),
      zShape_(std::move(zShape)) {
  if (zShape_.empty()) throw std::invalid_argument("Gan: empty z shape");
}

Tensor Gan::sample(int n, Rng& rng) {
  std::vector<int> shape = zShape_;
  shape.insert(shape.begin(), n);
  const Tensor z = Tensor::randn(shape, rng);
  return gen_.forward(z, /*training=*/false);
}

Tensor Gan::sampleInfer(int n, Rng& rng) const {
  std::vector<int> shape = zShape_;
  shape.insert(shape.begin(), n);
  const Tensor z = Tensor::randn(shape, rng);
  return gen_.infer(z);
}

std::vector<nn::Param*> Gan::params() {
  std::vector<nn::Param*> all = gen_.params();
  for (nn::Param* p : disc_.params()) all.push_back(p);
  return all;
}

void Gan::save(const std::string& path) {
  // Params + batch-norm running statistics: the generator's infer path
  // normalizes with the running stats, so a checkpoint without them
  // would not reproduce sampling.
  std::vector<const nn::Tensor*> tensors;
  for (nn::Param* p : params()) tensors.push_back(&p->value);
  for (nn::Tensor* t : gen_.state()) tensors.push_back(t);
  for (nn::Tensor* t : disc_.state()) tensors.push_back(t);
  nn::saveTensors(tensors, path);
}

void Gan::load(const std::string& path) {
  std::vector<nn::Tensor*> tensors;
  for (nn::Param* p : params()) tensors.push_back(&p->value);
  for (nn::Tensor* t : gen_.state()) tensors.push_back(t);
  for (nn::Tensor* t : disc_.state()) tensors.push_back(t);
  nn::loadTensors(tensors, path);
}

std::uint64_t Gan::configHash(const GanConfig& config, long datasetSize) {
  std::uint64_t h = train::hashInit();
  h = train::hashMix(h, 0x67616eu);  // model tag "gan"
  h = train::hashMixDouble(h, config.lr);
  h = train::hashMixDouble(h, config.lrDecayFactor);
  h = train::hashMix(h, static_cast<std::uint64_t>(config.lrDecayEvery));
  h = train::hashMix(h, static_cast<std::uint64_t>(config.batchSize));
  h = train::hashMix(h, static_cast<std::uint64_t>(datasetSize));
  for (const int d : zShape_)
    h = train::hashMix(h, static_cast<std::uint64_t>(d));
  for (const nn::Param* p : params())
    h = train::hashMix(h, p->value.numel());
  return h;
}

GanStats Gan::train(const Tensor& data, const GanConfig& config, Rng& rng) {
  return train(data, config, rng, train::TrainOptions{});
}

GanStats Gan::train(const Tensor& data, const GanConfig& config, Rng& rng,
                    const train::TrainOptions& options) {
  if (data.dim() < 1 || data.size(0) == 0)
    throw std::invalid_argument("Gan::train: empty dataset");
  const int n = data.size(0);
  nn::Adam genOpt(gen_.params(), config.lr);
  nn::Adam discOpt(disc_.params(), config.lr);
  const nn::StepDecaySchedule sched(config.lr, config.lrDecayFactor,
                                    config.lrDecayEvery);
  const int b = config.batchSize;

  std::vector<nn::Tensor*> modelState = gen_.state();
  for (nn::Tensor* t : disc_.state()) modelState.push_back(t);

  train::HarnessSpec spec;
  spec.totalSteps = config.trainSteps;
  spec.lrAt = [&sched](long step) { return sched.lrAt(step); };
  spec.configHash = configHash(config, n);
  spec.samplesPerStep = b;
  spec.datasetSize = n;
  train::Harness harness(params(), std::move(modelState),
                         {&genOpt, &discOpt}, std::move(spec), options);

  double finalDiscLoss = 0.0;
  double finalGenLoss = 0.0;
  const train::HarnessStats hs = harness.run(rng, [&](long /*step*/,
                                                      Rng& r) {
    // --- discriminator update: real -> 1, fake -> 0 ---
    discOpt.zeroGrad();
    double dLoss = 0.0;
    {
      const Tensor real = gatherRows(data, sampleIndices(n, b, r));
      const Tensor logits = disc_.forward(real, /*training=*/true);
      Tensor grad;
      dLoss += nn::bceWithLogitsLoss(logits, Tensor::full(logits.shape(), 1.0f),
                                     grad);
      disc_.backward(grad);
    }
    {
      std::vector<int> shape = zShape_;
      shape.insert(shape.begin(), b);
      const Tensor z = Tensor::randn(shape, r);
      const Tensor fake = gen_.forward(z, /*training=*/true);
      const Tensor logits = disc_.forward(fake, /*training=*/true);
      Tensor grad;
      dLoss += nn::bceWithLogitsLoss(logits, Tensor::zeros(logits.shape()),
                                     grad);
      disc_.backward(grad);  // fake batch is detached: no generator update
    }
    harness.guardedStep(discOpt);

    // --- generator update: make D(G(z)) -> 1 ---
    genOpt.zeroGrad();
    discOpt.zeroGrad();  // discard the gradients the G pass leaves in D
    double gLoss = 0.0;
    {
      std::vector<int> shape = zShape_;
      shape.insert(shape.begin(), b);
      const Tensor z = Tensor::randn(shape, r);
      const Tensor fake = gen_.forward(z, /*training=*/true);
      const Tensor logits = disc_.forward(fake, /*training=*/true);
      Tensor grad;
      gLoss = nn::bceWithLogitsLoss(logits, Tensor::full(logits.shape(), 1.0f),
                                    grad);
      const Tensor gradFake = disc_.backward(grad);
      gen_.backward(gradFake);
      harness.guardedStep(genOpt);
      discOpt.zeroGrad();
    }

    finalDiscLoss = dLoss;
    finalGenLoss = gLoss;
    return dLoss + gLoss;
  });

  GanStats stats;
  stats.steps = hs.steps;
  stats.finalDiscLoss = finalDiscLoss;
  stats.finalGenLoss = finalGenLoss;
  stats.resumed = hs.resumed;
  stats.resumedFrom = hs.resumedFrom;
  stats.rollbacks = hs.rollbacks;
  stats.nanEvents = hs.nanEvents;
  stats.checkpointsSaved = hs.checkpointsSaved;
  stats.sealedByStop = hs.sealedByStop;
  return stats;
}

Gan makeMlpGan(int dataDim, Rng& rng, int zDim, int hidden) {
  nn::Sequential gen;
  gen.emplace<nn::Linear>(zDim, hidden, rng);
  gen.emplace<nn::BatchNorm1d>(hidden);
  gen.emplace<nn::LeakyReLU>(0.2f);
  gen.emplace<nn::Linear>(hidden, hidden, rng);
  gen.emplace<nn::BatchNorm1d>(hidden);
  gen.emplace<nn::LeakyReLU>(0.2f);
  gen.emplace<nn::Linear>(hidden, dataDim, rng);

  nn::Sequential disc;
  disc.emplace<nn::Linear>(dataDim, hidden, rng, /*weightDecay=*/0.01);
  disc.emplace<nn::LeakyReLU>(0.2f);
  disc.emplace<nn::Linear>(hidden, hidden / 2, rng, /*weightDecay=*/0.01);
  disc.emplace<nn::LeakyReLU>(0.2f);
  disc.emplace<nn::Linear>(hidden / 2, 1, rng, /*weightDecay=*/0.01);

  return Gan(std::move(gen), std::move(disc), {zDim});
}

Gan makeDcgan(Rng& rng, int size, int zDim) {
  if (size % 4 != 0)
    throw std::invalid_argument("makeDcgan: size must be divisible by 4");
  const int s4 = size / 4;
  const int genC = 16;
  const int discC = 8;

  nn::Sequential gen;
  gen.emplace<nn::Linear>(zDim, genC * s4 * s4, rng);
  gen.emplace<nn::ReLU>();
  gen.emplace<nn::Reshape>(genC, s4, s4);
  gen.emplace<nn::ConvTranspose2d>(genC, genC / 2, 4, 2, 1, rng);
  gen.emplace<nn::ReLU>();
  gen.emplace<nn::ConvTranspose2d>(genC / 2, 1, 4, 2, 1, rng);
  gen.emplace<nn::Sigmoid>();

  nn::Sequential disc;
  disc.emplace<nn::Conv2d>(1, discC, 3, 2, 1, rng, /*weightDecay=*/0.01);
  disc.emplace<nn::LeakyReLU>(0.2f);
  disc.emplace<nn::Conv2d>(discC, discC * 2, 3, 2, 1, rng,
                           /*weightDecay=*/0.01);
  disc.emplace<nn::LeakyReLU>(0.2f);
  disc.emplace<nn::Flatten>();
  disc.emplace<nn::Linear>(discC * 2 * s4 * s4, 1, rng,
                           /*weightDecay=*/0.01);

  return Gan(std::move(gen), std::move(disc), {zDim});
}

}  // namespace dp::models
