#pragma once

/// \file vae.hpp
/// Variational auto-encoder (Kingma & Welling 2013), Eq. (7) of the
/// paper. Two builds are used in the evaluation:
///  - topology backbone ("VAE" row of Table II): same architecture as
///    the TCAE with the bottleneck replaced by mean/variance heads;
///    sampling z ~ N(0,1) through the decoder generates topologies.
///  - vector backbone ("V-TCAE" of Table III): a small MLP VAE over the
///    TCAE perturbation/latent vectors, playing the GAN's role in the
///    G-TCAE architecture.

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "nn/linear.hpp"
#include "nn/optimizer.hpp"
#include "nn/sequential.hpp"
#include "tensor/tensor.hpp"
#include "train/harness.hpp"

namespace dp::models {

struct VaeConfig {
  enum class Backbone { kTopology, kVector };

  Backbone backbone = Backbone::kTopology;
  int inputSize = 24;   ///< topology backbone: image edge length
  int inputDim = 32;    ///< vector backbone: feature dimension
  int latentDim = 16;
  int hidden = 96;
  int conv1Channels = 8;
  int conv2Channels = 16;
  // Weight of the KL term. Large enough that the aggregate posterior
  // approaches the prior, so sampling z ~ N(0,1) through the decoder is
  // meaningful; small enough not to collapse reconstruction.
  double klWeight = 0.1;
  double weightDecay = 1e-3;
  double initialLr = 1e-3;
  double lrDecayFactor = 0.7;
  long lrDecayEvery = 2000;
  long trainSteps = 1500;
  int batchSize = 64;
};

/// One VAE forward pass result.
struct VaeForward {
  nn::Tensor recon;
  nn::Tensor mu;
  nn::Tensor logVar;
};

class Vae {
 public:
  Vae(VaeConfig config, Rng& rng);

  [[nodiscard]] const VaeConfig& config() const { return config_; }

  /// Encode to the posterior parameters (inference mode).
  [[nodiscard]] VaeForward encode(const nn::Tensor& x);

  /// Decode latent codes to data space (inference mode).
  [[nodiscard]] nn::Tensor decode(const nn::Tensor& z);

  /// decode() through the stateless infer() path — safe to call
  /// concurrently on a shared, already-trained model.
  [[nodiscard]] nn::Tensor decodeInfer(const nn::Tensor& z) const;

  /// Draws n samples from the prior z ~ N(0,1) through the decoder.
  [[nodiscard]] nn::Tensor sample(int n, Rng& rng);

  /// sample() through the stateless infer() path.
  [[nodiscard]] nn::Tensor sampleInfer(int n, Rng& rng) const;

  /// Trains on `data` (first dim = samples) with the ELBO objective
  /// (reconstruction MSE + klWeight * KL). Returns final total loss.
  /// Runs on the train::Harness; default options keep the sentinels on
  /// and disk checkpointing off, bit-identical to the pre-harness loop.
  double train(const nn::Tensor& data, Rng& rng,
               const train::TrainOptions& options);
  double train(const nn::Tensor& data, Rng& rng);

  /// Checkpoint-resume identity of (architecture, hyper-parameters,
  /// dataset size); excludes trainSteps so runs can be extended.
  [[nodiscard]] std::uint64_t configHash(long datasetSize) const;

  [[nodiscard]] std::vector<nn::Param*> params();

  /// Checkpointing (parity with Tcae::save/load): all parameters plus
  /// any batch-norm running statistics, via nn::saveTensors/
  /// loadTensors. The loading Vae must be built with the same
  /// architecture.
  void save(const std::string& path);
  void load(const std::string& path);

 private:
  /// One optimization step; returns the total loss. With `guard` set,
  /// the update goes through Harness::guardedStep.
  double trainStep(const nn::Tensor& batch, nn::Optimizer& opt, Rng& rng,
                   train::Harness* guard = nullptr);

  VaeConfig config_;
  nn::Sequential encBase_;
  nn::Linear muHead_;
  nn::Linear logVarHead_;
  nn::Sequential decoder_;
};

}  // namespace dp::models
