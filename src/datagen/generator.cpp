#include "datagen/generator.hpp"

#include <cmath>
#include <stdexcept>

#include "geometry/track_grid.hpp"
#include "squish/extract.hpp"

namespace dp::datagen {

namespace {

/// Minimum cells a run needs to satisfy a design-rule length `nm` on the
/// given grid.
int cellsFor(double nm, double gridNm) {
  return std::max(1, static_cast<int>(std::ceil(nm / gridNm - 1e-9)));
}

}  // namespace

dp::Clip generateClip(const LibrarySpec& spec, const dp::DesignRules& rules,
                      Rng& rng) {
  if (spec.gridNm <= 0.0)
    throw std::invalid_argument("generateClip: grid must be positive");
  const int cells =
      static_cast<int>(std::floor(rules.clipWidth / spec.gridNm + 1e-9));
  if (cells <= 0)
    throw std::invalid_argument("generateClip: grid coarser than clip");

  // Design rules may demand longer runs than the spec's minima.
  const int minWire =
      std::max(spec.minWireCells, cellsFor(rules.minLength, spec.gridNm));
  const int minGap =
      std::max(spec.minGapCells, cellsFor(rules.minT2T, spec.gridNm));
  const int maxWire = std::max(spec.maxWireCells, minWire);
  const int maxGap = std::max(spec.maxGapCells, minGap);

  dp::Clip clip(dp::Rect{0.0, 0.0, rules.clipWidth, rules.clipHeight});
  const dp::TrackGrid grid(clip.window(), rules);

  // Window-to-track alignment: wires sit on rows 2t+phase. Occupied
  // rows are never adjacent either way.
  const int phase = spec.randomPhase && rng.bernoulli(0.5) ? 0 : 1;
  for (int t = 0; t < grid.trackCount(); ++t) {
    if (!rng.bernoulli(spec.trackOccupancy)) continue;
    const dp::Rect band = grid.rowBand(2 * t + phase);

    // Walk the grid cells, alternating gap and wire runs. A leading gap
    // of zero cells lets wires touch the window border.
    int pos = spec.allowBorderWires && rng.bernoulli(0.5)
                  ? 0
                  : rng.uniformInt(minGap, maxGap);
    bool wire = true;
    while (pos < cells) {
      if (wire) {
        int len = rng.uniformInt(minWire, maxWire);
        // A wire truncated by the right border is allowed (border wires
        // are exempt from the length rule); otherwise it must fit.
        if (pos + len > cells) {
          if (spec.allowBorderWires)
            len = cells - pos;
          else
            break;
        }
        clip.addShape(dp::Rect{pos * spec.gridNm, band.y0,
                               (pos + len) * spec.gridNm, band.y1});
        pos += len;
      } else {
        pos += rng.uniformInt(minGap, maxGap);
      }
      wire = !wire;
    }
  }
  clip.normalize();
  return clip;
}

std::vector<dp::Clip> generateLibrary(const LibrarySpec& spec,
                                      const dp::DesignRules& rules,
                                      int count, Rng& rng) {
  std::vector<dp::Clip> clips;
  clips.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) clips.push_back(generateClip(spec, rules, rng));
  return clips;
}

std::vector<dp::squish::Topology> extractTopologies(
    const std::vector<dp::Clip>& clips) {
  std::vector<dp::squish::Topology> out;
  out.reserve(clips.size());
  for (const dp::Clip& c : clips) {
    if (c.empty()) continue;
    out.push_back(dp::squish::extract(c).topo);
  }
  return out;
}

}  // namespace dp::datagen
