#pragma once

/// \file generator.hpp
/// Synthetic clip generation from a LibrarySpec: unidirectional,
/// on-track, DRC-clean 192x192 nm clips in the style of the paper's
/// training benchmarks.

#include <vector>

#include "common/rng.hpp"
#include "datagen/library_spec.hpp"
#include "geometry/clip.hpp"
#include "geometry/design_rules.hpp"
#include "squish/topology.hpp"

namespace dp::datagen {

/// Generates one clip: every wire track (odd half-pitch rows) is
/// occupied with probability spec.trackOccupancy; occupied tracks hold
/// alternating wire/gap runs drawn from the spec's run-length ranges on
/// the spec's x grid. All outputs satisfy the geometry DRC for `rules`.
[[nodiscard]] dp::Clip generateClip(const LibrarySpec& spec,
                                    const dp::DesignRules& rules, Rng& rng);

/// Generates `count` clips.
[[nodiscard]] std::vector<dp::Clip> generateLibrary(
    const LibrarySpec& spec, const dp::DesignRules& rules, int count,
    Rng& rng);

/// Extracts the squish topologies of a clip library (canonical by
/// construction; empty clips are skipped).
[[nodiscard]] std::vector<dp::squish::Topology> extractTopologies(
    const std::vector<dp::Clip>& clips);

}  // namespace dp::datagen
