#pragma once

/// \file library_spec.hpp
/// Specifications of synthetic layout libraries. These are the project's
/// substitute for the paper's five industrial 7nm EUV M2 benchmark
/// groups (directprint1..5) and for the industrial Monte-Carlo layout
/// generator baseline (see DESIGN.md, substitution table).
///
/// Clips are built on a per-track x-grid: real unidirectional designs
/// place line ends on a routing grid, which is what keeps the scan-line
/// complexity of industrial clips within the paper's caps (cx <= 12 for
/// 192 nm windows). Varying the grid pitch, track occupancy and
/// wire/gap run-length ranges reproduces the per-group complexity
/// concentration visible in the paper's Fig. 10(a).

#include <cstdint>
#include <string>

namespace dp::datagen {

/// Parameters of one synthetic library generator.
struct LibrarySpec {
  std::string name;
  double gridNm = 16.0;      ///< x placement grid (line ends sit on it)
  double trackOccupancy = 0.8;  ///< probability a wire track holds shapes
  int minWireCells = 2;      ///< min wire run length, in grid cells
  int maxWireCells = 4;      ///< max wire run length, in grid cells
  int minGapCells = 1;       ///< min gap run length, in grid cells
  int maxGapCells = 2;       ///< max gap run length, in grid cells
  bool allowBorderWires = true;  ///< wires may start/end on the window edge
  /// Pick the track phase per clip: wires on even or odd half-pitch
  /// rows. Real clip windows are not aligned to the track grid, so a
  /// library contains both alignments — and a generative model must
  /// learn the alternation instead of memorizing fixed wire rows.
  bool randomPhase = true;

  [[nodiscard]] friend bool operator==(const LibrarySpec&,
                                       const LibrarySpec&) = default;
};

/// The five benchmark-group surrogates (index 1..5). Throws on other
/// indices. Groups differ in grid pitch and run statistics, producing
/// distinct complexity concentrations.
[[nodiscard]] LibrarySpec directprintSpec(int index);

/// Monte-Carlo industry-tool surrogate: coarse grid, near-constant run
/// lengths — random shape placement under tight geometry constraints,
/// which is exactly the mechanism (and the diversity weakness) the paper
/// ascribes to the industrial baseline (§I, Fig. 1a, Table II).
[[nodiscard]] LibrarySpec industryToolSpec();

}  // namespace dp::datagen
