#include "datagen/library_spec.hpp"

#include <stdexcept>

namespace dp::datagen {

LibrarySpec directprintSpec(int index) {
  LibrarySpec s;
  switch (index) {
    case 1:
      s.name = "directprint1";
      s.gridNm = 16.0;
      s.trackOccupancy = 0.85;
      s.minWireCells = 2;
      s.maxWireCells = 4;
      s.minGapCells = 1;
      s.maxGapCells = 2;
      break;
    case 2:
      s.name = "directprint2";
      s.gridNm = 16.0;
      s.trackOccupancy = 0.90;
      s.minWireCells = 1;
      s.maxWireCells = 3;
      s.minGapCells = 1;
      s.maxGapCells = 3;
      break;
    case 3:
      s.name = "directprint3";
      s.gridNm = 24.0;
      s.trackOccupancy = 0.85;
      s.minWireCells = 2;
      s.maxWireCells = 4;
      s.minGapCells = 1;
      s.maxGapCells = 2;
      break;
    case 4:
      s.name = "directprint4";
      s.gridNm = 16.0;
      s.trackOccupancy = 0.70;
      s.minWireCells = 3;
      s.maxWireCells = 6;
      s.minGapCells = 2;
      s.maxGapCells = 3;
      break;
    case 5:
      s.name = "directprint5";
      s.gridNm = 32.0;
      s.trackOccupancy = 0.90;
      s.minWireCells = 1;
      s.maxWireCells = 3;
      s.minGapCells = 1;
      s.maxGapCells = 2;
      break;
    default:
      throw std::invalid_argument("directprintSpec: index must be 1..5");
  }
  return s;
}

LibrarySpec industryToolSpec() {
  // Tuned so the library's diversity lands near the paper's H ~ 1.6 for
  // the industrial baseline: a coarse grid and near-constant run
  // lengths concentrate the complexity histogram.
  LibrarySpec s;
  s.name = "industry-tool";
  s.gridNm = 32.0;
  s.trackOccupancy = 0.97;
  s.minWireCells = 1;
  s.maxWireCells = 2;
  s.minGapCells = 1;
  s.maxGapCells = 1;
  return s;
}

}  // namespace dp::datagen
