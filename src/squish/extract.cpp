#include "squish/extract.hpp"

#include <algorithm>
#include <vector>

namespace dp::squish {

namespace {

/// Sorted unique coordinates with an epsilon merge to absorb floating
/// point fuzz from upstream computations.
std::vector<double> uniqueSorted(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  std::vector<double> out;
  out.reserve(v.size());
  constexpr double kEps = 1e-9;
  for (double x : v) {
    if (out.empty() || x - out.back() > kEps) out.push_back(x);
  }
  return out;
}

}  // namespace

SquishPattern extract(const dp::Clip& clip) {
  const dp::Rect& w = clip.window();
  std::vector<double> xs{w.x0, w.x1};
  std::vector<double> ys{w.y0, w.y1};
  for (const dp::Rect& r : clip.shapes()) {
    xs.push_back(r.x0);
    xs.push_back(r.x1);
    ys.push_back(r.y0);
    ys.push_back(r.y1);
  }
  xs = uniqueSorted(std::move(xs));
  ys = uniqueSorted(std::move(ys));

  const int cols = static_cast<int>(xs.size()) - 1;
  const int rows = static_cast<int>(ys.size()) - 1;

  SquishPattern p;
  p.topo = Topology(std::max(rows, 0), std::max(cols, 0));
  p.x0 = w.x0;
  p.y0 = w.y0;
  p.dx.resize(std::max(cols, 0));
  p.dy.resize(std::max(rows, 0));
  for (int c = 0; c < cols; ++c) p.dx[c] = xs[c + 1] - xs[c];
  for (int r = 0; r < rows; ++r) p.dy[r] = ys[r + 1] - ys[r];

  for (const dp::Rect& s : clip.shapes()) {
    // Locate the grid band covered by the shape. Edges are exact members
    // of xs/ys because they were inserted above.
    const auto cx0 = std::lower_bound(xs.begin(), xs.end(), s.x0 - 1e-9) -
                     xs.begin();
    const auto cx1 = std::lower_bound(xs.begin(), xs.end(), s.x1 - 1e-9) -
                     xs.begin();
    const auto cy0 = std::lower_bound(ys.begin(), ys.end(), s.y0 - 1e-9) -
                     ys.begin();
    const auto cy1 = std::lower_bound(ys.begin(), ys.end(), s.y1 - 1e-9) -
                     ys.begin();
    for (auto r = cy0; r < cy1; ++r)
      for (auto c = cx0; c < cx1; ++c)
        p.topo.set(static_cast<int>(r), static_cast<int>(c), 1);
  }
  return p;
}

}  // namespace dp::squish
