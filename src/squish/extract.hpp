#pragma once

/// \file extract.hpp
/// Squish pattern extraction (paper Fig. 3): extend every shape edge of a
/// clip into an infinite scan line; the scan lines cut the window into a
/// grid; each grid cell becomes one topology entry (1 = covered by a
/// shape). The resulting representation is lossless.

#include "geometry/clip.hpp"
#include "squish/squish_pattern.hpp"

namespace dp::squish {

/// Extracts the squish pattern of `clip`. Window borders always
/// contribute scan lines, so empty clips yield a 1x1 all-zero topology.
/// The result is canonical by construction: adjacent scan lines are
/// distinct coordinates and every interior scan line carries a shape edge,
/// so no two adjacent rows/columns of the topology are identical unless
/// the edge lies on the window border.
[[nodiscard]] SquishPattern extract(const dp::Clip& clip);

}  // namespace dp::squish
