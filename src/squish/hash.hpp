#pragma once

/// \file hash.hpp
/// Stable 64-bit hashing of topology matrices, used to deduplicate
/// generated patterns. Uniqueness in the paper's metrics is defined on
/// topologies (§III-D: "the diversity and the unique pattern count are
/// calculated based on topologies"), so hashing the canonical topology is
/// exactly the right key.

#include <cstdint>

#include "squish/topology.hpp"

namespace dp::squish {

/// FNV-1a 64-bit hash over (rows, cols, cells). Two equal topologies
/// always hash equal; collisions between the tiny (<= 24x24) binary
/// matrices in this domain are vanishingly unlikely but callers that
/// need certainty should compare Topology values on hash equality.
[[nodiscard]] std::uint64_t hashTopology(const Topology& t);

/// Hash of the canonical form: canonicalizes, then hashes.
[[nodiscard]] std::uint64_t hashCanonical(const Topology& t);

}  // namespace dp::squish
