#include "squish/complexity.hpp"

#include "squish/canonical.hpp"

namespace dp::squish {

Complexity complexityOfCanonical(const Topology& t) {
  return Complexity{t.cols(), t.rows()};
}

Complexity complexityOf(const Topology& t) {
  return complexityOfCanonical(canonicalize(t));
}

}  // namespace dp::squish
