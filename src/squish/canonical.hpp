#pragma once

/// \file canonical.hpp
/// Canonicalization ("re-squishing") of topology matrices. A topology is
/// canonical when no two adjacent rows and no two adjacent columns are
/// identical — i.e., every scan line actually separates distinct
/// geometry. Binarized neural-network outputs and zero-padded training
/// inputs are not canonical; all legality, complexity and uniqueness
/// computations in this project operate on the canonical form.

#include "squish/squish_pattern.hpp"
#include "squish/topology.hpp"

namespace dp::squish {

/// True when no two adjacent rows/columns of `t` are identical.
[[nodiscard]] bool isCanonical(const Topology& t);

/// Merges identical adjacent rows and columns until canonical.
/// An empty topology is returned unchanged.
[[nodiscard]] Topology canonicalize(const Topology& t);

/// Canonicalizes a full squish pattern, summing the δ entries of merged
/// rows/columns so the described geometry is unchanged.
[[nodiscard]] SquishPattern canonicalize(const SquishPattern& p);

}  // namespace dp::squish
