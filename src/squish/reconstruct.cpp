#include "squish/reconstruct.hpp"

#include <stdexcept>

namespace dp::squish {

dp::Clip reconstruct(const SquishPattern& p) {
  if (!p.isConsistent())
    throw std::invalid_argument("reconstruct: inconsistent squish pattern");
  const auto xs = p.xLines();
  const auto ys = p.yLines();
  dp::Clip clip(dp::Rect{xs.front(), ys.front(), xs.back(), ys.back()});
  for (int r = 0; r < p.topo.rows(); ++r) {
    int c = 0;
    while (c < p.topo.cols()) {
      if (!p.topo.at(r, c)) {
        ++c;
        continue;
      }
      int end = c;
      while (end < p.topo.cols() && p.topo.at(r, end)) ++end;
      clip.addShape(dp::Rect{xs[c], ys[r], xs[end], ys[r + 1]});
      c = end;
    }
  }
  clip.normalize();
  return clip;
}

}  // namespace dp::squish
