#include "squish/hash.hpp"

#include "squish/canonical.hpp"

namespace dp::squish {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

constexpr std::uint64_t fnvStep(std::uint64_t h, std::uint8_t byte) {
  return (h ^ byte) * kFnvPrime;
}

std::uint64_t fnvU32(std::uint64_t h, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) h = fnvStep(h, static_cast<std::uint8_t>(v >> (8 * i)));
  return h;
}

}  // namespace

std::uint64_t hashTopology(const Topology& t) {
  std::uint64_t h = kFnvOffset;
  h = fnvU32(h, static_cast<std::uint32_t>(t.rows()));
  h = fnvU32(h, static_cast<std::uint32_t>(t.cols()));
  for (std::uint8_t c : t.cells()) h = fnvStep(h, c ? 1 : 0);
  return h;
}

std::uint64_t hashCanonical(const Topology& t) {
  return hashTopology(canonicalize(t));
}

}  // namespace dp::squish
