#include "squish/pad.hpp"

#include <stdexcept>

namespace dp::squish {

Topology padTo(const Topology& t, int rows, int cols) {
  if (t.rows() > rows || t.cols() > cols)
    throw std::invalid_argument("padTo: topology larger than target");
  Topology out(rows, cols);
  for (int r = 0; r < t.rows(); ++r)
    for (int c = 0; c < t.cols(); ++c) out.set(r, c, t.at(r, c));
  return out;
}

Topology padToNetwork(const Topology& t) {
  return padTo(t, kNetworkTopologySize, kNetworkTopologySize);
}

Topology unpad(const Topology& t) {
  int rows = t.rows();
  while (rows > 1 && !t.rowHasShape(rows - 1)) --rows;
  int cols = t.cols();
  while (cols > 1 && !t.colHasShape(cols - 1)) --cols;
  if (t.onesCount() == 0) return Topology(1, 1);
  Topology out(rows, cols);
  for (int r = 0; r < rows; ++r)
    for (int c = 0; c < cols; ++c) out.set(r, c, t.at(r, c));
  return out;
}

}  // namespace dp::squish
