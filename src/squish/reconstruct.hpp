#pragma once

/// \file reconstruct.hpp
/// Inverse of squish extraction: expand a squish pattern back into a
/// layout clip. Together with extract() this realizes the paper's claim
/// that the squish representation is lossless.

#include "geometry/clip.hpp"
#include "squish/squish_pattern.hpp"

namespace dp::squish {

/// Rebuilds the layout clip described by `p`. Shape cells in the same row
/// that are horizontally contiguous are merged into single rectangles, so
/// the output is in normalized (maximal-rectangle-per-band) form; on the
/// unidirectional layers this project targets that is fully canonical.
/// Throws std::invalid_argument when p.isConsistent() is false.
[[nodiscard]] dp::Clip reconstruct(const SquishPattern& p);

}  // namespace dp::squish
