#include "squish/topology.hpp"

#include <stdexcept>

namespace dp::squish {

Topology::Topology(int rows, int cols) : rows_(rows), cols_(cols) {
  if (rows < 0 || cols < 0)
    throw std::invalid_argument("Topology dimensions must be non-negative");
  cells_.assign(cellCount(), 0);
}

Topology::Topology(int rows, int cols,
                   const std::vector<std::uint8_t>& cells)
    : Topology(rows, cols) {
  if (cells.size() != cellCount())
    throw std::invalid_argument("Topology cell count mismatch");
  for (std::size_t i = 0; i < cells.size(); ++i)
    cells_[i] = cells[i] ? 1 : 0;
}

std::size_t Topology::index(int row, int col) const {
  if (row < 0 || row >= rows_ || col < 0 || col >= cols_)
    throw std::out_of_range("Topology index");
  return static_cast<std::size_t>(row) * cols_ + col;
}

int Topology::onesCount() const {
  int n = 0;
  for (std::uint8_t c : cells_) n += c ? 1 : 0;
  return n;
}

bool Topology::rowHasShape(int row) const {
  for (int c = 0; c < cols_; ++c)
    if (at(row, c)) return true;
  return false;
}

bool Topology::colHasShape(int col) const {
  for (int r = 0; r < rows_; ++r)
    if (at(r, col)) return true;
  return false;
}

bool Topology::rowsEqual(int r0, int r1) const {
  for (int c = 0; c < cols_; ++c)
    if (at(r0, c) != at(r1, c)) return false;
  return true;
}

bool Topology::colsEqual(int c0, int c1) const {
  for (int r = 0; r < rows_; ++r)
    if (at(r, c0) != at(r, c1)) return false;
  return true;
}

std::string Topology::toString() const {
  std::string out;
  out.reserve(static_cast<std::size_t>(rows_) * (cols_ + 1));
  for (int r = rows_ - 1; r >= 0; --r) {
    for (int c = 0; c < cols_; ++c) out.push_back(at(r, c) ? '#' : '.');
    out.push_back('\n');
  }
  return out;
}

}  // namespace dp::squish
