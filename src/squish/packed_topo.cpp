#include "squish/packed_topo.hpp"

#include <stdexcept>

#include "squish/topology.hpp"

namespace dp::squish {

Topology masksToTopology(const std::uint32_t* masks, int rows, int cols) {
  Topology t(rows, cols);
  for (int r = 0; r < rows; ++r)
    for (int c = 0; c < cols; ++c)
      t.set(r, c, ((masks[r] >> c) & 1U) != 0);
  return t;
}

// dp-analyze: hot
void topologyToMasks(const Topology& t, std::uint32_t* masks) {
  if (t.cols() > kMaxMaskCols)
    throw std::invalid_argument("topologyToMasks: topology wider than 32");
  for (int r = 0; r < t.rows(); ++r) {
    std::uint32_t m = 0;
    for (int c = 0; c < t.cols(); ++c)
      if (t.at(r, c)) m |= 1U << c;
    masks[r] = m;
  }
}

// dp-analyze: hot
void unpadMasks(std::uint32_t* masks, int& rows, int& cols) {
  std::uint32_t any = 0;
  int top = -1;
  for (int r = 0; r < rows; ++r) {
    any |= masks[r];
    if (masks[r] != 0) top = r;
  }
  if (any == 0) {
    // No shapes at all: squish::unpad returns a 1x1 zero topology.
    masks[0] = 0;
    rows = 1;
    cols = 1;
    return;
  }
  rows = top + 1;
  int width = 0;
  while (any != 0) {
    ++width;
    any >>= 1U;
  }
  cols = width;  // bits >= the old cols were already zero
}

// dp-analyze: hot
void canonicalizeMasks(std::uint32_t* masks, int& rows, int& cols) {
  // Row pass: keep the first row of each run of identical rows. Masks
  // compare equal iff the rows compare equal cell-by-cell, because bits
  // at and above `cols` are zero in every word.
  int kept = 0;
  for (int r = 0; r < rows; ++r)
    if (r == 0 || masks[r] != masks[r - 1]) masks[kept++] = masks[r];
  rows = kept;

  // Column pass on the row-merged matrix. Columns c-1 and c are equal
  // iff bit c-1 of m ^ (m >> 1) is clear for every kept row, so the OR
  // of those difference words marks exactly the columns to keep.
  std::uint32_t diff = 0;
  for (int r = 0; r < rows; ++r) diff |= masks[r] ^ (masks[r] >> 1U);
  std::uint32_t keepBits = 1;  // column 0 is always kept
  for (int c = 1; c < cols; ++c)
    if ((diff >> (c - 1)) & 1U) keepBits |= 1U << c;

  int newCols = 0;
  for (int c = 0; c < cols; ++c)
    if ((keepBits >> c) & 1U) ++newCols;
  if (newCols == cols) return;

  // Compress each row's bits through keepBits (portable PEXT).
  for (int r = 0; r < rows; ++r) {
    const std::uint32_t m = masks[r];
    std::uint32_t out = 0;
    int pos = 0;
    for (int c = 0; c < cols; ++c) {
      if (((keepBits >> c) & 1U) == 0) continue;
      out |= ((m >> c) & 1U) << pos;
      ++pos;
    }
    masks[r] = out;
  }
  cols = newCols;
}

// dp-analyze: hot
std::uint64_t hashMasks(const std::uint32_t* masks, int rows, int cols) {
  constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
  constexpr std::uint64_t kFnvPrime = 1099511628211ULL;
  std::uint64_t h = kFnvOffset;
  const auto step = [&h](std::uint8_t byte) { h = (h ^ byte) * kFnvPrime; };
  for (int i = 0; i < 4; ++i)
    step(static_cast<std::uint8_t>(static_cast<std::uint32_t>(rows) >> (8 * i)));
  for (int i = 0; i < 4; ++i)
    step(static_cast<std::uint8_t>(static_cast<std::uint32_t>(cols) >> (8 * i)));
  for (int r = 0; r < rows; ++r)
    for (int c = 0; c < cols; ++c)
      step(static_cast<std::uint8_t>((masks[r] >> c) & 1U));
  return h;
}

}  // namespace dp::squish
