#pragma once

/// \file pad.hpp
/// Fixed-size zero padding of topology matrices. The paper zero-pads
/// every squish topology to 24x24 before feeding it to the neural
/// networks (§IV-A); the padded region is space and collapses back into
/// single scan-line rows/columns under canonicalization.

#include "squish/topology.hpp"

namespace dp::squish {

/// Paper's network input edge length.
inline constexpr int kNetworkTopologySize = 24;

/// Zero-pads `t` to rows x cols with the original anchored at the
/// bottom-left (row 0, col 0). Throws std::invalid_argument when `t` is
/// larger than the target in either dimension.
[[nodiscard]] Topology padTo(const Topology& t, int rows, int cols);

/// padTo() with the paper's 24x24 network size.
[[nodiscard]] Topology padToNetwork(const Topology& t);

/// Removes all-zero rows from the top and all-zero columns from the
/// right — the exact inverse of padTo for topologies whose true extent
/// includes at least one shape in its last row/column. Returns a 1x1
/// zero topology when `t` has no shapes at all.
[[nodiscard]] Topology unpad(const Topology& t);

}  // namespace dp::squish
