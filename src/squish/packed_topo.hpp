#pragma once

/// \file packed_topo.hpp
/// Bitwise squish operations on row-mask topologies — the assessment
/// half of the fused decode path (DESIGN.md §14). A mask topology is a
/// rows x cols 0/1 matrix stored as one 32-bit word per row: bit c of
/// masks[r] is cell (r, c), row 0 = bottom, exactly the cell order of
/// squish::Topology. Bits at and above `cols` must be zero (every
/// operation here preserves that invariant). Width is capped at 32
/// columns — double the paper's 24x24 network window, and the fused
/// decoder emits masks directly, so the cap is structural, not a
/// runtime concern.
///
/// Each function is the exact counterpart of a byte-per-cell squish
/// primitive (unpad, canonicalize, hashTopology); the equivalence is
/// pinned bit-for-bit by tests/decode_fused_test.cpp against the float
/// reference path.

#include <cstdint>

namespace dp::squish {

/// Maximum mask-topology width (bits per row word).
inline constexpr int kMaxMaskCols = 32;

/// Converts a mask matrix to the byte-per-cell Topology it encodes.
/// Declared here for tests and interop; hot paths stay on masks.
class Topology;
[[nodiscard]] Topology masksToTopology(const std::uint32_t* masks, int rows,
                                       int cols);

/// Fills `masks` (rows words) from a byte-per-cell topology with
/// t.cols() <= 32. Counterpart of masksToTopology.
void topologyToMasks(const Topology& t, std::uint32_t* masks);

/// In-place counterpart of squish::unpad: drops all-zero rows above the
/// highest occupied row and all-zero columns right of the highest set
/// bit, collapsing an all-empty matrix to the 1x1 zero topology.
void unpadMasks(std::uint32_t* masks, int& rows, int& cols);

/// In-place counterpart of squish::canonicalize: keeps the first row of
/// every run of identical adjacent rows, then the first column of every
/// run of identical adjacent columns of the row-merged matrix (a single
/// pass each reaches the fixpoint, same argument as canonicalize).
/// Requires rows >= 1.
void canonicalizeMasks(std::uint32_t* masks, int& rows, int& cols);

/// FNV-1a-64 over the same byte stream squish::hashTopology feeds:
/// rows and cols as little-endian u32, then one 0/1 byte per cell in
/// row-major bottom-first order. hashMasks(m, r, c) ==
/// hashTopology(masksToTopology(m, r, c)) by construction.
[[nodiscard]] std::uint64_t hashMasks(const std::uint32_t* masks, int rows,
                                      int cols);

}  // namespace dp::squish
