#pragma once

/// \file topology.hpp
/// The squish topology matrix `T` (paper §III-A, Fig. 3): a small binary
/// matrix in which entry (row, col) is 1 when the corresponding scan-line
/// grid cell is covered by a shape and 0 when it is space.
///
/// Convention: row 0 is the bottom of the clip, column 0 the left edge.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace dp::squish {

/// Binary topology matrix. Rows x cols are small (<= ~32 each); storage
/// is one byte per cell for simplicity of indexing and NN interop.
class Topology {
 public:
  Topology() = default;
  Topology(int rows, int cols);
  /// Build from a row-major 0/1 initializer, `rows*cols` entries, with
  /// row 0 FIRST (bottom row first).
  Topology(int rows, int cols, const std::vector<std::uint8_t>& cells);

  [[nodiscard]] int rows() const { return rows_; }
  [[nodiscard]] int cols() const { return cols_; }
  [[nodiscard]] bool empty() const { return rows_ == 0 || cols_ == 0; }
  [[nodiscard]] std::size_t cellCount() const {
    return static_cast<std::size_t>(rows_) * static_cast<std::size_t>(cols_);
  }

  [[nodiscard]] std::uint8_t at(int row, int col) const {
    return cells_[index(row, col)];
  }
  void set(int row, int col, std::uint8_t v) { cells_[index(row, col)] = v; }

  [[nodiscard]] const std::vector<std::uint8_t>& cells() const {
    return cells_;
  }

  /// Number of shape (=1) cells.
  [[nodiscard]] int onesCount() const;

  /// True when any cell in `row` is a shape cell.
  [[nodiscard]] bool rowHasShape(int row) const;

  /// True when any cell in `col` is a shape cell.
  [[nodiscard]] bool colHasShape(int col) const;

  /// True when rows r0 and r1 hold identical cell sequences.
  [[nodiscard]] bool rowsEqual(int r0, int r1) const;

  /// True when columns c0 and c1 hold identical cell sequences.
  [[nodiscard]] bool colsEqual(int c0, int c1) const;

  /// Multi-line ASCII rendering, top row first ('#' shape, '.' space).
  [[nodiscard]] std::string toString() const;

  friend bool operator==(const Topology&, const Topology&) = default;

 private:
  [[nodiscard]] std::size_t index(int row, int col) const;

  int rows_ = 0;
  int cols_ = 0;
  std::vector<std::uint8_t> cells_;  // row-major, bottom row first
};

}  // namespace dp::squish
