#include "squish/canonical.hpp"

#include <numeric>
#include <vector>

namespace dp::squish {

namespace {

/// Indices of rows to keep: the first row of every run of identical rows.
std::vector<int> keptRows(const Topology& t) {
  std::vector<int> keep;
  for (int r = 0; r < t.rows(); ++r)
    if (r == 0 || !t.rowsEqual(r, r - 1)) keep.push_back(r);
  return keep;
}

std::vector<int> keptCols(const Topology& t) {
  std::vector<int> keep;
  for (int c = 0; c < t.cols(); ++c)
    if (c == 0 || !t.colsEqual(c, c - 1)) keep.push_back(c);
  return keep;
}

Topology gather(const Topology& t, const std::vector<int>& rows,
                const std::vector<int>& cols) {
  Topology out(static_cast<int>(rows.size()), static_cast<int>(cols.size()));
  for (std::size_t r = 0; r < rows.size(); ++r)
    for (std::size_t c = 0; c < cols.size(); ++c)
      out.set(static_cast<int>(r), static_cast<int>(c),
              t.at(rows[r], cols[c]));
  return out;
}

/// Sums delta entries over the runs that start at the kept indices.
std::vector<double> mergeDeltas(const std::vector<double>& deltas,
                                const std::vector<int>& keep, int total) {
  std::vector<double> out(keep.size(), 0.0);
  for (std::size_t k = 0; k < keep.size(); ++k) {
    const int begin = keep[k];
    const int end = (k + 1 < keep.size()) ? keep[k + 1] : total;
    for (int i = begin; i < end; ++i) out[k] += deltas[i];
  }
  return out;
}

}  // namespace

bool isCanonical(const Topology& t) {
  for (int r = 1; r < t.rows(); ++r)
    if (t.rowsEqual(r, r - 1)) return false;
  for (int c = 1; c < t.cols(); ++c)
    if (t.colsEqual(c, c - 1)) return false;
  return true;
}

Topology canonicalize(const Topology& t) {
  if (t.empty()) return t;
  // Merging duplicate rows cannot create new duplicate column pairs (two
  // columns differing in a removed row also differ in the kept identical
  // row), so a single row pass followed by a single column pass reaches a
  // fixpoint.
  const auto rows = keptRows(t);
  std::vector<int> allCols(t.cols());
  std::iota(allCols.begin(), allCols.end(), 0);
  const Topology rowMerged = gather(t, rows, allCols);
  const auto cols = keptCols(rowMerged);
  std::vector<int> allRows(rowMerged.rows());
  std::iota(allRows.begin(), allRows.end(), 0);
  return gather(rowMerged, allRows, cols);
}

SquishPattern canonicalize(const SquishPattern& p) {
  if (p.topo.empty()) return p;
  const auto rows = keptRows(p.topo);
  std::vector<int> allCols(p.topo.cols());
  std::iota(allCols.begin(), allCols.end(), 0);
  const Topology rowMerged = gather(p.topo, rows, allCols);
  const auto cols = keptCols(rowMerged);
  std::vector<int> allRows(rowMerged.rows());
  std::iota(allRows.begin(), allRows.end(), 0);

  SquishPattern out;
  out.topo = gather(rowMerged, allRows, cols);
  out.dy = mergeDeltas(p.dy, rows, p.topo.rows());
  out.dx = mergeDeltas(p.dx, cols, p.topo.cols());
  out.x0 = p.x0;
  out.y0 = p.y0;
  return out;
}

}  // namespace dp::squish
