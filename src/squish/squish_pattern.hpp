#pragma once

/// \file squish_pattern.hpp
/// The complete squish pattern representation (paper §III-A): a topology
/// matrix plus the geometry vectors δx, δy giving the width of each grid
/// column and the height of each grid row, and the clip origin (x0, y0).
/// The representation is lossless: extraction and reconstruction are
/// exact inverses (tested as a round-trip property).

#include <cstddef>
#include <vector>

#include "squish/topology.hpp"

namespace dp::squish {

/// Topology + geometry. dx.size() == topo.cols(), dy.size() == topo.rows().
struct SquishPattern {
  Topology topo;
  std::vector<double> dx;  ///< column widths, left to right (nm)
  std::vector<double> dy;  ///< row heights, bottom to top (nm)
  double x0 = 0.0;         ///< window lower-left x
  double y0 = 0.0;         ///< window lower-left y

  /// True when the geometry vectors match the topology dimensions and all
  /// deltas are strictly positive.
  [[nodiscard]] bool isConsistent() const;

  /// Total window width (sum of dx).
  [[nodiscard]] double width() const;

  /// Total window height (sum of dy).
  [[nodiscard]] double height() const;

  /// Scan-line x coordinates x0..x_cx (size cols()+1).
  [[nodiscard]] std::vector<double> xLines() const;

  /// Scan-line y coordinates y0..y_cy (size rows()+1).
  [[nodiscard]] std::vector<double> yLines() const;
};

/// Storage cost of the squish representation in bytes, per the paper's
/// model (§III-A): topology at 1 bit/cell, geometry at 4 bytes/delta.
/// The paper's example: a 3x4 topology in a 64x64 nm clip costs
/// 4*3/8 + (4+3)*4 = 29.5 bytes versus 512 bytes at 1 bit/nm^2.
[[nodiscard]] double squishStorageBytes(const SquishPattern& p);

/// Storage cost of a raster image of the same clip at `nmPerPixel`
/// resolution and 1 bit per pixel.
[[nodiscard]] double imageStorageBytes(double widthNm, double heightNm,
                                       double nmPerPixel = 1.0);

}  // namespace dp::squish
