#include "squish/squish_pattern.hpp"

#include <cmath>
#include <numeric>

namespace dp::squish {

bool SquishPattern::isConsistent() const {
  if (static_cast<int>(dx.size()) != topo.cols()) return false;
  if (static_cast<int>(dy.size()) != topo.rows()) return false;
  for (double d : dx)
    if (!(d > 0.0)) return false;
  for (double d : dy)
    if (!(d > 0.0)) return false;
  return true;
}

double SquishPattern::width() const {
  return std::accumulate(dx.begin(), dx.end(), 0.0);
}

double SquishPattern::height() const {
  return std::accumulate(dy.begin(), dy.end(), 0.0);
}

std::vector<double> SquishPattern::xLines() const {
  std::vector<double> xs(dx.size() + 1);
  xs[0] = x0;
  for (std::size_t i = 0; i < dx.size(); ++i) xs[i + 1] = xs[i] + dx[i];
  return xs;
}

std::vector<double> SquishPattern::yLines() const {
  std::vector<double> ys(dy.size() + 1);
  ys[0] = y0;
  for (std::size_t i = 0; i < dy.size(); ++i) ys[i + 1] = ys[i] + dy[i];
  return ys;
}

double squishStorageBytes(const SquishPattern& p) {
  const double topoBits = static_cast<double>(p.topo.cellCount());
  return topoBits / 8.0 + 4.0 * static_cast<double>(p.dx.size() +
                                                    p.dy.size());
}

double imageStorageBytes(double widthNm, double heightNm,
                         double nmPerPixel) {
  const double px = std::ceil(widthNm / nmPerPixel);
  const double py = std::ceil(heightNm / nmPerPixel);
  return px * py / 8.0;
}

}  // namespace dp::squish
