#pragma once

/// \file complexity.hpp
/// Pattern complexity (paper Definition 1): the number of scan lines
/// minus one along each axis — equivalently, the number of columns (cx)
/// and rows (cy) of the canonical topology matrix.

#include "squish/topology.hpp"

namespace dp::squish {

/// (cx, cy) complexity pair.
struct Complexity {
  int cx = 0;
  int cy = 0;
  friend constexpr bool operator==(const Complexity&,
                                   const Complexity&) = default;
};

/// Complexity of an already-canonical topology (cx = cols, cy = rows).
[[nodiscard]] Complexity complexityOfCanonical(const Topology& t);

/// Complexity of an arbitrary topology: canonicalizes first.
[[nodiscard]] Complexity complexityOf(const Topology& t);

}  // namespace dp::squish
