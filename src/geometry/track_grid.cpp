#include "geometry/track_grid.hpp"

#include <cmath>
#include <stdexcept>

namespace dp {

TrackGrid::TrackGrid(Rect window, const DesignRules& rules)
    : window_(window.normalized()), rowHeight_(rules.rowHeight()) {
  if (rowHeight_ <= 0.0) throw std::invalid_argument("pitch must be > 0");
  rowCount_ = static_cast<int>(std::floor(window_.height() / rowHeight_ +
                                          1e-9));
}

Rect TrackGrid::rowBand(int row) const {
  if (row < 0 || row >= rowCount_)
    throw std::out_of_range("TrackGrid::rowBand");
  const double y0 = window_.y0 + row * rowHeight_;
  return {window_.x0, y0, window_.x1, y0 + rowHeight_};
}

Rect TrackGrid::trackBand(int track) const {
  return rowBand(2 * track + 1);
}

int TrackGrid::rowAt(double y) const {
  if (y < window_.y0 || y > window_.y1) return -1;
  int row = static_cast<int>(std::floor((y - window_.y0) / rowHeight_));
  if (row == rowCount_) --row;  // y exactly at the top border
  return row;
}

bool TrackGrid::onTrack(const Rect& shape) const { return trackOf(shape) >= 0; }

int TrackGrid::latticeRowOf(const Rect& shape) const {
  constexpr double kEps = 1e-6;
  for (int r = 0; r < rowCount_; ++r) {
    const Rect band = rowBand(r);
    if (std::abs(shape.y0 - band.y0) < kEps &&
        std::abs(shape.y1 - band.y1) < kEps)
      return r;
  }
  return -1;
}

int TrackGrid::trackOf(const Rect& shape) const {
  constexpr double kEps = 1e-6;
  for (int t = 0; t < trackCount(); ++t) {
    const Rect band = trackBand(t);
    if (std::abs(shape.y0 - band.y0) < kEps &&
        std::abs(shape.y1 - band.y1) < kEps)
      return t;
  }
  return -1;
}

}  // namespace dp
