#pragma once

/// \file design_rules.hpp
/// Design-rule set for the unidirectional EUV metal layers the paper
/// targets (7nm M2, §II and Fig. 2 of the paper).
///
/// Terminology follows the paper exactly:
///   - pitch `p`      : distance between adjacent wire tracks,
///   - T2T `t`        : minimum line-end to line-end distance in a track,
///   - wire length `l`: shape size along the track (x direction),
///   - wire width `w` : shape size against the track (y direction).
///
/// Eq. (10a) of the paper fixes every horizontal scan-line interval to
/// p/2, i.e., wire bands and the spaces between them are both p/2 tall.

namespace dp {

/// A complete design-rule set for one unidirectional metal layer.
/// All lengths in nanometres.
struct DesignRules {
  // Values form a scaled 7nm-EUV-M2 surrogate chosen so that every
  // topology within the complexity caps admits a feasible Eq. (10)
  // system inside the clip window (the paper guarantees the same by
  // construction, §IV-A).
  double pitch = 32.0;       ///< Track pitch `p` (wire band + space = p).
  double minT2T = 12.0;      ///< Minimum tip-to-tip spacing `t_min`.
  double minLength = 16.0;   ///< Minimum wire length `l_min`.
  double minSpaceX = 6.0;    ///< Minimum width of any vertical grid column.
  double clipWidth = 192.0;  ///< Clip window extent `d_x`.
  double clipHeight = 192.0; ///< Clip window extent `d_y`.
  int maxCx = 12;            ///< Complexity cap in x (paper §IV-A).
  int maxCy = 12;            ///< Complexity cap in y (paper §IV-A).

  /// Wire width = p/2 (shapes occupy the full track band, §III-D).
  [[nodiscard]] constexpr double wireWidth() const { return pitch / 2.0; }

  /// Height of every horizontal grid row (Eq. 10a).
  [[nodiscard]] constexpr double rowHeight() const { return pitch / 2.0; }

  /// Number of p/2 rows that fit in the clip window.
  [[nodiscard]] constexpr int rowCount() const {
    return static_cast<int>(clipHeight / rowHeight());
  }

  /// Number of wire tracks in the clip window (every other row).
  [[nodiscard]] constexpr int trackCount() const { return rowCount() / 2; }

  friend constexpr bool operator==(const DesignRules&,
                                   const DesignRules&) = default;
};

/// The rule set used throughout the paper's experiments: 7nm EUV M2
/// surrogate — 192x192 nm clips, 32 nm pitch, 16 nm wires, 12 rows.
[[nodiscard]] constexpr DesignRules euv7nmM2() { return DesignRules{}; }

/// A relaxed rule set handy for tests (small window, loose minima).
[[nodiscard]] constexpr DesignRules testRules() {
  DesignRules r;
  r.pitch = 4.0;
  r.minT2T = 2.0;
  r.minLength = 2.0;
  r.minSpaceX = 1.0;
  r.clipWidth = 32.0;
  r.clipHeight = 16.0;
  r.maxCx = 16;
  r.maxCy = 8;
  return r;
}

}  // namespace dp
