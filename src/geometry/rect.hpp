#pragma once

/// \file rect.hpp
/// Axis-aligned rectangle in layout (nanometre) coordinates.
///
/// All shapes handled by this project are rectilinear; on the
/// unidirectional EUV metal layers the paper targets they are plain
/// rectangles, so Rect is the workhorse geometry type.

#include <algorithm>
#include <string>

#include "geometry/point.hpp"

namespace dp {

/// Closed axis-aligned rectangle [x0, x1] x [y0, y1] in nanometres.
/// Invariant (after normalize()): x0 <= x1 and y0 <= y1.
struct Rect {
  double x0 = 0.0;
  double y0 = 0.0;
  double x1 = 0.0;
  double y1 = 0.0;

  constexpr Rect() = default;
  constexpr Rect(double x0_, double y0_, double x1_, double y1_)
      : x0(x0_), y0(y0_), x1(x1_), y1(y1_) {}

  [[nodiscard]] constexpr double width() const { return x1 - x0; }
  [[nodiscard]] constexpr double height() const { return y1 - y0; }
  [[nodiscard]] constexpr double area() const { return width() * height(); }
  [[nodiscard]] constexpr Point lowerLeft() const { return {x0, y0}; }
  [[nodiscard]] constexpr Point upperRight() const { return {x1, y1}; }
  [[nodiscard]] constexpr Point center() const {
    return {(x0 + x1) / 2.0, (y0 + y1) / 2.0};
  }
  [[nodiscard]] constexpr bool empty() const { return x1 <= x0 || y1 <= y0; }

  /// Returns a copy with corners swapped as needed so the invariant holds.
  [[nodiscard]] constexpr Rect normalized() const {
    return {std::min(x0, x1), std::min(y0, y1), std::max(x0, x1),
            std::max(y0, y1)};
  }

  /// True when the interiors overlap (shared edges do not count).
  [[nodiscard]] constexpr bool overlaps(const Rect& o) const {
    return x0 < o.x1 && o.x0 < x1 && y0 < o.y1 && o.y0 < y1;
  }

  /// True when the two rectangles share at least an edge segment or
  /// overlap (corner-only contact does not count as touching).
  [[nodiscard]] bool touches(const Rect& o) const;

  /// True when the rectangles meet at exactly one corner point — the
  /// "bow-tie" configuration forbidden by EUV design rules (Fig. 5).
  [[nodiscard]] bool cornerTouches(const Rect& o) const;

  /// True when `o` lies entirely inside (or on the border of) this rect.
  [[nodiscard]] constexpr bool contains(const Rect& o) const {
    return x0 <= o.x0 && o.x1 <= x1 && y0 <= o.y0 && o.y1 <= y1;
  }

  [[nodiscard]] constexpr bool contains(const Point& p) const {
    return x0 <= p.x && p.x <= x1 && y0 <= p.y && p.y <= y1;
  }

  /// Intersection rectangle; empty() if the inputs do not overlap.
  [[nodiscard]] Rect intersect(const Rect& o) const;

  /// Smallest rectangle containing both inputs.
  [[nodiscard]] Rect unite(const Rect& o) const;

  /// Translate by (dx, dy).
  [[nodiscard]] constexpr Rect shifted(double dx, double dy) const {
    return {x0 + dx, y0 + dy, x1 + dx, y1 + dy};
  }

  [[nodiscard]] std::string toString() const;

  friend constexpr bool operator==(const Rect&, const Rect&) = default;
};

/// Lexicographic order (y0, x0, y1, x1) — a stable canonical shape order.
[[nodiscard]] bool rectLess(const Rect& a, const Rect& b);

}  // namespace dp
