#pragma once

/// \file point.hpp
/// Basic 2-D point type used throughout the layout geometry substrate.
/// Coordinates are in nanometres, stored as double (design rules in this
/// project are multiples of 0.5 nm, so doubles are exact for all legal
/// values that appear in practice).

namespace dp {

/// A point in the layout plane, in nanometres.
struct Point {
  double x = 0.0;
  double y = 0.0;

  friend constexpr bool operator==(const Point&, const Point&) = default;
};

}  // namespace dp
