#pragma once

/// \file track_grid.hpp
/// Maps the fixed routing tracks of a unidirectional metal layer onto a
/// clip window. Wires must sit exactly on track bands; this class is the
/// single source of truth for where those bands are.

#include <vector>

#include "geometry/design_rules.hpp"
#include "geometry/rect.hpp"

namespace dp {

/// Routing-track geometry of one clip window. Rows of height p/2
/// alternate space / wire band starting with a space row at the bottom:
/// row 1, 3, 5, ... are wire tracks (so tracks never touch the window
/// border and adjacent-track spacing is guaranteed by construction).
class TrackGrid {
 public:
  TrackGrid(Rect window, const DesignRules& rules);

  [[nodiscard]] int rowCount() const { return rowCount_; }
  [[nodiscard]] int trackCount() const { return rowCount_ / 2; }

  /// Y-extent of grid row `row` (0-based from the bottom).
  [[nodiscard]] Rect rowBand(int row) const;

  /// Y-extent of wire track `track` (0-based from the bottom);
  /// track i occupies grid row 2*i + 1.
  [[nodiscard]] Rect trackBand(int track) const;

  /// Grid row index containing coordinate y, or -1 if outside the window.
  [[nodiscard]] int rowAt(double y) const;

  /// True when `shape` exactly fills some wire-track band in y.
  [[nodiscard]] bool onTrack(const Rect& shape) const;

  /// Track index of an on-track shape, or -1.
  [[nodiscard]] int trackOf(const Rect& shape) const;

  /// Half-pitch lattice row exactly filled by `shape` in y (any row, not
  /// just the odd wire-track rows), or -1. Generated clips may align
  /// their wires to any lattice row as long as occupied rows are never
  /// adjacent; this is the check the geometry DRC uses.
  [[nodiscard]] int latticeRowOf(const Rect& shape) const;

 private:
  Rect window_;
  double rowHeight_;
  int rowCount_;
};

}  // namespace dp
