#include "geometry/clip.hpp"

#include <algorithm>
#include <sstream>

namespace dp {

Clip::Clip(Rect window, std::vector<Rect> shapes)
    : window_(window.normalized()) {
  shapes_.reserve(shapes.size());
  for (const Rect& r : shapes) addShape(r);
}

bool Clip::addShape(const Rect& r) {
  const Rect clipped = r.normalized().intersect(window_);
  if (clipped.empty()) return false;
  shapes_.push_back(clipped);
  return true;
}

void Clip::normalize() {
  std::sort(shapes_.begin(), shapes_.end(), rectLess);
  // Pass 1: merge rectangles sharing the same y-band that overlap or
  // abut in x.
  std::vector<Rect> merged;
  merged.reserve(shapes_.size());
  for (const Rect& r : shapes_) {
    if (!merged.empty()) {
      Rect& last = merged.back();
      if (last.y0 == r.y0 && last.y1 == r.y1 && r.x0 <= last.x1) {
        last.x1 = std::max(last.x1, r.x1);
        continue;
      }
    }
    merged.push_back(r);
  }
  // Pass 2: merge vertically stacked rectangles with identical x
  // extents (abutting or overlapping in y), so reconstructed squish
  // patterns come back as maximal rectangles.
  std::sort(merged.begin(), merged.end(), [](const Rect& a, const Rect& b) {
    if (a.x0 != b.x0) return a.x0 < b.x0;
    if (a.x1 != b.x1) return a.x1 < b.x1;
    return a.y0 < b.y0;
  });
  std::vector<Rect> stacked;
  stacked.reserve(merged.size());
  for (const Rect& r : merged) {
    if (!stacked.empty()) {
      Rect& last = stacked.back();
      if (last.x0 == r.x0 && last.x1 == r.x1 && r.y0 <= last.y1) {
        last.y1 = std::max(last.y1, r.y1);
        continue;
      }
    }
    stacked.push_back(r);
  }
  std::sort(stacked.begin(), stacked.end(), rectLess);
  shapes_ = std::move(stacked);
}

double Clip::shapeArea() const {
  double a = 0.0;
  for (const Rect& r : shapes_) a += r.area();
  return a;
}

double Clip::density() const {
  const double wa = window_.area();
  return wa > 0.0 ? shapeArea() / wa : 0.0;
}

Clip Clip::rebased() const {
  const double dx = -window_.x0;
  const double dy = -window_.y0;
  Clip out(window_.shifted(dx, dy));
  for (const Rect& r : shapes_) out.addShape(r.shifted(dx, dy));
  return out;
}

std::string Clip::toString() const {
  std::ostringstream os;
  os << "Clip window=" << window_.toString() << " shapes=" << shapes_.size();
  return os.str();
}

}  // namespace dp
