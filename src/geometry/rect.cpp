#include "geometry/rect.hpp"

#include <cmath>
#include <sstream>

namespace dp {

bool Rect::touches(const Rect& o) const {
  if (overlaps(o)) return true;
  const bool xOverlap = x0 < o.x1 && o.x0 < x1;
  const bool yOverlap = y0 < o.y1 && o.y0 < y1;
  const bool xAbut = x1 == o.x0 || o.x1 == x0;
  const bool yAbut = y1 == o.y0 || o.y1 == y0;
  return (xAbut && yOverlap) || (yAbut && xOverlap);
}

bool Rect::cornerTouches(const Rect& o) const {
  const bool xAbut = x1 == o.x0 || o.x1 == x0;
  const bool yAbut = y1 == o.y0 || o.y1 == y0;
  return xAbut && yAbut && !touches(o);
}

Rect Rect::intersect(const Rect& o) const {
  Rect r{std::max(x0, o.x0), std::max(y0, o.y0), std::min(x1, o.x1),
         std::min(y1, o.y1)};
  if (r.empty()) return Rect{};
  return r;
}

Rect Rect::unite(const Rect& o) const {
  if (empty()) return o;
  if (o.empty()) return *this;
  return {std::min(x0, o.x0), std::min(y0, o.y0), std::max(x1, o.x1),
          std::max(y1, o.y1)};
}

std::string Rect::toString() const {
  std::ostringstream os;
  os << "(" << x0 << "," << y0 << ")-(" << x1 << "," << y1 << ")";
  return os.str();
}

bool rectLess(const Rect& a, const Rect& b) {
  if (a.y0 != b.y0) return a.y0 < b.y0;
  if (a.x0 != b.x0) return a.x0 < b.x0;
  if (a.y1 != b.y1) return a.y1 < b.y1;
  return a.x1 < b.x1;
}

}  // namespace dp
