#pragma once

/// \file clip.hpp
/// A layout clip: a fixed window plus the rectilinear shapes inside it.
/// Clips are the unit of pattern extraction and generation in the paper
/// (192x192 nm windows of the 7nm EUV M2 layer).

#include <cstddef>
#include <string>
#include <vector>

#include "geometry/rect.hpp"

namespace dp {

/// A layout clip. Shapes are kept clipped to the window.
class Clip {
 public:
  Clip() = default;
  explicit Clip(Rect window) : window_(window.normalized()) {}
  Clip(Rect window, std::vector<Rect> shapes);

  [[nodiscard]] const Rect& window() const { return window_; }
  [[nodiscard]] const std::vector<Rect>& shapes() const { return shapes_; }
  [[nodiscard]] std::size_t shapeCount() const { return shapes_.size(); }
  [[nodiscard]] bool empty() const { return shapes_.empty(); }

  /// Adds a shape, clipping it to the window. Degenerate (empty after
  /// clipping) shapes are dropped. Returns true if the shape was kept.
  bool addShape(const Rect& r);

  /// Canonicalizes the clip: sorts shapes, merges overlapping/abutting
  /// same-row rectangles into maximal rectangles. Unidirectional layers
  /// guarantee merging within a track suffices to reach a canonical form.
  void normalize();

  /// Sum of shape areas (after normalize(), shapes are disjoint).
  [[nodiscard]] double shapeArea() const;

  /// Fraction of the window covered by shapes, in [0, 1].
  [[nodiscard]] double density() const;

  /// Returns the clip translated so its window lower-left is at (0, 0).
  [[nodiscard]] Clip rebased() const;

  [[nodiscard]] std::string toString() const;

  friend bool operator==(const Clip&, const Clip&) = default;

 private:
  Rect window_;
  std::vector<Rect> shapes_;
};

}  // namespace dp
