#include "core/guide.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "models/batch.hpp"
#include "nn/serialize.hpp"

namespace dp::core {

Moments momentsOf(const nn::Tensor& data) {
  const int n = data.size(0);
  const int d = data.size(1);
  Moments m;
  m.mean.assign(static_cast<std::size_t>(d), 0.0);
  m.std.assign(static_cast<std::size_t>(d), 1.0);
  for (int j = 0; j < d; ++j) {
    double mean = 0.0;
    for (int i = 0; i < n; ++i) mean += data.at(i, j);
    mean /= n;
    double var = 0.0;
    for (int i = 0; i < n; ++i) {
      const double diff = data.at(i, j) - mean;
      var += diff * diff;
    }
    var /= std::max(n - 1, 1);
    m.mean[static_cast<std::size_t>(j)] = mean;
    m.std[static_cast<std::size_t>(j)] =
        std::sqrt(var) > 1e-6 ? std::sqrt(var) : 1.0;
  }
  return m;
}

GuideModel::GuideModel(const GuideConfig& config, Rng& rng)
    : config_(config) {
  if (config_.dataDim <= 0)
    throw std::invalid_argument("GuideModel: dataDim must be positive");
  if (config_.kind == GuideConfig::Kind::kGan) {
    gan_ = std::make_unique<models::Gan>(models::makeMlpGan(
        config_.dataDim, rng, config_.zDim, config_.hidden));
  } else {
    models::VaeConfig vc;
    vc.backbone = models::VaeConfig::Backbone::kVector;
    vc.inputDim = config_.dataDim;
    vc.latentDim = config_.vaeLatentDim;
    vc.hidden = config_.hidden;
    vc.trainSteps = config_.vaeTrainSteps;
    vae_ = std::make_unique<models::Vae>(vc, rng);
  }
  // Identity transform until train() or setMoments() calibrates it.
  data_.mean.assign(static_cast<std::size_t>(config_.dataDim), 0.0);
  data_.std.assign(static_cast<std::size_t>(config_.dataDim), 1.0);
  guide_ = data_;
}

void GuideModel::train(const nn::Tensor& data, Rng& rng) {
  train(data, rng, train::TrainOptions{});
}

void GuideModel::train(const nn::Tensor& data, Rng& rng,
                       const train::TrainOptions& options) {
  if (data.dim() != 2 || data.size(0) == 0)
    throw std::invalid_argument("GuideModel::train: need (N, D) data");
  if (data.size(1) != config_.dataDim)
    throw std::invalid_argument("GuideModel::train: data dim mismatch");
  data_ = momentsOf(data);
  const int n = data.size(0);
  const int d = data.size(1);
  nn::Tensor normalized({n, d});
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < d; ++j)
      normalized.at(i, j) = static_cast<float>(
          (data.at(i, j) - data_.mean[static_cast<std::size_t>(j)]) /
          data_.std[static_cast<std::size_t>(j)]);
  if (gan_)
    gan_->train(normalized, config_.gan, rng, options);
  else
    vae_->train(normalized, rng, options);
  // Calibration: measure what the trained guide actually emits.
  const nn::Tensor probe = sampleInner(512, rng);
  guide_ = momentsOf(probe);
}

nn::Tensor GuideModel::sampleInner(int n, Rng& rng) const {
  return gan_ ? gan_->sampleInfer(n, rng) : vae_->sampleInfer(n, rng);
}

nn::Tensor GuideModel::sample(int n, Rng& rng) const {
  nn::Tensor out = sampleInner(n, rng);
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < out.size(1); ++j) {
      const auto k = static_cast<std::size_t>(j);
      const double unit = (out.at(i, j) - guide_.mean[k]) / guide_.std[k];
      out.at(i, j) =
          static_cast<float>(unit * data_.std[k] + data_.mean[k]);
    }
  return out;
}

void GuideModel::setMoments(Moments data, Moments guide) {
  const auto dim = static_cast<std::size_t>(config_.dataDim);
  if (data.mean.size() != dim || data.std.size() != dim ||
      guide.mean.size() != dim || guide.std.size() != dim)
    throw std::invalid_argument("GuideModel::setMoments: dim mismatch");
  data_ = std::move(data);
  guide_ = std::move(guide);
}

std::vector<nn::Tensor*> GuideModel::checkpointTensors() {
  std::vector<nn::Tensor*> tensors;
  const auto collect = [&](nn::Sequential& net) {
    for (nn::Param* p : net.params()) tensors.push_back(&p->value);
    for (nn::Tensor* t : net.state()) tensors.push_back(t);
  };
  if (gan_) {
    collect(gan_->generator());
    collect(gan_->discriminator());
  } else {
    for (nn::Param* p : vae_->params()) tensors.push_back(&p->value);
  }
  return tensors;
}

void GuideModel::save(const std::string& path) {
  std::vector<nn::Tensor*> tensors = checkpointTensors();
  nn::saveTensors(
      std::vector<const nn::Tensor*>(tensors.begin(), tensors.end()), path);
}

void GuideModel::load(const std::string& path) {
  nn::loadTensors(checkpointTensors(), path);
}

// dp-analyze: cold  (per-request planning; see planRandomLatents)
nn::Tensor planGuidedLatents(const GuideModel& guide,
                             const nn::Tensor* sourceLatents, long count,
                             int batchSize, Rng& rng) {
  if (count <= 0)
    throw std::invalid_argument("planGuidedLatents: count must be > 0");
  if (batchSize <= 0)
    throw std::invalid_argument("planGuidedLatents: batchSize must be > 0");
  const int d = guide.config().dataDim;
  nn::Tensor latents({static_cast<int>(count), d});
  long offset = 0;
  while (offset < count) {
    const int b =
        static_cast<int>(std::min<long>(count - offset, batchSize));
    nn::Tensor batch = guide.sample(b, rng);
    if (sourceLatents) {
      const auto idx = models::sampleIndices(sourceLatents->size(0), b, rng);
      batch += models::gatherRows(*sourceLatents, idx);
    }
    for (int i = 0; i < b; ++i)
      for (int j = 0; j < d; ++j)
        latents.at(static_cast<int>(offset) + i, j) = batch.at(i, j);
    offset += b;
  }
  return latents;
}

}  // namespace dp::core
