#include "core/generation_result.hpp"

#include <stdexcept>

namespace dp::core {

nn::Tensor vectorsToTensor(const std::vector<std::vector<float>>& rows) {
  if (rows.empty())
    throw std::invalid_argument("vectorsToTensor: no rows");
  const int d = static_cast<int>(rows.front().size());
  nn::Tensor out({static_cast<int>(rows.size()), d});
  for (std::size_t r = 0; r < rows.size(); ++r) {
    if (static_cast<int>(rows[r].size()) != d)
      throw std::invalid_argument("vectorsToTensor: ragged rows");
    for (int c = 0; c < d; ++c)
      out.at(static_cast<int>(r), c) = rows[r][static_cast<std::size_t>(c)];
  }
  return out;
}

}  // namespace dp::core
