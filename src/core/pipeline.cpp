#include "core/pipeline.hpp"

#include <stdexcept>

#include "datagen/generator.hpp"
#include "squish/reconstruct.hpp"

namespace dp::core {

MaterializeResult materialize(const PatternLibrary& library,
                              const lp::GeometrySolver& solver,
                              const drc::GeometryChecker& geomChecker,
                              Rng& rng, long maxClips) {
  MaterializeResult out;
  for (const auto& topo : library.patterns()) {
    if (maxClips >= 0 && out.attempted >= maxClips) break;
    ++out.attempted;
    const auto pattern = solver.solve(topo, rng);
    if (!pattern) continue;
    ++out.solved;
    dp::Clip clip = squish::reconstruct(*pattern);
    if (!geomChecker.isClean(clip)) continue;
    ++out.drcClean;
    out.clips.push_back(std::move(clip));
  }
  return out;
}

PipelineResult runPipeline(const std::vector<dp::Clip>& existingClips,
                           const dp::DesignRules& rules,
                           const PipelineConfig& config, Rng& rng) {
  if (existingClips.empty())
    throw std::invalid_argument("runPipeline: empty existing library");

  // 1. Squish pattern extraction.
  const auto topologies = datagen::extractTopologies(existingClips);
  if (topologies.empty())
    throw std::invalid_argument("runPipeline: no non-empty clips");

  // 2. Topology generation: TCAE identity training + sensitivity-aware
  //    random perturbation.
  models::Tcae tcae(config.tcae, rng);
  tcae.train(topologies, rng);
  const drc::TopologyChecker checker(
      drc::TopologyRuleConfig::fromRules(rules));
  PipelineResult result;
  result.sensitivity =
      estimateSensitivity(tcae, topologies, checker, config.sensitivity);
  const SensitivityAwarePerturber perturber(result.sensitivity,
                                            config.perturbScale);
  result.generation = tcaeRandom(tcae, topologies, perturber, checker,
                                 config.flow, rng);

  // 3. Legal pattern assessment: geometry via Eq. (10).
  const lp::GeometrySolver solver(rules);
  const drc::GeometryChecker geomChecker(rules);
  result.materialized = materialize(result.generation.unique, solver,
                                    geomChecker, rng, config.maxClips);
  return result;
}

}  // namespace dp::core
