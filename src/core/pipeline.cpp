#include "core/pipeline.hpp"

#include <cstdint>
#include <stdexcept>

#include "common/thread_pool.hpp"
#include "datagen/generator.hpp"
#include "squish/reconstruct.hpp"

namespace dp::core {

MaterializeResult materialize(const PatternLibrary& library,
                              const lp::GeometrySolver& solver,
                              const drc::GeometryChecker& geomChecker,
                              Rng& rng, long maxClips) {
  const std::vector<squish::Topology> topos = library.patterns();
  const long total = static_cast<long>(topos.size());
  const long count =
      maxClips >= 0 ? std::min<long>(maxClips, total) : total;

  // One base seed is drawn from the caller's stream; task i derives its
  // own Rng from it, so every solve sees the same stream regardless of
  // thread count or scheduling. The solves run pattern-parallel into
  // index-ordered slots; the gather below replays them in ascending
  // order, keeping clip order deterministic.
  const std::uint64_t baseSeed = rng.engine()();

  struct Slot {
    bool solved = false;
    bool clean = false;
    dp::Clip clip;
  };
  std::vector<Slot> slots(static_cast<std::size_t>(count));
  dp::parallelFor(count, 1, [&](long i0, long i1) {
    for (long i = i0; i < i1; ++i) {
      Rng taskRng(dp::taskSeed(baseSeed, static_cast<std::uint64_t>(i)));
      const auto pattern =
          solver.solve(topos[static_cast<std::size_t>(i)], taskRng);
      if (!pattern) continue;
      Slot& slot = slots[static_cast<std::size_t>(i)];
      slot.solved = true;
      slot.clip = squish::reconstruct(*pattern);
      slot.clean = geomChecker.isClean(slot.clip);
    }
  });

  MaterializeResult out;
  for (Slot& slot : slots) {
    ++out.attempted;
    if (!slot.solved) continue;
    ++out.solved;
    if (!slot.clean) continue;
    ++out.drcClean;
    out.clips.push_back(std::move(slot.clip));
  }
  return out;
}

PipelineResult runPipeline(const std::vector<dp::Clip>& existingClips,
                           const dp::DesignRules& rules,
                           const PipelineConfig& config, Rng& rng) {
  if (existingClips.empty())
    throw std::invalid_argument("runPipeline: empty existing library");

  // 1. Squish pattern extraction.
  const auto topologies = datagen::extractTopologies(existingClips);
  if (topologies.empty())
    throw std::invalid_argument("runPipeline: no non-empty clips");

  // 2. Topology generation: TCAE identity training + sensitivity-aware
  //    random perturbation.
  models::Tcae tcae(config.tcae, rng);
  tcae.train(topologies, rng, config.train);
  const drc::TopologyChecker checker(
      drc::TopologyRuleConfig::fromRules(rules));
  PipelineResult result;
  result.sensitivity =
      estimateSensitivity(tcae, topologies, checker, config.sensitivity);
  const SensitivityAwarePerturber perturber(result.sensitivity,
                                            config.perturbScale);
  result.generation = tcaeRandom(tcae, topologies, perturber, checker,
                                 config.flow, rng);

  // 3. Legal pattern assessment: geometry via Eq. (10).
  const lp::GeometrySolver solver(rules);
  const drc::GeometryChecker geomChecker(rules);
  result.materialized = materialize(result.generation.unique, solver,
                                    geomChecker, rng, config.maxClips);
  return result;
}

}  // namespace dp::core
