#include "core/flows.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/thread_pool.hpp"
#include "models/batch.hpp"
#include "models/topology_codec.hpp"
#include "squish/pad.hpp"

namespace dp::core {

void accountActivationBatch(const nn::Tensor& activations,
                            const drc::TopologyChecker& checker,
                            GenerationResult& result,
                            const nn::Tensor* perturbations) {
  // Decode + legality are the per-sample hot path and independent
  // across samples, so they run sample-parallel into index-ordered
  // slots; the accounting below then replays the slots serially in
  // ascending order, so the library insertion order (and therefore the
  // whole result) is identical at any thread count.
  const long n = activations.size(0);
  std::vector<squish::Topology> topologies(static_cast<std::size_t>(n));
  std::vector<char> legal(static_cast<std::size_t>(n), 0);
  dp::parallelFor(n, 8, [&](long i0, long i1) {
    for (long i = i0; i < i1; ++i) {
      const auto k = static_cast<std::size_t>(i);
      topologies[k] =
          models::decodeGeneratedTopology(activations, static_cast<int>(i));
      legal[k] = checker.isLegal(topologies[k]) ? 1 : 0;
    }
  });
  for (std::size_t i = 0; i < topologies.size(); ++i) {
    ++result.generated;
    if (!legal[i]) continue;
    ++result.legal;
    result.unique.add(topologies[i]);
    if (perturbations) {
      const int d = perturbations->size(1);
      std::vector<float> row(static_cast<std::size_t>(d));
      for (int c = 0; c < d; ++c)
        row[static_cast<std::size_t>(c)] =
            perturbations->at(static_cast<int>(i), c);
      result.goodVectors.push_back(std::move(row));
    }
  }
}

GenerationResult tcaeRandom(const models::Tcae& tcae,
                            const std::vector<squish::Topology>& existing,
                            const SensitivityAwarePerturber& perturber,
                            const drc::TopologyChecker& checker,
                            const FlowConfig& config, Rng& rng) {
  if (existing.empty())
    throw std::invalid_argument("tcaeRandom: empty existing library");
  const int pool = std::min<int>(static_cast<int>(existing.size()),
                                 config.sourcePoolSize);
  const std::vector<squish::Topology> sources(existing.begin(),
                                              existing.begin() + pool);
  const nn::Tensor sourceLatents = tcae.encode(
      models::encodeTopologies(sources, tcae.config().inputSize));

  GenerationResult result;
  long remaining = config.count;
  while (remaining > 0) {
    const int b = static_cast<int>(
        std::min<long>(remaining, config.batchSize));
    const auto idx = models::sampleIndices(pool, b, rng);
    nn::Tensor latents = models::gatherRows(sourceLatents, idx);
    const nn::Tensor noise = perturber.sampleBatch(b, rng);
    latents += noise;
    const nn::Tensor recon = tcae.decode(latents);
    accountActivationBatch(recon, checker, result,
                           config.collectGoodVectors ? &noise : nullptr);
    remaining -= b;
  }
  return result;
}

GenerationResult tcaeCombine(const models::Tcae& tcae,
                             const std::vector<squish::Topology>& existing,
                             const drc::TopologyChecker& checker,
                             const CombineConfig& config, Rng& rng) {
  if (existing.empty())
    throw std::invalid_argument("tcaeCombine: empty existing library");
  if (config.arity < 2)
    throw std::invalid_argument("tcaeCombine: arity must be >= 2");
  const int pool = std::min<int>(static_cast<int>(existing.size()),
                                 config.poolSize);
  const std::vector<squish::Topology> sources(existing.begin(),
                                              existing.begin() + pool);
  const nn::Tensor sourceLatents = tcae.encode(
      models::encodeTopologies(sources, tcae.config().inputSize));
  const int latentDim = sourceLatents.size(1);

  GenerationResult result;
  long remaining = config.count;
  while (remaining > 0) {
    const int b = static_cast<int>(
        std::min<long>(remaining, config.batchSize));
    nn::Tensor latents({b, latentDim});
    for (int row = 0; row < b; ++row) {
      // Random convex weights: uniform draws normalized to sum 1.
      std::vector<double> alpha(static_cast<std::size_t>(config.arity));
      double total = 0.0;
      for (double& a : alpha) {
        a = rng.uniform(1e-3, 1.0);
        total += a;
      }
      for (int k = 0; k < config.arity; ++k) {
        const int src = rng.uniformInt(0, pool - 1);
        const double w = alpha[static_cast<std::size_t>(k)] / total;
        for (int c = 0; c < latentDim; ++c)
          latents.at(row, c) +=
              static_cast<float>(w * sourceLatents.at(src, c));
      }
    }
    accountActivationBatch(tcae.decode(latents), checker, result);
    remaining -= b;
  }
  return result;
}

GenerationResult evaluateSampler(const TopologySampler& sampler,
                                 const drc::TopologyChecker& checker,
                                 long count, int batchSize, Rng& rng) {
  if (!sampler) throw std::invalid_argument("evaluateSampler: no sampler");
  GenerationResult result;
  long remaining = count;
  while (remaining > 0) {
    const int b = static_cast<int>(std::min<long>(remaining, batchSize));
    accountActivationBatch(sampler(b, rng), checker, result);
    remaining -= b;
  }
  return result;
}

GenerationResult libraryResult(
    const std::vector<squish::Topology>& topologies,
    const drc::TopologyChecker& checker) {
  // Trailing all-zero rows/columns are stripped so pattern identity
  // matches the generated-pattern convention (the zero-padding of the
  // network inputs makes right/top margins indistinguishable from
  // padding; see models::decodeGeneratedTopology). The unpad + legality
  // scan runs sample-parallel; accounting replays in ascending order.
  const long n = static_cast<long>(topologies.size());
  std::vector<squish::Topology> unpadded(static_cast<std::size_t>(n));
  std::vector<char> legal(static_cast<std::size_t>(n), 0);
  dp::parallelFor(n, 16, [&](long i0, long i1) {
    for (long i = i0; i < i1; ++i) {
      const auto k = static_cast<std::size_t>(i);
      unpadded[k] = squish::unpad(topologies[k]);
      legal[k] = checker.isLegal(unpadded[k]) ? 1 : 0;
    }
  });
  GenerationResult result;
  for (std::size_t i = 0; i < unpadded.size(); ++i) {
    ++result.generated;
    if (!legal[i]) continue;
    ++result.legal;
    result.unique.add(unpadded[i]);
  }
  return result;
}

}  // namespace dp::core
