#include "core/flows.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "common/thread_pool.hpp"
#include "drc/packed_rules.hpp"
#include "models/batch.hpp"
#include "models/topology_codec.hpp"
#include "squish/packed_topo.hpp"
#include "squish/pad.hpp"

namespace dp::core {

void accountActivationBatch(const nn::Tensor& activations,
                            const drc::TopologyChecker& checker,
                            GenerationResult& result,
                            const nn::Tensor* perturbations) {
  // Decode + legality are the per-sample hot path and independent
  // across samples, so they run sample-parallel into index-ordered
  // slots; the accounting below then replays the slots serially in
  // ascending order, so the library insertion order (and therefore the
  // whole result) is identical at any thread count.
  const long n = activations.size(0);
  std::vector<squish::Topology> topologies(static_cast<std::size_t>(n));
  std::vector<char> legal(static_cast<std::size_t>(n), 0);
  dp::parallelFor(n, 8, [&](long i0, long i1) {
    for (long i = i0; i < i1; ++i) {
      const auto k = static_cast<std::size_t>(i);
      topologies[k] =
          models::decodeGeneratedTopology(activations, static_cast<int>(i));
      legal[k] = checker.isLegal(topologies[k]) ? 1 : 0;
    }
  });
  for (std::size_t i = 0; i < topologies.size(); ++i) {
    ++result.generated;
    if (!legal[i]) continue;
    ++result.legal;
    result.unique.add(topologies[i]);
    if (perturbations) {
      const int d = perturbations->size(1);
      std::vector<float> row(static_cast<std::size_t>(d));
      for (int c = 0; c < d; ++c)
        row[static_cast<std::size_t>(c)] =
            perturbations->at(static_cast<int>(i), c);
      result.goodVectors.push_back(std::move(row));
    }
  }
}

void accountMaskBatch(const std::uint32_t* masks, int batch, int edge,
                      const drc::TopologyChecker& checker,
                      GenerationResult& result) {
  if (edge <= 0 || edge > squish::kMaxMaskCols)
    throw std::invalid_argument(
        "accountMaskBatch: edge must fit a 32-bit row mask");
  // Same index-ordered-slot scheme as accountActivationBatch: unpad,
  // canonicalize and legality run sample-parallel on the packed words;
  // the serial fold below keeps insertion order thread-count invariant.
  struct Slot {
    std::uint32_t rows[squish::kMaxMaskCols];
    int nRows = 0;
    int nCols = 0;
    char legal = 0;
  };
  std::vector<Slot> slots(static_cast<std::size_t>(batch));
  dp::parallelFor(batch, 8, [&](long i0, long i1) {
    for (long i = i0; i < i1; ++i) {
      Slot& slot = slots[static_cast<std::size_t>(i)];
      const std::uint32_t* sample = masks + i * edge;
      for (int r = 0; r < edge; ++r) slot.rows[r] = sample[r];
      slot.nRows = edge;
      slot.nCols = edge;
      squish::unpadMasks(slot.rows, slot.nRows, slot.nCols);
      squish::canonicalizeMasks(slot.rows, slot.nRows, slot.nCols);
      slot.legal = drc::isLegalCanonicalMasks(checker.config(), slot.rows,
                                              slot.nRows, slot.nCols)
                       ? 1
                       : 0;
    }
  });
  for (const Slot& slot : slots) {
    ++result.generated;
    if (!slot.legal) continue;
    ++result.legal;
    // add() canonicalizes internally; the form is already canonical, so
    // this stores exactly what the float path stores.
    result.unique.add(
        squish::masksToTopology(slot.rows, slot.nRows, slot.nCols));
  }
}

nn::Tensor encodeSourceLatents(
    const models::Tcae& tcae,
    const std::vector<squish::Topology>& existing, int poolSize) {
  if (existing.empty())
    throw std::invalid_argument("encodeSourceLatents: empty library");
  if (poolSize <= 0)
    throw std::invalid_argument("encodeSourceLatents: poolSize must be > 0");
  const int pool =
      std::min<int>(static_cast<int>(existing.size()), poolSize);
  const std::vector<squish::Topology> sources(existing.begin(),
                                              existing.begin() + pool);
  return tcae.encode(
      models::encodeTopologies(sources, tcae.config().inputSize));
}

namespace {

void checkPlanArgs(const char* flow, const nn::Tensor& sourceLatents,
                   long count, int batchSize) {
  if (sourceLatents.dim() != 2 || sourceLatents.size(0) == 0)
    throw std::invalid_argument(std::string(flow) +
                                ": need (pool, latentDim) source latents");
  if (count <= 0)
    throw std::invalid_argument(std::string(flow) + ": count must be > 0");
  if (batchSize <= 0)
    throw std::invalid_argument(std::string(flow) +
                                ": batchSize must be > 0");
}

void copyRows(nn::Tensor& dst, long dstRow, const nn::Tensor& src) {
  const int n = src.size(0);
  const int d = src.size(1);
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < d; ++j)
      dst.at(static_cast<int>(dstRow) + i, j) = src.at(i, j);
}

[[nodiscard]] nn::Tensor sliceRows(const nn::Tensor& src, long begin,
                                   int n) {
  std::vector<int> idx(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) idx[static_cast<std::size_t>(i)] =
      static_cast<int>(begin) + i;
  return models::gatherRows(src, idx);
}

}  // namespace

// Per-request latent planning allocates the whole plan up front;
// amortized over the request, it is off the per-pattern hot loop.
// dp-analyze: cold
LatentPlan planRandomLatents(const nn::Tensor& sourceLatents,
                             const SensitivityAwarePerturber& perturber,
                             long count, int batchSize, Rng& rng) {
  checkPlanArgs("planRandomLatents", sourceLatents, count, batchSize);
  const int pool = sourceLatents.size(0);
  const int latentDim = sourceLatents.size(1);
  LatentPlan plan;
  plan.latents = nn::Tensor({static_cast<int>(count), latentDim});
  plan.noise = nn::Tensor({static_cast<int>(count), latentDim});
  long offset = 0;
  while (offset < count) {
    const int b =
        static_cast<int>(std::min<long>(count - offset, batchSize));
    const auto idx = models::sampleIndices(pool, b, rng);
    nn::Tensor latents = models::gatherRows(sourceLatents, idx);
    const nn::Tensor noise = perturber.sampleBatch(b, rng);
    latents += noise;
    copyRows(plan.latents, offset, latents);
    copyRows(plan.noise, offset, noise);
    offset += b;
  }
  return plan;
}

// dp-analyze: cold  (per-request planning; see planRandomLatents)
LatentPlan planCombineLatents(const nn::Tensor& sourceLatents, long count,
                              int batchSize, int arity, Rng& rng) {
  checkPlanArgs("planCombineLatents", sourceLatents, count, batchSize);
  if (arity < 2)
    throw std::invalid_argument("planCombineLatents: arity must be >= 2");
  const int pool = sourceLatents.size(0);
  const int latentDim = sourceLatents.size(1);
  LatentPlan plan;
  plan.latents = nn::Tensor({static_cast<int>(count), latentDim});
  long offset = 0;
  while (offset < count) {
    const int b =
        static_cast<int>(std::min<long>(count - offset, batchSize));
    for (int row = 0; row < b; ++row) {
      // Random convex weights: uniform draws normalized to sum 1.
      std::vector<double> alpha(static_cast<std::size_t>(arity));
      double total = 0.0;
      for (double& a : alpha) {
        a = rng.uniform(1e-3, 1.0);
        total += a;
      }
      for (int k = 0; k < arity; ++k) {
        const int src = rng.uniformInt(0, pool - 1);
        const double w = alpha[static_cast<std::size_t>(k)] / total;
        for (int c = 0; c < latentDim; ++c)
          plan.latents.at(static_cast<int>(offset) + row, c) +=
              static_cast<float>(w * sourceLatents.at(src, c));
      }
    }
    offset += b;
  }
  return plan;
}

GenerationResult decodeLatentsAndAccount(
    const models::Tcae& tcae, const nn::Tensor& latents,
    const nn::Tensor* perturbations, const drc::TopologyChecker& checker,
    int batchSize) {
  if (batchSize <= 0)
    throw std::invalid_argument(
        "decodeLatentsAndAccount: batchSize must be > 0");
  if (perturbations && perturbations->size(0) != latents.size(0))
    throw std::invalid_argument(
        "decodeLatentsAndAccount: perturbation row count mismatch");
  GenerationResult result;
  const long count = latents.size(0);
  long offset = 0;
  while (offset < count) {
    const int b =
        static_cast<int>(std::min<long>(count - offset, batchSize));
    const nn::Tensor batch = sliceRows(latents, offset, b);
    if (perturbations) {
      const nn::Tensor noise = sliceRows(*perturbations, offset, b);
      accountActivationBatch(tcae.decode(batch), checker, result, &noise);
    } else {
      accountActivationBatch(tcae.decode(batch), checker, result);
    }
    offset += b;
  }
  return result;
}

GenerationResult tcaeRandom(const models::Tcae& tcae,
                            const std::vector<squish::Topology>& existing,
                            const SensitivityAwarePerturber& perturber,
                            const drc::TopologyChecker& checker,
                            const FlowConfig& config, Rng& rng) {
  if (existing.empty())
    throw std::invalid_argument("tcaeRandom: empty existing library");
  const nn::Tensor sourceLatents =
      encodeSourceLatents(tcae, existing, config.sourcePoolSize);
  const LatentPlan plan = planRandomLatents(
      sourceLatents, perturber, config.count, config.batchSize, rng);
  return decodeLatentsAndAccount(
      tcae, plan.latents, config.collectGoodVectors ? &plan.noise : nullptr,
      checker, config.batchSize);
}

GenerationResult tcaeCombine(const models::Tcae& tcae,
                             const std::vector<squish::Topology>& existing,
                             const drc::TopologyChecker& checker,
                             const CombineConfig& config, Rng& rng) {
  if (existing.empty())
    throw std::invalid_argument("tcaeCombine: empty existing library");
  if (config.arity < 2)
    throw std::invalid_argument("tcaeCombine: arity must be >= 2");
  const nn::Tensor sourceLatents =
      encodeSourceLatents(tcae, existing, config.poolSize);
  const LatentPlan plan = planCombineLatents(
      sourceLatents, config.count, config.batchSize, config.arity, rng);
  return decodeLatentsAndAccount(tcae, plan.latents, nullptr, checker,
                                 config.batchSize);
}

GenerationResult evaluateSampler(const TopologySampler& sampler,
                                 const drc::TopologyChecker& checker,
                                 long count, int batchSize, Rng& rng) {
  if (!sampler) throw std::invalid_argument("evaluateSampler: no sampler");
  GenerationResult result;
  long remaining = count;
  while (remaining > 0) {
    const int b = static_cast<int>(std::min<long>(remaining, batchSize));
    accountActivationBatch(sampler(b, rng), checker, result);
    remaining -= b;
  }
  return result;
}

GenerationResult libraryResult(
    const std::vector<squish::Topology>& topologies,
    const drc::TopologyChecker& checker) {
  // Trailing all-zero rows/columns are stripped so pattern identity
  // matches the generated-pattern convention (the zero-padding of the
  // network inputs makes right/top margins indistinguishable from
  // padding; see models::decodeGeneratedTopology). The unpad + legality
  // scan runs sample-parallel; accounting replays in ascending order.
  const long n = static_cast<long>(topologies.size());
  std::vector<squish::Topology> unpadded(static_cast<std::size_t>(n));
  std::vector<char> legal(static_cast<std::size_t>(n), 0);
  dp::parallelFor(n, 16, [&](long i0, long i1) {
    for (long i = i0; i < i1; ++i) {
      const auto k = static_cast<std::size_t>(i);
      unpadded[k] = squish::unpad(topologies[k]);
      legal[k] = checker.isLegal(unpadded[k]) ? 1 : 0;
    }
  });
  GenerationResult result;
  for (std::size_t i = 0; i < unpadded.size(); ++i) {
    ++result.generated;
    if (!legal[i]) continue;
    ++result.legal;
    result.unique.add(unpadded[i]);
  }
  return result;
}

}  // namespace dp::core
