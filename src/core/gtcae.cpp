#include "core/gtcae.hpp"

#include "core/guide.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>

#include <cmath>
#include <map>

#include "models/batch.hpp"
#include "models/topology_codec.hpp"
#include "squish/complexity.hpp"
#include "squish/pad.hpp"

namespace dp::core {

namespace {

[[nodiscard]] core::GuideConfig guideConfigFor(int dataDim,
                                               const GtcaeConfig& config) {
  GuideConfig gc;
  gc.kind = config.guide == GtcaeConfig::Guide::kGan
                ? GuideConfig::Kind::kGan
                : GuideConfig::Kind::kVae;
  gc.dataDim = dataDim;
  gc.zDim = config.ganZDim;
  gc.hidden = config.ganHidden;
  gc.gan = config.gan;
  gc.vaeLatentDim = config.vaeLatentDim;
  gc.vaeTrainSteps = config.vaeTrainSteps;
  return gc;
}

/// Decode-and-account loop shared by both G-TCAE flows. Guide sampling
/// stays serial (it consumes `rng`); the decode + legality accounting
/// runs sample-parallel via accountActivationBatch.
GenerationResult runGeneration(const models::Tcae& tcae,
                               const nn::Tensor* sourceLatents,
                               const GuideModel& guide,
                               const drc::TopologyChecker& checker,
                               const FlowConfig& flow, Rng& rng) {
  GenerationResult result;
  long remaining = flow.count;
  while (remaining > 0) {
    const int b =
        static_cast<int>(std::min<long>(remaining, flow.batchSize));
    nn::Tensor latents = guide.sample(b, rng);
    if (sourceLatents) {
      const auto idx =
          models::sampleIndices(sourceLatents->size(0), b, rng);
      latents += models::gatherRows(*sourceLatents, idx);
    }
    accountActivationBatch(tcae.decode(latents), checker, result);
    remaining -= b;
  }
  return result;
}

}  // namespace

GenerationResult gtcaeMassive(const models::Tcae& tcae,
                              const std::vector<squish::Topology>& existing,
                              const nn::Tensor& goodPerturbations,
                              const drc::TopologyChecker& checker,
                              const GtcaeConfig& config, Rng& rng) {
  if (existing.empty())
    throw std::invalid_argument("gtcaeMassive: empty existing library");
  if (goodPerturbations.dim() != 2 || goodPerturbations.size(0) == 0)
    throw std::invalid_argument(
        "gtcaeMassive: need (N,D) perturbation vectors");

  const int pool = std::min<int>(static_cast<int>(existing.size()),
                                 config.flow.sourcePoolSize);
  const std::vector<squish::Topology> sources(existing.begin(),
                                              existing.begin() + pool);
  const nn::Tensor sourceLatents = tcae.encode(
      models::encodeTopologies(sources, tcae.config().inputSize));

  GuideModel guide(guideConfigFor(goodPerturbations.size(1), config), rng);
  guide.train(goodPerturbations, rng);
  return runGeneration(tcae, &sourceLatents, guide, checker, config.flow,
                       rng);
}

std::vector<ContextGroupResult> gtcaeContextSpecific(
    const models::Tcae& tcae,
    const std::vector<squish::Topology>& existing,
    const drc::TopologyChecker& checker,
    const std::vector<ContextBand>& bands, const GtcaeConfig& config,
    Rng& rng) {
  if (existing.empty())
    throw std::invalid_argument("gtcaeContextSpecific: empty library");
  const nn::Tensor latents = tcae.encode(
      models::encodeTopologies(existing, tcae.config().inputSize));

  std::vector<ContextGroupResult> results;
  for (const ContextBand& band : bands) {
    std::vector<int> members;
    for (std::size_t i = 0; i < existing.size(); ++i) {
      // Band membership uses the same identity convention as generated
      // patterns: trailing zero margins stripped.
      const auto c = squish::complexityOf(squish::unpad(existing[i]));
      if (c.cx >= band.minCx && c.cx <= band.maxCx)
        members.push_back(static_cast<int>(i));
    }
    ContextGroupResult group;
    group.band = band;
    group.trainingCount = static_cast<long>(members.size());
    if (members.size() >= 2) {
      const nn::Tensor bandLatents = models::gatherRows(latents, members);
      GuideModel guide(guideConfigFor(bandLatents.size(1), config), rng);
      guide.train(bandLatents, rng);
      // Context mode: the recognition unit is discarded; the guide
      // produces pure latent vectors for the generation unit.
      group.result = runGeneration(tcae, nullptr, guide, checker,
                                   config.flow, rng);
      group.avgCx = group.result.unique.meanCx();
      group.avgCy = group.result.unique.meanCy();
    }
    results.push_back(std::move(group));
  }
  return results;
}

std::vector<ContextBand> contextBandsByQuantiles(
    const std::vector<squish::Topology>& existing) {
  if (existing.empty())
    throw std::invalid_argument("contextBandsByQuantiles: empty library");
  std::map<int, long> counts;
  for (const auto& t : existing)
    ++counts[squish::complexityOf(squish::unpad(t)).cx];
  const long n = static_cast<long>(existing.size());
  const int minCx = counts.begin()->first;
  const int maxCx = counts.rbegin()->first;

  // Tercile cuts over the distinct-value histogram.
  int t1 = minCx, t2 = minCx;
  long cum = 0;
  bool haveT1 = false, haveT2 = false;
  for (const auto& [v, c] : counts) {
    cum += c;
    if (!haveT1 && 3 * cum >= n) {
      t1 = v;
      haveT1 = true;
    }
    if (!haveT2 && 3 * cum >= 2 * n) {
      t2 = v;
      haveT2 = true;
    }
  }
  // Libraries concentrated at the top (the paper's case: most patterns
  // at cx 11-12) push both cuts onto the maximum; back them off onto
  // the previous distinct values so every band keeps mass.
  auto prevDistinct = [&](int v) {
    auto it = counts.lower_bound(v);
    return it == counts.begin() ? v : std::prev(it)->first;
  };
  if (t2 >= maxCx) t2 = prevDistinct(maxCx);
  if (t1 >= t2) t1 = prevDistinct(t2);
  return {
      ContextBand{"low-cx", minCx, t1},
      ContextBand{"med-cx", t1 + 1, t2},
      ContextBand{"high-cx", t2 + 1, maxCx},
  };
}

std::vector<ContextBand> defaultContextBands(int minCx, int maxCx) {
  const int span = std::max(1, maxCx - minCx + 1);
  const int lowEnd = minCx + span / 3 - 1;
  const int medEnd = minCx + 2 * span / 3 - 1;
  return {
      ContextBand{"low-cx", minCx, std::max(minCx, lowEnd)},
      ContextBand{"med-cx", std::max(minCx, lowEnd) + 1,
                  std::max(minCx, medEnd)},
      ContextBand{"high-cx", std::max(minCx, medEnd) + 1, maxCx},
  };
}

}  // namespace dp::core
