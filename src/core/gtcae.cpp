#include "core/gtcae.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>

#include <cmath>
#include <map>

#include "models/batch.hpp"
#include "models/topology_codec.hpp"
#include "squish/complexity.hpp"
#include "squish/pad.hpp"

namespace dp::core {

namespace {

/// Uniform interface over the two guide models: train on an (N, D)
/// vector set, then sample (n, D) vectors.
class VectorGuide {
 public:
  virtual ~VectorGuide() = default;
  virtual void train(const nn::Tensor& data, Rng& rng) = 0;
  [[nodiscard]] virtual nn::Tensor sample(int n, Rng& rng) = 0;
};

class GanGuide final : public VectorGuide {
 public:
  GanGuide(int dataDim, const GtcaeConfig& config, Rng& rng)
      : gan_(models::makeMlpGan(dataDim, rng, config.ganZDim,
                                config.ganHidden)),
        config_(config.gan) {}

  void train(const nn::Tensor& data, Rng& rng) override {
    gan_.train(data, config_, rng);
  }
  nn::Tensor sample(int n, Rng& rng) override { return gan_.sample(n, rng); }

 private:
  models::Gan gan_;
  models::GanConfig config_;
};

class VaeGuide final : public VectorGuide {
 public:
  VaeGuide(int dataDim, const GtcaeConfig& config, Rng& rng)
      : vae_(makeConfig(dataDim, config), rng) {}

  void train(const nn::Tensor& data, Rng& rng) override {
    vae_.train(data, rng);
  }
  nn::Tensor sample(int n, Rng& rng) override { return vae_.sample(n, rng); }

 private:
  static models::VaeConfig makeConfig(int dataDim,
                                      const GtcaeConfig& config) {
    models::VaeConfig vc;
    vc.backbone = models::VaeConfig::Backbone::kVector;
    vc.inputDim = dataDim;
    vc.latentDim = config.vaeLatentDim;
    vc.hidden = config.ganHidden;
    vc.trainSteps = config.vaeTrainSteps;
    return vc;
  }
  models::Vae vae_;
};

/// Per-dimension first/second-moment statistics of an (N, D) tensor.
struct Moments {
  std::vector<double> mean;
  std::vector<double> std;
};

Moments momentsOf(const nn::Tensor& data) {
  const int n = data.size(0);
  const int d = data.size(1);
  Moments m;
  m.mean.assign(static_cast<std::size_t>(d), 0.0);
  m.std.assign(static_cast<std::size_t>(d), 1.0);
  for (int j = 0; j < d; ++j) {
    double mean = 0.0;
    for (int i = 0; i < n; ++i) mean += data.at(i, j);
    mean /= n;
    double var = 0.0;
    for (int i = 0; i < n; ++i) {
      const double diff = data.at(i, j) - mean;
      var += diff * diff;
    }
    var /= std::max(n - 1, 1);
    m.mean[static_cast<std::size_t>(j)] = mean;
    m.std[static_cast<std::size_t>(j)] =
        std::sqrt(var) > 1e-6 ? std::sqrt(var) : 1.0;
  }
  return m;
}

/// Standardizes the training vectors per dimension before handing them
/// to the inner guide, and calibrates the inverse transform against the
/// guide's *own* sample moments. Encoder latents have arbitrary
/// per-dimension scales, so standardization is what lets a GAN/VAE with
/// batch-normalized hidden layers fit them; and VAE priors are known to
/// under-disperse relative to the data (posterior/prior mismatch), so
/// matching the first two sample moments to the data keeps the decoded
/// pattern spread faithful for both guide types.
class NormalizedGuide final : public VectorGuide {
 public:
  explicit NormalizedGuide(std::unique_ptr<VectorGuide> inner)
      : inner_(std::move(inner)) {}

  void train(const nn::Tensor& data, Rng& rng) override {
    data_ = momentsOf(data);
    const int n = data.size(0);
    const int d = data.size(1);
    nn::Tensor normalized({n, d});
    for (int i = 0; i < n; ++i)
      for (int j = 0; j < d; ++j)
        normalized.at(i, j) = static_cast<float>(
            (data.at(i, j) - data_.mean[static_cast<std::size_t>(j)]) /
            data_.std[static_cast<std::size_t>(j)]);
    inner_->train(normalized, rng);
    // Calibration: measure what the trained guide actually emits.
    const nn::Tensor probe = inner_->sample(512, rng);
    guide_ = momentsOf(probe);
  }

  nn::Tensor sample(int n, Rng& rng) override {
    nn::Tensor out = inner_->sample(n, rng);
    for (int i = 0; i < n; ++i)
      for (int j = 0; j < out.size(1); ++j) {
        const auto k = static_cast<std::size_t>(j);
        const double unit = (out.at(i, j) - guide_.mean[k]) / guide_.std[k];
        out.at(i, j) =
            static_cast<float>(unit * data_.std[k] + data_.mean[k]);
      }
    return out;
  }

 private:
  std::unique_ptr<VectorGuide> inner_;
  Moments data_;
  Moments guide_;
};

std::unique_ptr<VectorGuide> makeGuide(int dataDim,
                                       const GtcaeConfig& config,
                                       Rng& rng) {
  std::unique_ptr<VectorGuide> inner;
  if (config.guide == GtcaeConfig::Guide::kGan)
    inner = std::make_unique<GanGuide>(dataDim, config, rng);
  else
    inner = std::make_unique<VaeGuide>(dataDim, config, rng);
  return std::make_unique<NormalizedGuide>(std::move(inner));
}

/// Decode-and-account loop shared by both G-TCAE flows. Guide sampling
/// stays serial (it consumes `rng`); the decode + legality accounting
/// runs sample-parallel via accountActivationBatch.
GenerationResult runGeneration(const models::Tcae& tcae,
                               const nn::Tensor* sourceLatents,
                               VectorGuide& guide,
                               const drc::TopologyChecker& checker,
                               const FlowConfig& flow, Rng& rng) {
  GenerationResult result;
  long remaining = flow.count;
  while (remaining > 0) {
    const int b =
        static_cast<int>(std::min<long>(remaining, flow.batchSize));
    nn::Tensor latents = guide.sample(b, rng);
    if (sourceLatents) {
      const auto idx =
          models::sampleIndices(sourceLatents->size(0), b, rng);
      latents += models::gatherRows(*sourceLatents, idx);
    }
    accountActivationBatch(tcae.decode(latents), checker, result);
    remaining -= b;
  }
  return result;
}

}  // namespace

GenerationResult gtcaeMassive(const models::Tcae& tcae,
                              const std::vector<squish::Topology>& existing,
                              const nn::Tensor& goodPerturbations,
                              const drc::TopologyChecker& checker,
                              const GtcaeConfig& config, Rng& rng) {
  if (existing.empty())
    throw std::invalid_argument("gtcaeMassive: empty existing library");
  if (goodPerturbations.dim() != 2 || goodPerturbations.size(0) == 0)
    throw std::invalid_argument(
        "gtcaeMassive: need (N,D) perturbation vectors");

  const int pool = std::min<int>(static_cast<int>(existing.size()),
                                 config.flow.sourcePoolSize);
  const std::vector<squish::Topology> sources(existing.begin(),
                                              existing.begin() + pool);
  const nn::Tensor sourceLatents = tcae.encode(
      models::encodeTopologies(sources, tcae.config().inputSize));

  auto guide = makeGuide(goodPerturbations.size(1), config, rng);
  guide->train(goodPerturbations, rng);
  return runGeneration(tcae, &sourceLatents, *guide, checker, config.flow,
                       rng);
}

std::vector<ContextGroupResult> gtcaeContextSpecific(
    const models::Tcae& tcae,
    const std::vector<squish::Topology>& existing,
    const drc::TopologyChecker& checker,
    const std::vector<ContextBand>& bands, const GtcaeConfig& config,
    Rng& rng) {
  if (existing.empty())
    throw std::invalid_argument("gtcaeContextSpecific: empty library");
  const nn::Tensor latents = tcae.encode(
      models::encodeTopologies(existing, tcae.config().inputSize));

  std::vector<ContextGroupResult> results;
  for (const ContextBand& band : bands) {
    std::vector<int> members;
    for (std::size_t i = 0; i < existing.size(); ++i) {
      // Band membership uses the same identity convention as generated
      // patterns: trailing zero margins stripped.
      const auto c = squish::complexityOf(squish::unpad(existing[i]));
      if (c.cx >= band.minCx && c.cx <= band.maxCx)
        members.push_back(static_cast<int>(i));
    }
    ContextGroupResult group;
    group.band = band;
    group.trainingCount = static_cast<long>(members.size());
    if (members.size() >= 2) {
      const nn::Tensor bandLatents = models::gatherRows(latents, members);
      auto guide = makeGuide(bandLatents.size(1), config, rng);
      guide->train(bandLatents, rng);
      // Context mode: the recognition unit is discarded; the guide
      // produces pure latent vectors for the generation unit.
      group.result = runGeneration(tcae, nullptr, *guide, checker,
                                   config.flow, rng);
      group.avgCx = group.result.unique.meanCx();
      group.avgCy = group.result.unique.meanCy();
    }
    results.push_back(std::move(group));
  }
  return results;
}

std::vector<ContextBand> contextBandsByQuantiles(
    const std::vector<squish::Topology>& existing) {
  if (existing.empty())
    throw std::invalid_argument("contextBandsByQuantiles: empty library");
  std::map<int, long> counts;
  for (const auto& t : existing)
    ++counts[squish::complexityOf(squish::unpad(t)).cx];
  const long n = static_cast<long>(existing.size());
  const int minCx = counts.begin()->first;
  const int maxCx = counts.rbegin()->first;

  // Tercile cuts over the distinct-value histogram.
  int t1 = minCx, t2 = minCx;
  long cum = 0;
  bool haveT1 = false, haveT2 = false;
  for (const auto& [v, c] : counts) {
    cum += c;
    if (!haveT1 && 3 * cum >= n) {
      t1 = v;
      haveT1 = true;
    }
    if (!haveT2 && 3 * cum >= 2 * n) {
      t2 = v;
      haveT2 = true;
    }
  }
  // Libraries concentrated at the top (the paper's case: most patterns
  // at cx 11-12) push both cuts onto the maximum; back them off onto
  // the previous distinct values so every band keeps mass.
  auto prevDistinct = [&](int v) {
    auto it = counts.lower_bound(v);
    return it == counts.begin() ? v : std::prev(it)->first;
  };
  if (t2 >= maxCx) t2 = prevDistinct(maxCx);
  if (t1 >= t2) t1 = prevDistinct(t2);
  return {
      ContextBand{"low-cx", minCx, t1},
      ContextBand{"med-cx", t1 + 1, t2},
      ContextBand{"high-cx", t2 + 1, maxCx},
  };
}

std::vector<ContextBand> defaultContextBands(int minCx, int maxCx) {
  const int span = std::max(1, maxCx - minCx + 1);
  const int lowEnd = minCx + span / 3 - 1;
  const int medEnd = minCx + 2 * span / 3 - 1;
  return {
      ContextBand{"low-cx", minCx, std::max(minCx, lowEnd)},
      ContextBand{"med-cx", std::max(minCx, lowEnd) + 1,
                  std::max(minCx, medEnd)},
      ContextBand{"high-cx", std::max(minCx, medEnd) + 1, maxCx},
  };
}

}  // namespace dp::core
