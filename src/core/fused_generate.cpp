#include "core/fused_generate.hpp"

#include <stdexcept>

#include "nn/conv_transpose2d.hpp"
#include "nn/linear.hpp"

namespace dp::core {

namespace {

const nn::Linear& asLinear(const nn::Layer& l) {
  const auto* lin = dynamic_cast<const nn::Linear*>(&l);
  if (lin == nullptr)
    throw std::invalid_argument("FusedDecodeRoute: expected a dense layer");
  return *lin;
}

const nn::ConvTranspose2d& asDeconv(const nn::Layer& l) {
  const auto* dc = dynamic_cast<const nn::ConvTranspose2d*>(&l);
  if (dc == nullptr)
    throw std::invalid_argument("FusedDecodeRoute: expected a deconv layer");
  return *dc;
}

void expectName(const nn::Layer& l, const char* name) {
  if (l.name() != name)
    throw std::invalid_argument(
        std::string("FusedDecodeRoute: decoder stack mismatch, expected ") +
        name + ", found " + l.name());
}

}  // namespace

FusedDecodeRoute::FusedDecodeRoute(const models::Tcae& tcae) {
  const nn::Sequential& dec = tcae.decoder();
  if (dec.layerCount() != 9)
    throw std::invalid_argument(
        "FusedDecodeRoute: decoder stack is not the fused 9-layer shape");
  expectName(dec.layer(1), "relu");
  expectName(dec.layer(3), "relu");
  expectName(dec.layer(4), "reshape");
  expectName(dec.layer(6), "relu");
  expectName(dec.layer(8), "sigmoid");
  const nn::Linear& lin1 = asLinear(dec.layer(0));
  const nn::Linear& lin2 = asLinear(dec.layer(2));
  const nn::ConvTranspose2d& dc1 = asDeconv(dec.layer(5));
  const nn::ConvTranspose2d& dc2 = asDeconv(dec.layer(7));

  if (lin2.inFeatures() != lin1.outFeatures())
    throw std::invalid_argument("FusedDecodeRoute: dense widths disagree");
  const int c2 = dc1.inChannels();
  const int c1 = dc1.outChannels();
  if (dc2.inChannels() != c1 || dc2.outChannels() != 1)
    throw std::invalid_argument(
        "FusedDecodeRoute: deconv channels are not the fused shape");
  if (dc1.kernel() != dc2.kernel() || dc1.stride() != dc2.stride() ||
      dc1.pad() != dc2.pad())
    throw std::invalid_argument(
        "FusedDecodeRoute: deconv geometries disagree");
  if (c2 <= 0 || lin2.outFeatures() % c2 != 0)
    throw std::invalid_argument(
        "FusedDecodeRoute: dense output does not reshape to deconv input");
  const int plane = lin2.outFeatures() / c2;
  int s4 = 1;
  while (s4 * s4 < plane) ++s4;
  if (s4 * s4 != plane)
    throw std::invalid_argument(
        "FusedDecodeRoute: deconv input plane is not square");

  plan_ = nn::fused::buildDecodePlan(
      lin1.inFeatures(), lin1.outFeatures(), c2, s4, c1, dc1.kernel(),
      dc1.stride(), dc1.pad(), lin1.weight().value.data(),
      lin1.bias().value.data(), lin2.weight().value.data(),
      lin2.bias().value.data(), dc1.weight().value.data(),
      dc1.bias().value.data(), dc2.weight().value.data(),
      dc2.bias().value.data()[0]);
}

void FusedDecodeRoute::decodeMasks(const nn::Tensor& latents,
                                   std::vector<std::uint32_t>& masks) const {
  if (latents.dim() != 2 || latents.shape()[1] != plan_.latentDim)
    throw std::invalid_argument(
        "FusedDecodeRoute::decodeMasks: latents must be (N, latentDim)");
  const int batch = latents.shape()[0];
  masks.resize(static_cast<std::size_t>(batch) * plan_.s);
  nn::fused::decodeBatch(plan_, latents.data(), batch, masks.data());
}

}  // namespace dp::core
