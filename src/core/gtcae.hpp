#pragma once

/// \file gtcae.hpp
/// GAN-guided TCAE (paper §III-C). A small generative model (the
/// paper's MLP GAN, or a vector VAE for the V-TCAE case study) is
/// trained on latent-space vectors and drives the TCAE generation unit:
///  - massive pattern generation: the guide learns the distribution of
///    perturbation vectors that produced DRC-clean patterns, raising the
///    valid fraction above sensitivity-aware random noise;
///  - context-specific generation: the guide learns the pure latent
///    vectors of one pattern class (a complexity band) and generates
///    class-conditional patterns directly, without the recognition unit.

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "core/flows.hpp"
#include "models/gan.hpp"
#include "models/vae.hpp"

namespace dp::core {

struct GtcaeConfig {
  enum class Guide { kGan, kVae };

  Guide guide = Guide::kGan;
  FlowConfig flow;           ///< generation-phase parameters
  models::GanConfig gan;     ///< GAN guide training parameters
  int ganZDim = 16;
  int ganHidden = 64;
  int vaeLatentDim = 16;     ///< VAE guide bottleneck (V-TCAE)
  long vaeTrainSteps = 1500;
};

/// Massive pattern generation (§III-C2, Table III): train the guide on
/// `goodPerturbations` (from a tcaeRandom run with collectGoodVectors),
/// then decode guide-generated perturbations added to existing-pattern
/// latents.
[[nodiscard]] GenerationResult gtcaeMassive(
    const models::Tcae& tcae,
    const std::vector<squish::Topology>& existing,
    const nn::Tensor& goodPerturbations,
    const drc::TopologyChecker& checker, const GtcaeConfig& config,
    Rng& rng);

/// A complexity band for context-specific generation (paper Fig. 11
/// uses low / medium / high cx groups).
struct ContextBand {
  std::string name;
  int minCx = 0;
  int maxCx = 1 << 30;
};

struct ContextGroupResult {
  ContextBand band;
  long trainingCount = 0;  ///< latents available for this band
  GenerationResult result;
  double avgCx = 0.0;      ///< mean cx of the unique generated patterns
  double avgCy = 0.0;
};

/// Context-specific pattern generation (§III-C2, Fig. 11): per band,
/// train the guide on the pure latent vectors of existing patterns in
/// that band and decode guide-generated latents directly.
[[nodiscard]] std::vector<ContextGroupResult> gtcaeContextSpecific(
    const models::Tcae& tcae,
    const std::vector<squish::Topology>& existing,
    const drc::TopologyChecker& checker,
    const std::vector<ContextBand>& bands, const GtcaeConfig& config,
    Rng& rng);

/// The paper's three Fig. 11 bands, parameterized on the observed cx
/// range of the training library.
[[nodiscard]] std::vector<ContextBand> defaultContextBands(int minCx,
                                                           int maxCx);

/// Three contiguous low/med/high-cx bands placed at the terciles of the
/// library's observed cx distribution, so every band holds a
/// substantial share of the training latents even when the distribution
/// is skewed (as the paper's cy-11/12-dominated libraries are).
[[nodiscard]] std::vector<ContextBand> contextBandsByQuantiles(
    const std::vector<squish::Topology>& existing);

}  // namespace dp::core
