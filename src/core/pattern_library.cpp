#include "core/pattern_library.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "squish/canonical.hpp"
#include "squish/hash.hpp"

namespace dp::core {

bool PatternLibrary::add(const squish::Topology& t) {
  squish::Topology canon = squish::canonicalize(t);
  const std::uint64_t h = squish::hashTopology(canon);
  auto& bucket = patterns_[h];
  for (const auto& existing : bucket)
    if (existing == canon) return false;
  complexities_.push_back(squish::complexityOfCanonical(canon));
  bucket.push_back(std::move(canon));
  return true;
}

bool PatternLibrary::contains(const squish::Topology& t) const {
  const squish::Topology canon = squish::canonicalize(t);
  const auto it = patterns_.find(squish::hashTopology(canon));
  if (it == patterns_.end()) return false;
  return std::find(it->second.begin(), it->second.end(), canon) !=
         it->second.end();
}

std::vector<squish::Topology> PatternLibrary::patterns() const {
  std::vector<squish::Topology> out;
  out.reserve(complexities_.size());
  for (const auto& [h, bucket] : patterns_)
    for (const auto& t : bucket) out.push_back(t);
  return out;
}

std::vector<squish::Complexity> PatternLibrary::complexities() const {
  return complexities_;
}

double PatternLibrary::diversity() const {
  return shannonDiversity(complexities_);
}

double PatternLibrary::meanCx() const {
  if (complexities_.empty()) return 0.0;
  double s = 0.0;
  for (const auto& c : complexities_) s += c.cx;
  return s / static_cast<double>(complexities_.size());
}

double PatternLibrary::meanCy() const {
  if (complexities_.empty()) return 0.0;
  double s = 0.0;
  for (const auto& c : complexities_) s += c.cy;
  return s / static_cast<double>(complexities_.size());
}

std::vector<std::vector<double>> PatternLibrary::histogram() const {
  int maxCx = 0, maxCy = 0;
  for (const auto& c : complexities_) {
    maxCx = std::max(maxCx, c.cx);
    maxCy = std::max(maxCy, c.cy);
  }
  std::vector<std::vector<double>> counts(
      static_cast<std::size_t>(maxCy) + 1,
      std::vector<double>(static_cast<std::size_t>(maxCx) + 1, 0.0));
  for (const auto& c : complexities_)
    counts[static_cast<std::size_t>(c.cy)]
          [static_cast<std::size_t>(c.cx)] += 1.0;
  return counts;
}

void PatternLibrary::merge(const PatternLibrary& other) {
  for (const auto& [h, bucket] : other.patterns_)
    for (const auto& t : bucket) add(t);
}

double shannonDiversity(const std::vector<squish::Complexity>& cplx) {
  if (cplx.empty()) return 0.0;
  std::map<std::pair<int, int>, double> counts;
  for (const auto& c : cplx) counts[{c.cx, c.cy}] += 1.0;
  const double n = static_cast<double>(cplx.size());
  double h = 0.0;
  for (const auto& [key, cnt] : counts) {
    const double p = cnt / n;
    h -= p * std::log2(p);
  }
  return h;
}

}  // namespace dp::core
