#include "core/sensitivity.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/thread_pool.hpp"
#include "models/topology_codec.hpp"

namespace dp::core {

std::vector<double> estimateSensitivity(
    const models::Tcae& tcae,
    const std::vector<squish::Topology>& topologies,
    const drc::TopologyChecker& checker, const SensitivityConfig& config) {
  if (topologies.empty())
    throw std::invalid_argument("estimateSensitivity: no topologies");
  if (config.sweepSteps < 2)
    throw std::invalid_argument("estimateSensitivity: sweepSteps >= 2");

  const int n = std::min<int>(static_cast<int>(topologies.size()),
                              config.maxTopologies);
  const std::vector<squish::Topology> sample(topologies.begin(),
                                             topologies.begin() + n);
  const nn::Tensor latents = tcae.encode(
      models::encodeTopologies(sample, tcae.config().inputSize));
  const int latentDim = latents.size(1);

  // Each latent node's sweep is independent of every other node's, so
  // the probes run node-parallel; node i only writes s[i], and decode()
  // is stateless, so the result is identical at any thread count.
  std::vector<double> s(static_cast<std::size_t>(latentDim), 0.0);
  dp::parallelFor(latentDim, 1, [&](long i0, long i1) {
    for (long i = i0; i < i1; ++i) {
      long invalid = 0;
      long total = 0;
      for (int k = 0; k < config.sweepSteps; ++k) {
        const double lambda =
            -config.range +
            2.0 * config.range * k / (config.sweepSteps - 1);
        nn::Tensor perturbed = latents;
        for (int row = 0; row < n; ++row)
          perturbed.at(row, static_cast<int>(i)) +=
              static_cast<float>(lambda);
        const nn::Tensor recon = tcae.decode(perturbed);
        for (const auto& topo : models::decodeGeneratedTopologies(recon)) {
          if (!checker.isLegal(topo)) ++invalid;
          ++total;
        }
      }
      s[static_cast<std::size_t>(i)] =
          total > 0
              ? static_cast<double>(invalid) / static_cast<double>(total)
              : 0.0;
    }
  });
  return s;
}

}  // namespace dp::core
