#include "core/perturb.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace dp::core {

SensitivityAwarePerturber::SensitivityAwarePerturber(
    std::vector<double> sensitivity, double scale, double maxStddev) {
  if (sensitivity.empty())
    throw std::invalid_argument("Perturber: empty sensitivity");
  stddev_.reserve(sensitivity.size());
  for (double s : sensitivity) {
    // sigma_i = sqrt(1 / s_i), clamped for s_i ~ 0.
    const double sigma =
        s > 0.0 ? std::sqrt(1.0 / s) : std::numeric_limits<double>::infinity();
    stddev_.push_back(scale * std::min(sigma, maxStddev));
  }
}

SensitivityAwarePerturber SensitivityAwarePerturber::uniformNoise(
    int latentDim, double scale) {
  if (latentDim <= 0)
    throw std::invalid_argument("uniformNoise: latentDim must be positive");
  return SensitivityAwarePerturber(
      DirectStddev{},
      std::vector<double>(static_cast<std::size_t>(latentDim), scale));
}

std::vector<float> SensitivityAwarePerturber::sample(Rng& rng) const {
  std::vector<float> out(stddev_.size());
  for (std::size_t i = 0; i < stddev_.size(); ++i)
    out[i] = static_cast<float>(rng.gaussian(0.0, stddev_[i]));
  return out;
}

nn::Tensor SensitivityAwarePerturber::sampleBatch(int n, Rng& rng) const {
  nn::Tensor out({n, latentDim()});
  for (int row = 0; row < n; ++row) {
    for (int i = 0; i < latentDim(); ++i)
      out.at(row, i) = static_cast<float>(
          rng.gaussian(0.0, stddev_[static_cast<std::size_t>(i)]));
  }
  return out;
}

}  // namespace dp::core
