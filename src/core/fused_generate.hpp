#pragma once

/// \file fused_generate.hpp
/// Fused decode route (DESIGN.md §14): prepacks a Tcae generation
/// unit's weights into a nn::fused::DecodePlan once and decodes latent
/// batches straight to binarized row-mask topologies, skipping the
/// float tensor round-trip between decode and assessment. The 1M
/// pipeline (pipeline/massive.cpp) and the serve batcher both route
/// through this; core::decodeLatentsAndAccount keeps the unfused float
/// path alive as the bit-exactness reference.

#include <cstdint>
#include <vector>

#include "models/tcae.hpp"
#include "tensor/decode_fused.hpp"

namespace dp::core {

/// Immutable, thread-safe wrapper around a prepacked decode plan.
/// Construction walks the Tcae's decoder stack, validates it is the
/// fused shape (dense, ReLU, dense, ReLU, reshape, deconv 4/2/1, ReLU,
/// deconv 4/2/1 into one channel, sigmoid) and repacks the weights;
/// it throws std::invalid_argument for any other stack, in which case
/// callers use the unfused float path.
class FusedDecodeRoute {
 public:
  explicit FusedDecodeRoute(const models::Tcae& tcae);

  /// Final topology edge length (rows == cols == s).
  [[nodiscard]] int topologySize() const { return plan_.s; }
  [[nodiscard]] int latentDim() const { return plan_.latentDim; }
  [[nodiscard]] const nn::fused::DecodePlan& plan() const { return plan_; }

  /// Decodes latents (N, latentDim) into binarized topologies:
  /// masks[n*topologySize() + r] bit c = cell (r, c) of sample n, row 0
  /// = bottom. `masks` is resized to N * topologySize(). Sample-
  /// parallel; results independent of DP_THREADS and identical to the
  /// float path's binarized output on every kernel target.
  void decodeMasks(const nn::Tensor& latents,
                   std::vector<std::uint32_t>& masks) const;

 private:
  nn::fused::DecodePlan plan_;
};

}  // namespace dp::core
