#pragma once

/// \file guide.hpp
/// The latent-space guide of the G-TCAE architecture (paper §III-C):
/// a small generative model — the paper's MLP GAN, or a vector VAE for
/// the V-TCAE case study — trained on latent-space vectors, driving
/// the TCAE generation unit. Extracted from the gtcae flows so a
/// trained guide can be checkpointed into serving bundles and sampled
/// concurrently through the const infer() paths.

#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "models/gan.hpp"
#include "models/vae.hpp"
#include "tensor/tensor.hpp"
#include "train/harness.hpp"

namespace dp::core {

/// Per-dimension first/second-moment statistics of an (N, D) tensor.
struct Moments {
  std::vector<double> mean;
  std::vector<double> std;
};

[[nodiscard]] Moments momentsOf(const nn::Tensor& data);

/// Guide architecture + training hyper-parameters.
struct GuideConfig {
  enum class Kind { kGan, kVae };

  Kind kind = Kind::kGan;
  int dataDim = 32;          ///< dimension of the guided vectors
  int zDim = 16;             ///< GAN noise dimension
  int hidden = 64;           ///< hidden width of either guide
  models::GanConfig gan;     ///< GAN training parameters
  int vaeLatentDim = 16;     ///< VAE bottleneck (V-TCAE)
  long vaeTrainSteps = 1500;
};

/// A guide model with per-dimension normalization. Training vectors
/// are standardized per dimension before being handed to the inner
/// GAN/VAE, and the inverse transform is calibrated against the
/// guide's *own* sample moments: encoder latents have arbitrary
/// per-dimension scales, so standardization is what lets a guide with
/// batch-normalized hidden layers fit them; and VAE priors are known
/// to under-disperse relative to the data (posterior/prior mismatch),
/// so matching the first two sample moments to the data keeps the
/// decoded pattern spread faithful for both guide types.
///
/// After train() (or load + setMoments) the model is immutable through
/// sample() — stateless infer() paths only, safe to share across
/// threads.
class GuideModel {
 public:
  GuideModel(const GuideConfig& config, Rng& rng);

  [[nodiscard]] const GuideConfig& config() const { return config_; }

  /// Standardizes `data` (N, dataDim), trains the inner guide, and
  /// calibrates the denormalization moments. `options` are forwarded
  /// to the inner model's train::Harness (checkpointing, resume,
  /// divergence guards).
  void train(const nn::Tensor& data, Rng& rng,
             const train::TrainOptions& options);
  void train(const nn::Tensor& data, Rng& rng);

  /// Draws n denormalized vectors (n, dataDim). Const / thread-safe.
  [[nodiscard]] nn::Tensor sample(int n, Rng& rng) const;

  /// Normalization state, for checkpointing.
  [[nodiscard]] const Moments& dataMoments() const { return data_; }
  [[nodiscard]] const Moments& guideMoments() const { return guide_; }
  void setMoments(Moments data, Moments guide);

  /// Inner-network parameters + state via nn::saveTensors/loadTensors.
  /// The moments are NOT part of this file — persist them alongside
  /// (the bundle manifest does) and restore via setMoments().
  void save(const std::string& path);
  void load(const std::string& path);

 private:
  [[nodiscard]] nn::Tensor sampleInner(int n, Rng& rng) const;
  [[nodiscard]] std::vector<nn::Tensor*> checkpointTensors();

  GuideConfig config_;
  // Exactly one of the two is engaged, per config_.kind.
  std::unique_ptr<models::Gan> gan_;
  std::unique_ptr<models::Vae> vae_;
  Moments data_;
  Moments guide_;
};

/// Latent plan of a guided generation run: the full (count, dataDim)
/// latent tensor the serving pipeline decodes in arbitrary batch
/// splits. Consumes `rng` exactly like the in-process G-TCAE flows
/// (per batch of `batchSize`: guide sample, then source-row indices),
/// so a seeded serve request reproduces the core flow bit-for-bit.
/// `sourceLatents` may be null (context mode: pure guide latents).
[[nodiscard]] nn::Tensor planGuidedLatents(const GuideModel& guide,
                                           const nn::Tensor* sourceLatents,
                                           long count, int batchSize,
                                           Rng& rng);

}  // namespace dp::core
