#pragma once

/// \file flows.hpp
/// The TCAE-family topology generation flows (paper §III-B):
///  - tcaeRandom: sensitivity-aware Gaussian perturbation of existing
///    pattern latents (§III-B3),
///  - tcaeCombine: convex combination of existing pattern latents
///    (Eq. 6, §III-B2),
///  - evaluateSampler: legality/uniqueness accounting for any direct
///    topology sampler (the DCGAN and VAE baselines of Table II),
///  - libraryResult: accounting for a fixed topology set (the "Existing
///    Design" and "Industry Tool" rows of Table II).

#include <cstdint>
#include <functional>
#include <vector>

#include "common/rng.hpp"
#include "core/generation_result.hpp"
#include "core/perturb.hpp"
#include "drc/topology_rules.hpp"
#include "models/tcae.hpp"

namespace dp::core {

struct FlowConfig {
  long count = 20000;    ///< topologies to attempt
  int batchSize = 128;   ///< decode batch size
  bool collectGoodVectors = false;  ///< record legal perturbation vectors
  int sourcePoolSize = 1000;  ///< existing patterns whose latents are
                              ///< perturbed (paper uses 1000)
};

/// Decodes a batch of (N,1,S,S) activations, checks topology legality
/// sample-parallel on the global thread pool, and folds the outcomes
/// into `result` in ascending sample order — so accounting (including
/// PatternLibrary insertion order) is identical at any thread count.
/// When `perturbations` is non-null, row i is recorded in goodVectors
/// for every legal sample i.
void accountActivationBatch(const nn::Tensor& activations,
                            const drc::TopologyChecker& checker,
                            GenerationResult& result,
                            const nn::Tensor* perturbations = nullptr);

/// accountActivationBatch for the fused decode route's bit-packed
/// output (DESIGN.md §14): `masks` holds `batch` samples of `edge` row
/// masks each (bit c of a row = cell (r, c)). Unpad, canonicalization
/// and legality all run on the packed words; the accounting fold (and
/// therefore the PatternLibrary contents and order) matches what the
/// float path produces for the same binarized samples. Good-vector
/// collection is not supported on this route — callers that need it
/// use the float path.
void accountMaskBatch(const std::uint32_t* masks, int batch, int edge,
                      const drc::TopologyChecker& checker,
                      GenerationResult& result);

/// Encodes the first min(poolSize, existing.size()) topologies into the
/// TCAE latent space — the source pool every latent flow perturbs or
/// combines. Serving bundles persist this tensor so requests never
/// re-encode.
[[nodiscard]] nn::Tensor encodeSourceLatents(
    const models::Tcae& tcae,
    const std::vector<squish::Topology>& existing, int poolSize);

/// A fully-drawn latent plan: every random draw of a generation run,
/// materialized up front. Plans exist so the serving pipeline can
/// consume the RNG on the request thread (fixing the seeded stream)
/// and then decode the rows in whatever batch coalescing the server
/// finds — per-sample decode is row-independent, so any split of
/// `latents` yields the same patterns as the in-process flows.
struct LatentPlan {
  nn::Tensor latents;  ///< (count, latentDim) rows to decode
  nn::Tensor noise;    ///< matching perturbation rows; empty for flows
                       ///< that have none (combine)
};

/// Draws the TCAE-Random plan. Consumes `rng` exactly like tcaeRandom:
/// per batch of `batchSize`, source-row indices then the perturbation
/// batch.
[[nodiscard]] LatentPlan planRandomLatents(
    const nn::Tensor& sourceLatents,
    const SensitivityAwarePerturber& perturber, long count, int batchSize,
    Rng& rng);

/// Draws the TCAE-Combine plan (convex combinations of source latents).
/// Consumes `rng` exactly like tcaeCombine: per row, `arity` uniform
/// weights then `arity` source indices.
[[nodiscard]] LatentPlan planCombineLatents(const nn::Tensor& sourceLatents,
                                            long count, int batchSize,
                                            int arity, Rng& rng);

/// Decodes `latents` in batches of `batchSize` and runs the legality/
/// uniqueness accounting. When `perturbations` is non-null its rows
/// (matched 1:1 with `latents`) are recorded for legal samples. This is
/// the decode half of every latent flow — the serve batcher calls it on
/// coalesced row ranges and reproduces the in-process result.
[[nodiscard]] GenerationResult decodeLatentsAndAccount(
    const models::Tcae& tcae, const nn::Tensor& latents,
    const nn::Tensor* perturbations, const drc::TopologyChecker& checker,
    int batchSize);

/// TCAE-Random: perturb latents of existing patterns with
/// sensitivity-aware Gaussian noise and decode. goodVectors (if
/// collected) holds the *perturbation* vectors that decoded legally —
/// the training source of the G-TCAE GAN (§III-C2).
[[nodiscard]] GenerationResult tcaeRandom(
    const models::Tcae& tcae,
    const std::vector<squish::Topology>& existing,
    const SensitivityAwarePerturber& perturber,
    const drc::TopologyChecker& checker, const FlowConfig& config,
    Rng& rng);

struct CombineConfig {
  long count = 20000;
  int batchSize = 128;
  int arity = 2;        ///< patterns combined per sample
  int poolSize = 10;    ///< pool of existing clips to combine (paper: 10)
};

/// TCAE-Combine: decode random convex combinations (sum alpha_i = 1,
/// alpha_i > 0) of existing-pattern latents.
[[nodiscard]] GenerationResult tcaeCombine(
    const models::Tcae& tcae,
    const std::vector<squish::Topology>& existing,
    const drc::TopologyChecker& checker, const CombineConfig& config,
    Rng& rng);

/// A sampler draws a batch of topology activations (N,1,S,S) in [0,1].
using TopologySampler = std::function<nn::Tensor(int n, Rng& rng)>;

/// Runs `count` samples through the legality/uniqueness accounting.
[[nodiscard]] GenerationResult evaluateSampler(
    const TopologySampler& sampler, const drc::TopologyChecker& checker,
    long count, int batchSize, Rng& rng);

/// Accounting for an already-materialized topology set.
[[nodiscard]] GenerationResult libraryResult(
    const std::vector<squish::Topology>& topologies,
    const drc::TopologyChecker& checker);

}  // namespace dp::core
