#pragma once

/// \file sensitivity.hpp
/// Feature sensitivity estimation — Algorithm 1 of the paper. The
/// sensitivity s_i of latent node i is the fraction of reconstructions
/// that become *invalid* topologies when node i is swept over the
/// perturbation range [-t, t] with everything else unchanged
/// (Definition 3). Highly sensitive nodes receive small random
/// perturbations later (perturb.hpp).

#include <vector>

#include "drc/topology_rules.hpp"
#include "models/tcae.hpp"
#include "squish/topology.hpp"

namespace dp::core {

struct SensitivityConfig {
  double range = 2.0;       ///< perturbation range t (lambda in [-t, t])
  int sweepSteps = 9;       ///< number of lambda values sampled in [-t, t]
  int maxTopologies = 64;   ///< cap on |T| per node for tractability
};

/// Runs Algorithm 1: returns one sensitivity in [0, 1] per latent node.
/// Deterministic: uses the first maxTopologies entries of `topologies`.
/// The per-node probes run on the global thread pool; results are
/// bit-identical at any thread count.
[[nodiscard]] std::vector<double> estimateSensitivity(
    const models::Tcae& tcae,
    const std::vector<squish::Topology>& topologies,
    const drc::TopologyChecker& checker, const SensitivityConfig& config);

}  // namespace dp::core
