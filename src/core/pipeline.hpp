#pragma once

/// \file pipeline.hpp
/// The complete pattern-generation flow of the paper's Fig. 8: squish
/// extraction of an existing library -> TCAE training -> latent-space
/// topology generation -> legal pattern assessment (Eq. 10) -> final
/// DRC-clean layout clips.

#include <vector>

#include "common/rng.hpp"
#include "core/flows.hpp"
#include "core/generation_result.hpp"
#include "core/pattern_library.hpp"
#include "core/sensitivity.hpp"
#include "drc/geometry_rules.hpp"
#include "geometry/clip.hpp"
#include "lp/geometry_solver.hpp"
#include "models/tcae.hpp"
#include "train/harness.hpp"

namespace dp::core {

/// Result of materializing a topology library into layout clips.
struct MaterializeResult {
  std::vector<dp::Clip> clips;   ///< solved, DRC-clean clips
  long attempted = 0;            ///< topologies fed to the solver
  long solved = 0;               ///< topologies with a feasible Eq. (10)
  long drcClean = 0;             ///< solved clips passing geometry DRC
};

/// Solves Eq. (10) for every pattern in `library` (optionally capped at
/// `maxClips`) and keeps the clips that pass the geometry checker.
/// Solves run pattern-parallel on the global thread pool; pattern i
/// gets its own Rng seeded `base ^ splitmix64(i)` (base drawn once from
/// `rng`), so the result is identical at any thread count.
[[nodiscard]] MaterializeResult materialize(
    const PatternLibrary& library, const lp::GeometrySolver& solver,
    const drc::GeometryChecker& geomChecker, Rng& rng,
    long maxClips = -1);

/// End-to-end convenience pipeline configuration.
struct PipelineConfig {
  models::TcaeConfig tcae;
  SensitivityConfig sensitivity;
  FlowConfig flow;
  double perturbScale = 1.0;
  long maxClips = 2000;  ///< clips to materialize from the unique set
  /// Robustness options for the TCAE training phase (checkpointing,
  /// resume, divergence guards). Default: sentinels on, no disk
  /// checkpoints.
  train::TrainOptions train;
};

/// End-to-end run summary.
struct PipelineResult {
  GenerationResult generation;
  MaterializeResult materialized;
  std::vector<double> sensitivity;
};

/// Runs the full Fig. 8 flow on an existing clip library: extracts
/// squish topologies, trains a TCAE, estimates sensitivities, runs
/// TCAE-Random and materializes the unique patterns into clips.
[[nodiscard]] PipelineResult runPipeline(
    const std::vector<dp::Clip>& existingClips,
    const dp::DesignRules& rules, const PipelineConfig& config, Rng& rng);

}  // namespace dp::core
