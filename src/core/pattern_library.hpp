#pragma once

/// \file pattern_library.hpp
/// A deduplicated library of canonical squish topologies with the
/// paper's evaluation metrics: unique pattern count and pattern
/// diversity H (Definition 2 — Shannon entropy of the joint (cx, cy)
/// complexity histogram). Uniqueness and diversity are defined on
/// topologies (paper §III-D).

#include <cstdint>
#include <map>
#include <vector>

#include "squish/complexity.hpp"
#include "squish/topology.hpp"

namespace dp::core {

class PatternLibrary {
 public:
  PatternLibrary() = default;

  /// Canonicalizes `t` and inserts it if new. Returns true when the
  /// pattern was not in the library yet. Hash collisions are resolved by
  /// exact comparison, so the count is exact.
  bool add(const squish::Topology& t);

  /// Number of unique patterns.
  [[nodiscard]] std::size_t size() const { return patterns_.size(); }
  [[nodiscard]] bool empty() const { return patterns_.empty(); }

  /// True when the canonical form of `t` is already present.
  [[nodiscard]] bool contains(const squish::Topology& t) const;

  /// All stored canonical topologies, enumerated in ascending canonical
  /// hash order (ties broken by insertion order within a collision
  /// bucket) — platform-independent, so downstream outputs that list
  /// patterns are bit-stable across standard libraries and hosts.
  [[nodiscard]] std::vector<squish::Topology> patterns() const;

  /// Complexities of all stored patterns.
  [[nodiscard]] std::vector<squish::Complexity> complexities() const;

  /// Pattern diversity H (Definition 2).
  [[nodiscard]] double diversity() const;

  /// Mean complexity along x / y.
  [[nodiscard]] double meanCx() const;
  [[nodiscard]] double meanCy() const;

  /// Joint histogram counts[cy][cx] covering all observed complexities
  /// (index 0..max); used by the Fig. 10 heatmaps.
  [[nodiscard]] std::vector<std::vector<double>> histogram() const;

  /// Inserts every pattern of `other`.
  void merge(const PatternLibrary& other);

 private:
  // hash -> exact-collision bucket. An ordered map, NOT unordered_map:
  // patterns() / merge() iterate it, and their enumeration order feeds
  // generation outputs (pattern hash lists, materialization order), so
  // it must not depend on the standard library's hash-table layout.
  std::map<std::uint64_t, std::vector<squish::Topology>> patterns_;
  std::vector<squish::Complexity> complexities_;
};

/// Shannon entropy (Eq. (1), log base 2 / bits) of a set of complexity
/// pairs.
[[nodiscard]] double shannonDiversity(
    const std::vector<squish::Complexity>& cplx);

}  // namespace dp::core
