#pragma once

/// \file generation_result.hpp
/// Common result type of the topology-generation flows (TCAE-Random,
/// TCAE-Combine, G-TCAE, and the baseline generators): attempt counts,
/// legality counts, the unique-pattern library, and — for flows that
/// feed the G-TCAE GAN — the perturbation/latent vectors that produced
/// legal patterns.

#include <vector>

#include "core/pattern_library.hpp"
#include "tensor/tensor.hpp"

namespace dp::core {

struct GenerationResult {
  long generated = 0;  ///< topologies attempted
  long legal = 0;      ///< DRC-legal among attempts (with repetitions)
  PatternLibrary unique;  ///< unique legal patterns
  /// Latent-space vectors whose decoding was legal (training source for
  /// the G-TCAE generative component; empty when not collected).
  std::vector<std::vector<float>> goodVectors;

  [[nodiscard]] double legalFraction() const {
    return generated > 0 ? static_cast<double>(legal) / generated : 0.0;
  }
  [[nodiscard]] double uniqueLegalFraction() const {
    return generated > 0
               ? static_cast<double>(unique.size()) / generated
               : 0.0;
  }
};

/// Packs equal-length float vectors into an (N, D) tensor.
[[nodiscard]] nn::Tensor vectorsToTensor(
    const std::vector<std::vector<float>>& rows);

}  // namespace dp::core
