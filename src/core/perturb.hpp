#pragma once

/// \file perturb.hpp
/// Sensitivity-aware latent perturbation sampling (paper §III-B3):
/// perturbation vector entries are drawn independently from
/// N(0, 1/s_i), so nodes that easily break legality receive small noise.
/// Zero-sensitivity nodes would get unbounded variance; the standard
/// deviation is clamped to `maxStddev`.

#include <vector>

#include "common/rng.hpp"
#include "tensor/tensor.hpp"

namespace dp::core {

class SensitivityAwarePerturber {
 public:
  /// `sensitivity` from estimateSensitivity(); `scale` multiplies every
  /// stddev (a global noise-strength knob); `maxStddev` caps the
  /// per-node stddev.
  SensitivityAwarePerturber(std::vector<double> sensitivity,
                            double scale = 1.0, double maxStddev = 3.0);

  /// Uniform-noise variant for ablation: every node gets stddev
  /// `scale` regardless of sensitivity.
  [[nodiscard]] static SensitivityAwarePerturber uniformNoise(
      int latentDim, double scale);

  [[nodiscard]] int latentDim() const {
    return static_cast<int>(stddev_.size());
  }
  [[nodiscard]] const std::vector<double>& stddevs() const {
    return stddev_;
  }

  /// Samples one perturbation vector.
  [[nodiscard]] std::vector<float> sample(Rng& rng) const;

  /// Samples `n` perturbation vectors as an (n, latentDim) tensor.
  [[nodiscard]] nn::Tensor sampleBatch(int n, Rng& rng) const;

 private:
  struct DirectStddev {};  // tag: construct from stddevs, not sensitivities
  SensitivityAwarePerturber(DirectStddev, std::vector<double> stddev)
      : stddev_(std::move(stddev)) {}

  std::vector<double> stddev_;
};

}  // namespace dp::core
