#pragma once

/// \file thread_pool.hpp
/// Fixed-size thread pool and deterministic data-parallel loops — the
/// parallel execution substrate under the GEMM/convolution kernels, the
/// Algorithm-1 sensitivity probes and the massive-generation flow.
///
/// Determinism contract: parallelFor() partitions [0, n) into chunks
/// [i*grain, min((i+1)*grain, n)) whose boundaries depend ONLY on n and
/// grain — never on the thread count or on scheduling. A loop body that
/// (a) writes only state owned by its chunk and (b) reduces per-chunk
/// results in ascending chunk order therefore produces bit-identical
/// results at any DP_THREADS value, including 1. Randomized parallel
/// tasks must draw from per-task Rng streams seeded with
/// taskSeed(baseSeed, taskIndex) instead of sharing one generator.
///
/// The pool size comes from the DP_THREADS environment variable
/// (default: std::thread::hardware_concurrency(); 1 restores fully
/// serial execution). Nested parallelFor() calls run inline on the
/// calling worker — parallelism never nests, which both bounds the
/// thread count and makes nested submission deadlock-free.

#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

namespace dp {

/// SplitMix64 mixing function (public domain, Sebastiano Vigna).
/// Statistically strong enough to whiten consecutive task indices into
/// independent-looking 64-bit seeds.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Seed of the independent Rng stream owned by parallel task
/// `taskIndex` of a loop whose caller holds `baseSeed`. A pure function
/// of (baseSeed, taskIndex), so results never depend on which thread
/// runs the task or in what order.
[[nodiscard]] constexpr std::uint64_t taskSeed(std::uint64_t baseSeed,
                                               std::uint64_t taskIndex) {
  return baseSeed ^ splitmix64(taskIndex);
}

/// Fixed-size pool of worker threads executing chunked loops.
class ThreadPool {
 public:
  /// A pool of `threads` execution lanes total: the calling thread
  /// participates in every parallelFor, so `threads - 1` workers are
  /// spawned. `threads` is clamped to >= 1; 1 means fully serial.
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total execution lanes (workers + caller).
  [[nodiscard]] int threads() const { return threads_; }

  /// Runs body(begin, end) over every chunk of [0, n) with the
  /// deterministic chunking described in the file comment. Blocks until
  /// all chunks finish. The first exception thrown by any chunk is
  /// rethrown here (remaining chunks still run to completion). Safe to
  /// call from inside a running chunk: nested calls execute inline.
  void parallelFor(long n, long grain,
                   const std::function<void(long begin, long end)>& body);

  /// The process-wide pool used by the free parallelFor(). Built
  /// lazily with defaultThreads() lanes.
  static ThreadPool& global();

  /// Rebuilds the global pool with `threads` lanes (tests and the CLI
  /// --threads flag). Must not be called while a parallel loop runs.
  static void setGlobalThreads(int threads);

  /// DP_THREADS environment variable if set (>= 1), else
  /// hardware_concurrency(), else 1.
  [[nodiscard]] static int defaultThreads();

 private:
  struct State;
  void workerLoop();

  int threads_;
  std::unique_ptr<State> state_;
  std::vector<std::thread> workers_;
};

/// Chunked loop on the global pool; see ThreadPool::parallelFor.
void parallelFor(long n, long grain,
                 const std::function<void(long begin, long end)>& body);

}  // namespace dp
