#include "common/fault.hpp"

#include <atomic>
#include <cstdlib>
#include <memory>
#include <utility>
#include <vector>

#include "common/sync.hpp"

namespace dp {

namespace {

/// splitmix64: one multiply-xor-shift chain per draw. The N-th
/// decision at a site hashes (seed + N), so it is independent of every
/// other draw and of which thread made the call.
std::uint64_t splitmix64(std::uint64_t x) {
  std::uint64_t z = x + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t kAlwaysFire = ~0ULL;

}  // namespace

/// Shared per-site state. Entries are created on first arm() or
/// FaultSite construction and never destroyed (the registry owns them
/// for the process lifetime), so raw State* handles stay valid.
struct FaultSite::State {
  std::string name;
  // Fire when splitmix64(seed + call) < threshold; 0 = disarmed,
  // kAlwaysFire = unconditional.
  std::atomic<std::uint64_t> threshold{0};
  std::atomic<std::uint64_t> seed{0};
  std::atomic<std::uint64_t> calls{0};
  std::atomic<std::uint64_t> fires{0};
};

namespace {

/// Global site registry. armedCount is the disabled-path gate: when it
/// is zero every shouldFail() returns false after one relaxed load,
/// without touching the map or any per-site state.
class Registry {
 public:
  static Registry& instance() {
    static Registry reg;
    return reg;
  }

  FaultSite::State* resolve(const std::string& name)
      DP_EXCLUDES(mutex_) {
    loadEnvOnce();
    LockGuard lock(mutex_);
    return &stateLocked(name);
  }

  void arm(const std::string& name, std::uint64_t seed, double rate)
      DP_EXCLUDES(mutex_) {
    LockGuard lock(mutex_);
    FaultSite::State& s = stateLocked(name);
    const bool wasArmed = s.threshold.load(std::memory_order_relaxed) != 0;
    std::uint64_t threshold = 0;
    if (rate >= 1.0) {
      threshold = kAlwaysFire;
    } else if (rate > 0.0) {
      threshold = static_cast<std::uint64_t>(
          rate * 18446744073709551616.0);  // rate * 2^64
    }
    s.seed.store(seed, std::memory_order_relaxed);
    // Re-arming replays the sequence from call 0.
    s.calls.store(0, std::memory_order_relaxed);
    s.fires.store(0, std::memory_order_relaxed);
    s.threshold.store(threshold, std::memory_order_release);
    const bool isArmed = threshold != 0;
    if (isArmed && !wasArmed)
      armedCount_.fetch_add(1, std::memory_order_release);
    else if (!isArmed && wasArmed)
      armedCount_.fetch_sub(1, std::memory_order_release);
  }

  void disarmAll() DP_EXCLUDES(mutex_) {
    LockGuard lock(mutex_);
    for (const auto& site : sites_)
      site->threshold.store(0, std::memory_order_release);
    armedCount_.store(0, std::memory_order_release);
  }

  [[nodiscard]] bool anyArmed() const {
    return armedCount_.load(std::memory_order_acquire) > 0;
  }

  [[nodiscard]] bool fastDisabled() const {
    return armedCount_.load(std::memory_order_relaxed) == 0;
  }

  [[nodiscard]] std::map<std::string, FaultCounters> counters()
      DP_EXCLUDES(mutex_) {
    LockGuard lock(mutex_);
    std::map<std::string, FaultCounters> out;
    for (const auto& site : sites_) {
      FaultCounters c;
      c.calls = site->calls.load(std::memory_order_relaxed);
      c.fires = site->fires.load(std::memory_order_relaxed);
      out[site->name] = c;
    }
    return out;
  }

  void loadEnvOnce() {
    // Parse DP_FAULTS at most once, before the first site resolves, so
    // env-armed faults apply no matter which code path runs first.
    std::call_once(envOnce_, [] {
      // Read-only getenv on a startup path; no concurrent setenv in
      // this process.
      // NOLINTNEXTLINE(concurrency-mt-unsafe)
      if (const char* env = std::getenv("DP_FAULTS"); env && *env)
        faults::armFromSpec(env);
    });
  }

 private:
  FaultSite::State& stateLocked(const std::string& name)
      DP_REQUIRES(mutex_) {
    for (const auto& site : sites_)
      if (site->name == name) return *site;
    sites_.push_back(std::make_unique<FaultSite::State>());
    sites_.back()->name = name;
    return *sites_.back();
  }

  Mutex mutex_;
  std::vector<std::unique_ptr<FaultSite::State>> sites_
      DP_GUARDED_BY(mutex_);
  std::atomic<int> armedCount_{0};
  std::once_flag envOnce_;
};

}  // namespace

FaultSite::FaultSite(const std::string& name)
    : state_(Registry::instance().resolve(name)) {}

bool FaultSite::shouldFail() {
  if (Registry::instance().fastDisabled()) return false;
  const std::uint64_t threshold =
      state_->threshold.load(std::memory_order_acquire);
  if (threshold == 0) return false;
  const std::uint64_t index =
      state_->calls.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t seed =
      state_->seed.load(std::memory_order_relaxed);
  const bool fire = threshold == kAlwaysFire ||
                    splitmix64(seed + index) < threshold;
  if (fire) state_->fires.fetch_add(1, std::memory_order_relaxed);
  return fire;
}

void FaultSite::orThrow() {
  if (shouldFail()) throw FaultInjected(state_->name);
}

const std::string& FaultSite::name() const { return state_->name; }

namespace faults {

void arm(const std::string& site, std::uint64_t seed, double rate) {
  Registry::instance().arm(site, seed, rate);
}

void disarm(const std::string& site) {
  Registry::instance().arm(site, 0, 0.0);
}

void disarmAll() { Registry::instance().disarmAll(); }

int armFromSpec(const std::string& spec) {
  const auto bad = [&spec](const std::string& why) -> std::invalid_argument {
    return std::invalid_argument("DP_FAULTS: " + why + " in \"" + spec +
                                 "\" (want site:seed:rate[,...])");
  };
  int armed = 0;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    std::size_t end = spec.find(',', pos);
    if (end == std::string::npos) end = spec.size();
    const std::string entry = spec.substr(pos, end - pos);
    pos = end + 1;
    if (entry.empty()) continue;
    const std::size_t c1 = entry.find(':');
    const std::size_t c2 =
        c1 == std::string::npos ? std::string::npos
                                : entry.find(':', c1 + 1);
    if (c1 == std::string::npos || c2 == std::string::npos || c1 == 0)
      throw bad("malformed entry \"" + entry + "\"");
    const std::string site = entry.substr(0, c1);
    const std::string seedText = entry.substr(c1 + 1, c2 - c1 - 1);
    const std::string rateText = entry.substr(c2 + 1);
    std::uint64_t seed = 0;
    double rate = 0.0;
    std::size_t seedUsed = 0;
    std::size_t rateUsed = 0;
    try {
      seed = std::stoull(seedText, &seedUsed);
      rate = std::stod(rateText, &rateUsed);
    } catch (const std::exception&) {
      throw bad("non-numeric seed or rate in \"" + entry + "\"");
    }
    if (seedUsed != seedText.size() || rateUsed != rateText.size())
      throw bad("trailing characters in \"" + entry + "\"");
    if (rate < 0.0 || rate > 1.0)
      throw bad("rate must be in [0, 1] in \"" + entry + "\"");
    arm(site, seed, rate);
    ++armed;
  }
  return armed;
}

int armFromEnv() {
  // Read-only getenv on a startup path; no concurrent setenv in this
  // process.
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  const char* env = std::getenv("DP_FAULTS");
  if (!env || !*env) return 0;
  return armFromSpec(env);
}

std::map<std::string, FaultCounters> counters() {
  return Registry::instance().counters();
}

bool anyArmed() { return Registry::instance().anyArmed(); }

}  // namespace faults

}  // namespace dp
