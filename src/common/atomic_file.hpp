#pragma once

/// \file atomic_file.hpp
/// Crash-safe file replacement and CRC32 content checksums — the
/// durability half of the robustness substrate (DESIGN.md §11). Every
/// checkpoint-shaped write in the repo (nn tensors, bundle manifests)
/// goes through AtomicFileWriter: the payload is staged in memory,
/// written to a sibling temp file, fsync'd, and atomically renamed
/// onto the destination (then the parent directory is fsync'd), so a
/// crash at any instant leaves either the complete old file or the
/// complete new file — never a torn mix. tools/dp_lint.py rule DP006
/// bans raw std::ofstream writes in the checkpoint-bearing modules.

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace dp {

/// CRC-32 (IEEE 802.3 polynomial, the zlib/PNG convention).
[[nodiscard]] std::uint32_t crc32Update(std::uint32_t crc,
                                        const void* data,
                                        std::size_t bytes);
[[nodiscard]] std::uint32_t crc32(std::string_view data);

/// Streaming CRC-32 of a file's contents. Throws std::runtime_error
/// when the file cannot be read.
[[nodiscard]] std::uint32_t crc32File(const std::string& path);

/// Stages a file payload in memory and commits it with
/// write-temp + fsync + atomic-rename semantics. If the writer is
/// destroyed without commit() (e.g. an exception unwinds past it), the
/// temp file is removed and the destination is untouched.
///
/// Fault sites (see common/fault.hpp): io.atomic.write,
/// io.atomic.fsync, io.atomic.rename.
class AtomicFileWriter {
 public:
  explicit AtomicFileWriter(std::string path);
  ~AtomicFileWriter();

  AtomicFileWriter(const AtomicFileWriter&) = delete;
  AtomicFileWriter& operator=(const AtomicFileWriter&) = delete;

  void append(const void* data, std::size_t bytes);
  void append(std::string_view text);

  /// Durably publishes the staged payload to path(). Throws
  /// std::runtime_error on any I/O failure (the destination is left in
  /// its previous state). Returns the CRC-32 of the written payload.
  /// Calling commit() twice is an error.
  std::uint32_t commit();

  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] std::size_t size() const { return buffer_.size(); }

 private:
  std::string path_;
  std::string buffer_;
  bool committed_ = false;
};

}  // namespace dp
