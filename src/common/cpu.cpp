#include "common/cpu.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace dp {

const char* kernelTargetName(KernelTarget t) {
  switch (t) {
    case KernelTarget::kScalar:
      return "scalar";
    case KernelTarget::kAvx2:
      return "avx2";
  }
  return "unknown";
}

bool cpuSupports(KernelTarget t) {
  if (t == KernelTarget::kScalar) return true;
#if (defined(__x86_64__) || defined(_M_X64)) && \
    (defined(__GNUC__) || defined(__clang__))
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

KernelTarget chooseKernelTarget(bool avx2Compiled) {
  const bool avx2Usable = avx2Compiled && cpuSupports(KernelTarget::kAvx2);
  // Read-only getenv on a startup path; no concurrent setenv in this process.
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  if (const char* env = std::getenv("DP_KERNEL"); env && *env) {
    if (std::strcmp(env, "scalar") == 0) return KernelTarget::kScalar;
    if (std::strcmp(env, "avx2") == 0) {
      if (avx2Usable) return KernelTarget::kAvx2;
      std::fprintf(stderr,
                   "dp: DP_KERNEL=avx2 requested but %s; using scalar\n",
                   avx2Compiled ? "the CPU lacks AVX2/FMA"
                                : "the build has no AVX2 kernel");
      return KernelTarget::kScalar;
    }
    std::fprintf(stderr,
                 "dp: DP_KERNEL='%s' not recognized (scalar|avx2); "
                 "auto-selecting\n",
                 env);
  }
  return avx2Usable ? KernelTarget::kAvx2 : KernelTarget::kScalar;
}

}  // namespace dp
