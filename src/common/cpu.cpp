#include "common/cpu.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace dp {

const char* kernelTargetName(KernelTarget t) {
  switch (t) {
    case KernelTarget::kScalar:
      return "scalar";
    case KernelTarget::kAvx2:
      return "avx2";
    case KernelTarget::kAvx512:
      return "avx512";
  }
  return "unknown";
}

bool cpuSupports(KernelTarget t) {
  if (t == KernelTarget::kScalar) return true;
#if (defined(__x86_64__) || defined(_M_X64)) && \
    (defined(__GNUC__) || defined(__clang__))
  if (t == KernelTarget::kAvx2)
    return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
  return __builtin_cpu_supports("avx512f") &&
         __builtin_cpu_supports("avx512bw");
#else
  return false;
#endif
}

KernelTarget chooseKernelTarget(bool avx2Compiled, bool avx512Compiled) {
  const bool avx2Usable = avx2Compiled && cpuSupports(KernelTarget::kAvx2);
  const bool avx512Usable =
      avx512Compiled && cpuSupports(KernelTarget::kAvx512);
  const KernelTarget best = avx512Usable  ? KernelTarget::kAvx512
                            : avx2Usable ? KernelTarget::kAvx2
                                         : KernelTarget::kScalar;
  // Read-only getenv on a startup path; no concurrent setenv in this process.
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  if (const char* env = std::getenv("DP_KERNEL"); env && *env) {
    if (std::strcmp(env, "scalar") == 0) return KernelTarget::kScalar;
    if (std::strcmp(env, "avx2") == 0) {
      if (avx2Usable) return KernelTarget::kAvx2;
      std::fprintf(stderr,
                   "dp: DP_KERNEL=avx2 requested but %s; using scalar\n",
                   avx2Compiled ? "the CPU lacks AVX2/FMA"
                                : "the build has no AVX2 kernel");
      return KernelTarget::kScalar;
    }
    if (std::strcmp(env, "avx512") == 0) {
      if (avx512Usable) return KernelTarget::kAvx512;
      std::fprintf(stderr,
                   "dp: DP_KERNEL=avx512 requested but %s; using %s\n",
                   avx512Compiled ? "the CPU lacks AVX-512F/BW"
                                  : "the build has no AVX-512 kernel",
                   avx2Usable ? "avx2" : "scalar");
      return avx2Usable ? KernelTarget::kAvx2 : KernelTarget::kScalar;
    }
    std::fprintf(stderr,
                 "dp: DP_KERNEL='%s' not recognized (scalar|avx2|avx512); "
                 "auto-selecting\n",
                 env);
  }
  return best;
}

}  // namespace dp
