#pragma once

/// \file cpu.hpp
/// Runtime CPU feature detection backing the tensor kernel dispatch.
/// The kernel layer compiles one translation unit per ISA target (see
/// src/tensor/gemm_*.cpp) and picks the best supported one once at
/// startup; everything outside those TUs stays portable baseline code.

namespace dp {

/// ISA targets the kernel layer can dispatch to. Order is ascending
/// preference: the highest supported target wins.
enum class KernelTarget {
  kScalar = 0,  ///< portable C++, no ISA extensions assumed
  kAvx2 = 1,    ///< AVX2 + FMA (x86-64)
};

/// Human-readable target name ("scalar", "avx2") for logs and reports.
[[nodiscard]] const char* kernelTargetName(KernelTarget t);

/// True when the *running* CPU can execute `t`. Scalar is always
/// supported; AVX2 requires both the avx2 and fma feature bits.
[[nodiscard]] bool cpuSupports(KernelTarget t);

/// Target selection policy: DP_KERNEL=scalar|avx2 if set (falling back
/// to scalar with a warning when the CPU or the build lacks the
/// requested target), else the best target that is both compiled in
/// and supported by the CPU. `avx2Compiled` tells the policy whether
/// the AVX2 translation unit was built with AVX2 code generation.
[[nodiscard]] KernelTarget chooseKernelTarget(bool avx2Compiled);

}  // namespace dp
