#pragma once

/// \file cpu.hpp
/// Runtime CPU feature detection backing the tensor kernel dispatch.
/// The kernel layer compiles one translation unit per ISA target (see
/// src/tensor/gemm_*.cpp) and picks the best supported one once at
/// startup; everything outside those TUs stays portable baseline code.

namespace dp {

/// ISA targets the kernel layer can dispatch to. Order is ascending
/// preference: the highest supported target wins.
enum class KernelTarget {
  kScalar = 0,  ///< portable C++, no ISA extensions assumed
  kAvx2 = 1,    ///< AVX2 + FMA (x86-64)
  kAvx512 = 2,  ///< AVX-512F + AVX-512BW (x86-64)
};

/// Human-readable target name ("scalar", "avx2", "avx512") for logs
/// and reports.
[[nodiscard]] const char* kernelTargetName(KernelTarget t);

/// True when the *running* CPU can execute `t`. Scalar is always
/// supported; AVX2 requires both the avx2 and fma feature bits;
/// AVX-512 requires avx512f and avx512bw.
[[nodiscard]] bool cpuSupports(KernelTarget t);

/// Target selection policy: DP_KERNEL=scalar|avx2|avx512 if set
/// (falling back to the best available target with a warning when the
/// CPU or the build lacks the requested one), else the best target
/// that is both compiled in and supported by the CPU. The *Compiled
/// flags tell the policy which per-ISA translation units were built
/// with real ISA code generation.
[[nodiscard]] KernelTarget chooseKernelTarget(bool avx2Compiled,
                                              bool avx512Compiled);

}  // namespace dp
