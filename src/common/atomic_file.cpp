#include "common/atomic_file.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <array>
#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "common/fault.hpp"

namespace dp {

namespace {

const std::array<std::uint32_t, 256>& crcTable() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k)
        c = (c & 1U) ? 0xedb88320U ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  return table;
}

[[noreturn]] void fail(const std::string& what, const std::string& path,
                       int err) {
  // Errno formatting on a cold error path; no concurrent strerror
  // callers matter for the message text.
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  const char* msg = std::strerror(err);
  throw std::runtime_error("AtomicFileWriter: " + what + ": " + path +
                           ": " + msg);
}

/// Full write() loop with EINTR retry.
bool writeAll(int fd, const char* data, std::size_t bytes) {
  std::size_t done = 0;
  while (done < bytes) {
    const ssize_t n = ::write(fd, data + done, bytes - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<std::size_t>(n);
  }
  return true;
}

/// fsync the directory containing `path` so the rename itself is
/// durable. Best-effort: some filesystems reject directory fsync.
void fsyncParentDir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash + 1);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return;
  (void)::fsync(fd);
  ::close(fd);
}

}  // namespace

std::uint32_t crc32Update(std::uint32_t crc, const void* data,
                          std::size_t bytes) {
  const auto* p = static_cast<const unsigned char*>(data);
  const auto& table = crcTable();
  crc ^= 0xffffffffU;
  for (std::size_t i = 0; i < bytes; ++i)
    crc = table[(crc ^ p[i]) & 0xffU] ^ (crc >> 8);
  return crc ^ 0xffffffffU;
}

std::uint32_t crc32(std::string_view data) {
  return crc32Update(0, data.data(), data.size());
}

std::uint32_t crc32File(const std::string& path) {
  static FaultSite crcFault("io.atomic.crc");
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) fail("cannot open for checksum", path, errno);
  if (crcFault.shouldFail()) {
    ::close(fd);
    fail("injected checksum fault", path, EIO);
  }
  std::uint32_t crc = 0;
  char chunk[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, chunk, sizeof chunk);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      ::close(fd);
      fail("read failed during checksum", path, err);
    }
    if (n == 0) break;
    crc = crc32Update(crc, chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return crc;
}

AtomicFileWriter::AtomicFileWriter(std::string path)
    : path_(std::move(path)) {}

AtomicFileWriter::~AtomicFileWriter() = default;

void AtomicFileWriter::append(const void* data, std::size_t bytes) {
  buffer_.append(static_cast<const char*>(data), bytes);
}

void AtomicFileWriter::append(std::string_view text) {
  buffer_.append(text);
}

std::uint32_t AtomicFileWriter::commit() {
  if (committed_)
    throw std::logic_error("AtomicFileWriter: double commit: " + path_);
  committed_ = true;

  static std::atomic<std::uint64_t> counter{0};
  const std::string tmp =
      path_ + ".tmp." + std::to_string(::getpid()) + "." +
      std::to_string(counter.fetch_add(1, std::memory_order_relaxed));

  static FaultSite writeFault("io.atomic.write");
  static FaultSite fsyncFault("io.atomic.fsync");
  static FaultSite renameFault("io.atomic.rename");

  const int fd = ::open(tmp.c_str(),
                        O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) fail("cannot open temp file", tmp, errno);
  const auto cleanupAndFail = [&fd, &tmp](const std::string& what,
                                          int err) {
    ::close(fd);
    ::unlink(tmp.c_str());
    fail(what, tmp, err);
  };
  if (writeFault.shouldFail()) cleanupAndFail("injected write fault", EIO);
  if (!writeAll(fd, buffer_.data(), buffer_.size()))
    cleanupAndFail("write failed", errno);
  if (fsyncFault.shouldFail()) cleanupAndFail("injected fsync fault", EIO);
  if (::fsync(fd) < 0) cleanupAndFail("fsync failed", errno);
  if (::close(fd) < 0) {
    ::unlink(tmp.c_str());
    fail("close failed", tmp, errno);
  }
  if (renameFault.shouldFail()) {
    ::unlink(tmp.c_str());
    fail("injected rename fault", path_, EIO);
  }
  if (::rename(tmp.c_str(), path_.c_str()) < 0) {
    const int err = errno;
    ::unlink(tmp.c_str());
    fail("rename failed", path_, err);
  }
  fsyncParentDir(path_);
  return crc32(buffer_);
}

}  // namespace dp
