#include "common/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <stdexcept>
#include <string>

namespace dp {

namespace {

/// Set while a thread (worker or caller) executes chunks of some batch;
/// nested parallelFor calls observe it and run inline instead of
/// re-entering the pool, which would deadlock a fully busy pool.
thread_local bool tlsInsideChunk = false;

/// One parallelFor invocation. Heap-allocated and shared between the
/// caller and every worker that joins in, so a straggler worker can
/// never observe the fields of a *later* batch through a reused slot.
struct Batch {
  const std::function<void(long, long)>* body = nullptr;
  long n = 0;
  long grain = 1;
  long chunkCount = 0;
  std::atomic<long> nextChunk{0};

  std::mutex mutex;
  std::condition_variable done;
  long chunksLeft = 0;
  std::exception_ptr firstError;
};

/// Claims and runs chunks of `b` until none are left. Returns after
/// reporting this thread's completions; the batch is finished once
/// chunksLeft reaches 0.
void runChunks(Batch& b) {
  tlsInsideChunk = true;
  long finished = 0;
  std::exception_ptr error;
  for (;;) {
    const long chunk = b.nextChunk.fetch_add(1, std::memory_order_relaxed);
    if (chunk >= b.chunkCount) break;
    const long begin = chunk * b.grain;
    const long end = std::min(b.n, begin + b.grain);
    try {
      (*b.body)(begin, end);
    } catch (...) {
      if (!error) error = std::current_exception();
    }
    ++finished;
  }
  tlsInsideChunk = false;
  if (finished > 0 || error) {
    std::lock_guard<std::mutex> lock(b.mutex);
    if (error && !b.firstError) b.firstError = error;
    b.chunksLeft -= finished;
    if (b.chunksLeft == 0) b.done.notify_all();
  }
}

}  // namespace

struct ThreadPool::State {
  std::mutex mutex;
  std::condition_variable wake;  ///< workers wait here for a batch
  std::mutex callMutex;          ///< serializes concurrent parallelFor calls
  std::shared_ptr<Batch> current;
  std::uint64_t generation = 0;  ///< bumped per published batch
  bool shuttingDown = false;
};

ThreadPool::ThreadPool(int threads)
    : threads_(threads < 1 ? 1 : threads), state_(std::make_unique<State>()) {
  workers_.reserve(static_cast<std::size_t>(threads_ - 1));
  for (int i = 0; i < threads_ - 1; ++i)
    workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(state_->mutex);
    state_->shuttingDown = true;
  }
  state_->wake.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::workerLoop() {
  State& s = *state_;
  std::uint64_t seen = 0;
  for (;;) {
    std::shared_ptr<Batch> batch;
    {
      std::unique_lock<std::mutex> lock(s.mutex);
      s.wake.wait(lock,
                  [&] { return s.shuttingDown || s.generation != seen; });
      if (s.shuttingDown) return;
      seen = s.generation;
      batch = s.current;  // may already be gone — just wait again
    }
    if (batch) runChunks(*batch);
  }
}

void ThreadPool::parallelFor(
    long n, long grain, const std::function<void(long, long)>& body) {
  if (n <= 0) return;
  if (!body) throw std::invalid_argument("parallelFor: null body");
  if (grain < 1) grain = 1;
  const long chunkCount = (n + grain - 1) / grain;

  // Serial lanes, nested calls, and single-chunk loops run inline —
  // same chunk boundaries, ascending order, so results are identical.
  if (threads_ == 1 || chunkCount == 1 || tlsInsideChunk) {
    const bool nested = tlsInsideChunk;
    tlsInsideChunk = true;
    std::exception_ptr error;
    for (long c = 0; c < chunkCount; ++c) {
      try {
        body(c * grain, std::min(n, (c + 1) * grain));
      } catch (...) {
        if (!error) error = std::current_exception();
      }
    }
    tlsInsideChunk = nested;
    if (error) std::rethrow_exception(error);
    return;
  }

  State& s = *state_;
  std::lock_guard<std::mutex> callLock(s.callMutex);
  auto batch = std::make_shared<Batch>();
  batch->body = &body;
  batch->n = n;
  batch->grain = grain;
  batch->chunkCount = chunkCount;
  batch->chunksLeft = chunkCount;
  {
    std::lock_guard<std::mutex> lock(s.mutex);
    s.current = batch;
    ++s.generation;
  }
  s.wake.notify_all();
  runChunks(*batch);  // the caller is a lane too
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(batch->mutex);
    batch->done.wait(lock, [&] { return batch->chunksLeft == 0; });
    error = batch->firstError;
  }
  {
    std::lock_guard<std::mutex> lock(s.mutex);
    if (s.current == batch) s.current.reset();
  }
  if (error) std::rethrow_exception(error);
}

namespace {

std::mutex gGlobalMutex;
std::unique_ptr<ThreadPool> gGlobalPool;

}  // namespace

int ThreadPool::defaultThreads() {
  if (const char* env = std::getenv("DP_THREADS")) {
    try {
      const int n = std::stoi(env);
      if (n >= 1) return n;
    } catch (...) {
      // fall through to hardware concurrency
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

ThreadPool& ThreadPool::global() {
  std::lock_guard<std::mutex> lock(gGlobalMutex);
  if (!gGlobalPool)
    gGlobalPool = std::make_unique<ThreadPool>(defaultThreads());
  return *gGlobalPool;
}

void ThreadPool::setGlobalThreads(int threads) {
  std::lock_guard<std::mutex> lock(gGlobalMutex);
  gGlobalPool = std::make_unique<ThreadPool>(threads < 1 ? 1 : threads);
}

void parallelFor(long n, long grain,
                 const std::function<void(long, long)>& body) {
  ThreadPool::global().parallelFor(n, grain, body);
}

}  // namespace dp
