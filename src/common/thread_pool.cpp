#include "common/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <string>

#include "common/sync.hpp"

namespace dp {

namespace {

/// Set while a thread (worker or caller) executes chunks of some batch;
/// nested parallelFor calls observe it and run inline instead of
/// re-entering the pool, which would deadlock a fully busy pool.
thread_local bool tlsInsideChunk = false;

/// One parallelFor invocation. Heap-allocated and shared between the
/// caller and every worker that joins in, so a straggler worker can
/// never observe the fields of a *later* batch through a reused slot.
struct Batch {
  // Immutable after publication (written before the release under
  // State::mutex, read-only afterwards) — not guarded.
  const std::function<void(long, long)>* body = nullptr;
  long n = 0;
  long grain = 1;
  long chunkCount = 0;
  std::atomic<long> nextChunk{0};

  Mutex mutex;
  CondVar done;  ///< signalled when chunksLeft reaches 0
  long chunksLeft DP_GUARDED_BY(mutex) = 0;
  std::exception_ptr firstError DP_GUARDED_BY(mutex);
};

/// Claims and runs chunks of `b` until none are left. Returns after
/// reporting this thread's completions; the batch is finished once
/// chunksLeft reaches 0.
void runChunks(Batch& b) {
  tlsInsideChunk = true;
  long finished = 0;
  std::exception_ptr error;
  for (;;) {
    const long chunk = b.nextChunk.fetch_add(1, std::memory_order_relaxed);
    if (chunk >= b.chunkCount) break;
    const long begin = chunk * b.grain;
    const long end = std::min(b.n, begin + b.grain);
    try {
      (*b.body)(begin, end);
    } catch (...) {
      if (!error) error = std::current_exception();
    }
    ++finished;
  }
  tlsInsideChunk = false;
  if (finished > 0 || error) {
    LockGuard lock(b.mutex);
    if (error && !b.firstError) b.firstError = error;
    b.chunksLeft -= finished;
    if (b.chunksLeft == 0) b.done.notifyAll();
  }
}

}  // namespace

struct ThreadPool::State {
  Mutex mutex;
  CondVar wake;     ///< workers wait here for a batch
  Mutex callMutex;  ///< serializes concurrent parallelFor calls
  std::shared_ptr<Batch> current DP_GUARDED_BY(mutex);
  /// Bumped per published batch.
  std::uint64_t generation DP_GUARDED_BY(mutex) = 0;
  bool shuttingDown DP_GUARDED_BY(mutex) = false;
};

ThreadPool::ThreadPool(int threads)
    : threads_(threads < 1 ? 1 : threads), state_(std::make_unique<State>()) {
  workers_.reserve(static_cast<std::size_t>(threads_ - 1));
  for (int i = 0; i < threads_ - 1; ++i)
    workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    LockGuard lock(state_->mutex);
    state_->shuttingDown = true;
  }
  state_->wake.notifyAll();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::workerLoop() {
  State& s = *state_;
  std::uint64_t seen = 0;
  for (;;) {
    std::shared_ptr<Batch> batch;
    {
      UniqueLock lock(s.mutex);
      while (!s.shuttingDown && s.generation == seen) s.wake.wait(lock);
      if (s.shuttingDown) return;
      seen = s.generation;
      batch = s.current;  // may already be gone — just wait again
    }
    if (batch) runChunks(*batch);
  }
}

void ThreadPool::parallelFor(
    long n, long grain, const std::function<void(long, long)>& body) {
  if (n <= 0) return;
  if (!body) throw std::invalid_argument("parallelFor: null body");
  if (grain < 1) grain = 1;
  const long chunkCount = (n + grain - 1) / grain;

  // Serial lanes, nested calls, and single-chunk loops run inline —
  // same chunk boundaries, ascending order, so results are identical.
  if (threads_ == 1 || chunkCount == 1 || tlsInsideChunk) {
    const bool nested = tlsInsideChunk;
    tlsInsideChunk = true;
    std::exception_ptr error;
    for (long c = 0; c < chunkCount; ++c) {
      try {
        body(c * grain, std::min(n, (c + 1) * grain));
      } catch (...) {
        if (!error) error = std::current_exception();
      }
    }
    tlsInsideChunk = nested;
    if (error) std::rethrow_exception(error);
    return;
  }

  State& s = *state_;
  LockGuard callLock(s.callMutex);
  auto batch = std::make_shared<Batch>();
  batch->body = &body;
  batch->n = n;
  batch->grain = grain;
  batch->chunkCount = chunkCount;
  {
    LockGuard lock(batch->mutex);
    batch->chunksLeft = chunkCount;
  }
  {
    LockGuard lock(s.mutex);
    s.current = batch;
    ++s.generation;
  }
  s.wake.notifyAll();
  runChunks(*batch);  // the caller is a lane too
  std::exception_ptr error;
  {
    UniqueLock lock(batch->mutex);
    while (batch->chunksLeft != 0) batch->done.wait(lock);
    error = batch->firstError;
  }
  {
    LockGuard lock(s.mutex);
    if (s.current == batch) s.current.reset();
  }
  if (error) std::rethrow_exception(error);
}

namespace {

Mutex gGlobalMutex;
std::unique_ptr<ThreadPool> gGlobalPool DP_GUARDED_BY(gGlobalMutex);

}  // namespace

int ThreadPool::defaultThreads() {
  // Read-only getenv on a startup path; no concurrent setenv in this process.
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  if (const char* env = std::getenv("DP_THREADS")) {
    try {
      const int n = std::stoi(env);
      if (n >= 1) return n;
    } catch (...) {
      // fall through to hardware concurrency
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

ThreadPool& ThreadPool::global() {
  LockGuard lock(gGlobalMutex);
  if (!gGlobalPool)
    gGlobalPool = std::make_unique<ThreadPool>(defaultThreads());
  return *gGlobalPool;
}

void ThreadPool::setGlobalThreads(int threads) {
  LockGuard lock(gGlobalMutex);
  gGlobalPool = std::make_unique<ThreadPool>(threads < 1 ? 1 : threads);
}

void parallelFor(long n, long grain,
                 const std::function<void(long, long)>& body) {
  ThreadPool::global().parallelFor(n, grain, body);
}

}  // namespace dp
