#pragma once

/// \file fault.hpp
/// Deterministic fault-injection substrate (DESIGN.md §11). Named
/// fault sites guard the operations that can fail in production —
/// file reads/writes, socket ops, queue admission, decode — and are
/// zero-cost when nothing is armed (one relaxed atomic load). Armed
/// via the DP_FAULTS environment variable
///
///   DP_FAULTS=<site>:<seed>:<rate>[,<site>:<seed>:<rate>...]
///
/// or programmatically (faults::arm), a site fires from a seeded
/// counter-indexed hash: the decision for the N-th call at a site is a
/// pure function of (seed, N), so a fault sequence is replayable from
/// its seed — re-arming with the same seed reproduces the identical
/// fire pattern regardless of thread count, as long as calls reach the
/// site in the same order.
///
/// Usage at a guarded operation:
///
///   static FaultSite site("serve.recv");
///   if (site.shouldFail()) return -1;        // branch-style
///   ...
///   static FaultSite site("bundle.load");
///   site.orThrow();                          // throws FaultInjected
///
/// Sites self-register in a global ordered registry on first use;
/// arming a name that has not been constructed yet is allowed (the
/// state is created eagerly), so DP_FAULTS can name any site before
/// the code path that owns it runs.

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>

namespace dp {

/// Thrown by FaultSite::orThrow when an armed site fires.
class FaultInjected : public std::runtime_error {
 public:
  explicit FaultInjected(const std::string& site)
      : std::runtime_error("injected fault at site " + site),
        site_(site) {}

  [[nodiscard]] const std::string& site() const { return site_; }

 private:
  std::string site_;
};

/// Per-site observation counters (calls are only counted while any
/// site is armed — the disabled fast path never touches the state).
struct FaultCounters {
  std::uint64_t calls = 0;
  std::uint64_t fires = 0;
};

/// A named fault point. Construction resolves (or creates) the shared
/// registry state once; shouldFail() is then lock-free.
class FaultSite {
 public:
  explicit FaultSite(const std::string& name);

  /// True when the site is armed and the seeded stream says this call
  /// fires. Disabled sites cost one relaxed atomic load.
  [[nodiscard]] bool shouldFail();

  /// shouldFail(), but throws FaultInjected on fire.
  void orThrow();

  [[nodiscard]] const std::string& name() const;

  /// Registry-owned shared state (defined in fault.cpp).
  struct State;

 private:
  State* state_;
};

namespace faults {

/// Arms `site` to fire with probability `rate` in [0, 1] from the
/// given seed. Re-arming resets the site's call/fire counters so the
/// sequence replays from the start. rate <= 0 disarms.
void arm(const std::string& site, std::uint64_t seed, double rate);

void disarm(const std::string& site);
void disarmAll();

/// Parses a "<site>:<seed>:<rate>[,...]" spec and arms each entry.
/// Returns the number of sites armed; throws std::invalid_argument on
/// a malformed spec.
int armFromSpec(const std::string& spec);

/// Arms from the DP_FAULTS environment variable (no-op when unset).
/// Returns the number of sites armed. Called lazily by the registry on
/// first site construction, so most code never needs to call it.
int armFromEnv();

/// Ordered snapshot of every registered site's counters.
[[nodiscard]] std::map<std::string, FaultCounters> counters();

/// True when at least one site is currently armed.
[[nodiscard]] bool anyArmed();

}  // namespace faults

}  // namespace dp
