#pragma once

/// \file sync.hpp
/// Synchronization primitives carrying Clang thread-safety capability
/// annotations — the compile-time leg of the repo's determinism and
/// race-freedom contract (DESIGN.md §10). Every mutex in the codebase
/// is a dp::Mutex and every guarded field is tagged DP_GUARDED_BY, so
/// `clang++ -Wthread-safety -Werror=thread-safety-analysis` (CMake
/// option DP_THREAD_SAFETY, CI job `static-analysis`) rejects any code
/// path that touches shared state without holding its lock — before a
/// TSan run ever gets the chance to observe the race at runtime.
///
/// Off-Clang the macros expand to nothing and the wrappers are
/// zero-cost shims over the std primitives, so gcc builds are
/// unaffected.
///
/// Conventions enforced here (and by tools/dp_lint.py rule DP002):
///  - raw std::mutex / std::lock_guard / std::unique_lock /
///    std::condition_variable appear ONLY in this header;
///  - condition waits are written as explicit `while (!cond) cv.wait`
///    loops in the annotated function body — CondVar deliberately has
///    no predicate overload, because the analysis cannot see through a
///    predicate lambda into the guarded fields it reads.

#include <condition_variable>
#include <mutex>

// ---------------------------------------------------------------------------
// Capability annotation macros (no-ops outside Clang).
// ---------------------------------------------------------------------------

#if defined(__clang__) && !defined(SWIG)
#define DP_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define DP_THREAD_ANNOTATION(x)  // no-op off Clang
#endif

/// Marks a type as a lockable capability ("mutex").
#define DP_CAPABILITY(x) DP_THREAD_ANNOTATION(capability(x))

/// Marks an RAII type that acquires in its constructor and releases in
/// its destructor.
#define DP_SCOPED_CAPABILITY DP_THREAD_ANNOTATION(scoped_lockable)

/// Field may only be read or written while holding `x`.
#define DP_GUARDED_BY(x) DP_THREAD_ANNOTATION(guarded_by(x))

/// Pointee may only be accessed while holding `x`.
#define DP_PT_GUARDED_BY(x) DP_THREAD_ANNOTATION(pt_guarded_by(x))

/// Caller must hold the listed capabilities.
#define DP_REQUIRES(...) \
  DP_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function acquires the listed capabilities (held on return).
#define DP_ACQUIRE(...) \
  DP_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases the listed capabilities.
#define DP_RELEASE(...) \
  DP_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function acquires the capability iff it returns `result`.
#define DP_TRY_ACQUIRE(result, ...) \
  DP_THREAD_ANNOTATION(try_acquire_capability(result, __VA_ARGS__))

/// Caller must NOT hold the listed capabilities (deadlock guard).
#define DP_EXCLUDES(...) DP_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function returns a reference to the given capability.
#define DP_RETURN_CAPABILITY(x) DP_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Every use
/// needs a comment explaining why the analysis cannot see the
/// invariant.
#define DP_NO_THREAD_SAFETY_ANALYSIS \
  DP_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace dp {

class UniqueLock;

/// std::mutex with the "mutex" capability. Prefer the RAII guards;
/// lock()/unlock() exist for the rare hand-over-hand pattern.
class DP_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() DP_ACQUIRE() { raw_.lock(); }
  void unlock() DP_RELEASE() { raw_.unlock(); }
  [[nodiscard]] bool tryLock() DP_TRY_ACQUIRE(true) {
    return raw_.try_lock();
  }

 private:
  friend class UniqueLock;
  std::mutex raw_;
};

/// RAII scope lock (std::lock_guard equivalent).
class DP_SCOPED_CAPABILITY LockGuard {
 public:
  explicit LockGuard(Mutex& mutex) DP_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~LockGuard() DP_RELEASE() { mutex_.unlock(); }

  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  Mutex& mutex_;
};

/// RAII scope lock that a CondVar can release and reacquire while
/// waiting (std::unique_lock equivalent; always holds the lock from
/// the analysis' point of view, which is exactly the semantics a
/// condition-wait loop needs).
class DP_SCOPED_CAPABILITY UniqueLock {
 public:
  explicit UniqueLock(Mutex& mutex) DP_ACQUIRE(mutex)
      : lock_(mutex.raw_) {}
  ~UniqueLock() DP_RELEASE() {}  // member std::unique_lock unlocks

  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

/// Condition variable over dp::Mutex. Only the plain wait() is
/// offered: write the predicate as an explicit loop in the annotated
/// caller so the analysis checks the guarded reads it makes.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `lock`, sleeps, and reacquires before
  /// returning. Spurious wakeups happen; loop on the predicate.
  void wait(UniqueLock& lock) { cv_.wait(lock.lock_); }

  void notifyOne() noexcept { cv_.notify_one(); }
  void notifyAll() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace dp
