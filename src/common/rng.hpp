#pragma once

/// \file rng.hpp
/// Deterministic random-number utility shared by every stochastic
/// component in the project. All randomized APIs take an Rng& parameter
/// explicitly — there is no hidden global state — so experiments are
/// reproducible from a printed seed.

#include <cstdint>
#include <random>

namespace dp {

/// Thin wrapper over std::mt19937_64 with the distributions this project
/// uses. Copyable (useful to fork reproducible sub-streams).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eedu) : engine_(seed) {}

  /// Uniform real in [lo, hi).
  [[nodiscard]] double uniform(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] (inclusive).
  [[nodiscard]] int uniformInt(int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(engine_);
  }

  /// Gaussian with the given mean / standard deviation.
  [[nodiscard]] double gaussian(double mean = 0.0, double stddev = 1.0) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Bernoulli with probability p of true.
  [[nodiscard]] bool bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Forks an independent deterministic sub-stream.
  [[nodiscard]] Rng fork() { return Rng(engine_()); }

  [[nodiscard]] std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace dp
