#pragma once

/// \file rng.hpp
/// Deterministic random-number utility shared by every stochastic
/// component in the project. All randomized APIs take an Rng& parameter
/// explicitly — there is no hidden global state — so experiments are
/// reproducible from a printed seed.

#include <cstdint>
#include <random>
#include <sstream>
#include <stdexcept>
#include <string>

namespace dp {

/// Thin wrapper over std::mt19937_64 with the distributions this project
/// uses. Copyable (useful to fork reproducible sub-streams).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eedu) : engine_(seed) {}

  /// Serialized engine state (the std::mt19937_64 textual state: 312
  /// decimal words and a cursor). Every distribution here is
  /// constructed per call — no distribution caches a value across
  /// calls — so the engine state IS the complete stream position:
  /// setState() followed by any draw sequence reproduces the draws
  /// that would have followed the state() call bit for bit.
  [[nodiscard]] std::string state() const {
    std::ostringstream out;
    out.imbue(std::locale::classic());
    out << engine_;
    return out.str();
  }

  /// Restores a stream position captured by state(). Throws
  /// std::invalid_argument when the string is not a serialized
  /// mt19937_64 state.
  void setState(const std::string& state) {
    std::istringstream in(state);
    in.imbue(std::locale::classic());
    in >> engine_;
    if (in.fail())
      throw std::invalid_argument("Rng::setState: malformed state string");
  }

  /// Uniform real in [lo, hi).
  [[nodiscard]] double uniform(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] (inclusive).
  [[nodiscard]] int uniformInt(int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(engine_);
  }

  /// Gaussian with the given mean / standard deviation.
  [[nodiscard]] double gaussian(double mean = 0.0, double stddev = 1.0) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Bernoulli with probability p of true.
  [[nodiscard]] bool bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Forks an independent deterministic sub-stream.
  [[nodiscard]] Rng fork() { return Rng(engine_()); }

  [[nodiscard]] std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace dp
