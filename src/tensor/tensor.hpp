#pragma once

/// \file tensor.hpp
/// Minimal dense float tensor used by the neural-network substrate.
/// Row-major, contiguous, up to 4 dimensions (the networks in this
/// project use (N,C,H,W) activations and (N,D) feature matrices).
/// This is deliberately a plain value type: copy copies, no views, no
/// hidden sharing — which keeps layer implementations easy to audit.

#include <cstddef>
#include <string>
#include <vector>

#include "common/rng.hpp"

namespace dp::nn {

class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(std::vector<int> shape);

  [[nodiscard]] static Tensor zeros(std::vector<int> shape);
  [[nodiscard]] static Tensor full(std::vector<int> shape, float v);
  /// I.i.d. N(0, stddev^2) entries.
  [[nodiscard]] static Tensor randn(std::vector<int> shape, Rng& rng,
                                    double stddev = 1.0);
  /// I.i.d. uniform entries in [lo, hi).
  [[nodiscard]] static Tensor uniform(std::vector<int> shape, Rng& rng,
                                      double lo, double hi);

  [[nodiscard]] const std::vector<int>& shape() const { return shape_; }
  [[nodiscard]] int dim() const { return static_cast<int>(shape_.size()); }
  [[nodiscard]] int size(int d) const;
  [[nodiscard]] std::size_t numel() const { return data_.size(); }
  [[nodiscard]] bool empty() const { return data_.empty(); }

  [[nodiscard]] float* data() { return data_.data(); }
  [[nodiscard]] const float* data() const { return data_.data(); }

  [[nodiscard]] float& operator[](std::size_t i) { return data_[i]; }
  [[nodiscard]] float operator[](std::size_t i) const { return data_[i]; }

  /// 2-D indexed access (for (N,D) tensors).
  [[nodiscard]] float& at(int i, int j);
  [[nodiscard]] float at(int i, int j) const;
  /// 4-D indexed access (for (N,C,H,W) tensors).
  [[nodiscard]] float& at(int n, int c, int h, int w);
  [[nodiscard]] float at(int n, int c, int h, int w) const;

  /// Same data, new shape; numel must match. Returns a copy.
  [[nodiscard]] Tensor reshaped(std::vector<int> shape) const;

  void fill(float v);
  void zero() { fill(0.0f); }

  /// In-place elementwise operations (shapes must match exactly).
  Tensor& operator+=(const Tensor& o);
  Tensor& operator-=(const Tensor& o);
  Tensor& operator*=(float s);

  [[nodiscard]] friend Tensor operator+(Tensor a, const Tensor& b) {
    a += b;
    return a;
  }
  [[nodiscard]] friend Tensor operator-(Tensor a, const Tensor& b) {
    a -= b;
    return a;
  }
  [[nodiscard]] friend Tensor operator*(Tensor a, float s) {
    a *= s;
    return a;
  }

  /// Sum of all entries.
  [[nodiscard]] double sum() const;
  /// Mean of all entries (0 for empty tensors).
  [[nodiscard]] double mean() const;
  /// Largest absolute entry.
  [[nodiscard]] double absMax() const;

  [[nodiscard]] std::string shapeString() const;

  friend bool operator==(const Tensor&, const Tensor&) = default;

 private:
  [[nodiscard]] std::size_t checkedNumel(const std::vector<int>& s) const;

  std::vector<int> shape_;
  std::vector<float> data_;
};

/// Throws std::invalid_argument unless the two shapes are identical.
void requireSameShape(const Tensor& a, const Tensor& b,
                      const char* context);

}  // namespace dp::nn
