// AVX2+FMA micro-kernel. This is the only translation unit built with
// -mavx2 -mfma (see src/tensor/CMakeLists.txt); it must never be
// called unless dp::cpuSupports(KernelTarget::kAvx2), which the
// dispatcher in gemm.cpp guarantees. When the toolchain or the
// architecture cannot generate AVX2 code the TU degrades to a stub and
// avx2KernelCompiled() reports false.

#include "tensor/gemm_kernels.hpp"

#if defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

namespace dp::nn::detail {

bool avx2KernelCompiled() { return true; }

// 6x16 register tile: 12 ymm accumulators + 2 B lanes + 1 broadcast
// fit the 16 architectural ymm registers. Per output element the FMA
// chain accumulates in ascending-p order, so the result is a pure
// function of the (shape-derived) blocking — never of DP_THREADS.
void microKernelAvx2(int kc, const float* apanel, const float* bpanel,
                     float alpha, float* c, int ldc, int mr, int nr) {
  __m256 acc0[kMR];
  __m256 acc1[kMR];
  for (int i = 0; i < kMR; ++i) {
    acc0[i] = _mm256_setzero_ps();
    acc1[i] = _mm256_setzero_ps();
  }
  for (int p = 0; p < kc; ++p) {
    const float* a = apanel + static_cast<long>(p) * kMR;
    const float* b = bpanel + static_cast<long>(p) * kNR;
    const __m256 b0 = _mm256_loadu_ps(b);
    const __m256 b1 = _mm256_loadu_ps(b + 8);
    for (int i = 0; i < kMR; ++i) {
      const __m256 av = _mm256_broadcast_ss(a + i);
      acc0[i] = _mm256_fmadd_ps(av, b0, acc0[i]);
      acc1[i] = _mm256_fmadd_ps(av, b1, acc1[i]);
    }
  }
  const __m256 va = _mm256_set1_ps(alpha);
  if (mr == kMR && nr == kNR) {
    for (int i = 0; i < kMR; ++i) {
      float* crow = c + static_cast<long>(i) * ldc;
      _mm256_storeu_ps(crow,
                       _mm256_fmadd_ps(va, acc0[i], _mm256_loadu_ps(crow)));
      _mm256_storeu_ps(
          crow + 8, _mm256_fmadd_ps(va, acc1[i], _mm256_loadu_ps(crow + 8)));
    }
    return;
  }
  // Edge tile: spill the full tile and store only the valid window.
  // Which elements take this path depends on (m, n) alone, so it does
  // not break per-target determinism.
  alignas(32) float tile[kMR][kNR];
  for (int i = 0; i < kMR; ++i) {
    _mm256_store_ps(tile[i], acc0[i]);
    _mm256_store_ps(tile[i] + 8, acc1[i]);
  }
  for (int i = 0; i < mr; ++i) {
    float* crow = c + static_cast<long>(i) * ldc;
    for (int j = 0; j < nr; ++j) crow[j] += alpha * tile[i][j];
  }
}

// Row-major sweep with the source row vector kept live across the
// channel loop: one src load feeds nc FMAs. The caller pads the
// accumulator row stride to a vector multiple, so the scalar tail is
// normally dead; it uses scalar FMA so every column sees exactly one
// fused product regardless of lane position.
void convTapAvx2(int nc, int rows, int cols, const float* w, long wStride,
                 const float* x, long ldx, float* y, long planeStride,
                 long ldy) {
  const int vcols = cols & ~7;
  for (int r = 0; r < rows; ++r) {
    const float* src = x + r * ldx;
    float* dstRow = y + r * ldy;
    for (int j = 0; j < vcols; j += 8) {
      const __m256 xv = _mm256_loadu_ps(src + j);
      for (int oc = 0; oc < nc; ++oc) {
        float* dst = dstRow + oc * planeStride + j;
        _mm256_storeu_ps(
            dst, _mm256_fmadd_ps(_mm256_set1_ps(w[oc * wStride]), xv,
                                 _mm256_loadu_ps(dst)));
      }
    }
    for (int j = vcols; j < cols; ++j) {
      const float xs = src[j];
      for (int oc = 0; oc < nc; ++oc) {
        float* dst = dstRow + oc * planeStride + j;
        *dst = __builtin_fmaf(w[oc * wStride], xs, *dst);
      }
    }
  }
}

}  // namespace dp::nn::detail

#else  // !(__AVX2__ && __FMA__)

namespace dp::nn::detail {

bool avx2KernelCompiled() { return false; }

void microKernelAvx2(int kc, const float* apanel, const float* bpanel,
                     float alpha, float* c, int ldc, int mr, int nr) {
  // Unreachable by construction (the dispatcher never selects a target
  // that is not compiled in); keep a correct fallback anyway.
  microKernelScalar(kc, apanel, bpanel, alpha, c, ldc, mr, nr);
}

void convTapAvx2(int nc, int rows, int cols, const float* w, long wStride,
                 const float* x, long ldx, float* y, long planeStride,
                 long ldy) {
  convTapScalar(nc, rows, cols, w, wStride, x, ldx, y, planeStride, ldy);
}

}  // namespace dp::nn::detail

#endif
