#pragma once

/// \file gemm.hpp
/// Single-precision general matrix multiply used by every dense and
/// convolutional layer. Row-major, with optional transposition of
/// either operand:  C = alpha * op(A) * op(B) + beta * C.
///
/// Implementation: packed cache-blocked kernels (BLIS-style MC/KC/NC
/// tiling with a 6x16 register micro-tile) behind a runtime ISA
/// dispatch — scalar everywhere, AVX2+FMA on x86-64 CPUs that have it,
/// selected once at startup and overridable with DP_KERNEL=scalar|avx2
/// for debugging. Both operands are packed into contiguous panels, so
/// all four transpose combinations run the same inner kernel.
///
/// Determinism contract: row-panel boundaries and K-blocking are pure
/// functions of the problem shape, and every kernel accumulates each
/// output element in ascending-p order, so for a fixed target results
/// are bit-identical at every DP_THREADS setting (including 1). The
/// scalar and AVX2 targets may differ from each other in the last ulps
/// (FMA contraction) — pin the target when comparing across machines.

#include <vector>

#include "common/cpu.hpp"

namespace dp::nn {

/// C (MxN) = alpha * op(A) (MxK) * op(B) (KxN) + beta * C.
/// lda/ldb/ldc are the row strides of the *stored* matrices (A is MxK
/// when !transA, KxM when transA; similarly for B). beta == 0 stores
/// zero explicitly (BLAS semantics): C may hold NaN/Inf or be
/// uninitialized and is still fully overwritten.
void gemm(bool transA, bool transB, int m, int n, int k, float alpha,
          const float* a, int lda, const float* b, int ldb, float beta,
          float* c, int ldc);

/// The dispatch target all gemm/conv kernels currently use. Chosen
/// once at startup (DP_KERNEL override, else best supported).
[[nodiscard]] KernelTarget gemmKernelTarget();

/// Re-pins the dispatch target (tests, benchmarks, debugging). Throws
/// std::invalid_argument if `t` is not compiled in or not supported by
/// the running CPU. Must not be called while kernels are executing.
void setGemmKernelTarget(KernelTarget t);

/// Targets usable in this process (always contains kScalar; contains
/// kAvx2 when the AVX2 TU was built and the CPU supports it), in
/// ascending preference order.
[[nodiscard]] std::vector<KernelTarget> supportedKernelTargets();

}  // namespace dp::nn
