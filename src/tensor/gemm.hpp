#pragma once

/// \file gemm.hpp
/// Single-precision general matrix multiply used by every dense and
/// convolutional layer. Row-major, with optional transposition of either
/// operand:  C = alpha * op(A) * op(B) + beta * C.
/// Loop orders are chosen for cache-friendly access in the common
/// no-transpose case; matrices in this project are at most a few
/// thousand elements per side, so no further blocking is required.

namespace dp::nn {

/// C (MxN) = alpha * op(A) (MxK) * op(B) (KxN) + beta * C.
/// lda/ldb/ldc are the row strides of the *stored* matrices (A is MxK
/// when !transA, KxM when transA; similarly for B).
void gemm(bool transA, bool transB, int m, int n, int k, float alpha,
          const float* a, int lda, const float* b, int ldb, float beta,
          float* c, int ldc);

}  // namespace dp::nn
