#pragma once

/// \file gemm.hpp
/// Single-precision general matrix multiply used by every dense and
/// convolutional layer. Row-major, with optional transposition of either
/// operand:  C = alpha * op(A) * op(B) + beta * C.
/// Large products are blocked into cache-tiled row panels dispatched to
/// the global dp::ThreadPool. Each output element accumulates in
/// ascending-p order regardless of the partition, so the result is
/// bit-identical at every DP_THREADS setting (including 1).

namespace dp::nn {

/// C (MxN) = alpha * op(A) (MxK) * op(B) (KxN) + beta * C.
/// lda/ldb/ldc are the row strides of the *stored* matrices (A is MxK
/// when !transA, KxM when transA; similarly for B).
void gemm(bool transA, bool transB, int m, int n, int k, float alpha,
          const float* a, int lda, const float* b, int ldb, float beta,
          float* c, int ldc);

}  // namespace dp::nn
