#include "tensor/conv_direct.hpp"

#include <algorithm>
#include <vector>

#include "common/cpu.hpp"
#include "tensor/gemm.hpp"
#include "tensor/gemm_kernels.hpp"

namespace dp::nn {

namespace {

/// Scratch reused across calls (one live use per thread: callers run
/// convDirect serially within a parallelFor chunk).
std::vector<float>& phaseBuffer() {
  thread_local std::vector<float> buf;
  return buf;
}
std::vector<float>& accBuffer() {
  thread_local std::vector<float> buf;
  return buf;
}

/// Floor-divide t by s (s > 0) and the matching non-negative remainder.
int floorDiv(int t, int s) {
  const int q = ((t % s) + s) % s;
  return (t - q) / s;
}

constexpr int kColAlign = 8;  // accumulator row stride, in floats

}  // namespace

bool convDirectApplicable(const ConvGeom& g) { return g.channels == 1; }

// Im2col-free direct convolution for single-channel inputs (the squish
// topology planes dominating TCAE inference).
//
// The image is de-interleaved into `stride` phase rows per input row
// (phase q holds image[r][x*s+q], contiguous in x) with explicit zero
// margins covering the padding halo. A tap (kh, kw) then contributes
//   w[oc][kh][kw] * phase[oy*s + kh - pad][q][ox + off]
// to out[oc][oy][ox] with (q, off) constant per tap — i.e. each of the
// K*K taps is one full-plane strided FMA sweep over every output
// channel at once (ConvTap, dispatched on gemmKernelTarget()). The
// zero margins mean no boundary trimming: every sweep covers the full
// padded plane, so the inner loops are uniform and vector-width
// aligned (the accumulator row stride is padded to kColAlign).
//
// Determinism: the im2col route materializes exactly these zeros in
// its column buffer, and its GEMM accumulates taps per element in
// ascending p = kh*K + kw order. The direct path applies taps in the
// same ascending order into a zeroed accumulator, so per output
// element the float operation sequence is identical to im2col+GEMM on
// the same kernel target: bit-exact for the scalar target, and on
// AVX2 both routes contract with FMA (they may differ from each other
// in the last ulps; each is individually bit-deterministic, since tap
// geometry depends on shape alone — never on DP_THREADS).
void convDirect(const ConvGeom& g, int outC, const float* weights,
                const float* bias, const float* image, float* y) {
  const int oh = g.outHeight();
  const int ow = g.outWidth();
  const int K = g.kernel;
  const int s = g.stride;
  const int H = g.height;
  const int W = g.width;
  const int phaseLen = (W + s - 1) / s;
  const int accCols = (ow + kColAlign - 1) / kColAlign * kColAlign;

  // Margins: tap offsets span [offMin, offMax] columns in phase space
  // and [-pad, K-1-pad] rows in image space.
  const int offMin = floorDiv(-g.pad, s);
  const int offMax = floorDiv(K - 1 - g.pad, s);
  const int mLeft = std::max(0, -offMin);
  const int mRight = std::max(0, accCols - 1 + offMax - (phaseLen - 1));
  const int padTop = g.pad;
  const int padBot = std::max(0, (oh - 1) * s + K - 1 - g.pad - (H - 1));
  const int phaseLenP = mLeft + phaseLen + mRight;
  const long rowStride = static_cast<long>(s) * phaseLenP;

  std::vector<float>& ph = phaseBuffer();
  ph.assign(static_cast<std::size_t>(padTop + H + padBot) * rowStride, 0.0f);
  for (int r = 0; r < H; ++r) {
    const float* src = image + static_cast<long>(r) * W;
    for (int q = 0; q < s; ++q) {
      float* dst = ph.data() + (padTop + r) * rowStride +
                   static_cast<long>(q) * phaseLenP + mLeft;
      const int len = (W - q + s - 1) / s;
      for (int k = 0; k < len; ++k) dst[k] = src[q + k * s];
    }
  }

  const long planeStride = static_cast<long>(oh) * accCols;
  std::vector<float>& acc = accBuffer();
  acc.assign(static_cast<std::size_t>(outC) * planeStride, 0.0f);

  const KernelTarget target = gemmKernelTarget();
  const detail::ConvTap tap = target == KernelTarget::kAvx512
                                  ? detail::convTapAvx512
                              : target == KernelTarget::kAvx2
                                  ? detail::convTapAvx2
                                  : detail::convTapScalar;

  for (int kh = 0; kh < K; ++kh) {
    for (int kw = 0; kw < K; ++kw) {
      const int t = kw - g.pad;
      const int off = floorDiv(t, s);
      const int q = t - off * s;
      const float* src = ph.data() +
                         static_cast<long>(padTop + kh - g.pad) * rowStride +
                         static_cast<long>(q) * phaseLenP + mLeft + off;
      tap(outC, oh, accCols, weights + kh * K + kw,
          static_cast<long>(K) * K, src, s * rowStride, acc.data(),
          planeStride, accCols);
    }
  }

  for (int oc = 0; oc < outC; ++oc) {
    const float b = bias[oc];
    const float* aplane = acc.data() + oc * planeStride;
    float* out = y + static_cast<long>(oc) * oh * ow;
    for (int oy = 0; oy < oh; ++oy) {
      const float* arow = aplane + static_cast<long>(oy) * accCols;
      float* orow = out + static_cast<long>(oy) * ow;
      for (int ox = 0; ox < ow; ++ox) orow[ox] = arow[ox] + b;
    }
  }
}

}  // namespace dp::nn
