#include "tensor/decode_fused.hpp"

#include <stdexcept>

#include "common/cpu.hpp"
#include "common/thread_pool.hpp"
#include "tensor/gemm.hpp"

namespace dp::nn::fused {

DecodePlan buildDecodePlan(int latentDim, int hidden, int c2, int s4, int c1,
                           int kernel, int stride, int pad, const float* w1,
                           const float* b1, const float* w2, const float* b2,
                           const float* wd1, const float* bd1,
                           const float* wd2, float bd2) {
  if (kernel != 4 || stride != 2 || pad != 1)
    throw std::invalid_argument(
        "buildDecodePlan: fused path requires kernel 4 / stride 2 / pad 1");
  if (latentDim <= 0 || hidden <= 0 || c2 <= 0 || s4 <= 0 || c1 <= 0)
    throw std::invalid_argument("buildDecodePlan: non-positive dimension");
  if (4 * s4 > 32)
    throw std::invalid_argument(
        "buildDecodePlan: topology edge exceeds a 32-bit row mask");

  DecodePlan plan;
  plan.latentDim = latentDim;
  plan.hidden = hidden;
  plan.flat = c2 * s4 * s4;
  plan.c2 = c2;
  plan.s4 = s4;
  plan.c1 = c1;
  plan.s2 = 2 * s4;
  plan.s = 4 * s4;

  plan.w1t.resize(static_cast<std::size_t>(latentDim) * hidden);
  for (int o = 0; o < hidden; ++o)
    for (int i = 0; i < latentDim; ++i)
      plan.w1t[static_cast<std::size_t>(i) * hidden + o] =
          w1[static_cast<std::size_t>(o) * latentDim + i];
  plan.b1.assign(b1, b1 + hidden);

  plan.w2t.resize(static_cast<std::size_t>(hidden) * plan.flat);
  for (int j = 0; j < plan.flat; ++j)
    for (int k = 0; k < hidden; ++k)
      plan.w2t[static_cast<std::size_t>(k) * plan.flat + j] =
          w2[static_cast<std::size_t>(j) * hidden + k];
  plan.b2.assign(b2, b2 + plan.flat);

  // Deconv weights arrive in the adjoint-conv layout (inC, outC*K*K);
  // repack deconv1 channels-last per tap so one input cell's scatter
  // touches 4 runs of 4*c1 contiguous floats.
  plan.p1.resize(static_cast<std::size_t>(c2) * 16 * c1);
  for (int in = 0; in < c2; ++in)
    for (int oc = 0; oc < c1; ++oc)
      for (int t = 0; t < 16; ++t)
        plan.p1[(static_cast<std::size_t>(in) * 16 + t) * c1 + oc] =
            wd1[static_cast<std::size_t>(in) * c1 * 16 + oc * 16 + t];
  plan.bd1.assign(bd1, bd1 + c1);
  plan.p2.assign(wd2, wd2 + static_cast<std::size_t>(c1) * 16);
  plan.bd2 = bd2;
  return plan;
}

// dp-analyze: hot
void decodeBatch(const DecodePlan& plan, const float* latents, int batch,
                 std::uint32_t* masks) {
  using SampleFn = void (*)(const DecodePlan&, const float*, std::uint32_t*,
                            detail::DecodeScratch&);
  const KernelTarget target = gemmKernelTarget();
  // The vector kernels keep a whole deconv1 scatter region (4 rows of
  // 4*c1 floats) in registers, which requires the row span to divide
  // evenly into their lanes; odd-ball channel counts take the scalar
  // reference, which is bit-identical on the binarized output anyway.
  SampleFn fn = detail::decodeSampleScalar;
  if (target == KernelTarget::kAvx512 && plan.c1 % 4 == 0)
    fn = detail::decodeSampleAvx512;
  else if (target == KernelTarget::kAvx2 && plan.c1 % 2 == 0)
    fn = detail::decodeSampleAvx2;
  dp::parallelFor(batch, 8, [&](long n0, long n1) {
    thread_local detail::DecodeScratch scratch;
    for (long n = n0; n < n1; ++n)
      fn(plan, latents + n * plan.latentDim, masks + n * plan.s, scratch);
  });
}

namespace detail {

// The scalar kernel is the reference the vector kernels are measured
// against, so it replicates their structure bit-for-bit: the same
// per-element accumulation order (ascending contribution index at every
// accumulator) and __builtin_fmaf wherever they use an FMA. ReLU is
// folded into the nonzero-compaction steps — a skipped x <= 0 term is
// exactly what ReLU would have zeroed, and a zero term only ever adds
// +/-0 products, which cannot move any downstream compare.
// dp-analyze: hot scratch=scr
void decodeSampleScalar(const DecodePlan& plan, const float* latent,
                        std::uint32_t* masks, DecodeScratch& scr) {
  const int H = plan.hidden;
  const int F = plan.flat;
  const int c1 = plan.c1;
  const int s2 = plan.s2;
  const int s = plan.s;
  const int s4 = plan.s4;
  const int c2 = plan.c2;
  const int cells = s4 * s4;

  // Dense 1: h1 = W1 l + b1, per element ascending latent index.
  scr.h1.assign(plan.b1.begin(), plan.b1.end());
  float* h1 = scr.h1.data();
  for (int i = 0; i < plan.latentDim; ++i) {
    const float a = latent[i];
    const float* w = plan.w1t.data() + static_cast<std::size_t>(i) * H;
    for (int o = 0; o < H; ++o) h1[o] = __builtin_fmaf(a, w[o], h1[o]);
  }

  // Dense 2 over the post-ReLU nonzeros of h1 (folded ReLU + skip).
  scr.h2.assign(plan.b2.begin(), plan.b2.end());
  float* h2 = scr.h2.data();
  for (int k = 0; k < H; ++k) {
    const float a = h1[k];
    if (!(a > 0.0f)) continue;
    const float* w = plan.w2t.data() + static_cast<std::size_t>(k) * F;
    for (int j = 0; j < F; ++j) h2[j] = __builtin_fmaf(a, w[j], h2[j]);
  }

  // Per-cell nonzero channel lists for deconv1 (folded ReLU of h2):
  // cell order is row-major, channels appended ascending, which fixes
  // the accumulation order every kernel shares.
  scr.cellCnt.assign(static_cast<std::size_t>(cells), 0);
  scr.cellIn.resize(static_cast<std::size_t>(cells) * c2);
  scr.cellX.resize(static_cast<std::size_t>(cells) * c2);
  int* cnt = scr.cellCnt.data();
  int* cin = scr.cellIn.data();
  float* cx = scr.cellX.data();
  for (int in = 0; in < c2; ++in) {
    const float* xplane = h2 + static_cast<std::size_t>(in) * cells;
    for (int cell = 0; cell < cells; ++cell) {
      const float x = xplane[cell];
      const int n = cnt[cell];
      cin[cell * c2 + n] = in;
      cx[cell * c2 + n] = x;
      cnt[cell] = n + (x > 0.0f ? 1 : 0);
    }
  }

  // Deconv1 as per-input-cell scatter: output row of tap (kh, kw) is
  // 2*ir - 1 + kh, shifted +1 into the padded buffer, so rows land at
  // 2*ir + kh and the pad margin absorbs the stride-2 halo. One cell's
  // 4 x (4*c1) region is finished before moving to the next cell.
  const int mw = s2 + 2;
  const int mrow = mw * c1;
  const int span = 4 * c1;
  scr.mid.assign(static_cast<std::size_t>(mrow) * mw, 0.0f);
  float* mid = scr.mid.data();
  for (int ir = 0; ir < s4; ++ir) {
    for (int ic = 0; ic < s4; ++ic) {
      const int cell = ir * s4 + ic;
      const int n = cnt[cell];
      if (n == 0) continue;
      const int* ci = cin + static_cast<std::size_t>(cell) * c2;
      const float* cv = cx + static_cast<std::size_t>(cell) * c2;
      float* base = mid + (2 * ir) * mrow + (2 * ic) * c1;
      for (int t = 0; t < n; ++t) {
        const float x = cv[t];
        const float* patches =
            plan.p1.data() + static_cast<std::size_t>(ci[t]) * 16 * c1;
        for (int kh = 0; kh < 4; ++kh) {
          float* dst = base + kh * mrow;
          const float* src = patches + kh * span;
          for (int j = 0; j < span; ++j)
            dst[j] = __builtin_fmaf(x, src[j], dst[j]);
        }
      }
    }
  }

  // Deconv1 bias + ReLU fold on read, deconv2 as patch scatter. Cells
  // whose activation is <= 0 contribute what ReLU already zeroed (or a
  // +/-0 no-op product), so they are skipped outright.
  const int ow = s + 2;
  scr.out.assign(static_cast<std::size_t>(ow) * ow, 0.0f);
  float* out = scr.out.data();
  const float* bd1 = plan.bd1.data();
  for (int ir = 0; ir < s2; ++ir) {
    for (int ic = 0; ic < s2; ++ic) {
      const float* cell = mid + ((ir + 1) * mw + (ic + 1)) * c1;
      float patch[16] = {};
      bool any = false;
      for (int in = 0; in < c1; ++in) {
        const float x = cell[in] + bd1[in];
        if (!(x > 0.0f)) continue;
        any = true;
        const float* w = plan.p2.data() + static_cast<std::size_t>(in) * 16;
        for (int t = 0; t < 16; ++t)
          patch[t] = __builtin_fmaf(x, w[t], patch[t]);
      }
      if (!any) continue;
      float* base = out + (2 * ir) * ow + 2 * ic;
      for (int kh = 0; kh < 4; ++kh) {
        float* dst = base + kh * ow;
        const float* src = patch + kh * 4;
        for (int kw = 0; kw < 4; ++kw) dst[kw] += src[kw];
      }
    }
  }

  // Binarize: sigmoid(z) >= 0.5 iff z = acc + bias >= 0 (the compare
  // handles -0 and NaN exactly like `sigmoid >= 0.5f` does).
  const float bias = plan.bd2;
  for (int r = 0; r < s; ++r) {
    const float* row = out + (r + 1) * ow + 1;
    std::uint32_t m = 0;
    for (int c = 0; c < s; ++c)
      if (row[c] + bias >= 0.0f) m |= 1U << c;
    masks[r] = m;
  }
}

}  // namespace detail

}  // namespace dp::nn::fused
