#pragma once

/// \file decode_fused.hpp
/// Fused TCAE generation-unit inference: latent -> binarized row-mask
/// topology in one pass (DESIGN.md §14). The stack it fuses is fixed —
/// linear, ReLU, linear, ReLU, reshape, deconv(k4,s2,p1), ReLU,
/// deconv(k4,s2,p1), sigmoid, 0.5-binarize — which is exactly the
/// paper's generation unit as built by models::Tcae. Fusing buys:
///
///  - no batch tensors: per-sample scratch stays L1/L2 resident,
///  - deconvs as per-input-cell scatters of prepacked channels-last
///    weight patches (skipping post-ReLU zeros) instead of
///    GEMM + col2im round-trips,
///  - no transcendental: sigmoid(z) >= 0.5 iff z >= 0, so binarization
///    is a sign test on the pre-activation and the output is emitted
///    directly as 32-bit row masks (bit c of masks[r] = cell (r, c),
///    row 0 = bottom — the squish/packed_topo.hpp convention).
///
/// Dispatch follows gemmKernelTarget(): the scalar, AVX2 and AVX-512
/// sample kernels live in decode_fused.cpp / decode_fused_avx2.cpp /
/// decode_fused_avx512.cpp with ISA flags confined per TU, mirroring
/// the GEMM micro-kernels. Each target is individually deterministic
/// (fixed accumulation order, sample-parallel only); across targets,
/// and against the unfused float reference, equality holds on the
/// binarized output (pinned by tests/decode_fused_test.cpp), not on
/// float intermediates — the same doctrine the unfused kernels follow.

#include <cstdint>
#include <vector>

namespace dp::nn::fused {

/// Geometry + prepacked weights of one decoder stack. Built once per
/// model (weights are repacked for scatter access), then shared
/// read-only by any number of decoding threads.
struct DecodePlan {
  int latentDim = 0;
  int hidden = 0;  ///< first dense width
  int flat = 0;    ///< second dense width = c2 * s4 * s4
  int c2 = 0;      ///< deconv1 input channels
  int s4 = 0;      ///< deconv1 input spatial edge
  int c1 = 0;      ///< deconv1 output channels
  int s2 = 0;      ///< deconv1 output spatial edge = 2 * s4
  int s = 0;       ///< topology edge = 2 * s2, at most 32

  std::vector<float> w1t;  ///< latentDim x hidden, transposed dense 1
  std::vector<float> b1;   ///< hidden
  std::vector<float> w2t;  ///< hidden x flat, transposed dense 2
  std::vector<float> b2;   ///< flat
  /// Deconv1 patches, channels-last: p1[in*16*c1 + (kh*4+kw)*c1 + oc].
  std::vector<float> p1;
  std::vector<float> bd1;  ///< c1
  /// Deconv2 patches: p2[in*16 + kh*4 + kw] (single output channel).
  std::vector<float> p2;
  float bd2 = 0.0f;  ///< deconv2 bias, folded into the sign test
};

/// Builds a plan from raw row-major layer weights:
///   w1 (hidden, latentDim), b1 (hidden)        — first dense
///   w2 (flat, hidden), b2 (flat)               — second dense
///   wd1 (c2, c1*16), bd1 (c1)                  — deconv1, adjoint layout
///   wd2 (c1, 16), bd2                          — deconv2, adjoint layout
/// Both deconvs must be kernel 4 / stride 2 / pad 1 and the final edge
/// 4*s4 must fit a 32-bit row mask; throws std::invalid_argument
/// otherwise (callers fall back to the unfused float path).
[[nodiscard]] DecodePlan buildDecodePlan(
    int latentDim, int hidden, int c2, int s4, int c1, int kernel,
    int stride, int pad, const float* w1, const float* b1, const float* w2,
    const float* b2, const float* wd1, const float* bd1, const float* wd2,
    float bd2);

/// Decodes `batch` latent rows (latents: batch x plan.latentDim,
/// row-major) into binarized topologies: masks[n*plan.s + r] is row r
/// of sample n. Sample-parallel via dp::parallelFor; results are
/// independent of DP_THREADS.
void decodeBatch(const DecodePlan& plan, const float* latents, int batch,
                 std::uint32_t* masks);

namespace detail {

/// Per-thread scratch reused across samples (sized lazily per plan).
struct DecodeScratch {
  std::vector<float> h1;      ///< hidden
  std::vector<float> h2;      ///< flat, as (c2, s4, s4)
  std::vector<float> mid;     ///< (s2+2) x (s2+2) x c1, channels-last
  std::vector<float> out;     ///< (s+2) x (s+2)
  std::vector<int> nzIdx;     ///< nonzero-activation row indices
  std::vector<float> nzVal;   ///< matching activation values
  std::vector<int> cellCnt;   ///< per deconv1 input cell: nonzero count
  std::vector<int> cellIn;    ///< (cell, slot) -> input channel
  std::vector<float> cellX;   ///< (cell, slot) -> activation value
};

void decodeSampleScalar(const DecodePlan& plan, const float* latent,
                        std::uint32_t* masks, DecodeScratch& scratch);
void decodeSampleAvx2(const DecodePlan& plan, const float* latent,
                      std::uint32_t* masks, DecodeScratch& scratch);
void decodeSampleAvx512(const DecodePlan& plan, const float* latent,
                        std::uint32_t* masks, DecodeScratch& scratch);

}  // namespace detail

}  // namespace dp::nn::fused
