// AVX2+FMA fused-decode sample kernel. Same structure as the scalar
// reference in decode_fused.cpp; ISA flags are confined to this TU
// (see src/tensor/CMakeLists.txt) and the dispatcher only selects it
// when the AVX2 target is active. ReLU is folded into the skip tests
// (a skipped cell contributes only +/-0 products, which cannot change
// any downstream accumulator — see the scalar kernel's comments), so
// no activation pass is materialized.

#include "tensor/decode_fused.hpp"

#if defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

namespace dp::nn::fused::detail {

namespace {

/// Per-input-cell deconv1 scatter region held in registers: rows
/// r0/r1 of the cell's 4 x span output patch (span floats each, span a
/// multiple of 8) accumulate every nonzero channel's contribution in 8
/// ymm before a single read-modify-write, instead of one RMW per
/// (channel, cell) pair. Caller invokes it for kh halves {0,1} and
/// {2,3}; per output element the accumulation order stays ascending
/// over the channel list.
inline void scatterRows(int span, int n, const int* ci, const float* cv,
                        const float* p1, long wstride, long woff, float* r0,
                        float* r1) {
  for (int j = 0; j < span; j += 8) {
    __m256 a0 = _mm256_loadu_ps(r0 + j);
    __m256 a1 = _mm256_loadu_ps(r1 + j);
    for (int t = 0; t < n; ++t) {
      const __m256 vx = _mm256_set1_ps(cv[t]);
      const float* w = p1 + static_cast<long>(ci[t]) * wstride + woff + j;
      a0 = _mm256_fmadd_ps(vx, _mm256_loadu_ps(w), a0);
      a1 = _mm256_fmadd_ps(vx, _mm256_loadu_ps(w + span), a1);
    }
    _mm256_storeu_ps(r0 + j, a0);
    _mm256_storeu_ps(r1 + j, a1);
  }
}

/// Chunked GEMV accumulation: y[j] += sum_t vals[t] * w[idx[t]*n + j].
/// Column chunks of 64 floats stay in 8 accumulator registers across
/// the whole t sweep, so the weight row is the only load per FMA —
/// the repeated-axpy form would reload and re-store y every step and
/// run store-bound. Per element the accumulation order over t is
/// ascending, matching the axpy form exactly.
inline void gemvChunks(int n, const float* w, const int* idx,
                       const float* vals, int nnz, float* y) {
  int j = 0;
  for (; j + 64 <= n; j += 64) {
    __m256 acc[8];
    for (int u = 0; u < 8; ++u) acc[u] = _mm256_loadu_ps(y + j + 8 * u);
    for (int t = 0; t < nnz; ++t) {
      const __m256 va = _mm256_set1_ps(vals[t]);
      const float* wr = w + static_cast<long>(idx[t]) * n + j;
      for (int u = 0; u < 8; ++u)
        acc[u] = _mm256_fmadd_ps(va, _mm256_loadu_ps(wr + 8 * u), acc[u]);
    }
    for (int u = 0; u < 8; ++u) _mm256_storeu_ps(y + j + 8 * u, acc[u]);
  }
  for (; j + 8 <= n; j += 8) {
    __m256 acc = _mm256_loadu_ps(y + j);
    for (int t = 0; t < nnz; ++t)
      acc = _mm256_fmadd_ps(
          _mm256_set1_ps(vals[t]),
          _mm256_loadu_ps(w + static_cast<long>(idx[t]) * n + j), acc);
    _mm256_storeu_ps(y + j, acc);
  }
  for (; j < n; ++j) {
    float acc = y[j];
    for (int t = 0; t < nnz; ++t)
      acc = __builtin_fmaf(vals[t], w[static_cast<long>(idx[t]) * n + j],
                           acc);
    y[j] = acc;
  }
}

}  // namespace

// dp-analyze: hot scratch=scr
void decodeSampleAvx2(const DecodePlan& plan, const float* latent,
                      std::uint32_t* masks, DecodeScratch& scr) {
  const int H = plan.hidden;
  const int F = plan.flat;
  const int c1 = plan.c1;
  const int s2 = plan.s2;
  const int s = plan.s;

  std::size_t need = static_cast<std::size_t>(plan.latentDim > H ? plan.latentDim : H);
  const std::size_t xaNeed = static_cast<std::size_t>((c1 + 7) & ~7);
  if (xaNeed > need) need = xaNeed;  // nzVal doubles as deconv2's xa
  scr.nzIdx.resize(need);
  scr.nzVal.resize(need);
  int* idx = scr.nzIdx.data();
  float* vals = scr.nzVal.data();

  scr.h1.assign(plan.b1.begin(), plan.b1.end());
  float* h1 = scr.h1.data();
  for (int i = 0; i < plan.latentDim; ++i) {
    idx[i] = i;
    vals[i] = latent[i];
  }
  gemvChunks(H, plan.w1t.data(), idx, vals, plan.latentDim, h1);

  scr.h2.assign(plan.b2.begin(), plan.b2.end());
  float* h2 = scr.h2.data();
  int nnz = 0;
  for (int k = 0; k < H; ++k) {  // branchless folded-ReLU compaction
    const float a = h1[k];
    idx[nnz] = k;
    vals[nnz] = a;
    nnz += a > 0.0f ? 1 : 0;
  }
  gemvChunks(F, plan.w2t.data(), idx, vals, nnz, h2);

  // Per-cell nonzero channel lists (folded ReLU of h2), built in one
  // sequential sweep with branchless appends: half the channels are
  // dead post-ReLU and a data-dependent branch here mispredicts ~50%.
  const int s4 = plan.s4;
  const int c2 = plan.c2;
  const int cells = s4 * s4;
  scr.cellCnt.assign(static_cast<std::size_t>(cells), 0);
  scr.cellIn.resize(static_cast<std::size_t>(cells) * c2);
  scr.cellX.resize(static_cast<std::size_t>(cells) * c2);
  int* cnt = scr.cellCnt.data();
  int* cin = scr.cellIn.data();
  float* cx = scr.cellX.data();
  for (int in = 0; in < c2; ++in) {
    const float* xplane = h2 + static_cast<std::size_t>(in) * cells;
    for (int cell = 0; cell < cells; ++cell) {
      const float x = xplane[cell];
      const int n = cnt[cell];
      cin[cell * c2 + n] = in;
      cx[cell * c2 + n] = x;
      cnt[cell] = n + (x > 0.0f ? 1 : 0);
    }
  }

  const int mw = s2 + 2;
  const int mrow = mw * c1;
  const int span = 4 * c1;
  scr.mid.assign(static_cast<std::size_t>(mrow) * mw, 0.0f);
  float* mid = scr.mid.data();
  for (int ir = 0; ir < s4; ++ir) {
    for (int ic = 0; ic < s4; ++ic) {
      const int cell = ir * s4 + ic;
      const int n = cnt[cell];
      if (n == 0) continue;
      const int* ci = cin + static_cast<std::size_t>(cell) * c2;
      const float* cv = cx + static_cast<std::size_t>(cell) * c2;
      float* base = mid + (2 * ir) * mrow + (2 * ic) * c1;
      scatterRows(span, n, ci, cv, plan.p1.data(), 16L * c1, 0, base,
                  base + mrow);
      scatterRows(span, n, ci, cv, plan.p1.data(), 16L * c1, 2L * span,
                  base + 2 * mrow, base + 3 * mrow);
    }
  }

  const int ow = s + 2;
  scr.out.assign(static_cast<std::size_t>(ow) * ow, 0.0f);
  float* out = scr.out.data();
  const float* bd1 = plan.bd1.data();
  const __m256 vzero8 = _mm256_setzero_ps();
  for (int ir = 0; ir < s2; ++ir) {
    for (int ic = 0; ic < s2; ++ic) {
      const float* cell = mid + ((ir + 1) * mw + (ic + 1)) * c1;
      // Branchless deconv1 bias fold + ReLU: zeroed lanes contribute
      // only +/-0 products, which never move any downstream compare,
      // so including them matches the scalar kernel's skip exactly on
      // the binarized output. (nzIdx/nzVal are free again here.)
      float* xa = vals;
      int live = 0;
      for (int in = 0; in < c1; in += 8) {
        const int lanes = c1 - in < 8 ? c1 - in : 8;
        __m256 xv;
        if (lanes == 8) {
          xv = _mm256_max_ps(_mm256_add_ps(_mm256_loadu_ps(cell + in),
                                           _mm256_loadu_ps(bd1 + in)),
                             vzero8);
        } else {
          alignas(32) float tmp[8] = {};
          for (int j = 0; j < lanes; ++j)
            tmp[j] = cell[in + j] + bd1[in + j];
          xv = _mm256_max_ps(_mm256_load_ps(tmp), vzero8);
        }
        live |= _mm256_movemask_ps(_mm256_cmp_ps(xv, vzero8, _CMP_GT_OQ));
        _mm256_storeu_ps(xa + in, xv);
      }
      if (live == 0) continue;
      __m256 acc0 = _mm256_setzero_ps();
      __m256 acc1 = _mm256_setzero_ps();
      for (int in = 0; in < c1; ++in) {
        const float* w = plan.p2.data() + static_cast<std::size_t>(in) * 16;
        const __m256 vx = _mm256_set1_ps(xa[in]);
        acc0 = _mm256_fmadd_ps(vx, _mm256_loadu_ps(w), acc0);
        acc1 = _mm256_fmadd_ps(vx, _mm256_loadu_ps(w + 8), acc1);
      }
      float patch[16];
      _mm256_storeu_ps(patch, acc0);
      _mm256_storeu_ps(patch + 8, acc1);
      float* base = out + (2 * ir) * ow + 2 * ic;
      for (int kh = 0; kh < 4; ++kh) {
        float* dst = base + kh * ow;
        _mm_storeu_ps(dst, _mm_add_ps(_mm_loadu_ps(dst),
                                      _mm_loadu_ps(patch + kh * 4)));
      }
    }
  }

  const __m256 vbias = _mm256_set1_ps(plan.bd2);
  const __m256 vzero = _mm256_setzero_ps();
  const int vs = s & ~7;
  for (int r = 0; r < s; ++r) {
    const float* row = out + (r + 1) * ow + 1;
    std::uint32_t m = 0;
    for (int c = 0; c < vs; c += 8) {
      const __m256 z = _mm256_add_ps(_mm256_loadu_ps(row + c), vbias);
      const __m256 ge = _mm256_cmp_ps(z, vzero, _CMP_GE_OQ);
      m |= static_cast<std::uint32_t>(_mm256_movemask_ps(ge)) << c;
    }
    for (int c = vs; c < s; ++c)
      if (row[c] + plan.bd2 >= 0.0f) m |= 1U << c;
    masks[r] = m;
  }
}

}  // namespace dp::nn::fused::detail

#else  // !(__AVX2__ && __FMA__)

namespace dp::nn::fused::detail {

// dp-analyze: hot
void decodeSampleAvx2(const DecodePlan& plan, const float* latent,
                      std::uint32_t* masks, DecodeScratch& scratch) {
  // Unreachable by construction: the dispatcher follows
  // gemmKernelTarget(), which never selects AVX2 unless the AVX2 TUs
  // were compiled with real code generation (same CMake gate as this
  // file's flags).
  decodeSampleScalar(plan, latent, masks, scratch);
}

}  // namespace dp::nn::fused::detail

#endif
