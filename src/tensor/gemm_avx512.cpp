// AVX-512F/BW micro-kernel. This is the only translation unit built
// with -mavx512f -mavx512bw (see src/tensor/CMakeLists.txt); it must
// never be called unless dp::cpuSupports(KernelTarget::kAvx512), which
// the dispatcher in gemm.cpp guarantees. When the toolchain or the
// architecture cannot generate AVX-512 code the TU degrades to a stub
// and avx512KernelCompiled() reports false.

#include "tensor/gemm_kernels.hpp"

#if defined(__AVX512F__) && defined(__AVX512BW__)

#include <immintrin.h>

namespace dp::nn::detail {

bool avx512KernelCompiled() { return true; }

// 6x16 register tile on one 512-bit lane per row: 6 zmm accumulators +
// 1 B lane + 1 broadcast leave most of the 32 architectural zmm
// registers free, so the compiler can software-pipeline the FMA chain.
// Per
// output element the accumulation order over p is ascending, exactly
// like the scalar and AVX2 kernels, so the result is a pure function
// of the (shape-derived) blocking — never of DP_THREADS. Edge tiles
// store through a column mask instead of a spill buffer.
void microKernelAvx512(int kc, const float* apanel, const float* bpanel,
                       float alpha, float* c, int ldc, int mr, int nr) {
  __m512 acc[kMR];
  for (int i = 0; i < kMR; ++i) acc[i] = _mm512_setzero_ps();
  for (int p = 0; p < kc; ++p) {
    const float* a = apanel + static_cast<long>(p) * kMR;
    const __m512 b = _mm512_loadu_ps(bpanel + static_cast<long>(p) * kNR);
    for (int i = 0; i < kMR; ++i)
      acc[i] = _mm512_fmadd_ps(_mm512_set1_ps(a[i]), b, acc[i]);
  }
  const __m512 va = _mm512_set1_ps(alpha);
  if (mr == kMR && nr == kNR) {
    for (int i = 0; i < kMR; ++i) {
      float* crow = c + static_cast<long>(i) * ldc;
      _mm512_storeu_ps(crow,
                       _mm512_fmadd_ps(va, acc[i], _mm512_loadu_ps(crow)));
    }
    return;
  }
  // Edge tile: masked load/store touches only the valid columns. Which
  // elements take this path depends on (m, n) alone, so it does not
  // break per-target determinism.
  const __mmask16 mask =
      static_cast<__mmask16>((1U << static_cast<unsigned>(nr)) - 1U);
  for (int i = 0; i < mr; ++i) {
    float* crow = c + static_cast<long>(i) * ldc;
    const __m512 prev = _mm512_maskz_loadu_ps(mask, crow);
    _mm512_mask_storeu_ps(crow, mask, _mm512_fmadd_ps(va, acc[i], prev));
  }
}

// 16-wide row-major sweep, source row vector live across the channel
// loop (see convTapAvx2). The scalar tail uses fused multiply-add so
// every column sees exactly one fused product regardless of lane
// position.
void convTapAvx512(int nc, int rows, int cols, const float* w, long wStride,
                   const float* x, long ldx, float* y, long planeStride,
                   long ldy) {
  const int vcols = cols & ~15;
  for (int r = 0; r < rows; ++r) {
    const float* src = x + r * ldx;
    float* dstRow = y + r * ldy;
    for (int j = 0; j < vcols; j += 16) {
      const __m512 xv = _mm512_loadu_ps(src + j);
      for (int oc = 0; oc < nc; ++oc) {
        float* dst = dstRow + oc * planeStride + j;
        _mm512_storeu_ps(
            dst, _mm512_fmadd_ps(_mm512_set1_ps(w[oc * wStride]), xv,
                                 _mm512_loadu_ps(dst)));
      }
    }
    for (int j = vcols; j < cols; ++j) {
      const float xs = src[j];
      for (int oc = 0; oc < nc; ++oc) {
        float* dst = dstRow + oc * planeStride + j;
        *dst = __builtin_fmaf(w[oc * wStride], xs, *dst);
      }
    }
  }
}

}  // namespace dp::nn::detail

#else  // !(__AVX512F__ && __AVX512BW__)

namespace dp::nn::detail {

bool avx512KernelCompiled() { return false; }

void microKernelAvx512(int kc, const float* apanel, const float* bpanel,
                       float alpha, float* c, int ldc, int mr, int nr) {
  // Unreachable by construction (the dispatcher never selects a target
  // that is not compiled in); keep a correct fallback anyway.
  microKernelScalar(kc, apanel, bpanel, alpha, c, ldc, mr, nr);
}

void convTapAvx512(int nc, int rows, int cols, const float* w, long wStride,
                   const float* x, long ldx, float* y, long planeStride,
                   long ldy) {
  convTapScalar(nc, rows, cols, w, wStride, x, ldx, y, planeStride, ldy);
}

}  // namespace dp::nn::detail

#endif
