#include "tensor/gemm.hpp"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <stdexcept>
#include <string>

#include "common/thread_pool.hpp"
#include "tensor/gemm_kernels.hpp"

namespace dp::nn {

namespace {

using detail::kKC;
using detail::kMR;
using detail::kNR;

/// Target multiply-adds per parallel row-panel chunk. Sized so packing
/// (O(m*k + k*n) moves) amortizes against compute and small products
/// stay on the calling thread. A function of the problem shape only —
/// never of the thread count — so chunk boundaries (and results) are
/// identical at any DP_THREADS setting.
constexpr long kFlopsPerChunk = 4L << 20;

std::atomic<KernelTarget>& targetSlot() {
  static std::atomic<KernelTarget> slot{
      dp::chooseKernelTarget(detail::avx2KernelCompiled(),
                             detail::avx512KernelCompiled())};
  return slot;
}

detail::MicroKernel kernelFor(KernelTarget t) {
  switch (t) {
    case KernelTarget::kAvx512:
      return detail::microKernelAvx512;
    case KernelTarget::kAvx2:
      return detail::microKernelAvx2;
    case KernelTarget::kScalar:
      break;
  }
  return detail::microKernelScalar;
}

/// True when target `t` has both real code generation in its TU and
/// CPU support at runtime (scalar always qualifies).
bool targetUsable(KernelTarget t) {
  switch (t) {
    case KernelTarget::kAvx512:
      return detail::avx512KernelCompiled() && dp::cpuSupports(t);
    case KernelTarget::kAvx2:
      return detail::avx2KernelCompiled() && dp::cpuSupports(t);
    case KernelTarget::kScalar:
      break;
  }
  return true;
}

/// Per-thread pack scratch, reused across calls to keep the per-sample
/// conv GEMMs allocation-free on the hot path. Safe because nested
/// parallelFor calls run strictly inline: a buffer is never observed
/// mid-use by another loop on the same thread.
std::vector<float>& apackBuffer() {
  thread_local std::vector<float> buf;
  return buf;
}
std::vector<float>& bpackBuffer() {
  thread_local std::vector<float> buf;
  return buf;
}

/// beta-scaling of C ahead of accumulation. beta == 0 is an explicit
/// store-zero path (BLAS semantics): it must clobber NaN/Inf or
/// uninitialized C instead of multiplying with it.
void scaleC(int m, int n, float beta, float* c, int ldc) {
  if (beta == 1.0f) return;
  if (beta == 0.0f) {
    for (int i = 0; i < m; ++i)
      std::memset(c + static_cast<long>(i) * ldc, 0,
                  sizeof(float) * static_cast<std::size_t>(n));
    return;
  }
  for (int i = 0; i < m; ++i) {
    float* crow = c + static_cast<long>(i) * ldc;
    for (int j = 0; j < n; ++j) crow[j] *= beta;
  }
}

/// Packs op(B)[p0..p0+kc) x [0..n) into kNR-wide column panels, zero-
/// padded to full width: panel jp holds bpack[p*kNR + j] =
/// op(B)[p0+p][jp*kNR + j]. Layout within the full buffer: p-blocks
/// outermost (block pb starts at p0 * numJP * kNR), then panels, then
/// rows.
void packB(bool transB, int n, int p0, int kc, const float* b, int ldb,
           int jp0, int jp1, float* bpack) {
  const long panel = static_cast<long>(kc) * kNR;
  for (int jp = jp0; jp < jp1; ++jp) {
    float* dst = bpack + jp * panel;
    const int j0 = jp * kNR;
    const int nr = std::min(kNR, n - j0);
    if (!transB) {
      for (int p = 0; p < kc; ++p) {
        const float* src = b + static_cast<long>(p0 + p) * ldb + j0;
        float* row = dst + static_cast<long>(p) * kNR;
        for (int j = 0; j < nr; ++j) row[j] = src[j];
        for (int j = nr; j < kNR; ++j) row[j] = 0.0f;
      }
    } else {
      for (int p = 0; p < kc; ++p) {
        float* row = dst + static_cast<long>(p) * kNR;
        for (int j = 0; j < nr; ++j)
          row[j] = b[static_cast<long>(j0 + j) * ldb + (p0 + p)];
        for (int j = nr; j < kNR; ++j) row[j] = 0.0f;
      }
    }
  }
}

/// Packs op(A)[i0..i0+mr) x [p0..p0+kc) into one kMR-wide row panel,
/// zero-padded: apack[p*kMR + i] = op(A)[i0+i][p0+p].
void packA(bool transA, int p0, int kc, int i0, int mr, const float* a,
           int lda, float* apack) {
  if (!transA) {
    for (int i = 0; i < mr; ++i) {
      const float* src = a + static_cast<long>(i0 + i) * lda + p0;
      for (int p = 0; p < kc; ++p) apack[static_cast<long>(p) * kMR + i] = src[p];
    }
  } else {
    for (int p = 0; p < kc; ++p) {
      const float* src = a + static_cast<long>(p0 + p) * lda + i0;
      float* dst = apack + static_cast<long>(p) * kMR;
      for (int i = 0; i < mr; ++i) dst[i] = src[i];
    }
  }
  for (int p = 0; p < kc; ++p) {
    float* dst = apack + static_cast<long>(p) * kMR;
    for (int i = mr; i < kMR; ++i) dst[i] = 0.0f;
  }
}

}  // namespace

KernelTarget gemmKernelTarget() {
  return targetSlot().load(std::memory_order_relaxed);
}

void setGemmKernelTarget(KernelTarget t) {
  if (!targetUsable(t))
    throw std::invalid_argument(
        std::string("setGemmKernelTarget: ") + kernelTargetName(t) +
        " kernel unavailable on this build/CPU");
  targetSlot().store(t, std::memory_order_relaxed);
}

std::vector<KernelTarget> supportedKernelTargets() {
  std::vector<KernelTarget> targets{KernelTarget::kScalar};
  if (targetUsable(KernelTarget::kAvx2))
    targets.push_back(KernelTarget::kAvx2);
  if (targetUsable(KernelTarget::kAvx512))
    targets.push_back(KernelTarget::kAvx512);
  return targets;
}

void gemm(bool transA, bool transB, int m, int n, int k, float alpha,
          const float* a, int lda, const float* b, int ldb, float beta,
          float* c, int ldc) {
  if (m < 0 || n < 0 || k < 0) throw std::invalid_argument("gemm: size");
  scaleC(m, n, beta, c, ldc);
  if (alpha == 0.0f || m == 0 || n == 0 || k == 0) return;

  const detail::MicroKernel kernel = kernelFor(gemmKernelTarget());
  const int numJP = (n + kNR - 1) / kNR;

  // Pack all of op(B) once up front; row-panel chunks then share the
  // read-only packed panels. Panel boundaries depend on (n, k) only.
  std::vector<float>& bpack = bpackBuffer();
  bpack.resize(static_cast<std::size_t>(numJP) * kNR * k);
  {
    const long jpGrain =
        std::max(1L, kFlopsPerChunk / (static_cast<long>(k) * kNR));
    dp::parallelFor(numJP, jpGrain, [&](long jp0, long jp1) {
      for (int p0 = 0; p0 < k; p0 += kKC) {
        const int kc = std::min(kKC, k - p0);
        packB(transB, n, p0, kc, b, ldb, static_cast<int>(jp0),
              static_cast<int>(jp1),
              bpack.data() + static_cast<long>(p0) * numJP * kNR);
      }
    });
  }

  // Row panels go to the pool: each panel owns its C rows outright, so
  // the decomposition is race-free and deterministic by construction.
  const long rowFlops = static_cast<long>(n) * k;
  long grain = std::max(static_cast<long>(kMR),
                        kFlopsPerChunk / std::max(1L, rowFlops));
  grain = (grain + kMR - 1) / kMR * kMR;
  const float* bpackData = bpack.data();
  dp::parallelFor(m, grain, [&](long r0, long r1) {
    std::vector<float>& apack = apackBuffer();
    apack.resize(static_cast<std::size_t>(kMR) * std::min(k, kKC));
    for (int p0 = 0; p0 < k; p0 += kKC) {
      const int kc = std::min(kKC, k - p0);
      const float* bblock =
          bpackData + static_cast<long>(p0) * numJP * kNR;
      for (long i0 = r0; i0 < r1; i0 += kMR) {
        const int mr = static_cast<int>(std::min<long>(kMR, r1 - i0));
        packA(transA, p0, kc, static_cast<int>(i0), mr, a, lda,
              apack.data());
        for (int jp = 0; jp < numJP; ++jp) {
          const int nr = std::min(kNR, n - jp * kNR);
          kernel(kc, apack.data(),
                 bblock + static_cast<long>(jp) * kc * kNR, alpha,
                 c + i0 * ldc + static_cast<long>(jp) * kNR, ldc, mr, nr);
        }
      }
    }
  });
}

}  // namespace dp::nn
