#include "tensor/gemm.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/thread_pool.hpp"

namespace dp::nn {

namespace {

/// Column-panel width for the no-transpose kernel: a (k x kJBlock) panel
/// of B is streamed repeatedly while it is hot in cache instead of the
/// whole (k x n) matrix.
constexpr int kJBlock = 256;

/// Target number of multiply-adds per parallel chunk. Row panels are
/// sized so small products stay on the calling thread while large ones
/// split into enough chunks to keep every lane busy. The panel size is a
/// function of the problem shape only — never of the thread count — so
/// chunk boundaries (and therefore results) are identical at any
/// DP_THREADS setting.
constexpr long kFlopsPerChunk = 64 * 1024;

inline void scaleC(int m, int n, float beta, float* c, int ldc) {
  if (beta == 1.0f) return;
  for (int i = 0; i < m; ++i)
    for (int j = 0; j < n; ++j) c[i * ldc + j] *= beta;
}

/// Rows [r0, r1) of C for every transpose combination. Per output
/// element the accumulation order is ascending p in all four branches,
/// so any row partition produces bit-identical results.
void gemmRows(bool transA, bool transB, int r0, int r1, int n, int k,
              float alpha, const float* a, int lda, const float* b, int ldb,
              float* c, int ldc) {
  if (!transA && !transB) {
    // C[i][j] += A[i][p] * B[p][j] — ipj order streams B and C rows,
    // with B processed in cache-sized column panels.
    for (int j0 = 0; j0 < n; j0 += kJBlock) {
      const int j1 = std::min(n, j0 + kJBlock);
      for (int i = r0; i < r1; ++i) {
        float* crow = c + static_cast<long>(i) * ldc;
        const float* arow = a + static_cast<long>(i) * lda;
        for (int p = 0; p < k; ++p) {
          const float av = alpha * arow[p];
          if (av == 0.0f) continue;
          const float* brow = b + static_cast<long>(p) * ldb;
          for (int j = j0; j < j1; ++j) crow[j] += av * brow[j];
        }
      }
    }
  } else if (transA && !transB) {
    // A stored KxM: A^T[i][p] = A[p][i].
    for (int p = 0; p < k; ++p) {
      const float* arow = a + static_cast<long>(p) * lda;
      const float* brow = b + static_cast<long>(p) * ldb;
      for (int i = r0; i < r1; ++i) {
        const float av = alpha * arow[i];
        if (av == 0.0f) continue;
        float* crow = c + static_cast<long>(i) * ldc;
        for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
  } else if (!transA && transB) {
    // B stored NxK: dot products of A rows with B rows.
    for (int i = r0; i < r1; ++i) {
      const float* arow = a + static_cast<long>(i) * lda;
      float* crow = c + static_cast<long>(i) * ldc;
      for (int j = 0; j < n; ++j) {
        const float* brow = b + static_cast<long>(j) * ldb;
        float acc = 0.0f;
        for (int p = 0; p < k; ++p) acc += arow[p] * brow[p];
        crow[j] += alpha * acc;
      }
    }
  } else {
    for (int i = r0; i < r1; ++i) {
      float* crow = c + static_cast<long>(i) * ldc;
      for (int j = 0; j < n; ++j) {
        float acc = 0.0f;
        for (int p = 0; p < k; ++p) acc += a[p * lda + i] * b[j * ldb + p];
        crow[j] += alpha * acc;
      }
    }
  }
}

}  // namespace

void gemm(bool transA, bool transB, int m, int n, int k, float alpha,
          const float* a, int lda, const float* b, int ldb, float beta,
          float* c, int ldc) {
  if (m < 0 || n < 0 || k < 0) throw std::invalid_argument("gemm: size");
  scaleC(m, n, beta, c, ldc);
  if (alpha == 0.0f || m == 0 || n == 0 || k == 0) return;

  // Row panels go to the pool: each panel owns its C rows outright, so
  // the decomposition is race-free and deterministic by construction.
  const long rowFlops = static_cast<long>(n) * k;
  const long grain =
      std::max(1L, kFlopsPerChunk / std::max(1L, rowFlops));
  dp::parallelFor(m, grain, [&](long r0, long r1) {
    gemmRows(transA, transB, static_cast<int>(r0), static_cast<int>(r1), n,
             k, alpha, a, lda, b, ldb, c, ldc);
  });
}

}  // namespace dp::nn
