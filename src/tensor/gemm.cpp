#include "tensor/gemm.hpp"

#include <stdexcept>

namespace dp::nn {

namespace {

inline void scaleC(int m, int n, float beta, float* c, int ldc) {
  if (beta == 1.0f) return;
  for (int i = 0; i < m; ++i)
    for (int j = 0; j < n; ++j) c[i * ldc + j] *= beta;
}

}  // namespace

void gemm(bool transA, bool transB, int m, int n, int k, float alpha,
          const float* a, int lda, const float* b, int ldb, float beta,
          float* c, int ldc) {
  if (m < 0 || n < 0 || k < 0) throw std::invalid_argument("gemm: size");
  scaleC(m, n, beta, c, ldc);
  if (alpha == 0.0f || m == 0 || n == 0 || k == 0) return;

  if (!transA && !transB) {
    // C[i][j] += A[i][p] * B[p][j] — ipj order streams B and C rows.
    for (int i = 0; i < m; ++i) {
      float* crow = c + static_cast<long>(i) * ldc;
      const float* arow = a + static_cast<long>(i) * lda;
      for (int p = 0; p < k; ++p) {
        const float av = alpha * arow[p];
        if (av == 0.0f) continue;
        const float* brow = b + static_cast<long>(p) * ldb;
        for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
  } else if (transA && !transB) {
    // A stored KxM: A^T[i][p] = A[p][i].
    for (int p = 0; p < k; ++p) {
      const float* arow = a + static_cast<long>(p) * lda;
      const float* brow = b + static_cast<long>(p) * ldb;
      for (int i = 0; i < m; ++i) {
        const float av = alpha * arow[i];
        if (av == 0.0f) continue;
        float* crow = c + static_cast<long>(i) * ldc;
        for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
  } else if (!transA && transB) {
    // B stored NxK: dot products of A rows with B rows.
    for (int i = 0; i < m; ++i) {
      const float* arow = a + static_cast<long>(i) * lda;
      float* crow = c + static_cast<long>(i) * ldc;
      for (int j = 0; j < n; ++j) {
        const float* brow = b + static_cast<long>(j) * ldb;
        float acc = 0.0f;
        for (int p = 0; p < k; ++p) acc += arow[p] * brow[p];
        crow[j] += alpha * acc;
      }
    }
  } else {
    for (int i = 0; i < m; ++i) {
      float* crow = c + static_cast<long>(i) * ldc;
      for (int j = 0; j < n; ++j) {
        float acc = 0.0f;
        for (int p = 0; p < k; ++p) acc += a[p * lda + i] * b[j * ldb + p];
        crow[j] += alpha * acc;
      }
    }
  }
}

}  // namespace dp::nn
