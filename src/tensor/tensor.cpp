#include "tensor/tensor.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace dp::nn {

namespace {

std::size_t shapeNumel(const std::vector<int>& shape) {
  std::size_t n = 1;
  for (int d : shape) {
    if (d < 0) throw std::invalid_argument("Tensor: negative dimension");
    n *= static_cast<std::size_t>(d);
  }
  return shape.empty() ? 0 : n;
}

}  // namespace

Tensor::Tensor(std::vector<int> shape) : shape_(std::move(shape)) {
  data_.assign(shapeNumel(shape_), 0.0f);
}

Tensor Tensor::zeros(std::vector<int> shape) {
  return Tensor(std::move(shape));
}

Tensor Tensor::full(std::vector<int> shape, float v) {
  Tensor t(std::move(shape));
  t.fill(v);
  return t;
}

Tensor Tensor::randn(std::vector<int> shape, Rng& rng, double stddev) {
  Tensor t(std::move(shape));
  for (std::size_t i = 0; i < t.numel(); ++i)
    t[i] = static_cast<float>(rng.gaussian(0.0, stddev));
  return t;
}

Tensor Tensor::uniform(std::vector<int> shape, Rng& rng, double lo,
                       double hi) {
  Tensor t(std::move(shape));
  for (std::size_t i = 0; i < t.numel(); ++i)
    t[i] = static_cast<float>(rng.uniform(lo, hi));
  return t;
}

int Tensor::size(int d) const {
  if (d < 0 || d >= dim()) throw std::out_of_range("Tensor::size");
  return shape_[static_cast<std::size_t>(d)];
}

float& Tensor::at(int i, int j) {
  if (dim() != 2) throw std::logic_error("Tensor::at(i,j) needs 2-D");
  return data_[static_cast<std::size_t>(i) * shape_[1] + j];
}

float Tensor::at(int i, int j) const {
  return const_cast<Tensor*>(this)->at(i, j);
}

float& Tensor::at(int n, int c, int h, int w) {
  if (dim() != 4) throw std::logic_error("Tensor::at(n,c,h,w) needs 4-D");
  const std::size_t idx =
      ((static_cast<std::size_t>(n) * shape_[1] + c) * shape_[2] + h) *
          shape_[3] +
      w;
  return data_[idx];
}

float Tensor::at(int n, int c, int h, int w) const {
  return const_cast<Tensor*>(this)->at(n, c, h, w);
}

Tensor Tensor::reshaped(std::vector<int> shape) const {
  if (shapeNumel(shape) != numel())
    throw std::invalid_argument("Tensor::reshaped: numel mismatch");
  Tensor t;
  t.shape_ = std::move(shape);
  t.data_ = data_;
  return t;
}

void Tensor::fill(float v) {
  for (float& x : data_) x = v;
}

Tensor& Tensor::operator+=(const Tensor& o) {
  requireSameShape(*this, o, "operator+=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += o.data_[i];
  return *this;
}

Tensor& Tensor::operator-=(const Tensor& o) {
  requireSameShape(*this, o, "operator-=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= o.data_[i];
  return *this;
}

Tensor& Tensor::operator*=(float s) {
  for (float& x : data_) x *= s;
  return *this;
}

double Tensor::sum() const {
  double s = 0.0;
  for (float x : data_) s += x;
  return s;
}

double Tensor::mean() const { return data_.empty() ? 0.0 : sum() / data_.size(); }

double Tensor::absMax() const {
  double m = 0.0;
  for (float x : data_) m = std::max(m, static_cast<double>(std::abs(x)));
  return m;
}

std::string Tensor::shapeString() const {
  std::ostringstream os;
  os << "(";
  for (int i = 0; i < dim(); ++i) {
    if (i) os << ",";
    os << shape_[static_cast<std::size_t>(i)];
  }
  os << ")";
  return os.str();
}

void requireSameShape(const Tensor& a, const Tensor& b,
                      const char* context) {
  if (a.shape() != b.shape())
    throw std::invalid_argument(std::string(context) + ": shape mismatch " +
                                a.shapeString() + " vs " + b.shapeString());
}

}  // namespace dp::nn
