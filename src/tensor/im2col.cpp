#include "tensor/im2col.hpp"

#include <cstring>

namespace dp::nn {

void im2col(const ConvGeom& g, const float* image, float* cols) {
  const int oh = g.outHeight();
  const int ow = g.outWidth();
  int row = 0;
  for (int c = 0; c < g.channels; ++c) {
    for (int kh = 0; kh < g.kernel; ++kh) {
      for (int kw = 0; kw < g.kernel; ++kw, ++row) {
        float* dst = cols + static_cast<long>(row) * oh * ow;
        for (int y = 0; y < oh; ++y) {
          const int iy = y * g.stride + kh - g.pad;
          for (int x = 0; x < ow; ++x) {
            const int ix = x * g.stride + kw - g.pad;
            const bool in = iy >= 0 && iy < g.height && ix >= 0 &&
                            ix < g.width;
            dst[y * ow + x] =
                in ? image[(static_cast<long>(c) * g.height + iy) * g.width +
                           ix]
                   : 0.0f;
          }
        }
      }
    }
  }
}

void col2im(const ConvGeom& g, const float* cols, float* image) {
  std::memset(image, 0,
              sizeof(float) * static_cast<std::size_t>(g.channels) *
                  g.height * g.width);
  const int oh = g.outHeight();
  const int ow = g.outWidth();
  int row = 0;
  for (int c = 0; c < g.channels; ++c) {
    for (int kh = 0; kh < g.kernel; ++kh) {
      for (int kw = 0; kw < g.kernel; ++kw, ++row) {
        const float* src = cols + static_cast<long>(row) * oh * ow;
        for (int y = 0; y < oh; ++y) {
          const int iy = y * g.stride + kh - g.pad;
          if (iy < 0 || iy >= g.height) continue;
          for (int x = 0; x < ow; ++x) {
            const int ix = x * g.stride + kw - g.pad;
            if (ix < 0 || ix >= g.width) continue;
            image[(static_cast<long>(c) * g.height + iy) * g.width + ix] +=
                src[y * ow + x];
          }
        }
      }
    }
  }
}

}  // namespace dp::nn
