#pragma once

/// \file im2col.hpp
/// im2col / col2im transforms that reduce 2-D (de)convolution to GEMM.
/// Single-sample variants: the layers loop over the batch, which keeps
/// the scratch buffers small and the code straightforward.

namespace dp::nn {

/// Geometry of one convolution.
struct ConvGeom {
  int channels = 1;   ///< input channels C
  int height = 0;     ///< input H
  int width = 0;      ///< input W
  int kernel = 3;     ///< square kernel size K
  int stride = 1;
  int pad = 0;

  [[nodiscard]] int outHeight() const {
    return (height + 2 * pad - kernel) / stride + 1;
  }
  [[nodiscard]] int outWidth() const {
    return (width + 2 * pad - kernel) / stride + 1;
  }
  /// Rows of the column matrix: C*K*K.
  [[nodiscard]] int colRows() const { return channels * kernel * kernel; }
  /// Columns of the column matrix: OH*OW.
  [[nodiscard]] int colCols() const { return outHeight() * outWidth(); }
};

/// Expands image (C,H,W) into cols (C*K*K, OH*OW). `cols` must hold
/// colRows()*colCols() floats; it is fully overwritten.
void im2col(const ConvGeom& g, const float* image, float* cols);

/// Accumulates cols (C*K*K, OH*OW) back into image (C,H,W). `image`
/// must hold C*H*W floats; it is zeroed first.
void col2im(const ConvGeom& g, const float* cols, float* image);

}  // namespace dp::nn
