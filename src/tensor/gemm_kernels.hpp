#pragma once

/// \file gemm_kernels.hpp
/// Internal contract between the blocked GEMM driver (gemm.cpp) and the
/// per-ISA micro-kernel translation units (gemm_scalar.cpp,
/// gemm_avx2.cpp, gemm_avx512.cpp). Not installed; include only from
/// src/tensor.
///
/// The driver packs operands into fixed-layout panels and the
/// micro-kernel computes one register tile:
///
///   acc(kMR x kNR)  = sum_p apanel[p*kMR + i] * bpanel[p*kNR + j]
///   C[i][j]        += alpha * acc[i][j]   for i < mr, j < nr
///
/// Panels are always zero-padded to the full kMR/kNR width, so the
/// kernel runs the same full-tile loop for edges and only the final
/// store is masked by (mr, nr). Per output element the accumulation
/// order over p is ascending in every kernel, which is what makes
/// results independent of the row partition (and therefore of
/// DP_THREADS). Scalar and AVX2 kernels may differ from each other in
/// the last ulps (FMA contraction); each target is individually
/// deterministic.

namespace dp::nn::detail {

/// Register-tile height (rows of C per micro-kernel call).
inline constexpr int kMR = 6;
/// Register-tile width (columns of C per micro-kernel call); two
/// 8-float AVX2 lanes.
inline constexpr int kNR = 16;
/// K-dimension cache block: one kMR x kKC A-panel (~6 KiB) plus the
/// streamed kKC x kNR B-panel (~16 KiB) stay L1/L2 resident.
inline constexpr int kKC = 256;

/// One register tile; see the file comment for the exact contract.
using MicroKernel = void (*)(int kc, const float* apanel,
                             const float* bpanel, float alpha, float* c,
                             int ldc, int mr, int nr);

void microKernelScalar(int kc, const float* apanel, const float* bpanel,
                       float alpha, float* c, int ldc, int mr, int nr);
void microKernelAvx2(int kc, const float* apanel, const float* bpanel,
                     float alpha, float* c, int ldc, int mr, int nr);
void microKernelAvx512(int kc, const float* apanel, const float* bpanel,
                       float alpha, float* c, int ldc, int mr, int nr);

/// Direct-conv tap kernel: one kernel tap applied across every output
/// channel's accumulator plane,
///   y[oc*planeStride + r*ldy + j] += w[oc*wStride] * x[r*ldx + j]
/// for oc < nc, r < rows, j < cols. Each accumulator element receives
/// exactly one product per call, so applying the K*K taps in ascending
/// (kh, kw) order reproduces the im2col+GEMM route's ascending-p
/// accumulation per element.
using ConvTap = void (*)(int nc, int rows, int cols, const float* w,
                         long wStride, const float* x, long ldx, float* y,
                         long planeStride, long ldy);

void convTapScalar(int nc, int rows, int cols, const float* w, long wStride,
                   const float* x, long ldx, float* y, long planeStride,
                   long ldy);
void convTapAvx2(int nc, int rows, int cols, const float* w, long wStride,
                 const float* x, long ldx, float* y, long planeStride,
                 long ldy);
void convTapAvx512(int nc, int rows, int cols, const float* w, long wStride,
                   const float* x, long ldx, float* y, long planeStride,
                   long ldy);

/// True when gemm_avx2.cpp was compiled with AVX2+FMA code generation
/// (the build confines -mavx2 -mfma to that TU; on non-x86 builds the
/// TU degrades to a stub and this returns false).
[[nodiscard]] bool avx2KernelCompiled();

/// True when gemm_avx512.cpp was compiled with AVX-512F/BW code
/// generation (flags confined to that TU, stub fallback otherwise).
[[nodiscard]] bool avx512KernelCompiled();

}  // namespace dp::nn::detail
