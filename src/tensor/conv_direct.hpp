#pragma once

/// \file conv_direct.hpp
/// im2col-free direct convolution for single-channel inputs — the
/// squish-topology shape (1, 24, 24) that dominates TCAE encode. The
/// im2col+GEMM route materializes a (K*K, OH*OW) column matrix per
/// sample just to multiply it once; for C == 1 the kernel taps can be
/// applied straight to the image rows instead, which removes the
/// scratch traffic entirely on the inference hot path.
///
/// Accumulation order per output element is ascending (kh, kw) — the
/// same ascending-p order as the GEMM route — and padding taps
/// contribute exactly the same +0.0f terms the im2col column buffer
/// materializes, so on the scalar dispatch target the result is
/// bit-identical to im2col+gemm. On the AVX2 target both routes
/// contract with FMA and may differ from each other in the last ulps;
/// each target is individually bit-deterministic (tap geometry and
/// path selection depend only on the layer shape, never on
/// DP_THREADS).

#include "tensor/im2col.hpp"

namespace dp::nn {

/// True when convDirect handles this geometry (single input channel).
[[nodiscard]] bool convDirectApplicable(const ConvGeom& g);

/// y (outC, OH*OW) = conv(image (1, H, W), weights (outC, K*K)) + bias.
/// Requires convDirectApplicable(g). `y` is fully overwritten.
void convDirect(const ConvGeom& g, int outC, const float* weights,
                const float* bias, const float* image, float* y);

}  // namespace dp::nn
