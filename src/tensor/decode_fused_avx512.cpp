// AVX-512F/BW fused-decode sample kernel: 16-wide counterpart of
// decode_fused_avx2.cpp with the binarizing epilogue done directly in
// compare-mask registers. ISA flags are confined to this TU and the
// dispatcher only selects it when the AVX-512 target is active.

#include "tensor/decode_fused.hpp"

#if defined(__AVX512F__) && defined(__AVX512BW__)

#include <immintrin.h>

namespace dp::nn::fused::detail {

namespace {

/// Per-input-cell deconv1 scatter region held in registers: all four
/// rows of the cell's 4 x span output patch accumulate every nonzero
/// channel's contribution in zmm registers before a single
/// read-modify-write per row segment (span must be a multiple of 16;
/// the dispatcher falls back to the scalar kernel otherwise). Per
/// output element the accumulation order stays ascending over the
/// channel list, matching the scalar reference.
inline void scatterCell(int span, int n, const int* ci, const float* cv,
                        const float* p1, long wstride, float* r0, float* r1,
                        float* r2, float* r3) {
  for (int j = 0; j < span; j += 16) {
    __m512 a0 = _mm512_loadu_ps(r0 + j);
    __m512 a1 = _mm512_loadu_ps(r1 + j);
    __m512 a2 = _mm512_loadu_ps(r2 + j);
    __m512 a3 = _mm512_loadu_ps(r3 + j);
    for (int t = 0; t < n; ++t) {
      const __m512 vx = _mm512_set1_ps(cv[t]);
      const float* w = p1 + static_cast<long>(ci[t]) * wstride + j;
      a0 = _mm512_fmadd_ps(vx, _mm512_loadu_ps(w), a0);
      a1 = _mm512_fmadd_ps(vx, _mm512_loadu_ps(w + span), a1);
      a2 = _mm512_fmadd_ps(vx, _mm512_loadu_ps(w + 2 * span), a2);
      a3 = _mm512_fmadd_ps(vx, _mm512_loadu_ps(w + 3 * span), a3);
    }
    _mm512_storeu_ps(r0 + j, a0);
    _mm512_storeu_ps(r1 + j, a1);
    _mm512_storeu_ps(r2 + j, a2);
    _mm512_storeu_ps(r3 + j, a3);
  }
}

/// Chunked GEMV accumulation: y[j] += sum_t vals[t] * w[idx[t]*n + j],
/// with 128-float column chunks held in 8 zmm accumulators across the
/// whole t sweep (see the AVX2 TU's rationale). Accumulation order
/// over t is ascending per element.
inline void gemvChunks(int n, const float* w, const int* idx,
                       const float* vals, int nnz, float* y) {
  int j = 0;
  for (; j + 128 <= n; j += 128) {
    __m512 acc[8];
    for (int u = 0; u < 8; ++u) acc[u] = _mm512_loadu_ps(y + j + 16 * u);
    for (int t = 0; t < nnz; ++t) {
      const __m512 va = _mm512_set1_ps(vals[t]);
      const float* wr = w + static_cast<long>(idx[t]) * n + j;
      for (int u = 0; u < 8; ++u)
        acc[u] = _mm512_fmadd_ps(va, _mm512_loadu_ps(wr + 16 * u), acc[u]);
    }
    for (int u = 0; u < 8; ++u) _mm512_storeu_ps(y + j + 16 * u, acc[u]);
  }
  for (; j + 16 <= n; j += 16) {
    __m512 acc = _mm512_loadu_ps(y + j);
    for (int t = 0; t < nnz; ++t)
      acc = _mm512_fmadd_ps(
          _mm512_set1_ps(vals[t]),
          _mm512_loadu_ps(w + static_cast<long>(idx[t]) * n + j), acc);
    _mm512_storeu_ps(y + j, acc);
  }
  if (j < n) {
    const __mmask16 k =
        static_cast<__mmask16>((1U << static_cast<unsigned>(n - j)) - 1U);
    __m512 acc = _mm512_maskz_loadu_ps(k, y + j);
    for (int t = 0; t < nnz; ++t)
      acc = _mm512_fmadd_ps(
          _mm512_set1_ps(vals[t]),
          _mm512_maskz_loadu_ps(k, w + static_cast<long>(idx[t]) * n + j),
          acc);
    _mm512_mask_storeu_ps(y + j, k, acc);
  }
}

}  // namespace

// dp-analyze: hot scratch=scr
void decodeSampleAvx512(const DecodePlan& plan, const float* latent,
                        std::uint32_t* masks, DecodeScratch& scr) {
  const int H = plan.hidden;
  const int F = plan.flat;
  const int c1 = plan.c1;
  const int s2 = plan.s2;
  const int s = plan.s;

  std::size_t need = static_cast<std::size_t>(plan.latentDim > H ? plan.latentDim : H);
  const std::size_t xaNeed = static_cast<std::size_t>((c1 + 15) & ~15);
  if (xaNeed > need) need = xaNeed;  // nzVal doubles as deconv2's xa
  scr.nzIdx.resize(need);
  scr.nzVal.resize(need);
  int* idx = scr.nzIdx.data();
  float* vals = scr.nzVal.data();

  scr.h1.assign(plan.b1.begin(), plan.b1.end());
  float* h1 = scr.h1.data();
  for (int i = 0; i < plan.latentDim; ++i) {
    idx[i] = i;
    vals[i] = latent[i];
  }
  gemvChunks(H, plan.w1t.data(), idx, vals, plan.latentDim, h1);

  scr.h2.assign(plan.b2.begin(), plan.b2.end());
  float* h2 = scr.h2.data();
  int nnz = 0;
  for (int k = 0; k < H; ++k) {  // branchless folded-ReLU compaction
    const float a = h1[k];
    idx[nnz] = k;
    vals[nnz] = a;
    nnz += a > 0.0f ? 1 : 0;
  }
  gemvChunks(F, plan.w2t.data(), idx, vals, nnz, h2);

  // Per-cell nonzero channel lists (folded ReLU of h2), sequential
  // sweep with branchless appends — see the AVX2 TU's rationale.
  const int s4 = plan.s4;
  const int c2 = plan.c2;
  const int cells = s4 * s4;
  scr.cellCnt.assign(static_cast<std::size_t>(cells), 0);
  scr.cellIn.resize(static_cast<std::size_t>(cells) * c2);
  scr.cellX.resize(static_cast<std::size_t>(cells) * c2);
  int* cnt = scr.cellCnt.data();
  int* cin = scr.cellIn.data();
  float* cx = scr.cellX.data();
  for (int in = 0; in < c2; ++in) {
    const float* xplane = h2 + static_cast<std::size_t>(in) * cells;
    for (int cell = 0; cell < cells; ++cell) {
      const float x = xplane[cell];
      const int n = cnt[cell];
      cin[cell * c2 + n] = in;
      cx[cell * c2 + n] = x;
      cnt[cell] = n + (x > 0.0f ? 1 : 0);
    }
  }

  const int mw = s2 + 2;
  const int mrow = mw * c1;
  const int span = 4 * c1;
  scr.mid.assign(static_cast<std::size_t>(mrow) * mw, 0.0f);
  float* mid = scr.mid.data();
  for (int ir = 0; ir < s4; ++ir) {
    for (int ic = 0; ic < s4; ++ic) {
      const int cell = ir * s4 + ic;
      const int n = cnt[cell];
      if (n == 0) continue;
      const int* ci = cin + static_cast<std::size_t>(cell) * c2;
      const float* cv = cx + static_cast<std::size_t>(cell) * c2;
      float* base = mid + (2 * ir) * mrow + (2 * ic) * c1;
      scatterCell(span, n, ci, cv, plan.p1.data(), 16L * c1, base,
                  base + mrow, base + 2 * mrow, base + 3 * mrow);
    }
  }

  const int ow = s + 2;
  scr.out.assign(static_cast<std::size_t>(ow) * ow, 0.0f);
  float* out = scr.out.data();
  const float* bd1 = plan.bd1.data();
  const __m512 vzero16 = _mm512_setzero_ps();
  for (int ir = 0; ir < s2; ++ir) {
    for (int ic = 0; ic < s2; ++ic) {
      const float* cell = mid + ((ir + 1) * mw + (ic + 1)) * c1;
      // Branchless deconv1 bias fold + ReLU — zeroed lanes only ever
      // add +/-0 products, a no-op on the binarized output (see the
      // AVX2 TU). nzIdx/nzVal are free again here.
      float* xa = vals;
      int live = 0;
      for (int in = 0; in < c1; in += 16) {
        const int lanes = c1 - in < 16 ? c1 - in : 16;
        const __mmask16 k = static_cast<__mmask16>(
            (lanes == 16 ? 0xFFFFU : (1U << static_cast<unsigned>(lanes)) - 1U));
        const __m512 xv =
            _mm512_max_ps(_mm512_add_ps(_mm512_maskz_loadu_ps(k, cell + in),
                                        _mm512_maskz_loadu_ps(k, bd1 + in)),
                          vzero16);
        live |= static_cast<int>(
            _mm512_mask_cmp_ps_mask(k, xv, vzero16, _CMP_GT_OQ));
        _mm512_storeu_ps(xa + in, xv);
      }
      if (live == 0) continue;
      __m512 acc = _mm512_setzero_ps();
      for (int in = 0; in < c1; ++in) {
        const float* w = plan.p2.data() + static_cast<std::size_t>(in) * 16;
        acc = _mm512_fmadd_ps(_mm512_set1_ps(xa[in]), _mm512_loadu_ps(w), acc);
      }
      float patch[16];
      _mm512_storeu_ps(patch, acc);
      float* base = out + (2 * ir) * ow + 2 * ic;
      for (int kh = 0; kh < 4; ++kh) {
        float* dst = base + kh * ow;
        _mm_storeu_ps(dst, _mm_add_ps(_mm_loadu_ps(dst),
                                      _mm_loadu_ps(patch + kh * 4)));
      }
    }
  }

  const __m512 vbias = _mm512_set1_ps(plan.bd2);
  const __m512 vzero = _mm512_setzero_ps();
  for (int r = 0; r < s; ++r) {
    const float* row = out + (r + 1) * ow + 1;
    std::uint32_t m = 0;
    for (int c = 0; c < s; c += 16) {
      const int lanes = s - c < 16 ? s - c : 16;
      const __mmask16 k =
          static_cast<__mmask16>((1U << static_cast<unsigned>(lanes)) - 1U);
      const __m512 z =
          _mm512_add_ps(_mm512_maskz_loadu_ps(k, row + c), vbias);
      const __mmask16 ge = _mm512_mask_cmp_ps_mask(k, z, vzero, _CMP_GE_OQ);
      m |= static_cast<std::uint32_t>(ge) << c;
    }
    masks[r] = m;
  }
}

}  // namespace dp::nn::fused::detail

#else  // !(__AVX512F__ && __AVX512BW__)

namespace dp::nn::fused::detail {

// dp-analyze: hot
void decodeSampleAvx512(const DecodePlan& plan, const float* latent,
                        std::uint32_t* masks, DecodeScratch& scratch) {
  // Unreachable by construction: the dispatcher never selects AVX-512
  // unless the AVX-512 TUs were compiled with real code generation.
  decodeSampleScalar(plan, latent, masks, scratch);
}

}  // namespace dp::nn::fused::detail

#endif
