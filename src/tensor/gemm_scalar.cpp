#include "tensor/gemm_kernels.hpp"

namespace dp::nn::detail {

// Portable reference micro-kernel. The row loop is outermost so one
// kNR-wide accumulator row lives in registers across the whole p loop
// (the B panel is small enough to re-stream from L1 per row), which
// lets the baseline ISA vectorize the j loop. Each acc[j] is an
// independent ascending-p chain, so vectorizing across j preserves the
// per-element accumulation order exactly — and padded rows (i >= mr)
// are simply skipped, since no output depends on them.
void microKernelScalar(int kc, const float* apanel, const float* bpanel,
                       float alpha, float* c, int ldc, int mr, int nr) {
  for (int i = 0; i < mr; ++i) {
    float acc[kNR] = {};
    const float* a = apanel + i;
    for (int p = 0; p < kc; ++p) {
      const float av = a[static_cast<long>(p) * kMR];
      const float* b = bpanel + static_cast<long>(p) * kNR;
      for (int j = 0; j < kNR; ++j) acc[j] += av * b[j];
    }
    float* crow = c + static_cast<long>(i) * ldc;
    for (int j = 0; j < nr; ++j) crow[j] += alpha * acc[j];
  }
}

void convTapScalar(int nc, int rows, int cols, const float* w, long wStride,
                   const float* x, long ldx, float* y, long planeStride,
                   long ldy) {
  for (int oc = 0; oc < nc; ++oc) {
    const float wv = w[oc * wStride];
    float* plane = y + oc * planeStride;
    for (int r = 0; r < rows; ++r) {
      const float* __restrict src = x + r * ldx;
      float* __restrict dst = plane + r * ldy;
      for (int j = 0; j < cols; ++j) dst[j] += wv * src[j];
    }
  }
}

}  // namespace dp::nn::detail
