#pragma once

/// \file violation.hpp
/// Design-rule violation taxonomy shared by the topology-level and the
/// geometry-level checkers. The topology kinds mirror the illegal
/// examples of the paper's Fig. 5; the geometry kinds mirror the critical
/// dimensions of Fig. 2 / Eq. (10).

#include <string>
#include <vector>

namespace dp::drc {

/// One category of design-rule violation.
enum class Violation {
  // --- topology space (Fig. 5) ---
  kEmptyPattern,        ///< no shape cell at all
  kAdjacentTracks,      ///< shapes on two adjacent wire tracks
  kBowTie,              ///< shapes meeting at exactly one corner
  kTwoDimensionalShape, ///< a connected shape spanning multiple tracks
  kComplexityX,         ///< cx exceeds the configured cap
  kComplexityY,         ///< cy exceeds the configured cap
  // --- geometry space (Fig. 2) ---
  kOffTrack,            ///< shape does not sit exactly on a wire track
  kMinLength,           ///< wire shorter than l_min
  kMinT2T,              ///< tip-to-tip spacing below t_min
  kOverlap,             ///< two shapes overlap
  kOutsideWindow,       ///< shape leaks outside the clip window
};

/// Human-readable name of a violation kind.
[[nodiscard]] std::string toString(Violation v);

/// Result of a DRC run: the list of violated rule kinds (deduplicated,
/// in enum order) — empty means clean.
struct DrcReport {
  std::vector<Violation> violations;

  [[nodiscard]] bool clean() const { return violations.empty(); }
  [[nodiscard]] bool has(Violation v) const;
  void add(Violation v);
  [[nodiscard]] std::string toString() const;
};

}  // namespace dp::drc
