#include "drc/topology_rules.hpp"

#include "squish/canonical.hpp"
#include "squish/complexity.hpp"

namespace dp::drc {

namespace {

using dp::squish::Topology;

/// Shapes on two adjacent rows: on the unidirectional layers modeled
/// here every occupied scan-line row is a distinct wire track, so two
/// vertically adjacent occupied rows violate the every-other-track rule
/// regardless of horizontal overlap.
bool hasAdjacentTrackShapes(const Topology& t) {
  for (int r = 1; r < t.rows(); ++r)
    if (t.rowHasShape(r) && t.rowHasShape(r - 1)) return true;
  return false;
}

/// Diagonal corner contact: cells (r,c) and (r+1,c+1) set with the
/// off-diagonal empty, or the mirrored configuration.
bool hasBowTie(const Topology& t) {
  for (int r = 0; r + 1 < t.rows(); ++r) {
    for (int c = 0; c + 1 < t.cols(); ++c) {
      const bool a = t.at(r, c), b = t.at(r, c + 1);
      const bool d = t.at(r + 1, c), e = t.at(r + 1, c + 1);
      if (a && e && !b && !d) return true;
      if (b && d && !a && !e) return true;
    }
  }
  return false;
}

/// A connected (4-neighbourhood) shape spanning more than one row.
bool has2dShape(const Topology& t) {
  for (int r = 0; r + 1 < t.rows(); ++r)
    for (int c = 0; c < t.cols(); ++c)
      if (t.at(r, c) && t.at(r + 1, c)) return true;
  return false;
}

}  // namespace

DrcReport TopologyChecker::check(const dp::squish::Topology& t) const {
  DrcReport report;
  const Topology canon = dp::squish::canonicalize(t);
  if (canon.empty() || canon.onesCount() == 0) {
    if (config_.forbidEmpty) report.add(Violation::kEmptyPattern);
    return report;
  }
  const auto cplx = dp::squish::complexityOfCanonical(canon);
  if (cplx.cx > config_.maxCx) report.add(Violation::kComplexityX);
  if (cplx.cy > config_.maxCy) report.add(Violation::kComplexityY);
  if (config_.forbid2dShapes && has2dShape(canon))
    report.add(Violation::kTwoDimensionalShape);
  if (config_.forbidAdjacentTracks && hasAdjacentTrackShapes(canon))
    report.add(Violation::kAdjacentTracks);
  if (config_.forbidBowTie && hasBowTie(canon))
    report.add(Violation::kBowTie);
  return report;
}

bool TopologyChecker::isLegal(const dp::squish::Topology& t) const {
  return check(t).clean();
}

}  // namespace dp::drc
