#pragma once

/// \file topology_rules.hpp
/// Topology-space legality checking (paper §III-B3): "a topology is
/// illegal if and only if it contains any patterns in Fig. 5 — illegal
/// topologies can be filtered out by checking whether shapes appear at
/// any two adjacent tracks", plus the complexity caps of §IV-A
/// (cx > 12 or cy > 12 marked illegal so the geometry linear system
/// always admits a solution in the given window).

#include "geometry/design_rules.hpp"
#include "drc/violation.hpp"
#include "squish/topology.hpp"

namespace dp::drc {

/// Configuration of the topology checker. Individual rules can be
/// toggled for ablation studies; the defaults implement the paper.
struct TopologyRuleConfig {
  int maxCx = 12;                 ///< complexity cap along x
  int maxCy = 12;                 ///< complexity cap along y
  bool forbidAdjacentTracks = true;
  bool forbidBowTie = true;
  bool forbid2dShapes = true;
  bool forbidEmpty = true;

  /// Derives the caps from a design-rule set.
  [[nodiscard]] static TopologyRuleConfig fromRules(
      const dp::DesignRules& r) {
    TopologyRuleConfig c;
    c.maxCx = r.maxCx;
    c.maxCy = r.maxCy;
    return c;
  }
};

/// Stateless topology legality checker.
class TopologyChecker {
 public:
  TopologyChecker() = default;
  explicit TopologyChecker(TopologyRuleConfig config) : config_(config) {}

  [[nodiscard]] const TopologyRuleConfig& config() const { return config_; }

  /// Full report on the canonical form of `t` (canonicalizes internally).
  [[nodiscard]] DrcReport check(const dp::squish::Topology& t) const;

  /// True when check(t) is clean.
  [[nodiscard]] bool isLegal(const dp::squish::Topology& t) const;

 private:
  TopologyRuleConfig config_{};
};

}  // namespace dp::drc
