#include "drc/packed_rules.hpp"

namespace dp::drc {

// dp-analyze: hot
bool isLegalCanonicalMasks(const TopologyRuleConfig& config,
                           const std::uint32_t* masks, int rows, int cols) {
  std::uint32_t any = 0;
  for (int r = 0; r < rows; ++r) any |= masks[r];
  if (rows == 0 || cols == 0 || any == 0) {
    // Mirrors TopologyChecker::check's early return: an empty canonical
    // form reports only kEmptyPattern (when configured) and skips every
    // other rule.
    return !config.forbidEmpty;
  }
  if (cols > config.maxCx || rows > config.maxCy) return false;
  for (int r = 0; r + 1 < rows; ++r) {
    const std::uint32_t a = masks[r];
    const std::uint32_t b = masks[r + 1];
    // Vertically adjacent set cells form a connected shape spanning two
    // rows (has2dShape).
    if (config.forbid2dShapes && (a & b) != 0) return false;
    // Two adjacent occupied tracks (hasAdjacentTrackShapes).
    if (config.forbidAdjacentTracks && a != 0 && b != 0) return false;
    // Diagonal corner contact with both off-diagonal cells empty
    // (hasBowTie): bit c covers cells (r,c)/(r+1,c+1) and the mirrored
    // pair. Bits at and above cols are zero in a and b, so the shifted
    // terms self-mask the c+1 == cols boundary.
    if (config.forbidBowTie &&
        (((a & (b >> 1U) & ~(a >> 1U) & ~b) |
          ((a >> 1U) & b & ~a & ~(b >> 1U))) != 0))
      return false;
  }
  return true;
}

}  // namespace dp::drc
