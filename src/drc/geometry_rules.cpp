#include "drc/geometry_rules.hpp"

#include <algorithm>
#include <map>
#include <vector>

#include "geometry/track_grid.hpp"

namespace dp::drc {

DrcReport GeometryChecker::check(const dp::Clip& clip) const {
  constexpr double kEps = 1e-6;
  DrcReport report;
  dp::Clip c = clip;
  c.normalize();
  if (c.empty()) {
    report.add(Violation::kEmptyPattern);
    return report;
  }

  const dp::TrackGrid grid(c.window(), rules_);
  std::map<int, std::vector<dp::Rect>> byTrack;

  for (const dp::Rect& s : c.shapes()) {
    if (!c.window().contains(s)) report.add(Violation::kOutsideWindow);
    const int track = grid.latticeRowOf(s);
    if (track < 0) {
      report.add(Violation::kOffTrack);
      continue;
    }
    byTrack[track].push_back(s);
    // Wires cut by the window border are prefixes of longer wires and are
    // exempt from the in-clip length rule (paper §III-D: C_W covers
    // "floating wires", the 011...110 runs).
    const bool touchesBorder = s.x0 <= c.window().x0 + kEps ||
                               s.x1 >= c.window().x1 - kEps;
    if (!touchesBorder && s.width() < rules_.minLength - kEps)
      report.add(Violation::kMinLength);
  }

  // Adjacent-track occupancy (shapes must sit on every other track at
  // most — two occupied neighbouring tracks violate the EUV rule).
  for (auto it = byTrack.begin(); it != byTrack.end(); ++it) {
    auto next = std::next(it);
    if (next != byTrack.end() && next->first == it->first + 1)
      report.add(Violation::kAdjacentTracks);
  }

  // Within-track spacing and overlap.
  for (auto& [track, shapes] : byTrack) {
    std::sort(shapes.begin(), shapes.end(),
              [](const dp::Rect& a, const dp::Rect& b) { return a.x0 < b.x0; });
    for (std::size_t i = 1; i < shapes.size(); ++i) {
      const double gap = shapes[i].x0 - shapes[i - 1].x1;
      if (gap < -kEps)
        report.add(Violation::kOverlap);
      else if (gap < rules_.minT2T - kEps)
        report.add(Violation::kMinT2T);
    }
  }
  return report;
}

}  // namespace dp::drc
