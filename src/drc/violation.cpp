#include "drc/violation.hpp"

#include <algorithm>

namespace dp::drc {

std::string toString(Violation v) {
  switch (v) {
    case Violation::kEmptyPattern: return "empty-pattern";
    case Violation::kAdjacentTracks: return "adjacent-tracks";
    case Violation::kBowTie: return "bow-tie";
    case Violation::kTwoDimensionalShape: return "2d-shape";
    case Violation::kComplexityX: return "complexity-x";
    case Violation::kComplexityY: return "complexity-y";
    case Violation::kOffTrack: return "off-track";
    case Violation::kMinLength: return "min-length";
    case Violation::kMinT2T: return "min-t2t";
    case Violation::kOverlap: return "overlap";
    case Violation::kOutsideWindow: return "outside-window";
  }
  return "unknown";
}

bool DrcReport::has(Violation v) const {
  return std::find(violations.begin(), violations.end(), v) !=
         violations.end();
}

void DrcReport::add(Violation v) {
  if (!has(v)) violations.push_back(v);
}

std::string DrcReport::toString() const {
  if (clean()) return "clean";
  std::string out;
  for (std::size_t i = 0; i < violations.size(); ++i) {
    if (i) out += ", ";
    out += drc::toString(violations[i]);
  }
  return out;
}

}  // namespace dp::drc
