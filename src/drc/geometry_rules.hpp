#pragma once

/// \file geometry_rules.hpp
/// Geometry-space DRC for finished layout clips: verifies the critical
/// dimensions of the paper's Fig. 2 (pitch/on-track placement, tip-to-tip
/// spacing, wire length) plus basic sanity (window containment, no
/// overlaps). This is the final gate certifying that a pattern produced
/// by the generation flow (topology + solved δx/δy) is DRC-clean.

#include "geometry/clip.hpp"
#include "geometry/design_rules.hpp"
#include "drc/violation.hpp"

namespace dp::drc {

/// Clip-level design-rule checker.
class GeometryChecker {
 public:
  explicit GeometryChecker(dp::DesignRules rules) : rules_(rules) {}

  [[nodiscard]] const dp::DesignRules& rules() const { return rules_; }

  /// Full report for `clip`. The clip is normalized internally so
  /// abutting same-track rectangles are not reported as T2T violations.
  [[nodiscard]] DrcReport check(const dp::Clip& clip) const;

  [[nodiscard]] bool isClean(const dp::Clip& clip) const {
    return check(clip).clean();
  }

 private:
  dp::DesignRules rules_;
};

}  // namespace dp::drc
