#pragma once

/// \file packed_rules.hpp
/// Bitwise topology legality on row-mask matrices (DESIGN.md §14) —
/// the fused counterpart of TopologyChecker. Each Fig. 5 pattern test
/// reduces to word-parallel logic on adjacent row masks, so assessing
/// a decoded pattern costs a few dozen ALU ops instead of a
/// cell-by-cell sweep. Results are pinned bit-for-bit against
/// TopologyChecker::isLegal by tests/decode_fused_test.cpp.

#include <cstdint>

#include "drc/topology_rules.hpp"

namespace dp::drc {

/// Legality of an ALREADY canonical mask matrix (bit c of masks[r] =
/// cell (r, c), row 0 = bottom, bits >= cols zero) under `config` —
/// exactly TopologyChecker{config}.isLegal on the topology the masks
/// encode. The caller canonicalizes first (squish::canonicalizeMasks);
/// splitting the steps lets the fused pipeline reuse the canonical form
/// for hashing and packing without a second pass.
[[nodiscard]] bool isLegalCanonicalMasks(const TopologyRuleConfig& config,
                                         const std::uint32_t* masks,
                                         int rows, int cols);

}  // namespace dp::drc
