#pragma once

/// \file diff_constraints.hpp
/// Solver for systems of difference constraints  x_j - x_i <= c.
///
/// Eq. (10) of the paper is exactly such a system over the scan-line
/// coordinates (every constraint bounds x_b - x_a for some pair of scan
/// lines), so a single-source shortest-path computation (Bellman-Ford)
/// yields a feasible solution or proves infeasibility via a negative
/// cycle. This is the fast deterministic backend of the geometry solver;
/// the simplex backend adds randomized vertex selection.

#include <cstddef>
#include <optional>
#include <vector>

namespace dp::lp {

/// A system of difference constraints over `numVars` variables.
class DifferenceSystem {
 public:
  explicit DifferenceSystem(std::size_t numVars);

  [[nodiscard]] std::size_t numVars() const { return numVars_; }

  /// Adds x_j - x_i <= c.
  void addUpperBound(std::size_t j, std::size_t i, double c);

  /// Adds x_j - x_i >= c   (i.e., x_i - x_j <= -c).
  void addLowerBound(std::size_t j, std::size_t i, double c);

  /// Adds x_j - x_i == c.
  void addEquality(std::size_t j, std::size_t i, double c);

  /// Bellman-Ford from a virtual source connected to every variable with
  /// weight 0. Returns a feasible assignment (the shortest-path
  /// potentials, shifted so x_0 == 0), or nullopt when infeasible.
  [[nodiscard]] std::optional<std::vector<double>> solve() const;

 private:
  struct Edge {
    std::size_t from, to;
    double weight;  // x_to <= x_from + weight
  };
  std::size_t numVars_;
  std::vector<Edge> edges_;
};

}  // namespace dp::lp
