#pragma once

/// \file simplex.hpp
/// Dense two-phase primal simplex solver for small linear programs.
///
/// Solves
///     maximize   c^T x
///     subject to A_i x  (<= | = | >=)  b_i      for every constraint i
///                x >= 0
///
/// The geometry systems derived from Eq. (10) of the paper have a few
/// dozen variables and constraints, so a dense tableau with Bland's rule
/// (guaranteed termination) is the right tool. The paper "adopts an
/// industrial solver"; this class is our substitution for it.

#include <cstddef>
#include <vector>

namespace dp::lp {

enum class Relation { kLessEqual, kEqual, kGreaterEqual };

enum class SolveStatus { kOptimal, kInfeasible, kUnbounded };

/// One linear constraint: coeffs . x  (rel)  rhs.
struct Constraint {
  std::vector<double> coeffs;
  Relation rel = Relation::kLessEqual;
  double rhs = 0.0;
};

/// Solver result. `x` and `objective` are meaningful only for kOptimal.
struct LpResult {
  SolveStatus status = SolveStatus::kInfeasible;
  std::vector<double> x;
  double objective = 0.0;
};

/// A small LP in the standard form documented above.
class LinearProgram {
 public:
  /// Creates a program over `numVars` non-negative variables with the
  /// all-zero objective (set coefficients via setObjective).
  explicit LinearProgram(std::size_t numVars);

  [[nodiscard]] std::size_t numVars() const { return objective_.size(); }
  [[nodiscard]] std::size_t numConstraints() const {
    return constraints_.size();
  }

  /// Sets the maximization objective. Throws on size mismatch.
  void setObjective(std::vector<double> c);

  /// Appends a constraint. Throws on coefficient-count mismatch.
  void addConstraint(std::vector<double> coeffs, Relation rel, double rhs);

  /// Convenience: coeff-on-a-contiguous-range constraint
  /// sum(x[first..last]) rel rhs (inclusive range).
  void addRangeSumConstraint(std::size_t first, std::size_t last,
                             Relation rel, double rhs);

  /// Runs two-phase simplex with Bland's anti-cycling rule.
  [[nodiscard]] LpResult solve() const;

 private:
  std::vector<double> objective_;
  std::vector<Constraint> constraints_;
};

}  // namespace dp::lp
