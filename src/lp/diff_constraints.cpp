#include "lp/diff_constraints.hpp"

#include <limits>
#include <stdexcept>

namespace dp::lp {

DifferenceSystem::DifferenceSystem(std::size_t numVars)
    : numVars_(numVars) {
  if (numVars == 0)
    throw std::invalid_argument("DifferenceSystem: need >= 1 variable");
}

void DifferenceSystem::addUpperBound(std::size_t j, std::size_t i,
                                     double c) {
  if (i >= numVars_ || j >= numVars_)
    throw std::out_of_range("DifferenceSystem: variable index");
  // x_j - x_i <= c  ==  edge i -> j with weight c.
  edges_.push_back(Edge{i, j, c});
}

void DifferenceSystem::addLowerBound(std::size_t j, std::size_t i,
                                     double c) {
  addUpperBound(i, j, -c);
}

void DifferenceSystem::addEquality(std::size_t j, std::size_t i, double c) {
  addUpperBound(j, i, c);
  addLowerBound(j, i, c);
}

std::optional<std::vector<double>> DifferenceSystem::solve() const {
  // Virtual source: initialize all distances to 0 (equivalent to a
  // 0-weight edge from the source to every variable).
  std::vector<double> dist(numVars_, 0.0);
  constexpr double kEps = 1e-9;
  bool changed = true;
  for (std::size_t pass = 0; pass <= numVars_ && changed; ++pass) {
    changed = false;
    for (const Edge& e : edges_) {
      const double cand = dist[e.from] + e.weight;
      if (cand < dist[e.to] - kEps) {
        dist[e.to] = cand;
        changed = true;
      }
    }
  }
  if (changed) return std::nullopt;  // negative cycle -> infeasible

  const double base = dist[0];
  for (double& d : dist) d -= base;
  return dist;
}

}  // namespace dp::lp
