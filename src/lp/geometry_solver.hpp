#pragma once

/// \file geometry_solver.hpp
/// Legal pattern assessment (paper §III-D): given a legal squish
/// topology, build the linear system of Eq. (10) over the scan-line
/// coordinates and solve it for the geometry vectors δx and δy, turning
/// the topology into a complete DRC-clean squish pattern.
///
/// Constraints implemented (with C_T2T found as the 1 0...0 1 runs and
/// C_W as the 0 1...1 0 runs of each topology row, exactly as §III-D
/// describes):
///   (10a) row heights: shape rows are p/2 tall; space rows are positive
///         multiples of p/2; rows sum to the clip height.
///   (10b) Σ δx over every tip-to-tip run >= t_min
///   (10c) Σ δx over every floating-wire run >= l_min
///   (10d) every δx >= minSpaceX (strict positivity of scan lines)
///   (10e) Σ δx = clip width, Σ δy = clip height
///
/// The paper notes the system "tends to have multiple or infinite
/// solutions" and keeps one randomly selected solution per topology; the
/// simplex backend reproduces that by maximizing a random positive
/// objective (a random vertex of the feasible polytope), while the
/// Bellman-Ford backend returns the canonical left-packed solution.

#include <optional>

#include "common/rng.hpp"
#include "geometry/design_rules.hpp"
#include "squish/squish_pattern.hpp"
#include "squish/topology.hpp"

namespace dp::lp {

enum class GeometryBackend {
  kDifferenceConstraints,  ///< Bellman-Ford; deterministic, fast
  kSimplexRandomVertex,    ///< simplex with randomized objective
};

/// Builds and solves Eq. (10) systems for canonical legal topologies.
class GeometrySolver {
 public:
  explicit GeometrySolver(
      dp::DesignRules rules,
      GeometryBackend backend = GeometryBackend::kDifferenceConstraints)
      : rules_(rules), backend_(backend) {}

  [[nodiscard]] const dp::DesignRules& rules() const { return rules_; }
  [[nodiscard]] GeometryBackend backend() const { return backend_; }

  /// Solves for the geometry of (the canonical form of) `topo`.
  /// Returns nullopt when the system is infeasible inside the clip
  /// window (possible for topologies beyond the complexity caps) or the
  /// topology cannot sit on the half-pitch row lattice.
  [[nodiscard]] std::optional<dp::squish::SquishPattern> solve(
      const dp::squish::Topology& topo, Rng& rng) const;

 private:
  dp::DesignRules rules_;
  GeometryBackend backend_;
};

}  // namespace dp::lp
