#include "lp/geometry_solver.hpp"

#include <vector>

#include "lp/diff_constraints.hpp"
#include "lp/simplex.hpp"
#include "squish/canonical.hpp"

namespace dp::lp {

namespace {

using dp::squish::SquishPattern;
using dp::squish::Topology;

/// A contiguous same-value run of one topology row.
struct Run {
  int begin;  ///< first column (inclusive)
  int end;    ///< one past last column
  bool shape; ///< true for a 1-run, false for a 0-run
};

std::vector<Run> rowRuns(const Topology& t, int row) {
  std::vector<Run> runs;
  int c = 0;
  while (c < t.cols()) {
    const bool v = t.at(row, c) != 0;
    int e = c;
    while (e < t.cols() && (t.at(row, e) != 0) == v) ++e;
    runs.push_back(Run{c, e, v});
    c = e;
  }
  return runs;
}

/// Collects the C_T2T index pairs (zero runs flanked by shapes) and the
/// C_W pairs (floating-wire one runs) of all rows, as scan-line index
/// pairs (a, b) meaning the constraint applies to x_b - x_a.
void collectRuns(const Topology& t, std::vector<std::pair<int, int>>& t2t,
                 std::vector<std::pair<int, int>>& wires) {
  for (int r = 0; r < t.rows(); ++r) {
    const auto runs = rowRuns(t, r);
    for (std::size_t i = 0; i < runs.size(); ++i) {
      const Run& run = runs[i];
      const bool interior = i > 0 && i + 1 < runs.size();
      if (!run.shape && interior) t2t.emplace_back(run.begin, run.end);
      if (run.shape && interior) wires.emplace_back(run.begin, run.end);
    }
  }
}

/// δy assignment: shape rows get one half-pitch unit; space rows get a
/// random positive number of units so the row heights sum to the window.
std::optional<std::vector<double>> solveDy(const Topology& t,
                                           const dp::DesignRules& rules,
                                           dp::Rng& rng) {
  const int totalUnits = rules.rowCount();
  const int rows = t.rows();
  std::vector<int> units(rows, 1);
  std::vector<int> spaceRows;
  for (int r = 0; r < rows; ++r)
    if (!t.rowHasShape(r)) spaceRows.push_back(r);
  int extra = totalUnits - rows;
  if (extra < 0) return std::nullopt;  // too many scan lines for the window
  if (extra > 0 && spaceRows.empty()) return std::nullopt;
  for (int i = 0; i < extra; ++i) {
    const int pick =
        spaceRows[static_cast<std::size_t>(rng.uniformInt(
            0, static_cast<int>(spaceRows.size()) - 1))];
    ++units[pick];
  }
  std::vector<double> dy(rows);
  for (int r = 0; r < rows; ++r) dy[r] = units[r] * rules.rowHeight();
  return dy;
}

std::optional<std::vector<double>> solveDxDiff(
    const Topology& t, const dp::DesignRules& rules,
    const std::vector<std::pair<int, int>>& t2t,
    const std::vector<std::pair<int, int>>& wires) {
  const int cols = t.cols();
  DifferenceSystem sys(static_cast<std::size_t>(cols) + 1);
  for (int c = 0; c < cols; ++c)
    sys.addLowerBound(c + 1, c, rules.minSpaceX);
  for (const auto& [a, b] : t2t) sys.addLowerBound(b, a, rules.minT2T);
  for (const auto& [a, b] : wires) sys.addLowerBound(b, a, rules.minLength);
  sys.addEquality(cols, 0, rules.clipWidth);
  const auto xs = sys.solve();
  if (!xs) return std::nullopt;
  std::vector<double> dx(cols);
  for (int c = 0; c < cols; ++c) dx[c] = (*xs)[c + 1] - (*xs)[c];
  return dx;
}

std::optional<std::vector<double>> solveDxSimplex(
    const Topology& t, const dp::DesignRules& rules,
    const std::vector<std::pair<int, int>>& t2t,
    const std::vector<std::pair<int, int>>& wires, dp::Rng& rng) {
  // Substitute δ'_c = δ_c - minSpaceX >= 0 to fit the x >= 0 form.
  const int cols = t.cols();
  LinearProgram lp(static_cast<std::size_t>(cols));
  std::vector<double> obj(cols);
  for (double& w : obj) w = rng.uniform(0.05, 1.0);
  lp.setObjective(obj);

  auto addRun = [&](int a, int b, double minTotal) {
    const double rhs = minTotal - (b - a) * rules.minSpaceX;
    if (rhs <= 0.0) return;  // already implied by positivity
    lp.addRangeSumConstraint(static_cast<std::size_t>(a),
                             static_cast<std::size_t>(b) - 1,
                             Relation::kGreaterEqual, rhs);
  };
  for (const auto& [a, b] : t2t) addRun(a, b, rules.minT2T);
  for (const auto& [a, b] : wires) addRun(a, b, rules.minLength);
  lp.addRangeSumConstraint(0, static_cast<std::size_t>(cols) - 1,
                           Relation::kEqual,
                           rules.clipWidth - cols * rules.minSpaceX);

  const LpResult res = lp.solve();
  if (res.status != SolveStatus::kOptimal) return std::nullopt;
  std::vector<double> dx(cols);
  for (int c = 0; c < cols; ++c) dx[c] = res.x[c] + rules.minSpaceX;
  return dx;
}

}  // namespace

std::optional<SquishPattern> GeometrySolver::solve(
    const Topology& topo, Rng& rng) const {
  const Topology canon = dp::squish::canonicalize(topo);
  if (canon.empty() || canon.onesCount() == 0) return std::nullopt;

  const auto dy = solveDy(canon, rules_, rng);
  if (!dy) return std::nullopt;

  std::vector<std::pair<int, int>> t2t, wires;
  collectRuns(canon, t2t, wires);
  const auto dx =
      backend_ == GeometryBackend::kDifferenceConstraints
          ? solveDxDiff(canon, rules_, t2t, wires)
          : solveDxSimplex(canon, rules_, t2t, wires, rng);
  if (!dx) return std::nullopt;

  SquishPattern p;
  p.topo = canon;
  p.dx = *dx;
  p.dy = *dy;
  p.x0 = 0.0;
  p.y0 = 0.0;
  return p;
}

}  // namespace dp::lp
