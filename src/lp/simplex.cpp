#include "lp/simplex.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace dp::lp {

namespace {

constexpr double kEps = 1e-9;

/// Dense simplex tableau. Rows = constraints, one column per variable
/// plus the RHS; the objective (reduced-cost) row is kept separately.
struct Tableau {
  std::size_t rows = 0;
  std::size_t cols = 0;  // number of variables (structural+slack+artificial)
  std::vector<std::vector<double>> a;  // rows x cols
  std::vector<double> rhs;             // rows
  std::vector<double> obj;             // cols (reduced costs)
  double objValue = 0.0;
  std::vector<std::size_t> basis;      // basic variable per row

  void pivot(std::size_t pr, std::size_t pc) {
    const double p = a[pr][pc];
    for (std::size_t c = 0; c < cols; ++c) a[pr][c] /= p;
    rhs[pr] /= p;
    for (std::size_t r = 0; r < rows; ++r) {
      if (r == pr) continue;
      const double f = a[r][pc];
      if (std::abs(f) < kEps) continue;
      for (std::size_t c = 0; c < cols; ++c) a[r][c] -= f * a[pr][c];
      rhs[r] -= f * rhs[pr];
    }
    const double f = obj[pc];
    if (std::abs(f) > kEps) {
      for (std::size_t c = 0; c < cols; ++c) obj[c] -= f * a[pr][c];
      objValue -= f * rhs[pr];
    }
    basis[pr] = pc;
  }

  /// Runs simplex iterations (maximization, Bland's rule) until optimal
  /// or unbounded. `allowed[c]` gates which columns may enter.
  SolveStatus iterate(const std::vector<bool>& allowed) {
    for (;;) {
      // Bland: smallest-index column with positive reduced cost.
      std::size_t enter = cols;
      for (std::size_t c = 0; c < cols; ++c) {
        if (allowed[c] && obj[c] > kEps) {
          enter = c;
          break;
        }
      }
      if (enter == cols) return SolveStatus::kOptimal;

      // Min-ratio leaving row; Bland tie-break on basis index.
      std::size_t leave = rows;
      double best = std::numeric_limits<double>::infinity();
      for (std::size_t r = 0; r < rows; ++r) {
        if (a[r][enter] > kEps) {
          const double ratio = rhs[r] / a[r][enter];
          if (ratio < best - kEps ||
              (ratio < best + kEps &&
               (leave == rows || basis[r] < basis[leave]))) {
            best = ratio;
            leave = r;
          }
        }
      }
      if (leave == rows) return SolveStatus::kUnbounded;
      pivot(leave, enter);
    }
  }
};

}  // namespace

LinearProgram::LinearProgram(std::size_t numVars)
    : objective_(numVars, 0.0) {
  if (numVars == 0)
    throw std::invalid_argument("LinearProgram: need at least one variable");
}

void LinearProgram::setObjective(std::vector<double> c) {
  if (c.size() != objective_.size())
    throw std::invalid_argument("setObjective: size mismatch");
  objective_ = std::move(c);
}

void LinearProgram::addConstraint(std::vector<double> coeffs, Relation rel,
                                  double rhs) {
  if (coeffs.size() != objective_.size())
    throw std::invalid_argument("addConstraint: size mismatch");
  constraints_.push_back(Constraint{std::move(coeffs), rel, rhs});
}

void LinearProgram::addRangeSumConstraint(std::size_t first,
                                          std::size_t last, Relation rel,
                                          double rhs) {
  if (first > last || last >= objective_.size())
    throw std::invalid_argument("addRangeSumConstraint: bad range");
  std::vector<double> coeffs(objective_.size(), 0.0);
  for (std::size_t i = first; i <= last; ++i) coeffs[i] = 1.0;
  addConstraint(std::move(coeffs), rel, rhs);
}

LpResult LinearProgram::solve() const {
  const std::size_t n = objective_.size();
  const std::size_t m = constraints_.size();

  // Normalize to rhs >= 0.
  std::vector<Constraint> cons = constraints_;
  for (Constraint& c : cons) {
    if (c.rhs < 0.0) {
      for (double& v : c.coeffs) v = -v;
      c.rhs = -c.rhs;
      if (c.rel == Relation::kLessEqual)
        c.rel = Relation::kGreaterEqual;
      else if (c.rel == Relation::kGreaterEqual)
        c.rel = Relation::kLessEqual;
    }
  }

  // Column layout: [structural n][slack/surplus][artificial].
  std::size_t numSlack = 0, numArt = 0;
  for (const Constraint& c : cons) {
    if (c.rel != Relation::kEqual) ++numSlack;
    if (c.rel != Relation::kLessEqual) ++numArt;
  }

  Tableau t;
  t.rows = m;
  t.cols = n + numSlack + numArt;
  t.a.assign(m, std::vector<double>(t.cols, 0.0));
  t.rhs.assign(m, 0.0);
  t.basis.assign(m, 0);

  std::vector<bool> isArtificial(t.cols, false);
  std::size_t slackCol = n;
  std::size_t artCol = n + numSlack;
  for (std::size_t r = 0; r < m; ++r) {
    const Constraint& c = cons[r];
    for (std::size_t j = 0; j < n; ++j) t.a[r][j] = c.coeffs[j];
    t.rhs[r] = c.rhs;
    switch (c.rel) {
      case Relation::kLessEqual:
        t.a[r][slackCol] = 1.0;
        t.basis[r] = slackCol++;
        break;
      case Relation::kGreaterEqual:
        t.a[r][slackCol++] = -1.0;
        t.a[r][artCol] = 1.0;
        isArtificial[artCol] = true;
        t.basis[r] = artCol++;
        break;
      case Relation::kEqual:
        t.a[r][artCol] = 1.0;
        isArtificial[artCol] = true;
        t.basis[r] = artCol++;
        break;
    }
  }

  std::vector<bool> allowAll(t.cols, true);

  // Phase 1: maximize -(sum of artificials).
  if (numArt > 0) {
    t.obj.assign(t.cols, 0.0);
    t.objValue = 0.0;
    for (std::size_t c = 0; c < t.cols; ++c)
      if (isArtificial[c]) t.obj[c] = -1.0;
    // Price out the basic artificials.
    for (std::size_t r = 0; r < m; ++r) {
      if (isArtificial[t.basis[r]]) {
        for (std::size_t c = 0; c < t.cols; ++c) t.obj[c] += t.a[r][c];
        t.objValue += t.rhs[r];
      }
    }
    const SolveStatus s1 = t.iterate(allowAll);
    (void)s1;  // phase 1 is always bounded (objective <= 0)
    // t.objValue tracks -z; phase-1 z = -(sum of artificials) is 0 at a
    // feasible point, so a strictly positive residual means infeasible.
    if (t.objValue > 1e-7) {
      return LpResult{SolveStatus::kInfeasible, {}, 0.0};
    }
    // Drive any remaining basic artificials out (degenerate, value 0).
    for (std::size_t r = 0; r < m; ++r) {
      if (!isArtificial[t.basis[r]]) continue;
      std::size_t pc = t.cols;
      for (std::size_t c = 0; c < n + numSlack; ++c) {
        if (std::abs(t.a[r][c]) > kEps) {
          pc = c;
          break;
        }
      }
      if (pc != t.cols) t.pivot(r, pc);
      // else: redundant row; the artificial stays basic at value 0 and is
      // barred from re-entering in phase 2 below.
    }
  }

  // Phase 2: the real objective over structural variables.
  t.obj.assign(t.cols, 0.0);
  t.objValue = 0.0;
  for (std::size_t j = 0; j < n; ++j) t.obj[j] = objective_[j];
  for (std::size_t r = 0; r < m; ++r) {
    const double cb = t.basis[r] < n ? objective_[t.basis[r]] : 0.0;
    if (std::abs(cb) < kEps) continue;
    for (std::size_t c = 0; c < t.cols; ++c) t.obj[c] -= cb * t.a[r][c];
    t.objValue -= cb * t.rhs[r];
  }
  std::vector<bool> allowed(t.cols, true);
  for (std::size_t c = 0; c < t.cols; ++c)
    if (isArtificial[c]) allowed[c] = false;

  const SolveStatus s2 = t.iterate(allowed);
  if (s2 == SolveStatus::kUnbounded)
    return LpResult{SolveStatus::kUnbounded, {}, 0.0};

  LpResult res;
  res.status = SolveStatus::kOptimal;
  res.x.assign(n, 0.0);
  for (std::size_t r = 0; r < m; ++r)
    if (t.basis[r] < n) res.x[t.basis[r]] = t.rhs[r];
  res.objective = -t.objValue;
  return res;
}

}  // namespace dp::lp
