#include <gtest/gtest.h>

#include "core/flows.hpp"
#include "core/generation_result.hpp"
#include "core/gtcae.hpp"
#include "core/pattern_library.hpp"
#include "core/perturb.hpp"
#include "core/pipeline.hpp"
#include "core/sensitivity.hpp"
#include "datagen/generator.hpp"
#include "models/topology_codec.hpp"
#include "squish/extract.hpp"
#include "squish/pad.hpp"
#include "testutil.hpp"

namespace dp::core {
namespace {

using dp::test::topo;

models::TcaeConfig tinyTcae() {
  models::TcaeConfig c;
  c.conv1Channels = 4;
  c.conv2Channels = 8;
  c.hidden = 32;
  c.latentDim = 16;
  c.trainSteps = 200;
  c.batchSize = 8;
  return c;
}

std::vector<squish::Topology> trainingTopologies(int count,
                                                 std::uint64_t seed = 42) {
  dp::Rng rng(seed);
  const auto clips = datagen::generateLibrary(datagen::directprintSpec(1),
                                              dp::euv7nmM2(), count, rng);
  return datagen::extractTopologies(clips);
}

/// A trained tiny TCAE shared by the flow tests (training is the slow
/// part; do it once).
models::Tcae& sharedTcae() {
  static models::Tcae* tcae = [] {
    dp::Rng rng(123);
    auto* t = new models::Tcae(tinyTcae(), rng);
    t->train(trainingTopologies(120), rng);
    return t;
  }();
  return *tcae;
}

// -------------------------------------------------------- PatternLibrary

TEST(PatternLibrary, DeduplicatesCanonically) {
  PatternLibrary lib;
  EXPECT_TRUE(lib.add(topo({"#.", ".#"})));
  EXPECT_FALSE(lib.add(topo({"#.", ".#"})));
  // Canonical equivalent (duplicated rows/cols) is the same pattern.
  EXPECT_FALSE(lib.add(topo({"##..",  //
                             "##..",  //
                             "..##"})));
  EXPECT_EQ(lib.size(), 1u);
  EXPECT_TRUE(lib.contains(topo({"#.", ".#"})));
  EXPECT_FALSE(lib.contains(topo({".#", "#."})));
}

TEST(PatternLibrary, TracksComplexities) {
  PatternLibrary lib;
  lib.add(topo({"#.", ".#"}));         // 2x2
  lib.add(topo({"#.#"}));              // 3x1
  const auto cs = lib.complexities();
  ASSERT_EQ(cs.size(), 2u);
  EXPECT_DOUBLE_EQ(lib.meanCx(), 2.5);
  EXPECT_DOUBLE_EQ(lib.meanCy(), 1.5);
}

TEST(PatternLibrary, HistogramCoversObservedRange) {
  PatternLibrary lib;
  lib.add(topo({"#.", ".#"}));
  lib.add(topo({"#.#"}));
  const auto h = lib.histogram();
  ASSERT_EQ(h.size(), 3u);     // cy up to 2
  ASSERT_EQ(h[2].size(), 4u);  // cx up to 3
  EXPECT_DOUBLE_EQ(h[2][2], 1.0);
  EXPECT_DOUBLE_EQ(h[1][3], 1.0);
  EXPECT_DOUBLE_EQ(h[0][0], 0.0);
}

TEST(PatternLibrary, MergeCombinesUniqueSets) {
  PatternLibrary a, b;
  a.add(topo({"#."}));
  b.add(topo({"#."}));
  b.add(topo({".#"}));
  a.merge(b);
  EXPECT_EQ(a.size(), 2u);
}

TEST(ShannonDiversity, KnownValues) {
  EXPECT_DOUBLE_EQ(shannonDiversity({}), 0.0);
  // All identical -> 0 bits.
  EXPECT_DOUBLE_EQ(shannonDiversity({{2, 2}, {2, 2}, {2, 2}}), 0.0);
  // Uniform over 2 classes -> 1 bit; over 4 -> 2 bits.
  EXPECT_DOUBLE_EQ(shannonDiversity({{1, 1}, {2, 2}}), 1.0);
  EXPECT_DOUBLE_EQ(
      shannonDiversity({{1, 1}, {1, 2}, {2, 1}, {2, 2}}), 2.0);
}

TEST(ShannonDiversity, MoreSpreadMeansHigherEntropy) {
  std::vector<squish::Complexity> concentrated(100, {5, 5});
  concentrated.push_back({6, 6});
  std::vector<squish::Complexity> spread;
  for (int i = 0; i < 101; ++i) spread.push_back({i % 10, i / 10});
  EXPECT_LT(shannonDiversity(concentrated), shannonDiversity(spread));
}

// --------------------------------------------------------------- Perturb

TEST(Perturber, StddevIsInverseSqrtSensitivity) {
  const SensitivityAwarePerturber p({0.25, 1.0, 0.0}, 1.0, 5.0);
  EXPECT_DOUBLE_EQ(p.stddevs()[0], 2.0);
  EXPECT_DOUBLE_EQ(p.stddevs()[1], 1.0);
  EXPECT_DOUBLE_EQ(p.stddevs()[2], 5.0);  // clamped
}

TEST(Perturber, ScaleMultipliesStddev) {
  const SensitivityAwarePerturber p({1.0}, 0.5, 5.0);
  EXPECT_DOUBLE_EQ(p.stddevs()[0], 0.5);
}

TEST(Perturber, UniformNoiseVariant) {
  const auto p = SensitivityAwarePerturber::uniformNoise(4, 0.7);
  EXPECT_EQ(p.latentDim(), 4);
  for (double s : p.stddevs()) EXPECT_DOUBLE_EQ(s, 0.7);
}

TEST(Perturber, SampleStatisticsMatchStddevs) {
  dp::Rng rng(1);
  const SensitivityAwarePerturber p({4.0, 0.04}, 1.0, 10.0);  // σ=0.5, 5
  double var0 = 0, var1 = 0;
  const int n = 4000;
  for (int i = 0; i < n; ++i) {
    const auto v = p.sample(rng);
    var0 += v[0] * v[0];
    var1 += v[1] * v[1];
  }
  EXPECT_NEAR(std::sqrt(var0 / n), 0.5, 0.05);
  EXPECT_NEAR(std::sqrt(var1 / n), 5.0, 0.5);
}

TEST(Perturber, BatchSamplesHaveRightShape) {
  dp::Rng rng(2);
  const auto p = SensitivityAwarePerturber::uniformNoise(8, 1.0);
  const nn::Tensor batch = p.sampleBatch(5, rng);
  EXPECT_EQ(batch.shape(), (std::vector<int>{5, 8}));
}

TEST(Perturber, Validates) {
  EXPECT_THROW(SensitivityAwarePerturber({}), std::invalid_argument);
  EXPECT_THROW(SensitivityAwarePerturber::uniformNoise(0, 1.0),
               std::invalid_argument);
}

// ------------------------------------------------------------ Sensitivity

TEST(Sensitivity, ReturnsOnePerLatentNodeInUnitRange) {
  const auto topos = trainingTopologies(40);
  const drc::TopologyChecker checker;
  SensitivityConfig cfg;
  cfg.maxTopologies = 8;
  cfg.sweepSteps = 3;
  const auto s = estimateSensitivity(sharedTcae(), topos, checker, cfg);
  EXPECT_EQ(s.size(), 16u);
  for (double v : s) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST(Sensitivity, ZeroRangeSweepMatchesPlainReconstruction) {
  // With range 0 every sweep decodes the unperturbed latents, so all
  // nodes get the same sensitivity = the invalid-reconstruction rate.
  const auto topos = trainingTopologies(30);
  const drc::TopologyChecker checker;
  SensitivityConfig cfg;
  cfg.range = 0.0;
  cfg.sweepSteps = 2;
  cfg.maxTopologies = 8;
  const auto s = estimateSensitivity(sharedTcae(), topos, checker, cfg);
  for (std::size_t i = 1; i < s.size(); ++i) EXPECT_DOUBLE_EQ(s[i], s[0]);
}

TEST(Sensitivity, ValidatesArguments) {
  const drc::TopologyChecker checker;
  SensitivityConfig cfg;
  EXPECT_THROW(
      estimateSensitivity(sharedTcae(), {}, checker, cfg),
      std::invalid_argument);
  cfg.sweepSteps = 1;
  EXPECT_THROW(estimateSensitivity(sharedTcae(), trainingTopologies(5),
                                   checker, cfg),
               std::invalid_argument);
}

// ------------------------------------------------------------------ Flows

TEST(Flows, VectorsToTensorPacksRows) {
  const nn::Tensor t = vectorsToTensor({{1.0f, 2.0f}, {3.0f, 4.0f}});
  EXPECT_EQ(t.shape(), (std::vector<int>{2, 2}));
  EXPECT_EQ(t.at(1, 0), 3.0f);
  EXPECT_THROW(vectorsToTensor({}), std::invalid_argument);
  EXPECT_THROW(vectorsToTensor({{1.0f}, {1.0f, 2.0f}}),
               std::invalid_argument);
}

TEST(Flows, LibraryResultCountsLegality) {
  const drc::TopologyChecker checker;
  const auto r = libraryResult(
      {topo({"#.", ".#"}),   // adjacent tracks: illegal
       topo({"#.#"}),        // legal
       topo({"#.#"})},       // duplicate
      checker);
  EXPECT_EQ(r.generated, 3);
  EXPECT_EQ(r.legal, 2);
  EXPECT_EQ(r.unique.size(), 1u);
  EXPECT_NEAR(r.legalFraction(), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(r.uniqueLegalFraction(), 1.0 / 3.0, 1e-12);
}

TEST(Flows, TcaeRandomAccountingIsConsistent) {
  dp::Rng rng(9);
  const auto topos = trainingTopologies(60);
  const drc::TopologyChecker checker;
  const auto perturber = SensitivityAwarePerturber::uniformNoise(16, 0.5);
  FlowConfig cfg;
  cfg.count = 300;
  cfg.batchSize = 64;
  cfg.collectGoodVectors = true;
  const auto r =
      tcaeRandom(sharedTcae(), topos, perturber, checker, cfg, rng);
  EXPECT_EQ(r.generated, 300);
  EXPECT_LE(r.legal, r.generated);
  EXPECT_LE(static_cast<long>(r.unique.size()), r.legal);
  EXPECT_EQ(static_cast<long>(r.goodVectors.size()), r.legal);
  EXPECT_GT(r.legal, 0);  // a trained TCAE with small noise stays legal
}

TEST(Flows, TcaeRandomGeneratesNewPatterns) {
  dp::Rng rng(10);
  const auto topos = trainingTopologies(60);
  PatternLibrary existing;
  for (const auto& t : topos) existing.add(t);
  const drc::TopologyChecker checker;
  const auto perturber = SensitivityAwarePerturber::uniformNoise(16, 1.0);
  FlowConfig cfg;
  cfg.count = 500;
  const auto r =
      tcaeRandom(sharedTcae(), topos, perturber, checker, cfg, rng);
  int novel = 0;
  for (const auto& p : r.unique.patterns())
    if (!existing.contains(p)) ++novel;
  EXPECT_GT(novel, 0);  // Pr(T_n not in T) is large (paper §III-B1)
}

TEST(Flows, TcaeCombineAccounting) {
  dp::Rng rng(11);
  const auto topos = trainingTopologies(60);
  const drc::TopologyChecker checker;
  CombineConfig cfg;
  cfg.count = 200;
  cfg.arity = 2;
  cfg.poolSize = 10;
  const auto r = tcaeCombine(sharedTcae(), topos, checker, cfg, rng);
  EXPECT_EQ(r.generated, 200);
  EXPECT_LE(static_cast<long>(r.unique.size()), r.legal);
  EXPECT_THROW(tcaeCombine(sharedTcae(), {}, checker, cfg, rng),
               std::invalid_argument);
  cfg.arity = 1;
  EXPECT_THROW(tcaeCombine(sharedTcae(), topos, checker, cfg, rng),
               std::invalid_argument);
}

TEST(Flows, CombineIsLessProductiveThanRandom) {
  // Paper Table II: TCAE-Combine yields far fewer unique patterns than
  // TCAE-Random at equal attempt counts.
  dp::Rng rng(12);
  const auto topos = trainingTopologies(60);
  const drc::TopologyChecker checker;
  FlowConfig rndCfg;
  rndCfg.count = 400;
  CombineConfig cmbCfg;
  cmbCfg.count = 400;
  const auto perturber = SensitivityAwarePerturber::uniformNoise(16, 1.0);
  const auto rnd =
      tcaeRandom(sharedTcae(), topos, perturber, checker, rndCfg, rng);
  const auto cmb = tcaeCombine(sharedTcae(), topos, checker, cmbCfg, rng);
  EXPECT_GT(rnd.unique.size(), cmb.unique.size());
}

TEST(Flows, EvaluateSamplerCountsBatches) {
  dp::Rng rng(13);
  const drc::TopologyChecker checker;
  // A sampler that always emits one fixed legal topology.
  const auto fixed = models::encodeTopology(topo({"#.#"}), 24);
  const auto sampler = [&](int n, dp::Rng&) {
    nn::Tensor batch({n, 1, 24, 24});
    for (int i = 0; i < n; ++i)
      for (int r = 0; r < 24; ++r)
        for (int c = 0; c < 24; ++c)
          batch.at(i, 0, r, c) = fixed.at(0, 0, r, c);
    return batch;
  };
  const auto r = evaluateSampler(sampler, checker, 130, 50, rng);
  EXPECT_EQ(r.generated, 130);
  EXPECT_EQ(r.legal, 130);
  EXPECT_EQ(r.unique.size(), 1u);
  EXPECT_THROW(evaluateSampler(nullptr, checker, 10, 5, rng),
               std::invalid_argument);
}

// ------------------------------------------------------------------ GTCAE

TEST(Gtcae, MassiveFlowRunsWithGanGuide) {
  dp::Rng rng(14);
  const auto topos = trainingTopologies(60);
  const drc::TopologyChecker checker;

  // Stage 1: collect good perturbations.
  const auto perturber = SensitivityAwarePerturber::uniformNoise(16, 0.5);
  FlowConfig stage1;
  stage1.count = 300;
  stage1.collectGoodVectors = true;
  const auto r1 =
      tcaeRandom(sharedTcae(), topos, perturber, checker, stage1, rng);
  ASSERT_GT(r1.goodVectors.size(), 10u);

  // Stage 2: G-TCAE massive generation.
  GtcaeConfig cfg;
  cfg.flow.count = 300;
  cfg.gan.trainSteps = 200;
  cfg.gan.batchSize = 16;
  const auto r2 = gtcaeMassive(sharedTcae(), topos,
                               vectorsToTensor(r1.goodVectors), checker,
                               cfg, rng);
  EXPECT_EQ(r2.generated, 300);
  EXPECT_GT(r2.legal, 0);
}

TEST(Gtcae, MassiveFlowRunsWithVaeGuide) {
  dp::Rng rng(15);
  const auto topos = trainingTopologies(60);
  const drc::TopologyChecker checker;
  const auto perturber = SensitivityAwarePerturber::uniformNoise(16, 0.5);
  FlowConfig stage1;
  stage1.count = 200;
  stage1.collectGoodVectors = true;
  const auto r1 =
      tcaeRandom(sharedTcae(), topos, perturber, checker, stage1, rng);
  ASSERT_GT(r1.goodVectors.size(), 5u);

  GtcaeConfig cfg;
  cfg.guide = GtcaeConfig::Guide::kVae;
  cfg.flow.count = 200;
  cfg.vaeTrainSteps = 200;
  const auto r2 = gtcaeMassive(sharedTcae(), topos,
                               vectorsToTensor(r1.goodVectors), checker,
                               cfg, rng);
  EXPECT_EQ(r2.generated, 200);
}

TEST(Gtcae, MassiveValidatesInputs) {
  dp::Rng rng(16);
  const drc::TopologyChecker checker;
  GtcaeConfig cfg;
  EXPECT_THROW(gtcaeMassive(sharedTcae(), {}, nn::Tensor({1, 16}),
                            checker, cfg, rng),
               std::invalid_argument);
  EXPECT_THROW(gtcaeMassive(sharedTcae(), trainingTopologies(5),
                            nn::Tensor({0, 16}), checker, cfg, rng),
               std::invalid_argument);
}

TEST(Gtcae, DefaultContextBandsPartitionRange) {
  const auto bands = defaultContextBands(6, 12);
  ASSERT_EQ(bands.size(), 3u);
  EXPECT_EQ(bands[0].minCx, 6);
  EXPECT_EQ(bands[2].maxCx, 12);
  // Contiguous, non-overlapping.
  EXPECT_EQ(bands[1].minCx, bands[0].maxCx + 1);
  EXPECT_EQ(bands[2].minCx, bands[1].maxCx + 1);
}

TEST(Gtcae, QuantileBandsCoverRangeAndHoldMass) {
  const auto topos = trainingTopologies(200);
  const auto bands = contextBandsByQuantiles(topos);
  ASSERT_EQ(bands.size(), 3u);
  // Contiguous, ordered, non-overlapping.
  EXPECT_EQ(bands[1].minCx, bands[0].maxCx + 1);
  EXPECT_EQ(bands[2].minCx, bands[1].maxCx + 1);
  EXPECT_LE(bands[0].minCx, bands[0].maxCx);
  // Every band holds a meaningful share of the library.
  long counts[3] = {0, 0, 0};
  for (const auto& t : topos) {
    const int cx = squish::complexityOf(squish::unpad(t)).cx;
    for (int b = 0; b < 3; ++b)
      if (cx >= bands[static_cast<std::size_t>(b)].minCx &&
          cx <= bands[static_cast<std::size_t>(b)].maxCx)
        ++counts[b];
  }
  EXPECT_EQ(counts[0] + counts[1] + counts[2],
            static_cast<long>(topos.size()));
  for (long c : counts) EXPECT_GT(c, 0);
  EXPECT_THROW(contextBandsByQuantiles({}), std::invalid_argument);
}

TEST(Gtcae, QuantileBandsDegenerateSingleValue) {
  // A library where every pattern has the same complexity still yields
  // well-formed (possibly empty) bands.
  std::vector<squish::Topology> topos(
      5, dp::test::topo({"#.#", "...", ".#."}));
  const auto bands = contextBandsByQuantiles(topos);
  ASSERT_EQ(bands.size(), 3u);
  EXPECT_EQ(bands[0].minCx, 3);
  EXPECT_EQ(bands[0].maxCx, 3);
}

TEST(Gtcae, ContextSpecificProducesPerBandResults) {
  dp::Rng rng(17);
  const auto topos = trainingTopologies(80);
  const drc::TopologyChecker checker;
  GtcaeConfig cfg;
  cfg.flow.count = 150;
  cfg.gan.trainSteps = 150;
  cfg.gan.batchSize = 8;
  const auto groups = gtcaeContextSpecific(
      sharedTcae(), topos, checker, defaultContextBands(2, 12), cfg, rng);
  ASSERT_EQ(groups.size(), 3u);
  long totalTraining = 0;
  for (const auto& g : groups) totalTraining += g.trainingCount;
  EXPECT_GT(totalTraining, 0);
  for (const auto& g : groups) {
    if (g.trainingCount >= 2) {
      EXPECT_EQ(g.result.generated, 150);
    }
  }
}

// --------------------------------------------------------------- Pipeline

TEST(Pipeline, MaterializeSolvesLegalPatterns) {
  dp::Rng rng(18);
  const dp::DesignRules rules = dp::euv7nmM2();
  PatternLibrary lib;
  lib.add(topo({"#.#", "...", ".#."}));
  lib.add(topo({".#.", "...", "#.#"}));
  const lp::GeometrySolver solver(rules);
  const drc::GeometryChecker geom(rules);
  const auto m = materialize(lib, solver, geom, rng);
  EXPECT_EQ(m.attempted, 2);
  EXPECT_EQ(m.solved, 2);
  EXPECT_EQ(m.drcClean, 2);
  EXPECT_EQ(m.clips.size(), 2u);
}

TEST(Pipeline, MaterializeHonorsCap) {
  dp::Rng rng(19);
  PatternLibrary lib;
  lib.add(topo({"#.#"}));
  lib.add(topo({"#..#"}));
  lib.add(topo({"#"}));
  const lp::GeometrySolver solver(dp::euv7nmM2());
  const drc::GeometryChecker geom(dp::euv7nmM2());
  const auto m = materialize(lib, solver, geom, rng, 1);
  EXPECT_EQ(m.attempted, 1);
}

TEST(Pipeline, MaterializedClipsExtractBackToTheirTopology) {
  // Full-circle invariant: solving Eq. (10) for a pattern and squishing
  // the resulting clip must give back exactly that pattern (the library
  // stores unpadded canonical topologies whose last row/column carry
  // shapes, so no margins appear on the top/right).
  dp::Rng rng(23);
  const dp::DesignRules rules = dp::euv7nmM2();
  const auto clips = datagen::generateLibrary(datagen::directprintSpec(2),
                                              rules, 40, rng);
  PatternLibrary lib;
  for (const auto& t : datagen::extractTopologies(clips))
    lib.add(squish::unpad(t));
  const lp::GeometrySolver solver(rules);
  const drc::GeometryChecker geom(rules);
  const auto m = materialize(lib, solver, geom, rng);
  EXPECT_EQ(m.solved, m.attempted);
  for (const auto& clip : m.clips) {
    const auto back = squish::extract(clip).topo;
    EXPECT_TRUE(lib.contains(back));
  }
}

TEST(Pipeline, EndToEndSmokeRun) {
  dp::Rng rng(20);
  const dp::DesignRules rules = dp::euv7nmM2();
  const auto clips = datagen::generateLibrary(datagen::directprintSpec(1),
                                              rules, 60, rng);
  PipelineConfig cfg;
  cfg.tcae = tinyTcae();
  cfg.tcae.trainSteps = 120;
  cfg.sensitivity.maxTopologies = 8;
  cfg.sensitivity.sweepSteps = 3;
  cfg.flow.count = 200;
  cfg.maxClips = 50;
  const PipelineResult r = runPipeline(clips, rules, cfg, rng);
  EXPECT_EQ(r.generation.generated, 200);
  EXPECT_EQ(r.sensitivity.size(), 16u);
  EXPECT_LE(r.materialized.drcClean, r.materialized.solved);
  EXPECT_EQ(static_cast<long>(r.materialized.clips.size()),
            r.materialized.drcClean);
  // Every materialized clip is geometry-DRC clean by construction.
  const drc::GeometryChecker geom(rules);
  for (const auto& c : r.materialized.clips) EXPECT_TRUE(geom.isClean(c));
  EXPECT_THROW(runPipeline({}, rules, cfg, rng), std::invalid_argument);
}

}  // namespace
}  // namespace dp::core
