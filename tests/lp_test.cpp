#include <gtest/gtest.h>

#include <numeric>

#include "datagen/generator.hpp"
#include "drc/geometry_rules.hpp"
#include "drc/topology_rules.hpp"
#include "lp/diff_constraints.hpp"
#include "lp/geometry_solver.hpp"
#include "lp/simplex.hpp"
#include "squish/reconstruct.hpp"
#include "testutil.hpp"

namespace dp::lp {
namespace {

using dp::test::topo;

// -------------------------------------------------------------- Simplex

TEST(Simplex, SolvesTextbookMaximization) {
  // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 -> (2, 6), z = 36.
  LinearProgram lp(2);
  lp.setObjective({3, 5});
  lp.addConstraint({1, 0}, Relation::kLessEqual, 4);
  lp.addConstraint({0, 2}, Relation::kLessEqual, 12);
  lp.addConstraint({3, 2}, Relation::kLessEqual, 18);
  const LpResult r = lp.solve();
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r.objective, 36.0, 1e-6);
  EXPECT_NEAR(r.x[0], 2.0, 1e-6);
  EXPECT_NEAR(r.x[1], 6.0, 1e-6);
}

TEST(Simplex, HandlesEqualityConstraints) {
  // max x + y s.t. x + y = 5, x <= 3 -> z = 5.
  LinearProgram lp(2);
  lp.setObjective({1, 1});
  lp.addConstraint({1, 1}, Relation::kEqual, 5);
  lp.addConstraint({1, 0}, Relation::kLessEqual, 3);
  const LpResult r = lp.solve();
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r.objective, 5.0, 1e-6);
  EXPECT_NEAR(r.x[0] + r.x[1], 5.0, 1e-6);
}

TEST(Simplex, HandlesGreaterEqual) {
  // min x (== max -x) s.t. x >= 7.
  LinearProgram lp(1);
  lp.setObjective({-1});
  lp.addConstraint({1}, Relation::kGreaterEqual, 7);
  const LpResult r = lp.solve();
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r.x[0], 7.0, 1e-6);
  EXPECT_NEAR(r.objective, -7.0, 1e-6);
}

TEST(Simplex, DetectsInfeasibility) {
  LinearProgram lp(1);
  lp.setObjective({1});
  lp.addConstraint({1}, Relation::kLessEqual, 1);
  lp.addConstraint({1}, Relation::kGreaterEqual, 2);
  EXPECT_EQ(lp.solve().status, SolveStatus::kInfeasible);
}

TEST(Simplex, DetectsUnboundedness) {
  LinearProgram lp(1);
  lp.setObjective({1});
  lp.addConstraint({-1}, Relation::kLessEqual, 0);  // x >= 0, no upper
  EXPECT_EQ(lp.solve().status, SolveStatus::kUnbounded);
}

TEST(Simplex, NegativeRhsIsNormalized) {
  // x <= -2 with x >= 0 is infeasible; -x <= -2 means x >= 2.
  LinearProgram lp(1);
  lp.setObjective({-1});
  lp.addConstraint({-1}, Relation::kLessEqual, -2);
  const LpResult r = lp.solve();
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r.x[0], 2.0, 1e-6);
}

TEST(Simplex, DegenerateProblemTerminates) {
  // Multiple constraints active at the optimum; Bland's rule must
  // terminate.
  LinearProgram lp(2);
  lp.setObjective({1, 1});
  lp.addConstraint({1, 0}, Relation::kLessEqual, 1);
  lp.addConstraint({0, 1}, Relation::kLessEqual, 1);
  lp.addConstraint({1, 1}, Relation::kLessEqual, 2);
  lp.addConstraint({1, 1}, Relation::kLessEqual, 2);
  const LpResult r = lp.solve();
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r.objective, 2.0, 1e-6);
}

TEST(Simplex, RangeSumConstraintBuilds) {
  LinearProgram lp(4);
  lp.setObjective({1, 1, 1, 1});
  lp.addRangeSumConstraint(1, 2, Relation::kLessEqual, 3);
  lp.addRangeSumConstraint(0, 3, Relation::kLessEqual, 10);
  const LpResult r = lp.solve();
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r.objective, 10.0, 1e-6);
  EXPECT_LE(r.x[1] + r.x[2], 3.0 + 1e-6);
}

TEST(Simplex, ValidatesArguments) {
  EXPECT_THROW(LinearProgram(0), std::invalid_argument);
  LinearProgram lp(2);
  EXPECT_THROW(lp.setObjective({1}), std::invalid_argument);
  EXPECT_THROW(lp.addConstraint({1}, Relation::kEqual, 0),
               std::invalid_argument);
  EXPECT_THROW(lp.addRangeSumConstraint(2, 1, Relation::kEqual, 0),
               std::invalid_argument);
  EXPECT_THROW(lp.addRangeSumConstraint(0, 5, Relation::kEqual, 0),
               std::invalid_argument);
}

/// Property: on random feasible bounded LPs the reported solution
/// satisfies every constraint.
class SimplexProperty : public ::testing::TestWithParam<int> {};

TEST_P(SimplexProperty, SolutionsAreFeasible) {
  dp::Rng rng(static_cast<std::uint64_t>(GetParam()));
  for (int iter = 0; iter < 20; ++iter) {
    const int n = rng.uniformInt(2, 5);
    const int m = rng.uniformInt(1, 6);
    LinearProgram lp(static_cast<std::size_t>(n));
    std::vector<double> c(static_cast<std::size_t>(n));
    for (double& v : c) v = rng.uniform(-1, 1);
    lp.setObjective(c);
    std::vector<std::vector<double>> rows;
    std::vector<double> rhs;
    for (int k = 0; k < m; ++k) {
      std::vector<double> a(static_cast<std::size_t>(n));
      for (double& v : a) v = rng.uniform(0.1, 1.0);
      const double b = rng.uniform(1.0, 10.0);
      lp.addConstraint(a, Relation::kLessEqual, b);
      rows.push_back(a);
      rhs.push_back(b);
    }
    // All-positive coefficients with positive rhs: feasible (x = 0) and
    // bounded above in every direction that matters when c <= 0; to
    // guarantee boundedness add a box constraint.
    lp.addRangeSumConstraint(0, static_cast<std::size_t>(n) - 1,
                             Relation::kLessEqual, 50.0);
    const LpResult r = lp.solve();
    ASSERT_EQ(r.status, SolveStatus::kOptimal);
    for (std::size_t k = 0; k < rows.size(); ++k) {
      double lhs = 0;
      for (int j = 0; j < n; ++j)
        lhs += rows[k][static_cast<std::size_t>(j)] *
               r.x[static_cast<std::size_t>(j)];
      EXPECT_LE(lhs, rhs[k] + 1e-6);
    }
    for (double x : r.x) EXPECT_GE(x, -1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplexProperty,
                         ::testing::Values(11, 22, 33, 44));

// ---------------------------------------------------- DifferenceSystem

TEST(DifferenceSystem, SolvesSimpleChain) {
  DifferenceSystem sys(3);
  sys.addLowerBound(1, 0, 2.0);  // x1 - x0 >= 2
  sys.addLowerBound(2, 1, 3.0);  // x2 - x1 >= 3
  const auto x = sys.solve();
  ASSERT_TRUE(x.has_value());
  EXPECT_GE((*x)[1] - (*x)[0], 2.0 - 1e-9);
  EXPECT_GE((*x)[2] - (*x)[1], 3.0 - 1e-9);
  EXPECT_DOUBLE_EQ((*x)[0], 0.0);  // shifted to x0 = 0
}

TEST(DifferenceSystem, HandlesEqualities) {
  DifferenceSystem sys(2);
  sys.addEquality(1, 0, 5.0);
  const auto x = sys.solve();
  ASSERT_TRUE(x.has_value());
  EXPECT_NEAR((*x)[1] - (*x)[0], 5.0, 1e-9);
}

TEST(DifferenceSystem, DetectsInfeasibleCycle) {
  DifferenceSystem sys(2);
  sys.addLowerBound(1, 0, 3.0);   // x1 - x0 >= 3
  sys.addUpperBound(1, 0, 2.0);   // x1 - x0 <= 2
  EXPECT_FALSE(sys.solve().has_value());
}

TEST(DifferenceSystem, UnconstrainedIsFeasible) {
  DifferenceSystem sys(4);
  EXPECT_TRUE(sys.solve().has_value());
}

TEST(DifferenceSystem, ValidatesIndices) {
  DifferenceSystem sys(2);
  EXPECT_THROW(sys.addUpperBound(2, 0, 1.0), std::out_of_range);
  EXPECT_THROW(DifferenceSystem(0), std::invalid_argument);
}

TEST(DifferenceSystem, MixedSystemMatchesExpectation) {
  // x1-x0 >= 1, x2-x1 >= 1, x2-x0 == 5.
  DifferenceSystem sys(3);
  sys.addLowerBound(1, 0, 1.0);
  sys.addLowerBound(2, 1, 1.0);
  sys.addEquality(2, 0, 5.0);
  const auto x = sys.solve();
  ASSERT_TRUE(x.has_value());
  EXPECT_NEAR((*x)[2] - (*x)[0], 5.0, 1e-9);
  EXPECT_GE((*x)[1] - (*x)[0], 1.0 - 1e-9);
  EXPECT_GE((*x)[2] - (*x)[1], 1.0 - 1e-9);
}

// ------------------------------------------------------ GeometrySolver

/// Verifies all Eq. (10) constraints on a solved pattern.
void expectSatisfiesEq10(const squish::SquishPattern& p,
                         const dp::DesignRules& rules) {
  ASSERT_TRUE(p.isConsistent());
  EXPECT_NEAR(p.width(), rules.clipWidth, 1e-6);
  EXPECT_NEAR(p.height(), rules.clipHeight, 1e-6);
  for (double d : p.dx) EXPECT_GE(d, rules.minSpaceX - 1e-6);
  for (int r = 0; r < p.topo.rows(); ++r) {
    const double expected = p.topo.rowHasShape(r) ? rules.rowHeight() : 0.0;
    if (expected > 0.0) EXPECT_NEAR(p.dy[static_cast<std::size_t>(r)], expected, 1e-6);
    else EXPECT_GE(p.dy[static_cast<std::size_t>(r)], rules.rowHeight() - 1e-6);
  }
}

TEST(GeometrySolver, SolvesSimpleLegalTopology) {
  dp::Rng rng(7);
  const GeometrySolver solver(dp::euv7nmM2());
  const auto p = solver.solve(topo({".....",  //
                                    "#.#.#",  //
                                    "....."}),
                              rng);
  ASSERT_TRUE(p.has_value());
  expectSatisfiesEq10(*p, dp::euv7nmM2());
  // Interior T2T runs respect t_min.
  EXPECT_GE((*p).dx[1], dp::euv7nmM2().minT2T - 1e-6);
  EXPECT_GE((*p).dx[3], dp::euv7nmM2().minT2T - 1e-6);
  // The interior wire respects l_min.
  EXPECT_GE((*p).dx[2], dp::euv7nmM2().minLength - 1e-6);
}

TEST(GeometrySolver, SimplexBackendAlsoSolves) {
  dp::Rng rng(7);
  const GeometrySolver solver(dp::euv7nmM2(),
                              GeometryBackend::kSimplexRandomVertex);
  const auto p = solver.solve(topo({".....",  //
                                    "#.#.#",  //
                                    "....."}),
                              rng);
  ASSERT_TRUE(p.has_value());
  expectSatisfiesEq10(*p, dp::euv7nmM2());
}

TEST(GeometrySolver, RejectsEmptyTopology) {
  dp::Rng rng(7);
  const GeometrySolver solver(dp::euv7nmM2());
  EXPECT_FALSE(solver.solve(squish::Topology(3, 3), rng).has_value());
}

TEST(GeometrySolver, RejectsTooManyRows) {
  dp::Rng rng(7);
  const GeometrySolver solver(dp::euv7nmM2());
  // 13 alternating rows exceed the 12-row window.
  squish::Topology t(13, 1);
  for (int r = 1; r < 13; r += 2) t.set(r, 0, 1);
  EXPECT_FALSE(solver.solve(t, rng).has_value());
}

TEST(GeometrySolver, RejectsSingleAllShapeRow) {
  dp::Rng rng(7);
  const GeometrySolver solver(dp::euv7nmM2());
  // One all-shape row cannot fill the 192nm-high window with one 16nm
  // wire band and no space rows.
  EXPECT_FALSE(solver.solve(topo({"#"}), rng).has_value());
}

TEST(GeometrySolver, ReconstructedClipsPassGeometryDrc) {
  dp::Rng rng(21);
  const dp::DesignRules rules = dp::euv7nmM2();
  const GeometrySolver solver(rules);
  const drc::GeometryChecker checker(rules);
  const auto p = solver.solve(topo({"#.#..",  //
                                    ".....",  //
                                    "..#.#",  //
                                    "....."}),
                              rng);
  ASSERT_TRUE(p.has_value());
  const dp::Clip clip = squish::reconstruct(*p);
  EXPECT_TRUE(checker.isClean(clip)) << checker.check(clip).toString();
}

/// Property: every legal topology extracted from synthetic DRC-clean
/// clips is solvable, and the solved clip passes geometry DRC — for
/// both backends.
class GeometrySolverProperty
    : public ::testing::TestWithParam<std::tuple<int, GeometryBackend>> {};

TEST_P(GeometrySolverProperty, LegalTopologiesMaterializeClean) {
  const auto [seed, backend] = GetParam();
  dp::Rng rng(static_cast<std::uint64_t>(seed));
  const dp::DesignRules rules = dp::euv7nmM2();
  const GeometrySolver solver(rules, backend);
  const drc::GeometryChecker geomChecker(rules);
  const drc::TopologyChecker topoChecker(
      drc::TopologyRuleConfig::fromRules(rules));

  const auto clips = datagen::generateLibrary(
      datagen::directprintSpec(1 + seed % 5), rules, 30, rng);
  int solved = 0;
  for (const auto& t : datagen::extractTopologies(clips)) {
    ASSERT_TRUE(topoChecker.isLegal(t)) << t.toString();
    const auto p = solver.solve(t, rng);
    ASSERT_TRUE(p.has_value()) << t.toString();
    expectSatisfiesEq10(*p, rules);
    const dp::Clip clip = squish::reconstruct(*p);
    EXPECT_TRUE(geomChecker.isClean(clip))
        << geomChecker.check(clip).toString();
    ++solved;
  }
  EXPECT_GT(solved, 0);
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndBackends, GeometrySolverProperty,
    ::testing::Combine(
        ::testing::Values(1, 2, 3, 4, 5),
        ::testing::Values(GeometryBackend::kDifferenceConstraints,
                          GeometryBackend::kSimplexRandomVertex)));

TEST(GeometrySolver, BackendsAgreeOnFeasibility) {
  dp::Rng rng(5);
  const GeometrySolver diff(dp::euv7nmM2(),
                            GeometryBackend::kDifferenceConstraints);
  const GeometrySolver simplex(dp::euv7nmM2(),
                               GeometryBackend::kSimplexRandomVertex);
  const auto topos = {
      topo({"#.#", "...", ".#."}),
      topo({"#"}),
      topo({"#.#.#.#.#.#.#"}),  // cx 13: dx systems may still be feasible
  };
  for (const auto& t : topos) {
    dp::Rng r1 = rng.fork(), r2 = rng.fork();
    EXPECT_EQ(diff.solve(t, r1).has_value(),
              simplex.solve(t, r2).has_value())
        << t.toString();
  }
}

}  // namespace
}  // namespace dp::lp
