#include <gtest/gtest.h>

#include <cstdio>

#include "datagen/generator.hpp"
#include "models/batch.hpp"
#include "models/gan.hpp"
#include "nn/loss.hpp"
#include "models/tcae.hpp"
#include "models/topology_codec.hpp"
#include "models/vae.hpp"
#include "testutil.hpp"

namespace dp::models {
namespace {

using dp::test::topo;

/// Small, fast TCAE configuration for tests.
TcaeConfig tinyTcae() {
  TcaeConfig c;
  c.conv1Channels = 4;
  c.conv2Channels = 8;
  c.hidden = 32;
  c.latentDim = 16;
  c.trainSteps = 150;
  c.batchSize = 8;
  return c;
}

std::vector<squish::Topology> sampleTopologies(int count,
                                               std::uint64_t seed = 42) {
  dp::Rng rng(seed);
  const auto clips = datagen::generateLibrary(datagen::directprintSpec(1),
                                              dp::euv7nmM2(), count, rng);
  return datagen::extractTopologies(clips);
}

// ----------------------------------------------------------------- Codec

TEST(TopologyCodec, EncodePadsToNetworkSize) {
  // topo() rows are written top-first: bottom row (r=0) is ".#".
  const auto t = encodeTopologies({topo({"#.", ".#"})}, 24);
  EXPECT_EQ(t.shape(), (std::vector<int>{1, 1, 24, 24}));
  EXPECT_EQ(t.at(0, 0, 0, 1), 1.0f);
  EXPECT_EQ(t.at(0, 0, 1, 0), 1.0f);
  EXPECT_EQ(t.at(0, 0, 0, 0), 0.0f);
  EXPECT_EQ(t.at(0, 0, 23, 23), 0.0f);
}

TEST(TopologyCodec, DecodeInvertsEncodeModuloPadding) {
  const squish::Topology original = topo({"#.#", ".#."});
  const auto enc = encodeTopology(original, 24);
  const squish::Topology decoded = decodeTopology(enc, 0);
  EXPECT_EQ(squish::unpad(decoded), original);
}

TEST(TopologyCodec, DecodeAppliesThreshold) {
  nn::Tensor t({1, 1, 2, 2});
  t.at(0, 0, 0, 0) = 0.6f;
  t.at(0, 0, 1, 1) = 0.4f;
  const auto d = decodeTopology(t, 0, 0.5f);
  EXPECT_EQ(d.at(0, 0), 1);
  EXPECT_EQ(d.at(1, 1), 0);
}

TEST(TopologyCodec, DecodeAllSamples) {
  nn::Tensor t({3, 1, 4, 4});
  const auto all = decodeTopologies(t);
  EXPECT_EQ(all.size(), 3u);
}

TEST(TopologyCodec, RejectsOversizeAndEmpty) {
  EXPECT_THROW(encodeTopologies({}, 24), std::invalid_argument);
  EXPECT_THROW(encodeTopologies({squish::Topology(30, 30)}, 24),
               std::invalid_argument);
  EXPECT_THROW(decodeTopology(nn::Tensor({2, 3}), 0), std::invalid_argument);
}

// ----------------------------------------------------------------- Batch

TEST(Batch, GatherRowsCopiesSamples) {
  nn::Tensor data({3, 2});
  for (int i = 0; i < 3; ++i)
    for (int j = 0; j < 2; ++j) data.at(i, j) = static_cast<float>(10 * i + j);
  const nn::Tensor picked = gatherRows(data, {2, 0, 2});
  EXPECT_EQ(picked.shape(), (std::vector<int>{3, 2}));
  EXPECT_EQ(picked.at(0, 1), 21.0f);
  EXPECT_EQ(picked.at(1, 0), 0.0f);
  EXPECT_EQ(picked.at(2, 0), 20.0f);
}

TEST(Batch, GatherRowsValidatesIndices) {
  nn::Tensor data({3, 2});
  EXPECT_THROW(gatherRows(data, {3}), std::out_of_range);
  EXPECT_THROW(gatherRows(data, {-1}), std::out_of_range);
}

TEST(Batch, SampleIndicesInRange) {
  dp::Rng rng(1);
  const auto idx = sampleIndices(10, 100, rng);
  EXPECT_EQ(idx.size(), 100u);
  for (int i : idx) {
    EXPECT_GE(i, 0);
    EXPECT_LT(i, 10);
  }
  EXPECT_THROW(sampleIndices(0, 5, rng), std::invalid_argument);
}

// ------------------------------------------------------------------ TCAE

TEST(Tcae, EncodeDecodeShapes) {
  dp::Rng rng(1);
  Tcae tcae(tinyTcae(), rng);
  const nn::Tensor x = nn::Tensor::zeros({3, 1, 24, 24});
  const nn::Tensor l = tcae.encode(x);
  EXPECT_EQ(l.shape(), (std::vector<int>{3, 16}));
  const nn::Tensor y = tcae.decode(l);
  EXPECT_EQ(y.shape(), (std::vector<int>{3, 1, 24, 24}));
  // Sigmoid output in [0, 1].
  for (std::size_t i = 0; i < y.numel(); ++i) {
    EXPECT_GE(y[i], 0.0f);
    EXPECT_LE(y[i], 1.0f);
  }
}

TEST(Tcae, RejectsBadConfigAndData) {
  dp::Rng rng(1);
  TcaeConfig bad = tinyTcae();
  bad.inputSize = 23;
  EXPECT_THROW(Tcae(bad, rng), std::invalid_argument);
  Tcae tcae(tinyTcae(), rng);
  EXPECT_THROW(tcae.train({}, rng), std::invalid_argument);
}

TEST(Tcae, TrainingReducesReconstructionLoss) {
  dp::Rng rng(2);
  const auto data = sampleTopologies(60);
  ASSERT_GE(data.size(), 30u);
  Tcae tcae(tinyTcae(), rng);

  // Loss before training.
  const nn::Tensor batch = encodeTopologies(
      {data.begin(), data.begin() + 16}, 24);
  nn::Tensor grad;
  const double before = nn::mseLoss(tcae.reconstruct(batch), batch, grad);
  const TrainStats stats = tcae.train(data, rng);
  const double after = nn::mseLoss(tcae.reconstruct(batch), batch, grad);
  EXPECT_EQ(stats.steps, tinyTcae().trainSteps);
  EXPECT_LT(after, before * 0.8);
}

TEST(Tcae, OverfitsTinySetNearIdentity) {
  dp::Rng rng(3);
  auto data = sampleTopologies(80);
  data.resize(8);
  TcaeConfig cfg = tinyTcae();
  cfg.trainSteps = 2000;
  cfg.batchSize = 8;
  Tcae tcae(cfg, rng);
  tcae.train(data, rng);
  // Binarized reconstructions should be within a handful of pixels of
  // the training topologies (24x24 = 576 cells each).
  const nn::Tensor x = encodeTopologies(data, 24);
  const auto recon = decodeTopologies(tcae.reconstruct(x));
  long wrong = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    const auto padded = squish::padTo(data[i], 24, 24);
    for (int r = 0; r < 24; ++r)
      for (int c = 0; c < 24; ++c)
        if (padded.at(r, c) != recon[i].at(r, c)) ++wrong;
  }
  EXPECT_LT(static_cast<double>(wrong) / static_cast<double>(data.size()),
            8.0);
}

TEST(Tcae, LossTraceIsRecordedAndImproves) {
  dp::Rng rng(6);
  const auto data = sampleTopologies(40);
  TcaeConfig cfg = tinyTcae();
  cfg.trainSteps = 300;
  Tcae tcae(cfg, rng);
  const TrainStats stats = tcae.train(data, rng);
  ASSERT_EQ(stats.lossEvery100.size(), 3u);  // steps 0, 100, 200
  EXPECT_LT(stats.lossEvery100.back(), stats.lossEvery100.front());
  EXPECT_GT(stats.finalLoss, 0.0);
}

TEST(Gan, TrainReportsStats) {
  dp::Rng rng(7);
  Gan gan = makeMlpGan(4, rng, 2, 16);
  nn::Tensor data({64, 4});
  for (std::size_t i = 0; i < data.numel(); ++i)
    data[i] = static_cast<float>(rng.gaussian(1.0, 0.2));
  GanConfig cfg;
  cfg.trainSteps = 50;
  cfg.batchSize = 16;
  const GanStats stats = gan.train(data, cfg, rng);
  EXPECT_EQ(stats.steps, 50);
  EXPECT_GT(stats.finalDiscLoss, 0.0);
  EXPECT_GT(stats.finalGenLoss, 0.0);
}

TEST(Tcae, SaveLoadRoundTrip) {
  dp::Rng rng(4);
  Tcae a(tinyTcae(), rng);
  Tcae b(tinyTcae(), rng);  // different init
  const std::string path = ::testing::TempDir() + "/tcae.bin";
  a.save(path);
  b.load(path);
  const nn::Tensor x = nn::Tensor::randn({2, 1, 24, 24}, rng);
  EXPECT_EQ(a.reconstruct(x), b.reconstruct(x));
  std::remove(path.c_str());
}

TEST(Tcae, ParameterCountMatchesArchitecture) {
  dp::Rng rng(5);
  Tcae tcae(tinyTcae(), rng);
  EXPECT_GT(tcae.parameterCount(), 1000u);
  EXPECT_EQ(tcae.params().size(), 16u);  // 8 layers with W+b
}

// ------------------------------------------------------------------- GAN

TEST(Gan, MlpGanSampleShape) {
  dp::Rng rng(1);
  Gan gan = makeMlpGan(32, rng);
  const nn::Tensor s = gan.sample(5, rng);
  EXPECT_EQ(s.shape(), (std::vector<int>{5, 32}));
}

TEST(Gan, LearnsShiftedGaussian) {
  // Train on N(3, 0.5) 8-d vectors; generator samples must move toward
  // the data mean.
  dp::Rng rng(2);
  const int dim = 8;
  nn::Tensor data({512, dim});
  for (std::size_t i = 0; i < data.numel(); ++i)
    data[i] = static_cast<float>(rng.gaussian(3.0, 0.5));
  Gan gan = makeMlpGan(dim, rng, 4, 32);
  GanConfig cfg;
  cfg.trainSteps = 800;
  cfg.batchSize = 32;
  gan.train(data, cfg, rng);
  const nn::Tensor s = gan.sample(256, rng);
  EXPECT_NEAR(s.mean(), 3.0, 1.0);
}

TEST(Gan, TrainRejectsEmptyData) {
  dp::Rng rng(1);
  Gan gan = makeMlpGan(8, rng);
  EXPECT_THROW(gan.train(nn::Tensor({0, 8}), GanConfig{}, rng),
               std::invalid_argument);
}

TEST(Gan, DcganShapes) {
  dp::Rng rng(3);
  Gan gan = makeDcgan(rng, 24, 32);
  const nn::Tensor s = gan.sample(2, rng);
  EXPECT_EQ(s.shape(), (std::vector<int>{2, 1, 24, 24}));
  for (std::size_t i = 0; i < s.numel(); ++i) {
    EXPECT_GE(s[i], 0.0f);
    EXPECT_LE(s[i], 1.0f);
  }
  EXPECT_THROW(makeDcgan(rng, 23), std::invalid_argument);
}

// ------------------------------------------------------------------- VAE

TEST(Vae, TopologyBackboneShapes) {
  dp::Rng rng(1);
  VaeConfig cfg;
  cfg.backbone = VaeConfig::Backbone::kTopology;
  cfg.conv1Channels = 4;
  cfg.conv2Channels = 8;
  cfg.hidden = 32;
  cfg.latentDim = 8;
  Vae vae(cfg, rng);
  const nn::Tensor x = nn::Tensor::zeros({2, 1, 24, 24});
  const VaeForward f = vae.encode(x);
  EXPECT_EQ(f.mu.shape(), (std::vector<int>{2, 8}));
  EXPECT_EQ(f.logVar.shape(), (std::vector<int>{2, 8}));
  const nn::Tensor s = vae.sample(3, rng);
  EXPECT_EQ(s.shape(), (std::vector<int>{3, 1, 24, 24}));
}

TEST(Vae, VectorBackboneTrainsAndSamples) {
  dp::Rng rng(2);
  VaeConfig cfg;
  cfg.backbone = VaeConfig::Backbone::kVector;
  cfg.inputDim = 8;
  cfg.latentDim = 4;
  cfg.hidden = 32;
  cfg.trainSteps = 800;
  cfg.batchSize = 32;
  Vae vae(cfg, rng);
  nn::Tensor data({256, 8});
  for (std::size_t i = 0; i < data.numel(); ++i)
    data[i] = static_cast<float>(rng.gaussian(-2.0, 0.3));
  vae.train(data, rng);
  // Prior samples must decode toward the data distribution (mean -2,
  // far from the decoder's untrained output around 0).
  const nn::Tensor s = vae.sample(128, rng);
  EXPECT_EQ(s.shape(), (std::vector<int>{128, 8}));
  EXPECT_LT(s.mean(), -1.0);
  EXPECT_GT(s.mean(), -3.0);
}

TEST(Vae, TrainingReducesLossOnTopologies) {
  dp::Rng rng(3);
  const auto data = sampleTopologies(40);
  VaeConfig cfg;
  cfg.backbone = VaeConfig::Backbone::kTopology;
  cfg.conv1Channels = 4;
  cfg.conv2Channels = 8;
  cfg.hidden = 32;
  cfg.latentDim = 8;
  cfg.trainSteps = 60;
  cfg.batchSize = 8;
  Vae vae(cfg, rng);
  const double final = vae.train(encodeTopologies(data, 24), rng);
  EXPECT_LT(final, 0.5);  // well below the trivial all-0.5 loss
  EXPECT_TRUE(std::isfinite(final));
}

TEST(Vae, RejectsBadConfig) {
  dp::Rng rng(1);
  VaeConfig cfg;
  cfg.inputSize = 22;
  EXPECT_THROW(Vae(cfg, rng), std::invalid_argument);
}

}  // namespace
}  // namespace dp::models
