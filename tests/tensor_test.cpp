#include <gtest/gtest.h>

#include "tensor/gemm.hpp"
#include "tensor/im2col.hpp"
#include "tensor/tensor.hpp"

namespace dp::nn {
namespace {

// --------------------------------------------------------------- Tensor

TEST(Tensor, ConstructionZeroInitializes) {
  Tensor t({2, 3});
  EXPECT_EQ(t.numel(), 6u);
  EXPECT_EQ(t.dim(), 2);
  EXPECT_EQ(t.size(0), 2);
  EXPECT_EQ(t.size(1), 3);
  for (std::size_t i = 0; i < t.numel(); ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(Tensor, FactoryHelpers) {
  EXPECT_EQ(Tensor::full({2}, 3.0f)[1], 3.0f);
  dp::Rng rng(1);
  const Tensor r = Tensor::randn({1000}, rng, 2.0);
  EXPECT_NEAR(r.mean(), 0.0, 0.25);
  const Tensor u = Tensor::uniform({1000}, rng, -1.0, 1.0);
  EXPECT_LE(u.absMax(), 1.0);
}

TEST(Tensor, IndexedAccess) {
  Tensor t({2, 3});
  t.at(1, 2) = 5.0f;
  EXPECT_EQ(t[5], 5.0f);
  Tensor q({2, 3, 4, 5});
  q.at(1, 2, 3, 4) = 7.0f;
  EXPECT_EQ(q[1 * 60 + 2 * 20 + 3 * 5 + 4], 7.0f);
}

TEST(Tensor, AccessValidation) {
  Tensor t({2, 3});
  EXPECT_THROW((void)t.at(0, 0, 0, 0), std::logic_error);
  EXPECT_THROW((void)t.size(5), std::out_of_range);
  Tensor q({1, 1, 2, 2});
  EXPECT_THROW((void)q.at(0, 0), std::logic_error);
}

TEST(Tensor, ReshapedPreservesData) {
  Tensor t({2, 3});
  t.at(1, 2) = 9.0f;
  const Tensor r = t.reshaped({3, 2});
  EXPECT_EQ(r.at(2, 1), 9.0f);
  EXPECT_THROW(t.reshaped({4, 2}), std::invalid_argument);
}

TEST(Tensor, ElementwiseOps) {
  Tensor a = Tensor::full({3}, 2.0f);
  Tensor b = Tensor::full({3}, 3.0f);
  a += b;
  EXPECT_EQ(a[0], 5.0f);
  a -= b;
  EXPECT_EQ(a[1], 2.0f);
  a *= 4.0f;
  EXPECT_EQ(a[2], 8.0f);
  EXPECT_THROW(a += Tensor({4}), std::invalid_argument);
}

TEST(Tensor, Reductions) {
  Tensor t({4});
  t[0] = 1;
  t[1] = -5;
  t[2] = 2;
  t[3] = 2;
  EXPECT_DOUBLE_EQ(t.sum(), 0.0);
  EXPECT_DOUBLE_EQ(t.mean(), 0.0);
  EXPECT_DOUBLE_EQ(t.absMax(), 5.0);
  EXPECT_EQ(t.shapeString(), "(4)");
}

TEST(Tensor, NegativeDimensionThrows) {
  EXPECT_THROW(Tensor({2, -1}), std::invalid_argument);
}

// ----------------------------------------------------------------- GEMM

/// Reference triple loop for arbitrary transposes.
void refGemm(bool ta, bool tb, int m, int n, int k, float alpha,
             const std::vector<float>& a, int lda,
             const std::vector<float>& b, int ldb, float beta,
             std::vector<float>& c, int ldc) {
  for (int i = 0; i < m; ++i)
    for (int j = 0; j < n; ++j) {
      double acc = 0.0;
      for (int p = 0; p < k; ++p) {
        const float av = ta ? a[static_cast<std::size_t>(p * lda + i)]
                            : a[static_cast<std::size_t>(i * lda + p)];
        const float bv = tb ? b[static_cast<std::size_t>(j * ldb + p)]
                            : b[static_cast<std::size_t>(p * ldb + j)];
        acc += static_cast<double>(av) * bv;
      }
      auto& cv = c[static_cast<std::size_t>(i * ldc + j)];
      cv = static_cast<float>(alpha * acc + beta * cv);
    }
}

class GemmTest
    : public ::testing::TestWithParam<std::tuple<bool, bool, int>> {};

TEST_P(GemmTest, MatchesReferenceImplementation) {
  const auto [ta, tb, seed] = GetParam();
  dp::Rng rng(static_cast<std::uint64_t>(seed));
  for (int iter = 0; iter < 10; ++iter) {
    const int m = rng.uniformInt(1, 8);
    const int n = rng.uniformInt(1, 8);
    const int k = rng.uniformInt(1, 8);
    const int lda = ta ? m : k;
    const int ldb = tb ? k : n;
    std::vector<float> a(static_cast<std::size_t>((ta ? k : m) * lda));
    std::vector<float> b(static_cast<std::size_t>((tb ? n : k) * ldb));
    std::vector<float> c(static_cast<std::size_t>(m * n));
    for (auto& v : a) v = static_cast<float>(rng.uniform(-1, 1));
    for (auto& v : b) v = static_cast<float>(rng.uniform(-1, 1));
    for (auto& v : c) v = static_cast<float>(rng.uniform(-1, 1));
    const float alpha = static_cast<float>(rng.uniform(-2, 2));
    const float beta = static_cast<float>(rng.uniform(-2, 2));

    std::vector<float> expected = c;
    refGemm(ta, tb, m, n, k, alpha, a, lda, b, ldb, beta, expected, n);
    gemm(ta, tb, m, n, k, alpha, a.data(), lda, b.data(), ldb, beta,
         c.data(), n);
    for (std::size_t i = 0; i < c.size(); ++i)
      EXPECT_NEAR(c[i], expected[i], 1e-4);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllTransposes, GemmTest,
    ::testing::Combine(::testing::Bool(), ::testing::Bool(),
                       ::testing::Values(1, 2, 3)));

TEST(Gemm, ZeroSizesAreNoops) {
  std::vector<float> c(4, 1.0f);
  gemm(false, false, 0, 0, 0, 1.0f, nullptr, 1, nullptr, 1, 1.0f, c.data(),
       2);
  EXPECT_EQ(c[0], 1.0f);
}

TEST(Gemm, BetaZeroOverwritesC) {
  std::vector<float> a{1, 2}, b{3, 4}, c{99};
  gemm(false, false, 1, 1, 2, 1.0f, a.data(), 2, b.data(), 1, 0.0f,
       c.data(), 1);
  // Small-integer dot product is exact in float — no tolerance needed.
  EXPECT_EQ(c[0], 11.0f);
}

// --------------------------------------------------------------- im2col

TEST(Im2col, IdentityKernelCopiesImage) {
  ConvGeom g{1, 3, 3, 1, 1, 0};
  std::vector<float> img{1, 2, 3, 4, 5, 6, 7, 8, 9};
  std::vector<float> cols(static_cast<std::size_t>(g.colRows() * g.colCols()));
  im2col(g, img.data(), cols.data());
  EXPECT_EQ(cols, img);
}

TEST(Im2col, GeometryDerivedQuantities) {
  ConvGeom g{3, 24, 24, 3, 2, 1};
  EXPECT_EQ(g.outHeight(), 12);
  EXPECT_EQ(g.outWidth(), 12);
  EXPECT_EQ(g.colRows(), 27);
  EXPECT_EQ(g.colCols(), 144);
}

TEST(Im2col, PaddingYieldsZeros) {
  ConvGeom g{1, 2, 2, 3, 1, 1};
  std::vector<float> img{1, 2, 3, 4};
  std::vector<float> cols(static_cast<std::size_t>(g.colRows() * g.colCols()));
  im2col(g, img.data(), cols.data());
  // kernel position (0,0) at output (0,0) reads image (-1,-1) -> 0.
  EXPECT_EQ(cols[0], 0.0f);
  // center kernel tap at output (0,0) reads image (0,0) -> 1.
  const int centerRow = 4;  // kh=1, kw=1
  EXPECT_EQ(cols[static_cast<std::size_t>(centerRow * g.colCols())], 1.0f);
}

/// Adjointness: <im2col(x), C> == <x, col2im(C)> for random x, C —
/// the property conv/deconv backward correctness rests on.
class Im2colAdjointTest : public ::testing::TestWithParam<int> {};

TEST_P(Im2colAdjointTest, Im2colAndCol2imAreAdjoint) {
  dp::Rng rng(static_cast<std::uint64_t>(GetParam()));
  for (int iter = 0; iter < 10; ++iter) {
    ConvGeom g;
    g.channels = rng.uniformInt(1, 3);
    g.height = rng.uniformInt(3, 8);
    g.width = rng.uniformInt(3, 8);
    g.kernel = rng.uniformInt(1, 3);
    g.stride = rng.uniformInt(1, 2);
    g.pad = rng.uniformInt(0, 1);
    if (g.outHeight() <= 0 || g.outWidth() <= 0) continue;

    const std::size_t imgN =
        static_cast<std::size_t>(g.channels * g.height * g.width);
    const std::size_t colN =
        static_cast<std::size_t>(g.colRows() * g.colCols());
    std::vector<float> x(imgN), c(colN), xc(colN), cx(imgN);
    for (auto& v : x) v = static_cast<float>(rng.uniform(-1, 1));
    for (auto& v : c) v = static_cast<float>(rng.uniform(-1, 1));
    im2col(g, x.data(), xc.data());
    col2im(g, c.data(), cx.data());
    double lhs = 0, rhs = 0;
    for (std::size_t i = 0; i < colN; ++i) lhs += static_cast<double>(xc[i]) * c[i];
    for (std::size_t i = 0; i < imgN; ++i) rhs += static_cast<double>(x[i]) * cx[i];
    EXPECT_NEAR(lhs, rhs, 1e-3);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Im2colAdjointTest,
                         ::testing::Values(7, 8, 9, 10));

}  // namespace
}  // namespace dp::nn
