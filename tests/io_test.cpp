#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "io/ascii_art.hpp"
#include "io/csv.hpp"
#include "io/gdsii.hpp"
#include "io/heatmap.hpp"
#include "io/layout_text.hpp"
#include "io/table.hpp"
#include "testutil.hpp"

namespace dp::io {
namespace {

using dp::test::topo;

TEST(AsciiArt, RenderTopologyMatchesToString) {
  const auto t = topo({"#.", ".#"});
  EXPECT_EQ(renderTopology(t), "#.\n.#\n");
}

TEST(AsciiArt, RenderTopologyRowAlignsColumns) {
  const auto a = topo({"#.", ".#"});
  const auto b = topo({"###"});
  const std::string out = renderTopologyRow({a, b}, 2);
  // Two lines; the single-row topology is blank-padded on the top line.
  EXPECT_EQ(out, "#.     \n.#  ###\n");
}

TEST(AsciiArt, RenderTopologyRowEmpty) {
  EXPECT_EQ(renderTopologyRow({}), "");
}

TEST(AsciiArt, RenderClipRasterizes) {
  dp::Clip c(dp::Rect{0, 0, 16, 16});
  c.addShape(dp::Rect{0, 0, 8, 8});
  const std::string out = renderClip(c, 8.0);
  EXPECT_EQ(out, "..\n#.\n");
}

TEST(Table, FormatsAlignedColumns) {
  Table t({"name", "value"});
  t.addRow({"alpha", "1"});
  t.addRow({"b", "22222"});
  const std::string s = t.toString();
  EXPECT_NE(s.find("| name  | value |"), std::string::npos);
  EXPECT_NE(s.find("| alpha | 1     |"), std::string::npos);
  EXPECT_NE(s.find("|-------|-------|"), std::string::npos);
}

TEST(Table, NumFormatsPrecision) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(2.0, 0), "2");
}

TEST(Table, ValidatesColumns) {
  EXPECT_THROW(Table({}), std::invalid_argument);
  Table t({"a"});
  EXPECT_THROW(t.addRow({"x", "y"}), std::invalid_argument);
}

TEST(Csv, EscapesSpecialCharacters) {
  CsvWriter w({"a", "b"});
  w.addRow({"plain", "has,comma"});
  w.addRow({"has\"quote", "multi\nline"});
  const std::string s = w.toString();
  EXPECT_NE(s.find("plain,\"has,comma\""), std::string::npos);
  EXPECT_NE(s.find("\"has\"\"quote\""), std::string::npos);
}

TEST(Csv, WriteFileRoundTrip) {
  CsvWriter w({"x"});
  w.addRow({"1"});
  const std::string path = ::testing::TempDir() + "/t.csv";
  w.writeFile(path);
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "x");
  std::remove(path.c_str());
}

TEST(Heatmap, RendersLogScaledCells) {
  const std::vector<std::vector<double>> counts{{0.0, 1.0},
                                                {10.0, 1000.0}};
  const std::string s = renderHeatmap(counts);
  EXPECT_NE(s.find("cy ^"), std::string::npos);
  EXPECT_NE(s.find("> cx"), std::string::npos);
  EXPECT_NE(s.find('.'), std::string::npos);   // zero cell
  EXPECT_NE(s.find('#'), std::string::npos);   // max cell
}

TEST(LayoutText, RoundTripsClips) {
  dp::Clip a(dp::Rect{0, 0, 192, 192});
  a.addShape(dp::Rect{0, 16, 100, 32});
  a.addShape(dp::Rect{120, 48, 192, 64});
  dp::Clip b(dp::Rect{10, 10, 20, 20});
  std::ostringstream os;
  writeClips(os, {a, b});
  std::istringstream is(os.str());
  const auto back = readClips(is);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0], a);
  EXPECT_EQ(back[1], b);
}

TEST(LayoutText, FileRoundTrip) {
  dp::Clip a(dp::Rect{0, 0, 10, 10});
  a.addShape(dp::Rect{1, 1, 5, 5});
  const std::string path = ::testing::TempDir() + "/clips.txt";
  writeClipsFile(path, {a});
  const auto back = readClipsFile(path);
  ASSERT_EQ(back.size(), 1u);
  EXPECT_EQ(back[0], a);
  std::remove(path.c_str());
}

TEST(LayoutText, RejectsMalformedInput) {
  {
    std::istringstream is("garbage 1 2 3");
    EXPECT_THROW(readClips(is), std::runtime_error);
  }
  {
    std::istringstream is("rect 0 0 1 1");
    EXPECT_THROW(readClips(is), std::runtime_error);  // rect before clip
  }
  {
    std::istringstream is("frob 0 0 1 1\n");
    EXPECT_THROW(readClips(is), std::runtime_error);
  }
  EXPECT_THROW(readClipsFile("/nonexistent/clips.txt"),
               std::runtime_error);
}

TEST(Gdsii, RoundTripsClips) {
  dp::Clip a(dp::Rect{0, 0, 192, 192});
  a.addShape(dp::Rect{0, 16, 100, 32});
  a.addShape(dp::Rect{120, 48, 192, 64});
  dp::Clip b(dp::Rect{10, 10, 80, 90});
  b.addShape(dp::Rect{20, 26, 60, 42});
  std::ostringstream os(std::ios::binary);
  writeGdsii(os, {a, b});
  std::istringstream is(os.str(), std::ios::binary);
  const auto back = readGdsii(is);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0], a);
  EXPECT_EQ(back[1], b);
}

TEST(Gdsii, EmptyLibraryIsValidStream) {
  std::ostringstream os(std::ios::binary);
  writeGdsii(os, {});
  std::istringstream is(os.str(), std::ios::binary);
  EXPECT_TRUE(readGdsii(is).empty());
}

TEST(Gdsii, FileRoundTripAndOptions) {
  dp::Clip a(dp::Rect{0, 0, 64, 64});
  a.addShape(dp::Rect{8, 16, 40, 32});
  GdsiiOptions opts;
  opts.layer = 7;
  opts.windowLayer = 63;
  const std::string path = ::testing::TempDir() + "/clips.gds";
  writeGdsiiFile(path, {a}, opts);
  const auto back = readGdsiiFile(path, opts);
  ASSERT_EQ(back.size(), 1u);
  EXPECT_EQ(back[0], a);
  // Reading with mismatched layers loses the shapes but keeps windows
  // only if windowLayer matches; with defaults it must throw (no window
  // boundary found on layer 0).
  EXPECT_THROW((void)readGdsiiFile(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Gdsii, SubNanometreUnitsPreserveCoordinates) {
  dp::Clip a(dp::Rect{0, 0, 10.5, 10.5});
  a.addShape(dp::Rect{0.5, 1.5, 4.5, 3.5});
  GdsiiOptions opts;
  opts.dbuPerNm = 2.0;  // 0.5 nm database unit
  std::ostringstream os(std::ios::binary);
  writeGdsii(os, {a}, opts);
  std::istringstream is(os.str(), std::ios::binary);
  const auto back = readGdsii(is, opts);
  ASSERT_EQ(back.size(), 1u);
  EXPECT_EQ(back[0], a);
}

TEST(Gdsii, RejectsTruncatedStream) {
  dp::Clip a(dp::Rect{0, 0, 10, 10});
  std::ostringstream os(std::ios::binary);
  writeGdsii(os, {a});
  const std::string full = os.str();
  std::istringstream is(full.substr(0, full.size() - 6),
                        std::ios::binary);
  EXPECT_THROW((void)readGdsii(is), std::runtime_error);
  EXPECT_THROW((void)readGdsiiFile("/nonexistent/x.gds"),
               std::runtime_error);
}

TEST(LayoutText, IgnoresCommentsAndBlankLines) {
  std::istringstream is("# header\n\nclip 0 0 5 5\n# mid\nrect 1 1 2 2\n");
  const auto clips = readClips(is);
  ASSERT_EQ(clips.size(), 1u);
  EXPECT_EQ(clips[0].shapeCount(), 1u);
}

}  // namespace
}  // namespace dp::io
