// Cross-cutting invariants checked over randomized inputs — properties
// the DESIGN.md architecture relies on but that no single unit test
// pins down.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/thread_pool.hpp"
#include "core/pattern_library.hpp"
#include "core/perturb.hpp"
#include "drc/topology_rules.hpp"
#include "lp/simplex.hpp"
#include "models/batch.hpp"
#include "squish/canonical.hpp"
#include "squish/extract.hpp"
#include "squish/hash.hpp"
#include "squish/pad.hpp"
#include "squish/reconstruct.hpp"
#include "testutil.hpp"

namespace dp {
namespace {

using squish::Topology;

class PropertySeed : public ::testing::TestWithParam<int> {
 protected:
  Rng rng_{static_cast<std::uint64_t>(GetParam())};
};

// ------------------------------------------------ geometry / squish

class AreaPreservation : public PropertySeed {
 protected:
  /// Random clip with pairwise DISJOINT shapes (Clip::shapeArea sums
  /// rectangle areas, so the area identity only holds without overlap).
  Clip disjointClip() {
    Clip clip(Rect{0.0, 0.0, 100.0, 100.0});
    for (int i = 0; i < 6; ++i) {
      const double x0 = rng_.uniform(0.0, 90.0);
      const double y0 = rng_.uniform(0.0, 90.0);
      const Rect r{x0, y0, x0 + rng_.uniform(1.0, 30.0),
                   y0 + rng_.uniform(1.0, 30.0)};
      const Rect clipped = r.intersect(Rect{0, 0, 100, 100});
      bool overlaps = false;
      for (const Rect& s : clip.shapes())
        if (s.overlaps(clipped)) overlaps = true;
      if (!overlaps) clip.addShape(clipped);
    }
    clip.normalize();
    return clip;
  }
};

TEST_P(AreaPreservation, RoundTripPreservesShapeArea) {
  for (int i = 0; i < 20; ++i) {
    const Clip c = disjointClip();
    const auto p = squish::extract(c);
    const Clip back = squish::reconstruct(p);
    EXPECT_NEAR(back.shapeArea(), c.shapeArea(), 1e-6);
    EXPECT_NEAR(back.density(), c.density(), 1e-9);
  }
}

TEST_P(AreaPreservation, DensityMatchesCellSum) {
  for (int i = 0; i < 20; ++i) {
    const Clip c = disjointClip();
    const auto p = squish::extract(c);
    double cellArea = 0.0;
    for (int r = 0; r < p.topo.rows(); ++r)
      for (int col = 0; col < p.topo.cols(); ++col)
        if (p.topo.at(r, col))
          cellArea += p.dy[static_cast<std::size_t>(r)] *
                      p.dx[static_cast<std::size_t>(col)];
    EXPECT_NEAR(cellArea, c.shapeArea(), 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AreaPreservation,
                         ::testing::Values(301, 302, 303));

class NormalizeIdempotence : public PropertySeed {};

TEST_P(NormalizeIdempotence, SecondNormalizeIsNoop) {
  for (int i = 0; i < 30; ++i) {
    Clip c = test::randomClip(rng_);
    c.normalize();
    Clip again = c;
    again.normalize();
    EXPECT_EQ(again, c);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NormalizeIdempotence,
                         ::testing::Values(311, 312));

class CanonicalIdempotence : public PropertySeed {};

TEST_P(CanonicalIdempotence, CanonicalizeIsIdempotentAndCanonical) {
  for (int i = 0; i < 40; ++i) {
    Topology t(rng_.uniformInt(1, 16), rng_.uniformInt(1, 16));
    for (int r = 0; r < t.rows(); ++r)
      for (int c = 0; c < t.cols(); ++c)
        t.set(r, c, rng_.bernoulli(0.35) ? 1 : 0);
    const Topology canon = squish::canonicalize(t);
    EXPECT_TRUE(squish::isCanonical(canon));
    EXPECT_EQ(squish::canonicalize(canon), canon);
    // Ones proportion may change but emptiness must not.
    EXPECT_EQ(canon.onesCount() == 0, t.onesCount() == 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CanonicalIdempotence,
                         ::testing::Values(321, 322, 323));

// ------------------------------------------------------------- DRC

class LegalityInvariance : public PropertySeed {};

TEST_P(LegalityInvariance, LegalityIsCanonicalizationInvariant) {
  const drc::TopologyChecker checker;
  for (int i = 0; i < 40; ++i) {
    Topology t(rng_.uniformInt(1, 10), rng_.uniformInt(1, 10));
    for (int r = 0; r < t.rows(); ++r)
      for (int c = 0; c < t.cols(); ++c)
        t.set(r, c, rng_.bernoulli(0.3) ? 1 : 0);
    EXPECT_EQ(checker.isLegal(t),
              checker.isLegal(squish::canonicalize(t)));
  }
}

TEST_P(LegalityInvariance, PaddingNeverFlipsLegalityOfUnpadded) {
  // Legality of an unpadded topology equals legality of its padded form
  // after unpadding — the identity convention used across the flows.
  const drc::TopologyChecker checker;
  for (int i = 0; i < 40; ++i) {
    Topology t(rng_.uniformInt(1, 10), rng_.uniformInt(1, 10));
    for (int r = 0; r < t.rows(); ++r)
      for (int c = 0; c < t.cols(); ++c)
        t.set(r, c, rng_.bernoulli(0.3) ? 1 : 0);
    const Topology u = squish::unpad(t);
    EXPECT_EQ(checker.isLegal(u),
              checker.isLegal(squish::unpad(squish::padToNetwork(u))));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LegalityInvariance,
                         ::testing::Values(331, 332, 333));

// ------------------------------------------------------------ hashing

TEST(HashProperty, NoCollisionsOverAllSmallTopologies) {
  // Exhaustive: all topologies up to 3x3 (plus all 2x4/4x2) must hash
  // uniquely — topology identity is keyed on these hashes.
  std::set<std::uint64_t> seen;
  long total = 0;
  auto enumerate = [&](int rows, int cols) {
    const int cells = rows * cols;
    for (int mask = 0; mask < (1 << cells); ++mask) {
      Topology t(rows, cols);
      for (int b = 0; b < cells; ++b)
        if (mask & (1 << b)) t.set(b / cols, b % cols, 1);
      const auto h = squish::hashTopology(t);
      EXPECT_TRUE(seen.insert(h).second)
          << rows << "x" << cols << " mask " << mask;
      ++total;
    }
  };
  for (int r = 1; r <= 3; ++r)
    for (int c = 1; c <= 3; ++c) enumerate(r, c);
  enumerate(2, 4);
  enumerate(4, 2);
  EXPECT_GT(total, 1000);
}

// ----------------------------------------------------------- diversity

TEST(DiversityProperty, BoundedByLogOfSupport) {
  Rng rng(341);
  for (int iter = 0; iter < 20; ++iter) {
    std::vector<squish::Complexity> cs;
    const int n = rng.uniformInt(1, 200);
    for (int i = 0; i < n; ++i)
      cs.push_back({rng.uniformInt(1, 6), rng.uniformInt(1, 6)});
    std::set<std::pair<int, int>> support;
    for (const auto& c : cs) support.insert({c.cx, c.cy});
    const double h = core::shannonDiversity(cs);
    EXPECT_GE(h, -1e-9);
    EXPECT_LE(h, std::log2(static_cast<double>(support.size())) + 1e-9);
  }
}

TEST(DiversityProperty, PermutationInvariant) {
  std::vector<squish::Complexity> a{{1, 1}, {2, 2}, {1, 1}, {3, 3}};
  std::vector<squish::Complexity> b{{3, 3}, {1, 1}, {1, 1}, {2, 2}};
  EXPECT_DOUBLE_EQ(core::shannonDiversity(a), core::shannonDiversity(b));
}

// ------------------------------------------------------------- simplex

class SimplexOptimality : public PropertySeed {};

TEST_P(SimplexOptimality, BeatsGridSearchOnRandom2dLps) {
  for (int iter = 0; iter < 15; ++iter) {
    lp::LinearProgram prog(2);
    const double c0 = rng_.uniform(-1, 2), c1 = rng_.uniform(-1, 2);
    prog.setObjective({c0, c1});
    std::vector<std::array<double, 3>> cons;
    for (int k = 0; k < 4; ++k) {
      const double a0 = rng_.uniform(0.1, 1), a1 = rng_.uniform(0.1, 1);
      const double b = rng_.uniform(2, 8);
      prog.addConstraint({a0, a1}, lp::Relation::kLessEqual, b);
      cons.push_back({a0, a1, b});
    }
    const auto res = prog.solve();
    ASSERT_EQ(res.status, lp::SolveStatus::kOptimal);
    // Dense grid over the box [0,12]^2, keeping feasible points.
    double best = 0.0;  // x = 0 is feasible
    for (double x = 0; x <= 12.0; x += 0.125) {
      for (double y = 0; y <= 12.0; y += 0.125) {
        bool ok = true;
        for (const auto& [a0, a1, b] : cons)
          if (a0 * x + a1 * y > b) {
            ok = false;
            break;
          }
        if (ok) best = std::max(best, c0 * x + c1 * y);
      }
    }
    EXPECT_GE(res.objective, best - 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplexOptimality,
                         ::testing::Values(351, 352, 353));

// ----------------------------------------------------------- sampling

TEST(PerturberProperty, DeterministicGivenEqualRngs) {
  const auto p = core::SensitivityAwarePerturber({0.5, 1.0, 2.0});
  Rng a(77), b(77);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(p.sample(a), p.sample(b));
  Rng c(78);
  bool anyDiff = false;
  for (int i = 0; i < 10; ++i)
    if (p.sample(a) != p.sample(c)) anyDiff = true;
  EXPECT_TRUE(anyDiff);
}

TEST(BatchProperty, GatherRowsHandles4dTensors) {
  Rng rng(361);
  const nn::Tensor data = nn::Tensor::randn({5, 2, 3, 3}, rng);
  const nn::Tensor picked = models::gatherRows(data, {4, 0});
  EXPECT_EQ(picked.shape(), (std::vector<int>{2, 2, 3, 3}));
  for (int c = 0; c < 2; ++c)
    for (int h = 0; h < 3; ++h)
      for (int w = 0; w < 3; ++w) {
        EXPECT_EQ(picked.at(0, c, h, w), data.at(4, c, h, w));
        EXPECT_EQ(picked.at(1, c, h, w), data.at(0, c, h, w));
      }
}

// ------------------------------------------------------ pattern library

class LibraryProperty : public PropertySeed {};

TEST_P(LibraryProperty, AddingDuplicatesNeverChangesMetrics) {
  core::PatternLibrary lib;
  std::vector<Topology> topos;
  for (int i = 0; i < 30; ++i) {
    Topology t(rng_.uniformInt(1, 6), rng_.uniformInt(1, 6));
    for (int r = 0; r < t.rows(); ++r)
      for (int c = 0; c < t.cols(); ++c)
        t.set(r, c, rng_.bernoulli(0.4) ? 1 : 0);
    topos.push_back(t);
    lib.add(t);
  }
  const std::size_t size = lib.size();
  const double h = lib.diversity();
  for (const auto& t : topos) EXPECT_FALSE(lib.add(t));
  EXPECT_EQ(lib.size(), size);
  EXPECT_DOUBLE_EQ(lib.diversity(), h);
}

TEST_P(LibraryProperty, MergeIsIdempotentAndCommutativeInSize) {
  core::PatternLibrary a, b;
  for (int i = 0; i < 20; ++i) {
    Topology t(rng_.uniformInt(1, 5), rng_.uniformInt(1, 5));
    for (int r = 0; r < t.rows(); ++r)
      for (int c = 0; c < t.cols(); ++c)
        t.set(r, c, rng_.bernoulli(0.5) ? 1 : 0);
    if (i % 2) a.add(t);
    else b.add(t);
  }
  core::PatternLibrary ab = a;
  ab.merge(b);
  core::PatternLibrary ba = b;
  ba.merge(a);
  EXPECT_EQ(ab.size(), ba.size());
  const std::size_t s = ab.size();
  ab.merge(b);
  EXPECT_EQ(ab.size(), s);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LibraryProperty,
                         ::testing::Values(371, 372, 373));

// The invariance the massive pipeline's dedup rests on (DESIGN.md
// §12): a topology presented with duplicated scan lines — the exact
// redundancy binarized decoder output and zero-padding introduce —
// canonicalizes to the same matrix, hashes identically, and is a
// duplicate to the library.
TEST_P(LibraryProperty, CanonicalHashStableAcrossPresentations) {
  for (int trial = 0; trial < 25; ++trial) {
    Topology t(rng_.uniformInt(1, 6), rng_.uniformInt(1, 6));
    for (int r = 0; r < t.rows(); ++r)
      for (int c = 0; c < t.cols(); ++c)
        t.set(r, c, rng_.bernoulli(0.4) ? 1 : 0);

    // Re-present with each row/column repeated 1–3 times.
    std::vector<int> rowRep(static_cast<std::size_t>(t.rows()));
    std::vector<int> colRep(static_cast<std::size_t>(t.cols()));
    int rows2 = 0;
    int cols2 = 0;
    for (int& n : rowRep) rows2 += n = rng_.uniformInt(1, 3);
    for (int& n : colRep) cols2 += n = rng_.uniformInt(1, 3);
    Topology wide(rows2, cols2);
    int rr = 0;
    for (int r = 0; r < t.rows(); ++r)
      for (int i = 0; i < rowRep[static_cast<std::size_t>(r)]; ++i, ++rr) {
        int cc = 0;
        for (int c = 0; c < t.cols(); ++c)
          for (int j = 0; j < colRep[static_cast<std::size_t>(c)];
               ++j, ++cc)
            wide.set(rr, cc, t.at(r, c));
      }

    const Topology canon = squish::canonicalize(t);
    EXPECT_EQ(squish::canonicalize(wide), canon);
    EXPECT_EQ(squish::hashTopology(squish::canonicalize(wide)),
              squish::hashTopology(canon));
    core::PatternLibrary lib;
    lib.add(t);
    EXPECT_FALSE(lib.add(wide));
    EXPECT_EQ(lib.size(), 1U);
  }
}

// Stronger than size equality: merge commutes on the full enumerated
// pattern list, and re-merging is a no-op on it — the property that
// lets pipeline shards be folded in any grouping.
TEST_P(LibraryProperty, MergeCommutesOnPatternLists) {
  core::PatternLibrary a, b;
  for (int i = 0; i < 40; ++i) {
    Topology t(rng_.uniformInt(1, 5), rng_.uniformInt(1, 5));
    for (int r = 0; r < t.rows(); ++r)
      for (int c = 0; c < t.cols(); ++c)
        t.set(r, c, rng_.bernoulli(0.5) ? 1 : 0);
    if (i % 3 != 0) a.add(t);
    if (i % 3 != 1) b.add(t);  // overlapping membership
  }
  core::PatternLibrary ab = a;
  ab.merge(b);
  core::PatternLibrary ba = b;
  ba.merge(a);
  EXPECT_EQ(ab.patterns(), ba.patterns());
  EXPECT_DOUBLE_EQ(ab.diversity(), ba.diversity());
  const auto before = ab.patterns();
  ab.merge(b);
  ab.merge(a);
  EXPECT_EQ(ab.patterns(), before);
}

// Closed-form Definition-2 diversity: H depends only on the (cx, cy)
// complexity histogram, so hand-built class distributions must hit the
// textbook entropies exactly.
TEST(LibraryDiversity, MatchesClosedForms) {
  // Single pattern: one class, H = 0.
  core::PatternLibrary one;
  one.add(test::topo({"#"}));
  EXPECT_DOUBLE_EQ(one.diversity(), 0.0);

  // Four equally filled classes (1,1), (2,1), (1,2), (2,2): H = 2.
  core::PatternLibrary four;
  four.add(test::topo({"#"}));   // (1,1)
  four.add(test::topo({"#."}));  // (2,1)
  four.add(test::topo({"#", "."}));  // (1,2)
  four.add(test::topo({"#.", ".#"}));  // (2,2)
  EXPECT_DOUBLE_EQ(four.diversity(), 2.0);

  // p = {1/2, 1/4, 1/4}: H = 1.5 bits. Class (2,2) holds two distinct
  // canonical patterns.
  core::PatternLibrary skew;
  skew.add(test::topo({"#.", ".#"}));  // (2,2)
  skew.add(test::topo({".#", "#."}));  // (2,2)
  skew.add(test::topo({"#."}));        // (2,1)
  skew.add(test::topo({"#", "."}));    // (1,2)
  EXPECT_DOUBLE_EQ(skew.diversity(), 1.5);
}

// ------------------------------------------------ rng stream position

/// A mixed draw sequence exercising every distribution the code base
/// uses (each consumes a different number of engine words).
std::vector<double> mixedDraws(Rng& rng, int n) {
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(4 * n));
  for (int i = 0; i < n; ++i) {
    out.push_back(rng.uniform(-3.0, 5.0));
    out.push_back(rng.gaussian(0.0, 2.0));
    out.push_back(static_cast<double>(rng.uniformInt(0, 1000)));
    out.push_back(rng.bernoulli(0.3) ? 1.0 : 0.0);
  }
  return out;
}

class RngStateProperty : public PropertySeed {};

TEST_P(RngStateProperty, StateRoundTripRedrawsBitIdentically) {
  // Capture mid-stream, draw N mixed values, restore, redraw: the
  // replay must be bit-identical — the training checkpoint's RNG
  // resume depends on state() being the COMPLETE stream position.
  (void)mixedDraws(rng_, 7);  // advance to an arbitrary position
  const std::string state = rng_.state();
  const std::vector<double> first = mixedDraws(rng_, 50);
  rng_.setState(state);
  const std::vector<double> replay = mixedDraws(rng_, 50);
  ASSERT_EQ(replay.size(), first.size());
  for (std::size_t i = 0; i < first.size(); ++i)
    EXPECT_EQ(replay[i], first[i]) << i;  // exact, not NEAR

  // The round trip also survives serialization of the state string
  // through a fresh Rng object.
  rng_.setState(state);
  Rng other(1);
  other.setState(rng_.state());
  (void)mixedDraws(rng_, 5);
  const std::vector<double> a = mixedDraws(rng_, 20);
  (void)mixedDraws(other, 5);
  const std::vector<double> b = mixedDraws(other, 20);
  EXPECT_EQ(a, b);
}

TEST_P(RngStateProperty, SetStateRejectsMalformedStrings) {
  EXPECT_THROW(rng_.setState(""), std::invalid_argument);
  EXPECT_THROW(rng_.setState("not an engine state"),
               std::invalid_argument);
}

TEST_P(RngStateProperty, TaskSeedsAreIndependentOfConsumptionOrder) {
  // Parallel flows key worker streams as Rng(taskSeed(base, i)) — the
  // draws of stream i must not depend on how many values other
  // streams consumed before it was constructed (that is what makes
  // DP_THREADS invisible to results).
  const std::uint64_t base = static_cast<std::uint64_t>(GetParam());
  std::vector<std::vector<double>> sequential;
  for (std::uint64_t i = 0; i < 8; ++i) {
    Rng r(taskSeed(base, i));
    sequential.push_back(mixedDraws(r, 10));
  }
  // Reversed construction order with interleaved extra consumption.
  for (std::uint64_t i = 8; i-- > 0;) {
    Rng r(taskSeed(base, i));
    (void)rng_.uniform();  // unrelated stream advances in between
    EXPECT_EQ(mixedDraws(r, 10), sequential[i]) << i;
  }
  // Distinct tasks get distinct streams.
  EXPECT_NE(sequential[0], sequential[1]);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngStateProperty,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace dp
