#include <gtest/gtest.h>

#include "core/pattern_library.hpp"
#include "datagen/generator.hpp"
#include "datagen/library_spec.hpp"
#include "drc/geometry_rules.hpp"
#include "drc/topology_rules.hpp"
#include "squish/complexity.hpp"
#include "squish/extract.hpp"

namespace dp::datagen {
namespace {

TEST(LibrarySpec, AllDirectprintPresetsExist) {
  for (int i = 1; i <= 5; ++i) {
    const LibrarySpec s = directprintSpec(i);
    EXPECT_FALSE(s.name.empty());
    EXPECT_GT(s.gridNm, 0.0);
    EXPECT_GT(s.trackOccupancy, 0.0);
    EXPECT_LE(s.minWireCells, s.maxWireCells);
    EXPECT_LE(s.minGapCells, s.maxGapCells);
  }
  EXPECT_THROW(directprintSpec(0), std::invalid_argument);
  EXPECT_THROW(directprintSpec(6), std::invalid_argument);
}

TEST(LibrarySpec, PresetsAreDistinct) {
  for (int i = 1; i <= 5; ++i)
    for (int j = i + 1; j <= 5; ++j)
      EXPECT_NE(directprintSpec(i), directprintSpec(j));
}

TEST(LibrarySpec, IndustryToolIsCoarse) {
  const LibrarySpec s = industryToolSpec();
  EXPECT_GE(s.gridNm, directprintSpec(1).gridNm);
  EXPECT_GE(s.trackOccupancy, 0.95);
  // Near-constant run lengths are what keep its diversity low.
  EXPECT_LE(s.maxWireCells - s.minWireCells, 1);
  EXPECT_EQ(s.maxGapCells, s.minGapCells);
}

/// Every generated clip must pass the geometry DRC, for every preset.
class GeneratorDrcProperty
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(GeneratorDrcProperty, ClipsAreDrcClean) {
  const auto [specIdx, seed] = GetParam();
  dp::Rng rng(static_cast<std::uint64_t>(seed));
  const dp::DesignRules rules = dp::euv7nmM2();
  const LibrarySpec spec =
      specIdx == 0 ? industryToolSpec() : directprintSpec(specIdx);
  const drc::GeometryChecker geom(rules);
  const drc::TopologyChecker topoChecker(
      drc::TopologyRuleConfig::fromRules(rules));
  const auto clips = generateLibrary(spec, rules, 50, rng);
  EXPECT_EQ(clips.size(), 50u);
  for (const auto& clip : clips) {
    if (clip.empty()) continue;
    EXPECT_TRUE(geom.isClean(clip)) << geom.check(clip).toString();
    const auto topo = squish::extract(clip).topo;
    EXPECT_TRUE(topoChecker.isLegal(topo)) << topo.toString();
    const auto cplx = squish::complexityOfCanonical(topo);
    EXPECT_LE(cplx.cx, rules.maxCx);
    EXPECT_LE(cplx.cy, rules.maxCy);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SpecsAndSeeds, GeneratorDrcProperty,
    ::testing::Combine(::testing::Values(0, 1, 2, 3, 4, 5),
                       ::testing::Values(11, 47)));

TEST(Generator, OccupancyControlsDensity) {
  dp::Rng rng(5);
  const dp::DesignRules rules = dp::euv7nmM2();
  LibrarySpec sparse = directprintSpec(1);
  sparse.trackOccupancy = 0.2;
  LibrarySpec dense = directprintSpec(1);
  dense.trackOccupancy = 1.0;
  double sparseDensity = 0, denseDensity = 0;
  for (int i = 0; i < 40; ++i) {
    sparseDensity += generateClip(sparse, rules, rng).density();
    denseDensity += generateClip(dense, rules, rng).density();
  }
  EXPECT_LT(sparseDensity, denseDensity);
}

TEST(Generator, IndustryToolHasLowerDiversityThanDesigns) {
  // The core premise of the paper's Table II baseline comparison.
  dp::Rng rng(6);
  const dp::DesignRules rules = dp::euv7nmM2();
  core::PatternLibrary industry, designs;
  for (const auto& c :
       generateLibrary(industryToolSpec(), rules, 400, rng))
    if (!c.empty()) industry.add(squish::extract(c).topo);
  for (const auto& c :
       generateLibrary(directprintSpec(1), rules, 400, rng))
    if (!c.empty()) designs.add(squish::extract(c).topo);
  EXPECT_LT(industry.diversity(), designs.diversity());
}

TEST(Generator, ExtractTopologiesSkipsEmptyClips) {
  dp::Rng rng(7);
  LibrarySpec spec = directprintSpec(1);
  spec.trackOccupancy = 0.0;  // all clips empty
  const auto clips = generateLibrary(spec, dp::euv7nmM2(), 5, rng);
  EXPECT_TRUE(extractTopologies(clips).empty());
}

TEST(Generator, RespectsDesignRuleMinimaOverSpec) {
  // A spec requesting runs shorter than the DRC minima must still
  // produce clean clips (the generator clamps to the rules).
  dp::Rng rng(8);
  dp::DesignRules rules = dp::euv7nmM2();
  rules.minLength = 40.0;
  rules.minT2T = 30.0;
  LibrarySpec spec = directprintSpec(2);  // asks for 1-cell (16nm) runs
  const drc::GeometryChecker geom(rules);
  for (int i = 0; i < 20; ++i) {
    const auto clip = generateClip(spec, rules, rng);
    if (clip.empty()) continue;
    EXPECT_TRUE(geom.isClean(clip)) << geom.check(clip).toString();
  }
}

TEST(Generator, ValidatesSpec) {
  dp::Rng rng(9);
  LibrarySpec bad = directprintSpec(1);
  bad.gridNm = 0.0;
  EXPECT_THROW(generateClip(bad, dp::euv7nmM2(), rng),
               std::invalid_argument);
  bad.gridNm = 500.0;  // coarser than the clip
  EXPECT_THROW(generateClip(bad, dp::euv7nmM2(), rng),
               std::invalid_argument);
}

TEST(Generator, TrainingLikeLibraryConcentratesAtHighCy) {
  // Fig. 10(a): the existing designs' cy sits almost entirely at 11-12.
  dp::Rng rng(10);
  const auto clips = generateLibrary(directprintSpec(1), dp::euv7nmM2(),
                                     200, rng);
  int highCy = 0, total = 0;
  for (const auto& t : extractTopologies(clips)) {
    const auto c = squish::complexityOfCanonical(t);
    ++total;
    if (c.cy >= 9) ++highCy;
  }
  ASSERT_GT(total, 0);
  EXPECT_GT(static_cast<double>(highCy) / total, 0.7);
}

}  // namespace
}  // namespace dp::datagen
