/// \file serve_test.cpp
/// The serving subsystem: checkpoint round-trips (bit-identical
/// inference after save/load), loadTensors hardening, the micro-batching
/// pipeline's determinism contract (seeded server responses ==
/// in-process core flow, at any DP_THREADS), backpressure, shutdown
/// drain, and the HTTP front end.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/flows.hpp"
#include "core/guide.hpp"
#include "datagen/generator.hpp"
#include "io/json.hpp"
#include "models/gan.hpp"
#include "models/vae.hpp"
#include "nn/serialize.hpp"
#include "serve/server.hpp"
#include "squish/hash.hpp"
#include "testutil.hpp"

namespace dp {
namespace {

using serve::Bundle;
using serve::BundleBuildConfig;
using serve::BundleSpec;
using serve::GenerateRequest;
using serve::PatternServer;
using test::ScopedDpThreads;
using test::expectTensorsBitEqual;

/// A small trained bundle, built once and shared across tests (the
/// registry only hands out shared_ptr<const Bundle>, so sharing is
/// safe by design).
std::shared_ptr<const Bundle> testBundle(bool guided) {
  // Each variant is lazily built at most once per test process (ctest
  // runs each test in its own process, so keep the builds tiny).
  if (!guided) {
    static const std::shared_ptr<const Bundle> plain = [] {
      Rng rng(11);
      BundleSpec spec;
      spec.name = "tiny";
      spec.tcae.trainSteps = 120;
      spec.sourcePoolSize = 32;
      const auto clips = datagen::generateLibrary(
          datagen::directprintSpec(1), spec.rules, 40, rng);
      return serve::buildBundle(spec, BundleBuildConfig{},
                                datagen::extractTopologies(clips), rng);
    }();
    return plain;
  }
  static const std::shared_ptr<const Bundle> withGuide = [] {
    Rng rng(12);
    BundleSpec spec;
    spec.name = "tiny-guided";
    spec.tcae.trainSteps = 120;
    spec.sourcePoolSize = 32;
    core::GuideConfig gc;
    gc.kind = core::GuideConfig::Kind::kGan;
    gc.gan.trainSteps = 120;
    spec.guide = gc;
    BundleBuildConfig build;
    build.guideCollect.count = 600;
    const auto clips = datagen::generateLibrary(
        datagen::directprintSpec(1), spec.rules, 40, rng);
    return serve::buildBundle(spec, build,
                              datagen::extractTopologies(clips), rng);
  }();
  return withGuide;
}

std::vector<std::uint64_t> sortedHashes(const core::PatternLibrary& lib) {
  std::vector<std::uint64_t> hashes;
  for (const auto& p : lib.patterns())
    hashes.push_back(squish::hashTopology(p));
  std::sort(hashes.begin(), hashes.end());
  return hashes;
}

std::vector<std::uint64_t> hashesFromJson(const std::string& body) {
  const io::Json j = io::Json::parse(body);
  std::vector<std::uint64_t> hashes;
  const io::Json& arr = j.at("patternHashes");
  for (std::size_t i = 0; i < arr.size(); ++i)
    hashes.push_back(arr.at(i).asUint64());
  return hashes;
}

serve::HttpResponse postGenerate(PatternServer& server,
                                 const std::string& body) {
  serve::HttpRequest req;
  req.method = "POST";
  req.target = "/generate";
  req.body = body;
  return server.handle(req);
}

serve::HttpResponse get(PatternServer& server, const std::string& target) {
  serve::HttpRequest req;
  req.method = "GET";
  req.target = target;
  return server.handle(req);
}

// ---------------------------------------------------------------------
// loadTensors hardening (satellite: harden nn::loadParams).

TEST(SerializeHardening, TruncatedFileNamesParameter) {
  Rng rng(1);
  models::TcaeConfig cfg;
  models::Tcae tcae(cfg, rng);
  const test::ScopedTempDir scratch("dp_serve_trunc");
  const std::string path = scratch.file("tcae.bin");
  tcae.save(path);
  const auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size - 17);
  models::Tcae fresh(cfg, rng);
  try {
    fresh.load(path);
    FAIL() << "expected truncation to throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("parameter"), std::string::npos)
        << e.what();
  }
}

TEST(SerializeHardening, TrailingBytesRejected) {
  Rng rng(2);
  models::TcaeConfig cfg;
  models::Tcae tcae(cfg, rng);
  const test::ScopedTempDir scratch("dp_serve_trail");
  const std::string path = scratch.file("tcae.bin");
  tcae.save(path);
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out << "extra";
  }
  models::Tcae fresh(cfg, rng);
  EXPECT_THROW(fresh.load(path), std::runtime_error);
}

TEST(SerializeHardening, ShapeMismatchNamesParameter) {
  Rng rng(3);
  models::TcaeConfig small;
  small.latentDim = 16;
  models::Tcae a(small, rng);
  const test::ScopedTempDir scratch("dp_serve_shape");
  const std::string path = scratch.file("tcae.bin");
  a.save(path);
  models::TcaeConfig big;
  big.latentDim = 32;
  models::Tcae b(big, rng);
  try {
    b.load(path);
    FAIL() << "expected shape mismatch to throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("parameter"), std::string::npos)
        << e.what();
  }
}

// ---------------------------------------------------------------------
// Checkpoint round-trips (satellite: Gan/Vae save/load parity).

TEST(Checkpoint, GanRoundTripBitIdenticalSampling) {
  Rng rng(21);
  const nn::Tensor data = nn::Tensor::randn({96, 8}, rng);
  models::Gan gan = models::makeMlpGan(8, rng, 4, 16);
  models::GanConfig cfg;
  cfg.trainSteps = 60;
  (void)gan.train(data, cfg, rng);
  const test::ScopedTempDir scratch("dp_serve_gan");
  const std::string path = scratch.file("gan.bin");
  gan.save(path);

  Rng rng2(99);  // different stream: loader must not depend on init
  models::Gan fresh = models::makeMlpGan(8, rng2, 4, 16);
  fresh.load(path);

  // Bit-identical sampling — requires the batch-norm running stats to
  // have survived the round trip, not just the parameters.
  Rng sampleA(7);
  Rng sampleB(7);
  expectTensorsBitEqual(gan.sampleInfer(16, sampleA),
                        fresh.sampleInfer(16, sampleB));
}

TEST(Checkpoint, VaeRoundTripBitIdentical) {
  Rng rng(22);
  models::VaeConfig cfg;
  cfg.backbone = models::VaeConfig::Backbone::kVector;
  cfg.inputDim = 8;
  cfg.latentDim = 4;
  cfg.hidden = 16;
  cfg.trainSteps = 60;
  models::Vae vae(cfg, rng);
  const nn::Tensor data = nn::Tensor::randn({96, 8}, rng);
  (void)vae.train(data, rng);
  const test::ScopedTempDir scratch("dp_serve_vae");
  const std::string path = scratch.file("vae.bin");
  vae.save(path);

  Rng rng2(5);
  models::Vae fresh(cfg, rng2);
  fresh.load(path);
  Rng sampleA(3);
  Rng sampleB(3);
  expectTensorsBitEqual(vae.sampleInfer(12, sampleA),
                        fresh.sampleInfer(12, sampleB));
}

TEST(Checkpoint, GuideModelRoundTrip) {
  Rng rng(23);
  core::GuideConfig cfg;
  cfg.dataDim = 8;
  cfg.zDim = 4;
  cfg.hidden = 16;
  cfg.gan.trainSteps = 60;
  core::GuideModel guide(cfg, rng);
  const nn::Tensor data = nn::Tensor::randn({128, 8}, rng);
  guide.train(data, rng);
  const test::ScopedTempDir scratch("dp_serve_guide");
  const std::string path = scratch.file("guide.bin");
  guide.save(path);

  Rng rng2(77);
  core::GuideModel fresh(cfg, rng2);
  fresh.load(path);
  fresh.setMoments(guide.dataMoments(), guide.guideMoments());
  Rng sampleA(9);
  Rng sampleB(9);
  expectTensorsBitEqual(guide.sample(16, sampleA),
                        fresh.sample(16, sampleB));
}

TEST(Checkpoint, BundleRoundTrip) {
  const auto bundle = testBundle(/*guided=*/true);
  const test::ScopedTempDir scratch("dp_serve_bundle");
  const std::string& dir = scratch.path();
  bundle->save(dir);
  const auto loaded = serve::loadBundle(dir);

  EXPECT_EQ(loaded->name(), bundle->name());
  EXPECT_EQ(loaded->version(), bundle->version());
  EXPECT_EQ(loaded->sensitivity(), bundle->sensitivity());
  expectTensorsBitEqual(loaded->sourceLatents(), bundle->sourceLatents());
  ASSERT_NE(loaded->guide(), nullptr);

  // Decode and guided sampling reproduce bit-for-bit.
  Rng lat(4);
  const nn::Tensor z = nn::Tensor::randn(
      {8, bundle->spec().tcae.latentDim}, lat);
  expectTensorsBitEqual(bundle->tcae().decode(z),
                        loaded->tcae().decode(z));
  Rng sampleA(6);
  Rng sampleB(6);
  expectTensorsBitEqual(bundle->guide()->sample(8, sampleA),
                        loaded->guide()->sample(8, sampleB));
}

// ---------------------------------------------------------------------
// Core flow plans: the serve determinism substrate.

TEST(FlowPlans, PlanPathMatchesTcaeRandomAcrossThreadCounts) {
  const auto bundle = testBundle(false);
  const std::uint64_t seed = 42;
  std::vector<std::uint64_t> reference;
  for (const int threads : {1, 4}) {
    ScopedDpThreads scoped(threads);
    Rng rng(seed);
    const core::LatentPlan plan = core::planRandomLatents(
        bundle->sourceLatents(), bundle->perturber(), 96, 32, rng);
    const core::GenerationResult result = core::decodeLatentsAndAccount(
        bundle->tcae(), plan.latents, nullptr, bundle->checker(), 32);
    const auto hashes = sortedHashes(result.unique);
    if (reference.empty())
      reference = hashes;
    else
      EXPECT_EQ(hashes, reference) << "threads=" << threads;
    EXPECT_EQ(result.generated, 96);
  }
  EXPECT_FALSE(reference.empty());
}

TEST(FlowPlans, ArbitraryDecodeSplitPreservesResult) {
  // The batcher decodes plans in coalesced batches of its own choosing;
  // any split must yield the in-process result.
  const auto bundle = testBundle(false);
  Rng rngA(77);
  Rng rngB(77);
  const core::LatentPlan planA = core::planRandomLatents(
      bundle->sourceLatents(), bundle->perturber(), 80, 32, rngA);
  const core::LatentPlan planB = core::planRandomLatents(
      bundle->sourceLatents(), bundle->perturber(), 80, 32, rngB);
  const auto a = core::decodeLatentsAndAccount(
      bundle->tcae(), planA.latents, nullptr, bundle->checker(), 32);
  const auto b = core::decodeLatentsAndAccount(
      bundle->tcae(), planB.latents, nullptr, bundle->checker(), 13);
  EXPECT_EQ(a.generated, b.generated);
  EXPECT_EQ(a.legal, b.legal);
  EXPECT_EQ(sortedHashes(a.unique), sortedHashes(b.unique));
}

// ---------------------------------------------------------------------
// Server: determinism, backpressure, shutdown, routes.

TEST(Serve, SeededRequestMatchesInProcessFlowAtAnyThreadCount) {
  const auto bundle = testBundle(false);
  const std::uint64_t seed = 2019;
  const long count = 96;
  const int batchSize = 32;

  // In-process reference.
  Rng rng(seed);
  const core::LatentPlan plan = core::planRandomLatents(
      bundle->sourceLatents(), bundle->perturber(), count, batchSize, rng);
  const core::GenerationResult reference = core::decodeLatentsAndAccount(
      bundle->tcae(), plan.latents, nullptr, bundle->checker(), batchSize);
  const auto referenceHashes = sortedHashes(reference.unique);

  for (const int threads : {1, 4}) {
    ScopedDpThreads scoped(threads);
    PatternServer server;
    server.registry().add(bundle);
    const auto res = postGenerate(
        server, "{\"bundle\":\"tiny\",\"count\":96,\"batchSize\":32,"
                "\"seed\":2019}");
    ASSERT_EQ(res.status, 200) << res.body;
    EXPECT_EQ(hashesFromJson(res.body), referenceHashes)
        << "threads=" << threads;
    const io::Json j = io::Json::parse(res.body);
    EXPECT_EQ(j.at("generated").asLong(), reference.generated);
    EXPECT_EQ(j.at("legal").asLong(), reference.legal);
    EXPECT_EQ(j.at("unique").asLong(),
              static_cast<long>(reference.unique.size()));
  }
}

TEST(Serve, CoalescedConcurrentRequestsStaySeedDeterministic) {
  // Concurrent requests share decode batches; each response must still
  // equal its own single-request run.
  const auto bundle = testBundle(false);
  PatternServer::Config config;
  config.batcher.decodeBatch = 64;  // force cross-request coalescing
  PatternServer solo;
  solo.registry().add(bundle);
  std::vector<std::vector<std::uint64_t>> referenceHashes;
  for (int i = 0; i < 4; ++i) {
    const auto res = postGenerate(
        solo, "{\"bundle\":\"tiny\",\"count\":64,\"batchSize\":32,"
              "\"seed\":" + std::to_string(100 + i) + "}");
    ASSERT_EQ(res.status, 200);
    referenceHashes.push_back(hashesFromJson(res.body));
  }

  PatternServer server(config);
  server.registry().add(bundle);
  std::vector<std::thread> clients;
  std::vector<std::vector<std::uint64_t>> got(4);
  for (int i = 0; i < 4; ++i)
    clients.emplace_back([&server, &got, i] {
      const auto res = postGenerate(
          server, "{\"bundle\":\"tiny\",\"count\":64,\"batchSize\":32,"
                  "\"seed\":" + std::to_string(100 + i) + "}");
      ASSERT_EQ(res.status, 200);
      got[static_cast<std::size_t>(i)] = hashesFromJson(res.body);
    });
  for (auto& t : clients) t.join();
  for (int i = 0; i < 4; ++i)
    EXPECT_EQ(got[static_cast<std::size_t>(i)],
              referenceHashes[static_cast<std::size_t>(i)])
        << "seed " << 100 + i;
}

TEST(Serve, GuidedAndCombineFlowsMatchInProcessPlans) {
  const auto bundle = testBundle(/*guided=*/true);
  PatternServer server;
  server.registry().add(bundle);

  {
    Rng rng(31);
    const core::LatentPlan plan = core::planCombineLatents(
        bundle->sourceLatents(), 64, 32, 2, rng);
    const auto reference = core::decodeLatentsAndAccount(
        bundle->tcae(), plan.latents, nullptr, bundle->checker(), 32);
    const auto res = postGenerate(
        server, "{\"bundle\":\"tiny-guided\",\"flow\":\"combine\","
                "\"count\":64,\"batchSize\":32,\"seed\":31}");
    ASSERT_EQ(res.status, 200) << res.body;
    EXPECT_EQ(hashesFromJson(res.body), sortedHashes(reference.unique));
  }
  {
    Rng rng(32);
    const nn::Tensor latents = core::planGuidedLatents(
        *bundle->guide(), &bundle->sourceLatents(), 64, 32, rng);
    const auto reference = core::decodeLatentsAndAccount(
        bundle->tcae(), latents, nullptr, bundle->checker(), 32);
    const auto res = postGenerate(
        server, "{\"bundle\":\"tiny-guided\",\"flow\":\"guided\","
                "\"count\":64,\"batchSize\":32,\"seed\":32}");
    ASSERT_EQ(res.status, 200) << res.body;
    EXPECT_EQ(hashesFromJson(res.body), sortedHashes(reference.unique));
  }
}

TEST(Serve, ComplexityWindowFiltersUniqueSet) {
  const auto bundle = testBundle(false);
  PatternServer server;
  server.registry().add(bundle);
  const auto full = postGenerate(
      server, "{\"bundle\":\"tiny\",\"count\":128,\"seed\":5}");
  ASSERT_EQ(full.status, 200);
  const auto windowed = postGenerate(
      server, "{\"bundle\":\"tiny\",\"count\":128,\"seed\":5,"
              "\"minCx\":2,\"maxCx\":6}");
  ASSERT_EQ(windowed.status, 200);

  const io::Json fj = io::Json::parse(full.body);
  const io::Json wj = io::Json::parse(windowed.body);
  EXPECT_EQ(fj.at("unique").asLong(), wj.at("unique").asLong());
  EXPECT_LE(wj.at("uniqueInWindow").asLong(),
            fj.at("uniqueInWindow").asLong());
  // Windowed hashes are a subset of the full set.
  const auto fullHashes = hashesFromJson(full.body);
  for (const auto h : hashesFromJson(windowed.body))
    EXPECT_TRUE(std::binary_search(fullHashes.begin(), fullHashes.end(), h));
}

TEST(Serve, BackpressureRejectsWhenQueueFull) {
  const auto bundle = testBundle(false);
  serve::Metrics metrics;
  serve::BundleRegistry registry;
  registry.add(bundle);
  serve::Batcher::Config config;
  config.queueCapacity = 1;
  config.maxActive = 1;
  serve::Batcher batcher(registry, metrics, config);

  GenerateRequest req;
  req.bundle = "tiny";
  req.count = 256;
  req.seed = 1;
  std::vector<std::future<serve::GenerateResponse>> accepted;
  bool sawQueueFull = false;
  for (int i = 0; i < 50 && !sawQueueFull; ++i) {
    req.seed = static_cast<std::uint64_t>(i + 1);
    auto result = batcher.submit(req);
    if (result.status == serve::SubmitResult::Status::kAccepted)
      accepted.push_back(std::move(result.future));
    else if (result.status == serve::SubmitResult::Status::kQueueFull)
      sawQueueFull = true;
  }
  EXPECT_TRUE(sawQueueFull);
  EXPECT_FALSE(accepted.empty());
  for (auto& f : accepted) EXPECT_EQ(f.get().generated, 256);
}

TEST(Serve, BackpressureMapsTo429WithRetryAfter) {
  const auto bundle = testBundle(false);
  PatternServer::Config config;
  config.batcher.queueCapacity = 1;
  config.batcher.maxActive = 1;
  PatternServer server(config);
  server.registry().add(bundle);

  std::atomic<int> rejected{0};
  std::atomic<int> okCount{0};
  std::vector<std::thread> clients;
  for (int i = 0; i < 12; ++i)
    clients.emplace_back([&server, &rejected, &okCount, i] {
      const auto res = postGenerate(
          server, "{\"bundle\":\"tiny\",\"count\":256,\"seed\":" +
                      std::to_string(i + 1) + "}");
      if (res.status == 429) {
        bool hasRetryAfter = false;
        for (const auto& [name, value] : res.extraHeaders)
          if (name == "Retry-After") hasRetryAfter = true;
        EXPECT_TRUE(hasRetryAfter);
        ++rejected;
      } else {
        EXPECT_EQ(res.status, 200);
        ++okCount;
      }
    });
  for (auto& t : clients) t.join();
  EXPECT_GT(rejected.load(), 0);
  EXPECT_GT(okCount.load(), 0);
}

TEST(Serve, ShutdownDrainsAcceptedRequests) {
  const auto bundle = testBundle(false);
  serve::Metrics metrics;
  serve::BundleRegistry registry;
  registry.add(bundle);
  serve::Batcher::Config config;
  config.queueCapacity = 16;
  serve::Batcher batcher(registry, metrics, config);

  GenerateRequest req;
  req.bundle = "tiny";
  req.count = 128;
  std::vector<std::future<serve::GenerateResponse>> futures;
  for (int i = 0; i < 6; ++i) {
    req.seed = static_cast<std::uint64_t>(i + 1);
    auto result = batcher.submit(req);
    ASSERT_EQ(result.status, serve::SubmitResult::Status::kAccepted);
    futures.push_back(std::move(result.future));
  }
  batcher.stop();  // must drain, not drop
  for (auto& f : futures) EXPECT_EQ(f.get().generated, 128);
  const auto after = batcher.submit(req);
  EXPECT_EQ(after.status, serve::SubmitResult::Status::kShuttingDown);
}

TEST(Serve, RoutesAndErrors) {
  const auto bundle = testBundle(false);
  PatternServer server;
  server.registry().add(bundle);

  // Health machine: a constructed server is starting (503 from
  // /healthz) until marked ready.
  const auto starting = get(server, "/healthz");
  EXPECT_EQ(starting.status, 503);
  EXPECT_NE(starting.body.find("\"starting\""), std::string::npos);
  server.setHealth(PatternServer::Health::kReady);

  const auto health = get(server, "/healthz");
  EXPECT_EQ(health.status, 200);
  EXPECT_NE(health.body.find("\"ready\""), std::string::npos);

  const auto bundles = get(server, "/bundles");
  EXPECT_EQ(bundles.status, 200);
  EXPECT_NE(bundles.body.find("\"tiny\""), std::string::npos);

  EXPECT_EQ(get(server, "/nope").status, 404);
  serve::HttpRequest postHealth;
  postHealth.method = "POST";
  postHealth.target = "/healthz";
  EXPECT_EQ(server.handle(postHealth).status, 405);

  EXPECT_EQ(postGenerate(server, "{not json").status, 400);
  EXPECT_EQ(postGenerate(server, "{\"bundle\":\"missing\"}").status, 400);
  EXPECT_EQ(
      postGenerate(server, "{\"bundle\":\"tiny\",\"flow\":\"warp\"}")
          .status,
      400);
  EXPECT_EQ(
      postGenerate(server, "{\"bundle\":\"tiny\",\"flow\":\"guided\"}")
          .status,
      400);
  EXPECT_EQ(postGenerate(server, "{\"bundle\":\"tiny\",\"count\":0}")
                .status,
            400);

  const auto metricsRes = get(server, "/metrics");
  EXPECT_EQ(metricsRes.status, 200);
  EXPECT_NE(metricsRes.body.find("dp_requests_total"), std::string::npos);
  EXPECT_NE(metricsRes.body.find("dp_queue_depth"), std::string::npos);
  EXPECT_NE(metricsRes.body.find("dp_batch_occupancy"), std::string::npos);
}

TEST(Serve, MaterializeReportsDrcCleanClips) {
  const auto bundle = testBundle(false);
  PatternServer server;
  server.registry().add(bundle);
  const auto res = postGenerate(
      server, "{\"bundle\":\"tiny\",\"count\":96,\"seed\":8,"
              "\"materialize\":true,\"maxClips\":16}");
  ASSERT_EQ(res.status, 200) << res.body;
  const io::Json j = io::Json::parse(res.body);
  const io::Json& mat = j.at("materialize");
  EXPECT_GT(mat.at("attempted").asLong(), 0);
  EXPECT_GE(mat.at("solved").asLong(), mat.at("drcClean").asLong());
  EXPECT_GT(mat.at("drcClean").asLong(), 0);
}

// ---------------------------------------------------------------------
// HTTP over real sockets.

struct HttpReply {
  int status = 0;
  std::string body;
  std::string rawHead;
};

HttpReply httpCall(int port, const std::string& method,
                   const std::string& path, const std::string& body) {
  HttpReply reply;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return reply;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    ::close(fd);
    return reply;
  }
  std::string req = method + " " + path + " HTTP/1.1\r\n";
  req += "Host: 127.0.0.1\r\nConnection: close\r\n";
  req += "Content-Length: " + std::to_string(body.size()) + "\r\n\r\n";
  req += body;
  std::size_t sent = 0;
  while (sent < req.size()) {
    const ssize_t n =
        ::send(fd, req.data() + sent, req.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) break;
    sent += static_cast<std::size_t>(n);
  }
  std::string raw;
  char chunk[4096];
  ssize_t n;
  while ((n = ::recv(fd, chunk, sizeof chunk, 0)) > 0)
    raw.append(chunk, static_cast<std::size_t>(n));
  ::close(fd);
  if (raw.rfind("HTTP/1.1 ", 0) == 0)
    reply.status = std::atoi(raw.c_str() + 9);
  const std::size_t split = raw.find("\r\n\r\n");
  if (split != std::string::npos) {
    reply.rawHead = raw.substr(0, split);
    reply.body = raw.substr(split + 4);
  }
  return reply;
}

TEST(ServeHttp, EphemeralPortEndToEnd) {
  const auto bundle = testBundle(false);
  PatternServer server;  // port 0 -> ephemeral
  server.registry().add(bundle);
  server.start();
  ASSERT_GT(server.port(), 0);

  const HttpReply health = httpCall(server.port(), "GET", "/healthz", "");
  EXPECT_EQ(health.status, 200);

  // Seeded determinism through real sockets, concurrent clients.
  const std::string payload =
      "{\"bundle\":\"tiny\",\"count\":64,\"batchSize\":32,\"seed\":77}";
  std::vector<std::thread> clients;
  std::vector<HttpReply> replies(4);
  for (int i = 0; i < 4; ++i)
    clients.emplace_back([&, i] {
      replies[static_cast<std::size_t>(i)] =
          httpCall(server.port(), "POST", "/generate", payload);
    });
  for (auto& t : clients) t.join();
  ASSERT_EQ(replies[0].status, 200) << replies[0].body;
  const auto expected = hashesFromJson(replies[0].body);
  EXPECT_FALSE(expected.empty());
  for (int i = 1; i < 4; ++i) {
    ASSERT_EQ(replies[static_cast<std::size_t>(i)].status, 200);
    EXPECT_EQ(hashesFromJson(replies[static_cast<std::size_t>(i)].body),
              expected);
  }

  // The metrics endpoint accounts those requests.
  const HttpReply metrics = httpCall(server.port(), "GET", "/metrics", "");
  EXPECT_EQ(metrics.status, 200);
  EXPECT_NE(
      metrics.body.find(
          "dp_requests_total{route=\"/generate\",status=\"200\"}"),
      std::string::npos);
  server.stop();
}

TEST(ServeHttp, CleanShutdownUnderLoad) {
  const auto bundle = testBundle(false);
  PatternServer server;
  server.registry().add(bundle);
  server.start();
  std::vector<std::thread> clients;
  std::atomic<int> done{0};
  for (int i = 0; i < 3; ++i)
    clients.emplace_back([&server, &done, i] {
      (void)httpCall(server.port(), "POST", "/generate",
                     "{\"bundle\":\"tiny\",\"count\":128,\"seed\":" +
                         std::to_string(i + 1) + "}");
      ++done;
    });
  // Stop while clients are likely in flight; accepted work must drain
  // and the join must not hang.
  server.stop();
  for (auto& t : clients) t.join();
  EXPECT_EQ(done.load(), 3);
}

}  // namespace
}  // namespace dp
