// Cross-module integration scenarios: the flows a downstream user would
// actually run, end to end, including file interchange and determinism
// guarantees.

#include <gtest/gtest.h>

#include <cstdio>

#include "core/pipeline.hpp"
#include "datagen/generator.hpp"
#include "drc/geometry_rules.hpp"
#include "io/gdsii.hpp"
#include "io/layout_text.hpp"
#include "models/topology_codec.hpp"
#include "squish/extract.hpp"
#include "squish/pad.hpp"
#include "squish/reconstruct.hpp"
#include "testutil.hpp"

namespace dp {
namespace {

models::TcaeConfig tinyTcae() {
  models::TcaeConfig c;
  c.conv1Channels = 4;
  c.conv2Channels = 8;
  c.hidden = 32;
  c.latentDim = 16;
  c.trainSteps = 200;
  c.batchSize = 8;
  return c;
}

TEST(Integration, LibraryThroughGdsiiThroughPipeline) {
  // Generate -> write GDSII -> read back -> expand -> materialize ->
  // write generated clips -> read back -> every clip DRC-clean and its
  // topology present in the generated unique set.
  dp::Rng rng(51);
  const DesignRules rules = euv7nmM2();
  const auto original = datagen::generateLibrary(
      datagen::directprintSpec(2), rules, 50, rng);

  const std::string libPath = ::testing::TempDir() + "/it_lib.gds";
  io::writeGdsiiFile(libPath, original);
  const auto loaded = io::readGdsiiFile(libPath);
  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t i = 0; i < loaded.size(); ++i)
    EXPECT_EQ(loaded[i], original[i]);

  core::PipelineConfig cfg;
  cfg.tcae = tinyTcae();
  cfg.sensitivity.maxTopologies = 8;
  cfg.sensitivity.sweepSteps = 3;
  cfg.flow.count = 300;
  cfg.maxClips = 40;
  const auto result = core::runPipeline(loaded, rules, cfg, rng);

  const std::string genPath = ::testing::TempDir() + "/it_gen.gds";
  io::writeGdsiiFile(genPath, result.materialized.clips);
  const auto generated = io::readGdsiiFile(genPath);
  ASSERT_EQ(generated.size(), result.materialized.clips.size());

  const drc::GeometryChecker geom(rules);
  for (const auto& clip : generated) {
    EXPECT_TRUE(geom.isClean(clip)) << geom.check(clip).toString();
    EXPECT_TRUE(
        result.generation.unique.contains(squish::extract(clip).topo));
  }
  std::remove(libPath.c_str());
  std::remove(genPath.c_str());
}

TEST(Integration, TextAndGdsiiFormatsAgree) {
  dp::Rng rng(52);
  const auto clips = datagen::generateLibrary(datagen::directprintSpec(3),
                                              euv7nmM2(), 20, rng);
  const std::string txt = ::testing::TempDir() + "/fmt.txt";
  const std::string gds = ::testing::TempDir() + "/fmt.gds";
  io::writeClipsFile(txt, clips);
  io::writeGdsiiFile(gds, clips);
  const auto fromTxt = io::readClipsFile(txt);
  const auto fromGds = io::readGdsiiFile(gds);
  ASSERT_EQ(fromTxt.size(), fromGds.size());
  for (std::size_t i = 0; i < fromTxt.size(); ++i)
    EXPECT_EQ(fromTxt[i], fromGds[i]);
  std::remove(txt.c_str());
  std::remove(gds.c_str());
}

TEST(Integration, PipelineIsDeterministicPerSeed) {
  const DesignRules rules = euv7nmM2();
  core::PipelineConfig cfg;
  cfg.tcae = tinyTcae();
  cfg.sensitivity.maxTopologies = 6;
  cfg.sensitivity.sweepSteps = 3;
  cfg.flow.count = 200;
  cfg.maxClips = 20;

  auto run = [&](std::uint64_t seed) {
    dp::Rng rng(seed);
    const auto clips = datagen::generateLibrary(
        datagen::directprintSpec(1), rules, 40, rng);
    return core::runPipeline(clips, rules, cfg, rng);
  };
  const auto a = run(99);
  const auto b = run(99);
  EXPECT_EQ(a.generation.generated, b.generation.generated);
  EXPECT_EQ(a.generation.legal, b.generation.legal);
  EXPECT_EQ(a.generation.unique.size(), b.generation.unique.size());
  EXPECT_EQ(a.sensitivity, b.sensitivity);
  EXPECT_EQ(a.materialized.clips.size(), b.materialized.clips.size());
  for (std::size_t i = 0; i < a.materialized.clips.size(); ++i)
    EXPECT_EQ(a.materialized.clips[i], b.materialized.clips[i]);

  // (Different seeds generally diverge, but a heavily undertrained
  // smoke-test TCAE can collapse two seeds onto the same tiny unique
  // set, so only same-seed equality is asserted here.)
}

TEST(Integration, TcaeSerializationPreservesGenerationBehaviour) {
  dp::Rng dataRng(53);
  const auto clips = datagen::generateLibrary(datagen::directprintSpec(1),
                                              euv7nmM2(), 60, dataRng);
  const auto topologies = datagen::extractTopologies(clips);

  dp::Rng trainRng(54);
  models::Tcae original(tinyTcae(), trainRng);
  original.train(topologies, trainRng);
  const std::string path = ::testing::TempDir() + "/it_tcae.bin";
  original.save(path);

  dp::Rng freshRng(55);
  models::Tcae restored(tinyTcae(), freshRng);
  restored.load(path);

  const drc::TopologyChecker checker;
  const auto perturber =
      core::SensitivityAwarePerturber::uniformNoise(16, 1.0);
  core::FlowConfig fcfg;
  fcfg.count = 200;
  dp::Rng flowA(7), flowB(7);
  const auto ra =
      core::tcaeRandom(original, topologies, perturber, checker, fcfg,
                       flowA);
  const auto rb =
      core::tcaeRandom(restored, topologies, perturber, checker, fcfg,
                       flowB);
  EXPECT_EQ(ra.legal, rb.legal);
  EXPECT_EQ(ra.unique.size(), rb.unique.size());
  std::remove(path.c_str());
}

TEST(Integration, GeometryBackendsAgreeOnGeneratedPatterns) {
  // Both Eq. (10) backends must solve exactly the same set of generated
  // patterns (feasibility is backend-independent).
  dp::Rng rng(56);
  const DesignRules rules = euv7nmM2();
  const auto clips = datagen::generateLibrary(datagen::directprintSpec(4),
                                              rules, 60, rng);
  core::PatternLibrary lib;
  for (const auto& t : datagen::extractTopologies(clips))
    lib.add(squish::unpad(t));

  const lp::GeometrySolver diff(rules,
                                lp::GeometryBackend::kDifferenceConstraints);
  const lp::GeometrySolver simplex(
      rules, lp::GeometryBackend::kSimplexRandomVertex);
  const drc::GeometryChecker geom(rules);
  for (const auto& topo : lib.patterns()) {
    dp::Rng r1(1), r2(1);
    const auto a = diff.solve(topo, r1);
    const auto b = simplex.solve(topo, r2);
    ASSERT_EQ(a.has_value(), b.has_value());
    if (a && b) {
      EXPECT_TRUE(geom.isClean(squish::reconstruct(*a)));
      EXPECT_TRUE(geom.isClean(squish::reconstruct(*b)));
    }
  }
}

}  // namespace
}  // namespace dp
