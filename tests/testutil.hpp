#pragma once

/// \file testutil.hpp
/// Shared helpers for the test suite: literal topology construction,
/// random clip generation, numeric gradient checking for layers,
/// thread-count scoping and bit-exact tensor comparison.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <functional>
#include <numeric>
#include <string>
#include <system_error>
#include <vector>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "geometry/clip.hpp"
#include "nn/layer.hpp"
#include "squish/topology.hpp"
#include "tensor/tensor.hpp"

namespace dp::test {

/// RAII guard that pins both the DP_THREADS environment variable and
/// the global thread pool to `threads` for the guard's lifetime, then
/// restores the previous environment and re-derives the pool size from
/// it. Lets a test exercise specific pool sizes without leaking the
/// setting into later tests.
class ScopedDpThreads {
 public:
  // getenv/setenv are concurrency-mt-unsafe, but gtest runs tests in a
  // single thread and nothing else mutates the environment.
  explicit ScopedDpThreads(int threads) {
    // NOLINTNEXTLINE(concurrency-mt-unsafe)
    if (const char* old = std::getenv("DP_THREADS")) {
      hadOld_ = true;
      old_ = old;
    }
    // NOLINTNEXTLINE(concurrency-mt-unsafe)
    ::setenv("DP_THREADS", std::to_string(threads).c_str(), 1);
    ThreadPool::setGlobalThreads(threads);
  }
  ~ScopedDpThreads() {
    if (hadOld_) {
      // NOLINTNEXTLINE(concurrency-mt-unsafe)
      ::setenv("DP_THREADS", old_.c_str(), 1);
    } else {
      // NOLINTNEXTLINE(concurrency-mt-unsafe)
      ::unsetenv("DP_THREADS");
    }
    ThreadPool::setGlobalThreads(ThreadPool::defaultThreads());
  }
  ScopedDpThreads(const ScopedDpThreads&) = delete;
  ScopedDpThreads& operator=(const ScopedDpThreads&) = delete;

 private:
  bool hadOld_ = false;
  std::string old_;
};

/// RAII scratch directory under the system temp root. The constructor
/// removes any stale directory a crashed earlier run left behind and
/// creates it fresh; the destructor removes it recursively
/// (best-effort, so a failing test's cleanup never masks the failure).
class ScopedTempDir {
 public:
  explicit ScopedTempDir(const std::string& tag)
      : path_((std::filesystem::temp_directory_path() / tag).string()) {
    std::filesystem::remove_all(path_);
    std::filesystem::create_directories(path_);
  }
  ~ScopedTempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  ScopedTempDir(const ScopedTempDir&) = delete;
  ScopedTempDir& operator=(const ScopedTempDir&) = delete;

  [[nodiscard]] const std::string& path() const { return path_; }
  /// Joins `name` onto the directory.
  [[nodiscard]] std::string file(const std::string& name) const {
    return path_ + "/" + name;
  }

 private:
  std::string path_;
};

/// Bit-exact tensor comparison: same shape and every float identical at
/// the bit level (so +0.0 vs -0.0 or differently-rounded results fail,
/// unlike operator==). On mismatch, reports the first differing flat
/// index with both values and bit patterns.
inline ::testing::AssertionResult tensorsBitEqual(const nn::Tensor& a,
                                                  const nn::Tensor& b) {
  if (a.shape() != b.shape())
    return ::testing::AssertionFailure()
           << "shape mismatch: " << a.shapeString() << " vs "
           << b.shapeString();
  if (std::memcmp(a.data(), b.data(), a.numel() * sizeof(float)) == 0)
    return ::testing::AssertionSuccess();
  for (std::size_t i = 0; i < a.numel(); ++i) {
    std::uint32_t ba, bb;
    std::memcpy(&ba, &a.data()[i], sizeof(ba));
    std::memcpy(&bb, &b.data()[i], sizeof(bb));
    if (ba != bb)
      return ::testing::AssertionFailure()
             << "first mismatch at flat index " << i << ": " << a[i]
             << " (0x" << std::hex << ba << ") vs " << b[i] << " (0x"
             << bb << ")";
  }
  return ::testing::AssertionFailure() << "memcmp mismatch";  // unreachable
}

/// EXPECT-style wrapper around tensorsBitEqual.
inline void expectTensorsBitEqual(const nn::Tensor& a,
                                  const nn::Tensor& b) {
  EXPECT_TRUE(tensorsBitEqual(a, b));
}

/// `count` distinct indices drawn uniformly from [0, total) by partial
/// Fisher–Yates — sampling *without* replacement, so a gradient check
/// never verifies the same coordinate twice while silently skipping
/// others.
inline std::vector<std::size_t> sampleDistinct(std::size_t total,
                                               std::size_t count,
                                               dp::Rng& rng) {
  std::vector<std::size_t> idx(total);
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  for (std::size_t k = 0; k < count && k + 1 < total; ++k) {
    const auto j =
        k + static_cast<std::size_t>(rng.uniformInt(
                0, static_cast<int>(total - 1 - k)));
    std::swap(idx[k], idx[j]);
  }
  idx.resize(count);
  return idx;
}

/// Builds a topology from rows written top-first, e.g.
/// topo({"##.", "..#"}) — '#' = shape, anything else = space.
/// (Row 0 of the result is the BOTTOM row, matching the library
/// convention, so the last string becomes row 0.)
inline squish::Topology topo(const std::vector<std::string>& rowsTopFirst) {
  const int rows = static_cast<int>(rowsTopFirst.size());
  const int cols = rows > 0 ? static_cast<int>(rowsTopFirst[0].size()) : 0;
  squish::Topology t(rows, cols);
  for (int r = 0; r < rows; ++r) {
    const std::string& line = rowsTopFirst[static_cast<std::size_t>(rows - 1 - r)];
    for (int c = 0; c < cols; ++c)
      t.set(r, c, line[static_cast<std::size_t>(c)] == '#' ? 1 : 0);
  }
  return t;
}

/// A random rectilinear clip (shapes may overlap; not DRC-clean) for
/// squish round-trip property tests.
inline dp::Clip randomClip(dp::Rng& rng, int maxShapes = 6,
                           double window = 100.0) {
  dp::Clip clip(dp::Rect{0.0, 0.0, window, window});
  const int n = rng.uniformInt(0, maxShapes);
  for (int i = 0; i < n; ++i) {
    const double x0 = rng.uniform(0.0, window - 1.0);
    const double y0 = rng.uniform(0.0, window - 1.0);
    const double x1 = x0 + rng.uniform(1.0, window - x0);
    const double y1 = y0 + rng.uniform(1.0, window - y0);
    clip.addShape(dp::Rect{x0, y0, x1, y1});
  }
  return clip;
}

/// Central-difference gradient check for one layer: perturbs inputs and
/// parameters and compares numeric dL/dx against backward()'s output,
/// with L = sum(weights .* forward(x)) for a fixed random weighting.
/// Returns the maximum absolute deviation observed.
inline double gradCheck(nn::Layer& layer, const nn::Tensor& x,
                        dp::Rng& rng, double eps = 1e-2) {
  // Fixed upstream weighting makes L scalar and the upstream gradient
  // constant (independent of the forward pass).
  nn::Tensor y0 = layer.forward(x, /*training=*/true);
  const nn::Tensor weights = nn::Tensor::randn(y0.shape(), rng);
  auto lossOf = [&](const nn::Tensor& input) {
    nn::Tensor y = layer.forward(input, /*training=*/true);
    double l = 0.0;
    for (std::size_t i = 0; i < y.numel(); ++i) l += weights[i] * y[i];
    return l;
  };

  // Analytic gradients.
  for (nn::Param* p : layer.params()) p->grad.zero();
  (void)layer.forward(x, /*training=*/true);
  const nn::Tensor dx = layer.backward(weights);

  double worst = 0.0;
  // Input gradient at a sample of distinct coordinates.
  const std::size_t checkN = std::min<std::size_t>(x.numel(), 24);
  const auto xIdx = sampleDistinct(x.numel(), checkN, rng);
  for (std::size_t k = 0; k < checkN; ++k) {
    const std::size_t i = xIdx[k];
    nn::Tensor xp = x, xm = x;
    xp[i] += static_cast<float>(eps);
    xm[i] -= static_cast<float>(eps);
    const double num = (lossOf(xp) - lossOf(xm)) / (2.0 * eps);
    worst = std::max(worst, std::abs(num - dx[i]));
  }

  // Parameter gradients at a sample of coordinates. Re-run the
  // analytic pass so caches match the unperturbed input.
  for (nn::Param* p : layer.params()) p->grad.zero();
  (void)layer.forward(x, /*training=*/true);
  (void)layer.backward(weights);
  for (nn::Param* p : layer.params()) {
    const std::size_t pn = std::min<std::size_t>(p->value.numel(), 16);
    const auto pIdx = sampleDistinct(p->value.numel(), pn, rng);
    for (std::size_t k = 0; k < pn; ++k) {
      const std::size_t i = pIdx[k];
      const float saved = p->value[i];
      p->value[i] = saved + static_cast<float>(eps);
      const double lp = lossOf(x);
      p->value[i] = saved - static_cast<float>(eps);
      const double lm = lossOf(x);
      p->value[i] = saved;
      const double num = (lp - lm) / (2.0 * eps);
      worst = std::max(worst, std::abs(num - p->grad[i]));
    }
  }
  return worst;
}

}  // namespace dp::test
