#pragma once

/// \file testutil.hpp
/// Shared helpers for the test suite: literal topology construction,
/// random clip generation, and numeric gradient checking for layers.

#include <cmath>
#include <functional>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "geometry/clip.hpp"
#include "nn/layer.hpp"
#include "squish/topology.hpp"
#include "tensor/tensor.hpp"

namespace dp::test {

/// Builds a topology from rows written top-first, e.g.
/// topo({"##.", "..#"}) — '#' = shape, anything else = space.
/// (Row 0 of the result is the BOTTOM row, matching the library
/// convention, so the last string becomes row 0.)
inline squish::Topology topo(const std::vector<std::string>& rowsTopFirst) {
  const int rows = static_cast<int>(rowsTopFirst.size());
  const int cols = rows > 0 ? static_cast<int>(rowsTopFirst[0].size()) : 0;
  squish::Topology t(rows, cols);
  for (int r = 0; r < rows; ++r) {
    const std::string& line = rowsTopFirst[static_cast<std::size_t>(rows - 1 - r)];
    for (int c = 0; c < cols; ++c)
      t.set(r, c, line[static_cast<std::size_t>(c)] == '#' ? 1 : 0);
  }
  return t;
}

/// A random rectilinear clip (shapes may overlap; not DRC-clean) for
/// squish round-trip property tests.
inline dp::Clip randomClip(dp::Rng& rng, int maxShapes = 6,
                           double window = 100.0) {
  dp::Clip clip(dp::Rect{0.0, 0.0, window, window});
  const int n = rng.uniformInt(0, maxShapes);
  for (int i = 0; i < n; ++i) {
    const double x0 = rng.uniform(0.0, window - 1.0);
    const double y0 = rng.uniform(0.0, window - 1.0);
    const double x1 = x0 + rng.uniform(1.0, window - x0);
    const double y1 = y0 + rng.uniform(1.0, window - y0);
    clip.addShape(dp::Rect{x0, y0, x1, y1});
  }
  return clip;
}

/// Central-difference gradient check for one layer: perturbs inputs and
/// parameters and compares numeric dL/dx against backward()'s output,
/// with L = sum(weights .* forward(x)) for a fixed random weighting.
/// Returns the maximum absolute deviation observed.
inline double gradCheck(nn::Layer& layer, const nn::Tensor& x,
                        dp::Rng& rng, double eps = 1e-2) {
  // Fixed upstream weighting makes L scalar and the upstream gradient
  // constant (independent of the forward pass).
  nn::Tensor y0 = layer.forward(x, /*training=*/true);
  const nn::Tensor weights = nn::Tensor::randn(y0.shape(), rng);
  auto lossOf = [&](const nn::Tensor& input) {
    nn::Tensor y = layer.forward(input, /*training=*/true);
    double l = 0.0;
    for (std::size_t i = 0; i < y.numel(); ++i) l += weights[i] * y[i];
    return l;
  };

  // Analytic gradients.
  for (nn::Param* p : layer.params()) p->grad.zero();
  (void)layer.forward(x, /*training=*/true);
  const nn::Tensor dx = layer.backward(weights);

  double worst = 0.0;
  // Input gradient at a sample of coordinates.
  const std::size_t checkN = std::min<std::size_t>(x.numel(), 24);
  for (std::size_t k = 0; k < checkN; ++k) {
    const std::size_t i =
        x.numel() <= checkN
            ? k
            : static_cast<std::size_t>(
                  rng.uniformInt(0, static_cast<int>(x.numel()) - 1));
    nn::Tensor xp = x, xm = x;
    xp[i] += static_cast<float>(eps);
    xm[i] -= static_cast<float>(eps);
    const double num = (lossOf(xp) - lossOf(xm)) / (2.0 * eps);
    worst = std::max(worst, std::abs(num - dx[i]));
  }

  // Parameter gradients at a sample of coordinates. Re-run the
  // analytic pass so caches match the unperturbed input.
  for (nn::Param* p : layer.params()) p->grad.zero();
  (void)layer.forward(x, /*training=*/true);
  (void)layer.backward(weights);
  for (nn::Param* p : layer.params()) {
    const std::size_t pn = std::min<std::size_t>(p->value.numel(), 16);
    for (std::size_t k = 0; k < pn; ++k) {
      const std::size_t i =
          p->value.numel() <= pn
              ? k
              : static_cast<std::size_t>(rng.uniformInt(
                    0, static_cast<int>(p->value.numel()) - 1));
      const float saved = p->value[i];
      p->value[i] = saved + static_cast<float>(eps);
      const double lp = lossOf(x);
      p->value[i] = saved - static_cast<float>(eps);
      const double lm = lossOf(x);
      p->value[i] = saved;
      const double num = (lp - lm) / (2.0 * eps);
      worst = std::max(worst, std::abs(num - p->grad[i]));
    }
  }
  return worst;
}

}  // namespace dp::test
