/// \file eventloop_test.cpp
/// The epoll serving front end and the shared-nothing scale-out layer:
/// the incremental parser's byte-split invariance (byte-at-a-time and
/// seeded random split points over a pipelined corpus), pipelining
/// order, keep-alive accounting, slow-loris/idle reaping, write-buffer
/// backpressure, consistent-hash ring properties, Prometheus label
/// injection, and the forked worker fleet behind the load balancer
/// (routing, aggregation, rolling reload, SIGKILL reroute + respawn,
/// crash-fault retries — all with bit-identical responses).

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/fault.hpp"
#include "common/rng.hpp"
#include "datagen/generator.hpp"
#include "io/json.hpp"
#include "serve/eventloop.hpp"
#include "serve/lb.hpp"
#include "serve/server.hpp"

namespace dp {
namespace {

using serve::EventLoopServer;
using serve::HashRing;
using serve::HttpRequest;
using serve::HttpResponse;
using serve::IncrementalParser;

// ------------------------------------------------------------------
// Deployments fork their supervisor child at CONSTRUCTION, which must
// happen while this process is still single-threaded — i.e. before
// gtest's main, any server, or the global ThreadPool exists. Each
// supervisor is inert (a poll loop on a pipe) until launch().
// ------------------------------------------------------------------
// Writes to half-closed sockets and pipes are business as usual in
// this suite (crash and chaos tests kill the peer on purpose), and
// every call site handles EPIPE — so the signal must not kill the
// process, least of all during static destruction of a deliberately
// dead deployment below.
const bool gSigpipeIgnored = [] {
  ::signal(SIGPIPE, SIG_IGN);
  return true;
}();

serve::Deployment gDeployment;
serve::Deployment gCrashDeployment;
serve::Deployment gPipeChaosDeployment;
serve::Deployment gLifeFaultDeployment;

// The next supervisor inherits an ARMED lb.cmd.read fault through
// fork — the registry is ordinary process memory — so its very first
// command-pipe read fails, which it must treat exactly like the
// parent vanishing: full teardown, exit. The parent disarms its own
// copy immediately after the fork (initialization order within this
// translation unit is declaration order).
const bool gCmdFaultArmed = [] {
  faults::arm("lb.cmd.read", 11, 1.0);
  return true;
}();
serve::Deployment gCmdFaultDeployment;
const bool gCmdFaultDisarmed = [] {
  faults::disarmAll();
  return true;
}();

// ------------------------------------------------------------------
// Parser corpus: a pipelined byte stream and the requests it encodes,
// used to pin byte-split invariance.
// ------------------------------------------------------------------

std::string pipelinedCorpus() {
  std::string s;
  s += "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n";
  s +=
      "POST /generate?a=1 HTTP/1.1\r\nHost: x\r\n"
      "Content-Type: application/json\r\nContent-Length: 17\r\n\r\n"
      "{\"bundle\":\"tiny\"}";
  s += "GET /metrics HTTP/1.1\r\nHost: x\r\nX-Extra: v\r\n\r\n";
  s +=
      "POST /generate HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\n"
      "\r\n\r\n";  // a body that LOOKS like a head terminator
  return s;
}

struct ParsedRequest {
  std::string method;
  std::string target;
  std::string query;
  std::string body;
};

std::vector<ParsedRequest> drain(IncrementalParser& parser) {
  std::vector<ParsedRequest> out;
  HttpRequest req;
  while (parser.next(req) == IncrementalParser::Status::kReady)
    out.push_back({req.method, req.target, req.query, req.body});
  return out;
}

void expectCorpusRequests(const std::vector<ParsedRequest>& got) {
  ASSERT_EQ(got.size(), 4u);
  EXPECT_EQ(got[0].method, "GET");
  EXPECT_EQ(got[0].target, "/healthz");
  EXPECT_EQ(got[1].method, "POST");
  EXPECT_EQ(got[1].target, "/generate");
  EXPECT_EQ(got[1].query, "a=1");
  EXPECT_EQ(got[1].body, "{\"bundle\":\"tiny\"}");
  EXPECT_EQ(got[2].target, "/metrics");
  EXPECT_EQ(got[3].body, "\r\n\r\n");
}

TEST(IncrementalParser, ByteAtATimeMatchesWholeBuffer) {
  const std::string corpus = pipelinedCorpus();
  IncrementalParser whole{{}};
  whole.append(corpus.data(), corpus.size());
  const auto reference = drain(whole);
  expectCorpusRequests(reference);

  IncrementalParser byByte{{}};
  std::vector<ParsedRequest> got;
  for (const char c : corpus) {
    byByte.append(&c, 1);
    for (auto& r : drain(byByte)) got.push_back(std::move(r));
  }
  expectCorpusRequests(got);
}

TEST(IncrementalParser, RandomSplitPointsMatchWholeBuffer) {
  const std::string corpus = pipelinedCorpus();
  Rng rng(2019);
  for (int trial = 0; trial < 64; ++trial) {
    IncrementalParser parser{{}};
    std::vector<ParsedRequest> got;
    std::size_t pos = 0;
    while (pos < corpus.size()) {
      const std::size_t n = static_cast<std::size_t>(
          rng.uniformInt(1, static_cast<int>(corpus.size() - pos)));
      parser.append(corpus.data() + pos, n);
      pos += n;
      for (auto& r : drain(parser)) got.push_back(std::move(r));
    }
    expectCorpusRequests(got);
  }
}

TEST(IncrementalParser, OversizedHeadIs431EvenIncomplete) {
  IncrementalParser::Limits limits;
  limits.maxHeaderBytes = 64;
  IncrementalParser parser{limits};
  // Never send the terminator: the parser must still cut the slow
  // loris off once the partial head exceeds the limit.
  const std::string head = "GET / HTTP/1.1\r\nX-Pad: " +
                           std::string(100, 'a');
  parser.append(head.data(), head.size());
  HttpRequest req;
  ASSERT_EQ(parser.next(req), IncrementalParser::Status::kError);
  EXPECT_EQ(parser.errorStatus(), 431);
  // Poisoned: more bytes do not resurrect it.
  parser.append("\r\n\r\n", 4);
  EXPECT_EQ(parser.next(req), IncrementalParser::Status::kError);
  EXPECT_EQ(parser.errorStatus(), 431);
}

TEST(IncrementalParser, OversizedBodyIs413BeforeBodyArrives) {
  IncrementalParser::Limits limits;
  limits.maxBodyBytes = 16;
  IncrementalParser parser{limits};
  const std::string head =
      "POST /g HTTP/1.1\r\nContent-Length: 1000\r\n\r\n";
  parser.append(head.data(), head.size());
  HttpRequest req;
  ASSERT_EQ(parser.next(req), IncrementalParser::Status::kError);
  EXPECT_EQ(parser.errorStatus(), 413);
}

TEST(IncrementalParser, MalformedHeadAndContentLengthAre400) {
  {
    IncrementalParser parser{{}};
    const std::string junk = "ONE TWO\r\n\r\n";
    parser.append(junk.data(), junk.size());
    HttpRequest req;
    ASSERT_EQ(parser.next(req), IncrementalParser::Status::kError);
    EXPECT_EQ(parser.errorStatus(), 400);
  }
  {
    IncrementalParser parser{{}};
    const std::string bad =
        "POST /g HTTP/1.1\r\nContent-Length: 12abc\r\n\r\n";
    parser.append(bad.data(), bad.size());
    HttpRequest req;
    ASSERT_EQ(parser.next(req), IncrementalParser::Status::kError);
    EXPECT_EQ(parser.errorStatus(), 400);
  }
}

// ------------------------------------------------------------------
// Socket helpers for the event-loop tests.
// ------------------------------------------------------------------

int connectTo(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr),
            0);
  timeval tv{10, 0};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  return fd;
}

void sendAllBytes(int fd, const std::string& bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    ASSERT_GT(n, 0);
    sent += static_cast<std::size_t>(n);
  }
}

struct Reply {
  int status = 0;
  std::string body;
};

/// Reads `n` Content-Length-framed responses from one connection.
std::vector<Reply> readReplies(int fd, int n) {
  std::vector<Reply> replies;
  std::string buf;
  char chunk[8192];
  while (static_cast<int>(replies.size()) < n) {
    const std::size_t headEnd = buf.find("\r\n\r\n");
    if (headEnd == std::string::npos) {
      const ssize_t r = ::recv(fd, chunk, sizeof chunk, 0);
      if (r <= 0) break;
      buf.append(chunk, static_cast<std::size_t>(r));
      continue;
    }
    Reply reply;
    if (buf.rfind("HTTP/1.1 ", 0) == 0)
      reply.status = std::atoi(buf.c_str() + 9);
    std::size_t contentLength = 0;
    const std::size_t cl = buf.find("Content-Length: ");
    if (cl != std::string::npos && cl < headEnd)
      contentLength =
          static_cast<std::size_t>(std::atol(buf.c_str() + cl + 16));
    while (buf.size() < headEnd + 4 + contentLength) {
      const ssize_t r = ::recv(fd, chunk, sizeof chunk, 0);
      if (r <= 0) return replies;
      buf.append(chunk, static_cast<std::size_t>(r));
    }
    reply.body = buf.substr(headEnd + 4, contentLength);
    buf.erase(0, headEnd + 4 + contentLength);
    replies.push_back(std::move(reply));
  }
  return replies;
}

std::string requestBytes(const std::string& method, const std::string& path,
                         const std::string& body) {
  std::string req = method + " " + path + " HTTP/1.1\r\n";
  req += "Host: t\r\nContent-Length: " + std::to_string(body.size()) +
         "\r\n\r\n";
  req += body;
  return req;
}

TEST(EventLoop, PipelinedRequestsAnswerInOrder) {
  EventLoopServer::Config config;
  EventLoopServer server(config, [](const HttpRequest& req) {
    HttpResponse res;
    res.body = "echo:" + req.target + ":" + req.body;
    return res;
  });
  server.start();
  const int fd = connectTo(server.port());
  // All three requests land in one write; responses must come back in
  // request order even though handlers run on a pool.
  sendAllBytes(fd, requestBytes("GET", "/a", "") +
                       requestBytes("POST", "/b", "one") +
                       requestBytes("POST", "/c", "two"));
  const auto replies = readReplies(fd, 3);
  ASSERT_EQ(replies.size(), 3u);
  EXPECT_EQ(replies[0].body, "echo:/a:");
  EXPECT_EQ(replies[1].body, "echo:/b:one");
  EXPECT_EQ(replies[2].body, "echo:/c:two");
  ::close(fd);
  server.stop();
}

TEST(EventLoop, KeepAliveReuseIsCounted) {
  serve::Metrics metrics;
  EventLoopServer::Config config;
  config.metrics = &metrics;
  EventLoopServer server(config, [](const HttpRequest&) {
    return HttpResponse{};
  });
  server.start();
  const int fd = connectTo(server.port());
  sendAllBytes(fd, requestBytes("GET", "/1", ""));
  ASSERT_EQ(readReplies(fd, 1).size(), 1u);
  sendAllBytes(fd, requestBytes("GET", "/2", ""));
  ASSERT_EQ(readReplies(fd, 1).size(), 1u);
  sendAllBytes(fd, requestBytes("GET", "/3", ""));
  ASSERT_EQ(readReplies(fd, 1).size(), 1u);
  EXPECT_EQ(metrics.keepaliveReuses(), 2u);
  EXPECT_EQ(metrics.connectionsOpen(), 1);
  ::close(fd);
  server.stop();
  EXPECT_EQ(metrics.connectionsOpen(), 0);
}

TEST(EventLoop, SlowLorisConnectionIsReaped) {
  EventLoopServer::Config config;
  config.recvTimeoutSec = 1;
  EventLoopServer server(config, [](const HttpRequest&) {
    return HttpResponse{};
  });
  server.start();
  const int fd = connectTo(server.port());
  // A partial head that never completes: the server must hang up (read
  // returns 0) without sending a response.
  sendAllBytes(fd, "GET /drip HTTP/1.1\r\nX-Slow: ");
  char byte;
  const auto t0 = std::chrono::steady_clock::now();
  const ssize_t n = ::recv(fd, &byte, 1, 0);
  const double sec = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - t0)
                         .count();
  EXPECT_EQ(n, 0);       // EOF, not data
  EXPECT_LT(sec, 8.0);   // reaped by the timeout sweep, not our rcvtimeo
  ::close(fd);
  server.stop();
}

TEST(EventLoop, IdleKeepAliveConnectionIsReaped) {
  EventLoopServer::Config config;
  config.idleTimeoutSec = 1;
  EventLoopServer server(config, [](const HttpRequest&) {
    return HttpResponse{};
  });
  server.start();
  const int fd = connectTo(server.port());
  sendAllBytes(fd, requestBytes("GET", "/once", ""));
  ASSERT_EQ(readReplies(fd, 1).size(), 1u);
  char byte;
  const ssize_t n = ::recv(fd, &byte, 1, 0);  // idle: next event is EOF
  EXPECT_EQ(n, 0);
  ::close(fd);
  server.stop();
}

TEST(EventLoop, BackpressureDeliversLargeResponseToSlowReader) {
  // 8 MB >> the kernel socket buffers, so the response cannot be
  // written in one go: the loop must park it in the write buffer, arm
  // EPOLLOUT, and drain as the reader catches up.
  const std::size_t kBig = 8u << 20;
  EventLoopServer::Config config;
  EventLoopServer server(config, [kBig](const HttpRequest&) {
    HttpResponse res;
    res.body.assign(kBig, 'x');
    return res;
  });
  server.start();
  const int fd = connectTo(server.port());
  sendAllBytes(fd, requestBytes("GET", "/big", ""));
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  const auto replies = readReplies(fd, 1);
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies[0].body.size(), kBig);
  EXPECT_EQ(replies[0].body.find_first_not_of('x'), std::string::npos);
  ::close(fd);
  server.stop();
}

// ------------------------------------------------------------------
// Consistent-hash ring + label injection units.
// ------------------------------------------------------------------

TEST(HashRing, RouteIsDeterministicAndCoversAllWorkers) {
  HashRing ring;
  ring.rebuild({0, 1, 2, 3});
  EXPECT_EQ(ring.workerCount(), 4u);
  std::set<int> homes;
  for (int k = 0; k < 64; ++k) {
    const std::string key = "bundle" + std::to_string(k);
    const auto order = ring.route(key);
    ASSERT_EQ(order.size(), 4u);
    EXPECT_EQ(std::set<int>(order.begin(), order.end()).size(), 4u);
    EXPECT_EQ(order, ring.route(key));  // stable
    homes.insert(order[0]);
  }
  // 64 keys over 4 workers with 64 vnodes each: every worker should
  // own at least one home slot.
  EXPECT_EQ(homes.size(), 4u);
}

TEST(HashRing, RemovingAWorkerRemapsOnlyItsKeys) {
  HashRing full;
  full.rebuild({0, 1, 2, 3});
  HashRing reduced;
  reduced.rebuild({0, 1, 2});
  for (int k = 0; k < 128; ++k) {
    const std::string key = "bundle" + std::to_string(k);
    const int before = full.route(key)[0];
    const int after = reduced.route(key)[0];
    if (before != 3) {
      EXPECT_EQ(after, before) << "key " << key
                               << " moved although its home survived";
    }
  }
}

TEST(InjectLabel, HandlesEverySampleForm) {
  EXPECT_EQ(serve::injectLabel("dp_x 1", "worker", "2"),
            "dp_x{worker=\"2\"} 1");
  EXPECT_EQ(serve::injectLabel("dp_x{a=\"b\"} 1", "worker", "2"),
            "dp_x{worker=\"2\",a=\"b\"} 1");
  EXPECT_EQ(serve::injectLabel("# HELP dp_x helps", "worker", "2"),
            "# HELP dp_x helps");
}

// ------------------------------------------------------------------
// Deployment end-to-end: forked workers behind the LB.
// ------------------------------------------------------------------

namespace fs = std::filesystem;

/// Trains one tiny bundle and saves it under `root/<name>` for the
/// worker fleet to load.
void saveTinyBundle(const fs::path& root, const std::string& name) {
  Rng rng(11);
  serve::BundleSpec spec;
  spec.name = name;
  spec.tcae.trainSteps = 120;
  spec.sourcePoolSize = 32;
  const auto clips = datagen::generateLibrary(datagen::directprintSpec(1),
                                              spec.rules, 40, rng);
  const auto bundle = serve::buildBundle(
      spec, serve::BundleBuildConfig{}, datagen::extractTopologies(clips),
      rng);
  bundle->save((root / name).string());
}

std::string generatePayload(const std::string& bundle, int seed) {
  io::Json body = io::Json::object();
  body.set("bundle", bundle);
  body.set("count", 24L);
  body.set("seed", std::to_string(seed));
  return body.dump();
}

/// One keep-alive exchange against 127.0.0.1:port.
Reply exchangeOnce(int port, const std::string& method,
                   const std::string& path, const std::string& body) {
  const int fd = connectTo(port);
  sendAllBytes(fd, requestBytes(method, path, body));
  const auto replies = readReplies(fd, 1);
  ::close(fd);
  return replies.empty() ? Reply{} : replies[0];
}

/// Strips the per-run timing fields; the rest of a /generate response
/// is a deterministic function of the request.
std::string canonical(const std::string& body) {
  io::Json j = io::Json::parse(body);
  j.set("latencyMs", 0.0);
  j.set("decodeBatches", 0L);
  return j.dump();
}

TEST(LbDeployment, EndToEnd) {
  ASSERT_TRUE(gDeployment.available());
  const fs::path root = fs::temp_directory_path() / "dp_lb_e2e_bundles";
  fs::remove_all(root);
  saveTinyBundle(root, "tiny0");
  saveTinyBundle(root, "tiny1");

  serve::Deployment::Options options;
  options.bundleRoot = root.string();
  options.workers = 3;
  gDeployment.launch(options);
  const int port = gDeployment.lbPort();
  ASSERT_GT(port, 0);
  const auto initial = gDeployment.queryWorkers();
  ASSERT_EQ(initial.size(), 3u);

  // In-process reference over the same bundle root: responses through
  // the whole fork+LB+epoll stack must match it byte for byte.
  serve::PatternServer reference;
  ASSERT_EQ(reference.loadBundles(root.string()), 2);

  std::map<std::string, std::string> expected;
  for (const std::string bundle : {"tiny0", "tiny1"}) {
    for (int seed = 1; seed <= 3; ++seed) {
      const std::string payload = generatePayload(bundle, seed);
      HttpRequest req;
      req.method = "POST";
      req.target = "/generate";
      req.body = payload;
      const HttpResponse local = reference.handle(req);
      ASSERT_EQ(local.status, 200);
      expected[payload] = canonical(local.body);
    }
  }
  for (const auto& [payload, want] : expected) {
    const Reply got = exchangeOnce(port, "POST", "/generate", payload);
    ASSERT_EQ(got.status, 200);
    EXPECT_EQ(canonical(got.body), want);
  }

  // Aggregated health + metrics: every worker present and labeled.
  const Reply health = exchangeOnce(port, "GET", "/healthz", "");
  ASSERT_EQ(health.status, 200);
  const io::Json healthJson = io::Json::parse(health.body);
  EXPECT_EQ(healthJson.at("workersAlive").asLong(), 3);

  const Reply metrics = exchangeOnce(port, "GET", "/metrics", "");
  ASSERT_EQ(metrics.status, 200);
  EXPECT_NE(metrics.body.find("dp_lb_workers_alive 3"), std::string::npos);
  for (int w = 0; w < 3; ++w) {
    const std::string label = "worker=\"" + std::to_string(w) + "\"";
    EXPECT_NE(metrics.body.find(label), std::string::npos)
        << "no samples labeled " << label;
  }
  EXPECT_NE(metrics.body.find("dp_worker_id{worker=\"0\"}"),
            std::string::npos);

  // Zero-downtime rolling reload: write a new bundle generation into
  // the root, then ask the LB to roll it across the fleet.
  saveTinyBundle(root, "tiny2");
  const Reply reload = exchangeOnce(port, "POST", "/admin/reload", "");
  ASSERT_EQ(reload.status, 200);
  const io::Json reloadJson = io::Json::parse(reload.body);
  EXPECT_EQ(reloadJson.at("reloaded").asLong(), 3);
  const Reply fresh = exchangeOnce(
      port, "POST", "/generate", generatePayload("tiny2", 9));
  EXPECT_EQ(fresh.status, 200);

  // SIGKILL a worker: requests keep succeeding bit-identically (the
  // ring reroutes, deterministic generation makes any worker
  // equivalent) and the supervisor respawns it under the same id.
  gDeployment.killWorker(1);
  for (const auto& [payload, want] : expected) {
    const Reply got = exchangeOnce(port, "POST", "/generate", payload);
    ASSERT_EQ(got.status, 200) << "request failed after worker kill";
    EXPECT_EQ(canonical(got.body), want);
  }
  bool respawned = false;
  for (int poll = 0; poll < 100 && !respawned; ++poll) {
    for (const auto& w : gDeployment.queryWorkers())
      if (w.id == 1 && w.pid > 0 && w.pid != initial[1].pid)
        respawned = true;
    if (!respawned)
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  EXPECT_TRUE(respawned) << "worker 1 was not respawned after SIGKILL";

  gDeployment.stop();
  fs::remove_all(root);
}

TEST(LbDeployment, WorkerCrashFaultIsRetriedToSuccess) {
  ASSERT_TRUE(gCrashDeployment.available());
  const fs::path root = fs::temp_directory_path() / "dp_lb_crash_bundles";
  fs::remove_all(root);
  saveTinyBundle(root, "tiny0");

  serve::Deployment::Options options;
  options.bundleRoot = root.string();
  options.workers = 3;
  // Armed inside the WORKERS only (never the LB): each /generate rolls
  // a deterministic die and a hit exits the worker process with no
  // response — the OOM-kill-mid-request shape the LB must absorb.
  // Seed 81 at rate 0.05 fires on draw index 2 and nowhere else in the
  // first 31 draws, so each worker lifetime crashes exactly on its
  // third request: the home worker dies at request 3 (guaranteeing a
  // retry) while every retry leg lands on a worker early in its
  // sequence and survives — at most one worker is down at a time.
  options.workerFaults = "serve.worker.crash:81:0.05";
  gCrashDeployment.launch(options);
  const int port = gCrashDeployment.lbPort();

  serve::PatternServer reference;
  ASSERT_EQ(reference.loadBundles(root.string()), 1);

  int succeeded = 0;
  for (int seed = 1; seed <= 8; ++seed) {
    const std::string payload = generatePayload("tiny0", seed);
    HttpRequest req;
    req.method = "POST";
    req.target = "/generate";
    req.body = payload;
    const HttpResponse local = reference.handle(req);
    ASSERT_EQ(local.status, 200);
    const Reply got = exchangeOnce(port, "POST", "/generate", payload);
    ASSERT_EQ(got.status, 200)
        << "request " << seed << " failed despite LB retries";
    EXPECT_EQ(canonical(got.body), canonical(local.body));
    ++succeeded;
  }
  EXPECT_EQ(succeeded, 8);

  // At least one crash must actually have fired (else this test pins
  // nothing): the LB counts every failed-then-retried backend leg.
  const Reply metrics = exchangeOnce(port, "GET", "/metrics", "");
  ASSERT_EQ(metrics.status, 200);
  // Anchor at line start: a bare find() would land inside the
  // "# HELP dp_lb_retries_total ..." comment and parse its prose as 0.
  const std::size_t pos = metrics.body.find("\ndp_lb_retries_total ");
  ASSERT_NE(pos, std::string::npos);
  EXPECT_GT(std::atol(metrics.body.c_str() + pos + 21), 0);

  gCrashDeployment.stop();
  fs::remove_all(root);
}

// ------------------------------------------------------------------
// Chaos coverage for the serving-layer fault sites (DESIGN.md §11):
// every site declared in src/serve must be armed by some chaos suite
// — dp_analyze DPA102 fails CI on drift in either direction.
// ------------------------------------------------------------------

TEST(EventLoopChaos, SocketFaultChurnLeavesLoopServing) {
  faults::disarmAll();
  EventLoopServer::Config config;
  EventLoopServer server(config, [](const HttpRequest& req) {
    HttpResponse res;
    res.body = "ok:" + req.target;
    return res;
  });
  server.start();
  for (const char* site :
       {"serve.epoll.wait", "serve.accept", "serve.recv", "serve.send",
        "serve.wake.write"})
    faults::arm(site, 17, 0.2);

  // Individual connections may be dropped by an injected accept,
  // recv or send failure — each must fail CLOSED (the fd is shut,
  // never leaked or wedged). A swallowed wakeLoop write self-heals
  // via the loop's bounded epoll timeout.
  int answered = 0;
  for (int i = 0; i < 20; ++i) {
    const int fd = connectTo(server.port());
    const std::string req =
        requestBytes("GET", "/c" + std::to_string(i), "");
    std::size_t off = 0;
    bool sent = true;
    while (off < req.size()) {
      const ssize_t n = ::send(fd, req.data() + off, req.size() - off,
                               MSG_NOSIGNAL);
      if (n <= 0) {
        sent = false;
        break;
      }
      off += static_cast<std::size_t>(n);
    }
    if (sent) {
      const auto replies = readReplies(fd, 1);
      if (replies.size() == 1 && replies[0].status == 200) ++answered;
    }
    ::close(fd);
  }
  faults::disarmAll();
  EXPECT_GT(answered, 0);

  // Disarmed, the very next request on a fresh connection succeeds:
  // the churn dropped connections, never the loop.
  const int fd = connectTo(server.port());
  sendAllBytes(fd, requestBytes("GET", "/after", ""));
  const auto replies = readReplies(fd, 1);
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies[0].body, "ok:/after");
  ::close(fd);
  server.stop();
}

TEST(LbChaos, PoolConnectFaultFailsAcquireThenRecovers) {
  faults::disarmAll();
  EventLoopServer::Config config;
  EventLoopServer server(config, [](const HttpRequest&) {
    return HttpResponse{};
  });
  server.start();
  serve::BackendPool pool(1);

  faults::arm("lb.pool.connect", 7, 1.0);
  EXPECT_EQ(pool.acquire(0, server.port()), -1);
  faults::disarm("lb.pool.connect");

  bool fromPool = true;
  const int fd = pool.acquire(0, server.port(), &fromPool);
  EXPECT_GE(fd, 0);
  EXPECT_FALSE(fromPool);  // fresh connect, not a pooled fd
  pool.release(0, server.port(), fd, false);
  server.stop();
}

TEST(LbChaos, SupervisorPipeFaultsSurfaceAsErrors) {
  ASSERT_TRUE(gPipeChaosDeployment.available());

  // Parent-side command write fails: nothing reaches the supervisor.
  faults::arm("lb.pipe.write", 3, 1.0);
  EXPECT_THROW((void)gPipeChaosDeployment.queryWorkers(),
               std::runtime_error);
  faults::disarm("lb.pipe.write");

  // Parent-side status read fails: the command went out, the reply is
  // left in the pipe, and the caller sees a clean error.
  faults::arm("lb.pipe.read", 3, 1.0);
  EXPECT_THROW((void)gPipeChaosDeployment.queryWorkers(),
               std::runtime_error);
  faults::disarm("lb.pipe.read");

  // Disarmed, the very same supervisor still answers — the injected
  // failures hit the parent-side helpers, not the channel.
  EXPECT_TRUE(gPipeChaosDeployment.queryWorkers().empty());
  gPipeChaosDeployment.stop();
}

TEST(LbChaos, CmdFaultTearsDownSupervisorAsParentGone) {
  // The supervisor forked with lb.cmd.read armed (see the globals at
  // the top of this file) exits on its own first poll round. stop()
  // must reap the corpse promptly — never the 30s SIGKILL escalation.
  ASSERT_TRUE(gCmdFaultDeployment.available());
  const auto t0 = std::chrono::steady_clock::now();
  gCmdFaultDeployment.stop();
  EXPECT_LT(std::chrono::steady_clock::now() - t0,
            std::chrono::seconds(20));
}

TEST(LbChaos, WorkerLifeFaultDrainsWorkerCleanly) {
  ASSERT_TRUE(gLifeFaultDeployment.available());
  serve::Deployment::Options options;
  options.workers = 1;
  options.handlerThreads = 1;
  // Armed inside the worker only: it reports its port, then the
  // injected life-pipe failure sends it straight through the orderly
  // shutdown path (exactly as if the supervisor closed the pipe).
  options.workerFaults = "lb.worker.life:13:1";
  gLifeFaultDeployment.launch(options);
  EXPECT_GT(gLifeFaultDeployment.lbPort(), 0);
  gLifeFaultDeployment.stop();
}

}  // namespace
}  // namespace dp
