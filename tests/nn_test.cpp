#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "nn/activations.hpp"
#include "nn/batchnorm.hpp"
#include "nn/conv2d.hpp"
#include "nn/conv_transpose2d.hpp"
#include "nn/init.hpp"
#include "nn/linear.hpp"
#include "nn/loss.hpp"
#include "nn/optimizer.hpp"
#include "nn/reshape.hpp"
#include "nn/schedule.hpp"
#include "nn/sequential.hpp"
#include "nn/serialize.hpp"
#include "testutil.hpp"

namespace dp::nn {
namespace {

using dp::test::gradCheck;

constexpr double kGradTol = 5e-2;  // float math + finite differences

// ----------------------------------------------------------- GradChecks

TEST(GradCheck, Linear) {
  dp::Rng rng(1);
  Linear layer(6, 4, rng);
  const Tensor x = Tensor::randn({3, 6}, rng);
  EXPECT_LT(gradCheck(layer, x, rng), kGradTol);
}

TEST(GradCheck, Conv2dStride1) {
  dp::Rng rng(2);
  Conv2d layer(2, 3, 3, 1, 1, rng);
  const Tensor x = Tensor::randn({2, 2, 5, 5}, rng);
  EXPECT_LT(gradCheck(layer, x, rng), kGradTol);
}

TEST(GradCheck, Conv2dStride2) {
  dp::Rng rng(3);
  Conv2d layer(1, 2, 3, 2, 1, rng);
  const Tensor x = Tensor::randn({2, 1, 8, 8}, rng);
  EXPECT_LT(gradCheck(layer, x, rng), kGradTol);
}

TEST(GradCheck, ConvTranspose2dStride2) {
  dp::Rng rng(4);
  ConvTranspose2d layer(2, 1, 4, 2, 1, rng);
  const Tensor x = Tensor::randn({2, 2, 4, 4}, rng);
  EXPECT_LT(gradCheck(layer, x, rng), kGradTol);
}

TEST(GradCheck, ConvTranspose2dStride1) {
  dp::Rng rng(5);
  ConvTranspose2d layer(1, 2, 3, 1, 0, rng);
  const Tensor x = Tensor::randn({1, 1, 4, 4}, rng);
  EXPECT_LT(gradCheck(layer, x, rng), kGradTol);
}

TEST(GradCheck, ConvTranspose2dStride3) {
  // Stride 3 with no padding: output pixels come from non-overlapping
  // kernel placements, a different col2im scatter pattern than the
  // overlapping stride-2 case above.
  dp::Rng rng(12);
  ConvTranspose2d layer(2, 3, 3, 3, 0, rng);
  const Tensor x = Tensor::randn({2, 2, 3, 3}, rng);
  EXPECT_LT(gradCheck(layer, x, rng), kGradTol);
}

TEST(GradCheck, Activations) {
  dp::Rng rng(6);
  // Keep inputs away from 0: finite differences straddling the ReLU /
  // LeakyReLU kink would disagree with the (one-sided) analytic grad.
  Tensor x = Tensor::randn({4, 7}, rng);
  for (std::size_t i = 0; i < x.numel(); ++i)
    x[i] += x[i] >= 0.0f ? 0.1f : -0.1f;
  {
    ReLU l;
    EXPECT_LT(gradCheck(l, x, rng), kGradTol);
  }
  {
    LeakyReLU l(0.2f);
    EXPECT_LT(gradCheck(l, x, rng), kGradTol);
  }
  {
    Sigmoid l;
    EXPECT_LT(gradCheck(l, x, rng), kGradTol);
  }
  {
    Tanh l;
    EXPECT_LT(gradCheck(l, x, rng), kGradTol);
  }
}

TEST(GradCheck, BatchNorm1d) {
  dp::Rng rng(7);
  BatchNorm1d layer(5);
  const Tensor x = Tensor::randn({8, 5}, rng);
  EXPECT_LT(gradCheck(layer, x, rng), 1e-1);
}

TEST(GradCheck, BatchNorm1dTrainingInsideNetwork) {
  // Training mode inside a composite: the batch statistics couple every
  // sample, so dL/dx flows through the mean/variance terms as well as
  // the straight-through path.
  dp::Rng rng(13);
  Sequential net;
  net.emplace<Linear>(6, 5, rng);
  net.emplace<BatchNorm1d>(5);
  net.emplace<Tanh>();
  const Tensor x = Tensor::randn({8, 6}, rng);
  EXPECT_LT(gradCheck(net, x, rng), 1e-1);
}

TEST(GradCheck, SequentialComposite) {
  dp::Rng rng(8);
  Sequential net;
  net.emplace<Linear>(6, 8, rng);
  net.emplace<ReLU>();
  net.emplace<Linear>(8, 3, rng);
  net.emplace<Tanh>();
  const Tensor x = Tensor::randn({3, 6}, rng);
  // Looser bound than single layers: hidden pre-activations can land
  // within eps of the ReLU kink, where central differences disagree
  // with the one-sided analytic gradient.
  EXPECT_LT(gradCheck(net, x, rng), 1e-1);
}

TEST(GradCheck, ConvDeconvComposite) {
  dp::Rng rng(9);
  Sequential net;
  net.emplace<Conv2d>(1, 2, 3, 2, 1, rng);
  net.emplace<ReLU>();
  net.emplace<ConvTranspose2d>(2, 1, 4, 2, 1, rng);
  net.emplace<Sigmoid>();
  const Tensor x = Tensor::randn({2, 1, 6, 6}, rng);
  EXPECT_LT(gradCheck(net, x, rng), kGradTol);
}

/// Gradient-check sweep over convolution configurations (kernel,
/// stride, pad) for both Conv2d and its transpose.
class ConvGradSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(ConvGradSweep, Conv2dMatchesNumericGradient) {
  const auto [kernel, stride, pad] = GetParam();
  dp::Rng rng(31);
  Conv2d layer(2, 2, kernel, stride, pad, rng);
  const Tensor x = Tensor::randn({1, 2, 8, 8}, rng);
  EXPECT_LT(gradCheck(layer, x, rng), kGradTol);
}

TEST_P(ConvGradSweep, ConvTranspose2dMatchesNumericGradient) {
  const auto [kernel, stride, pad] = GetParam();
  if ((4 - 1) * stride - 2 * pad + kernel <= 0) GTEST_SKIP();
  dp::Rng rng(32);
  ConvTranspose2d layer(2, 2, kernel, stride, pad, rng);
  const Tensor x = Tensor::randn({1, 2, 4, 4}, rng);
  EXPECT_LT(gradCheck(layer, x, rng), kGradTol);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, ConvGradSweep,
    ::testing::Values(std::tuple{1, 1, 0}, std::tuple{3, 1, 1},
                      std::tuple{3, 2, 1}, std::tuple{4, 2, 1},
                      std::tuple{5, 1, 2}, std::tuple{3, 1, 0}));

// ----------------------------------------------------------- Shapes/API

TEST(Linear, ForwardShapeAndBias) {
  dp::Rng rng(1);
  Linear layer(3, 2, rng);
  layer.weight().value.zero();
  layer.bias().value[0] = 1.5f;
  layer.bias().value[1] = -2.0f;
  const Tensor y = layer.forward(Tensor::zeros({4, 3}), false);
  EXPECT_EQ(y.shape(), (std::vector<int>{4, 2}));
  EXPECT_EQ(y.at(3, 0), 1.5f);
  EXPECT_EQ(y.at(0, 1), -2.0f);
}

TEST(Linear, RejectsBadInput) {
  dp::Rng rng(1);
  Linear layer(3, 2, rng);
  EXPECT_THROW(layer.forward(Tensor::zeros({4, 5}), false),
               std::invalid_argument);
  EXPECT_THROW(Linear(0, 2, rng), std::invalid_argument);
}

TEST(Conv2d, OutputGeometry) {
  dp::Rng rng(1);
  Conv2d layer(1, 4, 3, 2, 1, rng);
  EXPECT_EQ(layer.outSize(24), 12);
  const Tensor y = layer.forward(Tensor::zeros({2, 1, 24, 24}), false);
  EXPECT_EQ(y.shape(), (std::vector<int>{2, 4, 12, 12}));
}

TEST(Conv2d, KnownConvolutionValue) {
  dp::Rng rng(1);
  Conv2d layer(1, 1, 3, 1, 0, rng);
  layer.params()[0]->value.fill(1.0f);  // all-ones kernel
  layer.params()[1]->value.zero();
  Tensor x = Tensor::full({1, 1, 3, 3}, 2.0f);
  const Tensor y = layer.forward(x, false);
  EXPECT_EQ(y.shape(), (std::vector<int>{1, 1, 1, 1}));
  EXPECT_NEAR(y[0], 18.0f, 1e-5);
}

TEST(ConvTranspose2d, OutputGeometryDoubles) {
  dp::Rng rng(1);
  ConvTranspose2d layer(3, 1, 4, 2, 1, rng);
  EXPECT_EQ(layer.outSize(6), 12);
  EXPECT_EQ(layer.outSize(12), 24);
  const Tensor y = layer.forward(Tensor::zeros({1, 3, 6, 6}), false);
  EXPECT_EQ(y.shape(), (std::vector<int>{1, 1, 12, 12}));
}

TEST(ConvTranspose2d, IsAdjointOfConv) {
  // <conv(x), y> == <x, deconv(y)> when they share weights (zero bias).
  dp::Rng rng(10);
  Conv2d conv(2, 3, 3, 2, 1, rng);
  ConvTranspose2d deconv(3, 2, 3, 2, 1, rng);
  // Copy conv weight (3, 2*3*3) into deconv weight (3, 2*3*3): layouts
  // match because deconv stores (inC=3, outC*K*K=2*9).
  deconv.params()[0]->value = conv.params()[0]->value;
  conv.params()[1]->value.zero();
  deconv.params()[1]->value.zero();

  // Sizes chosen so the pair is exactly adjoint: conv maps 7x7 -> 4x4
  // and the transposed conv maps 4x4 -> 7x7.
  const Tensor x = Tensor::randn({1, 2, 7, 7}, rng);
  const Tensor y = Tensor::randn({1, 3, 4, 4}, rng);
  const Tensor cx = conv.forward(x, false);
  const Tensor dy = deconv.forward(y, false);
  double lhs = 0, rhs = 0;
  for (std::size_t i = 0; i < cx.numel(); ++i) lhs += static_cast<double>(cx[i]) * y[i];
  for (std::size_t i = 0; i < dy.numel(); ++i) rhs += static_cast<double>(dy[i]) * x[i];
  EXPECT_NEAR(lhs, rhs, 1e-3);
}

TEST(BatchNorm1d, NormalizesBatchInTraining) {
  dp::Rng rng(1);
  BatchNorm1d bn(2);
  Tensor x({64, 2});
  for (int i = 0; i < 64; ++i) {
    x.at(i, 0) = static_cast<float>(rng.gaussian(5.0, 3.0));
    x.at(i, 1) = static_cast<float>(rng.gaussian(-2.0, 0.5));
  }
  const Tensor y = bn.forward(x, true);
  double m0 = 0, v0 = 0;
  for (int i = 0; i < 64; ++i) m0 += y.at(i, 0);
  m0 /= 64;
  for (int i = 0; i < 64; ++i) v0 += (y.at(i, 0) - m0) * (y.at(i, 0) - m0);
  v0 /= 64;
  EXPECT_NEAR(m0, 0.0, 1e-4);
  EXPECT_NEAR(v0, 1.0, 1e-2);
}

TEST(BatchNorm1d, EvalUsesRunningStats) {
  dp::Rng rng(1);
  BatchNorm1d bn(1);
  for (int step = 0; step < 200; ++step) {
    Tensor x({32, 1});
    for (int i = 0; i < 32; ++i)
      x.at(i, 0) = static_cast<float>(rng.gaussian(4.0, 2.0));
    (void)bn.forward(x, true);
  }
  // Evaluating the distribution mean should map near 0.
  Tensor probe({1, 1});
  probe.at(0, 0) = 4.0f;
  const Tensor y = bn.forward(probe, false);
  EXPECT_NEAR(y[0], 0.0, 0.3);
}

TEST(Reshape, FlattenAndReshapeRoundTrip) {
  Flatten flatten;
  Reshape reshape(2, 3, 4);
  dp::Rng rng(1);
  const Tensor x = Tensor::randn({5, 2, 3, 4}, rng);
  const Tensor flat = flatten.forward(x, false);
  EXPECT_EQ(flat.shape(), (std::vector<int>{5, 24}));
  const Tensor back = reshape.forward(flat, false);
  dp::test::expectTensorsBitEqual(back, x);
  // Gradients pass through unchanged.
  dp::test::expectTensorsBitEqual(flatten.backward(flat), x);
}

TEST(Sequential, ParamAggregationAndCount) {
  dp::Rng rng(1);
  Sequential net;
  net.emplace<Linear>(4, 3, rng);
  net.emplace<ReLU>();
  net.emplace<Linear>(3, 2, rng);
  EXPECT_EQ(net.params().size(), 4u);  // two weights + two biases
  EXPECT_EQ(net.parameterCount(), 4u * 3u + 3u + 3u * 2u + 2u);
  EXPECT_THROW(net.add(nullptr), std::invalid_argument);
}

// ----------------------------------------------------------------- Loss

TEST(Loss, MseValueAndGradient) {
  Tensor pred({1, 2}), target({1, 2}), grad;
  pred[0] = 1.0f;
  pred[1] = 3.0f;
  target[0] = 0.0f;
  target[1] = 1.0f;
  const double loss = mseLoss(pred, target, grad);
  EXPECT_NEAR(loss, (1.0 + 4.0) / 2.0, 1e-6);
  EXPECT_NEAR(grad[0], 2.0 * 1.0 / 2.0, 1e-6);
  EXPECT_NEAR(grad[1], 2.0 * 2.0 / 2.0, 1e-6);
}

TEST(Loss, BceMatchesManualComputation) {
  Tensor logits({1, 2}), target({1, 2}), grad;
  logits[0] = 0.0f;
  logits[1] = 2.0f;
  target[0] = 1.0f;
  target[1] = 0.0f;
  const double loss = bceWithLogitsLoss(logits, target, grad);
  const double expected =
      (-std::log(0.5) + (2.0 + std::log1p(std::exp(-2.0)))) / 2.0;
  EXPECT_NEAR(loss, expected, 1e-6);
  EXPECT_NEAR(grad[0], (0.5 - 1.0) / 2.0, 1e-6);
  EXPECT_NEAR(grad[1], (1.0 / (1.0 + std::exp(-2.0))) / 2.0, 1e-6);
}

TEST(Loss, BceIsStableForExtremeLogits) {
  Tensor logits({1, 2}), target({1, 2}), grad;
  logits[0] = 500.0f;
  logits[1] = -500.0f;
  target[0] = 1.0f;
  target[1] = 0.0f;
  const double loss = bceWithLogitsLoss(logits, target, grad);
  EXPECT_NEAR(loss, 0.0, 1e-6);
  EXPECT_TRUE(std::isfinite(grad[0]));
}

TEST(Loss, KlIsZeroForStandardNormal) {
  Tensor mu = Tensor::zeros({2, 3});
  Tensor logVar = Tensor::zeros({2, 3});
  Tensor gm, gv;
  EXPECT_NEAR(gaussianKlLoss(mu, logVar, gm, gv), 0.0, 1e-6);
  for (std::size_t i = 0; i < gm.numel(); ++i) {
    EXPECT_NEAR(gm[i], 0.0, 1e-6);
    EXPECT_NEAR(gv[i], 0.0, 1e-6);
  }
}

TEST(Loss, KlGradientMatchesNumeric) {
  dp::Rng rng(3);
  Tensor mu = Tensor::randn({2, 3}, rng);
  Tensor logVar = Tensor::randn({2, 3}, rng, 0.5);
  Tensor gm, gv;
  (void)gaussianKlLoss(mu, logVar, gm, gv);
  const double eps = 1e-3;
  for (std::size_t i = 0; i < mu.numel(); ++i) {
    Tensor mp = mu, mm = mu, t1, t2;
    mp[i] += static_cast<float>(eps);
    mm[i] -= static_cast<float>(eps);
    const double num =
        (gaussianKlLoss(mp, logVar, t1, t2) -
         gaussianKlLoss(mm, logVar, t1, t2)) /
        (2 * eps);
    EXPECT_NEAR(num, gm[i], 1e-3);
  }
}

// ------------------------------------------------------------ Optimizer

TEST(Optimizer, SgdDescendsQuadratic) {
  Param p(Tensor::full({1}, 10.0f));
  Sgd opt({&p}, 0.1);
  for (int i = 0; i < 100; ++i) {
    opt.zeroGrad();
    p.grad[0] = 2.0f * p.value[0];  // d/dx x^2
    opt.step();
  }
  EXPECT_NEAR(p.value[0], 0.0, 1e-3);
}

TEST(Optimizer, MomentumAcceleratesDescent) {
  Param plain(Tensor::full({1}, 10.0f));
  Param mom(Tensor::full({1}, 10.0f));
  Sgd optPlain({&plain}, 0.01, 0.0);
  Sgd optMom({&mom}, 0.01, 0.9);
  for (int i = 0; i < 20; ++i) {
    optPlain.zeroGrad();
    optMom.zeroGrad();
    plain.grad[0] = 2.0f * plain.value[0];
    mom.grad[0] = 2.0f * mom.value[0];
    optPlain.step();
    optMom.step();
  }
  EXPECT_LT(std::abs(mom.value[0]), std::abs(plain.value[0]));
}

TEST(Optimizer, AdamConvergesOnQuadratic) {
  Param p(Tensor::full({2}, 5.0f));
  Adam opt({&p}, 0.1);
  for (int i = 0; i < 300; ++i) {
    opt.zeroGrad();
    p.grad[0] = 2.0f * p.value[0];
    p.grad[1] = 2.0f * (p.value[1] - 1.0f);
    opt.step();
  }
  EXPECT_NEAR(p.value[0], 0.0, 1e-2);
  EXPECT_NEAR(p.value[1], 1.0, 1e-2);
}

TEST(Optimizer, WeightDecayShrinksParameters) {
  Param p(Tensor::full({1}, 1.0f), /*wd=*/0.5);
  Sgd opt({&p}, 0.1);
  opt.zeroGrad();  // gradient zero; only decay acts
  opt.step();
  EXPECT_LT(p.value[0], 1.0f);
}

TEST(Optimizer, RejectsNullParams) {
  EXPECT_THROW(Sgd({nullptr}, 0.1), std::invalid_argument);
}

TEST(Optimizer, SgdMomentumMatchesClosedForm) {
  // Constant gradient g=1, lr=0.1, momentum=0.5 from w=0:
  //   v_t = 0.5 v_{t-1} - 0.1,  w_t = w_{t-1} + v_t
  // so v = -0.1, -0.15, -0.175 and w = -0.1, -0.25, -0.425.
  Param p(Tensor::zeros({1}));
  Sgd opt({&p}, 0.1, 0.5);
  const double expectedV[] = {-0.1, -0.15, -0.175};
  const double expectedW[] = {-0.1, -0.25, -0.425};
  for (int t = 0; t < 3; ++t) {
    p.grad[0] = 1.0f;
    opt.step();
    EXPECT_NEAR(p.value[0], expectedW[t], 1e-6) << t;
    // state() exposes the velocity tensor, one per parameter.
    const std::vector<Tensor*> state = opt.state();
    ASSERT_EQ(state.size(), 1u);
    EXPECT_NEAR((*state[0])[0], expectedV[t], 1e-6) << t;
  }
}

TEST(Optimizer, AdamMatchesClosedFormBiasCorrectedMoments) {
  // Constant gradient g=3 from w=0 (defaults beta1=0.9, beta2=0.999):
  // the raw moments are m_t = g(1-beta1^t), v_t = g^2(1-beta2^t), so
  // after bias correction mhat = g and vhat = g^2 exactly — every
  // update is lr * g/(|g|+eps) ~= lr, the signature Adam property.
  Param p(Tensor::zeros({1}));
  Adam opt({&p}, 0.1);
  p.grad[0] = 3.0f;
  opt.step();
  EXPECT_EQ(opt.stepCount(), 1);
  EXPECT_NEAR(p.value[0], -0.1, 1e-6);
  // state() is [step counter, m..., v...].
  std::vector<Tensor*> state = opt.state();
  ASSERT_EQ(state.size(), 3u);
  EXPECT_FLOAT_EQ((*state[0])[0], 1.0f);
  EXPECT_NEAR((*state[1])[0], 0.1 * 3.0, 1e-6);         // m_1
  EXPECT_NEAR((*state[2])[0], 0.001 * 9.0, 1e-8);       // v_1

  p.grad[0] = 3.0f;
  opt.step();
  EXPECT_EQ(opt.stepCount(), 2);
  EXPECT_NEAR(p.value[0], -0.2, 1e-5);
  EXPECT_NEAR((*state[1])[0], 0.9 * 0.3 + 0.1 * 3.0, 1e-6);      // m_2
  EXPECT_NEAR((*state[2])[0], 0.999 * 0.009 + 0.001 * 9.0, 1e-7);// v_2
}

TEST(Optimizer, StateRoundTripResumesBitIdentically) {
  // Train 10 steps, checkpoint (params + optimizer state), restore
  // into fresh objects, then continue both for 10 more steps on the
  // same gradient sequence: trajectories must match bit for bit, for
  // both the Adam moments/step-count path and the Sgd velocity path.
  const auto gradAt = [](long step, std::size_t i) {
    return static_cast<float>(std::sin(0.3 * static_cast<double>(step) +
                                       static_cast<double>(i)));
  };
  const auto fill = [&](Param& p, long step) {
    for (std::size_t i = 0; i < p.grad.numel(); ++i)
      p.grad[i] = gradAt(step, i);
  };

  dp::Rng rng(31);
  const Tensor init = Tensor::randn({5}, rng);
  const std::string adamPath = "dp_nn_adam_state.bin";
  const std::string sgdPath = "dp_nn_sgd_state.bin";

  Param aw(init);
  Adam adam({&aw}, 0.05);
  Param sw(init);
  Sgd sgd({&sw}, 0.05, 0.9);
  for (long t = 0; t < 10; ++t) {
    fill(aw, t);
    adam.step();
    fill(sw, t);
    sgd.step();
  }
  {
    std::vector<const Tensor*> out = {&aw.value};
    for (Tensor* s : adam.state()) out.push_back(s);
    saveTensors(out, adamPath);
  }
  {
    std::vector<const Tensor*> out = {&sw.value};
    for (Tensor* s : sgd.state()) out.push_back(s);
    saveTensors(out, sgdPath);
  }

  Param aw2(Tensor::zeros({5}));
  Adam adam2({&aw2}, 0.05);
  {
    std::vector<Tensor*> in = {&aw2.value};
    for (Tensor* s : adam2.state()) in.push_back(s);
    loadTensors(in, adamPath);
    adam2.loadState();  // re-derives the bias-correction step count
  }
  EXPECT_EQ(adam2.stepCount(), 10);
  Param sw2(Tensor::zeros({5}));
  Sgd sgd2({&sw2}, 0.05, 0.9);
  {
    std::vector<Tensor*> in = {&sw2.value};
    for (Tensor* s : sgd2.state()) in.push_back(s);
    loadTensors(in, sgdPath);
    sgd2.loadState();
  }

  for (long t = 10; t < 20; ++t) {
    fill(aw, t);
    adam.step();
    fill(aw2, t);
    adam2.step();
    fill(sw, t);
    sgd.step();
    fill(sw2, t);
    sgd2.step();
  }
  EXPECT_TRUE(dp::test::tensorsBitEqual(aw2.value, aw.value));
  EXPECT_TRUE(dp::test::tensorsBitEqual(sw2.value, sw.value));
  EXPECT_EQ(adam2.stepCount(), adam.stepCount());
  std::remove(adamPath.c_str());
  std::remove(sgdPath.c_str());
}

// ------------------------------------------------------------- Schedule

TEST(Schedule, StaircaseDecay) {
  StepDecaySchedule s(0.001, 0.7, 2000);
  EXPECT_DOUBLE_EQ(s.lrAt(0), 0.001);
  EXPECT_DOUBLE_EQ(s.lrAt(1999), 0.001);
  EXPECT_NEAR(s.lrAt(2000), 0.0007, 1e-12);
  EXPECT_NEAR(s.lrAt(4500), 0.001 * 0.7 * 0.7, 1e-12);
}

// ------------------------------------------------------------ Serialize

TEST(Serialize, RoundTripsParameters) {
  dp::Rng rng(1);
  Sequential a;
  a.emplace<Linear>(4, 3, rng);
  a.emplace<Linear>(3, 2, rng);
  Sequential b;
  b.emplace<Linear>(4, 3, rng);
  b.emplace<Linear>(3, 2, rng);

  const std::string path = ::testing::TempDir() + "/params.bin";
  saveParams(a.params(), path);
  loadParams(b.params(), path);
  const Tensor x = Tensor::randn({2, 4}, rng);
  dp::test::expectTensorsBitEqual(a.forward(x, false), b.forward(x, false));
  std::remove(path.c_str());
}

TEST(Serialize, DetectsShapeMismatch) {
  dp::Rng rng(1);
  Sequential a;
  a.emplace<Linear>(4, 3, rng);
  Sequential b;
  b.emplace<Linear>(4, 4, rng);
  const std::string path = ::testing::TempDir() + "/params2.bin";
  saveParams(a.params(), path);
  EXPECT_THROW(loadParams(b.params(), path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Serialize, FailsOnMissingFile) {
  dp::Rng rng(1);
  Sequential a;
  a.emplace<Linear>(2, 2, rng);
  EXPECT_THROW(loadParams(a.params(), "/nonexistent/params.bin"),
               std::runtime_error);
}

// ----------------------------------------------------------------- Init

TEST(Init, XavierBoundsRespectFanInOut) {
  dp::Rng rng(1);
  Tensor w({100, 100});
  xavierUniform(w, 100, 100, rng);
  const double bound = std::sqrt(6.0 / 200.0);
  EXPECT_LE(w.absMax(), bound + 1e-6);
  EXPECT_GT(w.absMax(), bound * 0.8);  // actually fills the range
}

TEST(Init, HeNormalHasExpectedScale) {
  dp::Rng rng(1);
  Tensor w({200, 50});
  heNormal(w, 50, rng);
  double var = 0.0;
  for (std::size_t i = 0; i < w.numel(); ++i) var += w[i] * w[i];
  var /= static_cast<double>(w.numel());
  EXPECT_NEAR(var, 2.0 / 50.0, 0.01);
}

}  // namespace
}  // namespace dp::nn
