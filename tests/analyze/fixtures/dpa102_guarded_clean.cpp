// Clean control for DPA102, exercising both ways a syscall passes:
// `recvFrame` consults a named FaultSite itself; `writeRaw` consults
// none but is only ever called from `sendFrame`, which does — the
// caller-guarded fixpoint covers it.
// dp-analyze-path: src/serve/dpa102_guarded_clean.cpp

#include "common/fault.hpp"

namespace dp {
namespace {

int writeRaw(int fd, const char* buf, long n) {
  long put = ::write(fd, buf, static_cast<size_t>(n));
  return put == n ? 0 : -1;
}

}  // namespace

long recvFrame(int fd, char* buf, long cap) {
  static FaultSite recvFault("serve.fixture.recv");
  if (recvFault.shouldFail()) return -1;
  long got = ::recv(fd, buf, static_cast<size_t>(cap), 0);
  return got < 0 ? -1 : got;
}

int sendFrame(int fd, const char* buf, long n) {
  static FaultSite sendFault("serve.fixture.send");
  if (sendFault.shouldFail()) return -1;
  return writeRaw(fd, buf, n);
}

}  // namespace dp
