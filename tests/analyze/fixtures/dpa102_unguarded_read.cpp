// dp-analyze-expect: DPA102
// dp-analyze-path: src/serve/dpa102_unguarded_read.cpp
// Seeded defect: a failure-capable syscall (::read) in a function
// that consults no dp::FaultSite and has no in-model caller — an
// entry point whose failure behavior the chaos suites cannot reach.

#include "common/fault.hpp"

namespace dp {

long readFrame(int fd, char* buf, long cap) {
  long got = ::read(fd, buf, static_cast<size_t>(cap));
  if (got < 0) return -1;
  return got;
}

}  // namespace dp
