// Clean control for DPA104: per-chunk partials written to disjoint
// slots then folded serially in index order, lambda-local floats
// (per-chunk state), integer reductions, and ordered-container folds
// are all deterministic by construction.

#include <numeric>
#include <vector>

#include "common/thread_pool.hpp"

namespace dp {

float sumDeterministic(const std::vector<float>& xs) {
  std::vector<float> partial(xs.size());
  long hits = 0;
  parallelFor(static_cast<long>(xs.size()), 64, [&](long i) {
    float local = xs[i] * 0.5f;  // lambda-local: per-chunk state
    local += 1.0f;
    partial[i] = local;          // disjoint slot, no fold
  });
  for (const float p : partial) hits += p > 1.0f ? 1 : 0;
  float total = 0.0f;
  for (const float p : partial) total += p;  // serial, index order
  return total + static_cast<float>(hits) +
         std::accumulate(xs.begin(), xs.end(), 0.0f);
}

}  // namespace dp
