// dp-analyze-expect: DPA101
// Seeded defect: two methods of the same class take the pair of
// mutexes in opposite orders, so the acquisition graph has the cycle
// a_ <-> b_; `again` also re-acquires a_ while already holding it.
// This file is a fixture for `dp_analyze --self-test`; it is never
// compiled.

#include "common/thread_pool.hpp"

namespace dp {

class PairCache {
 public:
  void fwd();
  void rev();
  void again();

 private:
  Mutex a_;
  Mutex b_;
  int hits_ = 0;
};

void PairCache::fwd() {
  LockGuard ga(a_);
  LockGuard gb(b_);
  ++hits_;
}

void PairCache::rev() {
  LockGuard gb(b_);
  LockGuard ga(a_);
  --hits_;
}

void PairCache::again() {
  LockGuard outer(a_);
  LockGuard inner(a_);  // dp::Mutex is not recursive
  hits_ = 0;
}

}  // namespace dp
