// dp-analyze-expect: DPA101
// Seeded defect: `drain` parks on queueCv_ while still holding
// stats_, a mutex other functions also contend for (`bump` acquires
// it too, so the serialization-mutex exemption does not apply). Any
// thread calling bump() blocks for as long as the waiter sleeps.

#include "common/thread_pool.hpp"

namespace dp {

class WaitHolder {
 public:
  void bump();
  void drain();

 private:
  Mutex stats_;
  Mutex queueMutex_;
  CondVar queueCv_;
  long pending_ = 0;
};

void WaitHolder::bump() {
  LockGuard g(stats_);
  ++pending_;
}

void WaitHolder::drain() {
  LockGuard g(stats_);
  UniqueLock lock(queueMutex_);
  while (pending_ != 0) queueCv_.wait(lock);
}

}  // namespace dp
