// dp-analyze-expect: DPA103
// Seeded defect: allocations on the hot path — a reallocating
// container op and a `new` in the hot function itself, plus a
// push_back one call level down in an unannotated helper.

#include <cstdint>
#include <vector>

namespace dp {

std::vector<int> gRows;

void stashRow(int v) { gRows.push_back(v); }

// dp-analyze: hot
void decodeRow(std::vector<int>& out, int bits) {
  out.push_back(bits);          // reallocating op on the hot path
  int* tmp = new int[8];        // heap allocation on the hot path
  tmp[0] = bits;
  delete[] tmp;
  stashRow(bits);               // helper allocates one level down
}

}  // namespace dp
