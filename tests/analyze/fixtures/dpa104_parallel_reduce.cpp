// dp-analyze-expect: DPA104
// Seeded defect: every way a float fold can pick up a
// non-deterministic order — a captured += inside a parallelFor
// lambda, std::accumulate over an unordered container, and a
// range-for fold over an unordered container.

#include <numeric>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/thread_pool.hpp"

namespace dp {

std::unordered_set<float> gLoss;

float sumParallel(const std::vector<float>& xs) {
  float total = 0.0f;
  parallelFor(static_cast<long>(xs.size()), 64, [&](long i) {
    total += xs[i];  // fold order depends on thread interleaving
  });
  return total;
}

float sumAccumulate() {
  return std::accumulate(gLoss.begin(), gLoss.end(), 0.0f);
}

float sumRangeFor(const std::unordered_map<int, float>& w) {
  float acc = 0.0f;
  for (const auto& kv : w) acc += kv.second;
  return acc;
}

}  // namespace dp
