// Clean control for DPA101: both paths take a_ before b_, the wait
// parks on the mutex guarding its own predicate with nothing else
// held, and the only wait-while-holding lock (call_) is acquired in
// exactly one function — a serialization mutex by construction.

#include "common/thread_pool.hpp"

namespace dp {

class OrderedPair {
 public:
  void fwd();
  void also();
  void serialized();

 private:
  Mutex a_;
  Mutex b_;
  Mutex call_;
  CondVar cv_;
  bool ready_ = false;
};

void OrderedPair::fwd() {
  LockGuard ga(a_);
  LockGuard gb(b_);
  ready_ = true;
}

void OrderedPair::also() {
  LockGuard ga(a_);
  LockGuard gb(b_);
  ready_ = false;
}

void OrderedPair::serialized() {
  LockGuard call(call_);
  UniqueLock lock(b_);
  while (!ready_) cv_.wait(lock);
}

}  // namespace dp
