// Clean control for DPA103: the scratch= annotation sanctions
// capacity-reusing ops on the named buffer, throw-path allocations
// are error exits, cold callees are sanctioned slow paths, and an
// explicit allow() escape silences a deliberate residual allocation.

#include <stdexcept>
#include <string>
#include <vector>

namespace dp {

// dp-analyze: cold
void logDecodeError(int bits) {
  std::string msg = "bad row: " + std::to_string(bits);
  throw std::runtime_error(msg);
}

// dp-analyze: hot scratch=scr
void decodeRowReuse(std::vector<int>& scr, int bits) {
  scr.resize(8);                    // amortized: capacity reused
  scr[0] = bits;
  if (bits < 0) {
    logDecodeError(bits);           // cold callee, skipped
    throw std::runtime_error("x");  // throw-path alloc, exempt
  }
  // dp-analyze: allow(DPA103)
  scr.push_back(bits);
}

}  // namespace dp
