#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "geometry/clip.hpp"
#include "geometry/design_rules.hpp"
#include "geometry/rect.hpp"
#include "geometry/track_grid.hpp"

namespace dp {
namespace {

// ---------------------------------------------------------------- Rect

TEST(Rect, DefaultIsEmpty) {
  Rect r;
  EXPECT_TRUE(r.empty());
  EXPECT_DOUBLE_EQ(r.area(), 0.0);
}

TEST(Rect, BasicMeasures) {
  Rect r{1.0, 2.0, 5.0, 10.0};
  EXPECT_DOUBLE_EQ(r.width(), 4.0);
  EXPECT_DOUBLE_EQ(r.height(), 8.0);
  EXPECT_DOUBLE_EQ(r.area(), 32.0);
  EXPECT_EQ(r.center(), (Point{3.0, 6.0}));
  EXPECT_EQ(r.lowerLeft(), (Point{1.0, 2.0}));
  EXPECT_EQ(r.upperRight(), (Point{5.0, 10.0}));
}

TEST(Rect, NormalizedSwapsCorners) {
  Rect r{5.0, 10.0, 1.0, 2.0};
  EXPECT_TRUE(r.empty());
  const Rect n = r.normalized();
  EXPECT_EQ(n, (Rect{1.0, 2.0, 5.0, 10.0}));
  EXPECT_FALSE(n.empty());
}

TEST(Rect, OverlapsRequiresInteriorIntersection) {
  Rect a{0, 0, 2, 2};
  EXPECT_TRUE(a.overlaps(Rect{1, 1, 3, 3}));
  EXPECT_FALSE(a.overlaps(Rect{2, 0, 4, 2}));  // shared edge only
  EXPECT_FALSE(a.overlaps(Rect{3, 3, 4, 4}));  // disjoint
  EXPECT_FALSE(a.overlaps(Rect{2, 2, 3, 3}));  // corner contact
}

TEST(Rect, TouchesIncludesEdgeAbutment) {
  Rect a{0, 0, 2, 2};
  EXPECT_TRUE(a.touches(Rect{2, 0, 4, 2}));   // right edge abut
  EXPECT_TRUE(a.touches(Rect{0, 2, 2, 4}));   // top edge abut
  EXPECT_TRUE(a.touches(Rect{1, 1, 3, 3}));   // overlap counts
  EXPECT_FALSE(a.touches(Rect{2, 2, 3, 3}));  // corner only
  EXPECT_FALSE(a.touches(Rect{5, 5, 6, 6}));
}

TEST(Rect, CornerTouchesDetectsBowTieContact) {
  Rect a{0, 0, 2, 2};
  EXPECT_TRUE(a.cornerTouches(Rect{2, 2, 3, 3}));
  EXPECT_TRUE(a.cornerTouches(Rect{-1, -1, 0, 0}));
  EXPECT_FALSE(a.cornerTouches(Rect{2, 0, 4, 2}));
  EXPECT_FALSE(a.cornerTouches(Rect{1, 1, 3, 3}));
}

TEST(Rect, IntersectAndUnite) {
  Rect a{0, 0, 4, 4};
  Rect b{2, 2, 6, 6};
  EXPECT_EQ(a.intersect(b), (Rect{2, 2, 4, 4}));
  EXPECT_EQ(a.unite(b), (Rect{0, 0, 6, 6}));
  EXPECT_TRUE(a.intersect(Rect{5, 5, 6, 6}).empty());
  EXPECT_EQ(Rect{}.unite(a), a);
}

TEST(Rect, ContainsRectAndPoint) {
  Rect a{0, 0, 4, 4};
  EXPECT_TRUE(a.contains(Rect{1, 1, 3, 3}));
  EXPECT_TRUE(a.contains(a));
  EXPECT_FALSE(a.contains(Rect{1, 1, 5, 3}));
  EXPECT_TRUE(a.contains(Point{4, 4}));
  EXPECT_FALSE(a.contains(Point{4.1, 4}));
}

TEST(Rect, ShiftedTranslates) {
  EXPECT_EQ((Rect{0, 0, 1, 1}.shifted(2, 3)), (Rect{2, 3, 3, 4}));
}

TEST(Rect, RectLessIsStrictWeakOrder) {
  Rect a{0, 0, 1, 1}, b{0, 1, 1, 2};
  EXPECT_TRUE(rectLess(a, b));
  EXPECT_FALSE(rectLess(b, a));
  EXPECT_FALSE(rectLess(a, a));
}

/// Property sweep: intersection is commutative and contained in both.
class RectPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(RectPropertyTest, IntersectionProperties) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  for (int i = 0; i < 50; ++i) {
    const Rect a{rng.uniform(0, 10), rng.uniform(0, 10),
                 rng.uniform(10, 20), rng.uniform(10, 20)};
    const Rect b{rng.uniform(0, 15), rng.uniform(0, 15),
                 rng.uniform(5, 20), rng.uniform(5, 20)};
    const Rect an = a.normalized(), bn = b.normalized();
    EXPECT_EQ(an.intersect(bn), bn.intersect(an));
    const Rect i1 = an.intersect(bn);
    if (!i1.empty()) {
      EXPECT_TRUE(an.contains(i1));
      EXPECT_TRUE(bn.contains(i1));
    }
    EXPECT_TRUE(an.unite(bn).contains(an));
    EXPECT_TRUE(an.unite(bn).contains(bn));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RectPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5));

// ---------------------------------------------------------------- Clip

TEST(Clip, AddShapeClipsToWindow) {
  Clip c(Rect{0, 0, 10, 10});
  EXPECT_TRUE(c.addShape(Rect{-5, 2, 5, 4}));
  ASSERT_EQ(c.shapeCount(), 1u);
  EXPECT_EQ(c.shapes()[0], (Rect{0, 2, 5, 4}));
}

TEST(Clip, AddShapeDropsOutsideShapes) {
  Clip c(Rect{0, 0, 10, 10});
  EXPECT_FALSE(c.addShape(Rect{20, 20, 30, 30}));
  EXPECT_TRUE(c.empty());
}

TEST(Clip, NormalizeMergesAbuttingSameRowShapes) {
  Clip c(Rect{0, 0, 20, 10});
  c.addShape(Rect{0, 2, 5, 4});
  c.addShape(Rect{5, 2, 9, 4});
  c.addShape(Rect{3, 2, 6, 4});  // overlapping
  c.normalize();
  ASSERT_EQ(c.shapeCount(), 1u);
  EXPECT_EQ(c.shapes()[0], (Rect{0, 2, 9, 4}));
}

TEST(Clip, NormalizeKeepsSeparatedShapes) {
  Clip c(Rect{0, 0, 20, 10});
  c.addShape(Rect{0, 2, 5, 4});
  c.addShape(Rect{8, 2, 12, 4});
  c.addShape(Rect{0, 6, 5, 8});
  c.normalize();
  EXPECT_EQ(c.shapeCount(), 3u);
}

TEST(Clip, DensityAndArea) {
  Clip c(Rect{0, 0, 10, 10});
  c.addShape(Rect{0, 0, 5, 10});
  EXPECT_DOUBLE_EQ(c.shapeArea(), 50.0);
  EXPECT_DOUBLE_EQ(c.density(), 0.5);
}

TEST(Clip, RebasedMovesOriginToZero) {
  Clip c(Rect{10, 20, 30, 40});
  c.addShape(Rect{12, 22, 14, 24});
  const Clip r = c.rebased();
  EXPECT_EQ(r.window(), (Rect{0, 0, 20, 20}));
  ASSERT_EQ(r.shapeCount(), 1u);
  EXPECT_EQ(r.shapes()[0], (Rect{2, 2, 4, 4}));
}

TEST(Clip, EqualityComparesWindowAndShapes) {
  Clip a(Rect{0, 0, 10, 10});
  Clip b(Rect{0, 0, 10, 10});
  EXPECT_EQ(a, b);
  a.addShape(Rect{1, 1, 2, 2});
  EXPECT_NE(a, b);
}

// -------------------------------------------------------- DesignRules

TEST(DesignRules, Euv7nmDerivedQuantities) {
  const DesignRules r = euv7nmM2();
  EXPECT_DOUBLE_EQ(r.wireWidth(), 16.0);
  EXPECT_DOUBLE_EQ(r.rowHeight(), 16.0);
  EXPECT_EQ(r.rowCount(), 12);
  EXPECT_EQ(r.trackCount(), 6);
  EXPECT_EQ(r.maxCx, 12);
  EXPECT_EQ(r.maxCy, 12);
}

TEST(DesignRules, WorstCaseTopologyFitsInWindow) {
  // The densest legal row alternates single-cell wires and gaps; its
  // Eq. (10) lower bound must not exceed the clip width (the paper's
  // cx <= 12 solvability guarantee).
  const DesignRules r = euv7nmM2();
  const int wires = r.maxCx / 2;
  const double minWidth = (wires - 1) * r.minT2T +   // interior T2T runs
                          (wires - 2) * r.minLength + // interior wires
                          2 * r.minSpaceX;            // border wires
  EXPECT_LE(minWidth, r.clipWidth);
}

// ---------------------------------------------------------------- Rng

TEST(Rng, DeterministicPerSeedAndForkIndependent) {
  Rng a(5), b(5);
  for (int i = 0; i < 20; ++i)
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
  Rng c(5);
  Rng fork = c.fork();
  // The fork is a distinct deterministic stream.
  Rng c2(5);
  Rng fork2 = c2.fork();
  for (int i = 0; i < 10; ++i)
    EXPECT_DOUBLE_EQ(fork.uniform(), fork2.uniform());
}

TEST(Rng, DistributionsRespectBounds) {
  Rng rng(6);
  for (int i = 0; i < 200; ++i) {
    const double u = rng.uniform(2.0, 3.0);
    EXPECT_GE(u, 2.0);
    EXPECT_LT(u, 3.0);
    const int k = rng.uniformInt(-2, 2);
    EXPECT_GE(k, -2);
    EXPECT_LE(k, 2);
  }
  int trues = 0;
  for (int i = 0; i < 1000; ++i)
    if (rng.bernoulli(0.3)) ++trues;
  EXPECT_NEAR(trues / 1000.0, 0.3, 0.06);
}

// ---------------------------------------------------------- TrackGrid

TEST(TrackGrid, RowAndTrackBands) {
  const DesignRules r = euv7nmM2();
  const TrackGrid g(Rect{0, 0, 192, 192}, r);
  EXPECT_EQ(g.rowCount(), 12);
  EXPECT_EQ(g.trackCount(), 6);
  EXPECT_EQ(g.rowBand(0), (Rect{0, 0, 192, 16}));
  EXPECT_EQ(g.trackBand(0), (Rect{0, 16, 192, 32}));
  EXPECT_EQ(g.trackBand(5), (Rect{0, 176, 192, 192}));
}

TEST(TrackGrid, RowAtHandlesBordersAndOutside) {
  const TrackGrid g(Rect{0, 0, 192, 192}, euv7nmM2());
  EXPECT_EQ(g.rowAt(0.0), 0);
  EXPECT_EQ(g.rowAt(16.0), 1);
  EXPECT_EQ(g.rowAt(191.9), 11);
  EXPECT_EQ(g.rowAt(192.0), 11);  // top border belongs to last row
  EXPECT_EQ(g.rowAt(-1.0), -1);
  EXPECT_EQ(g.rowAt(200.0), -1);
}

TEST(TrackGrid, TrackOfAcceptsOnlyWireBands) {
  const TrackGrid g(Rect{0, 0, 192, 192}, euv7nmM2());
  EXPECT_EQ(g.trackOf(Rect{0, 16, 50, 32}), 0);
  EXPECT_EQ(g.trackOf(Rect{0, 80, 50, 96}), 2);
  EXPECT_EQ(g.trackOf(Rect{0, 0, 50, 16}), -1);   // spacer row
  EXPECT_EQ(g.trackOf(Rect{0, 16, 50, 48}), -1);  // two rows tall
  EXPECT_EQ(g.trackOf(Rect{0, 18, 50, 34}), -1);  // off-lattice
}

TEST(TrackGrid, LatticeRowOfAcceptsAnyRow) {
  const TrackGrid g(Rect{0, 0, 192, 192}, euv7nmM2());
  EXPECT_EQ(g.latticeRowOf(Rect{0, 0, 50, 16}), 0);
  EXPECT_EQ(g.latticeRowOf(Rect{0, 16, 50, 32}), 1);
  EXPECT_EQ(g.latticeRowOf(Rect{0, 176, 50, 192}), 11);
  EXPECT_EQ(g.latticeRowOf(Rect{0, 8, 50, 24}), -1);
}

TEST(TrackGrid, ThrowsOnBadConfiguration) {
  DesignRules r = euv7nmM2();
  r.pitch = 0.0;
  EXPECT_THROW(TrackGrid(Rect{0, 0, 10, 10}, r), std::invalid_argument);
  const TrackGrid g(Rect{0, 0, 192, 192}, euv7nmM2());
  // The void casts keep [[nodiscard]] quiet: the THROW is the point.
  EXPECT_THROW(static_cast<void>(g.rowBand(-1)), std::out_of_range);
  EXPECT_THROW(static_cast<void>(g.rowBand(12)), std::out_of_range);
}

}  // namespace
}  // namespace dp
