// Training-robustness suite (ctest label: train) — DESIGN.md §16.
//
// Covers the TrainCheckpoint record (atomic generation-suffixed
// publication, CRC/size/config-hash validation, stale-generation
// sweeps), the harness's behavior parity with an unguarded loop, and
// the headline crash-equivalence property ported from the massive
// pipeline: a training run crashed at ANY point (every
// train.checkpoint.* site plus the io.atomic.* writer sites), then
// resumed, converges on a checkpoint directory byte-identical to an
// uninterrupted run's — at DP_THREADS=1 and 8. The divergence guard
// (train.guard.nan injection, rollback + LR backoff, bounded retries)
// and the SIGTERM seal-and-resume path round out the failure matrix.

#include <gtest/gtest.h>

#include <csignal>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <limits>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/fault.hpp"
#include "common/rng.hpp"
#include "datagen/generator.hpp"
#include "geometry/design_rules.hpp"
#include "models/tcae.hpp"
#include "nn/optimizer.hpp"
#include "serve/metrics.hpp"
#include "testutil.hpp"
#include "train/checkpoint.hpp"
#include "train/harness.hpp"

namespace {

using dp::test::ScopedDpThreads;
using dp::test::ScopedTempDir;
using dp::test::tensorsBitEqual;
using dp::train::DivergenceError;
using dp::train::Harness;
using dp::train::HarnessSpec;
using dp::train::HarnessStats;
using dp::train::TrainCheckpoint;
using dp::train::TrainOptions;

std::map<std::string, std::string> dirBytes(const std::string& dir) {
  std::map<std::string, std::string> out;  // sorted by file name
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    std::ifstream in(entry.path(), std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    out[entry.path().filename().string()] = ss.str();
  }
  return out;
}

::testing::AssertionResult storesIdentical(
    const std::map<std::string, std::string>& a,
    const std::map<std::string, std::string>& b) {
  for (const auto& [name, bytes] : a) {
    const auto it = b.find(name);
    if (it == b.end())
      return ::testing::AssertionFailure() << name << " missing";
    if (it->second != bytes)
      return ::testing::AssertionFailure()
             << name << " differs (" << bytes.size() << " vs "
             << it->second.size() << " bytes)";
  }
  for (const auto& [name, bytes] : b)
    if (a.find(name) == a.end())
      return ::testing::AssertionFailure() << name << " unexpected";
  return ::testing::AssertionSuccess();
}

// ------------------------------------------------- checkpoint record

TrainCheckpoint sampleRecord() {
  TrainCheckpoint rec;
  rec.step = 40;
  rec.totalSteps = 100;
  rec.epoch = 3;
  rec.rollbacks = 2;
  rec.lrScale = 0.25;
  rec.nanEvents = 5;
  rec.lossTrace = {0.9, 0.5, 0.25, 0.125};
  rec.recentLosses = {0.13, 0.12, 0.11};
  rec.rngState = dp::Rng(17).state();
  rec.configHash = 0xdeadbeefcafef00dULL;  // needs exact serialization
  return rec;
}

TEST(TrainCheckpointRecord, FreshDirectorySweepsDebrisAndReturnsNullopt) {
  ScopedTempDir dir("dp_train_fresh");
  // A crashed save can leave an uncommitted state file and atomic-
  // writer temp files behind with no manifest.
  { std::ofstream(dir.file("state.40.bin")) << "junk"; }
  { std::ofstream(dir.file("manifest.json.tmp.123")) << "junk"; }
  dp::nn::Tensor t = dp::nn::Tensor::zeros({4});
  EXPECT_FALSE(
      dp::train::loadCheckpoint(dir.path(), 1, {&t}).has_value());
  EXPECT_TRUE(dirBytes(dir.path()).empty());
}

TEST(TrainCheckpointRecord, RoundTripsRecordAndTensors) {
  ScopedTempDir dir("dp_train_roundtrip");
  dp::Rng rng(3);
  const dp::nn::Tensor a = dp::nn::Tensor::randn({3, 4}, rng);
  const dp::nn::Tensor b = dp::nn::Tensor::randn({7}, rng);
  const TrainCheckpoint rec = sampleRecord();
  dp::train::saveCheckpoint(dir.path(), rec, {&a, &b});

  const auto files = dirBytes(dir.path());
  ASSERT_EQ(files.size(), 2u);
  EXPECT_EQ(files.count("manifest.json"), 1u);
  EXPECT_EQ(files.count("state.40.bin"), 1u);

  dp::nn::Tensor la = dp::nn::Tensor::zeros({3, 4});
  dp::nn::Tensor lb = dp::nn::Tensor::zeros({7});
  const auto loaded =
      dp::train::loadCheckpoint(dir.path(), rec.configHash, {&la, &lb});
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->step, rec.step);
  EXPECT_EQ(loaded->totalSteps, rec.totalSteps);
  EXPECT_EQ(loaded->epoch, rec.epoch);
  EXPECT_EQ(loaded->rollbacks, rec.rollbacks);
  EXPECT_DOUBLE_EQ(loaded->lrScale, rec.lrScale);
  EXPECT_EQ(loaded->nanEvents, rec.nanEvents);
  EXPECT_EQ(loaded->lossTrace, rec.lossTrace);
  EXPECT_EQ(loaded->recentLosses, rec.recentLosses);
  EXPECT_EQ(loaded->rngState, rec.rngState);
  EXPECT_EQ(loaded->configHash, rec.configHash);
  EXPECT_TRUE(tensorsBitEqual(la, a));
  EXPECT_TRUE(tensorsBitEqual(lb, b));
}

TEST(TrainCheckpointRecord, RejectsConfigHashMismatch) {
  ScopedTempDir dir("dp_train_hashmismatch");
  const TrainCheckpoint rec = sampleRecord();
  dp::nn::Tensor t = dp::nn::Tensor::zeros({2});
  dp::train::saveCheckpoint(dir.path(), rec, {&t});
  try {
    (void)dp::train::loadCheckpoint(dir.path(), rec.configHash + 1, {&t});
    FAIL() << "hash mismatch not rejected";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("refusing to resume"),
              std::string::npos)
        << e.what();
  }
}

TEST(TrainCheckpointRecord, RejectsCorruptAndTruncatedState) {
  ScopedTempDir dir("dp_train_corrupt");
  dp::Rng rng(9);
  dp::nn::Tensor t = dp::nn::Tensor::randn({16}, rng);
  const TrainCheckpoint rec = sampleRecord();
  dp::train::saveCheckpoint(dir.path(), rec, {&t});
  const std::string statePath = dir.file("state.40.bin");

  // Flip one byte in the middle: CRC mismatch, same size.
  std::string bytes;
  {
    std::ifstream in(statePath, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    bytes = ss.str();
  }
  {
    std::string corrupt = bytes;
    corrupt[corrupt.size() / 2] ^= 0x40;
    std::ofstream out(statePath, std::ios::binary | std::ios::trunc);
    out << corrupt;
  }
  EXPECT_THROW(
      (void)dp::train::loadCheckpoint(dir.path(), rec.configHash, {&t}),
      std::runtime_error);

  // Truncate: size mismatch, rejected before any CRC work.
  {
    std::ofstream out(statePath, std::ios::binary | std::ios::trunc);
    out << "short";
  }
  EXPECT_THROW(
      (void)dp::train::loadCheckpoint(dir.path(), rec.configHash, {&t}),
      std::runtime_error);
}

TEST(TrainCheckpointRecord, SaveAndLoadFaultsAreInjectable) {
  ScopedTempDir dir("dp_train_ckptfault");
  dp::nn::Tensor t = dp::nn::Tensor::zeros({2});
  const TrainCheckpoint rec = sampleRecord();

  dp::faults::arm("train.checkpoint.save", 4, 1.0);
  EXPECT_THROW(dp::train::saveCheckpoint(dir.path(), rec, {&t}),
               dp::FaultInjected);
  dp::faults::disarmAll();
  dp::train::saveCheckpoint(dir.path(), rec, {&t});

  // The load site fires only once a manifest exists (a fresh run has
  // no load to fail).
  dp::faults::arm("train.checkpoint.load", 4, 1.0);
  EXPECT_THROW(
      (void)dp::train::loadCheckpoint(dir.path(), rec.configHash, {&t}),
      dp::FaultInjected);
  dp::faults::disarmAll();
  EXPECT_TRUE(dp::train::loadCheckpoint(dir.path(), rec.configHash, {&t})
                  .has_value());
}

// ------------------------------------------------- synthetic harness

constexpr int kDim = 6;
constexpr std::uint64_t kQuadHash = 0x51adf00dULL;

/// One jittered least-squares step on `w`: target_i = i/kDim plus rng
/// noise, so the step consumes the training stream and the loss
/// decreases — a minimal stand-in for a model's forward/backward.
double quadStep(dp::nn::Param& w, dp::Rng& rng) {
  w.grad.zero();
  double loss = 0.0;
  for (std::size_t i = 0; i < w.value.numel(); ++i) {
    const double target =
        static_cast<double>(i) / kDim + 0.01 * rng.gaussian();
    const double diff = static_cast<double>(w.value[i]) - target;
    loss += diff * diff;
    w.grad[i] = static_cast<float>(2.0 * diff / kDim);
  }
  return loss / kDim;
}

struct QuadResult {
  HarnessStats stats;
  dp::nn::Tensor weights;
};

/// Builds a fresh quadratic model (seeded init), runs it on the
/// harness, and returns the stats plus final weights. `onStep` hooks
/// into the step function (stop requests, fault choreography).
QuadResult runQuad(const TrainOptions& options, long totalSteps,
                   const std::function<void(long)>& onStep = {}) {
  dp::Rng init(5);
  dp::nn::Param w(dp::nn::Tensor::randn({kDim}, init));
  dp::nn::Adam opt({&w}, 0.05);
  HarnessSpec spec;
  spec.totalSteps = totalSteps;
  spec.lrAt = [](long) { return 0.05; };
  spec.configHash = kQuadHash;
  spec.samplesPerStep = 1;
  spec.datasetSize = 10;
  Harness harness({&w}, {}, {&opt}, spec, options);
  dp::Rng rng(6);
  const HarnessStats stats =
      harness.run(rng, [&](long step, dp::Rng& r) {
        if (onStep) onStep(step);
        const double loss = quadStep(w, r);
        harness.guardedStep(opt);
        return loss;
      });
  return {stats, w.value};
}

TrainOptions quadOptions(const std::string& dir = "") {
  TrainOptions o;
  o.checkpointDir = dir;
  o.checkpointEvery = 20;
  o.traceEvery = 10;
  return o;
}

class TrainHarness : public ::testing::Test {
 protected:
  void SetUp() override {
    dp::faults::disarmAll();
    dp::train::clearStopRequest();
  }
  void TearDown() override {
    dp::faults::disarmAll();
    dp::train::clearStopRequest();
  }
};

TEST_F(TrainHarness, MatchesAnUnguardedLoopBitForBit) {
  const QuadResult guarded = runQuad(quadOptions(), 60);
  EXPECT_EQ(guarded.stats.steps, 60);
  EXPECT_FALSE(guarded.stats.resumed);
  EXPECT_EQ(guarded.stats.rollbacks, 0);
  EXPECT_EQ(guarded.stats.nanEvents, 0);
  ASSERT_EQ(guarded.stats.lossTrace.size(), 6u);  // steps 0,10,...,50
  EXPECT_GT(guarded.stats.lossTrace.front(),
            guarded.stats.lossTrace.back());

  // The same model stepped by a bare loop: with finite gradients the
  // guard layer must be invisible.
  dp::Rng init(5);
  dp::nn::Param w(dp::nn::Tensor::randn({kDim}, init));
  dp::nn::Adam opt({&w}, 0.05);
  dp::Rng rng(6);
  double last = 0.0;
  for (long step = 0; step < 60; ++step) {
    opt.setLearningRate(0.05);
    last = quadStep(w, rng);
    opt.step();
  }
  EXPECT_TRUE(tensorsBitEqual(w.value, guarded.weights));
  EXPECT_DOUBLE_EQ(last, guarded.stats.finalLoss);
}

TEST_F(TrainHarness, RejectsInvalidConstruction) {
  dp::Rng init(5);
  dp::nn::Param w(dp::nn::Tensor::randn({kDim}, init));
  dp::nn::Adam opt({&w}, 0.05);
  HarnessSpec spec;
  spec.totalSteps = 10;
  EXPECT_THROW(Harness({&w}, {}, {&opt}, spec, TrainOptions{}),
               std::invalid_argument);  // missing lrAt
  spec.lrAt = [](long) { return 0.05; };
  TrainOptions bad;
  bad.checkpointEvery = 0;
  EXPECT_THROW(Harness({&w}, {}, {&opt}, spec, bad),
               std::invalid_argument);
  EXPECT_THROW(Harness({nullptr}, {}, {&opt}, spec, TrainOptions{}),
               std::invalid_argument);
}

// The headline chaos property, on the cheap synthetic model: crash at
// every step boundary and inside every writer syscall window, resume,
// and converge on a byte-identical checkpoint directory.
TEST_F(TrainHarness, KillAtEveryCrashWindowResumesToIdenticalCheckpoint) {
  ScopedTempDir ref("dp_train_chaos_ref");
  const QuadResult refRun = runQuad(quadOptions(ref.path()), 100);
  EXPECT_EQ(refRun.stats.steps, 100);
  EXPECT_GT(refRun.stats.checkpointsSaved, 0);
  const auto refBytes = dirBytes(ref.path());

  struct SiteSpec {
    const char* name;
    double resumeRate;  // per-call fire rate for re-armed windows
  };
  // train.checkpoint.step fires once per STEP, the others once per
  // boundary/write — the per-step site needs a far lower resume rate
  // or no attempt ever reaches the next checkpoint.
  const std::vector<SiteSpec> sites = {
      {"train.checkpoint.step", 0.04}, {"train.checkpoint.save", 0.35},
      {"io.atomic.write", 0.35},       {"io.atomic.fsync", 0.35},
      {"io.atomic.rename", 0.35}};
  for (const SiteSpec& site : sites) {
    SCOPED_TRACE(site.name);
    ScopedTempDir dir("dp_train_chaos");
    // First window always fires at the site's first call, so every
    // site provably crashes at least once; later windows re-arm with
    // fresh seeds so each resume crashes somewhere new.
    dp::faults::arm(site.name, 13, 1.0);
    int crashes = 0;
    bool complete = false;
    for (int attempt = 0; attempt < 12 && !complete; ++attempt) {
      try {
        (void)runQuad(quadOptions(dir.path()), 100);
        complete = true;
      } catch (const std::exception&) {
        ++crashes;  // crash window: resume on the next attempt
        dp::faults::arm(site.name, 14 + attempt, site.resumeRate);
      }
    }
    dp::faults::disarmAll();
    const QuadResult result = runQuad(quadOptions(dir.path()), 100);
    EXPECT_GT(crashes, 0) << "fault never fired; test exercised nothing";
    EXPECT_EQ(result.stats.steps, 100);
    EXPECT_TRUE(tensorsBitEqual(result.weights, refRun.weights));
    EXPECT_TRUE(storesIdentical(dirBytes(dir.path()), refBytes));
  }
}

TEST_F(TrainHarness, ExtendingTotalStepsResumesForward) {
  ScopedTempDir ref("dp_train_extend_ref");
  const QuadResult refRun = runQuad(quadOptions(ref.path()), 100);

  ScopedTempDir dir("dp_train_extend");
  const QuadResult half = runQuad(quadOptions(dir.path()), 60);
  EXPECT_EQ(half.stats.steps, 60);

  const QuadResult full = runQuad(quadOptions(dir.path()), 100);
  EXPECT_TRUE(full.stats.resumed);
  EXPECT_EQ(full.stats.resumedFrom, 60);
  EXPECT_EQ(full.stats.steps, 100);
  EXPECT_TRUE(tensorsBitEqual(full.weights, refRun.weights));
  EXPECT_TRUE(storesIdentical(dirBytes(dir.path()), dirBytes(ref.path())));
}

TEST_F(TrainHarness, RefusesToResumeBackwards) {
  ScopedTempDir dir("dp_train_backwards");
  (void)runQuad(quadOptions(dir.path()), 60);
  try {
    (void)runQuad(quadOptions(dir.path()), 40);
    FAIL() << "backwards resume not rejected";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("refusing to resume backwards"),
              std::string::npos)
        << e.what();
  }
}

TEST_F(TrainHarness, StopRequestSealsACheckpointAndResumes) {
  ScopedTempDir ref("dp_train_stop_ref");
  const QuadResult refRun = runQuad(quadOptions(ref.path()), 100);

  ScopedTempDir dir("dp_train_stop");
  // Request the stop mid-interval (step 37, off the checkpoint grid):
  // the harness must seal at the NEXT step boundary it reaches, not
  // wait for the grid.
  const QuadResult sealed =
      runQuad(quadOptions(dir.path()), 100, [](long step) {
        if (step == 37) dp::train::requestStop();
      });
  EXPECT_TRUE(sealed.stats.sealedByStop);
  EXPECT_EQ(sealed.stats.steps, 38);
  EXPECT_EQ(dirBytes(dir.path()).count("state.38.bin"), 1u);

  dp::train::clearStopRequest();
  const QuadResult resumed = runQuad(quadOptions(dir.path()), 100);
  EXPECT_TRUE(resumed.stats.resumed);
  EXPECT_EQ(resumed.stats.resumedFrom, 38);
  EXPECT_EQ(resumed.stats.steps, 100);
  EXPECT_TRUE(tensorsBitEqual(resumed.weights, refRun.weights));
  EXPECT_TRUE(storesIdentical(dirBytes(dir.path()), dirBytes(ref.path())));
}

TEST_F(TrainHarness, SigtermSetsTheStopFlagViaTheInstalledHandler) {
  dp::train::installStopHandler();
  EXPECT_FALSE(dp::train::stopRequested());
  ASSERT_EQ(std::raise(SIGTERM), 0);  // caught by the handler
  EXPECT_TRUE(dp::train::stopRequested());
  dp::train::clearStopRequest();
}

TEST_F(TrainHarness, NanInjectionRollsBackAndBacksOffDeterministically) {
  // A low-rate injected divergence stream: the run must absorb the
  // detections via rollback + LR backoff and still complete, and the
  // whole trajectory must replay bit-identically from the same seed.
  QuadResult first{};
  TrainOptions options = quadOptions();
  options.maxRollbacks = 16;  // headroom: replayed steps re-roll the dice
  for (int pass = 0; pass < 2; ++pass) {
    dp::faults::arm("train.guard.nan", 21, 0.02);
    const QuadResult r = runQuad(options, 100);
    dp::faults::disarmAll();
    EXPECT_EQ(r.stats.steps, 100);
    EXPECT_GT(r.stats.rollbacks, 0);
    EXPECT_GT(r.stats.nanEvents, 0);
    if (pass == 0) {
      first = r;
    } else {
      EXPECT_EQ(r.stats.rollbacks, first.stats.rollbacks);
      EXPECT_EQ(r.stats.nanEvents, first.stats.nanEvents);
      EXPECT_EQ(r.stats.lossTrace, first.stats.lossTrace);
      EXPECT_TRUE(tensorsBitEqual(r.weights, first.weights));
    }
  }
}

TEST_F(TrainHarness, NonFiniteGradientSentinelTriggersRollback) {
  // Poison the gradient directly at one step (no injection site): the
  // sentinel must catch it and the rollback replay must complete.
  dp::Rng init(5);
  dp::nn::Param w(dp::nn::Tensor::randn({kDim}, init));
  dp::nn::Adam opt({&w}, 0.05);
  HarnessSpec spec;
  spec.totalSteps = 30;
  spec.lrAt = [](long) { return 0.05; };
  spec.configHash = kQuadHash;
  Harness harness({&w}, {}, {&opt}, spec, quadOptions());
  dp::Rng rng(6);
  bool poisoned = false;
  const HarnessStats stats =
      harness.run(rng, [&](long step, dp::Rng& r) {
        const double loss = quadStep(w, r);
        if (step == 7 && !poisoned) {
          poisoned = true;
          w.grad[0] = std::numeric_limits<float>::quiet_NaN();
        }
        harness.guardedStep(opt);
        return loss;
      });
  EXPECT_EQ(stats.steps, 30);
  EXPECT_EQ(stats.rollbacks, 1);
  EXPECT_EQ(stats.nanEvents, 1);
}

TEST_F(TrainHarness, ExhaustedRollbackBudgetHardFailsWithDiagnostic) {
  dp::faults::arm("train.guard.nan", 8, 1.0);  // every step diverges
  TrainOptions options = quadOptions();
  options.maxRollbacks = 2;
  try {
    (void)runQuad(options, 50);
    FAIL() << "exhausted budget did not fail";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("rollback budget exhausted"), std::string::npos)
        << what;
    EXPECT_NE(what.find("2 rollbacks"), std::string::npos) << what;
    EXPECT_NE(what.find("lrScale"), std::string::npos) << what;
  }
  dp::faults::disarmAll();
}

TEST_F(TrainHarness, LossSpikeDetectionRollsBack) {
  dp::Rng init(5);
  dp::nn::Param w(dp::nn::Tensor::randn({kDim}, init));
  dp::nn::Adam opt({&w}, 0.05);
  HarnessSpec spec;
  spec.totalSteps = 40;
  spec.lrAt = [](long) { return 0.05; };
  spec.configHash = kQuadHash;
  TrainOptions options = quadOptions();
  options.spikeFactor = 10.0;
  Harness harness({&w}, {}, {&opt}, spec, options);
  dp::Rng rng(6);
  bool spiked = false;
  const HarnessStats stats =
      harness.run(rng, [&](long step, dp::Rng& r) {
        double loss = quadStep(w, r);
        if (step == 25 && !spiked) {
          spiked = true;
          loss = 1e6;  // data glitch: one wild batch
        }
        harness.guardedStep(opt);
        return loss;
      });
  EXPECT_EQ(stats.steps, 40);
  EXPECT_EQ(stats.rollbacks, 1);
  EXPECT_EQ(stats.nanEvents, 0);  // a spike is not a NaN event
}

TEST_F(TrainHarness, GradientClipRescalesOversizedUpdatesInPlace) {
  dp::nn::Param w(dp::nn::Tensor::zeros({4}));
  dp::nn::Sgd opt({&w}, 0.0);  // lr 0: step() leaves grads observable
  HarnessSpec spec;
  spec.totalSteps = 1;
  spec.lrAt = [](long) { return 0.0; };
  spec.configHash = kQuadHash;
  TrainOptions options;
  options.gradClipNorm = 2.0;
  Harness harness({&w}, {}, {&opt}, spec, options);

  // ||(3,4,0,0)|| = 5 > 2: scaled to the clip norm, direction kept.
  w.grad[0] = 3.0f;
  w.grad[1] = 4.0f;
  harness.guardedStep(opt);
  EXPECT_FLOAT_EQ(w.grad[0], 3.0f * (2.0f / 5.0f));
  EXPECT_FLOAT_EQ(w.grad[1], 4.0f * (2.0f / 5.0f));
  EXPECT_FLOAT_EQ(w.grad[2], 0.0f);

  // Under the clip norm: untouched bit for bit.
  w.grad.zero();
  w.grad[0] = 1.0f;
  w.grad[1] = 1.0f;
  harness.guardedStep(opt);
  EXPECT_FLOAT_EQ(w.grad[0], 1.0f);
  EXPECT_FLOAT_EQ(w.grad[1], 1.0f);
}

// ------------------------------------------------- end-to-end (Tcae)

const std::vector<dp::squish::Topology>& trainTopologies() {
  static const auto* topos = [] {
    dp::Rng rng(7);
    const dp::DesignRules rules = dp::euv7nmM2();
    const auto clips = dp::datagen::generateLibrary(
        dp::datagen::directprintSpec(1), rules, 24, rng);
    return new std::vector<dp::squish::Topology>(
        dp::datagen::extractTopologies(clips));
  }();
  return *topos;
}

dp::models::TrainStats runTcae(const std::string& dir, long steps = 60) {
  dp::Rng rng(2019);
  dp::models::TcaeConfig cfg;
  cfg.trainSteps = steps;
  cfg.batchSize = 16;
  cfg.initialLr = 2e-3;
  dp::models::Tcae tcae(cfg, rng);
  TrainOptions options;
  options.checkpointDir = dir;
  options.checkpointEvery = 20;
  return tcae.train(trainTopologies(), rng, options);
}

class TcaeTrain : public ::testing::Test {
 protected:
  void SetUp() override {
    dp::faults::disarmAll();
    dp::train::clearStopRequest();
  }
  void TearDown() override {
    dp::faults::disarmAll();
    dp::train::clearStopRequest();
  }
};

// The crown jewel on the real model: kill the Tcae run at every step
// boundary / save window, resume, and require the final checkpoint
// directory byte-identical to an uninterrupted run's — at 1 and 8
// threads (conv forward/backward runs on the pool).
TEST_F(TcaeTrain, KillAtEveryBoundaryResumesToIdenticalCheckpoint) {
  struct SiteSpec {
    const char* name;
    double resumeRate;
  };
  const std::vector<SiteSpec> sites = {{"train.checkpoint.step", 0.04},
                                       {"train.checkpoint.save", 0.35}};
  for (const int threads : {1, 8}) {
    ScopedDpThreads guard(threads);
    ScopedTempDir ref("dp_tcae_chaos_ref");
    const dp::models::TrainStats refStats = runTcae(ref.path());
    EXPECT_EQ(refStats.steps, 60);
    const auto refBytes = dirBytes(ref.path());

    for (const SiteSpec& site : sites) {
      SCOPED_TRACE(std::string("site=") + site.name +
                   " threads=" + std::to_string(threads));
      ScopedTempDir dir("dp_tcae_chaos");
      dp::faults::arm(site.name, 13, 1.0);
      int crashes = 0;
      bool complete = false;
      for (int attempt = 0; attempt < 12 && !complete; ++attempt) {
        try {
          (void)runTcae(dir.path());
          complete = true;
        } catch (const std::exception&) {
          ++crashes;
          dp::faults::arm(site.name, 14 + attempt, site.resumeRate);
        }
      }
      dp::faults::disarmAll();
      const dp::models::TrainStats stats = runTcae(dir.path());
      EXPECT_GT(crashes, 0) << "fault never fired; test exercised "
                               "nothing";
      EXPECT_EQ(stats.steps, 60);
      EXPECT_TRUE(storesIdentical(dirBytes(dir.path()), refBytes));
    }
  }
}

TEST_F(TcaeTrain, CheckpointedRunIsIdenticalAcrossThreadCounts) {
  std::map<std::string, std::string> reference;
  for (const int threads : {1, 8}) {
    ScopedDpThreads guard(threads);
    ScopedTempDir dir("dp_tcae_threads_" + std::to_string(threads));
    const dp::models::TrainStats stats = runTcae(dir.path());
    EXPECT_EQ(stats.steps, 60);
    EXPECT_FALSE(stats.resumed);
    if (reference.empty()) {
      reference = dirBytes(dir.path());
    } else {
      EXPECT_TRUE(storesIdentical(dirBytes(dir.path()), reference))
          << "checkpoint depends on DP_THREADS=" << threads;
    }
  }
}

TEST_F(TcaeTrain, InjectedDivergenceReplaysIdenticallyAtAnyThreadCount) {
  dp::models::TrainStats first{};
  std::vector<dp::nn::Tensor> firstParams;
  bool haveFirst = false;
  for (const int threads : {1, 8}) {
    ScopedDpThreads guard(threads);
    dp::Rng rng(2019);
    dp::models::TcaeConfig cfg;
    cfg.trainSteps = 60;
    cfg.batchSize = 16;
    cfg.initialLr = 2e-3;
    dp::models::Tcae tcae(cfg, rng);
    TrainOptions options;
    options.maxRollbacks = 16;  // headroom: replays re-roll the dice
    dp::faults::arm("train.guard.nan", 33, 0.03);
    const dp::models::TrainStats stats =
        tcae.train(trainTopologies(), rng, options);
    dp::faults::disarmAll();
    EXPECT_EQ(stats.steps, 60);
    EXPECT_GT(stats.rollbacks, 0);
    EXPECT_GT(stats.nanEvents, 0);
    std::vector<dp::nn::Tensor> params;
    for (dp::nn::Param* p : tcae.params()) params.push_back(p->value);
    if (!haveFirst) {
      haveFirst = true;
      first = stats;
      firstParams = std::move(params);
    } else {
      EXPECT_EQ(stats.rollbacks, first.rollbacks);
      EXPECT_EQ(stats.nanEvents, first.nanEvents);
      EXPECT_EQ(stats.lossEvery100, first.lossEvery100);
      ASSERT_EQ(params.size(), firstParams.size());
      for (std::size_t i = 0; i < params.size(); ++i)
        EXPECT_TRUE(tensorsBitEqual(params[i], firstParams[i])) << i;
    }
  }
}

// ------------------------------------------------- metrics surface

TEST(TrainMetrics, CountersAccumulateAndRenderOnPrometheusSurface) {
  dp::serve::Metrics metrics;
  // Gated: a process that never trains emits no dp_train_* series.
  EXPECT_EQ(metrics.renderPrometheus().find("dp_train_"),
            std::string::npos);

  dp::serve::TrainCounters c;
  c.steps = 100;
  c.rollbacks = 2;
  c.nanEvents = 3;
  c.checkpointsSaved = 5;
  c.resumes = 1;
  metrics.recordTrain(c);
  metrics.recordTrain(c);

  const dp::serve::TrainCounters totals = metrics.trainTotals();
  EXPECT_EQ(totals.steps, 200u);
  EXPECT_EQ(totals.rollbacks, 4u);
  EXPECT_EQ(totals.nanEvents, 6u);
  EXPECT_EQ(totals.checkpointsSaved, 10u);
  EXPECT_EQ(totals.resumes, 2u);

  const std::string text = metrics.renderPrometheus();
  EXPECT_NE(text.find("dp_train_steps_total 200"), std::string::npos)
      << text;
  EXPECT_NE(text.find("dp_train_rollbacks_total 4"), std::string::npos);
  EXPECT_NE(text.find("dp_train_nan_events_total 6"), std::string::npos);
  EXPECT_NE(text.find("dp_train_checkpoints_saved_total 10"),
            std::string::npos);
  EXPECT_NE(text.find("dp_train_resumes_total 2"), std::string::npos);
}

}  // namespace
